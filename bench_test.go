// Root benchmarks: one benchmark family per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the experiment index).
//
//	go test -bench=. -benchmem
//
// Dataset size defaults to 500k keys per dataset (the paper uses 200M); set
// REPRO_BENCH_N to scale up. Shapes — method ordering, improvement factors,
// crossovers — are the reproduction target, not absolute nanoseconds
// (EXPERIMENTS.md records both).
package repro_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/memsim"
	"repro/internal/search"
	"repro/internal/updatable"
)

func benchN() int {
	if s := os.Getenv("REPRO_BENCH_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 500_000
}

const benchSeed = 42

var (
	dataMu    sync.Mutex
	dataCache = map[string][]uint64{}
)

func keysFor(b *testing.B, spec dataset.Spec) []uint64 {
	b.Helper()
	dataMu.Lock()
	defer dataMu.Unlock()
	id := spec.String()
	if k, ok := dataCache[id]; ok {
		return k
	}
	k, err := dataset.Generate(spec.Name, spec.Bits, benchN(), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	dataCache[id] = k
	return k
}

// BenchmarkTable2 regenerates Table 2: lookup latency per dataset per
// method. Sub-benchmark names follow "dataset/method".
func BenchmarkTable2(b *testing.B) {
	for _, spec := range dataset.Table2 {
		keys64 := keysFor(b, spec)
		if spec.Bits == 32 {
			table2Row(b, spec, dataset.U32(keys64))
		} else {
			table2Row(b, spec, keys64)
		}
	}
}

var (
	builtMu    sync.Mutex
	builtCache = map[string]any{}
)

// builtFor caches constructed indexes: the testing framework re-runs each
// sub-benchmark body while calibrating b.N, and rebuilding a 500k-key index
// on every calibration round would dominate the run.
func builtFor[K kv.Key](b *testing.B, id string, be index.Backend[K], keys []K) index.Index[K] {
	b.Helper()
	builtMu.Lock()
	defer builtMu.Unlock()
	if v, ok := builtCache[id]; ok {
		return v.(index.Index[K])
	}
	ix, err := be.Build(keys)
	if err != nil {
		b.Fatal(err)
	}
	builtCache[id] = ix
	return ix
}

func table2Row[K kv.Key](b *testing.B, spec dataset.Spec, keys []K) {
	w := bench.NewWorkload(keys, 1<<16, benchSeed+1)
	for _, be := range index.Registry[K]() {
		be := be
		b.Run(spec.String()+"/"+be.Name, func(b *testing.B) {
			if reason := be.Applicable(keys); reason != "" {
				b.Skipf("N/A as in the paper's Table 2: %s", reason)
			}
			ix := builtFor(b, spec.String()+"/"+be.Name, be, keys)
			// Validate before timing: a benchmark must never measure a
			// broken index.
			if _, err := w.Measure(ix.Find, 1); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ix.SizeBytes()), "indexbytes")
			mask := len(w.Queries) - 1
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += ix.Find(w.Queries[i&mask])
			}
			if sink == -1 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkFig2aLocalSearch regenerates Fig. 2a: local-search latency as a
// function of the planted prediction error.
func BenchmarkFig2aLocalSearch(b *testing.B) {
	keys := dataset.U32(keysFor(b, dataset.Spec{Name: dataset.USpr, Bits: 32}))
	n := len(keys)
	for delta := 1; delta < n/2; delta *= 10 {
		w := bench.NewPlanted(keys, delta, 1<<14, benchSeed)
		mask := len(w.Q) - 1
		run := func(name string, f func(i int) int) {
			b.Run(fmt.Sprintf("err=%d/%s", delta, name), func(b *testing.B) {
				sink := 0
				for i := 0; i < b.N; i++ {
					sink += f(i & mask)
				}
				if sink == -1 {
					b.Fatal("impossible")
				}
			})
		}
		run("linear", func(i int) int { return search.LinearFrom(keys, int(w.Pred[i]), w.Q[i]) })
		run("binary", func(i int) int {
			lo := kv.Clamp(int(w.Pred[i])-delta, 0, n)
			hi := kv.Clamp(int(w.Pred[i])+delta+1, 0, n)
			return search.BinaryRange(keys, lo, hi, w.Q[i])
		})
		run("exponential", func(i int) int { return search.Exponential(keys, int(w.Pred[i]), w.Q[i]) })
		run("binary-wo-model", func(i int) int { return search.Binary(keys, w.Q[i]) })
	}
}

// BenchmarkFig2bCacheMisses regenerates Fig. 2b: simulated cache misses of
// the local search per planted error. The metric of interest is
// LLCmiss/op (reported), not ns/op.
func BenchmarkFig2bCacheMisses(b *testing.B) {
	pts, err := bench.RunFig2b(bench.Fig2Config{N: benchN(), Queries: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pts {
		p := p
		b.Run(fmt.Sprintf("err=%d", p.Err), func(b *testing.B) {
			b.ReportMetric(p.LinearMisses, "linearLLC/op")
			b.ReportMetric(p.BinaryMisses, "binaryLLC/op")
			b.ReportMetric(p.ExpMisses, "expLLC/op")
			b.ReportMetric(p.BSMisses, "bsLLC/op")
			b.ReportMetric(p.FASTMisses, "fastLLC/op")
			b.ReportMetric(0, "ns/op") // timing is not the object here
		})
	}
}

// BenchmarkFig3CDFs regenerates the Fig. 3 CDF series (macro and zoom) and
// reports the local-variance contrast the figure illustrates.
func BenchmarkFig3CDFs(b *testing.B) {
	series, err := bench.RunFig3(benchN(), 500, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range series {
		b.Run(s.Spec.String(), func(b *testing.B) {
			b.ReportMetric(float64(len(s.MacroKeys)), "macro-points")
			b.ReportMetric(float64(len(s.ZoomKeys)), "zoom-points")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkFig6ErrorCorrection regenerates Fig. 6: average error of a plain
// linear model vs the same model with a Shift-Table on osmc64.
func BenchmarkFig6ErrorCorrection(b *testing.B) {
	res, err := bench.RunFig6(benchN(), 1000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("osmc64", func(b *testing.B) {
		b.ReportMetric(res.AvgModel, "model-err")
		b.ReportMetric(res.AvgCorrected, "corrected-err")
		b.ReportMetric(res.AvgModel/res.AvgCorrected, "reduction-x")
		b.ReportMetric(0, "ns/op")
	})
}

// BenchmarkFig7Build regenerates Fig. 7: index build times. Each iteration
// builds the index once over face64 (per-dataset numbers come from
// cmd/figures -fig 7).
func BenchmarkFig7Build(b *testing.B) {
	keys := keysFor(b, dataset.Spec{Name: dataset.Face, Bits: 64})
	for _, be := range index.Registry[uint64]() {
		be := be
		if be.Applicable(keys) != "" {
			continue
		}
		b.Run(be.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := be.Build(keys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8SizeSweep regenerates Fig. 8 on face64: per index-size
// point, lookup latency with simulated miss metrics attached.
func BenchmarkFig8SizeSweep(b *testing.B) {
	pts, err := bench.RunFig8(bench.Fig8Config{N: benchN(), Queries: 20_000, Reps: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range pts {
		p := p
		b.Run(fmt.Sprintf("%s/size=%d", p.Method, p.SizeBytes), func(b *testing.B) {
			b.ReportMetric(p.LookupNs, "lookup-ns")
			b.ReportMetric(p.Log2Err, "log2err")
			b.ReportMetric(p.Accesses, "touch/op")
			b.ReportMetric(p.L1Misses, "L1/op")
			b.ReportMetric(p.LLCMisses, "LLC/op")
			b.ReportMetric(0, "ns/op")
		})
		_ = i
	}
}

// BenchmarkFig9LayerSize regenerates Fig. 9: lookup latency and average
// error per Shift-Table layer configuration per dataset.
func BenchmarkFig9LayerSize(b *testing.B) {
	res, err := bench.RunFig9(benchN(), 50_000, 1, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range res.Specs {
		for _, mode := range res.Modes {
			cell := res.Cells[spec.String()][mode]
			b.Run(spec.String()+"/"+mode, func(b *testing.B) {
				b.ReportMetric(cell.LookupNs, "lookup-ns")
				b.ReportMetric(cell.AvgErr, "avg-err")
				b.ReportMetric(float64(cell.SizeBytes), "layerbytes")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkLatencyCurve regenerates the §2.3 L(s) micro-benchmark (the
// error-to-latency mapping that parameterises the §3.7 cost model).
func BenchmarkLatencyCurve(b *testing.B) {
	keys := keysFor(b, dataset.Spec{Name: dataset.USpr, Bits: 64})
	pts := bench.MeasureLatencyCurve(keys, 1<<16, 3_000, benchSeed)
	for _, p := range pts {
		p := p
		b.Run(fmt.Sprintf("window=%d", p.WindowSize), func(b *testing.B) {
			b.ReportMetric(p.LinearNs, "linear-ns")
			b.ReportMetric(p.BinaryNs, "binary-ns")
			b.ReportMetric(p.ExpNs, "exp-ns")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkCostModel validates §3.7: the cost model's predicted latency for
// IM+Shift-Table vs the measured one, per dataset (experiment C1).
func BenchmarkCostModel(b *testing.B) {
	calib := keysFor(b, dataset.Spec{Name: dataset.USpr, Bits: 64})
	l := bench.FitLatencyFn(bench.MeasureLatencyCurve(calib, 1<<18, 3_000, benchSeed))
	for _, spec := range []dataset.Spec{
		{Name: dataset.UDen, Bits: 64},
		{Name: dataset.Face, Bits: 64},
		{Name: dataset.Osmc, Bits: 64},
		{Name: dataset.Wiki, Bits: 64},
	} {
		keys := keysFor(b, spec)
		b.Run(spec.String(), func(b *testing.B) {
			model := cdfmodel.NewInterpolation(keys)
			tab, err := core.Build(keys, model, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			w := bench.NewWorkload(keys, 1<<15, benchSeed+1)
			measured, err := w.Measure(tab.Find, 2)
			if err != nil {
				b.Fatal(err)
			}
			predicted := tab.EstimateWith(5, 40, l).TotalNs
			b.ReportMetric(predicted, "predicted-ns")
			b.ReportMetric(measured, "measured-ns")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// ---- Batched query engine (DESIGN.md §5) ----

// stBuiltFor caches an IM+Shift-Table layer per (dataset, mode) across
// sub-benchmark calibration rounds, like builtFor does for Table 2.
func stBuiltFor(b *testing.B, spec dataset.Spec, mode core.Mode) (*core.Table[uint64], *bench.Workload[uint64]) {
	b.Helper()
	id := fmt.Sprintf("st/%s/%s", spec, mode)
	keys := keysFor(b, spec)
	builtMu.Lock()
	defer builtMu.Unlock()
	type cached struct {
		tab *core.Table[uint64]
		w   *bench.Workload[uint64]
	}
	if v, ok := builtCache[id]; ok {
		c := v.(cached)
		return c.tab, c.w
	}
	model := cdfmodel.NewInterpolation(keys)
	tab, err := core.Build(keys, model, core.Config{Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	w := bench.NewWorkload(keys, 1<<16, benchSeed+1)
	builtCache[id] = cached{tab, w}
	return tab, w
}

var batchBenchSpecs = []dataset.Spec{
	{Name: dataset.Face, Bits: 64},
	{Name: dataset.LogN, Bits: 64},
}

// BenchmarkFindScalar is the scalar baseline the batch speedups are
// measured against: one dependent Find per iteration, same workload and
// layer as BenchmarkFindBatch.
func BenchmarkFindScalar(b *testing.B) {
	for _, spec := range batchBenchSpecs {
		for _, mode := range []core.Mode{core.ModeRange, core.ModeMidpoint} {
			tab, w := stBuiltFor(b, spec, mode)
			mask := len(w.Queries) - 1
			b.Run(fmt.Sprintf("%s/%s", spec, mode), func(b *testing.B) {
				sink := 0
				for i := 0; i < b.N; i++ {
					sink += tab.Find(w.Queries[i&mask])
				}
				if sink == -1 {
					b.Fatal("impossible")
				}
			})
		}
	}
}

// BenchmarkFindBatch measures the staged pipeline at several batch sizes.
// b.N counts individual lookups, so ns/op is directly comparable with
// BenchmarkFindScalar (compare with benchstat).
func BenchmarkFindBatch(b *testing.B) {
	for _, spec := range batchBenchSpecs {
		for _, mode := range []core.Mode{core.ModeRange, core.ModeMidpoint} {
			tab, w := stBuiltFor(b, spec, mode)
			mask := len(w.Queries) - 1
			for _, bs := range []int{64, 256, 1024} {
				b.Run(fmt.Sprintf("%s/%s/batch=%d", spec, mode, bs), func(b *testing.B) {
					out := make([]int, bs)
					sink := 0
					b.ResetTimer()
					for i := 0; i < b.N; i += bs {
						lo := i & mask
						res := tab.FindBatch(w.Queries[lo:lo+bs], out)
						sink += res[0]
					}
					if sink == -1 {
						b.Fatal("impossible")
					}
				})
			}
		}
	}
}

// BenchmarkFindBatchParallel measures the sharded throughput path: the
// whole query block per call, GOMAXPROCS workers.
func BenchmarkFindBatchParallel(b *testing.B) {
	for _, spec := range batchBenchSpecs {
		for _, mode := range []core.Mode{core.ModeRange, core.ModeMidpoint} {
			tab, w := stBuiltFor(b, spec, mode)
			qs := w.Queries
			b.Run(fmt.Sprintf("%s/%s", spec, mode), func(b *testing.B) {
				out := make([]int, len(qs))
				sink := 0
				b.ResetTimer()
				for i := 0; i < b.N; i += len(qs) {
					res := tab.FindBatchParallel(qs, out, 0)
					sink += res[0]
				}
				if sink == -1 {
					b.Fatal("impossible")
				}
			})
		}
	}
}

// BenchmarkBuild measures Shift-Table construction: the serial pipeline
// and the arena-sharded parallel pipeline at 2/4/GOMAXPROCS workers, both
// modes. b.N counts keys, so ns/op is build ns per key (the headline
// number of `figures -fig build`); on a 1-core box the worker variants
// measure the sharded code path itself rather than a speedup.
func BenchmarkBuild(b *testing.B) {
	for _, spec := range batchBenchSpecs {
		keys := keysFor(b, spec)
		model := cdfmodel.NewInterpolation(keys)
		for _, mode := range []core.Mode{core.ModeRange, core.ModeMidpoint} {
			for _, workers := range []int{1, 2, 4, 0} {
				name := fmt.Sprintf("%s/%s/workers=%d", spec, mode, workers)
				if workers == 0 {
					name = fmt.Sprintf("%s/%s/workers=gomaxprocs", spec, mode)
				}
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i += len(keys) {
						tab, err := core.BuildParallel(keys, model, core.Config{Mode: mode}, workers)
						if err != nil || tab.N() != len(keys) {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkCompaction measures one full updatable-index compaction —
// merge the delta, drop tombstones, rebuild model + layer + Fenwick tree
// through the pooled BuildNext pipeline — after a fixed write burst. b.N
// counts compactions.
func BenchmarkCompaction(b *testing.B) {
	keys := keysFor(b, dataset.Spec{Name: dataset.Face, Bits: 64})
	const burst = 4096
	b.Run(fmt.Sprintf("face64/burst=%d", burst), func(b *testing.B) {
		ix, err := updatable.New(keys, updatable.Config{MaxDelta: len(keys)}) // manual compactions only
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := 0; j < burst; j++ {
				if err := ix.Insert(rng.Uint64()); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if err := ix.Compact(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemsim measures the simulator itself (it is the substrate of
// Fig. 2b and Fig. 8; its own throughput bounds their runtime).
func BenchmarkMemsim(b *testing.B) {
	sim, err := memsim.New(memsim.Skylake())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sim.Access(uint64(i)*64, 8)
	}
}
