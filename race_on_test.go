//go:build race

package repro_test

// raceEnabled reports that the race detector is active; timing-shape tests
// skip themselves because instrumentation distorts relative latencies.
const raceEnabled = true
