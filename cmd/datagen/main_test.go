package main

import "testing"

func TestLookupSpec(t *testing.T) {
	spec, ok := lookupSpec("osmc64")
	if !ok || spec.String() != "osmc64" {
		t.Errorf("lookupSpec(osmc64) = %v, %v", spec, ok)
	}
	if _, ok := lookupSpec("nope"); ok {
		t.Error("unknown spec must not resolve")
	}
}
