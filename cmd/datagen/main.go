// Command datagen generates the benchmark datasets and saves them in SOSD
// binary format, printing distribution statistics. Useful for persisting a
// fixed dataset across benchmark runs and for inspecting the generators.
//
// Usage:
//
//	datagen -out dir [-n 2000000] [-seed 42] [-datasets face64,wiki64]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
)

func main() {
	out := flag.String("out", ".", "output directory")
	n := flag.Int("n", 2_000_000, "keys per dataset")
	seed := flag.Int64("seed", 42, "generation seed")
	list := flag.String("datasets", "", "comma-separated specs; empty = the Table 2 fourteen")
	flag.Parse()

	specs := dataset.Table2
	if *list != "" {
		specs = nil
		for _, s := range strings.Split(*list, ",") {
			spec, ok := lookupSpec(strings.TrimSpace(s))
			if !ok {
				fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", s)
				os.Exit(2)
			}
			specs = append(specs, spec)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	for _, spec := range specs {
		keys, err := dataset.Generate(spec.Name, spec.Bits, *n, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, spec.String()+".bin")
		if err := dataset.Save(path, keys, spec.Bits); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		distinct, maxRun := dataset.DupStats(keys)
		fmt.Printf("%-8s %9d keys  min=%-22d max=%-22d distinct=%d maxdup=%d -> %s\n",
			spec.String(), len(keys), keys[0], keys[len(keys)-1], distinct, maxRun, path)
	}
}

func lookupSpec(s string) (dataset.Spec, bool) {
	for _, name := range dataset.Names {
		for _, bits := range []int{32, 64} {
			spec := dataset.Spec{Name: name, Bits: bits}
			if spec.String() == s {
				return spec, true
			}
		}
	}
	return dataset.Spec{}, false
}
