// Command figures regenerates the data series behind each figure of the
// paper's evaluation as CSV on stdout (or a summary table where the figure
// is a table-like bar chart).
//
// Usage:
//
//	figures -fig 2a|2b|3|6|7|8|9|L|batch|concurrent|router [-n N] [-q Q]
//	        [-seed S] [-dataset face64]
//
// The "L" pseudo-figure prints the §2.3 error-to-latency micro-benchmark
// (the L(s) curve parameterising the §3.7 cost model). The "batch"
// pseudo-figure prints the batched-query throughput sweep (scalar Find vs
// FindBatch vs FindBatchParallel across batch sizes, R and S modes) as CSV.
// The "concurrent" pseudo-figure prints the mixed read/write throughput
// sweep over internal/concurrent (reader counts × compaction policies,
// including reads completed during in-flight compactions) as CSV. The
// "router" pseudo-figure builds the cost-model-routed hybrid index
// (internal/router) over a piecewise dataset and prints its latency
// against every homogeneous candidate backend, with the per-shard routing
// decisions as comment lines. The "persist" pseudo-figure prints the
// snapshot sweep (cold build vs save vs warm load per backend, every
// loaded index verified bit-identical before its time is reported). The
// "replica" pseudo-figure prints the replication sweep (publish → fetch →
// verify → swap per version, delta vs full artifact sizes, cold sync vs
// crash/warm-restart time; every synced version oracle-verified) and
// writes BENCH_replica.json. The "serve" pseudo-figure stands up the
// whole networked serving tier in-process (publisher → store → replica →
// hardened HTTP server) and prints throughput and p50/p99/p999 latency
// for coalesced vs per-request dispatch under live publishing, every
// response oracle-verified by version tag; it writes BENCH_serve.json.
// The "mmap" pseudo-figure compares restart paths for the page-aligned v2
// snapshot layout (cold build vs v1 streaming load vs v2 mapped open, per
// backend), measures cold-shard first-touch latency on a mapped router,
// sweeps a residency budget over the router's shard spans, and writes
// BENCH_mmap.json.
//
// All CSV output flows through the shared bench.Grid emitter, the same
// layout cmd/report renders as markdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/dataset"
)

func main() {
	fig := flag.String("fig", "", "figure id: 2a, 2b, 3, 6, 7, 8, 9, L, batch, build, concurrent, router, persist, replica, serve, mmap")
	n := flag.Int("n", 0, "dataset size (0 = per-figure default)")
	q := flag.Int("q", 0, "query count (0 = per-figure default)")
	seed := flag.Int64("seed", 7, "dataset seed")
	ds := flag.String("dataset", "face64", "dataset for fig 8 (face64 or osmc64)")
	shards := flag.Int("shards", 0, "router shard count (0 = auto)")
	jsonPath := flag.String("json", "auto", "figs build/replica: JSON output path (auto = BENCH_<fig>.json, empty = skip)")
	flag.Parse()

	var err error
	switch *fig {
	case "2a":
		err = fig2a(*n, *q, *seed)
	case "2b":
		err = fig2b(*n, *q, *seed)
	case "3":
		err = fig3(*n, *seed)
	case "6":
		err = fig6(*n, *seed)
	case "7":
		err = fig7(*n, *seed)
	case "8":
		err = fig8(*n, *q, *seed, *ds)
	case "9":
		err = fig9(*n, *q, *seed)
	case "L":
		err = latencyCurve(*n, *seed)
	case "batch":
		err = batchSweep(*n, *q, *seed)
	case "build":
		err = buildSweep(*n, *seed, jsonOut(*jsonPath, "BENCH_build.json"))
	case "concurrent":
		err = concurrentSweep(*n, *seed)
	case "router":
		err = routerSweep(*n, *q, *shards, *seed)
	case "persist":
		err = persistSweep(*n, *q, *seed)
	case "replica":
		err = replicaSweep(*n, *q, *seed, jsonOut(*jsonPath, "BENCH_replica.json"))
	case "serve":
		err = serveSweep(*n, *q, *seed, jsonOut(*jsonPath, "BENCH_serve.json"))
	case "mmap":
		err = mmapSweep(*n, *q, *seed, jsonOut(*jsonPath, "BENCH_mmap.json"))
	default:
		fmt.Fprintln(os.Stderr, "figures: -fig must be one of 2a, 2b, 3, 6, 7, 8, 9, L, batch, build, concurrent, router, persist, replica, serve, mmap")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// emit renders a grid as CSV on stdout.
func emit(g *bench.Grid) { g.WriteCSV(os.Stdout) }

func fig2a(n, q int, seed int64) error {
	pts, err := bench.RunFig2a(bench.Fig2Config{N: n, Queries: q, Seed: seed})
	if err != nil {
		return err
	}
	g := bench.NewGrid("error", "linear_ns", "binary_ns", "exponential_ns", "binary_wo_model_ns", "fast_ns")
	verbs := []string{"%d", "%.1f", "%.1f", "%.1f", "%.1f", "%.1f"}
	for _, p := range pts {
		g.Rowf(verbs, p.Err, p.LinearNs, p.BinaryNs, p.ExpNs, p.BSNs, p.FASTNs)
	}
	emit(g)
	return nil
}

func fig2b(n, q int, seed int64) error {
	pts, err := bench.RunFig2b(bench.Fig2Config{N: n, Queries: q, Seed: seed})
	if err != nil {
		return err
	}
	g := bench.NewGrid("error", "linear_misses", "binary_misses", "exponential_misses", "binary_wo_model_misses", "fast_misses")
	verbs := []string{"%d", "%.2f", "%.2f", "%.2f", "%.2f", "%.2f"}
	for _, p := range pts {
		g.Rowf(verbs, p.Err, p.LinearMisses, p.BinaryMisses, p.ExpMisses, p.BSMisses, p.FASTMisses)
	}
	emit(g)
	return nil
}

func fig3(n int, seed int64) error {
	if n == 0 {
		n = 2_000_000
	}
	series, err := bench.RunFig3(n, 500, seed)
	if err != nil {
		return err
	}
	g := bench.NewGrid("dataset", "scale", "key", "position")
	verbs := []string{"%s", "%s", "%d", "%d"}
	for _, s := range series {
		for i := range s.MacroKeys {
			g.Rowf(verbs, s.Spec, "macro", s.MacroKeys[i], s.MacroPos[i])
		}
		for i := range s.ZoomKeys {
			g.Rowf(verbs, s.Spec, "zoom", s.ZoomKeys[i], s.ZoomPos[i])
		}
	}
	emit(g)
	return nil
}

func fig6(n int, seed int64) error {
	if n == 0 {
		n = 2_000_000
	}
	res, err := bench.RunFig6(n, 1000, seed)
	if err != nil {
		return err
	}
	fmt.Printf("# avg model error = %.1f records, avg corrected error = %.1f records\n", res.AvgModel, res.AvgCorrected)
	g := bench.NewGrid("position", "model_err", "corrected_err")
	verbs := []string{"%d", "%d", "%d"}
	for i := range res.Positions {
		g.Rowf(verbs, res.Positions[i], res.ModelErr[i], res.CorrectedErr[i])
	}
	emit(g)
	return nil
}

func fig7(n int, seed int64) error {
	if n == 0 {
		n = 2_000_000
	}
	rows, err := bench.RunFig7(n, seed, nil)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFig7(rows))
	return nil
}

func fig8(n, q int, seed int64, ds string) error {
	spec := dataset.Spec{Name: dataset.Face, Bits: 64}
	if ds == "osmc64" {
		spec = dataset.Spec{Name: dataset.Osmc, Bits: 64}
	} else if ds != "face64" {
		return fmt.Errorf("fig 8 supports face64 or osmc64, got %q", ds)
	}
	pts, err := bench.RunFig8(bench.Fig8Config{Dataset: spec, N: n, Queries: q, Seed: seed})
	if err != nil {
		return err
	}
	g := bench.NewGrid("method", "size_bytes", "lookup_ns", "log2_err", "accesses", "l1_misses", "llc_misses")
	verbs := []string{"%s", "%d", "%.1f", "%.2f", "%.2f", "%.2f", "%.2f"}
	for _, p := range pts {
		g.Rowf(verbs, p.Method, p.SizeBytes, p.LookupNs, p.Log2Err, p.Accesses, p.L1Misses, p.LLCMisses)
	}
	emit(g)
	return nil
}

func fig9(n, q int, seed int64) error {
	res, err := bench.RunFig9(n, q, 0, seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func batchSweep(n, q int, seed int64) error {
	pts, err := bench.RunBatch(bench.BatchConfig{N: n, Queries: q, Seed: seed})
	if err != nil {
		return err
	}
	g := bench.NewGrid("dataset", "mode", "batch_size", "scalar_ns", "batch_ns", "parallel_ns", "speedup_batch", "speedup_parallel")
	verbs := []string{"%s", "%s", "%d", "%.1f", "%.1f", "%.1f", "%.2f", "%.2f"}
	for _, p := range pts {
		g.Rowf(verbs, p.Dataset, p.Mode, p.BatchSize, p.ScalarNs, p.BatchNs, p.ParallelNs, p.SpeedupBatch, p.SpeedupParallel)
	}
	emit(g)
	return nil
}

func buildSweep(n int, seed int64, jsonPath string) error {
	res, err := bench.RunBuildSweep(bench.BuildSweepConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("# build sweep: n=%d gomaxprocs=%d numcpu=%d (every built table validated against reference ranks)\n",
		res.N, res.GoMaxProcs, res.NumCPU)
	emit(res.Grid())
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}
	return nil
}

func concurrentSweep(n int, seed int64) error {
	pts, err := bench.RunConcurrent(bench.ConcurrentConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	g := bench.NewGrid("dataset", "policy", "readers", "reads_per_sec", "writes_per_sec", "rebuilds", "reads_during_compaction")
	verbs := []string{"%s", "%s", "%d", "%.0f", "%.0f", "%d", "%d"}
	for _, p := range pts {
		g.Rowf(verbs, p.Dataset, p.Policy, p.Readers, p.ReadsPerSec, p.WritesPerSec, p.Rebuilds, p.ReadsDuringCompaction)
	}
	emit(g)
	return nil
}

func routerSweep(n, q, shards int, seed int64) error {
	res, err := bench.RunRouter(bench.RouterConfig{N: n, Queries: q, Shards: shards, Seed: seed})
	if err != nil {
		return err
	}
	// Routing decisions ride along as comment lines, rendered by the same
	// grid emitter as the main series.
	for _, line := range strings.Split(strings.TrimRight(res.ChoicesGrid().CSV(), "\n"), "\n") {
		fmt.Println("#", line)
	}
	fmt.Printf("# distinct backends selected: %d\n", res.Distinct)
	emit(res.Grid())
	if name, best := res.BestHomogeneousNs(); best > 0 {
		fmt.Printf("# router %.1f ns vs best homogeneous %s %.1f ns (ratio %.2f)\n",
			res.RouterNs(), name, best, res.RouterNs()/best)
	}
	return nil
}

// jsonOut resolves the -json flag: "auto" means the per-figure default.
func jsonOut(flagVal, def string) string {
	if flagVal == "auto" {
		return def
	}
	return flagVal
}

func replicaSweep(n, q int, seed int64, jsonPath string) error {
	res, err := bench.RunReplication(bench.ReplicationConfig{N: n, Queries: q, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("# replication sweep: n=%d rounds=%d (every synced version oracle-verified before timing is reported)\n", res.N, res.Rounds)
	fmt.Printf("# mean artifact: full %.1f KB, delta %.1f KB; cold sync %.1f ms, warm restart %.1f ms (version %d, store offline)\n",
		res.FullKB, res.DeltaKB, res.ColdSyncMs, res.WarmRestartMs, res.WarmVersion)
	emit(res.Grid())
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}
	return nil
}

func serveSweep(n, q int, seed int64, jsonPath string) error {
	res, err := bench.RunServe(bench.ServeConfig{N: n, Pool: q, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("# serving-tier sweep: n=%d workers=%d open-loop %g qps (every response oracle-verified by version tag; %d versions published mid-run)\n",
		res.N, res.Workers, res.RateQPS, res.Published)
	fmt.Printf("# coalesced closed-loop throughput %.2fx per-request dispatch\n", res.CoalesceSpeedup)
	emit(res.Grid())
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}
	return nil
}

func mmapSweep(n, q int, seed int64, jsonPath string) error {
	res, err := bench.RunMmap(bench.MmapConfig{N: n, Queries: q, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("# mmap sweep: n=%d map_supported=%v (every mapped index probe-verified against its cold-built twin)\n",
		res.N, res.MapSupported)
	emit(bench.MmapLoadGrid(res.Loads))
	fmt.Printf("# cold-shard first touch over %d shards: first pass %.1f ns/q, second pass %.1f ns/q, %d minor faults (memsim predicts +%.0f ns cold)\n",
		res.Touch.Shards, res.Touch.FirstPassNs, res.Touch.SecondPassNs, res.Touch.MinorFaults, res.Touch.PredictedColdNs)
	emit(bench.MmapBudgetGrid(res.Budget))
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}
	return nil
}

func persistSweep(n, q int, seed int64) error {
	pts, err := bench.RunPersist(bench.PersistConfig{N: n, Queries: q, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("# persist sweep: cold build vs snapshot save vs warm load (every loaded index verified bit-identical to its cold twin)")
	emit(bench.PersistGrid(pts))
	return nil
}

func latencyCurve(n int, seed int64) error {
	if n == 0 {
		n = 4_000_000
	}
	keys, err := dataset.Generate(dataset.USpr, 64, n, seed)
	if err != nil {
		return err
	}
	pts := bench.MeasureLatencyCurve(keys, 1<<20, 5_000, seed)
	g := bench.NewGrid("window", "linear_ns", "binary_ns", "exponential_ns")
	verbs := []string{"%d", "%.1f", "%.1f", "%.1f"}
	for _, p := range pts {
		g.Rowf(verbs, p.WindowSize, p.LinearNs, p.BinaryNs, p.ExpNs)
	}
	emit(g)
	return nil
}
