// Command shifttool builds, inspects, and tunes a Shift-Table over a
// dataset, exposing the paper's cost model (§3.7) and tuning rules (§3.9,
// §4.1) as an advisor.
//
// Usage:
//
//	shifttool -dataset face64 [-n 2000000] [-model im|linear|rs]
//	          [-mode r|s] [-m 0] [-file keys.bin] [-advise] [-rank]
//	          [-save index.snap] [-load index.snap] [-mmap]
//
// With -file, keys are loaded from a SOSD-format binary file instead of
// being generated ( -dataset then only selects the key width, e.g. any
// name ending in 32 or 64).
//
// With -save, the built index is persisted as a verified snapshot
// (DESIGN.md §9: checksummed container, atomic rename). With -load, the
// snapshot is restored instead of building anything — the warm-start
// path a serving restart takes — validated against its own keys, and
// summarised. -load ignores the build flags entirely; the key width is
// recorded in the snapshot and both widths are tried.
//
// With -mmap, -save writes the page-aligned v2 layout (DESIGN.md §12)
// and -load opens the snapshot by mapping it in place — the O(1)
// warm-start path — reporting the load mode and per-key load cost; a
// v1 snapshot under -mmap falls back to the streaming load.
//
// With -transcode, the tool rewrites an existing snapshot between
// container formats (DESIGN.md §13): -transcode in.snap -out out.snap
// -to 2 produces the page-aligned v2 layout from a v1 file (or the
// reverse with -to 1), re-deriving every section checksum, without
// rebuilding the index. This is the offline half of a rolling format
// upgrade: a fleet member that cannot read a published format yet can
// be fed a transcoded artifact byte-identical to what the publisher's
// own dual-format window would have emitted.
//
// With -rank, the tool generalises the advisor across the whole backend
// registry (internal/index): it measures this machine's L(s) curve, asks
// every backend's CostEstimator capability for its §3.7 estimate over the
// dataset, measures actual lookup latency, and prints both side by side —
// the same ranking internal/router applies per shard.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/radixspline"
	"repro/internal/snapshot"
)

func main() {
	ds := flag.String("dataset", "face64", "dataset spec (e.g. face64, uden32)")
	n := flag.Int("n", 2_000_000, "keys to generate")
	modelName := flag.String("model", "im", "CDF model hosting the layer: im, linear, or rs")
	mode := flag.String("mode", "r", "layer mode: r (range pairs) or s (midpoint shifts)")
	m := flag.Int("m", 0, "layer partitions M (0 = N, the paper's default)")
	file := flag.String("file", "", "load keys from a SOSD binary file instead of generating")
	seed := flag.Int64("seed", 42, "generation seed")
	advise := flag.Bool("advise", false, "run the cost-model advisor (measures an L(s) curve first)")
	rank := flag.Bool("rank", false, "rank every registry backend on the dataset: §3.7 estimate vs measured ns")
	save := flag.String("save", "", "persist the built index as a snapshot file")
	load := flag.String("load", "", "restore and summarise a snapshot file instead of building")
	useMmap := flag.Bool("mmap", false, "with -load: map the snapshot in place (v2 layout); with -save: write the mappable v2 layout")
	transcode := flag.String("transcode", "", "rewrite a snapshot between container formats (needs -out and -to)")
	out := flag.String("out", "", "with -transcode: output snapshot path")
	to := flag.Int("to", 0, "with -transcode: target container format (1 or 2)")
	flag.Parse()

	if *transcode != "" {
		if err := runTranscode(*transcode, *out, *to); err != nil {
			fmt.Fprintln(os.Stderr, "shifttool:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*ds, *n, *modelName, *mode, *m, *file, *seed, *advise, *rank, *save, *load, *useMmap); err != nil {
		fmt.Fprintln(os.Stderr, "shifttool:", err)
		os.Exit(1)
	}
}

func run(ds string, n int, modelName, mode string, m int, file string, seed int64, advise, rank bool, save, load string, useMmap bool) error {
	bits := 64
	if strings.HasSuffix(ds, "32") {
		bits = 32
	}
	if load != "" {
		return loadSnapshot(load, useMmap)
	}
	var keys []uint64
	var err error
	if file != "" {
		keys, err = dataset.Load(file, bits)
	} else {
		name := dataset.Name(strings.TrimSuffix(strings.TrimSuffix(ds, "64"), "32"))
		keys, err = dataset.Generate(name, bits, n, seed)
	}
	if err != nil {
		return err
	}
	if rank {
		return rankBackends(keys, seed)
	}
	fmt.Printf("dataset %s: %d keys", ds, len(keys))
	distinct, maxRun := dataset.DupStats(keys)
	fmt.Printf(" (%d distinct, longest duplicate run %d)\n", distinct, maxRun)

	var model cdfmodel.Model[uint64]
	switch modelName {
	case "im":
		model = cdfmodel.NewInterpolation(keys)
	case "linear":
		model = cdfmodel.NewLinear(keys)
	case "rs":
		rs, err := radixspline.New(keys, radixspline.Config{MaxError: 32})
		if err != nil {
			return err
		}
		model = rs
	default:
		return fmt.Errorf("unknown model %q (want im, linear, or rs)", modelName)
	}

	cfg := core.Config{M: m}
	switch mode {
	case "r":
		cfg.Mode = core.ModeRange
	case "s":
		cfg.Mode = core.ModeMidpoint
	default:
		return fmt.Errorf("unknown mode %q (want r or s)", mode)
	}
	start := time.Now()
	tab, err := core.BuildParallel(keys, model, cfg, 0) // GOMAXPROCS workers
	if err != nil {
		return err
	}
	buildMs := float64(time.Since(start).Nanoseconds()) / 1e6
	if save != "" {
		sstart := time.Now()
		saveFn := index.SaveFile[uint64]
		layout := "v1"
		if useMmap {
			saveFn, layout = index.SaveFileV2[uint64], "v2"
		}
		if err := saveFn(save, tab); err != nil {
			return err
		}
		st, err := os.Stat(save)
		if err != nil {
			return err
		}
		fmt.Printf("saved snapshot %s (%s layout, %s, %.1f ms)\n",
			save, layout, human(int(st.Size())), float64(time.Since(sstart).Nanoseconds())/1e6)
	}
	s := tab.ComputeStats()
	fmt.Printf("built in %.1f ms (%.1f ns/key, %d workers)\n",
		buildMs, buildMs*1e6/float64(len(keys)), runtime.GOMAXPROCS(0))
	fmt.Printf("\nShift-Table over %s model (monotone=%v)\n", model.Name(), model.Monotone())
	fmt.Printf("  mode %v, M=%d, entry width %d bits, footprint %s\n", s.Mode, s.M, s.EntryBits, human(s.SizeBytes))
	fmt.Printf("  empty partitions: %d (%.1f%%), max partition cardinality: %d\n",
		s.EmptyParts, 100*float64(s.EmptyParts)/float64(s.M), s.MaxCount)
	fmt.Printf("  model error: mean |drift| = %.1f records (max %d)\n", s.MeanAbsDrift, s.MaxAbsDrift)
	fmt.Printf("  corrected error: Eq.8 estimate = %.2f, measured = %.2f records\n", s.AvgErrEq8, tab.MeasuredError())
	fmt.Printf("  mean log2(local-search window) = %.2f\n", s.MeanLog2Bounds)

	adv := tab.Advise()
	fmt.Printf("\n§4.1 rule-based advice: use Shift-Table = %v (%s)\n", adv.UseShiftTable, adv.Reason)

	if advise {
		fmt.Println("\nmeasuring L(s) micro-benchmark (§2.3)...")
		curve := bench.MeasureLatencyCurve(keys, 1<<18, 3_000, seed)
		l := bench.FitLatencyFn(curve)
		// The paper's §4.1 constants: ~40 ns for the layer lookup; model
		// execution measured as ~L(1) for the register-resident models.
		modelNs := 5.0
		with := tab.EstimateWith(modelNs, 40, l)
		without := tab.EstimateWithout(modelNs, l)
		fmt.Printf("cost model (§3.7): with Shift-Table %.0f ns (model %.0f + layer %.0f + search %.0f)\n",
			with.TotalNs, with.ModelNs, with.LayerNs, with.SearchNs)
		fmt.Printf("                   without          %.0f ns (model %.0f + search %.0f)\n",
			without.TotalNs, without.ModelNs, without.SearchNs)
		if with.TotalNs < without.TotalNs {
			fmt.Printf("=> enable the layer (predicted %.1fx speedup)\n", without.TotalNs/with.TotalNs)
		} else {
			fmt.Printf("=> disable the layer (predicted %.1fx slowdown)\n", with.TotalNs/without.TotalNs)
		}
	}
	return nil
}

// rankBackends generalises the §3.7 advisor across the registry: every
// applicable backend is built, its CostEstimator estimate (where it has
// one) is evaluated under this machine's measured L(s) curve, and actual
// lookup latency is measured over a validated workload.
func rankBackends(keys []uint64, seed int64) error {
	fmt.Println("measuring L(s) micro-benchmark (§2.3)...")
	maxWin := len(keys) / 4
	if maxWin < 2 {
		maxWin = 2
	}
	l := bench.FitLatencyFn(bench.MeasureLatencyCurve(keys, maxWin, 3_000, seed))
	w := bench.NewWorkload(keys, 50_000, seed+1)
	fmt.Printf("\n%-8s %14s %14s %12s\n", "backend", "est ns (§3.7)", "measured ns", "size")
	for _, be := range index.Registry[uint64]() {
		if reason := be.Applicable(keys); reason != "" {
			fmt.Printf("%-8s N/A: %s\n", be.Name, reason)
			continue
		}
		ix, err := be.Build(keys)
		if err != nil {
			return fmt.Errorf("building %s: %w", be.Name, err)
		}
		est := "-"
		if ce, ok := ix.(index.CostEstimator); ok {
			est = fmt.Sprintf("%.0f", ce.EstimateNs(l))
		}
		ns, err := w.Measure(ix.Find, 2)
		if err != nil {
			return fmt.Errorf("measuring %s: %w", be.Name, err)
		}
		fmt.Printf("%-8s %14s %14.1f %12s\n", be.Name, est, ns, human(ix.SizeBytes()))
	}
	return nil
}

// loadSnapshot restores a snapshot file — the warm-start path — and
// summarises it. Snapshots record their key width in their key sections;
// both widths are tried (shifttool-built snapshots are 64-bit), and on
// failure both errors are reported so a corrupt 32-bit file is not
// masked by the 64-bit attempt's width-mismatch message.
func loadSnapshot(path string, useMmap bool) error {
	if useMmap {
		start := time.Now()
		ix64, mapped64, err64 := index.LoadFileMapped[uint64](path)
		if err64 == nil {
			return summarize(ix64, path, float64(time.Since(start).Nanoseconds())/1e6, loadModeName(mapped64))
		}
		start = time.Now()
		ix32, mapped32, err32 := index.LoadFileMapped[uint32](path)
		if err32 == nil {
			return summarize(ix32, path, float64(time.Since(start).Nanoseconds())/1e6, loadModeName(mapped32))
		}
		return loadFailure(path, err64, err32)
	}
	start := time.Now()
	ix64, err64 := index.LoadFile[uint64](path)
	if err64 == nil {
		return summarize(ix64, path, float64(time.Since(start).Nanoseconds())/1e6, "heap (streamed)")
	}
	start = time.Now()
	ix32, err32 := index.LoadFile[uint32](path)
	if err32 == nil {
		return summarize(ix32, path, float64(time.Since(start).Nanoseconds())/1e6, "heap (streamed)")
	}
	return loadFailure(path, err64, err32)
}

func loadModeName(mapped bool) string {
	if mapped {
		return "mapped (zero-copy)"
	}
	return "heap (streamed; snapshot not mappable)"
}

func loadFailure(path string, err64, err32 error) error {
	kind, kerr := snapshot.ReadKindFile(path)
	if kerr != nil {
		return fmt.Errorf("loading %s: %w", path, err64)
	}
	return fmt.Errorf("loading %q snapshot %s failed both ways:\n  as 64-bit keys: %v\n  as 32-bit keys: %v",
		kind, path, err64, err32)
}

// summarize prints the restored index and self-validates it against its
// own keys where the backend exposes them.
func summarize[K kv.Key](ix index.Index[K], path string, loadMs float64, loadMode string) error {
	fmt.Printf("loaded %s from %s in %.1f ms (%d-bit keys)\n",
		ix.Name(), path, loadMs, 8*kv.Width[K]())
	perKey := 0.0
	if n := ix.Len(); n > 0 {
		perKey = loadMs * 1e6 / float64(n)
	}
	fmt.Printf("  load mode: %s, %.2f ns/key\n", loadMode, perKey)
	fmt.Printf("  %d keys, index footprint %s\n", ix.Len(), human(ix.SizeBytes()))
	kp, ok := ix.(interface{ Keys() []K })
	if !ok {
		fmt.Println("  (backend does not expose keys; skipping self-validation)")
		return nil
	}
	keys := kp.Keys()
	stride := len(keys)/512 + 1
	probes := 0
	for i := 0; i < len(keys); i += stride {
		q := keys[i]
		if got, want := ix.Find(q), kv.LowerBound(keys, q); got != want {
			return fmt.Errorf("self-validation failed: Find(%v) = %d, want %d", q, got, want)
		}
		probes++
	}
	fmt.Printf("  self-validation: %d strided lower-bound probes OK\n", probes)
	return nil
}

// runTranscode rewrites src between container formats: section payloads
// pass through untouched (ranks cannot change), framing and checksums
// are re-derived. The result is verified readable before reporting.
func runTranscode(src, dst string, to int) error {
	if dst == "" {
		return fmt.Errorf("-transcode needs -out")
	}
	if to != int(snapshot.Version) && to != int(snapshot.Version2) {
		return fmt.Errorf("-to %d: supported container formats are %d and %d", to, snapshot.Version, snapshot.Version2)
	}
	from, err := snapshot.SniffVersion(src)
	if err != nil {
		return fmt.Errorf("sniffing %s: %w", src, err)
	}
	start := time.Now()
	if err := snapshot.TranscodeFile(src, dst, uint32(to)); err != nil {
		return err
	}
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	st, err := os.Stat(dst)
	if err != nil {
		return err
	}
	fmt.Printf("transcoded %s (format %d) -> %s (format %d) in %.1f ms, %s\n",
		src, from, dst, to, ms, human(int(st.Size())))
	return nil
}

func human(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
