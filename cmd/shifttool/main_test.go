package main

import (
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestRunGenerated(t *testing.T) {
	if err := run("face64", 20_000, "im", "r", 0, "", 3, false, false, "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := run("wiki64", 20_000, "linear", "s", 500, "", 3, false, false, "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := run("uspr32", 20_000, "rs", "r", 0, "", 3, false, false, "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRank(t *testing.T) {
	if err := run("uden64", 10_000, "im", "r", 0, "", 3, false, true, "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	keys := dataset.MustGenerate(dataset.Face, 64, 5_000, 3)
	path := filepath.Join(dir, "face64.bin")
	if err := dataset.Save(path, keys, 64); err != nil {
		t.Fatal(err)
	}
	if err := run("face64", 0, "im", "r", 0, path, 3, false, false, "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("face64", 1000, "nope", "r", 0, "", 3, false, false, "", "", false); err == nil {
		t.Error("want error for unknown model")
	}
	if err := run("face64", 1000, "im", "x", 0, "", 3, false, false, "", "", false); err == nil {
		t.Error("want error for unknown mode")
	}
	if err := run("nope64", 1000, "im", "r", 0, "", 3, false, false, "", "", false); err == nil {
		t.Error("want error for unknown dataset")
	}
	if err := run("face64", 0, "im", "r", 0, "/does/not/exist.bin", 3, false, false, "", "", false); err == nil {
		t.Error("want error for missing file")
	}
}

func TestRunSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.snap")
	if err := run("face64", 20_000, "im", "r", 0, "", 3, false, false, path, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run("face64", 0, "im", "r", 0, "", 3, false, false, "", path, false); err != nil {
		t.Fatal(err)
	}
	// v2 save + mapped load, and the cross-pairings: -mmap over a v1
	// snapshot falls back to the streaming load, and the streaming load
	// reads a v2 snapshot.
	v2 := filepath.Join(dir, "table2.snap")
	if err := run("face64", 20_000, "im", "r", 0, "", 3, false, false, v2, "", true); err != nil {
		t.Fatal(err)
	}
	if err := run("face64", 0, "im", "r", 0, "", 3, false, false, "", v2, true); err != nil {
		t.Fatal(err)
	}
	if err := run("face64", 0, "im", "r", 0, "", 3, false, false, "", path, true); err != nil {
		t.Fatal(err)
	}
	if err := run("face64", 0, "im", "r", 0, "", 3, false, false, "", v2, false); err != nil {
		t.Fatal(err)
	}
	// Loading garbage must fail.
	bad := filepath.Join(dir, "bad.snap")
	if err := dataset.Save(bad, dataset.MustGenerate(dataset.Face, 64, 100, 1), 64); err != nil {
		t.Fatal(err)
	}
	if err := run("face64", 0, "im", "r", 0, "", 3, false, false, "", bad, false); err == nil {
		t.Error("want error loading a non-snapshot file")
	}
}
