// Command report runs the Table 2 benchmark, puts the measured numbers side
// by side with the paper's published ones, and mechanically evaluates the
// paper's qualitative claims (who wins, by what factor). Its markdown
// output is the basis of EXPERIMENTS.md.
//
// Usage:
//
//	report [-n 2000000] [-q 100000] [-reps 2] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	n := flag.Int("n", 2_000_000, "keys per dataset")
	q := flag.Int("q", 100_000, "lookups per measurement")
	reps := flag.Int("reps", 2, "measurement repetitions")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	res, err := bench.RunTable2(bench.Table2Config{N: *n, Queries: *q, Reps: *reps, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	fmt.Printf("## Table 2: paper (200M keys, i7-6700) vs this reproduction (%dM keys, this machine)\n\n", *n/1_000_000)
	fmt.Println("Numbers are ns/lookup, `paper -> ours`. `NA` matches the paper's N/A policy.")
	fmt.Println()
	// The same grid cmd/figures renders as CSV, with a paper-comparison
	// cell format, rendered as markdown.
	res.Grid(func(ds, m string, c bench.Cell) string {
		paper, hasPaper := bench.PaperTable2[ds][m]
		switch {
		case c.NA() && hasPaper && paper == bench.PaperNA:
			return "NA -> NA"
		case c.NA():
			return "? -> NA"
		case !hasPaper:
			return fmt.Sprintf("- -> %.0f", c.Ns)
		case paper == bench.PaperNA:
			return fmt.Sprintf("NA -> %.0f", c.Ns)
		default:
			return fmt.Sprintf("%.0f -> %.0f", paper, c.Ns)
		}
	}).WriteMarkdown(os.Stdout)

	fmt.Println()
	fmt.Println("## Shape checks")
	fmt.Println()
	checks := bench.NewGrid("check", "claim", "paper", "ours", "holds")
	pass, total := 0, 0
	for _, c := range bench.CheckTable2Shape(res) {
		total++
		mark := "no"
		if c.Holds {
			pass++
			mark = "yes"
		}
		checks.Row(c.ID, c.Claim, c.Paper, c.Ours, mark)
	}
	checks.WriteMarkdown(os.Stdout)
	fmt.Printf("\n%d/%d shape checks hold.\n", pass, total)
}
