package main

import "testing"

func TestParseSpec(t *testing.T) {
	for _, s := range []string{"face64", "uden32", "wiki64", "norm32"} {
		spec, err := parseSpec(s)
		if err != nil {
			t.Errorf("parseSpec(%q): %v", s, err)
		}
		if spec.String() != s {
			t.Errorf("parseSpec(%q) = %s", s, spec)
		}
	}
	if _, err := parseSpec("bogus99"); err == nil {
		t.Error("want error for unknown spec")
	}
}
