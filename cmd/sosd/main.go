// Command sosd runs the SOSD-style benchmark of the paper's Table 2:
// lookup latency of every method over every dataset.
//
// Usage:
//
//	sosd [-n 2000000] [-q 200000] [-reps 3] [-seed 42]
//	     [-datasets face64,osmc64] [-methods IM+ST,RMI,RS] [-csv]
//
// The defaults regenerate the full fourteen-dataset table at 2M keys. Use
// -n 200000000 for the paper's scale (needs ~16 GB per 64-bit dataset plus
// index overheads).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/dataset"
)

func main() {
	n := flag.Int("n", 2_000_000, "keys per dataset")
	q := flag.Int("q", 200_000, "lookups per measurement")
	reps := flag.Int("reps", 3, "measurement repetitions (best is reported)")
	seed := flag.Int64("seed", 42, "dataset generation seed")
	datasets := flag.String("datasets", "", "comma-separated dataset list (e.g. face64,uden32); empty = the paper's fourteen")
	methods := flag.String("methods", "", "comma-separated method list; empty = all")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	cfg := bench.Table2Config{N: *n, Queries: *q, Reps: *reps, Seed: *seed}
	if *datasets != "" {
		for _, s := range strings.Split(*datasets, ",") {
			spec, err := parseSpec(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.Datasets = append(cfg.Datasets, spec)
		}
	}
	if *methods != "" {
		cfg.Methods = strings.Split(*methods, ",")
	}
	res, err := bench.RunTable2(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sosd:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Print(res.Format())
	fmt.Println()
	for _, row := range res.Rows {
		name, ns, margin := row.Winner()
		fmt.Printf("%-8s fastest: %-8s %8.1f ns (%.2fx over runner-up)\n", row.Spec.String(), name, ns, margin)
	}
}

func parseSpec(s string) (dataset.Spec, error) {
	for _, spec := range dataset.Table2 {
		if spec.String() == s {
			return spec, nil
		}
	}
	// Allow names outside the Table 2 set (e.g. norm32 variants).
	for _, name := range dataset.Names {
		for _, bits := range []int{32, 64} {
			spec := dataset.Spec{Name: name, Bits: bits}
			if spec.String() == s {
				return spec, nil
			}
		}
	}
	return dataset.Spec{}, fmt.Errorf("sosd: unknown dataset %q", s)
}
