// Command shiftload is the open-loop load generator for shiftserver: it
// fires point lookups at a fixed arrival rate (or closed-loop with
// -rate 0), measures latency from each request's SCHEDULED time (so
// server-side queueing is charged to the server, not hidden by a stalled
// client — no coordinated omission), and reports p50/p99/p999 plus
// error counts, optionally as JSON for the figures pipeline.
//
// Usage:
//
//	shiftload -url http://HOST:PORT [-rate 2000] [-duration 5s]
//	          [-workers 8] [-seed 7] [-poolsize 4096] [-max 0]
//	          [-verify -store DIR|URL] [-json FILE]
//
// With -verify, every response's (rank, version) pair is checked
// bit-exactly against the per-version oracles the publisher wrote into
// -store (shiftrepl publish -oracle): the version tag selects the
// oracle, fetched lazily and cached, so verification stays sound even
// while the primary publishes new versions mid-run. The query pool is
// regenerated from the oracle's recorded seed/size/bound, guaranteeing
// generator and oracle agree on what query i is.
//
// Exit status: 2 if any response was incorrect (rank mismatch or a
// version no oracle explains), 1 if transport errors occurred or nothing
// completed, 0 otherwise. Admission refusals (429/503) are counted and
// reported separately — backpressure is the server working as designed,
// not a correctness failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/replica"
	"repro/internal/serve"
)

type report struct {
	Mode          string  `json:"mode"` // "open" or "closed"
	RateQPS       float64 `json:"rate_qps"`
	DurationS     float64 `json:"duration_s"`
	Workers       int     `json:"workers"`
	Completed     uint64  `json:"completed"`
	Errors        uint64  `json:"errors"`
	Rejected      uint64  `json:"rejected"`
	Incorrect     uint64  `json:"incorrect"`
	Verified      uint64  `json:"verified"`
	Versions      int     `json:"versions_observed"`
	P50us         int64   `json:"p50_us"`
	P99us         int64   `json:"p99_us"`
	P999us        int64   `json:"p999_us"`
	MaxUs         int64   `json:"max_us"`
	ThroughputQPS float64 `json:"throughput_qps"`
}

func main() {
	if code := run(); code != 0 {
		os.Exit(code)
	}
}

func run() int {
	url := flag.String("url", "", "shiftserver base URL, e.g. http://127.0.0.1:8422 (required)")
	rate := flag.Float64("rate", 2000, "open-loop arrival rate in QPS (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	workers := flag.Int("workers", 8, "concurrent connections")
	seed := flag.Int64("seed", 7, "query pool seed (ignored with -verify: the oracle's pool is used)")
	poolSize := flag.Int("poolsize", 4096, "query pool size (ignored with -verify)")
	maxKey := flag.Uint64("max", 0, "query key bound, 0 = full domain (ignored with -verify)")
	verify := flag.Bool("verify", false, "verify every response against per-version oracles in -store")
	store := flag.String("store", "", "oracle store: directory or http(s) base URL (required with -verify)")
	jsonOut := flag.String("json", "", "write the report as JSON to this file")
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "shiftload: -url is required")
		return 1
	}

	// A load run interrupted with Ctrl-C should stop pacing promptly and
	// still print the partial report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: *workers * 2},
	}

	v := &verifier{}
	var pool []uint64
	if *verify {
		if *store == "" {
			fmt.Fprintln(os.Stderr, "shiftload: -verify requires -store")
			return 1
		}
		s, err := openStore(*store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftload:", err)
			return 1
		}
		v.store = s
		// Bootstrap the pool from the currently-served version's oracle;
		// later versions reuse the same pool parameters by construction.
		ver, err := servedVersion(client, *url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftload: reading /statusz:", err)
			return 1
		}
		o, err := v.oracle(ctx, ver)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shiftload: no oracle for served version %d: %v\n", ver, err)
			return 1
		}
		pool = o.Pool()
		fmt.Printf("verifying against oracles in %s (pool: %d keys, seed %d)\n", *store, len(pool), o.Seed)
	} else {
		pool = serve.QueryPool(*seed, *poolSize, *maxKey)
	}

	var completed, errors, rejected, incorrect, verified atomic.Uint64
	var mu sync.Mutex
	var lat []int64 // µs, successful requests only

	record := func(us int64) {
		mu.Lock()
		lat = append(lat, us)
		mu.Unlock()
	}

	fire := func(rnd uint64) (ok bool) {
		idx := int(rnd % uint64(len(pool)))
		resp, err := client.Get(fmt.Sprintf("%s/v1/find?key=%d", *url, pool[idx]))
		if err != nil {
			errors.Add(1)
			return false
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected.Add(1)
			return false
		default:
			errors.Add(1)
			return false
		}
		var fr struct {
			Rank    int    `json:"rank"`
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			errors.Add(1)
			return false
		}
		completed.Add(1)
		if *verify {
			o, err := v.oracle(ctx, fr.Version)
			if err != nil {
				// A served version whose oracle cannot be fetched is
				// unexplainable — that is a correctness failure under the
				// oracle-before-publish discipline.
				fmt.Fprintf(os.Stderr, "shiftload: unexplained version %d: %v\n", fr.Version, err)
				incorrect.Add(1)
				return true
			}
			if idx >= len(o.Ranks) || fr.Rank != o.Ranks[idx] {
				fmt.Fprintf(os.Stderr, "shiftload: find(%d)@v%d = %d, oracle says %d\n",
					pool[idx], fr.Version, fr.Rank, o.Ranks[idx])
				incorrect.Add(1)
				return true
			}
			verified.Add(1)
		}
		return true
	}

	start := time.Now()
	var wg sync.WaitGroup
	if *rate > 0 {
		// Open loop: request i is scheduled at start + i/rate; worker w
		// owns the arithmetic progression i ≡ w (mod workers). Latency is
		// completion minus SCHEDULED time.
		interval := time.Duration(float64(time.Second) / *rate)
		total := int(float64(*duration) / float64(interval))
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < total; i += *workers {
					sched := start.Add(time.Duration(i) * interval)
					if d := time.Until(sched); d > 0 {
						if !sleepCtx(ctx, d) {
							return
						}
					}
					if fire(uint64(i)*2654435761 + uint64(w)) {
						record(time.Since(sched).Microseconds())
					}
				}
			}(w)
		}
	} else {
		// Closed loop: each worker back-to-back; latency is per-request
		// round trip. This is the throughput probe.
		deadline := start.Add(*duration)
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := uint64(w); time.Now().Before(deadline); i += uint64(*workers) {
					t0 := time.Now()
					if fire(i*2654435761 + uint64(w)) {
						record(time.Since(t0).Microseconds())
					}
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep := report{
		Mode: "open", RateQPS: *rate, DurationS: elapsed.Seconds(),
		Workers: *workers, Completed: completed.Load(), Errors: errors.Load(),
		Rejected: rejected.Load(), Incorrect: incorrect.Load(), Verified: verified.Load(),
		Versions: v.count(),
		P50us:    pct(lat, 0.50), P99us: pct(lat, 0.99), P999us: pct(lat, 0.999),
		ThroughputQPS: float64(completed.Load()) / elapsed.Seconds(),
	}
	if *rate == 0 {
		rep.Mode = "closed"
	}
	if n := len(lat); n > 0 {
		rep.MaxUs = lat[n-1]
	}

	fmt.Printf("%s loop: %d completed in %.2fs (%.0f qps), %d errors, %d rejected\n",
		rep.Mode, rep.Completed, rep.DurationS, rep.ThroughputQPS, rep.Errors, rep.Rejected)
	fmt.Printf("latency: p50 %dµs  p99 %dµs  p999 %dµs  max %dµs\n",
		rep.P50us, rep.P99us, rep.P999us, rep.MaxUs)
	if *verify {
		fmt.Printf("verified %d responses across %d versions, %d incorrect\n",
			rep.Verified, rep.Versions, rep.Incorrect)
	}
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "shiftload: writing -json:", err)
			return 1
		}
	}

	switch {
	case rep.Incorrect > 0:
		return 2
	case rep.Errors > 0 || rep.Completed == 0:
		return 1
	}
	return 0
}

// verifier lazily fetches and caches per-version oracles.
type verifier struct {
	store replica.Store
	mu    sync.Mutex
	cache map[uint64]*serve.Oracle
}

func (v *verifier) oracle(ctx context.Context, version uint64) (*serve.Oracle, error) {
	v.mu.Lock()
	if o, ok := v.cache[version]; ok {
		v.mu.Unlock()
		return o, nil
	}
	v.mu.Unlock()
	// Fetch outside the lock; a duplicate fetch on a race is harmless.
	o, err := serve.FetchOracle(ctx, v.store, version)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	if v.cache == nil {
		v.cache = make(map[uint64]*serve.Oracle)
	}
	v.cache[version] = o
	v.mu.Unlock()
	return o, nil
}

func (v *verifier) count() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.cache)
}

// servedVersion scrapes the serving version from /statusz.
func servedVersion(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("statusz: HTTP %d", resp.StatusCode)
	}
	var st struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Version == 0 {
		return 0, fmt.Errorf("server has no version installed")
	}
	return st.Version, nil
}

// pct reads a percentile off a sorted latency slice.

// sleepCtx pauses for d or until ctx is cancelled, reporting whether the
// full pause elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func pct(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func openStore(spec string) (replica.Store, error) {
	if strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
		return replica.HTTPStore{Base: spec}, nil
	}
	return replica.DirStore{Dir: spec}, nil
}
