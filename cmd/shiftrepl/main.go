// Command shiftrepl drives the replication subsystem (DESIGN.md §10):
// a primary publishes versioned snapshots and generation deltas into a
// store, replicas fetch, verify, and atomically swap them.
//
// Usage:
//
//	shiftrepl publish -store DIR|URL [-dataset face64] [-n 200000]
//	          [-rounds 3] [-writes 2000] [-seed 42] [-spool DIR]
//	          [-oracle 0] [-oracleseed 7]
//	shiftrepl fetch   -store DIR|URL -dir REPLICADIR [-q 8]
//	          [-watch 0s] [-fault kind[:offset[:count]]]
//	shiftrepl serve   -store DIR -addr :8421 [-drain 10s]
//
// A -store value starting with http:// or https:// selects the HTTP
// transport; anything else is a local directory. publish builds a
// primary over the dataset, publishes the base full snapshot, then
// applies -writes random writes per round and publishes each round (the
// publisher decides full vs delta). fetch opens (or warm-restarts) a
// replica over -dir, syncs with retry/backoff, prints its status, and
// answers -q sample queries from the verified index; -watch keeps
// syncing at that interval until interrupted. -fault injects a failure
// into the fetch transport to demonstrate retry and last-good
// degradation. serve exposes a directory store over HTTP for remote
// replicas on a hardened server (request timeouts, bounded headers)
// that drains gracefully on SIGINT/SIGTERM.
//
// -oracle N publishes, BEFORE each version's manifest appears, an
// oracle object with the version's reference ranks for an N-key
// deterministic query pool (seed -oracleseed), computed on the primary
// via the scan path. shiftload -verify correlates every served
// response's version tag against these oracles, so correctness is
// checkable end to end even while publishing continues mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
	"repro/internal/replica"
	"repro/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "publish":
		err = publish(os.Args[2:])
	case "fetch":
		err = fetch(os.Args[2:])
	case "serve":
		err = serveStore(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftrepl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: shiftrepl publish|fetch|serve [flags] (see -h of each)")
	os.Exit(2)
}

// openStore maps -store to a transport: http(s):// → HTTPStore, else a
// local directory (created if missing).
func openStore(spec string) (replica.Store, error) {
	if strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
		return replica.HTTPStore{Base: spec}, nil
	}
	if err := os.MkdirAll(spec, 0o755); err != nil {
		return nil, err
	}
	return replica.DirStore{Dir: spec}, nil
}

func publish(args []string) error {
	fs := flag.NewFlagSet("publish", flag.ExitOnError)
	store := fs.String("store", "", "store directory or http(s) base URL (required)")
	ds := fs.String("dataset", "face64", "dataset spec for the primary")
	n := fs.Int("n", 200_000, "base key count")
	rounds := fs.Int("rounds", 3, "write+publish rounds after the base version")
	writes := fs.Int("writes", 2000, "random writes per round")
	seed := fs.Int64("seed", 42, "dataset and write seed")
	spool := fs.String("spool", "", "spool directory for staging artifacts (default: temp)")
	oracle := fs.Int("oracle", 0, "publish per-version oracles for an N-key query pool (0 = off)")
	oracleSeed := fs.Int64("oracleseed", 7, "oracle query pool seed")
	formats := fs.String("formats", "", "comma-separated container formats each full is published in, primary first (e.g. 2,1 for a dual-format window; default: v2 only)")
	fs.Parse(args)
	if *store == "" {
		return fmt.Errorf("publish: -store is required")
	}
	var pubFormats []uint32
	if *formats != "" {
		for _, f := range strings.Split(*formats, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
			if err != nil {
				return fmt.Errorf("publish: -formats %q: %v", *formats, err)
			}
			pubFormats = append(pubFormats, uint32(v))
		}
	}

	s, err := openStore(*store)
	if err != nil {
		return err
	}
	bits := 64
	if strings.HasSuffix(*ds, "32") {
		bits = 32
	}
	name := dataset.Name(strings.TrimSuffix(strings.TrimSuffix(*ds, "64"), "32"))
	keys, err := dataset.Generate(name, bits, *n, *seed)
	if err != nil {
		return err
	}
	primary, err := concurrent.New(keys, concurrent.Config{
		Policy: concurrent.CompactionPolicy{Kind: concurrent.Manual},
	})
	if err != nil {
		return err
	}
	defer primary.Close()

	ctx := context.Background()
	pub, err := replica.NewPublisher(ctx, s, primary, replica.PublisherConfig{Spool: *spool, Formats: pubFormats})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	top := keys[len(keys)-1] + 2
	for round := 0; round <= *rounds; round++ {
		if round > 0 {
			for w := 0; w < *writes; w++ {
				if w%4 == 0 {
					primary.Delete(keys[rng.Intn(len(keys))])
				} else {
					primary.Insert(rng.Uint64() % top)
				}
			}
		}
		start := time.Now()
		if *oracle > 0 {
			// Oracle first, then Publish: the manifest must never name a
			// version whose oracle is not already fetchable.
			pool := serve.QueryPool(*oracleSeed, *oracle, top)
			o := &serve.Oracle{
				Version: pub.Version() + 1,
				Seed:    *oracleSeed,
				Max:     top,
				Ranks:   serve.OracleRanks(primary.Published(), pool),
			}
			if err := serve.PutOracle(ctx, s, o); err != nil {
				return fmt.Errorf("publishing oracle for version %d: %w", o.Version, err)
			}
		}
		v, full, err := pub.Publish(ctx)
		if err != nil {
			return err
		}
		kind := "delta"
		if full {
			kind = "full"
		}
		m := pub.Manifest()
		e := m.Lookup(v)
		fmt.Printf("published version %d (%s, %d keys, %.1f KB) in %.1f ms\n",
			v, kind, e.Keys, float64(e.Size)/1024, float64(time.Since(start).Microseconds())/1000)
	}
	return nil
}

// parseFault reads kind[:offset[:count]], e.g. "truncate:4096" or
// "stall::3".
func parseFault(spec string) (replica.Fault, error) {
	kinds := map[string]replica.FaultKind{
		"truncate": replica.FaultTruncate, "bitflip": replica.FaultBitFlip,
		"stall": replica.FaultStall, "error": replica.FaultError,
		"notfound": replica.FaultNotFound,
	}
	parts := strings.Split(spec, ":")
	k, ok := kinds[parts[0]]
	if !ok {
		return replica.Fault{}, fmt.Errorf("unknown fault kind %q (want truncate, bitflip, stall, error, notfound)", parts[0])
	}
	f := replica.Fault{Kind: k, Count: 1, Delay: time.Hour}
	if len(parts) > 1 && parts[1] != "" {
		off, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return replica.Fault{}, fmt.Errorf("fault offset %q: %v", parts[1], err)
		}
		f.Offset = off
	}
	if len(parts) > 2 && parts[2] != "" {
		c, err := strconv.Atoi(parts[2])
		if err != nil {
			return replica.Fault{}, fmt.Errorf("fault count %q: %v", parts[2], err)
		}
		f.Count = c
	}
	return f, nil
}

func fetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	store := fs.String("store", "", "store directory or http(s) base URL (required)")
	dir := fs.String("dir", "", "local replica state directory (required)")
	q := fs.Int("q", 8, "sample queries to answer from the synced index")
	watch := fs.Duration("watch", 0, "keep syncing at this interval (0 = sync once)")
	faultSpec := fs.String("fault", "", "inject a transport fault: kind[:offset[:count]]")
	seed := fs.Int64("seed", 7, "sample query seed")
	fs.Parse(args)
	if *store == "" || *dir == "" {
		return fmt.Errorf("fetch: -store and -dir are required")
	}

	s, err := openStore(*store)
	if err != nil {
		return err
	}
	if *faultSpec != "" {
		f, err := parseFault(*faultSpec)
		if err != nil {
			return err
		}
		injected := replica.NewFaultStore(s)
		injected.Inject(f)
		s = injected
		fmt.Printf("injected %s fault at offset %d (count %d)\n", f.Kind, f.Offset, f.Count)
	}

	r, err := replica.NewReplica[uint64](s, *dir, replica.ReplicaConfig{})
	if err != nil {
		return err
	}
	defer r.Close()
	if v := r.Index().Tag(); v != 0 {
		fmt.Printf("warm restart: serving version %d from local state\n", v)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for {
		start := time.Now()
		err := r.Sync(ctx)
		st := r.Status()
		if err != nil {
			fmt.Printf("sync failed after %.1f ms: %v\n", float64(time.Since(start).Microseconds())/1000, err)
			fmt.Printf("degraded: serving last-good version %d (latest seen %d, stale=%v, failures=%d)\n",
				st.Version, st.Latest, st.Stale, st.Failures)
		} else {
			fmt.Printf("synced to version %d in %.1f ms (stale=%v)\n",
				st.Version, float64(time.Since(start).Microseconds())/1000, st.Stale)
		}
		if st.Version != 0 && *q > 0 {
			ix := r.Index()
			rng := rand.New(rand.NewSource(*seed))
			qs := make([]uint64, *q)
			for i := range qs {
				qs[i] = rng.Uint64()
			}
			ranks, tag := ix.FindBatchTagged(qs, nil)
			for i, key := range qs {
				fmt.Printf("  find(%d) = rank %d @ version %d\n", key, ranks[i], tag)
			}
			fmt.Printf("index: %s, %d keys, %.1f MB\n", ix.Name(), ix.Len(), float64(ix.SizeBytes())/(1<<20))
		}
		if *watch == 0 {
			if err != nil && st.Version == 0 {
				return fmt.Errorf("no version available to serve")
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*watch):
		}
	}
}

func serveStore(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	store := fs.String("store", "", "store directory to expose (required)")
	addr := fs.String("addr", ":8421", "listen address")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	fs.Parse(args)
	if *store == "" {
		return fmt.Errorf("serve: -store is required")
	}
	if err := os.MkdirAll(*store, 0o755); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Hardened server, not bare ListenAndServe: slowloris/read/write
	// bounds set, and SIGINT/SIGTERM drains in-flight artifact transfers
	// for up to -drain before tearing connections down.
	srv := serve.NewHTTPServer(*addr, replica.NewHandler(replica.DirStore{Dir: *store}), serve.ServerConfig{})
	fmt.Printf("serving %s on %s\n", *store, *addr)
	err := serve.Run(ctx, srv, *drain, func() { fmt.Println("draining: signal received") })
	if err == nil {
		fmt.Println("shut down cleanly")
	}
	return err
}
