package main

import (
	"testing"
	"time"

	"repro/internal/replica"
)

func TestParseFault(t *testing.T) {
	f, err := parseFault("truncate:4096")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != replica.FaultTruncate || f.Offset != 4096 || f.Count != 1 {
		t.Fatalf("parseFault: %+v", f)
	}
	f, err = parseFault("stall::3")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != replica.FaultStall || f.Offset != 0 || f.Count != 3 || f.Delay != time.Hour {
		t.Fatalf("parseFault: %+v", f)
	}
	for _, bad := range []string{"", "gizmo", "truncate:x", "stall:0:y"} {
		if _, err := parseFault(bad); err == nil {
			t.Errorf("parseFault(%q) accepted", bad)
		}
	}
}

func TestOpenStore(t *testing.T) {
	if s, err := openStore("https://example.com/snapshots"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(replica.HTTPStore); !ok {
		t.Fatalf("https spec gave %T, want HTTPStore", s)
	}
	dir := t.TempDir() + "/store"
	if s, err := openStore(dir); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(replica.DirStore); !ok {
		t.Fatalf("dir spec gave %T, want DirStore", s)
	}
}
