// Command shiftserver is the networked query tier (DESIGN.md §11): it
// serves HTTP/JSON point lookups, ranges, and batches off a lock-free
// replica of a published index, coalescing concurrently-arriving single
// lookups into batched FindBatchTagged waves (one atomic snapshot load
// per wave), while a background loop keeps the replica synced to the
// primary's store. Admission is bounded (typed 429/503) and SIGTERM
// drains gracefully.
//
// Usage:
//
//	shiftserver -store DIR|URL -dir REPLICADIR [-addr :8422]
//	            [-watch 150ms] [-mode coalesce|direct] [-wave 256]
//	            [-maxwait 0s] [-queue 1024] [-inflight 256] [-drain 10s]
//	            [-admin] [-max-format N] [-wait-ready=true]
//	shiftserver -fleet URL1,URL2,... [-addr :8421] [-probe 100ms]
//
// The server refuses to start until a first version is installed (or
// warm-restarted from -dir), so it never serves an empty index. Every
// response carries the snapshot version tag that produced it, which
// shiftload -verify correlates against the per-version oracles the
// publisher wrote (shiftrepl publish -oracle).
//
// With -wait-ready=false the server listens immediately and reports
// "starting" on /healthz until the first version installs — the shape a
// fleet-managed backend wants, where the front tier routes around a
// member that is still warming. -admin enables POST /admin/drain and
// /admin/undrain, the levers the rolling-upgrade driver uses.
// -max-format caps the container format this replica will load directly
// (older formats are accepted; newer published formats are bridged by a
// local transcode, DESIGN.md §13) — it models an old-binary fleet member
// during a mixed-version window.
//
// With -fleet, the binary is instead the front tier (internal/fleet):
// it health-checks the listed backends, proxies /v1/* around draining
// or dead ones with transparent failover, and exposes the fleet-level
// /healthz and /statusz.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/replica"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shiftserver:", err)
		os.Exit(1)
	}
}

func run() error {
	store := flag.String("store", "", "artifact store: directory or http(s) base URL (required)")
	dir := flag.String("dir", "", "local replica state directory (required)")
	addr := flag.String("addr", ":8422", "listen address (use :0 for an ephemeral port)")
	watch := flag.Duration("watch", 150*time.Millisecond, "replica sync interval")
	mode := flag.String("mode", "coalesce", "serving mode: coalesce (wave-batched) or direct (per-request)")
	wave := flag.Int("wave", serve.DefaultWave, "max queries per coalesced wave")
	maxWait := flag.Duration("maxwait", 0, "coalescer linger for wave fill (0 = greedy)")
	queue := flag.Int("queue", 0, "coalescer admission queue bound (0 = 4x wave)")
	inflight := flag.Int("inflight", 256, "max concurrent uncoalesced requests")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	loadMode := flag.String("load", "auto", "artifact load mode: auto (map v2 artifacts when the platform supports it), mmap, or heap")
	admin := flag.Bool("admin", false, "enable POST /admin/drain and /admin/undrain")
	maxFormat := flag.Uint("max-format", 0, "highest container format to load directly; newer published formats are bridged by a local transcode (0 = any readable)")
	waitReady := flag.Bool("wait-ready", true, "block until a first version installs before listening (false: listen immediately, /healthz reports starting)")
	fleetURLs := flag.String("fleet", "", "run as the fleet front tier over these comma-separated backend URLs instead of serving a replica")
	probe := flag.Duration("probe", 100*time.Millisecond, "with -fleet: backend health-check interval")
	flag.Parse()
	if *fleetURLs != "" {
		return runFleet(*fleetURLs, *addr, *probe, *drain)
	}
	if *store == "" || *dir == "" {
		return fmt.Errorf("-store and -dir are required")
	}
	var lm replica.LoadMode
	switch *loadMode {
	case "auto":
		lm = replica.LoadAuto
	case "mmap":
		lm = replica.LoadMap
	case "heap":
		lm = replica.LoadHeap
	default:
		return fmt.Errorf("-load %q: want auto, mmap, or heap", *loadMode)
	}
	coalesce := false
	switch *mode {
	case "coalesce":
		coalesce = true
	case "direct":
	default:
		return fmt.Errorf("-mode %q: want coalesce or direct", *mode)
	}

	s, err := openStore(*store)
	if err != nil {
		return err
	}
	r, err := replica.NewReplica[uint64](s, *dir, replica.ReplicaConfig{LoadMode: lm, MaxFormat: uint32(*maxFormat)})
	if err != nil {
		return err
	}
	defer r.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *waitReady {
		// Never serve an empty index: sync until a first version installs
		// (warm restart counts), surfacing degradation while we wait.
		for r.Index().Tag() == 0 {
			if err := r.Sync(ctx); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				fmt.Fprintf(os.Stderr, "shiftserver: waiting for first version: %v\n", err)
				select {
				case <-time.After(*watch):
				case <-ctx.Done():
					return ctx.Err()
				}
				continue
			}
		}
	} else if err := r.Sync(ctx); err != nil && ctx.Err() == nil {
		// One opportunistic sync so an already-published store serves
		// from the first request; otherwise the background loop brings
		// the first version in while /healthz reports "starting" and the
		// fleet routes around us.
		fmt.Fprintf(os.Stderr, "shiftserver: starting before first version: %v\n", err)
	}
	if r.Index().Tag() != 0 {
		st := r.Status()
		serving := "heap"
		if st.Mapped {
			serving = fmt.Sprintf("mapped, %d bytes", st.MappedBytes)
		}
		detail := ""
		if st.Transcoded {
			detail = fmt.Sprintf(", bridged to format %d", st.Format)
		}
		fmt.Printf("serving version %d (%d keys, %s, %s%s)\n", st.Version, r.Index().Len(), r.Index().Name(), serving, detail)
	}

	// Background sync keeps the serving snapshots fresh; failures degrade
	// to last-good (the replica's contract), so the serving path never
	// blocks on the store.
	syncDone := make(chan struct{})
	go func() {
		defer close(syncDone)
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(*watch):
			}
			if err := r.Sync(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "shiftserver: sync: %v (serving last-good %d)\n", err, r.Status().Version)
			}
		}
	}()

	var co *serve.Coalescer[uint64]
	if coalesce {
		co = serve.NewCoalescer(r.Index(), serve.CoalescerConfig{
			MaxWave: *wave, MaxWait: *maxWait, Queue: *queue,
		})
	}
	h := serve.NewHandler(r.Index(), co, serve.HandlerConfig{
		Coalesce: coalesce, MaxInflight: *inflight,
		Admin: *admin,
		Ready: func() bool { return r.Index().Tag() != 0 },
	}, func() map[string]any {
		st := r.Status()
		m := map[string]any{
			"replica_version": st.Version,
			"replica_latest":  st.Latest,
			"replica_stale":   st.Stale,
			"sync_failures":   st.Failures,
			"format":          st.Format,
			"transcoded":      st.Transcoded,
		}
		if st.LastDecision != "" {
			m["format_decision"] = st.LastDecision
		}
		if st.LastErr != nil {
			m["sync_last_error"] = st.LastErr.Error()
		}
		return m
	})

	srv := serve.NewHTTPServer(*addr, h, serve.ServerConfig{})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Bound address on its own line so harnesses using :0 can scrape it.
	fmt.Printf("listening on %s (mode %s)\n", ln.Addr(), *mode)
	err = serve.RunListener(ctx, srv, ln, *drain, func() {
		fmt.Println("draining: refusing new work, finishing in-flight requests")
		h.SetDraining(true)
	})
	<-syncDone
	if co != nil {
		co.Close() // answer any admitted stragglers before exit
	}
	if err == nil {
		fmt.Printf("shut down cleanly: served %d, rejected %d\n", h.Served(), h.Rejected())
	}
	return err
}

// runFleet serves the front tier: health-check the backends, proxy
// /v1/* around draining or dead ones. The pool is an http.Handler, so
// the serving scaffolding (timeouts, graceful drain) is shared with the
// replica mode.
func runFleet(urls, addr string, probe, drain time.Duration) error {
	var backends []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			backends = append(backends, u)
		}
	}
	p, err := fleet.NewPool(backends, fleet.PoolConfig{Probe: probe})
	if err != nil {
		return err
	}
	defer p.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.NewHTTPServer(addr, p, serve.ServerConfig{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s (fleet over %d backends)\n", ln.Addr(), len(backends))
	err = serve.RunListener(ctx, srv, ln, drain, func() {
		fmt.Println("draining: finishing in-flight proxied requests")
	})
	if err == nil {
		fmt.Printf("shut down cleanly: proxied %d, retries %d, failures %d\n", p.Proxied(), p.Retries(), p.Failures())
	}
	return err
}

func openStore(spec string) (replica.Store, error) {
	if strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
		return replica.HTTPStore{Base: spec}, nil
	}
	if err := os.MkdirAll(spec, 0o755); err != nil {
		return nil, err
	}
	return replica.DirStore{Dir: spec}, nil
}
