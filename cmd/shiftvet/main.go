// Command shiftvet runs the repo's project-invariant analyzer suite
// (internal/analysis: lockfreepath, boundedmake, snaponce, ctxretry,
// sentinelcmp) plus curated stock passes (atomic, copylock, lostcancel,
// unusedresult) over Go packages. CI gates on it; see DESIGN.md §14 for
// the invariant table and waiver syntax.
//
// Usage:
//
//	shiftvet [-json] [packages]       # default ./...
//
// shiftvet is a go-vet tool twice over: invoked with the unitchecker
// protocol (-V=full / -flags / unit.cfg) it analyzes one compilation
// unit, which is how facts propagate across packages with build-cache
// incrementality; invoked plainly it re-executes itself through
// "go vet -vettool=<self>" so `shiftvet ./...` is the whole workflow.
// -json forwards the analysis driver's JSON diagnostic mode, one object
// per package, so tooling can diff findings across PRs.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	shiftanalysis "repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		a := args[0]
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") || a == "help" {
			unitchecker.Main(shiftanalysis.All...) // does not return
		}
	}

	jsonOut := false
	var pkgs []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: shiftvet [-json] [packages]  (default ./...)")
			os.Exit(2)
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "shiftvet: unknown flag %s\n", a)
				os.Exit(2)
			}
			pkgs = append(pkgs, a)
		}
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shiftvet: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	vetArgs = append(vetArgs, pkgs...)

	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "shiftvet: running go vet: %v\n", err)
		os.Exit(1)
	}
}
