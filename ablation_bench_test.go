// Ablation benchmarks for the design choices called out in DESIGN.md §4:
// the linear-to-binary local-search threshold (Alg. 1), the drift entry
// packing (§3.9), range vs midpoint windows (§3.4), the monotone-model fast
// path vs the validate-and-fallback path (§3.8), and the sampled build
// (§3.4).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kv"
	"repro/internal/search"
)

// BenchmarkAblationWindowThreshold justifies Alg. 1's linear-to-binary
// switch (8 keys in the paper, §3.8): linear vs binary bounded search over
// window sizes bracketing the threshold.
func BenchmarkAblationWindowThreshold(b *testing.B) {
	keys := keysFor(b, dataset.Spec{Name: dataset.USpr, Bits: 64})
	w := bench100kWindows(keys)
	for _, size := range []int{2, 4, 8, 16, 32, 64} {
		size := size
		b.Run(fmt.Sprintf("linear/w=%d", size), func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				p := w[i%len(w)]
				end := kv.Clamp(p+size, 0, len(keys))
				sink += search.LinearRange(keys, p, end, keys[kv.Clamp(p+size/2, 0, len(keys)-1)])
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("binary/w=%d", size), func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				p := w[i%len(w)]
				end := kv.Clamp(p+size, 0, len(keys))
				sink += search.BinaryRange(keys, p, end, keys[kv.Clamp(p+size/2, 0, len(keys)-1)])
			}
			_ = sink
		})
	}
}

func bench100kWindows(keys []uint64) []int {
	w := make([]int, 1<<15)
	x := uint64(88172645463325252)
	for i := range w {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		w[i] = int(x % uint64(len(keys)))
	}
	return w
}

// BenchmarkAblationRangeVsMidpoint compares the two layer flavours (§3.4):
// R (bounded window, binary/linear search) vs S (midpoint, exponential).
func BenchmarkAblationRangeVsMidpoint(b *testing.B) {
	for _, specName := range []dataset.Name{dataset.Face, dataset.Osmc} {
		keys := keysFor(b, dataset.Spec{Name: specName, Bits: 64})
		model := cdfmodel.NewInterpolation(keys)
		for _, mode := range []core.Mode{core.ModeRange, core.ModeMidpoint} {
			tab, err := core.Build(keys, model, core.Config{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s64/%v", specName, mode), func(b *testing.B) {
				b.ReportMetric(float64(tab.SizeBytes()), "layerbytes")
				sink := 0
				for i := 0; i < b.N; i++ {
					sink += tab.Find(keys[(i*2654435761)%len(keys)])
				}
				_ = sink
			})
		}
	}
}

// BenchmarkAblationMonotoneFallback measures the cost of the §3.8
// validate-and-fallback path by wrapping the same monotone model in a
// wrapper that denies monotonicity.
func BenchmarkAblationMonotoneFallback(b *testing.B) {
	keys := keysFor(b, dataset.Spec{Name: dataset.Face, Bits: 64})
	model := cdfmodel.NewInterpolation(keys)
	for _, claim := range []bool{true, false} {
		var m cdfmodel.Model[uint64] = model
		if !claim {
			m = denyMonotone{model}
		}
		tab, err := core.Build(keys, m, core.Config{Mode: core.ModeRange})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("monotone=%v", claim), func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += tab.Find(keys[(i*2654435761)%len(keys)])
			}
			_ = sink
		})
	}
}

type denyMonotone struct{ cdfmodel.Model[uint64] }

func (denyMonotone) Monotone() bool { return false }

// BenchmarkAblationSampledBuild measures the §3.4 sampled midpoint build:
// build time and residual error as the sample stride grows.
func BenchmarkAblationSampledBuild(b *testing.B) {
	keys := keysFor(b, dataset.Spec{Name: dataset.Amzn, Bits: 64})
	model := cdfmodel.NewInterpolation(keys)
	for _, stride := range []int{1, 8, 64, 512} {
		stride := stride
		b.Run(fmt.Sprintf("stride=%d", stride), func(b *testing.B) {
			var tab *core.Table[uint64]
			var err error
			for i := 0; i < b.N; i++ {
				tab, err = core.Build(keys, model, core.Config{Mode: core.ModeMidpoint, SampleStride: stride})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tab.MeasuredError(), "residual-err")
		})
	}
}

// BenchmarkAblationEntryWidth reports the drift entry width the packer
// picks per dataset (§3.9) and the lookup cost at that width.
func BenchmarkAblationEntryWidth(b *testing.B) {
	for _, name := range []dataset.Name{dataset.UDen, dataset.Face, dataset.LogN} {
		keys := keysFor(b, dataset.Spec{Name: name, Bits: 64})
		tab, err := core.Build(keys, cdfmodel.NewInterpolation(keys), core.Config{Mode: core.ModeRange})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s64", name), func(b *testing.B) {
			b.ReportMetric(float64(tab.EntryBits()), "entrybits")
			b.ReportMetric(float64(tab.SizeBytes()), "layerbytes")
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += tab.Find(keys[(i*2654435761)%len(keys)])
			}
			_ = sink
		})
	}
}

// BenchmarkWorkloadSkew compares uniform and Zipf query workloads over the
// same IM+Shift-Table index: skewed queries hit few partitions, so the
// layer's entries and windows become cache-resident and latency drops —
// an effect outside the paper's uniform-workload cost model (Eq. 8).
func BenchmarkWorkloadSkew(b *testing.B) {
	keys := keysFor(b, dataset.Spec{Name: dataset.Face, Bits: 64})
	tab, err := core.Build(keys, cdfmodel.NewInterpolation(keys), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	workloads := map[string]*bench.Workload[uint64]{
		"uniform":  bench.NewWorkload(keys, 1<<15, 7),
		"zipf-1.2": bench.NewZipfWorkload(keys, 1<<15, 1.2, 7),
		"zipf-2.0": bench.NewZipfWorkload(keys, 1<<15, 2.0, 7),
	}
	for name, w := range workloads {
		w := w
		b.Run(name, func(b *testing.B) {
			mask := len(w.Queries) - 1
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += tab.Find(w.Queries[i&mask])
			}
			_ = sink
		})
	}
}
