// Persist: save a built index as a verified snapshot and warm-start from
// it — the restart path of a serving deployment (DESIGN.md §9).
//
// A Shift-Table is cheap to build (one pass), but at serving scale that
// pass still reads the whole key set through the model; a restart that
// rebuilds every index from raw keys is minutes of downtime at the
// paper's 200M-key scale. The snapshot subsystem persists the complete
// index — keys, model identity, layer, and for the concurrent index the
// tombstones, delta buffer and pending write generations — in one
// checksummed, atomically-renamed container that is verified end to end
// before a single query is answered from it.
//
//	go run ./examples/persist
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
)

func main() {
	dir, err := os.MkdirTemp("", "persist-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- 1. A read-only index: cold build vs warm load. ---------------
	keys := dataset.MustGenerate(dataset.Face, 64, 2_000_000, 1)

	start := time.Now()
	cold, err := index.Build("IM+ST", keys)
	if err != nil {
		log.Fatal(err)
	}
	coldMs := ms(start)
	fmt.Printf("cold build: IM+ST over %d keys in %.1f ms\n", len(keys), coldMs)

	path := filepath.Join(dir, "imst.snap")
	start = time.Now()
	if err := index.SaveFile[uint64](path, cold); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("saved:      %s (%.1f MiB) in %.1f ms — temp file + atomic rename, trailing checksum\n",
		path, float64(st.Size())/(1<<20), ms(start))

	start = time.Now()
	warm, err := index.LoadFile[uint64](path)
	if err != nil {
		log.Fatal(err)
	}
	loadMs := ms(start)
	fmt.Printf("warm load:  verified and restored in %.1f ms (%.1fx faster than the cold build)\n",
		loadMs, coldMs/loadMs)

	// Bit-identical answers, spot-checked against the reference.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200_000; i++ {
		q := keys[rng.Intn(len(keys))]
		if got, want := warm.Find(q), kv.LowerBound(keys, q); got != want {
			log.Fatalf("warm Find(%d) = %d, want %d", q, got, want)
		}
	}
	fmt.Println("verified:   200k probes answer identically to the reference ranks")

	// A flipped byte anywhere in the file is caught before any query.
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 1
	bad := filepath.Join(dir, "tampered.snap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	if _, err := index.LoadFile[uint64](bad); err != nil {
		fmt.Printf("tampered:   rejected as expected (%v)\n", err)
	} else {
		log.Fatal("tampered snapshot loaded!")
	}

	// --- 2. A serving index: snapshot under writes, warm restart. -----
	fmt.Println()
	serving, err := concurrent.New(keys, concurrent.Config{
		Policy: concurrent.CompactionPolicy{Kind: concurrent.Manual},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer serving.Close()
	for i := 0; i < 30_000; i++ {
		if i%3 == 0 {
			serving.Delete(keys[rng.Intn(len(keys))])
		} else {
			serving.Insert(rng.Uint64())
		}
	}
	fmt.Printf("serving:    %v\n", serving)

	spath := filepath.Join(dir, "serving.snap")
	start = time.Now()
	if err := concurrent.SaveFile(spath, serving); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot:   taken lock-free in %.1f ms (one atomic pointer load; writers keep writing)\n", ms(start))

	start = time.Now()
	restarted, err := concurrent.LoadFile[uint64](spath)
	if err != nil {
		log.Fatal(err)
	}
	defer restarted.Close()
	fmt.Printf("restart:    live again in %.1f ms — base loaded, %d pending writes replayed through the live write path\n",
		ms(start), restarted.Pending())
	if got, want := restarted.Len(), serving.Len(); got != want {
		log.Fatalf("restarted Len = %d, want %d", got, want)
	}
	fmt.Printf("restored:   %v (live key count matches)\n", restarted)

	// The restored index serves and compacts like the original.
	restarted.Insert(123456789)
	if err := restarted.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continued:  %v after one insert and a compaction\n", restarted)
}

func ms(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }
