// tuning: the paper's §3.9 tuning procedure as a working program. For each
// dataset it measures the model error, applies the §4.1 rules, evaluates
// the §3.7 cost model against a measured L(s) curve, and cross-checks the
// prediction with an actual latency measurement — showing where the layer
// pays off (real-world-like data) and where it does not (uden).
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/bench"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
)

const n = 1_000_000

func main() {
	// One L(s) curve serves every dataset: it characterises the machine,
	// not the data (§2.3).
	calib := dataset.MustGenerate(dataset.USpr, 64, n, 3)
	l := bench.FitLatencyFn(bench.MeasureLatencyCurve(calib, 1<<18, 3_000, 3))

	for _, name := range []dataset.Name{dataset.UDen, dataset.USpr, dataset.Face, dataset.Osmc} {
		keys := dataset.MustGenerate(name, 64, n, 11)
		model := cdfmodel.NewInterpolation(keys)
		table, err := core.Build(keys, model, core.Config{})
		if err != nil {
			log.Fatal(err)
		}

		adv := table.Advise()
		with := table.EstimateWith(5, 40, l)
		without := table.EstimateWithout(5, l)

		fmt.Printf("%s:\n", name)
		fmt.Printf("  rule-based (§4.1):  use layer = %-5v (err %.0f -> %.1f)\n",
			adv.UseShiftTable, adv.ErrBefore, adv.ErrAfter)
		fmt.Printf("  cost model (§3.7):  with %.0f ns vs without %.0f ns -> use layer = %v\n",
			with.TotalNs, without.TotalNs, with.TotalNs < without.TotalNs)

		// Ground truth: measure both configurations.
		measured := measure(keys, table, model)
		fmt.Printf("  measured:           with %.0f ns vs without %.0f ns -> use layer = %v\n\n",
			measured.with, measured.without, measured.with < measured.without)
	}

	// Layer-size tuning (§3.4/§3.9): on face data, sweep M and watch the
	// error/footprint trade-off; the paper's default M=N maximises accuracy.
	fmt.Println("layer-size sweep on face64 (midpoint mode):")
	keys := dataset.MustGenerate(dataset.Face, 64, n, 11)
	model := cdfmodel.NewInterpolation(keys)
	for _, x := range []int{1, 10, 100, 1000} {
		tab, err := core.Build(keys, model, core.Config{Mode: core.ModeMidpoint, M: n / x})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  S-%-5d %6.1f KiB  avg err %8.1f records\n",
			x, float64(tab.SizeBytes())/1024, tab.MeasuredError())
	}
}

type pair struct{ with, without float64 }

func measure(keys []uint64, table *core.Table[uint64], model cdfmodel.Model[uint64]) pair {
	rng := rand.New(rand.NewSource(9))
	queries := make([]uint64, 100_000)
	for i := range queries {
		queries[i] = keys[rng.Intn(len(keys))]
	}
	timeOf := func(find func(uint64) int) float64 {
		sink := 0
		start := time.Now()
		for _, q := range queries {
			sink += find(q)
		}
		_ = sink
		return float64(time.Since(start).Nanoseconds()) / float64(len(queries))
	}
	return pair{
		with:    timeOf(table.Find),
		without: timeOf(func(q uint64) int { return core.ModelFind(keys, model, q) }),
	}
}
