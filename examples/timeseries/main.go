// timeseries: a read-only event log indexed by timestamp, in the style of
// the paper's wiki dataset (Wikipedia edit timestamps): bursty arrivals at
// one-second granularity with duplicate keys. The example shows the §3.2
// duplicate semantics (lower bound = first event of a second) and
// time-window range queries.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
)

const nEvents = 1_000_000

func main() {
	// Event timestamps (unix seconds, sorted, with duplicates for seconds
	// that saw several events).
	ts := dataset.MustGenerate(dataset.Wiki, 64, nEvents, 7)
	distinct, maxRun := dataset.DupStats(ts)
	fmt.Printf("%d events over %d distinct seconds (busiest second: %d events)\n",
		nEvents, distinct, maxRun)

	// Index them. Wiki-like data is exactly where the plain learned model
	// struggles (bursts bend the CDF) and the correction layer shines.
	table, err := core.Build(ts, cdfmodel.NewInterpolation(ts), core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	before, _ := core.ModelError(ts, table.Model())
	fmt.Printf("model error %.0f -> corrected %.1f records\n", before, table.MeasuredError())

	// Lower bound on a duplicated second returns the FIRST event of that
	// second (§3.2), so a scan sees every event.
	burst := busiestSecond(ts)
	pos := table.Find(burst)
	fmt.Printf("second %s: first event at position %d", fmtTime(burst), pos)
	count := 0
	for i := pos; i < len(ts) && ts[i] == burst; i++ {
		count++
	}
	fmt.Printf(" (%d events that second)\n", count)

	// Time-window query: events in [t, t+5min).
	t0 := ts[nEvents/2]
	first, last := table.FindRange(t0, t0+300-1)
	fmt.Printf("window [%s, +5min): %d events (positions %d..%d)\n",
		fmtTime(t0), last-first, first, last)

	// Sliding-window scan: event rate per hour across a day.
	fmt.Println("hourly event counts across one day:")
	day0 := ts[0] - ts[0]%86_400 + 86_400
	for h := 0; h < 24; h += 6 {
		lo := day0 + uint64(h)*3600
		f, l := table.FindRange(lo, lo+3600-1)
		fmt.Printf("  %02d:00-%02d:59  %6d events\n", h, h, l-f)
	}
}

// busiestSecond returns the timestamp with the longest duplicate run.
func busiestSecond(ts []uint64) uint64 {
	best, bestLen, run := ts[0], 1, 1
	for i := 1; i < len(ts); i++ {
		if ts[i] == ts[i-1] {
			run++
			if run > bestLen {
				best, bestLen = ts[i], run
			}
		} else {
			run = 1
		}
	}
	return best
}

func fmtTime(unix uint64) string {
	return time.Unix(int64(unix), 0).UTC().Format("2006-01-02 15:04:05")
}
