// Quickstart: build a Shift-Table-corrected learned index over sorted keys
// and run point and range lookups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	// 1. Sorted keys. Any sorted []uint64 or []uint32 works; here we use
	// the Facebook-like SOSD stand-in from the paper's evaluation.
	keys := dataset.MustGenerate(dataset.Face, 64, 1_000_000, 1)

	// 2. A CDF model. The paper's point (§4.1): even the dummy min/max
	// interpolation model is enough, because the Shift-Table layer absorbs
	// its error.
	model := cdfmodel.NewInterpolation(keys)

	// 3. The Shift-Table layer (defaults: range mode, M = N).
	table, err := core.Build(keys, model, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Point lookup: Find returns lower-bound semantics.
	q := keys[123_456]
	pos, found := table.Lookup(q)
	fmt.Printf("Lookup(%d) -> position %d, found=%v\n", q, pos, found)

	// Lower bound of a non-indexed key.
	pos = table.Find(q + 1)
	fmt.Printf("Find(%d) -> first key >= query is keys[%d] = %d\n", q+1, pos, keys[pos])

	// Range query: all keys in [a, b].
	a, b := keys[1000], keys[1020]
	first, last := table.FindRange(a, b)
	fmt.Printf("FindRange(%d, %d) -> %d records\n", a, b, last-first)

	// What did the layer buy us? Compare the model's raw error with the
	// corrected error (the paper's Fig. 6 in two lines).
	before, _ := core.ModelError(keys, model)
	fmt.Printf("model error: %.0f records -> corrected: %.1f records\n", before, table.MeasuredError())
	fmt.Printf("layer: %d entries x %d bits = %.1f MiB\n",
		table.M(), table.EntryBits(), float64(table.SizeBytes())/(1<<20))

	// The tuning rules of §4.1, as an advisor.
	adv := table.Advise()
	fmt.Printf("advice: use Shift-Table = %v (%s)\n", adv.UseShiftTable, adv.Reason)
}
