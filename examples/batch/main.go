// Batch: serve lookups through the batched query engine instead of one
// scalar Find at a time. The staged pipeline (DESIGN.md §5) amortises the
// model's interface dispatch over the batch, gathers the Shift-Table
// drift entries with the width switch hoisted out of the inner loop, and
// probes the key array in an interleaved order so independent lookups'
// cache misses overlap — the scalar path pays all of that serially, per
// query.
//
//	go run ./examples/batch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	// Build exactly as in examples/quickstart: sorted keys, the paper's
	// dummy IM model, a range-mode Shift-Table.
	keys := dataset.MustGenerate(dataset.Face, 64, 2_000_000, 1)
	model := cdfmodel.NewInterpolation(keys)
	table, err := core.Build(keys, model, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A batch of queries, e.g. one network request carrying many lookups.
	rng := rand.New(rand.NewSource(7))
	queries := make([]uint64, 4096)
	for i := range queries {
		queries[i] = keys[rng.Intn(len(keys))]
	}

	// FindBatch writes lower-bound ranks into out (reused across calls;
	// steady-state batches allocate nothing).
	out := make([]int, len(queries))
	table.FindBatch(queries, out)
	fmt.Printf("FindBatch: %d queries, first: Find(%d) = %d\n",
		len(queries), queries[0], out[0])

	// LookupBatch adds the existence check; FindRangeBatch answers many
	// range queries per call.
	_, found := table.LookupBatch(queries[:4], out[:4], nil)
	fmt.Printf("LookupBatch(first 4): found = %v\n", found)

	as := []uint64{keys[1000], keys[5000]}
	bs := []uint64{keys[1020], keys[5100]}
	firsts, lasts := table.FindRangeBatch(as, bs, nil, nil)
	for i := range as {
		fmt.Printf("FindRangeBatch[%d]: [%d, %d] -> %d records\n",
			i, as[i], bs[i], lasts[i]-firsts[i])
	}

	// The throughput story: scalar loop vs batched vs sharded-parallel
	// over the same query stream. (Batch results are bit-identical to
	// scalar Find; the property tests enforce it.)
	reps := 8
	start := time.Now()
	sink := 0
	for r := 0; r < reps; r++ {
		for _, q := range queries {
			sink += table.Find(q)
		}
	}
	scalar := time.Since(start)

	start = time.Now()
	for r := 0; r < reps; r++ {
		table.FindBatch(queries, out)
		sink += out[0]
	}
	batched := time.Since(start)

	start = time.Now()
	for r := 0; r < reps; r++ {
		table.FindBatchParallel(queries, out, 0) // 0 = GOMAXPROCS workers
		sink += out[0]
	}
	parallel := time.Since(start)
	_ = sink

	perOp := func(d time.Duration) float64 {
		return float64(d.Nanoseconds()) / float64(reps*len(queries))
	}
	fmt.Printf("scalar:   %6.1f ns/lookup\n", perOp(scalar))
	fmt.Printf("batched:  %6.1f ns/lookup (%.2fx)\n", perOp(batched), perOp(scalar)/perOp(batched))
	fmt.Printf("parallel: %6.1f ns/lookup (%.2fx)\n", perOp(parallel), perOp(scalar)/perOp(parallel))
}
