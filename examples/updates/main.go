// updates: the paper's §6 future-work direction made concrete — a
// Shift-Table index under a mixed read/write workload. Deleted keys drift
// every later position by one; a Fenwick tree corrects that drift at query
// time, inserts buffer in a sorted delta, and compaction rebuilds the model
// and layer when the buffer fills.
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/updatable"
)

func main() {
	// Start from 1M Facebook-like user IDs.
	initial := dataset.MustGenerate(dataset.Face, 64, 1_000_000, 5)
	ix, err := updatable.New(initial, updatable.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: %d keys\n", ix.Len())

	// A day of churn: 200k new users, 100k departures, queries throughout.
	rng := rand.New(rand.NewSource(9))
	domain := initial[len(initial)-1]
	start := time.Now()
	inserted, deleted, queries := 0, 0, 0
	for op := 0; op < 500_000; op++ {
		switch rng.Intn(5) {
		case 0, 1: // new user
			if err := ix.Insert(rng.Uint64() % domain); err != nil {
				log.Fatal(err)
			}
			inserted++
		case 2: // departure
			if ix.Delete(initial[rng.Intn(len(initial))]) {
				deleted++
			}
		default: // lookup
			q := rng.Uint64() % domain
			_ = ix.Find(q)
			queries++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("workload: %d inserts, %d deletes, %d lookups in %v (%.0f ns/op)\n",
		inserted, deleted, queries, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/500_000)

	s := ix.Stats()
	fmt.Printf("state: %d live keys, base %d (%d tombstones), delta %d, %d compactions, layer %.1f MiB\n",
		s.Live, s.BaseLen, s.Tombstones, s.DeltaLen, s.Rebuilds, float64(s.LayerBytes)/(1<<20))

	// Reads remain exact lower-bound semantics after all that churn.
	var sample []uint64
	ix.Scan(initial[500_000], domain, func(k uint64) bool {
		sample = append(sample, k)
		return len(sample) < 5
	})
	fmt.Printf("first keys at the scan point: %v\n", sample)

	// Force a compaction and show the rebuilt composition.
	if err := ix.Compact(); err != nil {
		log.Fatal(err)
	}
	s = ix.Stats()
	fmt.Printf("after compaction: base %d, tombstones %d, delta %d\n",
		s.BaseLen, s.Tombstones, s.DeltaLen)
}
