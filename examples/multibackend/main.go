// Example multibackend builds the cost-model-routed hybrid index
// (internal/router) over a piecewise dataset — a smooth segment, a
// drift-heavy segment, and long duplicate runs — prints which backend the
// §3.7 cost model picked per key-space shard, and compares end-to-end
// lookup latency against every homogeneous candidate built over the same
// keys.
//
//	go run ./examples/multibackend
package main

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/router"
)

func main() {
	const n = 400_000
	keys := dataset.Piecewise(n, 42)
	fmt.Printf("piecewise dataset: %d keys (smooth + drifted + duplicate segments)\n\n", len(keys))

	r, err := router.New(keys, router.Config{Shards: 12})
	if err != nil {
		panic(err)
	}
	fmt.Print(r.Describe())
	fmt.Printf("distinct backends selected: %d\n\n", r.DistinctBackends())

	// A query workload matching the data distribution, validated against
	// the reference lower bound.
	queries := make([]uint64, 200_000)
	for i := range queries {
		queries[i] = keys[(i*7919)%len(keys)]
	}
	for _, q := range queries[:1000] {
		if got, want := r.Find(q), kv.LowerBound(keys, q); got != want {
			panic(fmt.Sprintf("router.Find(%d) = %d, want %d", q, got, want))
		}
	}

	measure := func(find func(uint64) int) float64 {
		sink := 0
		start := time.Now()
		for _, q := range queries {
			sink += find(q)
		}
		if sink == -1 {
			panic("unreachable")
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(queries))
	}

	fmt.Printf("%-8s %12s %12s\n", "backend", "lookup ns", "size bytes")
	routerNs := measure(r.Find)
	fmt.Printf("%-8s %12.1f %12d   <- hybrid\n", r.Name(), routerNs, r.SizeBytes())
	best := 0.0
	for _, name := range router.DefaultBackends() {
		ix, err := index.Build[uint64](name, keys)
		if err != nil {
			fmt.Printf("%-8s %12s\n", name, "N/A")
			continue
		}
		ns := measure(ix.Find)
		if best == 0 || ns < best {
			best = ns
		}
		fmt.Printf("%-8s %12.1f %12d\n", name, ns, ix.SizeBytes())
	}
	fmt.Printf("\nrouter vs best homogeneous: %.2fx\n", routerNs/best)

	// Batched queries scatter to shards and reuse each shard's native
	// batch pipeline (the Shift-Table shards run their staged engine).
	out := r.FindBatch(queries, nil)
	for i := range queries[:1000] {
		if out[i] != kv.LowerBound(keys, queries[i]) {
			panic("batch result mismatch")
		}
	}
	start := time.Now()
	out = r.FindBatch(queries, out)
	batchNs := float64(time.Since(start).Nanoseconds()) / float64(len(queries))
	fmt.Printf("router batched lookups: %.1f ns/op (%.2fx of scalar)\n", batchNs, batchNs/routerNs)
}
