// idlookup: a read-only user-ID store in the style of the paper's headline
// workload (Facebook user IDs, §2.4): IDs are near-uniform at macro scale
// but locally jagged, which defeats plain learned models. The example
// builds an IM+Shift-Table index over 2M IDs with per-user payloads,
// compares it against binary search and a B+tree, and runs an ID-block
// range scan.
//
//	go run ./examples/idlookup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/btree"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/search"
)

const nUsers = 2_000_000

type userStore struct {
	ids      []uint64 // sorted user IDs (the clustered index)
	payloads []uint64 // per-user record handles
	table    *core.Table[uint64]
}

func newUserStore() (*userStore, error) {
	ids := dataset.MustGenerate(dataset.Face, 64, nUsers, 2024)
	table, err := core.Build(ids, cdfmodel.NewInterpolation(ids), core.Config{})
	if err != nil {
		return nil, err
	}
	return &userStore{ids: ids, payloads: dataset.Payloads(nUsers), table: table}, nil
}

// payload returns the record handle for an exact-match user ID.
func (s *userStore) payload(id uint64) (uint64, bool) {
	pos, found := s.table.Lookup(id)
	if !found {
		return 0, false
	}
	return s.payloads[pos], true
}

// scanBlock returns the payloads of every user in an ID block [lo, hi].
func (s *userStore) scanBlock(lo, hi uint64) []uint64 {
	first, last := s.table.FindRange(lo, hi)
	return s.payloads[first:last]
}

func main() {
	store, err := newUserStore()
	if err != nil {
		log.Fatal(err)
	}

	// Point lookups.
	rng := rand.New(rand.NewSource(1))
	id := store.ids[rng.Intn(nUsers)]
	if p, ok := store.payload(id); ok {
		fmt.Printf("user %d -> record handle %#x\n", id, p)
	}
	if _, ok := store.payload(id + 1); !ok {
		fmt.Printf("user %d -> not found (as expected)\n", id+1)
	}

	// Range scan: an allocation block of IDs.
	lo := store.ids[1_000_000]
	hi := store.ids[1_000_200]
	block := store.scanBlock(lo, hi)
	fmt.Printf("ID block [%d, %d] holds %d users\n", lo, hi, len(block))

	// Micro-comparison against the classical alternatives on this exact
	// working set (the Table 2 story at example scale).
	queries := make([]uint64, 200_000)
	for i := range queries {
		queries[i] = store.ids[rng.Intn(nUsers)]
	}
	bt, err := btree.NewBulk(store.ids, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	timeOf := func(name string, find func(q uint64) int) float64 {
		start := time.Now()
		sink := 0
		for _, q := range queries {
			sink += find(q)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(queries))
		fmt.Printf("  %-22s %7.1f ns/lookup\n", name, ns)
		_ = sink
		return ns
	}
	fmt.Println("lookup latency over 200k point queries:")
	bsNs := timeOf("binary search", func(q uint64) int { return search.Binary(store.ids, q) })
	btNs := timeOf("B+tree", func(q uint64) int {
		it := bt.LowerBound(q)
		if !it.Valid() {
			return nUsers
		}
		return int(it.Value())
	})
	stNs := timeOf("IM + Shift-Table", store.table.Find)
	fmt.Printf("speedup: %.1fx over binary search, %.1fx over B+tree\n", bsNs/stNs, btNs/stNs)
}
