// Concurrent: serve the updatable Shift-Table index from many goroutines
// at once. Readers load an immutable snapshot through one atomic pointer
// and never block; writers serialise onto a fresh write generation; a
// background compactor rebuilds the base table + CDF model off to the
// side and publishes the result with a single pointer swap, replaying the
// writes that landed mid-rebuild. See DESIGN.md §6 for the lifecycle.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
)

func main() {
	// Build over sorted keys, exactly like the single-threaded examples.
	// The delta-count policy rebuilds the base whenever 50k writes have
	// accumulated; DeltaFraction (the default) and Manual are the
	// alternatives.
	keys := dataset.MustGenerate(dataset.Face, 64, 2_000_000, 1)
	ix, err := concurrent.New(keys, concurrent.Config{
		Policy: concurrent.CompactionPolicy{Kind: concurrent.DeltaCount, Count: 50_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close() // stops the background compactor

	// Readers: lock-free snapshot loads, safe during writes and
	// compactions. Batch reads answer every query from one snapshot.
	var reads atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			qs := make([]uint64, 256)
			out := make([]int, 256)
			for !stop.Load() {
				for i := range qs {
					qs[i] = keys[rng.Intn(len(keys))]
				}
				out = ix.FindBatch(qs, out)
				reads.Add(int64(len(qs)))
			}
		}(int64(r))
	}

	// One writer storms inserts and deletes while the readers run.
	rng := rand.New(rand.NewSource(42))
	domain := keys[len(keys)-1] + 2
	start := time.Now()
	for i := 0; i < 200_000; i++ {
		k := rng.Uint64() % domain
		if i%4 == 3 {
			ix.Delete(k)
		} else {
			ix.Insert(k)
		}
	}
	writeDur := time.Since(start)

	// Let the compactor catch up, then quiesce.
	for ix.Pending() >= 50_000 && ix.Err() == nil {
		//shift:allow-sleep(example quiesce poll; the loop exits as soon as the compactor catches up or errors)
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if err := ix.Err(); err != nil {
		log.Fatal(err)
	}

	st := ix.Stats()
	fmt.Printf("200k writes in %v alongside %d lock-free reads\n", writeDur.Round(time.Millisecond), reads.Load())
	fmt.Printf("state: %d live keys, %d pending writes, %d background rebuilds\n",
		st.Live, st.Pending, st.Rebuilds)

	// Point reads and range scans see one consistent snapshot each.
	q := keys[len(keys)/2]
	rank, found := ix.Lookup(q)
	fmt.Printf("Lookup(%d) = rank %d, found %v\n", q, rank, found)
	count := 0
	ix.Scan(q, q+1_000_000, func(uint64) bool { count++; return count < 5 })
	fmt.Printf("Scan visited %d keys after the storm\n", count)

	// Manual compaction folds the remaining pending writes into the base.
	if err := ix.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after manual compaction: %v\n", ix)
}
