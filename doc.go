// Package repro is a from-scratch Go reproduction of "Shift-Table: A
// Low-latency Learned Index for Range Queries using Model Correction"
// (Hadian & Heinis, EDBT 2021).
//
// The repository implements the Shift-Table correction layer
// (internal/core), the learned-index and algorithmic baselines the paper
// evaluates against (internal/rmi, internal/radixspline, internal/pgm,
// internal/btree, internal/art, internal/fasttree, internal/rbs,
// internal/search), the SOSD-style dataset suite (internal/dataset), a
// cache-hierarchy simulator used to reproduce the paper's cache-miss
// measurements (internal/memsim), and a benchmark harness that regenerates
// every table and figure in the paper's evaluation (internal/bench).
//
// Beyond the paper, the query layer has a batched engine (DESIGN.md §5):
// core.Table.FindBatch, LookupBatch and FindRangeBatch run a staged
// pipeline — one cdfmodel.PredictBatch call per chunk, drift-entry gathers
// with the packed-width switch hoisted out of the inner loop, and
// interleaved window probes whose independent cache misses overlap instead
// of serialising — and FindBatchParallel shards a batch across GOMAXPROCS
// workers. Batch results are bit-identical to the scalar path (property
// tested); see examples/batch for usage and `figures -fig batch` for the
// throughput sweep.
//
// Construction mirrors it (DESIGN.md §8): one build pipeline behind
// core.Build, core.BuildParallel and core.Table.BuildNext shards the model
// sweep and — for monotone models — the per-partition accumulation across
// workers into a single pooled arena, packs range-mode drift bounds into a
// fused interleaved <lo, hi> layout so a lookup's correction step touches
// one cache line instead of two, and caches the layer statistics from its
// one model sweep. Rebuild chains (compaction, the router's shard builds,
// RMI grid tuning) reuse the predecessor's arena and scratch pools. All
// build paths are property-tested bit-identical; `figures -fig build`
// sweeps worker counts and emits BENCH_build.json.
//
// Every backend — the Shift-Table and the whole competitor set —
// implements the unified index abstraction of internal/index (DESIGN.md
// §7): one core Index contract (Find/Len/Name/SizeBytes) plus optional
// capability interfaces (Ranger, BatchFinder, Tracer, CostEstimator,
// Log2Errer), registered in a declarative registry the bench harness,
// the cmd front-ends and one cross-backend conformance suite enumerate.
// On top of it, internal/router is a range-partitioned hybrid index: the
// paper's §3.7 cost model, generalised to the CostEstimator capability,
// picks the cheapest backend per key-space shard (a bare interpolation
// over smooth regions, model+Shift-Table over drift-heavy ones, a
// B+tree or radix spline where even corrected windows stay wide). See
// examples/multibackend for usage and `figures -fig router` for the
// hybrid-vs-homogeneous sweep.
//
// The updatable index additionally has a concurrent serving wrapper
// (internal/concurrent, DESIGN.md §6): reads — scalar, batched, and scans —
// load an immutable snapshot through an atomic pointer and never block,
// writes serialise onto bounded immutable write generations, and a
// background compactor rebuilds the base Shift-Table off to the side,
// publishing it with a single pointer swap that replays mid-rebuild
// writes. See examples/concurrent for usage and `figures -fig concurrent`
// for the mixed read/write throughput sweep.
//
// Every index persists as a verified snapshot (internal/snapshot,
// DESIGN.md §9): a versioned, checksummed, atomically-renamed container
// holding keys, model identity and layer — and for the updatable stack
// the tombstones, delta buffer and pending write generations — so a
// serving restart warm-loads instead of rebuilding from raw keys.
// Backends implement the index.Persister capability; loaders never trust
// a header field they have not bounded, and nothing is served until the
// trailing checksum verifies. See examples/persist for the walkthrough,
// `shifttool -save/-load` for the CLI path, and `figures -fig persist`
// for the cold-build-vs-warm-load sweep.
//
// Snapshot layout v2 makes warm start zero-copy (internal/mapped,
// DESIGN.md §12): sections are page-aligned and individually CRC'd, so
// the key and fused-drift arrays are viewed in place over a refcounted
// mmap region instead of decoded — the open parses a fixed-size footer
// and table of contents and is O(sections), not O(keys) (332x the
// streaming load at 10M keys; 0.85 ms vs 283 ms). v1 files still load
// everywhere, a nommap build tag and non-unix ports fall back to heap
// reads behind the same API, and replicas map their fetch-verified
// artifacts with a path registry that defers spool GC while a mapping
// is live. A tiered residency manager places the hottest router shards
// under a memory budget (madvise WILLNEED/DONTNEED), internal/memsim
// prices resident vs cold shards for the cost model, and /statusz
// reports mapped bytes, shard residency and fault counts. See
// `shifttool -load -mmap` and `figures -fig mmap` for the sweep.
//
// Snapshots replicate (internal/replica, DESIGN.md §10): a primary
// publishes versioned fulls and generation deltas into a manifest-rooted
// store (local directory or HTTP), and replicas fetch with retry,
// backoff and per-attempt timeouts, verify every byte — CRC-32C, model
// fingerprint, key count — off the serving path, and atomically swap.
// On persistent failure a replica keeps serving its last-good version
// and reports staleness; after a crash it warm-restarts from re-verified
// local state without the network. The injected-fault matrix and the
// kill/restart torture harness live in internal/replica's tests. See
// cmd/shiftrepl for the publish/fetch/serve CLI and `figures -fig
// replica` for the time-to-fresh sweep.
//
// Replicas are fronted by a networked serving tier (internal/serve,
// DESIGN.md §11): a hardened HTTP/JSON server (timeouts, bounded
// headers, graceful signal-driven drain) with per-request admission
// control, and a flat-combining request coalescer that merges
// concurrently-arriving point lookups into FindBatchTagged waves of up
// to 256 — one snapshot load and one staged pipeline pass per wave,
// bit-identical to the scalar path (property tested under concurrent
// version installs). Every response carries the snapshot version tag
// that produced it, and the primary writes a scan-derived oracle for a
// version before publishing it, so a load generator can verify every
// answer end to end. See cmd/shiftserver for the server, cmd/shiftload
// for the verifying open-loop load generator, and `figures -fig serve`
// for the coalesced-vs-direct latency/throughput sweep.
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. Root-level benchmarks in
// bench_test.go regenerate each table and figure; the cmd/ binaries produce
// the same series as CSV.
package repro
