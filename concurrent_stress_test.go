package repro_test

// This file is the concurrency storm the old race_on/race_off guard files
// only pretended to be: N reader goroutines, one writer, and the
// background compactor, all hammering one concurrent.Index. Run under
// `go test -race` it is the repository's data-race canary; in either mode
// it asserts the snapshot-consistency contract — every read is answered
// from one fully-published snapshot — and finishes with an exact oracle
// comparison once the storm quiesces.

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
	"repro/internal/kv"
)

func TestConcurrentIndexStorm(t *testing.T) {
	initial := dataset.MustGenerate(dataset.Face, 64, 50_000, 17)
	ix, err := concurrent.New(initial, concurrent.Config{
		Policy: concurrent.CompactionPolicy{Kind: concurrent.DeltaCount, Count: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// The writer owns the odd half of the key space above the dataset;
	// dataset keys are immortal sentinels the readers may rely on.
	domain := initial[len(initial)-1]
	writes := stormWrites
	if testing.Short() {
		writes = 2_000
	}

	readers := runtime.GOMAXPROCS(0) + 1
	var stop atomic.Bool
	var reads atomic.Int64
	errs := make(chan string, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			qs := make([]uint64, 128)
			out := make([]int, 128)
			var found []bool
			for !stop.Load() {
				reads.Add(1)
				switch rng.Intn(4) {
				case 0:
					// A sorted batch is answered from one snapshot, so its
					// ranks must be non-decreasing and bounded by a
					// just-read Len of a (possibly newer) snapshot plus
					// everything a later snapshot could have added — use
					// the weak but exact bound: ranks are non-negative and
					// non-decreasing.
					base := rng.Uint64() % domain
					step := uint64(rng.Intn(1_000) + 1)
					for i := range qs {
						qs[i] = base + uint64(i)*step
					}
					out = ix.FindBatch(qs, out)
					for i := 1; i < len(out); i++ {
						if out[i] < out[i-1] {
							errs <- "sorted FindBatch ranks decreased within one snapshot"
							return
						}
					}
					if out[0] < 0 {
						errs <- "negative rank"
						return
					}
				case 1:
					// Sentinel dataset keys are never deleted; LookupBatch
					// must always find them.
					for i := range qs {
						qs[i] = initial[rng.Intn(len(initial))]
					}
					out, found = ix.LookupBatch(qs, out, found)
					for i := range found {
						if !found[i] {
							errs <- "sentinel key vanished from LookupBatch"
							return
						}
					}
				case 2:
					// Scalar rank sandwich within one snapshot-coherent
					// call sequence is not possible across loads, but each
					// Lookup must self-agree: found implies the next key at
					// that rank position via Scan is the key itself.
					q := initial[rng.Intn(len(initial))]
					if _, ok := ix.Lookup(q); !ok {
						errs <- "sentinel key vanished from Lookup"
						return
					}
				default:
					// Scans are sorted and in-range.
					a := rng.Uint64() % domain
					b := a + uint64(rng.Intn(1_000_000))
					prev, first, n := uint64(0), true, 0
					bad := false
					ix.Scan(a, b, func(k uint64) bool {
						if k < a || k > b || (!first && k < prev) {
							bad = true
							return false
						}
						prev, first = k, false
						n++
						return n < 256
					})
					if bad {
						errs <- "scan yielded out-of-range or unsorted keys"
						return
					}
				}
			}
		}(int64(r)*131 + 7)
	}

	// One writer: inserts and deletes of keys disjoint from the sentinels,
	// tracked in a single-threaded reference multiset.
	rng := rand.New(rand.NewSource(3))
	var ref []uint64 // writer-owned keys only, sorted
	refInsert := func(k uint64) {
		i := kv.UpperBound(ref, k)
		ref = append(ref, 0)
		copy(ref[i+1:], ref[i:])
		ref[i] = k
	}
	for i := 0; i < writes; i++ {
		if rng.Intn(3) != 0 || len(ref) == 0 {
			k := domain + 1 + rng.Uint64()%uint64(writes)
			ix.Insert(k)
			refInsert(k)
		} else {
			k := ref[rng.Intn(len(ref))]
			if !ix.Delete(k) {
				t.Errorf("Delete(%d) of a live writer-owned key failed", k)
				break
			}
			j := kv.LowerBound(ref, k)
			ref = append(ref[:j], ref[j+1:]...)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if err := ix.Err(); err != nil {
		t.Fatal(err)
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress during the storm")
	}

	// Give the compactor its turn (on one CPU it may only run now), then
	// verify the exact quiescent state: sentinels plus writer-owned keys.
	deadline := time.Now().Add(10 * time.Second)
	for ix.Rebuilds() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ix.Rebuilds() == 0 {
		t.Error("storm never triggered a background compaction")
	}
	if got, want := ix.Len(), len(initial)+len(ref); got != want {
		t.Fatalf("Len after storm = %d, want %d", got, want)
	}
	// Writer-owned keys live above the sentinel domain.
	i := 0
	ok := true
	ix.Scan(domain+1, ^uint64(0), func(k uint64) bool {
		if i >= len(ref) || ref[i] != k {
			ok = false
			return false
		}
		i++
		return true
	})
	if !ok || i != len(ref) {
		t.Fatal("post-storm scan of writer-owned range does not match the reference")
	}
}
