// Integration tests: every index in the repository answers the same
// lower-bound queries over the same datasets, cross-validated against the
// stdlib reference and against each other.
package repro_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/router"
	"repro/internal/updatable"
)

// TestAllIndexesAgree builds every Table 2 method over every dataset at
// integration scale and checks thousands of lookups against the reference.
func TestAllIndexesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration scale")
	}
	const n = 200_000
	rng := rand.New(rand.NewSource(1))
	for _, spec := range dataset.Table2 {
		keys64, err := dataset.Generate(spec.Name, spec.Bits, n, 99)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec.String(), func(t *testing.T) {
			if spec.Bits == 32 {
				agreeOn(t, dataset.U32(keys64), rng)
			} else {
				agreeOn(t, keys64, rng)
			}
		})
	}
}

func agreeOn[K kv.Key](t *testing.T, keys []K, rng *rand.Rand) {
	t.Helper()
	queries := make([]K, 3000)
	expect := make([]int, len(queries))
	maxKey := keys[len(keys)-1]
	for i := range queries {
		var q K
		switch i % 3 {
		case 0:
			q = keys[rng.Intn(len(keys))]
		case 1:
			q = K(rng.Uint64()) % (maxKey + 2)
		default:
			q = K(rng.Uint64())
		}
		queries[i] = q
		expect[i] = kv.LowerBound(keys, q)
	}
	for _, be := range index.Registry[K]() {
		if be.Applicable(keys) != "" {
			continue
		}
		ix, err := be.Build(keys)
		if err != nil {
			t.Fatalf("%s: %v", be.Name, err)
		}
		for i, q := range queries {
			if got := ix.Find(q); got != expect[i] {
				t.Fatalf("%s: Find(%v) = %d, want %d", be.Name, q, got, expect[i])
			}
		}
	}
	// The hybrid router composes registry backends; it must agree too.
	r, err := router.New(keys, router.Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if got := r.Find(q); got != expect[i] {
			t.Fatalf("router: Find(%v) = %d, want %d", q, got, expect[i])
		}
	}
}

// TestQuickShiftTableIsLowerBound is the repository's central property
// test: for arbitrary key multisets and arbitrary queries, a Shift-Table
// over the IM model implements exact lower-bound semantics in every mode.
func TestQuickShiftTableIsLowerBound(t *testing.T) {
	for _, cfg := range []core.Config{
		{Mode: core.ModeRange},
		{Mode: core.ModeMidpoint},
		{Mode: core.ModeRange, M: 17},
		{Mode: core.ModeMidpoint, M: 5},
	} {
		cfg := cfg
		f := func(vals []uint64, queries []uint64) bool {
			if len(vals) == 0 {
				return true
			}
			// Sort in place (arbitrary generator order).
			for i := 1; i < len(vals); i++ {
				for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
					vals[j], vals[j-1] = vals[j-1], vals[j]
				}
			}
			tab, err := core.Build(vals, cdfmodel.NewInterpolation(vals), cfg)
			if err != nil {
				return false
			}
			for _, q := range queries {
				if tab.Find(q) != kv.LowerBound(vals, q) {
					return false
				}
			}
			// Indexed keys must always be found at their first occurrence.
			for i, v := range vals {
				pos, found := tab.Lookup(v)
				if !found || (i > 0 && vals[pos] != v) || (pos > 0 && vals[pos-1] == v) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("cfg %v/%d: %v", cfg.Mode, cfg.M, err)
		}
	}
}

// TestQuickUpdatableMatchesMultiset drives the updatable index with
// arbitrary operation sequences and compares against a naive multiset.
func TestQuickUpdatableMatchesMultiset(t *testing.T) {
	f := func(initial []uint64, ops []uint16, opKeys []uint64) bool {
		for i := 1; i < len(initial); i++ {
			for j := i; j > 0 && initial[j] < initial[j-1]; j-- {
				initial[j], initial[j-1] = initial[j-1], initial[j]
			}
		}
		ix, err := updatable.New(initial, updatable.Config{MaxDelta: 8})
		if err != nil {
			return false
		}
		ref := append([]uint64(nil), initial...)
		for i, op := range ops {
			if i >= len(opKeys) {
				break
			}
			k := opKeys[i] % 1000 // narrow domain to force collisions
			switch op % 3 {
			case 0:
				if err := ix.Insert(k); err != nil {
					return false
				}
				j := kv.UpperBound(ref, k)
				ref = append(ref, k)
				copy(ref[j+1:], ref[j:])
				ref[j] = k
			case 1:
				got := ix.Delete(k)
				j := kv.LowerBound(ref, k)
				want := j < len(ref) && ref[j] == k
				if want {
					ref = append(ref[:j], ref[j+1:]...)
				}
				if got != want {
					return false
				}
			default:
				if ix.Find(k) != kv.LowerBound(ref, k) {
					return false
				}
			}
		}
		return ix.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRangeScanConsistency checks that FindRange over the Shift-Table and
// a scan over the updatable index enumerate identical result sets.
func TestRangeScanConsistency(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 64, 50_000, 3)
	tab, err := core.Build(keys, cdfmodel.NewInterpolation(keys), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := updatable.New(keys, updatable.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		a := keys[rng.Intn(len(keys))]
		b := a + uint64(rng.Intn(1_000_000))
		first, last := tab.FindRange(a, b)
		var scanned int
		ix.Scan(a, b, func(uint64) bool { scanned++; return true })
		if scanned != last-first {
			t.Fatalf("range [%d,%d]: FindRange says %d records, Scan saw %d", a, b, last-first, scanned)
		}
	}
}

// TestPaperHeadlineShape asserts the qualitative results the paper's
// abstract claims, at test scale with robust margins: the Shift-Table layer
// (a) massively improves a dummy model on real-world-like data, (b) beats
// on-the-fly binary search there, and (c) is correctly not worth it on
// dense uniform data.
func TestPaperHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration scale")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts relative latencies")
	}
	const n = 400_000
	measure := func(keys []uint64, find func(uint64) int) float64 {
		w := bench.NewWorkload(keys, 20_000, 9)
		ns, err := w.Measure(find, 2)
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}
	for _, name := range []dataset.Name{dataset.Face, dataset.Osmc, dataset.Wiki, dataset.Amzn} {
		keys := dataset.MustGenerate(name, 64, n, 123)
		model := cdfmodel.NewInterpolation(keys)
		tab, err := core.Build(keys, model, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		withST := measure(keys, tab.Find)
		alone := measure(keys, func(q uint64) int { return core.ModelFind(keys, model, q) })
		bs := measure(keys, func(q uint64) int { return kv.LowerBound(keys, q) })
		if withST >= alone {
			t.Errorf("%s: IM+ST (%.0f ns) should beat IM alone (%.0f ns)", name, withST, alone)
		}
		if withST >= bs {
			t.Errorf("%s: IM+ST (%.0f ns) should beat binary search (%.0f ns)", name, withST, bs)
		}
	}
	// Dense uniform: the model alone wins and the advisor says so (§4.1).
	keys := dataset.MustGenerate(dataset.UDen, 64, n, 123)
	model := cdfmodel.NewInterpolation(keys)
	tab, err := core.Build(keys, model, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	withST := measure(keys, tab.Find)
	alone := measure(keys, func(q uint64) int { return core.ModelFind(keys, model, q) })
	// At test scale both configurations are cache-resident and within a few
	// nanoseconds, so only assert the layer is not a significant win here
	// (the paper's 40 vs 67 ns gap needs the 200M-key working set).
	if alone > withST*1.25 {
		t.Errorf("uden: IM alone (%.0f ns) should not lose to IM+ST (%.0f ns)", alone, withST)
	}
	if adv := tab.Advise(); adv.UseShiftTable {
		t.Errorf("uden: advisor should disable the layer: %+v", adv)
	}
}

// TestConcurrentReaders checks that a built Shift-Table is safe for
// concurrent lookups (it is immutable after Build).
func TestConcurrentReaders(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 100_000, 3)
	tab, err := core.Build(keys, cdfmodel.NewInterpolation(keys), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20_000; i++ {
				q := keys[rng.Intn(len(keys))]
				if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
					t.Errorf("concurrent Find(%d) = %d, want %d", q, got, want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
