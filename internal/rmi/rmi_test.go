package rmi

import (
	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
	"repro/internal/kv"
)

func TestFindMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 5000, 11)
		for _, cfg := range []Config{
			{}, // defaults
			{Leaves: 1},
			{Leaves: 16},
			{Leaves: 500},
			{Leaves: 5000},
			{Leaves: 16, Root: RootCubic},
			{Leaves: 500, Root: RootCubic},
		} {
			idx, err := New(keys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 600; i++ {
				var q uint64
				if i%2 == 0 {
					q = keys[rng.Intn(len(keys))]
				} else {
					q = rng.Uint64() % (keys[len(keys)-1] + 3)
				}
				if got, want := idx.Find(q), kv.LowerBound(keys, q); got != want {
					t.Fatalf("%s leaves=%d root=%v: Find(%d) = %d, want %d",
						name, cfg.Leaves, cfg.Root, q, got, want)
				}
			}
			// Beyond-domain probes.
			for _, q := range []uint64{0, ^uint64(0), keys[len(keys)-1] + 1} {
				if got, want := idx.Find(q), kv.LowerBound(keys, q); got != want {
					t.Fatalf("%s: Find(%d) = %d, want %d", name, q, got, want)
				}
			}
		}
	}
}

func TestMonotoneWithLinearRoot(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 8000, 5)
	idx, err := New(keys, Config{Leaves: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Monotone() {
		t.Fatal("linear-root RMI must report monotone")
	}
	// Dense sweep: predictions must be non-decreasing in the key.
	rng := rand.New(rand.NewSource(7))
	prevQ, prevP := uint64(0), 0
	for i := 0; i < 20000; i++ {
		q := rng.Uint64()
		p := idx.Predict(q)
		if q >= prevQ && i > 0 && q > prevQ && p < prevP {
			// Only comparable when ordered; do an explicit pairwise check.
			t.Fatalf("monotonicity violated: Predict(%d)=%d < Predict(%d)=%d", q, p, prevQ, prevP)
		}
		if q > prevQ {
			prevQ, prevP = q, p
		}
	}
	if cdf := cdfmodel.IsMonotoneOn[uint64](idx, keys); !cdf {
		t.Error("linear-root RMI not monotone over its own training keys")
	}
}

func TestCubicRootReportsNonMonotone(t *testing.T) {
	keys := dataset.MustGenerate(dataset.LogN, 64, 3000, 5)
	idx, err := New(keys, Config{Leaves: 32, Root: RootCubic})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Monotone() {
		t.Error("cubic-root RMI must not claim monotonicity (§3.8)")
	}
}

func TestMoreLeavesReduceError(t *testing.T) {
	// Fig. 8: larger models → lower log2 error (until cache effects, which
	// the analytic metric here does not include).
	keys := dataset.MustGenerate(dataset.Osmc, 64, 50000, 5)
	small, _ := New(keys, Config{Leaves: 8})
	large, _ := New(keys, Config{Leaves: 4096})
	if large.Log2Error() >= small.Log2Error() {
		t.Errorf("4096-leaf log2 error %.2f not below 8-leaf %.2f",
			large.Log2Error(), small.Log2Error())
	}
}

func TestAsModelForShiftTable(t *testing.T) {
	// RMI satisfies cdfmodel.Model, so it can host a Shift-Table layer.
	keys := dataset.MustGenerate(dataset.Amzn, 64, 3000, 5)
	var m cdfmodel.Model[uint64]
	idx, _ := New(keys, Config{Leaves: 16})
	m = idx
	if m.Name() != "RMI" || m.SizeBytes() <= 0 {
		t.Error("model metadata broken")
	}
	for _, q := range keys {
		p := m.Predict(q)
		if p < 0 || p >= len(keys) {
			t.Fatalf("Predict out of range: %d", p)
		}
	}
}

func TestDuplicates(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 64, 5000, 9)
	idx, err := New(keys, Config{Leaves: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		q := keys[rng.Intn(len(keys))]
		got := idx.Find(q)
		if want := kv.LowerBound(keys, q); got != want {
			t.Fatalf("duplicate lower bound: Find(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if _, err := New([]uint64{3, 1}, Config{}); err == nil {
		t.Error("want error for unsorted keys")
	}
	if _, err := New([]uint64{1, 2}, Config{Root: RootKind(9)}); err == nil {
		t.Error("want error for unknown root kind")
	}
	idx, err := New([]uint64{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Find(5); got != 0 {
		t.Errorf("empty Find = %d, want 0", got)
	}
	idx, err = New([]uint64{42}, Config{Leaves: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		q    uint64
		want int
	}{{41, 0}, {42, 0}, {43, 1}} {
		if got := idx.Find(c.q); got != c.want {
			t.Errorf("single-key Find(%d) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestUint32(t *testing.T) {
	keys := dataset.U32(dataset.MustGenerate(dataset.Face, 32, 4000, 5))
	idx, err := New(keys, Config{Leaves: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		q := uint32(rng.Uint64())
		if got, want := idx.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("uint32 Find(%d) = %d, want %d", q, got, want)
		}
	}
}
