package rmi

import (
	"repro/internal/kv"
	"repro/internal/search"
)

// TraceFind is the instrumented twin of Find. The root model is a handful
// of registers (cache-resident by construction), so only the per-leaf
// parameter loads and the last-mile key accesses are traced — exactly the
// accesses the paper charges an RMI for (§2.1: cache misses for model
// parameters and local search).
func (idx *Index[K]) TraceFind(q K, touch search.Touch) int {
	if idx.n == 0 {
		return 0
	}
	l := idx.route(q)
	// One leaf's parameters: three floats plus the clamp/error bounds. In
	// a production RMI these live in one contiguous struct; the separate
	// slices here usually land on two lines, slightly overcharging.
	touch(kv.Addr(idx.slope, l), 8)
	touch(kv.Addr(idx.xref, l), 8)
	touch(kv.Addr(idx.yref, l), 8)
	touch(kv.Addr(idx.clampLo, l), 4)
	touch(kv.Addr(idx.clampHi, l), 4)
	touch(kv.Addr(idx.errLo, l), 4)
	touch(kv.Addr(idx.errHi, l), 4)
	pred := idx.leafPredict(l, q)
	lo := pred + int(idx.errLo[l])
	hi := pred + int(idx.errHi[l])
	r := search.WindowTraced(idx.keys, lo, hi, q, touch)
	if idx.validateAt(r, q) {
		return r
	}
	return search.ExponentialTraced(idx.keys, pred, q, touch)
}
