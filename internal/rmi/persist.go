package rmi

import "encoding/binary"

// SnapshotParams implements the model-reconstruction capability the
// snapshot subsystem probes for (core.ModelParamser, matched
// structurally): an RMI is rebuilt deterministically from its keys plus
// its configuration, so the parameter blob is the leaf count and root
// kind. The matching loader is registered by internal/index.
func (idx *Index[K]) SnapshotParams() []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(idx.Leaves()))
	binary.LittleEndian.PutUint64(b[8:], uint64(idx.rootKind))
	return b[:]
}
