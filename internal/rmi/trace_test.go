package rmi

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestTraceFindEqualsFind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nop := func(uint64, int) {}
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 3000, 9)
		for _, cfg := range []Config{{Leaves: 32}, {Leaves: 32, Root: RootCubic}} {
			idx, err := New(keys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1500; i++ {
				q := rng.Uint64() % (keys[len(keys)-1] + 3)
				if got, want := idx.TraceFind(q, nop), idx.Find(q); got != want {
					t.Fatalf("%s root=%v: TraceFind(%d) = %d, Find = %d", name, cfg.Root, q, got, want)
				}
			}
		}
	}
}
