// Package rmi implements the two-level Recursive Model Index of Kraska et
// al. [24], the strongest learned-index baseline in the paper's Table 2.
//
// A root model (linear or cubic, per CDFShop [29]) routes a key to one of L
// second-level linear leaf models; the chosen leaf predicts the key's
// position. Per-leaf min/max training errors provide a bounded window for
// the last-mile search. As the paper notes (§3.8), RMI is not guaranteed
// monotone — with a cubic root the window becomes a hint and lookups
// validate and fall back to exponential search.
package rmi

import (
	"fmt"
	"math"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/search"
)

// RootKind selects the root model family.
type RootKind int

const (
	// RootLinear uses a least-squares line as the root. Leaf assignments
	// are contiguous and leaf predictions are clamped to their position
	// range, making the whole index monotone.
	RootLinear RootKind = iota
	// RootCubic uses a least-squares cubic root: better leaf routing on
	// curved CDFs, but monotonicity is lost (§3.8).
	RootCubic
)

func (k RootKind) String() string {
	if k == RootCubic {
		return "cubic"
	}
	return "linear"
}

// Config parameterises New.
type Config struct {
	// Leaves is the number of second-level models. 0 defaults to
	// max(1, N/1024).
	Leaves int
	// Root selects the root model family.
	Root RootKind
}

// Index is a built two-level RMI over a sorted key slice.
type Index[K kv.Key] struct {
	keys     []K
	n        int
	rootKind RootKind
	rootLin  *cdfmodel.Linear[K]
	rootCub  *cdfmodel.Cubic[K]
	leafMul  float64 // scales a root position estimate to a leaf id

	// Per-leaf linear models in reference form (ŷ = yref + slope·(x−xref))
	// plus clamping bounds and training error bounds.
	slope, xref, yref []float64
	clampLo, clampHi  []int32 // position range covered by the leaf
	errLo, errHi      []int32 // min/max signed training error
}

// New builds an RMI over sorted keys.
func New[K kv.Key](keys []K, cfg Config) (*Index[K], error) {
	n := len(keys)
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("rmi: keys are not sorted")
	}
	leaves := cfg.Leaves
	if leaves == 0 {
		leaves = n / 1024
	}
	if leaves < 1 {
		leaves = 1
	}
	if cfg.Root != RootLinear && cfg.Root != RootCubic {
		return nil, fmt.Errorf("rmi: unknown root kind %d", cfg.Root)
	}
	idx := &Index[K]{
		keys:     keys,
		n:        n,
		rootKind: cfg.Root,
		slope:    make([]float64, leaves),
		xref:     make([]float64, leaves),
		yref:     make([]float64, leaves),
		clampLo:  make([]int32, leaves),
		clampHi:  make([]int32, leaves),
		errLo:    make([]int32, leaves),
		errHi:    make([]int32, leaves),
	}
	if n == 0 {
		return idx, nil
	}
	switch cfg.Root {
	case RootLinear:
		idx.rootLin = cdfmodel.NewLinear(keys)
	case RootCubic:
		idx.rootCub = cdfmodel.NewCubic(keys)
	}
	idx.leafMul = float64(leaves) / float64(n)

	// Pass 1: route every key through the root and accumulate per-leaf
	// regression sums (offsets from the leaf's first key keep the sums
	// well conditioned for keys near 2^64, as in cdfmodel.fitLine).
	assign := make([]int32, n)
	cnt := make([]int64, leaves)
	x0 := make([]float64, leaves)
	sumOx := make([]float64, leaves)
	sumY := make([]float64, leaves)
	for i, k := range keys {
		leaf := idx.route(k)
		assign[i] = int32(leaf)
		if cnt[leaf] == 0 {
			x0[leaf] = float64(k)
		}
		cnt[leaf]++
		sumOx[leaf] += float64(k) - x0[leaf]
		sumY[leaf] += float64(i)
	}
	// Pass 2: covariance sums.
	sxx := make([]float64, leaves)
	sxy := make([]float64, leaves)
	for i, k := range keys {
		leaf := assign[i]
		c := float64(cnt[leaf])
		obar := sumOx[leaf] / c
		ybar := sumY[leaf] / c
		dx := (float64(k) - x0[leaf]) - obar
		sxx[leaf] += dx * dx
		sxy[leaf] += dx * (float64(i) - ybar)
	}
	for l := 0; l < leaves; l++ {
		if cnt[l] == 0 {
			// Empty leaf: fill in pass 3 from neighbouring coverage.
			idx.clampLo[l] = -1
			continue
		}
		c := float64(cnt[l])
		obar := sumOx[l] / c
		ybar := sumY[l] / c
		if sxx[l] > 0 {
			idx.slope[l] = sxy[l] / sxx[l]
		}
		idx.xref[l] = x0[l]
		idx.yref[l] = ybar - idx.slope[l]*obar
	}
	// Pass 3: clamping ranges, training error bounds, and empty-leaf fill.
	first := make([]int32, leaves)
	last := make([]int32, leaves)
	for l := range first {
		first[l] = math.MaxInt32
		last[l] = -1
	}
	for i := range keys {
		l := assign[i]
		if int32(i) < first[l] {
			first[l] = int32(i)
		}
		if int32(i) > last[l] {
			last[l] = int32(i)
		}
	}
	next := int32(n) // first position of the nearest assigned leaf to the right
	for l := leaves - 1; l >= 0; l-- {
		if last[l] < 0 {
			// No key routed here: any query routed here belongs just
			// before `next` (exact for a monotone root).
			idx.clampLo[l] = next
			idx.clampHi[l] = next
			idx.yref[l] = float64(next)
			continue
		}
		idx.clampLo[l] = first[l]
		idx.clampHi[l] = last[l]
		next = first[l]
	}
	for i, k := range keys {
		l := assign[i]
		pred := idx.leafPredict(int(l), k)
		e := int32(i - pred)
		if e < idx.errLo[l] {
			idx.errLo[l] = e
		}
		if e > idx.errHi[l] {
			idx.errHi[l] = e
		}
	}
	return idx, nil
}

// route returns the leaf id for a key.
func (idx *Index[K]) route(k K) int {
	var v float64
	if idx.rootLin != nil {
		v = idx.rootLin.PredictFloat(k)
	} else {
		v = float64(idx.rootCub.Predict(k))
	}
	l := int(v * idx.leafMul)
	if l < 0 {
		return 0
	}
	if max := len(idx.slope) - 1; l > max {
		return max
	}
	return l
}

// leafPredict evaluates leaf l at key k, clamped to the leaf's position
// coverage (which preserves the error bound and, for a linear root, makes
// the index monotone).
func (idx *Index[K]) leafPredict(l int, k K) int {
	v := idx.yref[l] + idx.slope[l]*(float64(k)-idx.xref[l])
	lo, hi := int(idx.clampLo[l]), int(idx.clampHi[l])
	if !(v > float64(lo)) { // also catches NaN
		return lo
	}
	if v >= float64(hi) {
		return hi
	}
	return int(v)
}

// Predict implements cdfmodel.Model: the raw two-level prediction.
func (idx *Index[K]) Predict(k K) int {
	if idx.n == 0 {
		return 0
	}
	p := idx.leafPredict(idx.route(k), k)
	if p >= idx.n {
		p = idx.n - 1
	}
	return p
}

// Monotone implements cdfmodel.Model: with a linear root, routing and
// clamped leaves make predictions non-decreasing; with a cubic root they
// are not guaranteed to be (§3.8).
func (idx *Index[K]) Monotone() bool { return idx.rootKind == RootLinear }

// SizeBytes implements cdfmodel.Model: root + per-leaf parameters.
func (idx *Index[K]) SizeBytes() int {
	perLeaf := 3*8 + 4*4 // slope/xref/yref + clamp and error bounds
	return 32 + len(idx.slope)*perLeaf
}

// Name implements cdfmodel.Model.
func (idx *Index[K]) Name() string { return "RMI" }

// Leaves returns the second-level model count.
func (idx *Index[K]) Leaves() int { return len(idx.slope) }

// Len returns the number of indexed keys.
func (idx *Index[K]) Len() int { return idx.n }

// FindRange returns the half-open rank range of keys in the inclusive key
// range [a, b].
func (idx *Index[K]) FindRange(a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = idx.Find(a)
	if b == kv.MaxKey[K]() {
		return first, idx.n
	}
	return first, idx.Find(b + 1)
}

// EstimateNs implements the index CostEstimator capability (§3.7
// generalised): root + leaf evaluation (register arithmetic plus one
// non-cached parameter load once the model spills), then a bounded binary
// search across the mean last-mile window 2^Log2Error.
func (idx *Index[K]) EstimateNs(l func(s int) float64) float64 {
	if idx.n == 0 {
		return 0
	}
	window := int(math.Exp2(idx.Log2Error()))
	if window < 1 {
		window = 1
	}
	return l(1) + l(window)
}

// Find returns the smallest index i with keys[i] >= q (lower bound), using
// the per-leaf error bounds for a bounded last-mile search and falling back
// to exponential search when validation fails (non-monotone roots, or
// queries routed across leaf boundaries).
func (idx *Index[K]) Find(q K) int {
	if idx.n == 0 {
		return 0
	}
	l := idx.route(q)
	pred := idx.leafPredict(l, q)
	lo := pred + int(idx.errLo[l])
	hi := pred + int(idx.errHi[l])
	r := search.Window(idx.keys, lo, hi, q)
	if idx.validateAt(r, q) {
		return r
	}
	return search.Exponential(idx.keys, pred, q)
}

func (idx *Index[K]) validateAt(r int, q K) bool {
	if r < 0 || r > idx.n {
		return false
	}
	if r > 0 && idx.keys[r-1] >= q {
		return false
	}
	if r < idx.n && idx.keys[r] < q {
		return false
	}
	return true
}

// Log2Error returns the mean log2 of the last-mile window — the "average
// Log2 error" metric of the paper's Fig. 8 (binary-search iterations).
func (idx *Index[K]) Log2Error() float64 {
	if idx.n == 0 {
		return 0
	}
	var acc float64
	for _, l := range idx.uniqueLeaves() {
		w := float64(idx.errHi[l]-idx.errLo[l]) + 1
		if w < 1 {
			w = 1
		}
		acc += float64(idx.leafCountApprox(l)) * math.Log2(w)
	}
	return acc / float64(idx.n)
}

// uniqueLeaves enumerates leaf ids (all of them; helper kept for clarity).
func (idx *Index[K]) uniqueLeaves() []int {
	out := make([]int, len(idx.slope))
	for i := range out {
		out[i] = i
	}
	return out
}

// leafCountApprox derives a leaf's key count from its clamp range.
func (idx *Index[K]) leafCountApprox(l int) int {
	if idx.clampHi[l] < idx.clampLo[l] {
		return 0
	}
	return int(idx.clampHi[l]-idx.clampLo[l]) + 1
}
