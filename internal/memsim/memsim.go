// Package memsim simulates a processor cache hierarchy. The paper's
// evaluation leans on hardware performance counters (LLC miss rates in
// Fig. 2b and Fig. 8, the 36 ns DRAM latency floor from Intel MLC); Go has
// no portable access to PMCs, so this package substitutes a set-associative
// inclusive LRU cache model fed with the real memory addresses the search
// algorithms touch (see DESIGN.md §2).
//
// Every index package exposes a TraceFind twin of its lookup that emits its
// memory accesses; equality of TraceFind and Find results is property-tested
// package by package, so the simulated access pattern is the real one.
package memsim

import "fmt"

// LevelSpec describes one cache level.
type LevelSpec struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	LatencyNs float64 // access latency when the lookup hits at this level
}

// Config describes a cache hierarchy, ordered from L1 down.
type Config struct {
	Levels []LevelSpec
	DRAMNs float64 // latency when every level misses
}

// Skylake returns the hierarchy of the paper's evaluation machine (Intel
// i7-6700: 32 KB 8-way L1d, 256 KB 4-way L2, 8 MB 16-way L3, 64 B lines),
// with the paper's measured 36 ns LLC-miss penalty as the DRAM latency.
func Skylake() Config {
	return Config{
		Levels: []LevelSpec{
			{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64, LatencyNs: 1.2},
			{Name: "L2", SizeBytes: 256 << 10, Assoc: 4, LineBytes: 64, LatencyNs: 3.5},
			{Name: "L3", SizeBytes: 8 << 20, Assoc: 16, LineBytes: 64, LatencyNs: 12},
		},
		DRAMNs: 36,
	}
}

// LevelStats accumulates hit/miss counts for one level.
type LevelStats struct {
	Name   string
	Hits   int64
	Misses int64
}

// Stats is a snapshot of simulator counters.
type Stats struct {
	Accesses int64
	Levels   []LevelStats
	TotalNs  float64
}

// MissRatio returns misses/accesses for the named level (0 if unknown).
func (s Stats) MissRatio(name string) float64 {
	if s.Accesses == 0 {
		return 0
	}
	for _, l := range s.Levels {
		if l.Name == name {
			return float64(l.Misses) / float64(s.Accesses)
		}
	}
	return 0
}

// MissesPer returns the average number of misses at the named level per
// unit (e.g. per lookup when unit = number of lookups).
func (s Stats) MissesPer(name string, unit int64) float64 {
	if unit == 0 {
		return 0
	}
	for _, l := range s.Levels {
		if l.Name == name {
			return float64(l.Misses) / float64(unit)
		}
	}
	return 0
}

type level struct {
	spec LevelSpec
	sets int
	// tags[set] holds cached line tags in LRU order, most recent first.
	tags [][]uint64
}

// Sim is a cache hierarchy simulator. Not safe for concurrent use.
type Sim struct {
	levels []*level
	dramNs float64
	stats  Stats
}

// New builds a simulator for the hierarchy.
func New(cfg Config) (*Sim, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("memsim: hierarchy needs at least one level")
	}
	s := &Sim{dramNs: cfg.DRAMNs}
	for _, spec := range cfg.Levels {
		if spec.LineBytes <= 0 || spec.Assoc <= 0 || spec.SizeBytes <= 0 {
			return nil, fmt.Errorf("memsim: invalid level %+v", spec)
		}
		sets := spec.SizeBytes / (spec.LineBytes * spec.Assoc)
		if sets < 1 {
			return nil, fmt.Errorf("memsim: level %s smaller than one set", spec.Name)
		}
		lv := &level{spec: spec, sets: sets, tags: make([][]uint64, sets)}
		s.levels = append(s.levels, lv)
		s.stats.Levels = append(s.stats.Levels, LevelStats{Name: spec.Name})
	}
	return s, nil
}

// Access simulates one memory access of `width` bytes at `addr`, touching
// one or two cache lines.
func (s *Sim) Access(addr uint64, width int) {
	if width <= 0 {
		width = 1
	}
	line := s.levels[0].spec.LineBytes
	first := addr / uint64(line)
	last := (addr + uint64(width) - 1) / uint64(line)
	for ln := first; ln <= last; ln++ {
		s.accessLine(ln)
	}
}

// accessLine walks the hierarchy: hit at the highest level containing the
// line, promote into the levels above (inclusive fill), charge the latency
// of the hit level (or DRAM).
func (s *Sim) accessLine(ln uint64) {
	s.stats.Accesses++
	hitAt := -1
	for i, lv := range s.levels {
		if lv.touch(ln) {
			hitAt = i
			break
		}
	}
	if hitAt == -1 {
		s.stats.TotalNs += s.dramNs
		for i := range s.levels {
			s.stats.Levels[i].Misses++
			s.levels[i].fill(ln)
		}
		return
	}
	s.stats.TotalNs += s.levels[hitAt].spec.LatencyNs
	s.stats.Levels[hitAt].Hits++
	for i := 0; i < hitAt; i++ {
		s.stats.Levels[i].Misses++
		s.levels[i].fill(ln)
	}
}

// touch looks the line up and refreshes its LRU position on hit.
func (lv *level) touch(ln uint64) bool {
	set := int(ln % uint64(lv.sets))
	ways := lv.tags[set]
	for i, tag := range ways {
		if tag == ln {
			copy(ways[1:i+1], ways[:i])
			ways[0] = ln
			return true
		}
	}
	return false
}

// fill inserts the line at MRU position, evicting the LRU way when full.
func (lv *level) fill(ln uint64) {
	set := int(ln % uint64(lv.sets))
	ways := lv.tags[set]
	if len(ways) < lv.spec.Assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = ln
	lv.tags[set] = ways
}

// Stats returns a copy of the counters.
func (s *Sim) Stats() Stats {
	out := s.stats
	out.Levels = append([]LevelStats(nil), s.stats.Levels...)
	return out
}

// ResetStats clears counters but keeps cache contents (use between warmup
// and measurement).
func (s *Sim) ResetStats() {
	for i := range s.stats.Levels {
		s.stats.Levels[i].Hits = 0
		s.stats.Levels[i].Misses = 0
	}
	s.stats.Accesses = 0
	s.stats.TotalNs = 0
}

// Flush empties every cache level (cold-cache measurements).
func (s *Sim) Flush() {
	for _, lv := range s.levels {
		for i := range lv.tags {
			lv.tags[i] = nil
		}
	}
}

// Page-fault pricing for mapped snapshots (DESIGN.md §12). A query that
// lands on a non-resident span of a mapped index pays page faults on top
// of its cache misses: a soft (minor) fault when the page is still in
// the page cache and only the mapping needs fixing up — the common case
// right after a snapshot install, since the publisher just wrote the
// bytes — and a hard (major) fault when the page must come from storage.
// The constants are modelling anchors in the spirit of the 36 ns DRAM
// floor, not measurements of any one machine.
const (
	// MinorFaultNs prices a soft fault (page-cache hit, PTE fixup).
	MinorFaultNs = 4000.0
	// MajorFaultNs prices a hard fault (page read from storage; NVMe-era
	// figure — spinning disks are far worse).
	MajorFaultNs = 120000.0
	// ColdQueryPages is how many distinct pages one point lookup into a
	// cold shard of a mapped index touches before its working set warms:
	// the model/drift metadata page plus the probe's key pages. Local
	// search stays within a corrected window, so this is small and does
	// not grow with the shard.
	ColdQueryPages = 3
)

// ColdQueryNs prices one lookup into a cold (non-resident) span of a
// mapped index: ColdQueryPages faults at the minor-fault cost. Used by
// the router's cost model to keep routing honest when part of the index
// is deliberately left cold under a residency budget.
func ColdQueryNs() float64 { return ColdQueryPages * MinorFaultNs }
