package memsim

import (
	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fasttree"
	"repro/internal/kv"
	"repro/internal/search"
)

func tinySim(t *testing.T, sizeBytes, assoc int) *Sim {
	t.Helper()
	s, err := New(Config{
		Levels: []LevelSpec{{Name: "L1", SizeBytes: sizeBytes, Assoc: assoc, LineBytes: 64, LatencyNs: 1}},
		DRAMNs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLRUBasics(t *testing.T) {
	// One set, two ways: lines map to the same set when they differ by a
	// multiple of 64 bytes (sets = 128/(64*2) = 1).
	s := tinySim(t, 128, 2)
	a, b, c := uint64(0), uint64(64), uint64(128)
	s.Access(a, 8) // miss
	s.Access(b, 8) // miss
	s.Access(a, 8) // hit
	s.Access(c, 8) // miss, evicts b (LRU)
	s.Access(a, 8) // hit (still resident)
	s.Access(b, 8) // miss (was evicted)
	st := s.Stats()
	if st.Levels[0].Hits != 2 || st.Levels[0].Misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 2/4", st.Levels[0].Hits, st.Levels[0].Misses)
	}
	wantNs := 2*1.0 + 4*100.0
	if st.TotalNs != wantNs {
		t.Errorf("TotalNs = %.1f, want %.1f", st.TotalNs, wantNs)
	}
}

func TestSameLineIsOneAccessManyHits(t *testing.T) {
	s := tinySim(t, 1024, 4)
	for i := 0; i < 16; i++ {
		s.Access(uint64(i*4), 4) // 16 uint32s on one line
	}
	st := s.Stats()
	if st.Levels[0].Misses != 1 {
		t.Errorf("misses = %d, want 1 (single line)", st.Levels[0].Misses)
	}
	if st.Levels[0].Hits != 15 {
		t.Errorf("hits = %d, want 15", st.Levels[0].Hits)
	}
}

func TestStraddlingAccessTouchesTwoLines(t *testing.T) {
	s := tinySim(t, 1024, 4)
	s.Access(60, 8) // bytes 60..67 straddle lines 0 and 1
	st := s.Stats()
	if st.Accesses != 2 || st.Levels[0].Misses != 2 {
		t.Errorf("straddle: accesses=%d misses=%d, want 2/2", st.Accesses, st.Levels[0].Misses)
	}
}

func TestInclusiveHierarchyPromotion(t *testing.T) {
	s, err := New(Config{
		Levels: []LevelSpec{
			{Name: "L1", SizeBytes: 128, Assoc: 2, LineBytes: 64, LatencyNs: 1},
			{Name: "L2", SizeBytes: 1024, Assoc: 16, LineBytes: 64, LatencyNs: 10},
		},
		DRAMNs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill L1 beyond capacity; older lines stay in L2.
	for i := 0; i < 4; i++ {
		s.Access(uint64(i*64), 8)
	}
	s.ResetStats()
	s.Access(0, 8) // evicted from L1 (2 ways), still in L2
	st := s.Stats()
	if st.Levels[0].Misses != 1 {
		t.Errorf("L1 misses = %d, want 1", st.Levels[0].Misses)
	}
	if st.Levels[1].Hits != 1 {
		t.Errorf("L2 hits = %d, want 1", st.Levels[1].Hits)
	}
	if st.TotalNs != 10 {
		t.Errorf("TotalNs = %.1f, want 10 (L2 hit)", st.TotalNs)
	}
}

func TestFlushAndResetStats(t *testing.T) {
	s := tinySim(t, 1024, 4)
	s.Access(0, 8)
	s.Access(0, 8)
	s.ResetStats()
	if st := s.Stats(); st.Accesses != 0 || st.TotalNs != 0 {
		t.Error("ResetStats should clear counters")
	}
	s.Access(0, 8) // still cached: hit
	if st := s.Stats(); st.Levels[0].Hits != 1 {
		t.Error("ResetStats must keep cache contents")
	}
	s.Flush()
	s.ResetStats()
	s.Access(0, 8)
	if st := s.Stats(); st.Levels[0].Misses != 1 {
		t.Error("Flush must empty the cache")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error for empty hierarchy")
	}
	if _, err := New(Config{Levels: []LevelSpec{{SizeBytes: 0, Assoc: 1, LineBytes: 64}}}); err == nil {
		t.Error("want error for zero-size level")
	}
	if _, err := New(Config{Levels: []LevelSpec{{SizeBytes: 64, Assoc: 4, LineBytes: 64}}}); err == nil {
		t.Error("want error for level smaller than one set")
	}
}

func TestSkylakeShape(t *testing.T) {
	cfg := Skylake()
	if len(cfg.Levels) != 3 || cfg.DRAMNs != 36 {
		t.Fatalf("Skylake config unexpected: %+v", cfg)
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBinarySearchMissProfile reproduces the structure behind the paper's
// Fig. 1b/2b: on a large array, hot binary-search midpoints become cache
// resident, so repeated lookups miss only on the cold tail of each descent;
// a Shift-Table-corrected lookup misses far less; and the full traced
// result always equals the plain result.
func TestBinarySearchMissProfile(t *testing.T) {
	// 4M keys = 32 MB: well beyond the simulated 8 MB L3, as the paper's
	// 200M-key working set is beyond its machine's LLC.
	keys := dataset.MustGenerate(dataset.Face, 64, 4_000_000, 3)
	rng := rand.New(rand.NewSource(7))
	queries := make([]uint64, 2000)
	for i := range queries {
		queries[i] = keys[rng.Intn(len(keys))]
	}

	run := func(find func(q uint64, touch search.Touch) int) (missesPerLookup float64) {
		sim, err := New(Skylake())
		if err != nil {
			t.Fatal(err)
		}
		touch := func(addr uint64, width int) { sim.Access(addr, width) }
		// Warm up, then measure.
		for _, q := range queries[:1000] {
			find(q, touch)
		}
		sim.ResetStats()
		for _, q := range queries[1000:] {
			if got, want := find(q, touch), kv.LowerBound(keys, q); got != want {
				t.Fatalf("traced find = %d, want %d", got, want)
			}
		}
		return sim.Stats().MissesPer("L3", 1000)
	}

	bsMisses := run(func(q uint64, touch search.Touch) int {
		return search.BinaryTraced(keys, q, touch)
	})

	tab, err := core.Build(keys, cdfmodel.NewInterpolation(keys), core.Config{Mode: core.ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	stMisses := run(tab.TraceFind)

	fast, err := fasttree.NewBlocked(keys)
	if err != nil {
		t.Fatal(err)
	}
	fastMisses := run(fast.TraceFind)

	ey, err := fasttree.NewEytzinger(keys)
	if err != nil {
		t.Fatal(err)
	}
	eyMisses := run(ey.TraceFind)

	t.Logf("LLC misses/lookup: binary=%.2f fast=%.2f eytzinger=%.2f shift-table=%.2f",
		bsMisses, fastMisses, eyMisses, stMisses)
	// The paper's ordering (§2.2, Fig. 2b): the line-blocked FAST layout
	// beats plain binary search, and a Shift-Table-corrected dummy model
	// beats both. (Eytzinger without line blocking only helps the upper
	// cache levels, so it is logged but not ordered here.)
	if !(stMisses < fastMisses && fastMisses < bsMisses) {
		t.Errorf("expected shift-table < FAST < binary misses, got st=%.2f fast=%.2f bs=%.2f",
			stMisses, fastMisses, bsMisses)
	}
	if bsMisses < 4 {
		t.Errorf("binary search on 4M cold keys should miss several times per lookup, got %.2f", bsMisses)
	}
	if stMisses > 4 {
		t.Errorf("IM+Shift-Table on face should be a handful of misses, got %.2f", stMisses)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := tinySim(t, 1024, 4)
	s.Access(0, 8)    // miss
	s.Access(0, 8)    // hit
	s.Access(4096, 8) // miss
	st := s.Stats()
	if got := st.MissRatio("L1"); got < 0.66 || got > 0.67 {
		t.Errorf("MissRatio = %.3f, want 2/3", got)
	}
	if st.MissRatio("L9") != 0 {
		t.Error("unknown level must yield 0")
	}
	if got := st.MissesPer("L1", 2); got != 1 {
		t.Errorf("MissesPer(L1, 2) = %.2f, want 1", got)
	}
	if st.MissesPer("L1", 0) != 0 {
		t.Error("zero unit must yield 0")
	}
	empty := Stats{}
	if empty.MissRatio("L1") != 0 {
		t.Error("empty stats MissRatio must be 0")
	}
}
