// Package pgm implements a Piecewise Geometric Model index (Ferragina &
// Vinciguerra [11]), the spline-family learned index the paper cites as
// related work. It serves as an extension baseline beyond the paper's
// Table 2 set and as another monotone CDF model a Shift-Table can correct.
//
// Each level is a sequence of ε-bounded linear segments built with the
// one-pass shrinking-cone algorithm (as in FITing-tree [12], a near-optimal
// O(n) variant of the PGM's optimal construction); upper levels index the
// first keys of the level below until a level fits a small root.
package pgm

import (
	"fmt"

	"repro/internal/kv"
	"repro/internal/search"
)

// Config parameterises New.
type Config struct {
	// Epsilon is the per-segment error bound ε. 0 defaults to 32.
	Epsilon int
	// RootFanout stops the recursion once a level has at most this many
	// segments. 0 defaults to 32.
	RootFanout int
}

// segment is one ε-bounded line: position ≈ pos0 + slope·(key − key0) for
// keys in [key0, nextKey).
type segment[K kv.Key] struct {
	key0  K
	slope float64
	pos0  int32 // position of key0 in the level below (or the data)
	end   int32 // last position covered by this segment
}

// Index is a built multi-level PGM over a sorted key slice.
type Index[K kv.Key] struct {
	keys   []K
	n      int
	eps    int
	levels [][]segment[K] // levels[0] indexes the data; higher levels index level keys
}

// New builds a PGM index over sorted keys.
func New[K kv.Key](keys []K, cfg Config) (*Index[K], error) {
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("pgm: keys are not sorted")
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 32
	}
	if eps < 1 {
		return nil, fmt.Errorf("pgm: invalid epsilon %d", cfg.Epsilon)
	}
	fan := cfg.RootFanout
	if fan == 0 {
		fan = 32
	}
	if fan < 1 {
		return nil, fmt.Errorf("pgm: invalid root fanout %d", cfg.RootFanout)
	}
	idx := &Index[K]{keys: keys, n: len(keys), eps: eps}
	if idx.n == 0 {
		return idx, nil
	}
	// Level 0 over the data (first-occurrence positions, §3.2 semantics).
	level := buildSegments(keys, eps)
	idx.levels = append(idx.levels, level)
	// Recurse over segment first-keys until the level fits the root.
	for len(level) > fan {
		levelKeys := make([]K, len(level))
		for i, s := range level {
			levelKeys[i] = s.key0
		}
		level = buildSegments(levelKeys, eps)
		idx.levels = append(idx.levels, level)
	}
	return idx, nil
}

// buildSegments runs the shrinking-cone pass: a segment grows while some
// slope keeps every covered (key, firstOcc) point within ±ε; when the cone
// empties, the segment is closed with the cone's midpoint slope and a new
// one starts at the current key.
func buildSegments[K kv.Key](keys []K, eps int) []segment[K] {
	n := len(keys)
	var segs []segment[K]
	e := float64(eps)
	start := 0
	startKey := keys[0]
	sLo, sHi := -1e300, 1e300
	lastCovered := 0
	closeSeg := func(endPos int) {
		slope := 0.0
		switch {
		case sLo <= 0 && sHi >= 1e300: // single-point segment
		case sHi >= 1e300:
			slope = sLo
		case sLo <= -1e300:
			slope = sHi
		default:
			slope = (sLo + sHi) / 2
		}
		if slope < 0 {
			slope = 0
		}
		segs = append(segs, segment[K]{key0: startKey, slope: slope, pos0: int32(start), end: int32(endPos)})
	}
	for i := 1; i < n; i++ {
		if keys[i] == keys[i-1] {
			continue // duplicates: constrain only on first occurrence
		}
		dx := float64(keys[i]) - float64(startKey)
		y := float64(i - start)
		lo := (y - e) / dx
		hi := (y + e) / dx
		if lo > sHi || hi < sLo {
			// Cone empty: close at the previous covered point.
			closeSeg(lastCovered)
			start = i
			startKey = keys[i]
			sLo, sHi = -1e300, 1e300
			lastCovered = i
			continue
		}
		if lo > sLo {
			sLo = lo
		}
		if hi < sHi {
			sHi = hi
		}
		lastCovered = i
	}
	closeSeg(n - 1)
	return segs
}

// predictIn evaluates a segment at key q, clamped to the segment's covered
// position range (which keeps level predictions monotone).
func (s *segment[K]) predictIn(q K) int {
	v := float64(s.pos0) + s.slope*(float64(q)-float64(s.key0))
	if !(v > float64(s.pos0)) {
		return int(s.pos0)
	}
	if v >= float64(s.end) {
		return int(s.end)
	}
	return int(v)
}

// findSegment descends the levels to the level-0 segment responsible for q.
func (idx *Index[K]) findSegment(q K) *segment[K] {
	top := idx.levels[len(idx.levels)-1]
	// Root: binary search the (small) top level for the last key0 <= q.
	s := lastAtMost(top, q)
	for lvl := len(idx.levels) - 2; lvl >= 0; lvl-- {
		level := idx.levels[lvl]
		// The upper level predicts this segment's index within ±ε.
		pred := s.predictIn(q)
		lo, hi := pred-idx.eps, pred+idx.eps+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(level) {
			hi = len(level)
		}
		s = lastAtMostRange(level, lo, hi, q)
	}
	return s
}

// lastAtMost returns the last segment with key0 <= q (or the first segment
// when q precedes everything).
func lastAtMost[K kv.Key](segs []segment[K], q K) *segment[K] {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if segs[mid].key0 <= q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return &segs[0]
	}
	return &segs[lo-1]
}

// lastAtMostRange is lastAtMost over segs[lo:hi], with a widening fallback
// if the ε window missed (defensive; should not happen for in-bound keys).
func lastAtMostRange[K kv.Key](segs []segment[K], lo, hi int, q K) *segment[K] {
	if lo >= len(segs) {
		lo = len(segs) - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	// The responsible segment is outside [lo, hi) iff the window's left
	// edge already exceeds q or the segment right of the window still
	// starts at or below q; redo globally in that case (defensive — the ε
	// guarantee makes this unreachable for keys the level was built on).
	if (lo > 0 && segs[lo].key0 > q) || (hi < len(segs) && segs[hi].key0 <= q) {
		return lastAtMost(segs, q)
	}
	return lastAtMost(segs[lo:hi], q)
}

// Predict implements cdfmodel.Model: the level-0 segment's clamped estimate.
func (idx *Index[K]) Predict(q K) int {
	if idx.n == 0 {
		return 0
	}
	return idx.findSegment(q).predictIn(q)
}

// Monotone implements cdfmodel.Model: segments are selected by key order
// and clamped to disjoint increasing position ranges.
func (idx *Index[K]) Monotone() bool { return true }

// SizeBytes implements cdfmodel.Model.
func (idx *Index[K]) SizeBytes() int {
	var keyBytes int
	var zero K
	switch any(zero).(type) {
	case uint32:
		keyBytes = 4
	default:
		keyBytes = 8
	}
	total := 0
	for _, level := range idx.levels {
		total += len(level) * (keyBytes + 8 + 4 + 4)
	}
	return total
}

// Name implements cdfmodel.Model.
func (idx *Index[K]) Name() string { return "PGM" }

// Epsilon returns the per-segment error bound.
func (idx *Index[K]) Epsilon() int { return idx.eps }

// Len returns the number of indexed keys.
func (idx *Index[K]) Len() int { return idx.n }

// FindRange returns the half-open rank range of keys in the inclusive key
// range [a, b].
func (idx *Index[K]) FindRange(a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = idx.Find(a)
	if b == kv.MaxKey[K]() {
		return first, idx.n
	}
	return first, idx.Find(b + 1)
}

// EstimateNs implements the index CostEstimator capability (§3.7
// generalised): one ±ε binary search per recursive level to locate the
// segment, then the ±ε last-mile search — each level one non-cached probe
// plus an in-corridor search.
func (idx *Index[K]) EstimateNs(l func(s int) float64) float64 {
	if idx.n == 0 {
		return 0
	}
	levels := float64(len(idx.levels))
	if levels < 1 {
		levels = 1
	}
	return levels*l(1) + l(2*idx.eps+1)
}

// Segments returns the level-0 segment count.
func (idx *Index[K]) Segments() int {
	if len(idx.levels) == 0 {
		return 0
	}
	return len(idx.levels[0])
}

// Levels returns the number of levels including the root.
func (idx *Index[K]) Levels() int { return len(idx.levels) }

// Find returns the smallest index i with keys[i] >= q, searching the ±ε
// window around the PGM prediction, with validation and exponential
// fallback for the duplicate-run edge cases (as in radixspline).
func (idx *Index[K]) Find(q K) int {
	if idx.n == 0 {
		return 0
	}
	pred := idx.Predict(q)
	r := search.Window(idx.keys, pred-idx.eps, pred+idx.eps, q)
	if idx.valid(r, q) {
		return r
	}
	return search.Exponential(idx.keys, pred, q)
}

func (idx *Index[K]) valid(r int, q K) bool {
	if r < 0 || r > idx.n {
		return false
	}
	if r > 0 && idx.keys[r-1] >= q {
		return false
	}
	if r < idx.n && idx.keys[r] < q {
		return false
	}
	return true
}
