package pgm

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kv"
)

func TestFindMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 5000, 11)
		for _, cfg := range []Config{
			{},
			{Epsilon: 4},
			{Epsilon: 256},
			{Epsilon: 8, RootFanout: 2},
		} {
			idx, err := New(keys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 800; i++ {
				var q uint64
				if i%2 == 0 {
					q = keys[rng.Intn(len(keys))]
				} else {
					q = rng.Uint64() % (keys[len(keys)-1] + 3)
				}
				if got, want := idx.Find(q), kv.LowerBound(keys, q); got != want {
					t.Fatalf("%s ε=%d: Find(%d) = %d, want %d", name, cfg.Epsilon, q, got, want)
				}
			}
			for _, q := range []uint64{0, ^uint64(0), keys[0], keys[len(keys)-1] + 1} {
				if got, want := idx.Find(q), kv.LowerBound(keys, q); got != want {
					t.Fatalf("%s: boundary Find(%d) = %d, want %d", name, q, got, want)
				}
			}
		}
	}
}

func TestEpsilonBoundHonoured(t *testing.T) {
	for _, name := range []dataset.Name{dataset.Face, dataset.Osmc, dataset.Wiki} {
		keys := dataset.MustGenerate(name, 64, 20000, 7)
		for _, eps := range []int{4, 64} {
			idx, err := New(keys, Config{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			firstOcc := kv.FirstOccurrence(keys)
			for i, k := range keys {
				if d := idx.Predict(k) - firstOcc[i]; d > eps || d < -eps {
					t.Fatalf("%s ε=%d: |Predict(%d)−%d| = %d exceeds bound", name, eps, k, firstOcc[i], d)
				}
			}
		}
	}
}

func TestMonotonePredictions(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 64, 10000, 5)
	idx, err := New(keys, Config{Epsilon: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Monotone() {
		t.Fatal("PGM must report monotone")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if a > b {
			a, b = b, a
		}
		if idx.Predict(a) > idx.Predict(b) {
			t.Fatalf("monotonicity violated at (%d, %d)", a, b)
		}
	}
}

func TestMultiLevelStructure(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 50000, 5)
	idx, err := New(keys, Config{Epsilon: 4, RootFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Levels() < 2 {
		t.Errorf("tight ε with tiny fanout should recurse: levels = %d", idx.Levels())
	}
	if idx.Segments() <= idx.Levels() {
		t.Error("level-0 segment count should dominate")
	}
	// Tighter ε → more segments.
	loose, _ := New(keys, Config{Epsilon: 512})
	if idx.Segments() <= loose.Segments() {
		t.Errorf("ε=4 segments (%d) should exceed ε=512 (%d)", idx.Segments(), loose.Segments())
	}
	if idx.SizeBytes() <= loose.SizeBytes() {
		t.Error("size should follow segment count")
	}
}

func TestEdgeCases(t *testing.T) {
	if _, err := New([]uint64{2, 1}, Config{}); err == nil {
		t.Error("want error for unsorted keys")
	}
	if _, err := New([]uint64{1}, Config{Epsilon: -2}); err == nil {
		t.Error("want error for negative epsilon")
	}
	if _, err := New([]uint64{1}, Config{RootFanout: -1}); err == nil {
		t.Error("want error for negative fanout")
	}
	idx, err := New([]uint64{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Find(9); got != 0 {
		t.Errorf("empty Find = %d, want 0", got)
	}
	idx, _ = New([]uint64{7}, Config{})
	for _, c := range []struct {
		q    uint64
		want int
	}{{6, 0}, {7, 0}, {8, 1}} {
		if got := idx.Find(c.q); got != c.want {
			t.Errorf("single-key Find(%d) = %d, want %d", c.q, got, c.want)
		}
	}
	idx, _ = New([]uint64{5, 5, 5, 5}, Config{})
	if got := idx.Find(5); got != 0 {
		t.Errorf("all-dup Find(5) = %d, want 0", got)
	}
	if got := idx.Find(6); got != 4 {
		t.Errorf("all-dup Find(6) = %d, want 4", got)
	}
}

func TestUint32(t *testing.T) {
	keys := dataset.U32(dataset.MustGenerate(dataset.Norm, 32, 4000, 5))
	idx, err := New(keys, Config{Epsilon: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		q := uint32(rng.Uint64())
		if got, want := idx.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("uint32 Find(%d) = %d, want %d", q, got, want)
		}
	}
}
