package cdfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestInterpolationEndpoints(t *testing.T) {
	keys := []uint64{100, 200, 300, 400, 500}
	m := NewInterpolation(keys)
	if got := m.Predict(100); got != 0 {
		t.Errorf("Predict(min) = %d, want 0", got)
	}
	if got := m.Predict(500); got != 4 {
		t.Errorf("Predict(max) = %d, want 4", got)
	}
	if got := m.Predict(300); got != 2 {
		t.Errorf("Predict(mid) = %d, want 2", got)
	}
	// Out-of-range queries clamp.
	if got := m.Predict(50); got != 0 {
		t.Errorf("Predict(below min) = %d, want 0", got)
	}
	if got := m.Predict(9999); got != 4 {
		t.Errorf("Predict(above max) = %d, want 4", got)
	}
}

func TestInterpolationPaperExample(t *testing.T) {
	// Fig. 5 uses Fθ(x) = x/1000 over 100 elements in [0,999]: the model
	// prediction for query 771 must be 77. Keys 0..999 step 10 + offsets
	// approximate this; the pure endpoints 0 and 990 give scale 99/990=0.1.
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i * 10)
	}
	m := NewInterpolation(keys)
	if got := m.Predict(771); got != 77 {
		t.Errorf("Predict(771) = %d, want 77 (paper Fig. 5)", got)
	}
	if got := m.Predict(15); got != 1 {
		t.Errorf("Predict(15) = %d, want 1 (paper Fig. 5 empty-partition example)", got)
	}
}

func TestInterpolationDegenerate(t *testing.T) {
	if got := NewInterpolation([]uint64{}).Predict(5); got != 0 {
		t.Errorf("empty model Predict = %d, want 0", got)
	}
	m := NewInterpolation([]uint64{7, 7, 7})
	if got := m.Predict(7); got != 0 {
		t.Errorf("all-equal model Predict = %d, want 0", got)
	}
	if !m.Monotone() {
		t.Error("IM must be monotone")
	}
}

func TestInterpolationUint32NearDomainTop(t *testing.T) {
	keys := []uint32{0, math.MaxUint32 / 2, math.MaxUint32}
	m := NewInterpolation(keys)
	if got := m.Predict(math.MaxUint32); got != 2 {
		t.Errorf("Predict(max uint32) = %d, want 2", got)
	}
}

func TestLinearFitsExactLine(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(5000 + 3*i)
	}
	m := NewLinear(keys)
	for i, k := range keys {
		if got := m.Predict(k); got != i {
			t.Fatalf("Predict(%d) = %d, want %d", k, got, i)
		}
	}
	if !m.Monotone() {
		t.Error("increasing line must report monotone")
	}
}

func TestLinearHugeKeys(t *testing.T) {
	// Keys near 2^64: the centred fit must stay accurate to within a few
	// positions despite float64 granularity at that magnitude.
	base := uint64(math.MaxUint64 - 1<<30)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = base + uint64(i)*1000
	}
	m := NewLinear(keys)
	for i, k := range keys {
		if got := m.Predict(k); got < i-2 || got > i+2 {
			t.Fatalf("Predict near 2^64: got %d, want ~%d", got, i)
		}
	}
}

func TestLinearSegment(t *testing.T) {
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i * i) // quadratic overall, linear-ish per segment
	}
	m := NewLinearSegment(keys, 40, 20, 100)
	for i := 40; i < 60; i++ {
		got := m.Predict(keys[i])
		if got < i-3 || got > i+3 {
			t.Fatalf("segment Predict(keys[%d]) = %d, want within 3", i, got)
		}
	}
}

func TestLinearDegenerate(t *testing.T) {
	if got := NewLinear([]uint64{}).Predict(1); got != 0 {
		t.Error("empty linear model should predict 0")
	}
	m := NewLinear([]uint64{5})
	if got := m.Predict(5); got != 0 {
		t.Errorf("single-key linear Predict = %d, want 0", got)
	}
	m = NewLinear([]uint64{5, 5, 5, 5})
	got := m.Predict(5)
	if got < 0 || got > 3 {
		t.Errorf("all-equal linear Predict = %d, want within [0,3]", got)
	}
}

func TestCubicFitsCubicData(t *testing.T) {
	// Positions follow the inverse of a cubic: keys[i] grows as i^(1/3)
	// scaled, so position(key) is cubic in key and the model should fit it
	// much better than a line.
	n := 2000
	keys := make([]uint64, n)
	for i := range keys {
		v := float64(i) / float64(n-1)
		keys[i] = uint64(math.Cbrt(v) * 1e12)
	}
	cub := NewCubic(keys)
	lin := NewLinear(keys)
	var cubErr, linErr float64
	for i, k := range keys {
		cubErr += math.Abs(float64(cub.Predict(k) - i))
		linErr += math.Abs(float64(lin.Predict(k) - i))
	}
	if cubErr >= linErr/4 {
		t.Errorf("cubic fit error %.0f not far below linear %.0f", cubErr, linErr)
	}
}

func TestCubicDegenerate(t *testing.T) {
	if got := NewCubic([]uint64{}).Predict(3); got != 0 {
		t.Error("empty cubic model should predict 0")
	}
	m := NewCubic([]uint64{9, 9, 9})
	got := m.Predict(9)
	if got < 0 || got > 2 {
		t.Errorf("all-equal cubic Predict = %d out of range", got)
	}
	// Two points: normal equations are singular; the linear fallback must
	// still produce a sensible increasing fit.
	m = NewCubic([]uint64{0, 100})
	if m.Predict(0) != 0 || m.Predict(100) != 1 {
		t.Errorf("two-point cubic fallback: got (%d,%d), want (0,1)",
			m.Predict(0), m.Predict(100))
	}
}

func TestPredictionsAlwaysInRange(t *testing.T) {
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 3000, 21)
		models := []Model[uint64]{NewInterpolation(keys), NewLinear(keys), NewCubic(keys)}
		rng := rand.New(rand.NewSource(3))
		for _, m := range models {
			for i := 0; i < 2000; i++ {
				q := rng.Uint64()
				p := m.Predict(q)
				if p < 0 || p >= len(keys) {
					t.Fatalf("%s on %s: Predict(%d) = %d out of [0,%d)", m.Name(), name, q, p, len(keys))
				}
			}
		}
	}
}

func TestIMIsMonotoneEverywhere(t *testing.T) {
	f := func(vals []uint64, q1, q2 uint64) bool {
		if len(vals) == 0 {
			return true
		}
		// Sort in place (quick generates arbitrary order).
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		m := NewInterpolation(vals)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return m.Predict(q1) <= m.Predict(q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsMonotoneOn(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 2000, 5)
	if !IsMonotoneOn[uint64](NewInterpolation(keys), keys) {
		t.Error("IM should be monotone on sorted keys")
	}
	if !IsMonotoneOn[uint64](NewLinear(keys), keys) {
		t.Error("fitted increasing line should be monotone on sorted keys")
	}
}

func TestModelMetadata(t *testing.T) {
	keys := []uint64{1, 2, 3}
	for _, m := range []Model[uint64]{NewInterpolation(keys), NewLinear(keys), NewCubic(keys)} {
		if m.Name() == "" {
			t.Error("model must have a name")
		}
		if m.SizeBytes() <= 0 {
			t.Errorf("%s: SizeBytes = %d, want positive", m.Name(), m.SizeBytes())
		}
	}
}
