// Package cdfmodel provides the learned CDF models used throughout the
// repository: the paper's "dummy" min/max interpolation model (IM, §4.1),
// least-squares linear models (the leaves of RMI and the single-line model
// of §3.6/Fig. 6), and cubic models (an RMI root option, §3.8).
//
// A model approximates the empirical CDF F of a sorted key array: Predict
// returns the estimated position [N·Fθ(x)] of a key (§3). Models report
// whether they are guaranteed monotone, which determines whether a
// Shift-Table built on them can guarantee its search windows (§3.8).
package cdfmodel

import "repro/internal/kv"

// Model is a learned approximation of the empirical CDF of a sorted key set.
type Model[K kv.Key] interface {
	// Predict returns the estimated position of k, clamped to [0, N-1]
	// (N = number of keys the model was trained on). For an empty key set
	// it returns 0.
	Predict(k K) int
	// Monotone reports whether Predict is guaranteed non-decreasing in k.
	// A monotone model lets a Shift-Table guarantee its local-search
	// windows (§3.8); a non-monotone one (e.g. cubic RMI) degrades the
	// window to a hint.
	Monotone() bool
	// SizeBytes is the in-memory footprint of the model parameters, used
	// for the index-size sweeps of Fig. 8.
	SizeBytes() int
	// Name identifies the model family in benchmark output.
	Name() string
}

// IsMonotoneOn empirically verifies that predictions are non-decreasing
// over the given sorted keys. Build-time validation for models whose
// Monotone() is structural (and a test oracle for those where it is not).
func IsMonotoneOn[K kv.Key](m Model[K], keys []K) bool {
	prev := 0
	for i, k := range keys {
		p := m.Predict(k)
		if i > 0 && p < prev {
			return false
		}
		prev = p
	}
	return true
}

// Interpolation is the paper's IM model (§4.1): Fθ(x) = (x−min)/(max−min),
// a two-parameter line through the endpoints of the key range,
// "deliberately chosen to purely delegate the burden of data modelling to
// the correction layers."
type Interpolation[K kv.Key] struct {
	min   K
	n     int
	scale float64 // (n-1)/(max-min)
}

// NewInterpolation fits the IM model to sorted keys.
func NewInterpolation[K kv.Key](keys []K) *Interpolation[K] {
	m := &Interpolation[K]{n: len(keys)}
	if len(keys) == 0 {
		return m
	}
	m.min = keys[0]
	max := keys[len(keys)-1]
	if span := float64(max) - float64(m.min); span > 0 {
		m.scale = float64(len(keys)-1) / span
	}
	return m
}

// Predict implements Model. The prediction maps min→0 and max→N−1,
// matching the paper's convention N·F(x₀)=0, N·F(x_{N−1})=N−1 (§3.2).
func (m *Interpolation[K]) Predict(k K) int {
	if m.n == 0 || k <= m.min {
		return 0
	}
	v := float64(k-m.min) * m.scale
	// Clamp in float space: converting an out-of-range float to int is
	// undefined-ish (it saturates to math.MinInt64 on amd64).
	if v >= float64(m.n-1) {
		return m.n - 1
	}
	return int(v)
}

func (m *Interpolation[K]) Monotone() bool { return true }
func (m *Interpolation[K]) SizeBytes() int { return 16 } // min key + scale
func (m *Interpolation[K]) Name() string   { return "IM" }

// Linear is a least-squares line position ≈ slope·key + intercept — the
// "single line as a model" of §3.6 and the leaf model of RMI.
type Linear[K kv.Key] struct {
	slope float64
	xref  float64 // reference key: predictions are evaluated as offsets from it
	yref  float64 // fitted position at the reference key
	n     int
}

// NewLinear fits a least-squares line to (key, position) over sorted keys.
// Both the fit and the prediction are computed in centred coordinates
// (ŷ = ȳ + slope·(x−x̄)): an explicit intercept would be ~slope·x̄, and for
// keys near 2^64 its rounding error alone exceeds hundreds of positions.
func NewLinear[K kv.Key](keys []K) *Linear[K] {
	m := &Linear[K]{n: len(keys)}
	m.slope, m.xref, m.yref = fitLine(keys, 0)
	return m
}

// NewLinearSegment fits a line to keys[first:first+count] mapping into
// global positions first..first+count-1. Used for RMI leaves.
func NewLinearSegment[K kv.Key](keys []K, first, count, total int) *Linear[K] {
	m := &Linear[K]{n: total}
	m.slope, m.xref, m.yref = fitLine(keys[first:first+count], first)
	return m
}

// fitLine returns the least-squares slope and a reference point (xref, yref)
// such that ŷ = yref + slope·(x − xref), for positions
// base..base+len(keys)-1 as a function of key value.
//
// All sums are taken over offsets from the first key rather than raw key
// values: accumulating thousands of ~2^64 floats loses ~2^21 per addition,
// which (observed in tests) corrupts the mean by ~10^5 and halves the slope.
// Differences between nearby float64 values are exact, so offset sums are
// well conditioned.
func fitLine[K kv.Key](keys []K, base int) (slope, xref, yref float64) {
	n := len(keys)
	switch n {
	case 0:
		return 0, 0, 0
	case 1:
		return 0, float64(keys[0]), float64(base)
	}
	x0 := float64(keys[0])
	var obar, ybar float64
	for i, k := range keys {
		obar += float64(k) - x0
		ybar += float64(base + i)
	}
	obar /= float64(n)
	ybar /= float64(n)
	var sxy, sxx float64
	for i, k := range keys {
		dx := (float64(k) - x0) - obar
		sxy += dx * (float64(base+i) - ybar)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, x0, ybar
	}
	slope = sxy / sxx
	// Re-express around x0 so Predict never reconstructs the huge mean:
	// ŷ = ybar + slope·((x−x0) − obar) = (ybar − slope·obar) + slope·(x−x0).
	return slope, x0, ybar - slope*obar
}

// Predict implements Model.
func (m *Linear[K]) Predict(k K) int {
	if m.n == 0 {
		return 0
	}
	return clampPos(m.PredictFloat(k), m.n)
}

// PredictFloat exposes the un-clamped regression value; RMI roots use it to
// pick a leaf without double clamping.
func (m *Linear[K]) PredictFloat(k K) float64 {
	return m.yref + m.slope*(float64(k)-m.xref)
}

func (m *Linear[K]) Monotone() bool { return m.slope >= 0 }
func (m *Linear[K]) SizeBytes() int { return 16 }
func (m *Linear[K]) Name() string   { return "Linear" }

// Cubic is a least-squares cubic position ≈ c₃x³+c₂x²+c₁x+c₀, an RMI root
// option. The paper notes cubic models are where RMI loses monotonicity
// (§3.8), so Monotone is conservatively false.
type Cubic[K kv.Key] struct {
	c   [4]float64 // coefficients in scaled coordinate u = (x-min)·inv
	min float64
	inv float64 // 1/(max-min)
	n   int
}

// NewCubic fits a least-squares cubic to (key, position) over sorted keys,
// in [0,1]-scaled coordinates for numerical conditioning.
func NewCubic[K kv.Key](keys []K) *Cubic[K] {
	m := &Cubic[K]{n: len(keys)}
	if len(keys) == 0 {
		return m
	}
	m.min = float64(keys[0])
	span := float64(keys[len(keys)-1]) - m.min
	if span <= 0 {
		m.c[0] = float64(len(keys)-1) / 2
		return m
	}
	m.inv = 1 / span
	// Normal equations for a degree-3 polynomial fit: A·c = b with
	// A[i][j] = Σ u^(i+j), b[i] = Σ u^i · pos.
	var s [7]float64 // power sums of u
	var b [4]float64
	for i, k := range keys {
		u := (float64(k) - m.min) * m.inv
		up := 1.0
		for p := 0; p < 7; p++ {
			s[p] += up
			if p < 4 {
				b[p] += up * float64(i)
			}
			up *= u
		}
	}
	var a [4][5]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a[i][j] = s[i+j]
		}
		a[i][4] = b[i]
	}
	if c, ok := solve4(a); ok {
		m.c = c
	} else {
		// Degenerate system: fall back to a linear fit, re-expressed in
		// the scaled coordinate u = (x-min)/span.
		slope, xb, yb := fitLine(keys, 0)
		m.c = [4]float64{yb + slope*(m.min-xb), slope * span, 0, 0}
	}
	return m
}

// solve4 performs Gaussian elimination with partial pivoting on a 4x5
// augmented matrix.
func solve4(a [4][5]float64) ([4]float64, bool) {
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-12 {
			return [4]float64{}, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 5; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var x [4]float64
	for i := 0; i < 4; i++ {
		x[i] = a[i][4] / a[i][i]
	}
	return x, true
}

// Predict implements Model.
func (m *Cubic[K]) Predict(k K) int {
	if m.n == 0 {
		return 0
	}
	u := (float64(k) - m.min) * m.inv
	v := m.c[0] + u*(m.c[1]+u*(m.c[2]+u*m.c[3]))
	return clampPos(v, m.n)
}

func (m *Cubic[K]) Monotone() bool { return false }
func (m *Cubic[K]) SizeBytes() int { return 4*8 + 16 }
func (m *Cubic[K]) Name() string   { return "Cubic" }

// clampPos truncates a float position estimate into [0, n-1].
func clampPos(v float64, n int) int {
	if !(v > 0) { // also catches NaN
		return 0
	}
	// Clamp in float space: out-of-range float-to-int conversion saturates
	// to math.MinInt64 on amd64.
	if v >= float64(n-1) {
		return n - 1
	}
	return int(v)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
