package cdfmodel

import "repro/internal/kv"

// BatchPredictor is the optional batch counterpart of Model.Predict. A
// model that implements it predicts a whole query slice in one call, so the
// per-query interface dispatch of the scalar path is paid once per batch
// and the per-model parameter loads stay in registers across the loop.
// PredictBatch must be element-wise identical to Predict.
type BatchPredictor[K kv.Key] interface {
	// PredictBatch writes Predict(qs[i]) into out[i] for every i.
	// len(out) must be >= len(qs).
	PredictBatch(qs []K, out []int)
}

// PredictBatch predicts every query in qs into out, using the model's
// PredictBatch when it implements BatchPredictor and a scalar fallback loop
// otherwise. This is the entry point the batched query engine
// (core.FindBatch) uses; callers never need to type-assert themselves.
func PredictBatch[K kv.Key](m Model[K], qs []K, out []int) {
	if bp, ok := m.(BatchPredictor[K]); ok {
		bp.PredictBatch(qs, out)
		return
	}
	for i, q := range qs {
		out[i] = m.Predict(q)
	}
}

// PredictBatch implements BatchPredictor: the IM prediction with min, scale
// and n held in locals across the loop.
func (m *Interpolation[K]) PredictBatch(qs []K, out []int) {
	if m.n == 0 {
		for i := range qs {
			out[i] = 0
		}
		return
	}
	min, scale, limit := m.min, m.scale, float64(m.n-1)
	for i, q := range qs {
		if q <= min {
			out[i] = 0
			continue
		}
		v := float64(q-min) * scale
		if v >= limit {
			out[i] = m.n - 1
		} else {
			out[i] = int(v)
		}
	}
}

// PredictBatch implements BatchPredictor for the least-squares line.
func (m *Linear[K]) PredictBatch(qs []K, out []int) {
	if m.n == 0 {
		for i := range qs {
			out[i] = 0
		}
		return
	}
	slope, xref, yref := m.slope, m.xref, m.yref
	for i, q := range qs {
		out[i] = clampPos(yref+slope*(float64(q)-xref), m.n)
	}
}

// PredictBatch implements BatchPredictor for the cubic model.
func (m *Cubic[K]) PredictBatch(qs []K, out []int) {
	if m.n == 0 {
		for i := range qs {
			out[i] = 0
		}
		return
	}
	c0, c1, c2, c3 := m.c[0], m.c[1], m.c[2], m.c[3]
	min, inv := m.min, m.inv
	for i, q := range qs {
		u := (float64(q) - min) * inv
		out[i] = clampPos(c0+u*(c1+u*(c2+u*c3)), m.n)
	}
}
