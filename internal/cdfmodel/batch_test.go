package cdfmodel

import (
	"math/rand"
	"testing"
)

// nonBatch wraps a model so it does not implement BatchPredictor,
// exercising PredictBatch's generic fallback.
type nonBatch struct{ m Model[uint64] }

func (o nonBatch) Predict(k uint64) int { return o.m.Predict(k) }
func (o nonBatch) Monotone() bool       { return o.m.Monotone() }
func (o nonBatch) SizeBytes() int       { return o.m.SizeBytes() }
func (o nonBatch) Name() string         { return o.m.Name() }

// TestPredictBatchMatchesScalar checks, for every model family and the
// generic fallback, that PredictBatch is element-wise identical to Predict
// — including on queries far outside the trained key range.
func TestPredictBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 10_000)
	v := uint64(1 << 40)
	for i := range keys {
		v += uint64(rng.Intn(1 << 20))
		keys[i] = v
	}
	models := map[string]Model[uint64]{
		"IM":       NewInterpolation(keys),
		"Linear":   NewLinear(keys),
		"Cubic":    NewCubic(keys),
		"fallback": nonBatch{NewInterpolation(keys)},
	}
	qs := make([]uint64, 4_096)
	for i := range qs {
		switch rng.Intn(5) {
		case 0:
			qs[i] = rng.Uint64() // anywhere in the domain
		case 1:
			qs[i] = 0
		case 2:
			qs[i] = ^uint64(0)
		default:
			qs[i] = keys[rng.Intn(len(keys))] + uint64(rng.Intn(7)) - 3
		}
	}
	out := make([]int, len(qs))
	for name, m := range models {
		PredictBatch(m, qs, out)
		for i, q := range qs {
			if want := m.Predict(q); out[i] != want {
				t.Fatalf("%s: PredictBatch[%d] (q=%d) = %d, Predict = %d", name, i, q, out[i], want)
			}
		}
	}
}

// TestPredictBatchEmptyModel covers models trained on no keys.
func TestPredictBatchEmptyModel(t *testing.T) {
	for name, m := range map[string]Model[uint64]{
		"IM":     NewInterpolation([]uint64(nil)),
		"Linear": NewLinear([]uint64(nil)),
		"Cubic":  NewCubic([]uint64(nil)),
	} {
		out := []int{-1, -1}
		PredictBatch(m, []uint64{5, 10}, out)
		for i, got := range out {
			if got != 0 {
				t.Fatalf("%s: empty-model PredictBatch[%d] = %d, want 0", name, i, got)
			}
		}
	}
}
