package btree

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestTraceLowerBoundEqualsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nop := func(uint64, int) {}
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 3000, 9)
		tr, err := NewBulk(keys, nil, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1500; i++ {
			q := rng.Uint64() % (keys[len(keys)-1] + 3)
			it := tr.LowerBound(q)
			v, ok := tr.TraceLowerBound(q, nop)
			if ok != it.Valid() {
				t.Fatalf("%s: TraceLowerBound(%d) ok=%v, iterator valid=%v", name, q, ok, it.Valid())
			}
			if ok && v != it.Value() {
				t.Fatalf("%s: TraceLowerBound(%d) = %d, iterator value %d", name, q, v, it.Value())
			}
		}
	}
}
