// Package btree implements an in-memory B+tree in the spirit of the STX
// B+tree [1], the classical range-index baseline of the paper's Table 2:
// bulk loading from sorted data, point and lower-bound lookups, ordered
// range iteration, and inserts with node splitting.
//
// Values are 64-bit payloads; the benchmark harness stores each key's
// position so lookups return ranks comparable with the other indexes.
package btree

import (
	"fmt"

	"repro/internal/kv"
)

// DefaultFanout is the default maximum number of keys per node: 16 keys of
// 8 bytes fills two cache lines per node, close to STX's default geometry.
const DefaultFanout = 16

type leaf[K kv.Key] struct {
	keys []K
	vals []uint64
	next *leaf[K]
}

type inner[K kv.Key] struct {
	// keys[i] is the smallest key reachable in kids[i+1]; kids has
	// len(keys)+1 children, each either *inner or *leaf.
	keys []K
	kids []any
}

// Tree is a B+tree keyed by K with uint64 values.
type Tree[K kv.Key] struct {
	root   any // *inner[K] or *leaf[K]; nil when empty
	first  *leaf[K]
	height int
	size   int
	fanout int
}

// New returns an empty tree with the given maximum keys per node (0 means
// DefaultFanout).
func New[K kv.Key](fanout int) (*Tree[K], error) {
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 3 {
		return nil, fmt.Errorf("btree: fanout %d too small (minimum 3)", fanout)
	}
	return &Tree[K]{fanout: fanout}, nil
}

// NewBulk bulk-loads a tree from sorted keys; vals[i] is the value for
// keys[i] (nil means store positions). Bulk loading packs leaves to ~90%%
// occupancy, as STX does.
func NewBulk[K kv.Key](keys []K, vals []uint64, fanout int) (*Tree[K], error) {
	t, err := New[K](fanout)
	if err != nil {
		return nil, err
	}
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("btree: keys are not sorted")
	}
	if vals != nil && len(vals) != len(keys) {
		return nil, fmt.Errorf("btree: %d values for %d keys", len(vals), len(keys))
	}
	n := len(keys)
	if n == 0 {
		return t, nil
	}
	per := t.fanout * 9 / 10
	if per < 1 {
		per = 1
	}
	// Build the leaf level.
	var leaves []*leaf[K]
	for at := 0; at < n; at += per {
		end := at + per
		if end > n {
			end = n
		}
		lf := &leaf[K]{
			keys: append([]K(nil), keys[at:end]...),
			vals: make([]uint64, end-at),
		}
		if vals != nil {
			copy(lf.vals, vals[at:end])
		} else {
			for i := range lf.vals {
				lf.vals[i] = uint64(at + i)
			}
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = lf
		}
		leaves = append(leaves, lf)
	}
	t.first = leaves[0]
	t.size = n
	t.height = 1
	// Build inner levels bottom-up.
	level := make([]any, len(leaves))
	firstKeys := make([]K, len(leaves))
	for i, lf := range leaves {
		level[i] = lf
		firstKeys[i] = lf.keys[0]
	}
	for len(level) > 1 {
		var nextLevel []any
		var nextFirst []K
		for at := 0; at < len(level); at += per {
			end := at + per
			if end > len(level) {
				end = len(level)
			}
			nd := &inner[K]{
				kids: append([]any(nil), level[at:end]...),
				keys: append([]K(nil), firstKeys[at+1:end]...),
			}
			nextLevel = append(nextLevel, nd)
			nextFirst = append(nextFirst, firstKeys[at])
		}
		level, firstKeys = nextLevel, nextFirst
		t.height++
	}
	t.root = level[0]
	return t, nil
}

// Len returns the number of stored entries.
func (t *Tree[K]) Len() int { return t.size }

// Height returns the number of levels (leaves count as 1; 0 when empty).
func (t *Tree[K]) Height() int { return t.height }

// Name identifies the backend in benchmark output, matching the paper's
// Table 2 column label.
func (t *Tree[K]) Name() string { return "B+tree" }

// Find returns the lower-bound rank of q, assuming the tree was bulk-loaded
// with positions as values (NewBulk with nil vals). It is the rank adapter
// that lets the tree serve the repository-wide index contract
// (internal/index) natively.
func (t *Tree[K]) Find(q K) int {
	it := t.LowerBound(q)
	if !it.Valid() {
		return t.size
	}
	return int(it.Value())
}

// FindRange returns the half-open rank range of keys in the inclusive key
// range [a, b], under the same bulk-loaded-positions assumption as Find.
func (t *Tree[K]) FindRange(a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = t.Find(a)
	if b == kv.MaxKey[K]() {
		return first, t.size
	}
	return first, t.Find(b + 1)
}

// EstimateNs implements the index CostEstimator capability (§3.7
// generalised): every level of the descent is one dependent non-cached
// node fetch plus a lower-bound search over up to fanout in-node keys,
// priced at L(fanout) under the machine's latency curve. (Pricing a level
// at bare L(1) systematically underestimates pointer-chasing descents and
// made the router prefer B+trees it then measured 2-4x slower than the
// learned alternatives.)
func (t *Tree[K]) EstimateNs(l func(s int) float64) float64 {
	if t.height == 0 {
		return 0
	}
	return float64(t.height) * l(t.fanout)
}

// Fanout returns the maximum keys per node.
func (t *Tree[K]) Fanout() int { return t.fanout }

// SizeBytes approximates the tree's memory footprint.
func (t *Tree[K]) SizeBytes() int {
	kb := 8
	var zero K
	if _, ok := any(zero).(uint32); ok {
		kb = 4
	}
	total := 0
	var walk func(nd any)
	walk = func(nd any) {
		switch n := nd.(type) {
		case *leaf[K]:
			total += len(n.keys)*kb + len(n.vals)*8 + 24
		case *inner[K]:
			total += len(n.keys)*kb + len(n.kids)*16 + 24
			for _, kid := range n.kids {
				walk(kid)
			}
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return total
}

// descend routes to the rightmost leaf whose first key is <= q (upper-bound
// routing): the leaf holding the *last* occurrence of q. Used by Get,
// Insert and Delete. The path out-parameter records the inner chain.
func (t *Tree[K]) descend(q K, path *[]*inner[K]) *leaf[K] {
	nd := t.root
	for {
		switch n := nd.(type) {
		case *leaf[K]:
			return n
		case *inner[K]:
			if path != nil {
				*path = append(*path, n)
			}
			nd = n.kids[kv.UpperBound(n.keys, q)]
		default:
			return nil
		}
	}
}

// descendLeft routes to the leftmost leaf that can hold a key >= q
// (lower-bound routing). Duplicate runs may span leaves: an equal separator
// must send the search left of it, or the run's first occurrence is missed.
func (t *Tree[K]) descendLeft(q K) *leaf[K] {
	nd := t.root
	for {
		switch n := nd.(type) {
		case *leaf[K]:
			return n
		case *inner[K]:
			nd = n.kids[kv.LowerBound(n.keys, q)]
		default:
			return nil
		}
	}
}

// Get returns the value stored for q (the first occurrence of a duplicate
// run). Like Delete, it tolerates separators gone stale after deletions by
// walking the leaf chain past exhausted leaves.
func (t *Tree[K]) Get(q K) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	for lf := t.descendLeft(q); lf != nil; lf = lf.next {
		i := kv.LowerBound(lf.keys, q)
		if i == len(lf.keys) {
			continue
		}
		if lf.keys[i] == q {
			return lf.vals[i], true
		}
		return 0, false
	}
	return 0, false
}

// Iterator walks entries in key order.
type Iterator[K kv.Key] struct {
	lf *leaf[K]
	i  int
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator[K]) Valid() bool { return it.lf != nil && it.i < len(it.lf.keys) }

// Key returns the current key; call only when Valid.
func (it *Iterator[K]) Key() K { return it.lf.keys[it.i] }

// Value returns the current value; call only when Valid.
func (it *Iterator[K]) Value() uint64 { return it.lf.vals[it.i] }

// Next advances to the next entry in key order.
func (it *Iterator[K]) Next() {
	it.i++
	for it.lf != nil && it.i >= len(it.lf.keys) {
		it.lf = it.lf.next
		it.i = 0
	}
}

// LowerBound returns an iterator at the first entry with key >= q.
func (t *Tree[K]) LowerBound(q K) Iterator[K] {
	if t.root == nil {
		return Iterator[K]{}
	}
	lf := t.descendLeft(q)
	it := Iterator[K]{lf: lf, i: kv.LowerBound(lf.keys, q)}
	for it.lf != nil && it.i >= len(it.lf.keys) {
		it.lf = it.lf.next
		it.i = 0
	}
	return it
}

// Min returns an iterator at the smallest entry.
func (t *Tree[K]) Min() Iterator[K] {
	it := Iterator[K]{lf: t.first}
	for it.lf != nil && len(it.lf.keys) == 0 {
		it.lf = it.lf.next
	}
	return it
}

// Insert adds (k, v) to the tree. Duplicate keys are allowed; the new entry
// is placed at the end of the duplicate run (upper-bound position), so
// lower-bound iteration still sees the oldest entry first.
func (t *Tree[K]) Insert(k K, v uint64) {
	if t.root == nil {
		lf := &leaf[K]{keys: []K{k}, vals: []uint64{v}}
		t.root = lf
		t.first = lf
		t.height = 1
		t.size = 1
		return
	}
	var path []*inner[K]
	lf := t.descend(k, &path)
	i := kv.UpperBound(lf.keys, k)
	lf.keys = insertAt(lf.keys, i, k)
	lf.vals = insertAt(lf.vals, i, v)
	t.size++
	if len(lf.keys) <= t.fanout {
		return
	}
	// Split the leaf and propagate.
	mid := len(lf.keys) / 2
	right := &leaf[K]{
		keys: append([]K(nil), lf.keys[mid:]...),
		vals: append([]uint64(nil), lf.vals[mid:]...),
		next: lf.next,
	}
	lf.keys = lf.keys[:mid:mid]
	lf.vals = lf.vals[:mid:mid]
	lf.next = right
	t.propagateSplit(path, lf, right, right.keys[0])
}

// propagateSplit inserts the (sepKey, right) pair into the parent chain,
// splitting inner nodes as needed.
func (t *Tree[K]) propagateSplit(path []*inner[K], left, right any, sepKey K) {
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		p := path[lvl]
		// Position of left within p.kids.
		at := 0
		for at < len(p.kids) && p.kids[at] != left {
			at++
		}
		p.keys = insertAt(p.keys, at, sepKey)
		p.kids = insertAt(p.kids, at+1, right)
		if len(p.keys) <= t.fanout {
			return
		}
		mid := len(p.keys) / 2
		sepKey = p.keys[mid]
		rn := &inner[K]{
			keys: append([]K(nil), p.keys[mid+1:]...),
			kids: append([]any(nil), p.kids[mid+1:]...),
		}
		p.keys = p.keys[:mid:mid]
		p.kids = p.kids[: mid+1 : mid+1]
		left, right = any(p), any(rn)
	}
	// Root split.
	t.root = &inner[K]{keys: []K{sepKey}, kids: []any{left, right}}
	t.height++
}

// Delete removes the first occurrence of key k and reports whether anything
// was removed. Deletion is lazy: emptied leaves stay in the tree (iterators
// and searches skip them) and no rebalancing is performed — reads stay
// correct, occupancy may drop, as with deferred rebalancing in practice.
// Separator keys may go stale after deletions, so the search starts at the
// leftmost candidate leaf and walks the leaf chain past exhausted leaves.
func (t *Tree[K]) Delete(k K) bool {
	if t.root == nil {
		return false
	}
	for lf := t.descendLeft(k); lf != nil; lf = lf.next {
		i := kv.LowerBound(lf.keys, k)
		if i == len(lf.keys) {
			continue // all keys here < k (or leaf emptied earlier)
		}
		if lf.keys[i] != k {
			return false
		}
		lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
		lf.vals = append(lf.vals[:i], lf.vals[i+1:]...)
		t.size--
		if t.size == 0 {
			t.root = nil
			t.first = nil
			t.height = 0
		}
		return true
	}
	return false
}

// insertAt inserts v at index i.
func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
