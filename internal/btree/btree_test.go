package btree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kv"
)

func collect(t *Tree[uint64]) (keys []uint64, vals []uint64) {
	for it := t.Min(); it.Valid(); it.Next() {
		keys = append(keys, it.Key())
		vals = append(vals, it.Value())
	}
	return keys, vals
}

func TestBulkLoadAndLowerBound(t *testing.T) {
	for _, fanout := range []int{3, 4, 16, 64} {
		for _, name := range []dataset.Name{dataset.Face, dataset.Wiki, dataset.LogN} {
			keys := dataset.MustGenerate(name, 64, 3000, 7)
			tr, err := NewBulk(keys, nil, fanout)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() != len(keys) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
			}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 1000; i++ {
				var q uint64
				if i%2 == 0 {
					q = keys[rng.Intn(len(keys))]
				} else {
					q = rng.Uint64() % (keys[len(keys)-1] + 3)
				}
				want := kv.LowerBound(keys, q)
				it := tr.LowerBound(q)
				if want == len(keys) {
					if it.Valid() {
						t.Fatalf("%s fanout=%d: LowerBound(%d) should be exhausted", name, fanout, q)
					}
					continue
				}
				if !it.Valid() || it.Value() != uint64(want) {
					t.Fatalf("%s fanout=%d: LowerBound(%d) = %v/%d, want pos %d",
						name, fanout, q, it.Valid(), it.Value(), want)
				}
			}
		}
	}
}

func TestOrderedIteration(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 64, 2000, 3)
	tr, err := NewBulk(keys, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, vals := collect(tr)
	if len(got) != len(keys) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != keys[i] || vals[i] != uint64(i) {
			t.Fatalf("iteration mismatch at %d: (%d,%d) want (%d,%d)", i, got[i], vals[i], keys[i], i)
		}
	}
}

func TestInsertRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, err := New[uint64](4)
	if err != nil {
		t.Fatal(err)
	}
	var ref []uint64
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(500)) // force duplicates
		tr.Insert(k, uint64(i))
		ref = append(ref, k)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	got, _ := collect(tr)
	if len(got) != len(ref) {
		t.Fatalf("size %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("sorted order broken at %d: %d want %d", i, got[i], ref[i])
		}
	}
	// Lower bounds across the whole domain.
	for q := uint64(0); q <= 501; q++ {
		want := kv.LowerBound(ref, q)
		it := tr.LowerBound(q)
		if want == len(ref) {
			if it.Valid() {
				t.Fatalf("LowerBound(%d) should be exhausted", q)
			}
			continue
		}
		if !it.Valid() || it.Key() != ref[want] {
			t.Fatalf("LowerBound(%d): got valid=%v key=%v, want key %d", q, it.Valid(), it.Key(), ref[want])
		}
	}
}

func TestGet(t *testing.T) {
	keys := []uint64{10, 20, 30, 40, 50}
	tr, _ := NewBulk(keys, []uint64{100, 200, 300, 400, 500}, 3)
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v != uint64((i+1)*100) {
			t.Errorf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, (i+1)*100)
		}
	}
	if _, ok := tr.Get(25); ok {
		t.Error("Get(absent) should miss")
	}
	if _, ok := tr.Get(5); ok {
		t.Error("Get(below min) should miss")
	}
	if _, ok := tr.Get(99); ok {
		t.Error("Get(above max) should miss")
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, _ := New[uint64](4)
	present := map[uint64]int{}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(300))
		tr.Insert(k, uint64(i))
		present[k]++
	}
	// Delete everything in random order.
	var all []uint64
	for k, c := range present {
		for j := 0; j < c; j++ {
			all = append(all, k)
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, k := range all {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed with %d copies remaining", k, present[k])
		}
		present[k]--
	}
	if tr.Len() != 0 {
		t.Fatalf("tree should be empty, Len = %d", tr.Len())
	}
	if tr.Delete(7) {
		t.Error("Delete on empty tree should report false")
	}
	// The tree remains usable after emptying.
	tr.Insert(42, 1)
	if v, ok := tr.Get(42); !ok || v != 1 {
		t.Error("tree broken after empty/refill cycle")
	}
}

func TestDeleteKeepsSearchable(t *testing.T) {
	tr, _ := New[uint64](3)
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i*2), uint64(i))
	}
	// Remove every fourth key and validate lower bounds continuously.
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(uint64(i * 2)) {
			t.Fatalf("Delete(%d) failed", i*2)
		}
	}
	for q := uint64(0); q < 1000; q += 3 {
		it := tr.LowerBound(q)
		// Reference: remaining keys are {2k : k odd, k < 500}.
		var want uint64
		found := false
		for k := 0; k < 500; k++ {
			if k%2 == 1 && uint64(k*2) >= q {
				want = uint64(k * 2)
				found = true
				break
			}
		}
		if !found {
			if it.Valid() {
				t.Fatalf("LowerBound(%d) should be exhausted, got %d", q, it.Key())
			}
			continue
		}
		if !it.Valid() || it.Key() != want {
			t.Fatalf("LowerBound(%d) = %v, want %d", q, it.Key(), want)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := New[uint64](2); err == nil {
		t.Error("want error for fanout < 3")
	}
	if _, err := NewBulk([]uint64{2, 1}, nil, 0); err == nil {
		t.Error("want error for unsorted keys")
	}
	if _, err := NewBulk([]uint64{1, 2}, []uint64{9}, 0); err == nil {
		t.Error("want error for mismatched values")
	}
}

func TestEmptyAndTiny(t *testing.T) {
	tr, err := NewBulk([]uint64{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it := tr.LowerBound(5); it.Valid() {
		t.Error("empty tree iterator should be invalid")
	}
	if tr.SizeBytes() != 0 {
		t.Error("empty tree should have zero size")
	}
	tr, _ = NewBulk([]uint64{9}, nil, 0)
	if it := tr.LowerBound(9); !it.Valid() || it.Key() != 9 {
		t.Error("single-key lower bound broken")
	}
	if tr.Height() != 1 {
		t.Errorf("single-leaf height = %d, want 1", tr.Height())
	}
}

func TestHeightAndSizeScale(t *testing.T) {
	keys := dataset.MustGenerate(dataset.USpr, 64, 10000, 3)
	small, _ := NewBulk(keys, nil, 4)
	large, _ := NewBulk(keys, nil, 128)
	if small.Height() <= large.Height() {
		t.Errorf("fanout 4 height %d should exceed fanout 128 height %d", small.Height(), large.Height())
	}
	if small.SizeBytes() <= 0 || large.SizeBytes() <= 0 {
		t.Error("size accounting broken")
	}
	if small.Fanout() != 4 || large.Fanout() != 128 {
		t.Error("fanout accessor broken")
	}
}

func TestUint32Tree(t *testing.T) {
	keys := dataset.U32(dataset.MustGenerate(dataset.Amzn, 32, 2000, 3))
	tr, err := NewBulk(keys, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		q := uint32(rng.Uint64())
		want := kv.LowerBound(keys, q)
		it := tr.LowerBound(q)
		if want == len(keys) {
			if it.Valid() {
				t.Fatalf("LowerBound(%d) should be exhausted", q)
			}
			continue
		}
		if !it.Valid() || it.Value() != uint64(want) {
			t.Fatalf("uint32 LowerBound(%d) wrong", q)
		}
	}
}
