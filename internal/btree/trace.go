package btree

import (
	"repro/internal/kv"
	"repro/internal/search"
)

// TraceFind is the instrumented twin of Find: the rank adapter over
// TraceLowerBound, for the cache simulator.
func (t *Tree[K]) TraceFind(q K, touch search.Touch) int {
	v, ok := t.TraceLowerBound(q, touch)
	if !ok {
		return t.size
	}
	return int(v)
}

// TraceLowerBound is the instrumented twin of LowerBound, reporting the
// node-key accesses of the descent and the leaf positioning. It returns the
// value at the lower bound (the key's rank when bulk-loaded with positions)
// and whether one exists.
func (t *Tree[K]) TraceLowerBound(q K, touch search.Touch) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	nd := t.root
	for {
		switch n := nd.(type) {
		case *leaf[K]:
			i := search.BinaryRangeTraced(n.keys, 0, len(n.keys), q, touch)
			lf := n
			for lf != nil && i >= len(lf.keys) {
				lf = lf.next
				if lf != nil {
					touch(kv.PointerAddr(lf), 16)
				}
				i = 0
			}
			if lf == nil {
				return 0, false
			}
			touch(kv.Addr(lf.vals, i), 8)
			return lf.vals[i], true
		case *inner[K]:
			touch(kv.PointerAddr(n), 16) // node header
			c := search.BinaryRangeTraced(n.keys, 0, len(n.keys), q, touch)
			touch(kv.Addr(n.kids, c), 16)
			nd = n.kids[c]
		default:
			return 0, false
		}
	}
}
