package a

import (
	"errors"
	"io"
)

var ErrGone = errors.New("gone")

func Local(err error) bool {
	return err == ErrGone // want `sentinel error compared with ==: use errors\.Is`
}

func Std(err error) bool {
	return err != io.EOF // want `sentinel error compared with !=: use errors\.Is`
}

// NilCheck is idiomatic: exempt.
func NilCheck(err error) bool {
	return err == nil
}

// Is is the contract: no finding.
func Is(err error) bool {
	return errors.Is(err, ErrGone)
}

func Switch(err error) string {
	switch err {
	case nil:
		return "nil"
	case ErrGone: // want `switch over an error value with a sentinel case`
		return "gone"
	}
	return "other"
}

func Waived(err error) bool {
	//shift:allow-sentinel(fixture: interning check, identity is the point)
	return err == ErrGone
}

func BadWaiver(err error) bool {
	/* want `shift:allow-sentinel waiver is missing its mandatory \(reason\)` */ //shift:allow-sentinel
	return err == ErrGone
}

// localErr is not package-level: not a sentinel.
func LocalVar(err error) bool {
	localErr := errors.New("local")
	return err == localErr
}
