package sentinelcmp_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/sentinelcmp"
)

func TestSentinelcmp(t *testing.T) {
	antest.Run(t, "testdata", sentinelcmp.Analyzer, "a")
}
