// Package sentinelcmp keeps the replica/serve typed-error contract
// honest (DESIGN.md §10, §11): error values flow through wrapping
// (fmt.Errorf %w adds attempt counts, artifact names, section context),
// so identity comparison against a sentinel — err == io.EOF,
// err != ErrOverloaded — silently stops matching the moment anyone wraps.
// errors.Is is the contract; this analyzer flags the comparisons that
// bypass it, including switch statements over an error value with
// sentinel cases.
//
// Comparisons against nil are idiomatic and exempt. A deliberate
// identity check (there is occasionally one — interning, test plumbing)
// is waived with //shift:allow-sentinel(reason).
package sentinelcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/shiftcomment"
)

// Analyzer is the sentinelcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelcmp",
	Doc:  "flag ==/!= comparisons of errors against sentinel values; use errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		idx := shiftcomment.NewFile(pass.Fset, f)
		var fd *ast.FuncDecl
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			fd = d
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if isErrorExpr(pass, n.X) && isSentinel(pass, n.Y) || isErrorExpr(pass, n.Y) && isSentinel(pass, n.X) {
						report(pass, idx, fd, n.OpPos,
							"sentinel error compared with "+n.Op.String()+": use errors.Is so wrapped errors still match")
					}
				case *ast.SwitchStmt:
					if n.Tag == nil || !isErrorExpr(pass, n.Tag) {
						return true
					}
					for _, c := range n.Body.List {
						cc := c.(*ast.CaseClause)
						for _, e := range cc.List {
							if isSentinel(pass, e) {
								report(pass, idx, fd, e.Pos(),
									"switch over an error value with a sentinel case: use errors.Is so wrapped errors still match")
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

func report(pass *analysis.Pass, idx *shiftcomment.File, fd *ast.FuncDecl, pos token.Pos, msg string) {
	waived, missingReason, d := idx.Waived(fd, pos, "sentinel")
	if waived {
		if missingReason {
			pass.Reportf(d.Pos, "shift:allow-sentinel waiver is missing its mandatory (reason)")
		}
		return
	}
	pass.Reportf(pos, "%s", msg)
}

var errorType = types.Universe.Lookup("error").Type()

// isErrorExpr reports whether expr has static type error (the interface).
func isErrorExpr(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	return t != nil && types.Identical(t, errorType)
}

// isSentinel reports whether expr references a package-level error
// variable (io.EOF, ErrOverloaded, snapshot.ErrVersionUnsupported, ...).
func isSentinel(pass *analysis.Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v.Parent() == nil {
		return false
	}
	// Package-level: its parent scope is the package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	return types.Identical(v.Type(), errorType)
}
