// Package ctxretry enforces the replica.Sync retry contract (DESIGN.md
// §10): a loop that sleeps — retry backoff, watch-mode polling, readiness
// probing — must observe context cancellation on every iteration. A
// replica shutting down mid-backoff stops now, not after the residual
// sleep; a drained server's poller does not outlive its SIGTERM.
//
// The check is per innermost loop: a for/range statement whose body
// calls time.Sleep or time.After must, in that same body (or the loop
// condition), call Err or Done on a context.Context, or select on a Done
// channel. Loops in test files are exempt — test polling dies with the
// test binary. Intentional uncancellable sleeps are waived with
// //shift:allow-sleep(reason).
package ctxretry

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/shiftcomment"
)

// Analyzer is the ctxretry pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxretry",
	Doc:  "flag loops that sleep without honoring context cancellation each iteration",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		idx := shiftcomment.NewFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				var cond ast.Expr
				switch loop := n.(type) {
				case *ast.ForStmt:
					body, cond = loop.Body, loop.Cond
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				checkLoop(pass, idx, fd, body, cond)
				return true
			})
		}
	}
	return nil, nil
}

// checkLoop inspects one loop body, not descending into nested loops or
// function literals (each is its own iteration scope).
func checkLoop(pass *analysis.Pass, idx *shiftcomment.File, fd *ast.FuncDecl, body *ast.BlockStmt, cond ast.Expr) {
	var sleeps []*ast.CallExpr
	checked := false

	var scan func(n ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				if n != root {
					return false
				}
			case *ast.CallExpr:
				callee, _ := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
				if callee == nil {
					return true
				}
				callee = callee.Origin()
				if callee.Pkg() != nil && callee.Pkg().Path() == "time" {
					switch callee.Name() {
					case "Sleep", "After", "Tick":
						sleeps = append(sleeps, n)
					}
				}
				if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
					if isContext(recv.Type()) && (callee.Name() == "Err" || callee.Name() == "Done") {
						checked = true
					}
				}
			}
			return true
		})
	}
	scan(body)
	if cond != nil {
		scan(cond)
	}

	if len(sleeps) == 0 || checked {
		return
	}
	for _, call := range sleeps {
		waived, missingReason, d := idx.Waived(fd, call.Pos(), "sleep")
		if waived {
			if missingReason {
				pass.Reportf(d.Pos, "shift:allow-sleep waiver is missing its mandatory (reason)")
			}
			continue
		}
		pass.Reportf(call.Pos(), "loop sleeps without checking ctx.Err()/ctx.Done() each iteration: an uncancellable retry outlives its caller's deadline")
	}
}

// isContext reports whether t is context.Context (possibly behind a
// pointer or named alias).
func isContext(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
