package ctxretry_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/ctxretry"
)

func TestCtxretry(t *testing.T) {
	antest.Run(t, "testdata", ctxretry.Analyzer, "a")
}
