package a

import (
	"context"
	"time"
)

func Bad(ctx context.Context) {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond) // want `loop sleeps without checking ctx\.Err\(\)/ctx\.Done\(\)`
	}
}

func GoodErr(ctx context.Context) {
	for i := 0; i < 3; i++ {
		if ctx.Err() != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func GoodCond(ctx context.Context) {
	for ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
}

func GoodSelect(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// Nested: the outer loop checks ctx but the inner sleeping loop does
// not — each innermost loop must check for itself.
func Nested(ctx context.Context) {
	for ctx.Err() == nil {
		for i := 0; i < 3; i++ {
			time.Sleep(time.Millisecond) // want `loop sleeps without checking`
		}
	}
}

func Waived() {
	for i := 0; i < 3; i++ {
		//shift:allow-sleep(fixture: pacing loop with no cancellation source)
		time.Sleep(time.Millisecond)
	}
}

func BadWaiver() {
	for i := 0; i < 3; i++ {
		/* want `shift:allow-sleep waiver is missing its mandatory \(reason\)` */ //shift:allow-sleep
		time.Sleep(time.Millisecond)
	}
}

// NoSleep loops without sleeping: out of scope.
func NoSleep(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
