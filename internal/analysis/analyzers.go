package analysis

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/unusedresult"

	"repro/internal/analysis/boundedmake"
	"repro/internal/analysis/ctxretry"
	"repro/internal/analysis/lockfreepath"
	"repro/internal/analysis/sentinelcmp"
	"repro/internal/analysis/snaponce"
)

// Custom is the project-invariant suite in stable order.
var Custom = []*analysis.Analyzer{
	lockfreepath.Analyzer,
	boundedmake.Analyzer,
	snaponce.Analyzer,
	ctxretry.Analyzer,
	sentinelcmp.Analyzer,
}

// Stock is the curated set of upstream passes shiftvet runs alongside
// the custom suite.
var Stock = []*analysis.Analyzer{
	atomic.Analyzer,
	copylock.Analyzer,
	lostcancel.Analyzer,
	unusedresult.Analyzer,
}

// All is what cmd/shiftvet gates on.
var All = append(append([]*analysis.Analyzer{}, Custom...), Stock...)
