// Package antest is a minimal analysistest: it loads fixture packages
// from a testdata/src tree, typechecks them (std-library imports are
// typechecked from GOROOT source, so the harness needs no export data
// and no network), runs one analyzer over every fixture package in
// dependency order with an in-memory fact store, and compares the
// diagnostics against // want "regexp" comments.
//
// Why not golang.org/x/tools/go/analysis/analysistest: it depends on
// go/packages, which the toolchain's vendored x/tools subset (the only
// copy available to an offline build) does not carry. This harness
// covers what the analyzer suite needs: multi-file packages, fixture
// packages importing each other (exercising cross-package facts), and
// want-comment matching. It does not support suggested fixes or
// result-dependency chains (none of the repo's analyzers use either).
//
// Fixture layout mirrors analysistest:
//
//	testdata/src/<importpath>/<files>.go
//
// A fixture package may import another fixture package by its bare
// path ("a" imports "b" as import "b"); imports that do not resolve
// inside testdata/src fall through to the standard library.
//
// Expectations: a comment // want "re1" "re2" anchors one or more
// diagnostics to its line; each regexp must match a distinct
// diagnostic on that line, every diagnostic must be claimed by some
// expectation, and every expectation must be claimed by some
// diagnostic.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads every package under testdata/src reachable from pkgs, runs
// a over each in dependency order (facts flow between fixture
// packages), and checks want comments in all loaded fixture packages.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		loaded:   make(map[string]*fixturePkg),
		objFacts: make(map[objFactKey]analysis.Fact),
		pkgFacts: make(map[pkgFactKey]analysis.Fact),
		analyzer: a,
	}
	// The std importer shares our fset so positions in imported source
	// stay coherent; ForCompiler captures it at construction.
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	for _, path := range pkgs {
		if _, err := ld.load(path, nil); err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
	}

	// Deterministic report order.
	var order []string
	for path := range ld.loaded {
		order = append(order, path)
	}
	sort.Strings(order)
	for _, path := range order {
		checkWants(t, ld.fset, ld.loaded[path])
	}
}

// fixturePkg is one loaded testdata package.
type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	diags []analysis.Diagnostic
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

type loader struct {
	testdata string
	fset     *token.FileSet
	loaded   map[string]*fixturePkg
	std      types.Importer
	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
	analyzer *analysis.Analyzer
}

// Import implements types.Importer: fixture packages first, then the
// standard library from source.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.testdata, "src", path); dirExists(dir) {
		fp, err := ld.load(path, nil)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return ld.std.Import(path)
}

// load parses, typechecks, and analyzes one fixture package (once).
// Loading a dependency analyzes it before the importer returns, so
// facts are always exported before any importer consumes them.
func (ld *loader) load(path string, stack []string) (*fixturePkg, error) {
	if fp, ok := ld.loaded[path]; ok {
		if fp.pkg == nil {
			return nil, fmt.Errorf("import cycle: %s -> %s", strings.Join(stack, " -> "), path)
		}
		return fp, nil
	}
	fp := &fixturePkg{path: path}
	ld.loaded[path] = fp

	dir := filepath.Join(ld.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		fp.files = append(fp.files, f)
	}
	if len(fp.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := &types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, fp.files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	fp.pkg = pkg

	pass := &analysis.Pass{
		Analyzer:   ld.analyzer,
		Fset:       ld.fset,
		Files:      fp.files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		TypeErrors: nil,
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report: func(d analysis.Diagnostic) {
			fp.diags = append(fp.diags, d)
		},
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			stored, ok := ld.objFacts[objFactKey{obj, reflect.TypeOf(fact)}]
			if !ok {
				return false
			}
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
			return true
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			ld.objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = fact
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			stored, ok := ld.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}]
			if !ok {
				return false
			}
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
			return true
		},
		ExportPackageFact: func(fact analysis.Fact) {
			ld.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}] = fact
		},
		AllObjectFacts:  func() []analysis.ObjectFact { return nil },
		AllPackageFacts: func() []analysis.PackageFact { return nil },
	}
	if _, err := ld.analyzer.Run(pass); err != nil {
		return nil, fmt.Errorf("running %s on %s: %w", ld.analyzer.Name, path, err)
	}
	return fp, nil
}

// expectation is one want regexp anchored to a file line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE matches line comments (// want "re") and block comments
// (/* want "re" */). The block form exists so an expectation can share
// a line with a //shift: directive, whose own syntax requires the
// comment to end at the closing paren.
var wantRE = regexp.MustCompile(`^(?://|/\*)\s*want\s+(.*?)\s*(?:\*/)?$`)

// checkWants compares a package's diagnostics against its want
// comments.
func checkWants(t *testing.T, fset *token.FileSet, fp *fixturePkg) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, raw := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, raw, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range fp.diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		claimed := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matched %s", key, exp.raw)
			}
		}
	}
}

// splitQuoted extracts the quoted strings from a want payload. Both
// forms Go's strconv.Unquote accepts are supported: "double" (with
// escapes) and `backtick` (raw, the friendlier shape for regexps).
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		q := s[i]
		if q != '"' && q != '`' {
			continue
		}
		j := i + 1
		for j < len(s) && s[j] != q {
			if q == '"' && s[j] == '\\' {
				j++
			}
			j++
		}
		if j < len(s) {
			out = append(out, s[i:j+1])
			i = j
		}
	}
	return out
}

func dirExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}
