package a

import (
	"sync"

	"dep"
)

var (
	mu   sync.Mutex
	ch   = make(chan int, 1)
	m    = map[int]int{}
	pool = sync.Pool{New: func() any { return new(int) }}
)

//shift:lockfree
func LockRoot() {
	mu.Lock() // want `acquires \(\*sync\.Mutex\)\.Lock on the lock-free path rooted at LockRoot`
	mu.Unlock()
}

//shift:lockfree
func SendRoot() {
	ch <- 1 // want `sends on a channel on the lock-free path rooted at SendRoot`
}

//shift:lockfree
func RecvRoot() int {
	return <-ch // want `receives from a channel on the lock-free path rooted at RecvRoot`
}

//shift:lockfree
func RangeRoot() int {
	s := 0
	for v := range ch { // want `ranges over a channel on the lock-free path rooted at RangeRoot`
		s += v
	}
	return s
}

//shift:lockfree
func MapRoot() {
	m[1] = 2 // want `writes to a map on the lock-free path rooted at MapRoot`
}

// PollRoot's channel ops live in a select with a default clause:
// non-blocking by construction, no finding.
//
//shift:lockfree
func PollRoot() int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// PoolRoot uses sync.Pool, whose locking is amortized slow-path only:
// sanctioned on read paths, no finding.
//
//shift:lockfree
func PoolRoot() *int {
	v := pool.Get().(*int)
	pool.Put(v)
	return v
}

//shift:lockfree
func ViaRoot() {
	helper()
}

func helper() {
	mu.Lock() // want `acquires \(\*sync\.Mutex\)\.Lock on the lock-free path rooted at ViaRoot \(via a\.helper\)`
	mu.Unlock()
}

//shift:lockfree
func CrossRoot() int {
	dep.Blocker() // want `call to dep\.Blocker on the lock-free path rooted at CrossRoot: it acquires \(\*sync\.Mutex\)\.Lock`
	return dep.Harmless()
}

//shift:lockfree
func WaivedRoot() {
	//shift:allow-lock(fixture: startup-only lock, never on the serve path)
	mu.Lock()
	mu.Unlock()
}

//shift:lockfree
func BadWaiverRoot() {
	/* want `shift:allow-lock waiver is missing its mandatory \(reason\)` */ //shift:allow-lock
	mu.Lock()
	mu.Unlock()
}

// NotARoot blocks freely: no annotation, no finding.
func NotARoot() {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
