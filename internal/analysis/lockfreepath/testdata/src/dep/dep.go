// Package dep is a fixture dependency: it exports a function that
// blocks, so importing packages exercise cross-package fact flow.
package dep

import "sync"

var mu sync.Mutex

// Blocker acquires a lock; lock-free paths must not reach it.
func Blocker() {
	mu.Lock()
	mu.Unlock()
}

// Harmless does nothing blocking.
func Harmless() int { return 1 }
