// Package lockfreepath verifies the repo's central serving invariant
// (DESIGN.md §6, §11): a function annotated //shift:lockfree — the
// lock-free read roots like core.Table.Find/FindBatch, the
// concurrent.Index read methods, and the serve coalescer's wave path —
// must never reach a mutex acquisition, a blocking channel operation, or
// a map write, directly or through any statically-resolvable callee,
// across package boundaries.
//
// The walk is AST-level over the static call graph: calls through
// interfaces, function values, and reflection are not followed (the
// repo's read paths are concrete by design; a dynamic call on a hot read
// path deserves its own review). Channel operations inside a select that
// has a default clause are non-blocking by construction and are not
// flagged.
//
// Cross-package reachability rides the analysis framework's facts: every
// analyzed function that can block exports a BlocksFact, so a root in
// package A calling into package B is caught at the call site without
// whole-program analysis.
//
// Intentional exceptions are waived in place with
// //shift:allow-lock(reason) — on the operation's line or in the
// enclosing function's doc comment. The reason is mandatory.
package lockfreepath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/shiftcomment"
)

// Analyzer is the lockfreepath pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockfreepath",
	Doc:       "flag mutex acquisitions, blocking channel ops, and map writes reachable from //shift:lockfree roots",
	Run:       run,
	FactTypes: []analysis.Fact{(*BlocksFact)(nil)},
}

// BlocksFact marks a function that can block or mutate shared state:
// calling it from a lock-free path is a finding.
type BlocksFact struct {
	Why string // e.g. "acquires (*sync.Mutex).Lock" or "calls x.f, which sends on a channel"
}

func (*BlocksFact) AFact() {}

func (f *BlocksFact) String() string { return "blocks: " + f.Why }

// blockOp is one blocking operation found directly in a function body.
type blockOp struct {
	pos  token.Pos
	desc string
}

// callEdge is one statically-resolved call.
type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

// funcInfo is the per-function slice of the package call graph.
type funcInfo struct {
	decl  *ast.FuncDecl
	file  *shiftcomment.File
	ops   []blockOp
	calls []callEdge
	root  bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	infos := make(map[*types.Func]*funcInfo)
	var order []*types.Func // deterministic iteration

	for _, f := range pass.Files {
		idx := shiftcomment.NewFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &funcInfo{decl: fd, file: idx}
			_, info.root = shiftcomment.FuncDirective(fd, "lockfree")
			collect(pass, fd.Body, info)
			filterWaived(pass, info)
			infos[obj] = info
			order = append(order, obj)
		}
	}

	// Transitive reach, memoized over the local graph; imported callees
	// consult facts exported when their package was analyzed.
	type reach struct {
		why string
		ok  bool
	}
	memo := make(map[*types.Func]*reach)
	var reachOf func(fn *types.Func, visiting map[*types.Func]bool) (string, bool)
	reachOf = func(fn *types.Func, visiting map[*types.Func]bool) (string, bool) {
		if r, ok := memo[fn]; ok {
			return r.why, r.ok
		}
		if visiting[fn] {
			return "", false // cycle: resolved by whoever entered first
		}
		info, local := infos[fn]
		if !local {
			var fact BlocksFact
			if pass.ImportObjectFact(fn, &fact) {
				return fact.Why, true
			}
			return "", false
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		if len(info.ops) > 0 {
			r := &reach{why: info.ops[0].desc, ok: true}
			memo[fn] = r
			return r.why, true
		}
		for _, c := range info.calls {
			if why, ok := reachOf(c.callee, visiting); ok {
				r := &reach{why: fmt.Sprintf("calls %s, which %s", calleeName(c.callee), why), ok: true}
				memo[fn] = r
				return r.why, true
			}
		}
		memo[fn] = &reach{}
		return "", false
	}

	// Export facts for every local function that can block, so importing
	// packages see through us.
	for _, fn := range order {
		if why, ok := reachOf(fn, make(map[*types.Func]bool)); ok && fn.Pkg() == pass.Pkg {
			fact := &BlocksFact{Why: why}
			pass.ExportObjectFact(fn, fact)
		}
	}

	// Report from the roots: walk the local reachable subgraph, flagging
	// each blocking op at its own site (best fix locality) and each edge
	// into a blocking imported function at the call site.
	reported := make(map[token.Pos]bool)
	for _, root := range order {
		info := infos[root]
		if !info.root {
			continue
		}
		seen := make(map[*types.Func]bool)
		var walk func(fn *types.Func, chain []string)
		walk = func(fn *types.Func, chain []string) {
			if seen[fn] {
				return
			}
			seen[fn] = true
			fi, local := infos[fn]
			if !local {
				return
			}
			via := ""
			if len(chain) > 0 {
				via = " (via " + strings.Join(chain, " → ") + ")"
			}
			for _, op := range fi.ops {
				if reported[op.pos] {
					continue
				}
				reported[op.pos] = true
				pass.Reportf(op.pos, "%s on the lock-free path rooted at %s%s", op.desc, root.Name(), via)
			}
			for _, c := range fi.calls {
				if _, isLocal := infos[c.callee]; isLocal {
					if _, ok := reachOf(c.callee, make(map[*types.Func]bool)); ok {
						walk(c.callee, append(chain, calleeName(c.callee)))
					}
					continue
				}
				var fact BlocksFact
				if pass.ImportObjectFact(c.callee, &fact) {
					if reported[c.pos] {
						continue
					}
					reported[c.pos] = true
					pass.Reportf(c.pos, "call to %s on the lock-free path rooted at %s%s: it %s", calleeName(c.callee), root.Name(), via, fact.Why)
				}
			}
		}
		walk(root, nil)
	}
	return nil, nil
}

// calleeName renders a callee compactly: pkg-qualified for functions,
// Type.Method for methods.
func calleeName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// mutexAcquirers is the set of blocking (or audit-worthy, for Try*)
// acquisition methods, by types.Func.FullName.
var mutexAcquirers = map[string]string{
	"(*sync.Mutex).Lock":       "acquires (*sync.Mutex).Lock",
	"(*sync.Mutex).TryLock":    "acquires (*sync.Mutex).TryLock",
	"(*sync.RWMutex).Lock":     "acquires (*sync.RWMutex).Lock",
	"(*sync.RWMutex).RLock":    "acquires (*sync.RWMutex).RLock",
	"(*sync.RWMutex).TryLock":  "acquires (*sync.RWMutex).TryLock",
	"(*sync.RWMutex).TryRLock": "acquires (*sync.RWMutex).TryRLock",
}

// amortizedSafe lists callees whose internal locking is slow-path-only
// and sanctioned on read paths: sync.Pool is the repo's batch-scratch
// reuse mechanism (DESIGN.md §8) — Get/Put pin a P-local cache and take
// the pool mutex only on first use per P or during GC victim rotation,
// so the per-operation cost is lock-free.
var amortizedSafe = map[string]bool{
	"(*sync.Pool).Get": true,
	"(*sync.Pool).Put": true,
}

// collect walks one function body recording blocking ops and static call
// edges. Channel operations inside a select with a default clause are
// skipped (non-blocking by construction). Function literals are walked
// as part of the enclosing function: a closure built on a lock-free path
// is assumed runnable on it.
func collect(pass *analysis.Pass, body *ast.BlockStmt, info *funcInfo) {
	nonBlocking := make(map[ast.Node]bool) // comm clauses of selects with default
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			hasDefault := false
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range sel.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						nonBlocking[cc.Comm] = true
					}
				}
			}
		}
		return true
	})

	var visit func(n ast.Node, comm ast.Node)
	visit = func(n ast.Node, comm ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				for _, c := range n.Body.List {
					cc := c.(*ast.CommClause)
					if cc.Comm != nil {
						visit(cc.Comm, cc.Comm)
					}
					for _, stmt := range cc.Body {
						visit(stmt, nil)
					}
				}
				return false
			case *ast.SendStmt:
				if !(comm == n && nonBlocking[n]) {
					info.ops = append(info.ops, blockOp{pos: n.Arrow, desc: "sends on a channel"})
				}
				visit(n.Chan, nil)
				visit(n.Value, nil)
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocking := true
					if comm != nil && nonBlocking[comm] {
						blocking = false
					}
					if blocking {
						info.ops = append(info.ops, blockOp{pos: n.OpPos, desc: "receives from a channel"})
					}
				}
			case *ast.RangeStmt:
				if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); ok {
					info.ops = append(info.ops, blockOp{pos: n.For, desc: "ranges over a channel"})
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if ix, ok := lhs.(*ast.IndexExpr); ok {
						if _, ok := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); ok {
							info.ops = append(info.ops, blockOp{pos: ix.Lbrack, desc: "writes to a map"})
						}
					}
				}
			case *ast.IncDecStmt:
				if ix, ok := n.X.(*ast.IndexExpr); ok {
					if _, ok := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); ok {
						info.ops = append(info.ops, blockOp{pos: ix.Lbrack, desc: "writes to a map"})
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" {
					if _, bi := pass.TypesInfo.Uses[id].(*types.Builtin); bi && len(n.Args) == 2 {
						if _, ok := pass.TypesInfo.TypeOf(n.Args[0]).Underlying().(*types.Map); ok {
							info.ops = append(info.ops, blockOp{pos: n.Pos(), desc: "writes to a map (delete)"})
						}
					}
				}
				if callee := typeutil.Callee(pass.TypesInfo, n); callee != nil {
					if fn, ok := callee.(*types.Func); ok {
						fn = fn.Origin()
						if desc, bad := mutexAcquirers[fn.FullName()]; bad {
							info.ops = append(info.ops, blockOp{pos: n.Pos(), desc: desc})
						} else if !amortizedSafe[fn.FullName()] {
							info.calls = append(info.calls, callEdge{pos: n.Pos(), callee: fn})
						}
					}
				}
			}
			return true
		})
	}
	for _, stmt := range body.List {
		visit(stmt, nil)
	}
	sort.Slice(info.ops, func(i, j int) bool { return info.ops[i].pos < info.ops[j].pos })
	sort.Slice(info.calls, func(i, j int) bool { return info.calls[i].pos < info.calls[j].pos })
}

// filterWaived drops ops and call edges covered by a
// //shift:allow-lock waiver, reporting waivers that are missing their
// mandatory reason. Waived call edges also stop fact propagation: the
// waiver asserts the blocking behind that edge is intentional, so
// callers of this function are not tainted through it.
func filterWaived(pass *analysis.Pass, info *funcInfo) {
	kept := info.ops[:0]
	for _, op := range info.ops {
		waived, missingReason, d := info.file.Waived(info.decl, op.pos, "lock")
		if !waived {
			kept = append(kept, op)
			continue
		}
		if missingReason {
			pass.Reportf(d.Pos, "shift:allow-lock waiver is missing its mandatory (reason)")
		}
	}
	info.ops = kept
	keptCalls := info.calls[:0]
	for _, c := range info.calls {
		waived, missingReason, d := info.file.Waived(info.decl, c.pos, "lock")
		if !waived {
			keptCalls = append(keptCalls, c)
			continue
		}
		if missingReason {
			pass.Reportf(d.Pos, "shift:allow-lock waiver is missing its mandatory (reason)")
		}
	}
	info.calls = keptCalls
}
