package lockfreepath_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/lockfreepath"
)

func TestLockfreepath(t *testing.T) {
	antest.Run(t, "testdata", lockfreepath.Analyzer, "a")
}
