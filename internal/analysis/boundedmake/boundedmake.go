// Package boundedmake encodes the loader-hardening invariant from PR 5
// (DESIGN.md §9): an integer decoded from untrusted input — a snapshot
// header, a manifest, anything read off an io.Reader — must not size an
// allocation until it has been bounded. A hostile header saying
// "10^15 drifts follow" must fail the length check, not reach make and
// panic (or reach make and OOM) at first use.
//
// The check is a per-function, flow-insensitive taint pass:
//
//   - Sources: encoding/binary decodes — LittleEndian/BigEndian/
//     NativeEndian.UintXX, binary.Read (the pointed-to value and its
//     fields), ReadUvarint/ReadVarint.
//   - Propagation: any assignment whose right side mentions a tainted
//     value taints the left side, through conversions and arithmetic.
//   - Sanitizers: a relational comparison (<, >, <=, >=) against an
//     untainted bound clears the value — that is the dominating
//     length-vs-stat'd-size check the loaders are required to make. The
//     len, cap, and min builtins yield untainted values.
//   - Sinks: make with a tainted length or capacity, slices.Grow with a
//     tainted delta, and io.ReadFull into a slice whose high bound is
//     tainted.
//
// snapshot.ReadFixed is the sanctioned channel for untrusted lengths —
// it validates against the stat'd input size and reads in bounded
// chunks — so taint flowing into it is not a finding. Residual
// intentional sites are waived with //shift:allow-unbounded(reason).
package boundedmake

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/shiftcomment"
)

// Analyzer is the boundedmake pass.
var Analyzer = &analysis.Analyzer{
	Name: "boundedmake",
	Doc:  "flag allocations sized by integers decoded from untrusted input without a dominating bound check",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		idx := shiftcomment.NewFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, idx, fd)
		}
	}
	return nil, nil
}

type taintState struct {
	pass      *analysis.Pass
	tainted   map[types.Object]bool
	sanitized map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, idx *shiftcomment.File, fd *ast.FuncDecl) {
	st := &taintState{
		pass:      pass,
		tainted:   make(map[types.Object]bool),
		sanitized: make(map[types.Object]bool),
	}

	// Seed: binary.Read(r, order, &v) taints v wholesale (decoded
	// header structs).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeIs(pass, call, "encoding/binary", "Read") && len(call.Args) == 3 {
			if un, ok := call.Args[2].(*ast.UnaryExpr); ok && un.Op == token.AND {
				if obj := rootObject(pass, un.X); obj != nil {
					st.tainted[obj] = true
				}
			}
		}
		return true
	})

	// Propagate through assignments to a fixpoint (the taint set only
	// grows, so this terminates).
	for {
		grew := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				anyTainted := false
				for _, rhs := range n.Rhs {
					if st.exprTainted(rhs) {
						anyTainted = true
					}
				}
				if len(n.Rhs) == len(n.Lhs) {
					for i, rhs := range n.Rhs {
						if st.exprTainted(rhs) {
							grew = st.taintLHS(n.Lhs[i]) || grew
						}
					}
				} else if anyTainted {
					for _, lhs := range n.Lhs {
						grew = st.taintLHS(lhs) || grew
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if st.exprTainted(v) && i < len(n.Names) {
						grew = st.taintLHS(n.Names[i]) || grew
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	// Sanitizers: a relational comparison against an untainted bound.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		xT, yT := st.exprTainted(bin.X), st.exprTainted(bin.Y)
		if xT && !yT {
			st.sanitizeExpr(bin.X)
		}
		if yT && !xT {
			st.sanitizeExpr(bin.Y)
		}
		return true
	})

	// Sinks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(pass, call, "make"):
			for _, arg := range call.Args[1:] {
				if st.hot(arg) {
					report(pass, idx, fd, call.Pos(),
						"make sized by an integer decoded from untrusted input; bound it against the stat'd input size first, or read through snapshot.ReadFixed")
					break
				}
			}
		case calleeIs(pass, call, "slices", "Grow"):
			if len(call.Args) == 2 && st.hot(call.Args[1]) {
				report(pass, idx, fd, call.Pos(),
					"slices.Grow sized by an integer decoded from untrusted input; bound it against the stat'd input size first")
			}
		case calleeIs(pass, call, "io", "ReadFull") || calleeIs(pass, call, "io", "ReadAtLeast"):
			hot := false
			for _, arg := range call.Args[1:] {
				ast.Inspect(arg, func(n ast.Node) bool {
					if sl, ok := n.(*ast.SliceExpr); ok {
						if sl.High != nil && st.hot(sl.High) {
							hot = true
						}
						if sl.Max != nil && st.hot(sl.Max) {
							hot = true
						}
					}
					return true
				})
			}
			if hot {
				report(pass, idx, fd, call.Pos(),
					"io.ReadFull into a slice bounded by an untrusted decoded length; validate the length against the stat'd input size first, or use snapshot.ReadFixed")
			}
		}
		return true
	})
}

// hot reports whether expr carries live (unsanitized) taint: it mentions
// a tainted-but-not-sanitized object, or contains a decode source call
// directly.
func (st *taintState) hot(expr ast.Expr) bool {
	hot := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := st.pass.TypesInfo.ObjectOf(n); obj != nil && st.tainted[obj] && !st.sanitized[obj] {
				hot = true
			}
		case *ast.CallExpr:
			if isSource(st.pass, n) {
				hot = true
				return false
			}
			if isUntaintingCall(st.pass, n) {
				return false
			}
		}
		return true
	})
	return hot
}

// exprTainted reports whether expr derives from untrusted input at all
// (sanitized or not) — the propagation predicate.
func (st *taintState) exprTainted(expr ast.Expr) bool {
	tainted := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := st.pass.TypesInfo.ObjectOf(n); obj != nil && st.tainted[obj] {
				tainted = true
			}
		case *ast.CallExpr:
			if isSource(st.pass, n) {
				tainted = true
				return false
			}
			if isUntaintingCall(st.pass, n) {
				return false
			}
		}
		return true
	})
	return tainted
}

// taintLHS taints the object behind an assignment target; reports
// whether the set grew.
func (st *taintState) taintLHS(lhs ast.Expr) bool {
	obj := rootObject(st.pass, lhs)
	if obj == nil {
		return false
	}
	// Only integer-ish destinations matter, but struct roots (decoded
	// headers) are kept wholesale so field reads stay tainted.
	if st.tainted[obj] {
		return false
	}
	st.tainted[obj] = true
	return true
}

// sanitizeExpr clears every object the bound-checked expression mentions.
func (st *taintState) sanitizeExpr(expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.pass.TypesInfo.ObjectOf(id); obj != nil && st.tainted[obj] {
				st.sanitized[obj] = true
			}
		}
		return true
	})
}

// rootObject resolves the base object of an lvalue-ish expression:
// ident, selector chain root, index/slice/star/paren base.
func rootObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(e)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isSource reports whether call decodes an integer from raw input:
// binary.{Little,Big,Native}Endian.UintXX or binary.Read{U,}varint.
func isSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := typeutil.Callee(pass.TypesInfo, call)
	fn, ok := callee.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return false
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Uint") || name == "ReadUvarint" || name == "ReadVarint"
}

// isUntaintingCall reports calls whose results are inherently bounded by
// in-memory data: len/cap/min/max builtins and snapshot.ReadFixed (the
// sanctioned bounded reader — taint flowing into it is the fix, and its
// result is validated).
func isUntaintingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "len", "cap", "min", "max":
				return true
			}
		}
	}
	callee := typeutil.Callee(pass.TypesInfo, call)
	if fn, ok := callee.(*types.Func); ok && fn.Name() == "ReadFixed" && fn.Pkg() != nil {
		if path := fn.Pkg().Path(); path == "snapshot" || strings.HasSuffix(path, "/snapshot") {
			return true
		}
	}
	return false
}

// calleeIs reports whether call statically invokes pkgPath.name (a
// package-level function or a method of a package-level value, like the
// binary.LittleEndian methods).
func calleeIs(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	callee := typeutil.Callee(pass.TypesInfo, call)
	fn, ok := callee.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isB
}

// report emits one finding unless waived.
func report(pass *analysis.Pass, idx *shiftcomment.File, fd *ast.FuncDecl, pos token.Pos, msg string) {
	waived, missingReason, d := idx.Waived(fd, pos, "unbounded")
	if waived {
		if missingReason {
			pass.Reportf(d.Pos, "shift:allow-unbounded waiver is missing its mandatory (reason)")
		}
		return
	}
	pass.Reportf(pos, "%s", msg)
}
