package a

import (
	"encoding/binary"
	"io"
	"slices"

	"snapshot"
)

func Unbounded(b []byte) []int {
	n := binary.LittleEndian.Uint64(b)
	return make([]int, n) // want `make sized by an integer decoded from untrusted input`
}

// Bounded checks the decoded length against an in-memory bound first:
// sanitized, no finding.
func Bounded(b []byte, avail int64) []int {
	n := binary.LittleEndian.Uint64(b)
	if int64(n) > avail {
		return nil
	}
	return make([]int, n)
}

// LenBounded clamps through the min builtin: untainted, no finding.
func LenBounded(b []byte) []byte {
	n := binary.LittleEndian.Uint64(b)
	m := min(int(n), len(b))
	return make([]byte, m)
}

// Derived taint flows through arithmetic and conversions.
func Derived(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	total := int(n) * 8
	return make([]byte, total) // want `make sized by an integer decoded from untrusted input`
}

type header struct {
	Count uint64
}

// DecodedHeader taints the whole struct through binary.Read.
func DecodedHeader(r io.Reader) ([]byte, error) {
	var h header
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, err
	}
	return make([]byte, h.Count), nil // want `make sized by an integer decoded from untrusted input`
}

func Grown(b []byte, s []int) []int {
	n := binary.LittleEndian.Uint64(b)
	return slices.Grow(s, int(n)) // want `slices\.Grow sized by an integer decoded from untrusted input`
}

func UnboundedReadFull(r io.Reader, b, buf []byte) error {
	n := binary.LittleEndian.Uint32(b)
	_, err := io.ReadFull(r, buf[:n]) // want `io\.ReadFull into a slice bounded by an untrusted decoded length`
	return err
}

// ViaReadFixed routes the untrusted length through the sanctioned
// bounded reader: that is the fix, no finding.
func ViaReadFixed(r io.Reader, b []byte, avail int64) ([]byte, error) {
	n := binary.LittleEndian.Uint64(b)
	return snapshot.ReadFixed(r, n, avail)
}

func Waived(b []byte) []int {
	n := binary.LittleEndian.Uint64(b)
	//shift:allow-unbounded(fixture: bounded to 0..7 by construction)
	return make([]int, n)
}

func BadWaiver(b []byte) []int {
	n := binary.LittleEndian.Uint64(b)
	/* want `shift:allow-unbounded waiver is missing its mandatory \(reason\)` */ //shift:allow-unbounded
	return make([]int, n)
}

// Untainted sizes are fine.
func Clean(n int) []int {
	return make([]int, n)
}
