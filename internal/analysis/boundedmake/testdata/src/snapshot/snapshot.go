// Package snapshot mirrors the repo's bounded-read helper so the
// fixture can exercise the sanctioned-channel exemption: the analyzer
// matches ReadFixed by package path suffix "snapshot".
package snapshot

import "io"

// ReadFixed reads exactly n bytes after validating n against the
// remaining input size.
func ReadFixed(r io.Reader, n uint64, avail int64) ([]byte, error) {
	if int64(n) > avail {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, int(n))
	_, err := io.ReadFull(r, buf)
	return buf, err
}
