package boundedmake_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/boundedmake"
)

func TestBoundedmake(t *testing.T) {
	antest.Run(t, "testdata", boundedmake.Analyzer, "a")
}
