// Package analysis aggregates the repo's project-invariant analyzers —
// the machine-checked form of the conventions DESIGN.md §14 states in
// prose — plus the curated stock passes cmd/shiftvet gates CI on.
//
// # Running locally
//
// Build and run the driver over the whole module:
//
//	go build -o bin/shiftvet ./cmd/shiftvet
//	./bin/shiftvet ./...          # exit 0 = clean; findings go to stderr
//	./bin/shiftvet -json ./...    # machine-readable diagnostics
//
// shiftvet re-executes itself through `go vet -vettool`, so it inherits
// the build cache: repeat runs re-analyze only changed packages, and
// analyzer facts (e.g. "this function can block") flow across package
// boundaries.
//
// # The custom suite
//
// See each package's doc for the invariant, its rationale, and examples:
//
//	lockfreepath  //shift:lockfree roots never reach locks/channels/map writes
//	boundedmake   untrusted decoded lengths are bounded before make
//	snaponce      one atomic.Pointer Load per operation; Store only in //shift:swap
//	ctxretry      sleeping loops honor context cancellation
//	sentinelcmp   sentinel errors compared with errors.Is, not ==
//
// # Writing a waiver
//
// A finding that is intentional — a startup-only lock, a length bounded
// by construction — is waived in place, never by editing the analyzer:
//
//	//shift:allow-lock(startup only; runs before the index escapes)
//	mu.Lock()
//
// The waiver goes on the finding's line or the line directly above;
// placed in a function's doc comment it covers the whole function. The
// name after allow- matches the analyzer's waiver kind (lock, unbounded,
// reload, store, sleep, sentinel) and the (reason) is mandatory — a
// bare waiver is itself reported. Roots and swap functions are marked
// the same way: //shift:lockfree and //shift:swap(reason) in the doc
// comment. Note the directive shape: no space after //, exactly like
// //go:noinline, so gofmt leaves it alone.
//
// # Stock passes
//
// atomic, copylock, lostcancel, unusedresult. nilness is deliberately
// absent: it requires go/ssa, which the toolchain's vendored
// golang.org/x/tools subset (the only copy available to an offline
// build) does not carry. lostcancel covers the context-hygiene ground
// here; revisit if go/ssa becomes vendorable.
package analysis
