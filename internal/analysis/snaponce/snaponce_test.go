package snaponce_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/snaponce"
)

func TestSnaponce(t *testing.T) {
	antest.Run(t, "testdata", snaponce.Analyzer, "a")
}
