// Package snaponce enforces the snapshot-pointer discipline that makes
// the concurrent serving stack linearizable (DESIGN.md §6, §10):
//
//   - One load per operation: a function that calls .Load() on the same
//     atomic.Pointer field more than once can observe two different
//     snapshots inside one logical operation — the torn-view hazard the
//     FindBatchTagged one-load rule exists to prevent. Deliberate
//     reloads (e.g. a compactor re-reading the head under the writer
//     lock) are waived with //shift:allow-reload(reason).
//
//   - Stores only in swap functions: .Store() on an atomic.Pointer is a
//     publication event; it may only appear in functions annotated
//     //shift:swap(reason) — the audited install/swap set — or on a line
//     waived with //shift:allow-store(reason).
//
// Only sync/atomic.Pointer[T] is in scope: the Bool/Int64/Uint64 counter
// types carry no snapshot identity and single-word flag semantics are
// exactly what they are for. Test files are exempt: a test observing a
// snapshot progress across installs reloads by design.
package snaponce

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/shiftcomment"
)

// Analyzer is the snaponce pass.
var Analyzer = &analysis.Analyzer{
	Name: "snaponce",
	Doc:  "flag repeated atomic.Pointer.Load in one function and Store outside //shift:swap functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		idx := shiftcomment.NewFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, idx, fd, fd.Body)
			// Each function literal is its own scope: a closure runs as
			// its own operation, so its loads are counted separately.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, idx, fd, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkFunc checks one function scope (a declaration body or a single
// function literal body, not descending into nested literals).
func checkFunc(pass *analysis.Pass, idx *shiftcomment.File, fd *ast.FuncDecl, body *ast.BlockStmt) {
	_, isSwap := shiftcomment.FuncDirective(fd, "swap")
	loads := make(map[string][]*ast.CallExpr)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Load":
			if len(call.Args) != 0 || !isAtomicPointer(pass, sel.X) {
				return true
			}
			key := refKey(pass, sel.X)
			if key == "" {
				return true
			}
			loads[key] = append(loads[key], call)
		case "Store":
			if len(call.Args) != 1 || !isAtomicPointer(pass, sel.X) {
				return true
			}
			if isSwap {
				return true
			}
			waived, missingReason, d := idx.Waived(fd, call.Pos(), "store")
			if waived {
				if missingReason {
					pass.Reportf(d.Pos, "shift:allow-store waiver is missing its mandatory (reason)")
				}
				return true
			}
			pass.Reportf(call.Pos(), "atomic.Pointer.Store outside a //shift:swap(reason) function: snapshot publication belongs in the audited install/swap set")
		}
		return true
	})
	for key, calls := range loads {
		if len(calls) < 2 {
			continue
		}
		for _, call := range calls[1:] {
			waived, missingReason, d := idx.Waived(fd, call.Pos(), "reload")
			if waived {
				if missingReason {
					pass.Reportf(d.Pos, "shift:allow-reload waiver is missing its mandatory (reason)")
				}
				continue
			}
			pass.Reportf(call.Pos(), "second Load of atomic.Pointer %s in one function: a reload can observe a different snapshot mid-operation (load once, use the copy)", key)
		}
	}
}

// isAtomicPointer reports whether expr's type is sync/atomic.Pointer[T]
// (or a pointer to one).
func isAtomicPointer(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// refKey names the loaded pointer well enough to detect "same field,
// same receiver": the chain of identifiers and field selections rooted
// at a resolvable object. Unresolvable shapes (call results, index
// expressions) return "" and are not tracked.
func refKey(pass *analysis.Pass, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
			return e.Name
		}
	case *ast.SelectorExpr:
		base := refKey(pass, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return refKey(pass, e.X)
	case *ast.StarExpr:
		return refKey(pass, e.X)
	}
	return ""
}
