package a

import "sync/atomic"

type box struct {
	p atomic.Pointer[int]
	q atomic.Pointer[int]
}

func DoubleLoad(b *box) int {
	x := b.p.Load()
	y := b.p.Load() // want `second Load of atomic\.Pointer b\.p in one function`
	return *x + *y
}

func SingleLoad(b *box) int { return *b.p.Load() }

// TwoFields loads two different pointers once each: no finding.
func TwoFields(b *box) int {
	return *b.p.Load() + *b.q.Load()
}

// TwoReceivers loads the same field off two different receivers: no
// finding.
func TwoReceivers(b1, b2 *box) int {
	return *b1.p.Load() + *b2.p.Load()
}

func WaivedReload(b *box) int {
	x := b.p.Load()
	//shift:allow-reload(fixture: deliberate re-read under the writer lock)
	y := b.p.Load()
	return *x + *y
}

func BadWaiver(b *box) int {
	x := b.p.Load()
	/* want `shift:allow-reload waiver is missing its mandatory \(reason\)` */ //shift:allow-reload
	y := b.p.Load()
	return *x + *y
}

func BadStore(b *box, v *int) {
	b.p.Store(v) // want `Store outside a //shift:swap\(reason\) function`
}

//shift:swap(fixture: the audited install path)
func GoodStore(b *box, v *int) {
	b.p.Store(v)
}

func WaivedStore(b *box, v *int) {
	//shift:allow-store(fixture: bench-only reset)
	b.p.Store(v)
}

// LitScope loads once in the function and once in a closure: separate
// operation scopes, no finding.
func LitScope(b *box) func() *int {
	_ = b.p.Load()
	return func() *int { return b.p.Load() }
}

// LitDouble reloads inside one closure: finding.
func LitDouble(b *box) func() int {
	return func() int {
		x := b.p.Load()
		y := b.p.Load() // want `second Load of atomic\.Pointer b\.p`
		return *x + *y
	}
}
