package shiftcomment_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/shiftcomment"
)

const src = `package p

//shift:lockfree
func Root() {
	//shift:allow-lock(startup only)
	work()
	work() // trailing prose, not a directive
	//shift:allow-lock
	work()
}

// Swap installs the new snapshot.
//shift:swap(writer publication under mu)
func Swap() {
	work()
}

//shift:allow-sleep(function-wide waiver)
func Sleepy() {
	work()
}

// prose mentioning shift:lockfree inside a sentence is not parsed
func Prose() {
	work()
}

func work() {}
`

func load(t *testing.T) (*token.FileSet, *ast.File, *shiftcomment.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, shiftcomment.NewFile(fset, f)
}

func fn(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

// calls returns the positions of the statements in fn's body.
func stmtPos(fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	for _, s := range fd.Body.List {
		out = append(out, s.Pos())
	}
	return out
}

func TestFuncDirectives(t *testing.T) {
	_, f, _ := load(t)
	if d, ok := shiftcomment.FuncDirective(fn(f, "Root"), "lockfree"); !ok || d.Reason != "" {
		t.Errorf("Root lockfree: got ok=%v reason=%q", ok, d.Reason)
	}
	if d, ok := shiftcomment.FuncDirective(fn(f, "Swap"), "swap"); !ok || d.Reason != "writer publication under mu" {
		t.Errorf("Swap swap: got ok=%v reason=%q", ok, d.Reason)
	}
	if _, ok := shiftcomment.FuncDirective(fn(f, "Prose"), "lockfree"); ok {
		t.Error("prose mentioning shift:lockfree must not parse as a directive")
	}
}

func TestStatementWaivers(t *testing.T) {
	_, f, idx := load(t)
	root := fn(f, "Root")
	pos := stmtPos(root)

	// First call: waived with reason by the line above.
	if waived, missing, d := idx.Waived(root, pos[0], "lock"); !waived || missing || d.Reason != "startup only" {
		t.Errorf("stmt 0: waived=%v missing=%v reason=%q", waived, missing, d.Reason)
	}
	// Second call: trailing prose is not a waiver.
	if waived, _, _ := idx.Waived(root, pos[1], "lock"); waived {
		t.Error("stmt 1: prose comment must not waive")
	}
	// Third call: waiver present but missing its mandatory reason.
	if waived, missing, _ := idx.Waived(root, pos[2], "lock"); !waived || !missing {
		t.Errorf("stmt 2: waived=%v missing=%v, want waived with missing reason", waived, missing)
	}
	// Wrong waiver name does not match.
	if waived, _, _ := idx.Waived(root, pos[0], "sleep"); waived {
		t.Error("allow-lock must not waive a sleep finding")
	}
}

func TestFunctionWideWaiver(t *testing.T) {
	_, f, idx := load(t)
	sleepy := fn(f, "Sleepy")
	if waived, missing, d := idx.Waived(sleepy, stmtPos(sleepy)[0], "sleep"); !waived || missing || d.Reason != "function-wide waiver" {
		t.Errorf("function-wide: waived=%v missing=%v reason=%q", waived, missing, d.Reason)
	}
}
