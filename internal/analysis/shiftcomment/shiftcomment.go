// Package shiftcomment parses the repo's //shift: source annotations.
//
// Two kinds of directive exist (DESIGN.md §14):
//
//   - Roots: //shift:lockfree and //shift:swap(reason) mark a function as
//     participating in an enforced invariant — the former as the root of a
//     lock-free call tree, the latter as a whitelisted snapshot-pointer
//     install/swap function. They belong in the function's doc comment.
//
//   - Waivers: //shift:allow-NAME(reason) suppresses one analyzer finding.
//     A waiver placed in a function's doc comment applies to the whole
//     function; placed at the end of a line, or on a line of its own
//     immediately above, it applies to that statement only. The reason is
//     mandatory: a waiver without one is itself reported, so every
//     suppression in the tree carries a written justification.
//
// The syntax is deliberately comment-directive shaped (like //go:noinline):
// no space after //, so gofmt leaves it alone and casual prose mentioning
// "shift:" is never parsed.
package shiftcomment

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directive is one parsed //shift: annotation.
type Directive struct {
	Name   string    // e.g. "lockfree", "allow-lock", "swap"
	Reason string    // text inside (...), "" if absent
	Pos    token.Pos // position of the comment
}

var directiveRE = regexp.MustCompile(`^//shift:([a-z0-9-]+)(?:\((.*)\))?\s*$`)

// parse returns the directive in a single comment, if any.
func parse(c *ast.Comment) (Directive, bool) {
	m := directiveRE.FindStringSubmatch(strings.TrimRight(c.Text, "\r\n"))
	if m == nil {
		return Directive{}, false
	}
	return Directive{Name: m[1], Reason: m[2], Pos: c.Pos()}, true
}

// File indexes every //shift: directive in one file: by line for
// statement-level waivers, and the raw list for doc-comment scanning.
type File struct {
	fset   *token.FileSet
	byLine map[int][]Directive
	All    []Directive
}

// NewFile scans f's comments.
func NewFile(fset *token.FileSet, f *ast.File) *File {
	idx := &File{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parse(c)
			if !ok {
				continue
			}
			idx.All = append(idx.All, d)
			line := fset.Position(c.Pos()).Line
			idx.byLine[line] = append(idx.byLine[line], d)
		}
	}
	return idx
}

// At returns directives attached to the source line containing pos: on the
// line itself or on a line of their own immediately above.
func (f *File) At(pos token.Pos, name string) (Directive, bool) {
	line := f.fset.Position(pos).Line
	for _, cand := range [2]int{line, line - 1} {
		for _, d := range f.byLine[cand] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// FuncDirective returns the named directive from fn's doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	if fn == nil || fn.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fn.Doc.List {
		if d, ok := parse(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Waived reports whether a finding at pos inside fn is waived by
// //shift:allow-NAME — either function-wide (doc comment) or on the
// statement's line. It also reports whether the waiver found was missing
// its mandatory reason.
func (f *File) Waived(fn *ast.FuncDecl, pos token.Pos, name string) (waived, missingReason bool, d Directive) {
	full := "allow-" + name
	if d, ok := FuncDirective(fn, full); ok {
		return true, d.Reason == "", d
	}
	if d, ok := f.At(pos, full); ok {
		return true, d.Reason == "", d
	}
	return false, false, Directive{}
}
