//go:build nommap || (!linux && !darwin)

package mapped

import (
	"io"
	"os"
)

// Supported reports whether this build maps files for real. This is the
// fallback build: files are read onto the heap behind the same API, so
// every mapped code path runs (and is tested) on platforms without mmap
// — only the zero-copy and page-cache wins are absent.
func Supported() bool { return false }

// mapFile reads the file onto the heap. Page-aligning the buffer is not
// required: views only need element-size alignment, which the allocator
// provides for large buffers, and View verifies it anyway.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmap(data []byte, real bool) {}
