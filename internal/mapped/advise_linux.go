//go:build linux && !nommap

package mapped

import "syscall"

// adviseWillNeed asks the kernel to read the span ahead; adviseDontNeed
// invites it to drop the span's clean pages from the page cache. Both are
// hints — errors are ignored beyond reporting, and correctness never
// depends on them (a dropped page simply refaults).
func adviseWillNeed(b []byte) error { return syscall.Madvise(b, syscall.MADV_WILLNEED) }

func adviseDontNeed(b []byte) error { return syscall.Madvise(b, syscall.MADV_DONTNEED) }

// OSFaults returns the process's cumulative minor and major page fault
// counts (figures use the deltas around a cold-shard probe).
func OSFaults() (minor, major int64) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	return ru.Minflt, ru.Majflt
}
