package mapped

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRegionFile writes n bytes where byte i is the low byte of i —
// recognisable content for view checks.
func writeRegionFile(t *testing.T, n int) string {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	path := filepath.Join(t.TempDir(), "region.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegionLifetimeAndPathRegistry(t *testing.T) {
	path := writeRegionFile(t, 3*PageSize)
	if PathInUse(path) {
		t.Fatal("path in use before any mapping")
	}
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3*PageSize || r.Refs() != 1 {
		t.Fatalf("Len=%d Refs=%d after Map", r.Len(), r.Refs())
	}
	if r.Mapped() != Supported() {
		t.Fatalf("Mapped()=%v with Supported()=%v", r.Mapped(), Supported())
	}
	if !PathInUse(path) {
		t.Fatal("mapped path not registered")
	}
	if got := r.Bytes()[PageSize+5]; got != byte((PageSize+5)%256) {
		t.Fatalf("byte %d is %d", PageSize+5, got)
	}

	// A second independent mapping keeps the path pinned until both die.
	r2, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	r.Retain()
	r.Release()
	r.Release() // r's count reaches zero
	if !PathInUse(path) {
		t.Fatal("path unregistered while a second region is live")
	}
	r2.Release()
	if PathInUse(path) {
		t.Fatal("path still registered after the last release")
	}
}

func TestMapRejectsEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(empty); err == nil {
		t.Error("mapped an empty file")
	}
	if _, err := Map(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("mapped a missing file")
	}
}

func TestViewAlignmentAndSize(t *testing.T) {
	buf := make([]byte, 64)
	for i := range buf {
		binary.LittleEndian.PutUint16(buf[i&^1:], uint16(i&^1))
	}
	v, err := View[uint64](buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 8 || v[1] != binary.LittleEndian.Uint64(buf[8:]) {
		t.Fatalf("view = %d elems, v[1] = %#x", len(v), v[1])
	}
	if _, err := View[uint64](buf[:60]); err == nil {
		t.Error("accepted a length that is not a whole number of elements")
	}
	if _, err := View[uint64](buf[1:57]); err == nil {
		t.Error("accepted a misaligned base")
	}
	if v, err := View[uint32](nil); err != nil || v != nil {
		t.Errorf("empty view = (%v, %v), want (nil, nil)", v, err)
	}
}

func TestResidencyBudgetAndHeat(t *testing.T) {
	path := writeRegionFile(t, 8*PageSize)
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	spans := make([]Span, 8)
	for i := range spans {
		spans[i] = Span{Off: int64(i) * PageSize, Len: PageSize}
	}
	// Budget for three spans; everything starts cold.
	res, err := NewResidency(r, spans, 3*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans() != 8 {
		t.Fatalf("Spans() = %d", res.Spans())
	}
	res.Touch(5, 10)
	res.Touch(6, 7)
	res.Touch(2, 3)
	res.Touch(0, 1)
	st := res.Stats()
	if st.Touches != 21 || st.ColdTouches != 21 {
		t.Fatalf("pre-plan stats %+v: every touch should be cold", st)
	}
	if n := res.Plan(); n != 3 {
		t.Fatalf("Plan admitted %d spans under a 3-span budget", n)
	}
	// The three hottest spans won the knapsack.
	for _, i := range []int{5, 6, 2} {
		if !res.Resident(i) {
			t.Errorf("hot span %d not resident", i)
		}
	}
	for _, i := range []int{0, 1, 3, 4, 7} {
		if res.Resident(i) {
			t.Errorf("cold span %d resident", i)
		}
	}
	res.Touch(5, 1)
	res.Touch(3, 1)
	st = res.Stats()
	if st.ColdTouches != 22 { // only the touch on span 3 landed cold
		t.Fatalf("ColdTouches = %d, want 22", st.ColdTouches)
	}
	if st.ResidentSpans != 3 || st.ColdSpans != 5 || st.ResidentBytes != 3*PageSize {
		t.Fatalf("stats %+v", st)
	}
	// Out-of-range and non-positive touches are ignored, not panics.
	res.Touch(-1, 5)
	res.Touch(99, 5)
	res.Touch(1, 0)
	if got := res.Stats().Touches; got != st.Touches {
		t.Fatalf("invalid touches counted: %d != %d", got, st.Touches)
	}
	if res.Resident(-1) || res.Resident(99) {
		t.Error("out-of-range spans reported resident")
	}

	// Unlimited budget admits everything; a heat shift re-tiers.
	all, err := NewResidency(r, spans, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := all.Plan(); n != 8 {
		t.Fatalf("unlimited Plan admitted %d of 8", n)
	}

	// A span outside the region is rejected up front.
	if _, err := NewResidency(r, []Span{{Off: 7 * PageSize, Len: 2 * PageSize}}, 0); err == nil {
		t.Error("accepted a span past the region end")
	}
	if _, err := NewResidency(nil, spans, 0); err == nil {
		t.Error("accepted a nil region")
	}
}

func TestResidencyReplanFollowsHeat(t *testing.T) {
	path := writeRegionFile(t, 4*PageSize)
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	spans := []Span{
		{Off: 0, Len: PageSize},
		{Off: PageSize, Len: PageSize},
		{Off: 2 * PageSize, Len: PageSize},
		{Off: 3 * PageSize, Len: PageSize},
	}
	res, err := NewResidency(r, spans, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	res.Plan() // no heat: span order decides, span 0 wins
	if !res.Resident(0) || res.Resident(3) {
		t.Fatal("cold-start plan did not admit the leading span")
	}
	res.Touch(3, 100)
	res.Plan()
	if res.Resident(0) || !res.Resident(3) {
		t.Fatal("re-plan did not follow the heat to span 3")
	}
	if got := res.Stats().Plans; got != 2 {
		t.Fatalf("Plans = %d, want 2", got)
	}
}

// TestMapRefusesConcurrentResize closes the stat→mmap TOCTOU window: a
// file whose size changes between the initial stat and the mapping must
// be refused, never returned as a region whose length disagrees with
// the bytes on disk (a shrink would turn later faults into SIGBUS).
func TestMapRefusesConcurrentResize(t *testing.T) {
	for _, dir := range []struct {
		name   string
		resize func(path string, t *testing.T)
	}{
		{"truncated", func(path string, t *testing.T) {
			if err := os.Truncate(path, PageSize); err != nil {
				t.Fatal(err)
			}
		}},
		{"grown", func(path string, t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(make([]byte, PageSize)); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	} {
		t.Run(dir.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "region.bin")
			if err := os.WriteFile(path, make([]byte, 3*PageSize), 0o644); err != nil {
				t.Fatal(err)
			}
			testHookBeforeMap = func(p string) { dir.resize(path, t) }
			defer func() { testHookBeforeMap = nil }()
			r, err := Map(path)
			if err == nil {
				r.Release()
				t.Fatal("Map returned a region over a concurrently-resized file")
			}
			if !strings.Contains(err.Error(), "changed size") {
				t.Fatalf("refusal does not name the race: %v", err)
			}
			// The path must not be left registered by the aborted map.
			if PathInUse(path) {
				t.Fatal("aborted Map left the path registered")
			}
			// And with the writer gone the same path maps cleanly.
			testHookBeforeMap = nil
			r, err = Map(path)
			if err != nil {
				t.Fatal(err)
			}
			r.Release()
		})
	}
}
