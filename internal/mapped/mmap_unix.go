//go:build (linux || darwin) && !nommap

package mapped

import (
	"os"
	"syscall"
)

// Supported reports whether this build maps files for real. The fallback
// build answers false and reads files onto the heap behind the same API.
func Supported() bool { return true }

// mapFile maps size bytes of f read-only and shared — shared, not
// private, so the pages stay clean page-cache pages the kernel can drop
// and refault at will, which is what lets the residency tiers work.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmap(data []byte, real bool) {
	if !real || data == nil {
		return
	}
	// The slice may have been re-derived; Munmap wants the original
	// mapping, which data still heads.
	_ = syscall.Munmap(data)
}
