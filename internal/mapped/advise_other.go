//go:build !linux || nommap

package mapped

// madvise is linux-only in this repository (darwin's MADV_WILLNEED exists
// but the residency experiments all run on linux); elsewhere the hints
// are no-ops and residency planning degrades to bookkeeping plus explicit
// page touches.
func adviseWillNeed(b []byte) error { return nil }

func adviseDontNeed(b []byte) error { return nil }

// OSFaults is unavailable off linux; callers treat zeros as "no counter".
func OSFaults() (minor, major int64) { return 0, 0 }
