package mapped

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the tiered residency manager: given a mapped region split
// into spans (the router's shards, whose key ranges double as paging
// boundaries), it keeps the hottest spans resident under a byte budget —
// madvise(WILLNEED) plus an explicit touch pass pins them into the page
// cache — and lets the rest stay cold, faulting in on demand. The
// selection is the same greedy knapsack the router already runs when it
// picks a backend per shard: order spans by observed heat, admit until
// the budget is spent. Queries report heat through Touch; Plan recomputes
// the resident set from the accumulated counters.

// Span is one residency unit: a byte range of the region.
type Span struct {
	Off int64
	Len int64
}

// heatCounter is padded to its own cache line so concurrent query waves
// bumping different shards' heat do not false-share.
type heatCounter struct {
	v atomic.Int64
	_ [56]byte
}

// Residency manages hot/cold tiers over one region.
type Residency struct {
	region *Region
	spans  []Span
	budget int64

	heat       []heatCounter
	coldTouch  atomic.Int64 // touches that landed on a non-resident span
	touches    atomic.Int64 // all touches
	mu         sync.Mutex   // guards resident/planned below
	resident   []atomic.Bool
	planned    int // spans admitted by the last Plan
	planBytes  int64
	planEpochs int64
}

// ResidencyStats is a point-in-time summary for /statusz and figures.
type ResidencyStats struct {
	MappedBytes   int64 `json:"mapped_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	ResidentSpans int   `json:"resident_spans"`
	ColdSpans     int   `json:"cold_spans"`
	ResidentBytes int64 `json:"resident_bytes"`
	Touches       int64 `json:"touches"`
	ColdTouches   int64 `json:"cold_touches"`
	Plans         int64 `json:"plans"`
}

// NewResidency validates the spans against the region and returns a
// manager with everything cold; call Plan (after some traffic, or
// immediately for a heat-less warm-up that admits spans in order) to
// establish the first resident set. budget ≤ 0 means unlimited.
func NewResidency(region *Region, spans []Span, budget int64) (*Residency, error) {
	if region == nil {
		return nil, fmt.Errorf("mapped: residency needs a region")
	}
	size := int64(region.Len())
	for i, s := range spans {
		if s.Off < 0 || s.Len < 0 || s.Off+s.Len > size {
			return nil, fmt.Errorf("mapped: span %d [%d,+%d) outside the %d-byte region", i, s.Off, s.Len, size)
		}
	}
	return &Residency{
		region:   region,
		spans:    append([]Span(nil), spans...),
		budget:   budget,
		heat:     make([]heatCounter, len(spans)),
		resident: make([]atomic.Bool, len(spans)),
	}, nil
}

// Spans returns the number of residency units.
func (m *Residency) Spans() int { return len(m.spans) }

// Resident reports whether span i was admitted by the last Plan.
func (m *Residency) Resident(i int) bool {
	if i < 0 || i >= len(m.resident) {
		return false
	}
	return m.resident[i].Load()
}

// Touch records n queries landing on span i. Cold touches are counted
// separately — they are the first-touch faults the cost model prices and
// /statusz reports.
func (m *Residency) Touch(i int, n int64) {
	if i < 0 || i >= len(m.heat) || n <= 0 {
		return
	}
	m.heat[i].v.Add(n)
	m.touches.Add(n)
	if !m.resident[i].Load() {
		m.coldTouch.Add(n)
	}
}

// Plan recomputes the resident set: spans ordered by accumulated heat
// (ties broken by span order, so a cold start admits the leading spans),
// admitted greedily until the byte budget is spent. Newly resident spans
// are advised WILLNEED and touched page by page so their pages are
// actually faulted in before the next query wave; newly cold spans are
// advised DONTNEED (a hint — their pages drop lazily). Returns the
// number of resident spans.
func (m *Residency) Plan() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	order := make([]int, len(m.spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.heat[order[a]].v.Load() > m.heat[order[b]].v.Load()
	})
	var spent int64
	admitted := make([]bool, len(m.spans))
	count := 0
	for _, i := range order {
		l := m.spans[i].Len
		if m.budget > 0 && spent+l > m.budget {
			continue
		}
		spent += l
		admitted[i] = true
		count++
	}
	data := m.region.Bytes()
	for i := range m.spans {
		was := m.resident[i].Load()
		switch {
		case admitted[i] && !was:
			m.resident[i].Store(true)
			b := pageSpan(data, m.spans[i], true)
			_ = adviseWillNeed(b)
			touchPages(b)
		case !admitted[i] && was:
			m.resident[i].Store(false)
			_ = adviseDontNeed(pageSpan(data, m.spans[i], false))
		}
	}
	m.planned = count
	m.planBytes = spent
	m.planEpochs++
	return count
}

// Stats returns a snapshot of the manager's counters.
func (m *Residency) Stats() ResidencyStats {
	m.mu.Lock()
	planned, bytes, plans := m.planned, m.planBytes, m.planEpochs
	m.mu.Unlock()
	return ResidencyStats{
		MappedBytes:   int64(m.region.Len()),
		BudgetBytes:   m.budget,
		ResidentSpans: planned,
		ColdSpans:     len(m.spans) - planned,
		ResidentBytes: bytes,
		Touches:       m.touches.Load(),
		ColdTouches:   m.coldTouch.Load(),
		Plans:         plans,
	}
}

// pageSpan rounds a span to page boundaries: outward for WILLNEED (the
// edges belong to someone, prefetching them is free) and inward for
// DONTNEED (dropping a page a neighbouring resident span shares would
// make that span fault). The result stays inside data.
func pageSpan(data []byte, s Span, outward bool) []byte {
	lo, hi := s.Off, s.Off+s.Len
	if outward {
		lo -= lo % PageSize
		if r := hi % PageSize; r != 0 {
			hi += PageSize - r
		}
		if hi > int64(len(data)) {
			hi = int64(len(data))
		}
	} else {
		if r := lo % PageSize; r != 0 {
			lo += PageSize - r
		}
		hi -= hi % PageSize
	}
	if lo >= hi {
		return nil
	}
	return data[lo:hi]
}

// touchPages reads one byte per page so the kernel faults the span in
// now, on the plan's clock, instead of on the first query's.
func touchPages(b []byte) {
	var sink byte
	for off := 0; off < len(b); off += PageSize {
		sink ^= b[off]
	}
	_ = sink
}
