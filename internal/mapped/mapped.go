// Package mapped provides the memory-mapped region type behind zero-copy
// snapshot serving (DESIGN.md §12): a refcounted read-only byte region
// backed by mmap where the platform supports it and by a plain heap read
// where it does not, typed in-place views over the region's bytes, and a
// tiered residency manager that decides — under a memory budget — which
// spans of the region are pinned hot and which fault in on demand.
//
// # Lifetime protocol
//
// A Region starts with one reference, owned by whoever mapped it. Every
// long-lived structure that aliases the region's bytes (a mapped
// core.Table, a mapped router) takes its own reference with Retain and
// arranges Release when it becomes unreachable (runtime.AddCleanup). The
// munmap happens only when the count reaches zero, so a snapshot swap
// cannot yank pages from under an in-flight query wave: readers reach
// mapped bytes only through a table they hold, the table holds its
// reference until collected, and collection cannot precede the last read.
//
// A global registry tracks which file paths currently back live regions
// (PathInUse), so the replica's artifact GC can skip files a served table
// still maps — deleting a mapped file would not free the pages (POSIX
// keeps them until munmap) but would break the next warm restart and,
// on some filesystems, strand unreclaimable space.
//
// # Platform matrix
//
// linux and darwin get real mmap through the syscall package; everything
// else — and any platform built with -tags nommap — gets a fallback that
// reads the file into an anonymous heap buffer behind the same API, so
// the mapped code paths stay exercised (and correct) everywhere while
// only the supported platforms get the zero-copy and page-cache wins.
// Supported reports which build is active.
package mapped

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"unsafe"
)

// PageSize is the alignment unit of the v2 snapshot layout. It is fixed
// at 4 KiB — the layout constant — independent of the runtime page size,
// which is 4 KiB on every platform this repository targets.
const PageSize = 4096

// Region is a refcounted read-only byte region over a file.
type Region struct {
	data []byte
	path string // absolute, "" for anonymous regions
	real bool   // true when backed by mmap, false for the heap fallback
	refs atomic.Int64
}

// Map opens path and maps it read-only (or, in the fallback build, reads
// it onto the heap). The returned region holds one reference, owned by
// the caller; Release it when done.
func Map(path string) (*Region, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = filepath.Clean(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mapped: opening %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mapped: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		return nil, fmt.Errorf("mapped: %s is empty", path)
	}
	if st.Size() > int64(maxInt) {
		return nil, fmt.Errorf("mapped: %s is %d bytes, larger than the address space", path, st.Size())
	}
	if testHookBeforeMap != nil {
		testHookBeforeMap(path)
	}
	data, real, err := mapFile(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("mapped: mapping %s: %w", path, err)
	}
	// Re-stat through the same still-open fd and refuse if the size moved
	// between the stat and the mapping (a writer truncating or appending
	// concurrently). Without this check a shrunk file turns later page
	// faults into SIGBUS — a crash the verifier can never catch, because
	// every byte currently mapped still checksums clean.
	if st2, err := f.Stat(); err != nil || st2.Size() != st.Size() {
		unmap(data, real)
		if err != nil {
			return nil, fmt.Errorf("mapped: re-stat %s: %w", path, err)
		}
		return nil, fmt.Errorf("mapped: %s changed size from %d to %d bytes while being mapped (concurrent writer)",
			path, st.Size(), st2.Size())
	}
	r := &Region{data: data, path: abs, real: real}
	r.refs.Store(1)
	registerPath(abs)
	return r, nil
}

// Bytes returns the region's contents. The slice aliases the mapping; it
// must not be written to and must not outlive the last reference.
func (r *Region) Bytes() []byte { return r.data }

// Len returns the region size in bytes.
func (r *Region) Len() int { return len(r.data) }

// Path returns the absolute path of the backing file ("" when anonymous).
func (r *Region) Path() string { return r.path }

// Mapped reports whether the region is a real mmap (false in the heap
// fallback build, where the bytes are an ordinary allocation).
func (r *Region) Mapped() bool { return r.real }

// Retain adds a reference. Every Retain must be paired with a Release.
func (r *Region) Retain() {
	if r.refs.Add(1) <= 1 {
		panic("mapped: Retain on a released region")
	}
}

// Release drops one reference; the last one unmaps the region and clears
// its path registration. Releasing more times than retained panics —
// that is a lifetime bug, not a recoverable condition.
func (r *Region) Release() {
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("mapped: Release without a matching reference")
	}
	unregisterPath(r.path)
	data := r.data
	r.data = nil
	unmap(data, r.real)
}

// Refs returns the current reference count (tests and diagnostics).
func (r *Region) Refs() int64 { return r.refs.Load() }

// pathRegistry counts live regions per backing file, so artifact GC can
// ask PathInUse before deleting a snapshot file.
var (
	pathMu       sync.Mutex
	pathRegistry = map[string]int{}
)

func registerPath(p string) {
	if p == "" {
		return
	}
	pathMu.Lock()
	pathRegistry[p]++
	pathMu.Unlock()
}

func unregisterPath(p string) {
	if p == "" {
		return
	}
	pathMu.Lock()
	if pathRegistry[p]--; pathRegistry[p] <= 0 {
		delete(pathRegistry, p)
	}
	pathMu.Unlock()
}

// PathInUse reports whether any live region currently maps path. The
// replica GC consults it before unlinking an artifact: a served table
// may still be reading those pages.
func PathInUse(path string) bool {
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = filepath.Clean(path)
	}
	pathMu.Lock()
	n := pathRegistry[abs]
	pathMu.Unlock()
	return n > 0
}

const maxInt = int(^uint(0) >> 1)

// testHookBeforeMap, when set by a test, runs between the size stat and
// the mapping — the window the re-stat check closes.
var testHookBeforeMap func(path string)

// hostLittleEndian reports the byte order views require: the v2 layout
// stores all integers little-endian, and an in-place view is only a
// reinterpretation — on a big-endian host every multi-byte read would be
// byte-swapped, so View refuses and callers fall back to the heap path.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// View reinterprets b in place as a slice of T: no copy, no allocation.
// It requires b's length to be a multiple of T's size, b's base address
// to be aligned for T, and a little-endian host; any violation returns an
// error so callers can fall back to a copying read instead of serving
// garbage.
func View[T ~int8 | ~int16 | ~int32 | ~int64 | ~uint16 | ~uint32 | ~uint64](b []byte) ([]T, error) {
	var zero T
	size := int(unsafe.Sizeof(zero))
	if !hostLittleEndian {
		return nil, fmt.Errorf("mapped: in-place views need a little-endian host")
	}
	if len(b)%size != 0 {
		return nil, fmt.Errorf("mapped: %d bytes is not a whole number of %d-byte elements", len(b), size)
	}
	if len(b) == 0 {
		return nil, nil
	}
	if addr := uintptr(unsafe.Pointer(&b[0])); addr%uintptr(size) != 0 {
		return nil, fmt.Errorf("mapped: view base %#x is not %d-byte aligned", addr, size)
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/size), nil
}
