package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kv"
)

// This file is the build-throughput experiment (DESIGN.md §8): the
// Shift-Table construction pipeline measured across worker counts — the
// build-side twin of the batched-query sweep. The paper treats
// construction as a one-off O(N) pass (§3.3); since the concurrent
// compactor, the hybrid router and the RMI tuner all rebuild layers on the
// serving path, ns-per-key-vs-cores is now a serving-side number too.

// BuildSweepConfig parameterises RunBuildSweep.
type BuildSweepConfig struct {
	// N is keys per dataset (0 = 2M).
	N int
	// Reps per measurement; best-of is reported (0 = 3).
	Reps int
	// Seed for datasets.
	Seed int64
	// Workers counts to sweep (nil = 1, 2, 4, GOMAXPROCS deduplicated,
	// ascending).
	Workers []int
	// Specs to run (nil = face64, logn64).
	Specs []dataset.Spec
}

// BuildPoint is one (dataset, mode, workers) measurement.
type BuildPoint struct {
	Dataset  string  `json:"dataset"`
	Mode     string  `json:"mode"`
	Workers  int     `json:"workers"`
	BuildMs  float64 `json:"build_ms"`
	NsPerKey float64 `json:"ns_per_key"`
	// Speedup is serial build time over this point's build time (workers=1
	// of the same dataset+mode is the baseline).
	Speedup float64 `json:"speedup"`
}

// BuildSweepResult is the full sweep plus the environment facts a reader
// needs to interpret it — on a 1-core container every worker count
// measures the serial fallback.
type BuildSweepResult struct {
	N          int          `json:"n"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Points     []BuildPoint `json:"points"`
}

// DefaultBuildWorkers is the 1/2/4/GOMAXPROCS ladder, deduplicated and
// ascending.
func DefaultBuildWorkers() []int {
	ws := []int{1, 2, 4}
	gmp := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	var out []int
	for _, w := range append(ws, gmp) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort; list is ~4 long
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RunBuildSweep measures build time per worker count, both modes, every
// dataset. Every parallel-built table is validated against lower-bound
// reference ranks before its time is reported, so the sweep can never
// silently measure a broken build.
func RunBuildSweep(cfg BuildSweepConfig) (*BuildSweepResult, error) {
	if cfg.N == 0 {
		cfg.N = 2_000_000
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	if cfg.Workers == nil {
		cfg.Workers = DefaultBuildWorkers()
	}
	if cfg.Specs == nil {
		cfg.Specs = []dataset.Spec{
			{Name: dataset.Face, Bits: 64},
			{Name: dataset.LogN, Bits: 64},
		}
	}
	res := &BuildSweepResult{
		N:          cfg.N,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, spec := range cfg.Specs {
		keys64, err := dataset.Generate(spec.Name, spec.Bits, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var pts []BuildPoint
		if spec.Bits == 32 {
			pts, err = buildSweepRow(dataset.U32(keys64), spec.String(), cfg)
		} else {
			pts, err = buildSweepRow(keys64, spec.String(), cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", spec, err)
		}
		res.Points = append(res.Points, pts...)
	}
	return res, nil
}

func buildSweepRow[K kv.Key](keys []K, ds string, cfg BuildSweepConfig) ([]BuildPoint, error) {
	model := cdfmodel.NewInterpolation(keys)
	var out []BuildPoint
	for _, mode := range []core.Mode{core.ModeRange, core.ModeMidpoint} {
		var serialMs float64
		for _, workers := range cfg.Workers {
			best := 0.0
			var tab *core.Table[K]
			for r := 0; r < cfg.Reps; r++ {
				start := time.Now()
				t, err := core.BuildParallel(keys, model, core.Config{Mode: mode}, workers)
				ms := float64(time.Since(start).Nanoseconds()) / 1e6
				if err != nil {
					return nil, err
				}
				if best == 0 || ms < best {
					best = ms
					tab = t
				}
			}
			if err := validateBuild(tab, keys); err != nil {
				return nil, fmt.Errorf("%s/%v workers=%d: %w", ds, mode, workers, err)
			}
			if workers == cfg.Workers[0] {
				serialMs = best
			}
			out = append(out, BuildPoint{
				Dataset:  ds,
				Mode:     mode.String(),
				Workers:  workers,
				BuildMs:  best,
				NsPerKey: best * 1e6 / float64(len(keys)),
				Speedup:  serialMs / best,
			})
		}
	}
	return out, nil
}

// validateBuild spot-checks a built table against the lower-bound oracle
// on a strided sample of indexed keys and their neighbours.
func validateBuild[K kv.Key](t *core.Table[K], keys []K) error {
	stride := len(keys)/512 + 1
	for i := 0; i < len(keys); i += stride {
		q := keys[i]
		if got, want := t.Find(q), kv.LowerBound(keys, q); got != want {
			return fmt.Errorf("bench: built table Find(%v) = %d, want %d", q, got, want)
		}
		if got, want := t.Find(q+1), kv.LowerBound(keys, q+1); got != want {
			return fmt.Errorf("bench: built table Find(%v) = %d, want %d", q+1, got, want)
		}
	}
	return nil
}

// WriteJSON emits the sweep in the BENCH_build.json shape the CI smoke
// and EXPERIMENTS.md reference.
func (r *BuildSweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Grid renders the sweep through the shared CSV/markdown emitter.
func (r *BuildSweepResult) Grid() *Grid {
	g := NewGrid("dataset", "mode", "workers", "build_ms", "ns_per_key", "speedup")
	verbs := []string{"%s", "%s", "%d", "%.1f", "%.2f", "%.2f"}
	for _, p := range r.Points {
		g.Rowf(verbs, p.Dataset, p.Mode, p.Workers, p.BuildMs, p.NsPerKey, p.Speedup)
	}
	return g
}
