package bench

import (
	"fmt"
	"io"
	"strings"
)

// Grid is a labelled results table: one header and uniform string rows.
// It is the single emission path behind the cmd front-ends — cmd/figures
// renders grids as CSV and cmd/report as markdown — replacing the
// per-figure fmt loops both commands used to duplicate.
type Grid struct {
	Header []string
	Rows   [][]string
}

// NewGrid starts a grid with the given column header.
func NewGrid(header ...string) *Grid {
	return &Grid{Header: header}
}

// Row appends one row; short rows are padded with empty cells so every
// renderer sees a rectangle.
func (g *Grid) Row(cells ...string) {
	for len(cells) < len(g.Header) {
		cells = append(cells, "")
	}
	g.Rows = append(g.Rows, cells)
}

// Rowf appends one row of formatted cells: each argument is rendered with
// its paired verb ("%d", "%.1f", …). Saves the call sites from sprintf
// boilerplate when a figure's columns have uniform formats.
func (g *Grid) Rowf(verbs []string, args ...any) {
	cells := make([]string, len(args))
	for i, a := range args {
		verb := "%v"
		if i < len(verbs) && verbs[i] != "" {
			verb = verbs[i]
		}
		cells[i] = fmt.Sprintf(verb, a)
	}
	g.Row(cells...)
}

// WriteCSV renders the grid as comma-separated values, one header line
// then one line per row.
func (g *Grid) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(g.Header, ","))
	for _, row := range g.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// CSV renders the grid as a CSV string.
func (g *Grid) CSV() string {
	var b strings.Builder
	g.WriteCSV(&b)
	return b.String()
}

// WriteMarkdown renders the grid as a GitHub-flavoured markdown table.
func (g *Grid) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(g.Header, " | "))
	fmt.Fprint(w, "|")
	for range g.Header {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, row := range g.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
}
