package bench

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestPaperTable2Complete(t *testing.T) {
	if len(PaperTable2) != 14 {
		t.Fatalf("paper table has %d datasets, want 14", len(PaperTable2))
	}
	methods := []string{"ART", "FAST", "RBS", "B+tree", "BS", "TIP", "IS", "IM", "IM+ST", "RMI", "RS", "RS+ST"}
	for _, spec := range dataset.Table2 {
		row, ok := PaperTable2[spec.String()]
		if !ok {
			t.Fatalf("paper table missing dataset %s", spec)
		}
		for _, m := range methods {
			if _, ok := row[m]; !ok {
				t.Errorf("%s: paper table missing method %s", spec, m)
			}
		}
	}
}

func TestPaperSpeedupOverRMI(t *testing.T) {
	// wiki64: 172 / 94.2 ≈ 1.83.
	got := PaperSpeedupOverRMI("wiki64")
	if got < 1.82 || got > 1.84 {
		t.Errorf("wiki64 paper speedup = %.3f, want ≈1.83", got)
	}
	if PaperSpeedupOverRMI("nope") != 0 {
		t.Error("unknown dataset should yield 0")
	}
	// The headline claim: 1.5–2.1x on every real-world dataset.
	for _, ds := range PaperRealWorld {
		s := PaperSpeedupOverRMI(ds)
		if s < 1.5 || s > 2.1 {
			t.Errorf("%s: paper speedup %.2f outside the 1.5-2x claim", ds, s)
		}
	}
}

func TestCheckTable2Shape(t *testing.T) {
	// A synthetic result where the claims hold.
	res := &Table2Result{
		Methods: []string{"IM", "IM+ST", "RMI", "BS"},
		Rows: []Table2Row{
			{
				Spec: dataset.Spec{Name: dataset.Wiki, Bits: 64},
				Cells: map[string]Cell{
					"IM": {Ns: 1000}, "IM+ST": {Ns: 100}, "RMI": {Ns: 180}, "BS": {Ns: 600},
				},
			},
			{
				Spec: dataset.Spec{Name: dataset.UDen, Bits: 64},
				Cells: map[string]Cell{
					"IM": {Ns: 20}, "IM+ST": {Ns: 35}, "RMI": {Ns: 25}, "BS": {Ns: 600},
				},
			},
		},
	}
	checks := CheckTable2Shape(res)
	if len(checks) != 4 { // rmi+im+bs for wiki64, uden rule for uden64
		t.Fatalf("got %d checks, want 4: %+v", len(checks), checks)
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("check %s should hold: %+v", c.ID, c)
		}
		if c.Claim == "" || c.Ours == "" {
			t.Errorf("check %s missing fields", c.ID)
		}
	}
	// Flip the wiki row so every claim fails.
	res.Rows[0].Cells["IM+ST"] = Cell{Ns: 5000}
	for _, c := range CheckTable2Shape(res) {
		if strings.HasPrefix(c.ID, "T2-uden") {
			continue
		}
		if c.Holds {
			t.Errorf("check %s should fail after flip", c.ID)
		}
	}
	// N/A cells are skipped.
	res.Rows[0].Cells["RMI"] = Cell{NAReason: "x"}
	for _, c := range CheckTable2Shape(res) {
		if c.ID == "T2-rmi-wiki64" {
			t.Error("N/A RMI cell should produce no check")
		}
	}
}
