// Package bench is the harness that regenerates the paper's evaluation:
// Table 2 and Figures 2, 3, 6, 7, 8 and 9 (see DESIGN.md §3 for the
// experiment index). It builds every backend over the SOSD-style datasets,
// measures lookup latency and build time, and replays instrumented access
// traces through the cache simulator for the miss-count figures.
//
// The backend set is not wired here: the harness enumerates the
// declarative registry of internal/index (DESIGN.md §7) and probes
// capability interfaces (Tracer, Log2Errer) where a figure needs them, so
// adding a backend to the registry adds it to Table 2, Fig. 7 and the
// conformance suite with no harness change.
package bench
