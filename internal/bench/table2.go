package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
)

// Cell is one Table 2 measurement.
type Cell struct {
	Ns       float64
	NAReason string // non-empty means N/A, as in the paper's table
	Size     int
	BuildMs  float64
}

// NA reports whether the cell is not applicable.
func (c Cell) NA() bool { return c.NAReason != "" }

// Table2Row is one dataset's measurements across methods.
type Table2Row struct {
	Spec  dataset.Spec
	Cells map[string]Cell
}

// Table2Result holds the full reproduction of the paper's Table 2.
type Table2Result struct {
	N       int
	Queries int
	Methods []string
	Rows    []Table2Row
}

// Table2Config controls the Table 2 run.
type Table2Config struct {
	N        int // keys per dataset
	Queries  int
	Reps     int
	Seed     int64
	Datasets []dataset.Spec // nil means the paper's fourteen
	Methods  []string       // nil means all
}

func (c *Table2Config) defaults() {
	if c.N == 0 {
		c.N = 2_000_000
	}
	if c.Queries == 0 {
		c.Queries = 200_000
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Datasets == nil {
		c.Datasets = dataset.Table2
	}
}

// RunTable2 regenerates the paper's Table 2 (lookup nanoseconds per method
// per dataset).
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	cfg.defaults()
	res := &Table2Result{N: cfg.N, Queries: cfg.Queries}
	for _, name := range index.Names[uint64]() {
		if cfg.Methods != nil && !contains(cfg.Methods, name) {
			continue
		}
		res.Methods = append(res.Methods, name)
	}
	for _, spec := range cfg.Datasets {
		keys64, err := dataset.Generate(spec.Name, spec.Bits, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var row Table2Row
		row.Spec = spec
		if spec.Bits == 32 {
			row.Cells, err = runRow(dataset.U32(keys64), cfg)
		} else {
			row.Cells, err = runRow(keys64, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", spec, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runRow measures every selected registry backend over one dataset.
func runRow[K kv.Key](keys []K, cfg Table2Config) (map[string]Cell, error) {
	w := NewWorkload(keys, cfg.Queries, cfg.Seed+1)
	cells := make(map[string]Cell)
	for _, be := range index.Registry[K]() {
		if cfg.Methods != nil && !contains(cfg.Methods, be.Name) {
			continue
		}
		if reason := be.Applicable(keys); reason != "" {
			cells[be.Name] = Cell{NAReason: reason}
			continue
		}
		var ix index.Index[K]
		buildMs, err := MeasureBuild(func() error {
			var err error
			ix, err = be.Build(keys)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", be.Name, err)
		}
		ns, err := w.Measure(ix.Find, cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("measuring %s: %w", be.Name, err)
		}
		cells[be.Name] = Cell{Ns: ns, Size: ix.SizeBytes(), BuildMs: buildMs}
	}
	return cells, nil
}

// Format renders the result as an aligned text table in the paper's layout
// (datasets as rows, methods as columns, ns per lookup).
func (r *Table2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 reproduction: lookup time (ns), N=%d keys, %d queries of indexed keys\n", r.N, r.Queries)
	fmt.Fprintf(&b, "%-8s", "dataset")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "%9s", m)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s", row.Spec.String())
		for _, m := range r.Methods {
			c := row.Cells[m]
			if c.NA() {
				fmt.Fprintf(&b, "%9s", "N/A")
			} else {
				fmt.Fprintf(&b, "%9.1f", c.Ns)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the result as comma-separated values (via the shared Grid
// emitter; the byte format is unchanged).
func (r *Table2Result) CSV() string {
	return r.Grid(func(_, _ string, c Cell) string {
		if c.NA() {
			return "NA"
		}
		return fmt.Sprintf("%.1f", c.Ns)
	}).CSV()
}

// Grid lays the result out over the registry column order with a per-cell
// formatter, for the shared CSV/markdown emitters (cmd/figures and
// cmd/report render the same grid differently).
func (r *Table2Result) Grid(cell func(ds, method string, c Cell) string) *Grid {
	g := NewGrid(append([]string{"dataset"}, r.Methods...)...)
	for _, row := range r.Rows {
		ds := row.Spec.String()
		cells := []string{ds}
		for _, m := range r.Methods {
			cells = append(cells, cell(ds, m, row.Cells[m]))
		}
		g.Row(cells...)
	}
	return g
}

// Winner returns the fastest method for a row and its margin over the
// runner-up, for the EXPERIMENTS.md shape checks.
func (row Table2Row) Winner() (name string, ns float64, margin float64) {
	type entry struct {
		name string
		ns   float64
	}
	var entries []entry
	for m, c := range row.Cells {
		if !c.NA() {
			entries = append(entries, entry{m, c.Ns})
		}
	}
	if len(entries) == 0 {
		return "", 0, 0
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ns < entries[j].ns })
	if len(entries) == 1 {
		return entries[0].name, entries[0].ns, 1
	}
	return entries[0].name, entries[0].ns, entries[1].ns / entries[0].ns
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
