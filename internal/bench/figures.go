package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
)

// ---- Figure 3: CDF micro-structure ----

// Fig3Series is the CDF of one dataset at macro scale plus a zoomed
// sub-range, the visualisation behind the paper's §2.4 argument.
type Fig3Series struct {
	Spec dataset.Spec
	// Macro[i] = (key, position) downsampled over the whole CDF.
	MacroKeys []uint64
	MacroPos  []int
	// Zoom covers the middle 1% of positions at full resolution
	// (downsampled to the same point budget).
	ZoomKeys []uint64
	ZoomPos  []int
}

// RunFig3 samples the CDFs of the paper's Figure 3 quadrants (uniform vs
// Facebook, lognormal vs OSMC).
func RunFig3(n, points int, seed int64) ([]Fig3Series, error) {
	if points < 2 {
		points = 2
	}
	var out []Fig3Series
	for _, spec := range []dataset.Spec{
		{Name: dataset.UDen, Bits: 64},
		{Name: dataset.Face, Bits: 64},
		{Name: dataset.LogN, Bits: 64},
		{Name: dataset.Osmc, Bits: 64},
	} {
		keys, err := dataset.Generate(spec.Name, spec.Bits, n, seed)
		if err != nil {
			return nil, err
		}
		s := Fig3Series{Spec: spec}
		step := (len(keys) - 1) / (points - 1)
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(keys); i += step {
			s.MacroKeys = append(s.MacroKeys, keys[i])
			s.MacroPos = append(s.MacroPos, i)
		}
		zoomLo := len(keys) / 2
		zoomHi := zoomLo + len(keys)/100 + 2
		if zoomHi > len(keys) {
			zoomHi = len(keys)
		}
		zstep := (zoomHi - zoomLo) / points
		if zstep < 1 {
			zstep = 1
		}
		for i := zoomLo; i < zoomHi; i += zstep {
			s.ZoomKeys = append(s.ZoomKeys, keys[i])
			s.ZoomPos = append(s.ZoomPos, i)
		}
		out = append(out, s)
	}
	return out, nil
}

// ---- Figure 6: error correction on OSMC ----

// Fig6Result carries the per-position error series of a plain linear model
// and the same model corrected by a Shift-Table, plus the averages quoted
// in §3.6.
type Fig6Result struct {
	N            int
	Positions    []int
	ModelErr     []int
	CorrectedErr []int
	AvgModel     float64
	AvgCorrected float64
}

// RunFig6 reproduces Fig. 6: a linear interpolation model on osmc64,
// corrected by a full Shift-Table layer.
func RunFig6(n, points int, seed int64) (*Fig6Result, error) {
	keys, err := dataset.Generate(dataset.Osmc, 64, n, seed)
	if err != nil {
		return nil, err
	}
	model := cdfmodel.NewLinear(keys)
	tab, err := core.Build(keys, model, core.Config{Mode: core.ModeRange})
	if err != nil {
		return nil, err
	}
	before, after := core.DriftSeries(tab)
	res := &Fig6Result{N: n}
	step := len(before) / points
	if step < 1 {
		step = 1
	}
	var sb, sa float64
	for i := range before {
		sb += float64(before[i])
		sa += float64(after[i])
		if i%step == 0 {
			res.Positions = append(res.Positions, i)
			res.ModelErr = append(res.ModelErr, before[i])
			res.CorrectedErr = append(res.CorrectedErr, after[i])
		}
	}
	res.AvgModel = sb / float64(len(before))
	res.AvgCorrected = sa / float64(len(after))
	return res, nil
}

// ---- Figure 7: build times ----

// Fig7Row is the average and standard deviation of one method's build time
// across datasets.
type Fig7Row struct {
	Method  string
	MeanMs  float64
	StdevMs float64
}

// RunFig7 measures index build times averaged over the Table 2 datasets
// (Fig. 7). Only methods that actually build something are included.
func RunFig7(n int, seed int64, specs []dataset.Spec) ([]Fig7Row, error) {
	if specs == nil {
		specs = dataset.Table2
	}
	methodNames := []string{"ART", "B+tree", "FAST", "RBS", "RMI", "RS", "RS+ST", "IM+ST", "PGM"}
	samples := make(map[string][]float64)
	for _, spec := range specs {
		keys64, err := dataset.Generate(spec.Name, spec.Bits, n, seed)
		if err != nil {
			return nil, err
		}
		var rowErr error
		if spec.Bits == 32 {
			rowErr = buildRow(dataset.U32(keys64), methodNames, samples)
		} else {
			rowErr = buildRow(keys64, methodNames, samples)
		}
		if rowErr != nil {
			return nil, fmt.Errorf("dataset %s: %w", spec, rowErr)
		}
	}
	var out []Fig7Row
	for _, name := range methodNames {
		times := samples[name]
		if len(times) == 0 {
			continue
		}
		var mean float64
		for _, t := range times {
			mean += t
		}
		mean /= float64(len(times))
		var vr float64
		for _, t := range times {
			vr += (t - mean) * (t - mean)
		}
		out = append(out, Fig7Row{Method: name, MeanMs: mean, StdevMs: math.Sqrt(vr / float64(len(times)))})
	}
	return out, nil
}

func buildRow[K interface{ ~uint32 | ~uint64 }](keys []K, names []string, samples map[string][]float64) error {
	for _, be := range index.Registry[K]() {
		if !contains(names, be.Name) {
			continue
		}
		if be.Applicable(keys) != "" {
			continue
		}
		ms, err := MeasureBuild(func() error {
			_, err := be.Build(keys)
			return err
		})
		if err != nil {
			return fmt.Errorf("building %s: %w", be.Name, err)
		}
		samples[be.Name] = append(samples[be.Name], ms)
	}
	return nil
}

// FormatFig7 renders the build-time table.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Fig. 7 reproduction: index build times (ms, mean ± stdev across datasets)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10.1f ± %.1f\n", r.Method, r.MeanMs, r.StdevMs)
	}
	return b.String()
}
