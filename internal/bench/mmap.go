package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/mapped"
	"repro/internal/memsim"
	"repro/internal/router"
)

// This file is the mapped-snapshot experiment (DESIGN.md §12): how fast
// does a restart get back to serving when the snapshot is mapped in
// place instead of streamed onto the heap, what does the first touch of
// a cold shard cost, and what does a residency budget trade away. Every
// mapped index is probe-verified against its cold-built twin before any
// number is reported.

// MmapConfig parameterises RunMmap.
type MmapConfig struct {
	// N is keys for the load comparison (0 = 10M, the EXPERIMENTS.md
	// scale; CI smokes run much smaller).
	N int
	// Queries is the probe/workload size (0 = 50k).
	Queries int
	// Seed for datasets and probes.
	Seed int64
	// Dir is where snapshot files land ("" = fresh temp dir, removed
	// afterwards).
	Dir string
}

// MmapLoadPoint is the three-way restart comparison for one backend.
type MmapLoadPoint struct {
	Backend     string  `json:"backend"`
	ColdBuildMs float64 `json:"cold_build_ms"`
	HeapLoadMs  float64 `json:"heap_load_ms"` // v1 streaming load
	MapLoadMs   float64 `json:"map_load_ms"`  // v2 mapped open, best of mapReps
	FileMBv1    float64 `json:"file_mb_v1"`
	FileMBv2    float64 `json:"file_mb_v2"`
	MapVsHeap   float64 `json:"map_vs_heap"` // HeapLoadMs / MapLoadMs
	MapVsCold   float64 `json:"map_vs_cold"` // ColdBuildMs / MapLoadMs
}

// MmapTouchPoint measures cold-shard first-touch cost on a mapped
// router: the first pass over the workload faults every queried shard's
// pages in; the second pass runs warm.
type MmapTouchPoint struct {
	Shards          int     `json:"shards"`
	FirstPassNs     float64 `json:"first_pass_ns_per_query"`
	SecondPassNs    float64 `json:"second_pass_ns_per_query"`
	PredictedColdNs float64 `json:"predicted_cold_ns"` // memsim.ColdQueryNs
	MinorFaults     int64   `json:"minor_faults"`      // over the first pass (linux)
}

// MmapBudgetPoint is one rung of the residency-budget sweep.
type MmapBudgetPoint struct {
	BudgetFrac    float64 `json:"budget_frac"`
	BudgetBytes   int64   `json:"budget_bytes"`
	ResidentSpans int     `json:"resident_spans"`
	ColdSpans     int     `json:"cold_spans"`
	ColdTouches   int64   `json:"cold_touches"`
	NsPerQuery    float64 `json:"ns_per_query"`
}

// MmapResult is the full experiment.
type MmapResult struct {
	N            int               `json:"n"`
	MapSupported bool              `json:"map_supported"`
	Loads        []MmapLoadPoint   `json:"loads"`
	Touch        MmapTouchPoint    `json:"touch"`
	Budget       []MmapBudgetPoint `json:"budget"`
}

// RunMmap measures mapped vs streamed vs cold restart for the IM+ST
// table and the hybrid router, then the residency tiers on the mapped
// router.
func RunMmap(cfg MmapConfig) (*MmapResult, error) {
	if cfg.N == 0 {
		cfg.N = 10_000_000
	}
	if cfg.Queries == 0 {
		cfg.Queries = 50_000
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mmap-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	res := &MmapResult{N: cfg.N, MapSupported: mapped.Supported()}

	keys, err := dataset.Generate(dataset.Face, 64, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	qs := probes(keys, cfg.Queries, cfg.Seed+1)
	pt, err := mmapLoadPoint("IM+ST", keys, qs, dir)
	if err != nil {
		return nil, err
	}
	res.Loads = append(res.Loads, pt)

	pw := dataset.Piecewise(cfg.N, cfg.Seed)
	pqs := probes(pw, cfg.Queries, cfg.Seed+2)
	pt, err = mmapLoadPoint("router", pw, pqs, dir)
	if err != nil {
		return nil, err
	}
	res.Loads = append(res.Loads, pt)

	// Cold-shard first touch and the budget sweep run on a mapped
	// router over the piecewise key space (distinct shards to fault in).
	if err := mmapRouterTiers(res, pw, pqs, dir); err != nil {
		return nil, err
	}
	return res, nil
}

// mmapLoadPoint builds one backend cold, persists both layouts, and
// times the three restart paths.
func mmapLoadPoint(name string, keys, qs []uint64, dir string) (MmapLoadPoint, error) {
	start := time.Now()
	var cold index.Index[uint64]
	var err error
	if name == "router" {
		cold, err = router.New(keys, router.Config{})
	} else {
		cold, err = index.Build(name, keys)
	}
	if err != nil {
		return MmapLoadPoint{}, err
	}
	coldMs := msSince(start)

	p1 := filepath.Join(dir, name+".v1.snap")
	p2 := filepath.Join(dir, name+".v2.snap")
	if err := index.SaveFile[uint64](p1, cold); err != nil {
		return MmapLoadPoint{}, err
	}
	if err := index.SaveFileV2[uint64](p2, cold); err != nil {
		return MmapLoadPoint{}, err
	}

	var heap index.Index[uint64]
	heapMs, err := bestOf(mapReps, func() error {
		var herr error
		heap, herr = index.LoadFile[uint64](p1)
		return herr
	})
	if err != nil {
		return MmapLoadPoint{}, err
	}
	var mm index.Index[uint64]
	mapMs, err := bestOf(mapReps, func() error {
		var merr error
		var viaMap bool
		mm, viaMap, merr = index.LoadFileMapped[uint64](p2)
		if merr == nil && !viaMap {
			return fmt.Errorf("bench: v2 snapshot %s did not open mapped", p2)
		}
		return merr
	})
	if err != nil {
		return MmapLoadPoint{}, err
	}
	for _, q := range qs {
		w := cold.Find(q)
		if g := heap.Find(q); g != w {
			return MmapLoadPoint{}, fmt.Errorf("bench: %s heap Find(%d) = %d, cold %d", name, q, g, w)
		}
		if g := mm.Find(q); g != w {
			return MmapLoadPoint{}, fmt.Errorf("bench: %s mapped Find(%d) = %d, cold %d", name, q, g, w)
		}
	}
	s1, err := os.Stat(p1)
	if err != nil {
		return MmapLoadPoint{}, err
	}
	s2, err := os.Stat(p2)
	if err != nil {
		return MmapLoadPoint{}, err
	}
	return MmapLoadPoint{
		Backend:     name,
		ColdBuildMs: coldMs,
		HeapLoadMs:  heapMs,
		MapLoadMs:   mapMs,
		FileMBv1:    float64(s1.Size()) / (1 << 20),
		FileMBv2:    float64(s2.Size()) / (1 << 20),
		MapVsHeap:   heapMs / mapMs,
		MapVsCold:   coldMs / mapMs,
	}, nil
}

// residencyRouter is the mapped-router capability surface the tier
// measurements need (the registry loader returns index.Index).
type residencyRouter interface {
	SetResidency(budget int64) (*mapped.Residency, error)
	MappedBytes() int64
	FindBatch(qs []uint64, out []int) []int
}

func mmapRouterTiers(res *MmapResult, keys, qs []uint64, dir string) error {
	p2 := filepath.Join(dir, "router.v2.snap")

	// First touch: a freshly mapped router has no page resident. The
	// first workload pass pays the faults; the second runs warm.
	ix, viaMap, err := index.LoadFileMapped[uint64](p2)
	if err != nil {
		return err
	}
	if !viaMap {
		return fmt.Errorf("bench: v2 snapshot %s did not open mapped", p2)
	}
	rt, ok := ix.(residencyRouter)
	if !ok {
		return fmt.Errorf("bench: mapped router is %T, want residency support", ix)
	}
	out := make([]int, len(qs))
	mf0, _ := mapped.OSFaults()
	start := time.Now()
	rt.FindBatch(qs, out)
	firstNs := float64(time.Since(start).Nanoseconds()) / float64(len(qs))
	mf1, _ := mapped.OSFaults()
	start = time.Now()
	rt.FindBatch(qs, out)
	secondNs := float64(time.Since(start).Nanoseconds()) / float64(len(qs))
	rd, err := rt.SetResidency(rt.MappedBytes())
	if err != nil {
		return err
	}
	res.Touch = MmapTouchPoint{
		Shards:          rd.Spans(),
		FirstPassNs:     firstNs,
		SecondPassNs:    secondNs,
		PredictedColdNs: memsim.ColdQueryNs(),
		MinorFaults:     mf1 - mf0,
	}

	// Budget sweep: each rung installs a fresh manager under a fraction
	// of the mapped bytes, lets one workload pass accrue heat, re-plans
	// so the hot shards are the resident ones, then measures.
	for _, frac := range []float64{0.10, 0.25, 0.50, 1.00} {
		budget := int64(frac * float64(rt.MappedBytes()))
		rd, err := rt.SetResidency(budget)
		if err != nil {
			return err
		}
		rt.FindBatch(qs, out)
		rd.Plan()
		start = time.Now()
		rt.FindBatch(qs, out)
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(qs))
		st := rd.Stats()
		res.Budget = append(res.Budget, MmapBudgetPoint{
			BudgetFrac:    frac,
			BudgetBytes:   budget,
			ResidentSpans: st.ResidentSpans,
			ColdSpans:     st.ColdSpans,
			ColdTouches:   st.ColdTouches,
			NsPerQuery:    ns,
		})
	}
	return nil
}

// WriteJSON emits the experiment in the BENCH_mmap.json shape the CI
// smoke reads.
func (r *MmapResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MmapLoadGrid renders the restart comparison.
func MmapLoadGrid(pts []MmapLoadPoint) *Grid {
	g := NewGrid("backend", "cold_build_ms", "heap_load_ms", "map_load_ms", "file_mb_v1", "file_mb_v2", "map_vs_heap", "map_vs_cold")
	verbs := []string{"%s", "%.1f", "%.1f", "%.3f", "%.2f", "%.2f", "%.1f", "%.1f"}
	for _, p := range pts {
		g.Rowf(verbs, p.Backend, p.ColdBuildMs, p.HeapLoadMs, p.MapLoadMs, p.FileMBv1, p.FileMBv2, p.MapVsHeap, p.MapVsCold)
	}
	return g
}

// MmapBudgetGrid renders the residency-budget sweep.
func MmapBudgetGrid(pts []MmapBudgetPoint) *Grid {
	g := NewGrid("budget_frac", "budget_bytes", "resident_spans", "cold_spans", "cold_touches", "ns_per_query")
	verbs := []string{"%.2f", "%d", "%d", "%d", "%d", "%.1f"}
	for _, p := range pts {
		g.Rowf(verbs, p.BudgetFrac, p.BudgetBytes, p.ResidentSpans, p.ColdSpans, p.ColdTouches, p.NsPerQuery)
	}
	return g
}
