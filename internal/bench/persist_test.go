package bench

import "testing"

// TestRunPersistSmoke runs the full persist sweep at small N: every
// backend saves, loads, and answers its verification probes bit-
// identically (RunPersist errors out otherwise).
func TestRunPersistSmoke(t *testing.T) {
	pts, err := RunPersist(PersistConfig{N: 30_000, Queries: 2_000, Seed: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"IM", "IM+ST", "RS+ST", "router", "updatable", "concurrent"}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.Backend != want[i] {
			t.Errorf("point %d is %q, want %q", i, p.Backend, want[i])
		}
		if p.Verified == 0 || p.LoadMs <= 0 || p.FileMB <= 0 {
			t.Errorf("%s: implausible point %+v", p.Backend, p)
		}
	}
	if pts[5].WarmWrites == 0 {
		t.Error("concurrent arm replayed no writes")
	}
	if g := PersistGrid(pts); len(g.Rows) != len(pts) {
		t.Error("grid row count mismatch")
	}
}
