package bench

import "testing"

// TestRunPersistSmoke runs the full persist sweep at small N: every
// backend saves, loads, and answers its verification probes bit-
// identically (RunPersist errors out otherwise).
func TestRunPersistSmoke(t *testing.T) {
	pts, err := RunPersist(PersistConfig{N: 30_000, Queries: 2_000, Seed: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"IM", "IM+ST", "RS+ST", "router", "updatable", "concurrent"}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.Backend != want[i] {
			t.Errorf("point %d is %q, want %q", i, p.Backend, want[i])
		}
		if p.Verified == 0 || p.LoadMs <= 0 || p.MapMs <= 0 || p.FileMB <= 0 {
			t.Errorf("%s: implausible point %+v", p.Backend, p)
		}
	}
	if pts[5].WarmWrites == 0 {
		t.Error("concurrent arm replayed no writes")
	}
	if g := PersistGrid(pts); len(g.Rows) != len(pts) {
		t.Error("grid row count mismatch")
	}
}

// TestWarmBeatsCold asserts the mapped v2 warm start beats cold rebuild
// for EVERY backend — including bare IM, whose heap warm load ran at
// 0.22x of its trivial cold build (the losing case the heap path
// accepts). The mapped open is O(1) in key count while every cold build
// is at least O(n), so at 200k keys the margin is structural, not a
// timing accident; three attempts absorb scheduler noise anyway.
func TestWarmBeatsCold(t *testing.T) {
	var last []PersistPoint
	for attempt := 0; attempt < 3; attempt++ {
		pts, err := RunPersist(PersistConfig{N: 200_000, Queries: 500, Seed: 7, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		last = pts
		ok := true
		for _, p := range pts {
			if p.MapSpeedup <= 1 {
				ok = false
			}
		}
		if ok {
			return
		}
	}
	for _, p := range last {
		if p.MapSpeedup <= 1 {
			t.Errorf("%s: mapped warm start (%.3f ms) did not beat cold build (%.3f ms): %.2fx",
				p.Backend, p.MapMs, p.ColdMs, p.MapSpeedup)
		}
	}
}
