package bench

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/search"
)

// This file implements the paper's §2.3 micro-benchmark: the error-to-
// latency mapping L(s) measured over non-cached memory regions (Fig. 2a),
// which also parameterises the §3.7 cost model.

// LatencyPoint is one measured point of the L(s) curve.
type LatencyPoint struct {
	WindowSize int
	LinearNs   float64
	BinaryNs   float64
	ExpNs      float64
}

// MeasureLatencyCurve measures local-search latency as a function of the
// search-window size over a large array (windows land at random positions,
// so they are cold for sizes beyond cache reach). It returns one point per
// power-of-two window size up to maxWindow.
func MeasureLatencyCurve(keys []uint64, maxWindow, probes int, seed int64) []LatencyPoint {
	rng := rand.New(rand.NewSource(seed))
	n := len(keys)
	var out []LatencyPoint
	for s := 1; s <= maxWindow && s < n; s *= 2 {
		// Pre-plan probes: true position + a window of size s around it.
		pos := make([]int32, probes)
		q := make([]uint64, probes)
		for i := range pos {
			p := rng.Intn(n - s)
			pos[i] = int32(p)
			q[i] = keys[p+rng.Intn(s)]
		}
		point := LatencyPoint{WindowSize: s}
		point.LinearNs = timeIt(probes, func(i int) int {
			return search.LinearRange(keys, int(pos[i]), int(pos[i])+s, q[i])
		})
		point.BinaryNs = timeIt(probes, func(i int) int {
			return search.BinaryRange(keys, int(pos[i]), int(pos[i])+s, q[i])
		})
		point.ExpNs = timeIt(probes, func(i int) int {
			return search.Exponential(keys, int(pos[i])+s/2, q[i])
		})
		out = append(out, point)
	}
	return out
}

func timeIt(n int, f func(i int) int) float64 {
	var sink int
	start := time.Now()
	for i := 0; i < n; i++ {
		sink += f(i)
	}
	if sink == -1 {
		panic("unreachable")
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// FitLatencyFn interpolates a measured curve into the paper's L(s) cost
// function (§3.7), selecting per size the best of the measured local-search
// strategies (the cost model picks the search algorithm the same way,
// §3.7: "the cost model can also be used to estimate which of the local
// search algorithms should be used").
func FitLatencyFn(points []LatencyPoint) core.LatencyFn {
	if len(points) == 0 {
		return func(s int) float64 { return 36 + 20*math.Log2(float64(s)+1) }
	}
	return func(s int) float64 {
		if s < 1 {
			s = 1
		}
		// Locate the bracketing measured sizes (powers of two).
		prev := points[0]
		for _, p := range points {
			if p.WindowSize >= s {
				lo := math.Min(p.LinearNs, math.Min(p.BinaryNs, p.ExpNs))
				if p.WindowSize == s || prev.WindowSize == p.WindowSize {
					return lo
				}
				loPrev := math.Min(prev.LinearNs, math.Min(prev.BinaryNs, prev.ExpNs))
				// Log-linear interpolation between measured sizes.
				t := (math.Log2(float64(s)) - math.Log2(float64(prev.WindowSize))) /
					(math.Log2(float64(p.WindowSize)) - math.Log2(float64(prev.WindowSize)))
				return loPrev + t*(lo-loPrev)
			}
			prev = p
		}
		last := points[len(points)-1]
		return math.Min(last.LinearNs, math.Min(last.BinaryNs, last.ExpNs))
	}
}

// Fig2Point is one x-position of Fig. 2a/2b: a planted prediction error and
// the measured cost of each local-search strategy, plus the whole-array
// baselines (binary search and FAST).
type Fig2Point struct {
	Err      int
	LinearNs float64
	BinaryNs float64
	ExpNs    float64
	BSNs     float64
	FASTNs   float64
	// Cache misses per lookup (filled by RunFig2b).
	LinearMisses, BinaryMisses, ExpMisses, BSMisses, FASTMisses float64
}

// PlantedWorkload precomputes, for each query, a predicted position that is
// exactly ±delta away from the true position — the paper's micro-benchmark
// setup ("for each query, we pre-compute the output of the learned index
// with error Δ").
type PlantedWorkload[K kv.Key] struct {
	Keys  []K
	Q     []K
	True  []int32
	Pred  []int32
	Delta int
}

// NewPlanted builds a planted-error workload.
func NewPlanted[K kv.Key](keys []K, delta, nq int, seed int64) *PlantedWorkload[K] {
	rng := rand.New(rand.NewSource(seed))
	n := len(keys)
	w := &PlantedWorkload[K]{Keys: keys, Delta: delta}
	for i := 0; i < nq; i++ {
		t := rng.Intn(n)
		q := keys[t]
		t = kv.LowerBound(keys, q) // duplicate-safe true position
		p := t
		if rng.Intn(2) == 0 {
			p = t + delta
		} else {
			p = t - delta
		}
		p = kv.Clamp(p, 0, n-1)
		w.Q = append(w.Q, q)
		w.True = append(w.True, int32(t))
		w.Pred = append(w.Pred, int32(p))
	}
	return w
}
