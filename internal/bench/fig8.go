package bench

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/memsim"
	"repro/internal/radixspline"
	"repro/internal/rbs"
	"repro/internal/rmi"
	"repro/internal/search"
)

// Fig8Point is one (index size, metrics) point of the paper's Fig. 8.
type Fig8Point struct {
	Method    string
	SizeBytes int
	LookupNs  float64
	Log2Err   float64 // -1 when not meaningful
	Accesses  float64 // memory touches per lookup (instruction-count proxy)
	L1Misses  float64
	LLCMisses float64
}

// Fig8Config controls the index-size sweep.
type Fig8Config struct {
	Dataset dataset.Spec // face64 or osmc64 in the paper
	N       int
	Queries int
	Reps    int
	Seed    int64
}

func (c *Fig8Config) defaults() {
	if c.Dataset.Name == "" {
		c.Dataset = dataset.Spec{Name: dataset.Face, Bits: 64}
	}
	if c.N == 0 {
		c.N = 2_000_000
	}
	if c.Queries == 0 {
		c.Queries = 50_000
	}
	if c.Reps == 0 {
		c.Reps = 2
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
}

// RunFig8 sweeps each tunable index's size knob over one dataset and
// reports lookup latency, log2 error, memory accesses, and simulated
// L1/LLC misses per point (the five panels of Fig. 8).
func RunFig8(cfg Fig8Config) ([]Fig8Point, error) {
	cfg.defaults()
	if cfg.Dataset.Bits != 64 {
		return nil, fmt.Errorf("bench: Fig 8 uses 64-bit datasets")
	}
	keys, err := dataset.Generate(cfg.Dataset.Name, 64, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	w := NewWorkload(keys, cfg.Queries, cfg.Seed+1)
	n := len(keys)
	var out []Fig8Point

	add := func(method string, size int, log2err float64, find func(uint64) int, trace func(uint64, search.Touch) int) error {
		ns, err := w.Measure(find, cfg.Reps)
		if err != nil {
			return fmt.Errorf("%s: %w", method, err)
		}
		p := Fig8Point{Method: method, SizeBytes: size, LookupNs: ns, Log2Err: log2err}
		if trace != nil {
			p.Accesses, p.L1Misses, p.LLCMisses = simProfile(w, trace)
		}
		out = append(out, p)
		return nil
	}

	// RadixSpline: corridor width drives spline size.
	for _, eps := range []int{4, 16, 64, 256, 1024} {
		idx, err := radixspline.New(keys, radixspline.Config{MaxError: eps})
		if err != nil {
			return nil, err
		}
		if err := add("RS", idx.SizeBytes(), log2f(2*eps+1), idx.Find, idx.TraceFind); err != nil {
			return nil, err
		}
	}
	// RMI: leaf count drives model size.
	for _, leaves := range []int{n / 16384, n / 1024, n / 64, n / 16} {
		if leaves < 1 {
			continue
		}
		idx, err := rmi.New(keys, rmi.Config{Leaves: leaves})
		if err != nil {
			return nil, err
		}
		if err := add("RMI", idx.SizeBytes(), idx.Log2Error(), idx.Find, idx.TraceFind); err != nil {
			return nil, err
		}
	}
	// B+tree: fanout drives node count.
	for _, fanout := range []int{4, 16, 64, 256} {
		tr, err := btree.NewBulk(keys, nil, fanout)
		if err != nil {
			return nil, err
		}
		if err := add("B+tree", tr.SizeBytes(), -1, tr.Find, tr.TraceFind); err != nil {
			return nil, err
		}
	}
	// RBS: radix bits drive the table size.
	for _, bits := range []int{8, 12, 16, 20, 24} {
		idx, err := rbs.New(keys, bits)
		if err != nil {
			return nil, err
		}
		if err := add("RBS", idx.SizeBytes(), -1, idx.Find, idx.TraceFind); err != nil {
			return nil, err
		}
	}
	// IM+Shift-Table: the layer size M drives the footprint (§3.4).
	model := cdfmodel.NewInterpolation(keys)
	for _, m := range []int{n / 1000, n / 100, n / 10, n} {
		if m < 1 {
			continue
		}
		tab, err := core.Build(keys, model, core.Config{Mode: core.ModeRange, M: m})
		if err != nil {
			return nil, err
		}
		st := tab.ComputeStats()
		if err := add("IM+ST", tab.SizeBytes(), st.MeanLog2Bounds, tab.Find, tab.TraceFind); err != nil {
			return nil, err
		}
	}
	// RS+Shift-Table: a loose spline corrected by a full layer.
	for _, eps := range []int{64, 256, 1024} {
		rsm, err := radixspline.New(keys, radixspline.Config{MaxError: eps})
		if err != nil {
			return nil, err
		}
		tab, err := core.Build[uint64](keys, rsm, core.Config{Mode: core.ModeRange})
		if err != nil {
			return nil, err
		}
		st := tab.ComputeStats()
		if err := add("RS+ST", tab.SizeBytes()+rsm.SizeBytes(), st.MeanLog2Bounds, tab.Find, tab.TraceFind); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// simProfile replays a traced lookup over the workload through the cache
// simulator, returning accesses, L1 misses and LLC misses per lookup.
func simProfile[K interface{ ~uint32 | ~uint64 }](w *Workload[K], trace func(K, search.Touch) int) (accesses, l1, llc float64) {
	sim, err := memsim.New(memsim.Skylake())
	if err != nil {
		panic(err)
	}
	touch := func(addr uint64, width int) { sim.Access(addr, width) }
	half := len(w.Queries) / 2
	if half > 5000 {
		half = 5000
	}
	for i := 0; i < half; i++ {
		trace(w.Queries[i], touch)
	}
	sim.ResetStats()
	count := 0
	for i := half; i < len(w.Queries) && count < 5000; i++ {
		trace(w.Queries[i], touch)
		count++
	}
	st := sim.Stats()
	u := int64(count)
	if u == 0 {
		return 0, 0, 0
	}
	return float64(st.Accesses) / float64(u), st.MissesPer("L1", u), st.MissesPer("L3", u)
}

func log2f(v int) float64 {
	if v <= 1 {
		return 0
	}
	f := 0.0
	for x := 1; x < v; x *= 2 {
		f++
	}
	return f
}
