package bench

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fasttree"
	"repro/internal/kv"
	"repro/internal/memsim"
	"repro/internal/search"
)

// Fig2Config controls the Fig. 2 reproduction (cost of local search in a
// learned index, §2.3). The paper uses 200M 32-bit keys; defaults here are
// scaled for CI (set N high and the error axis extends accordingly).
type Fig2Config struct {
	N       int
	Queries int
	Seed    int64
	Errors  []int // planted error sizes; nil means decades 1..N/2
}

func (c *Fig2Config) defaults() {
	if c.N == 0 {
		c.N = 4_000_000
	}
	if c.Queries == 0 {
		c.Queries = 50_000
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Errors == nil {
		for e := 1; e < c.N/2; e *= 10 {
			c.Errors = append(c.Errors, e)
		}
	}
}

// RunFig2a measures the local-search latency for each planted error size
// (Fig. 2a): linear, binary (bounded window), and exponential local search,
// against whole-array binary search and FAST.
func RunFig2a(cfg Fig2Config) ([]Fig2Point, error) {
	cfg.defaults()
	keys := dataset.U32(dataset.MustGenerate(dataset.USpr, 32, cfg.N, cfg.Seed))
	fast, err := fasttree.NewBlocked(keys)
	if err != nil {
		return nil, err
	}
	var out []Fig2Point
	for _, e := range cfg.Errors {
		w := NewPlanted(keys, e, cfg.Queries, cfg.Seed+int64(e))
		p := Fig2Point{Err: e}
		p.LinearNs = timePlanted(w, func(i int) int {
			return search.LinearFrom(keys, int(w.Pred[i]), w.Q[i])
		})
		p.BinaryNs = timePlanted(w, func(i int) int {
			return search.BinaryRange(keys, kv.Clamp(int(w.Pred[i])-e, 0, len(keys)), kv.Clamp(int(w.Pred[i])+e+1, 0, len(keys)), w.Q[i])
		})
		p.ExpNs = timePlanted(w, func(i int) int {
			return search.Exponential(keys, int(w.Pred[i]), w.Q[i])
		})
		p.BSNs = timePlanted(w, func(i int) int {
			return search.Binary(keys, w.Q[i])
		})
		p.FASTNs = timePlanted(w, func(i int) int {
			return fast.Find(w.Q[i])
		})
		out = append(out, p)
	}
	return out, nil
}

// timePlanted validates results then times the access function.
func timePlanted[K kv.Key](w *PlantedWorkload[K], f func(i int) int) float64 {
	for i := range w.Q {
		if got := f(i); got != int(w.True[i]) {
			panic(fmt.Sprintf("bench: planted workload result %d, want %d", got, w.True[i]))
		}
	}
	return timeIt(len(w.Q), f)
}

// RunFig2b replays the same planted-error local searches through the cache
// simulator and reports misses per lookup (Fig. 2b).
func RunFig2b(cfg Fig2Config) ([]Fig2Point, error) {
	cfg.defaults()
	keys := dataset.U32(dataset.MustGenerate(dataset.USpr, 32, cfg.N, cfg.Seed))
	fast, err := fasttree.NewBlocked(keys)
	if err != nil {
		return nil, err
	}
	var out []Fig2Point
	for _, e := range cfg.Errors {
		// Large planted errors make each traced lookup touch thousands of
		// lines; scale the query count down to keep simulation time flat.
		nq := cfg.Queries/5 + 1
		if cap := 2_000_000/(e+1) + 200; nq > cap {
			nq = cap
		}
		w := NewPlanted(keys, e, nq, cfg.Seed+int64(e))
		p := Fig2Point{Err: e}
		p.LinearMisses = simMisses(w, func(i int, touch search.Touch) int {
			return search.LinearFromTraced(keys, int(w.Pred[i]), w.Q[i], touch)
		})
		p.BinaryMisses = simMisses(w, func(i int, touch search.Touch) int {
			return search.BinaryRangeTraced(keys, kv.Clamp(int(w.Pred[i])-e, 0, len(keys)), kv.Clamp(int(w.Pred[i])+e+1, 0, len(keys)), w.Q[i], touch)
		})
		p.ExpMisses = simMisses(w, func(i int, touch search.Touch) int {
			return search.ExponentialTraced(keys, int(w.Pred[i]), w.Q[i], touch)
		})
		p.BSMisses = simMisses(w, func(i int, touch search.Touch) int {
			return search.BinaryTraced(keys, w.Q[i], touch)
		})
		p.FASTMisses = simMisses(w, func(i int, touch search.Touch) int {
			return fast.TraceFind(w.Q[i], touch)
		})
		out = append(out, p)
	}
	return out, nil
}

// simMisses replays an access trace through a fresh Skylake-shaped cache
// and returns total misses (line fills from DRAM) per lookup, after a
// warmup half.
func simMisses[K kv.Key](w *PlantedWorkload[K], f func(i int, touch search.Touch) int) float64 {
	sim, err := memsim.New(memsim.Skylake())
	if err != nil {
		panic(err)
	}
	touch := func(addr uint64, width int) { sim.Access(addr, width) }
	half := len(w.Q) / 2
	for i := 0; i < half; i++ {
		f(i, touch)
	}
	sim.ResetStats()
	for i := half; i < len(w.Q); i++ {
		if got := f(i, touch); got != int(w.True[i]) {
			panic(fmt.Sprintf("bench: traced planted result %d, want %d", got, w.True[i]))
		}
	}
	return sim.Stats().MissesPer("L3", int64(len(w.Q)-half))
}
