package bench

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kv"
)

// The harness tests run at reduced scale: they validate plumbing and the
// qualitative shape, not absolute numbers (those are the benchmarks' job).

func TestWorkloadValidatesResults(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5}
	w := NewWorkload(keys, 10, 1)
	if _, err := w.Measure(func(q uint64) int { return 0 }, 1); err == nil {
		t.Error("Measure must reject an index returning wrong results")
	}
	if _, err := w.Measure(func(q uint64) int {
		for i, k := range keys {
			if k >= q {
				return i
			}
		}
		return len(keys)
	}, 1); err != nil {
		t.Errorf("correct index rejected: %v", err)
	}
}

func TestRunTable2Small(t *testing.T) {
	res, err := RunTable2(Table2Config{
		N:       20_000,
		Queries: 2_000,
		Reps:    1,
		Datasets: []dataset.Spec{
			{Name: dataset.UDen, Bits: 64},
			{Name: dataset.Face, Bits: 32},
			{Name: dataset.Wiki, Bits: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	txt := res.Format()
	if !strings.Contains(txt, "uden64") || !strings.Contains(txt, "face32") {
		t.Error("formatted table missing dataset rows")
	}
	// wiki has duplicates: ART must be N/A there.
	for _, row := range res.Rows {
		if row.Spec.Name == dataset.Wiki {
			if !row.Cells["ART"].NA() {
				t.Error("ART should be N/A on wiki")
			}
		}
		if name, ns, _ := row.Winner(); name == "" || ns <= 0 {
			t.Error("winner computation broken")
		}
	}
	csv := res.CSV()
	if !strings.Contains(csv, "dataset,") || !strings.Contains(csv, "NA") {
		t.Error("CSV output malformed")
	}
}

func TestLatencyCurveShape(t *testing.T) {
	keys := dataset.MustGenerate(dataset.USpr, 64, 500_000, 3)
	points := MeasureLatencyCurve(keys, 1<<12, 2_000, 5)
	if len(points) < 10 {
		t.Fatalf("too few curve points: %d", len(points))
	}
	// Latency must grow with window size (allowing noise between adjacent
	// sizes, compare the ends).
	first, last := points[0], points[len(points)-1]
	if last.BinaryNs <= first.BinaryNs {
		t.Errorf("binary L(s) should grow: %f -> %f", first.BinaryNs, last.BinaryNs)
	}
	if last.LinearNs <= first.LinearNs {
		t.Errorf("linear L(s) should grow: %f -> %f", first.LinearNs, last.LinearNs)
	}
	fn := FitLatencyFn(points)
	if fn(1) <= 0 || fn(1000) <= fn(1) {
		t.Error("fitted latency function shape broken")
	}
	if fn(1<<20) < fn(1<<12) {
		t.Error("fitted latency must extrapolate monotonically at the top")
	}
}

func TestPlantedWorkload(t *testing.T) {
	keys := dataset.MustGenerate(dataset.USpr, 64, 100_000, 3)
	w := NewPlanted(keys, 50, 500, 7)
	for i := range w.Q {
		d := int(w.Pred[i]) - int(w.True[i])
		if d < 0 {
			d = -d
		}
		if d > 50 {
			t.Fatalf("planted error %d exceeds delta", d)
		}
	}
}

func TestRunFig2Small(t *testing.T) {
	cfg := Fig2Config{N: 200_000, Queries: 3_000, Errors: []int{1, 100, 10_000}}
	pts, err := RunFig2a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	// Shape: local search cost grows with error; at tiny error the local
	// searches beat full binary search.
	if pts[0].LinearNs >= pts[2].LinearNs {
		t.Error("linear local search should degrade with error")
	}
	if pts[0].BinaryNs >= pts[0].BSNs {
		t.Error("tiny-error bounded search should beat full binary search")
	}
	// The miss measurement needs a working set beyond the simulated 8 MB
	// LLC (as the paper's 200M keys are beyond its machine's), otherwise
	// large scans keep the whole array resident and misses vanish.
	mpts, err := RunFig2b(Fig2Config{N: 4_000_000, Queries: 4_000, Errors: []int{1, 100, 10_000}})
	if err != nil {
		t.Fatal(err)
	}
	if mpts[0].LinearMisses >= mpts[2].LinearMisses {
		t.Errorf("linear misses should grow with error: %.2f -> %.2f", mpts[0].LinearMisses, mpts[2].LinearMisses)
	}
	if mpts[0].BinaryMisses >= mpts[0].BSMisses {
		t.Error("tiny-error bounded search should miss less than full binary search")
	}
}

func TestRunFig3Small(t *testing.T) {
	series, err := RunFig3(20_000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	for _, s := range series {
		if len(s.MacroKeys) < 50 || len(s.ZoomKeys) < 2 {
			t.Errorf("%s: series too short (%d macro, %d zoom)", s.Spec, len(s.MacroKeys), len(s.ZoomKeys))
		}
	}
}

func TestRunFig6Small(t *testing.T) {
	res, err := RunFig6(100_000, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgCorrected*10 > res.AvgModel {
		t.Errorf("Fig 6 shape: corrected %.1f not ≪ model %.1f", res.AvgCorrected, res.AvgModel)
	}
	if len(res.Positions) < 100 {
		t.Error("series too short")
	}
}

func TestRunFig7Small(t *testing.T) {
	rows, err := RunFig7(20_000, 3, []dataset.Spec{
		{Name: dataset.Face, Bits: 64},
		{Name: dataset.USpr, Bits: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("too few build-time rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanMs < 0 || r.StdevMs < 0 {
			t.Errorf("%s: negative stats", r.Method)
		}
	}
	if !strings.Contains(FormatFig7(rows), "IM+ST") {
		t.Error("formatted output missing IM+ST")
	}
}

func TestRunFig8Small(t *testing.T) {
	pts, err := RunFig8(Fig8Config{N: 100_000, Queries: 4_000, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]Fig8Point{}
	for _, p := range pts {
		byMethod[p.Method] = append(byMethod[p.Method], p)
		if p.SizeBytes <= 0 || p.LookupNs <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Method, p)
		}
	}
	for _, m := range []string{"RS", "RMI", "B+tree", "RBS", "IM+ST", "RS+ST"} {
		if len(byMethod[m]) < 2 && m != "RS+ST" {
			t.Errorf("method %s missing sweep points", m)
		}
	}
	// RS: tighter epsilon → bigger spline → lower log2 error.
	rs := byMethod["RS"]
	if rs[0].SizeBytes <= rs[len(rs)-1].SizeBytes {
		t.Error("RS sweep should start big (eps=4) and shrink")
	}
	if rs[0].Log2Err >= rs[len(rs)-1].Log2Err {
		t.Error("RS log2 error should grow as the spline shrinks")
	}
}

func TestRunFig9Small(t *testing.T) {
	res, err := RunFig9(50_000, 4_000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(dataset.Fig9) {
		t.Fatalf("datasets = %d, want %d", len(res.Cells), len(dataset.Fig9))
	}
	// Shape (Fig. 9b): error grows monotonically with compression, and the
	// bare model is worst, on every non-trivial dataset.
	for spec, cells := range res.Cells {
		if spec == "uden32" {
			continue // near-zero error everywhere
		}
		if !(cells["S-1"].AvgErr <= cells["S-100"].AvgErr) {
			t.Errorf("%s: S-1 err %.1f should be <= S-100 %.1f", spec, cells["S-1"].AvgErr, cells["S-100"].AvgErr)
		}
		if !(cells["S-1000"].AvgErr <= cells["none"].AvgErr+1) {
			t.Errorf("%s: even S-1000 (%.1f) should not exceed the bare model (%.1f)",
				spec, cells["S-1000"].AvgErr, cells["none"].AvgErr)
		}
	}
	if !strings.Contains(res.Format(), "Fig. 9a") {
		t.Error("format output broken")
	}
}

func TestZipfWorkload(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 50_000, 3)
	w := NewZipfWorkload(keys, 5_000, 1.5, 7)
	if len(w.Queries) != 5_000 {
		t.Fatalf("got %d queries", len(w.Queries))
	}
	// Validation still works and skew is visible: the most frequent query
	// should dominate far beyond the uniform expectation.
	counts := map[uint64]int{}
	for i, q := range w.Queries {
		if int(w.Expect[i]) >= len(keys) || keys[w.Expect[i]] != q {
			t.Fatalf("expectation broken at %d", i)
		}
		counts[q]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 { // uniform expectation would be ~1
		t.Errorf("zipf workload not skewed: hottest key queried %d times", max)
	}
	if _, err := w.Measure(func(q uint64) int { return kv.LowerBound(keys, q) }, 1); err != nil {
		t.Fatal(err)
	}
}
