package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestRunServeSmoke runs the serving-tier sweep at small scale: every
// response is oracle-verified by version tag inside RunServe (incorrect
// responses fail the run), so a clean return plus plausible numbers is
// the assertion.
func TestRunServeSmoke(t *testing.T) {
	res, err := RunServe(ServeConfig{
		N: 40_000, Pool: 256, Workers: 4, Rate: 400,
		Duration: 400 * time.Millisecond, PubEvery: 150 * time.Millisecond,
		SyncEvery: 50 * time.Millisecond, Seed: 3, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 { // {direct,coalesce} × {closed,open}
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Completed == 0 || p.Verified == 0 {
			t.Errorf("%s/%s served nothing: %+v", p.Mode, p.Loop, p)
		}
		if p.Incorrect != 0 || p.Errors != 0 {
			t.Errorf("%s/%s: %d incorrect, %d errors", p.Mode, p.Loop, p.Incorrect, p.Errors)
		}
		if p.ThroughputQPS <= 0 || p.P99us < p.P50us {
			t.Errorf("implausible point %+v", p)
		}
	}
	if res.Published == 0 {
		t.Error("no versions published mid-run: the race being measured never happened")
	}
	if res.CoalesceSpeedup <= 0 {
		t.Errorf("speedup not computed: %f", res.CoalesceSpeedup)
	}
	if g := res.Grid(); len(g.Rows) != len(res.Points) {
		t.Error("grid row count mismatch")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ServeResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_serve.json shape does not round-trip: %v", err)
	}
	if len(back.Points) != len(res.Points) || back.Published != res.Published {
		t.Error("JSON round trip changed content")
	}
}
