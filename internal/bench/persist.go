package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/router"
	"repro/internal/updatable"
)

// This file is the persistence experiment (DESIGN.md §9): cold build vs
// snapshot save vs warm load, per backend, with every loaded index
// property-tested bit-identical to its cold-built twin before any number
// is reported. The question it answers is the serving one — how much
// faster does a restart get back to serving when it warm-loads a snapshot
// instead of rebuilding from raw keys?

// PersistConfig parameterises RunPersist.
type PersistConfig struct {
	// N is keys per dataset (0 = 2M).
	N int
	// Queries is the verification probe count (0 = 50k).
	Queries int
	// Seed for datasets and probes.
	Seed int64
	// Dir is where snapshot files land ("" = a fresh temp dir, removed
	// afterwards).
	Dir string
	// WriteFrac is the fraction of N applied as writes to the updatable
	// and concurrent arms before persisting (0 = 5%).
	WriteFrac float64
}

// PersistPoint is one backend's cold-vs-warm measurement.
type PersistPoint struct {
	Backend    string
	ColdMs     float64 // build from raw keys (plus writes, for updatable arms)
	SaveMs     float64
	LoadMs     float64 // streaming heap load
	MapMs      float64 // mapped (v2, zero-copy) load, best of mapReps
	FileMB     float64
	Speedup    float64 // ColdMs / LoadMs
	MapSpeedup float64 // ColdMs / MapMs
	Verified   int     // probes that had to (and did) answer bit-identically
	WarmWrites int     // writes replayed during warm restart (concurrent arm)
}

// mapReps is how many times the mapped open is repeated (best-of); the
// open is O(1) and microsecond-scale, so a single sample is scheduler
// noise.
const mapReps = 3

// RunPersist measures the snapshot round trip for every persistence-
// capable layer of the stack: the registry backends that implement
// index.Persister, the hybrid router, and the updatable/concurrent
// indexes with live tombstones, delta buffers and pending generations.
func RunPersist(cfg PersistConfig) ([]PersistPoint, error) {
	if cfg.N == 0 {
		cfg.N = 2_000_000
	}
	if cfg.Queries == 0 {
		cfg.Queries = 50_000
	}
	if cfg.WriteFrac == 0 {
		cfg.WriteFrac = 0.05
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "persist-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	keys, err := dataset.Generate(dataset.Face, 64, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	qs := probes(keys, cfg.Queries, cfg.Seed+1)
	var out []PersistPoint

	// Registry backends with the Persister capability.
	for _, name := range []string{"IM", "IM+ST", "RS+ST"} {
		pt, err := persistRegistry(name, keys, qs, filepath.Join(dir, name+".snap"))
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		out = append(out, pt)
	}

	// Hybrid router over a piecewise key space (its natural habitat; the
	// expensive cold phase is the per-shard candidate evaluation).
	pw := dataset.Piecewise(cfg.N, cfg.Seed)
	pt, err := persistRouter(pw, probes(pw, cfg.Queries, cfg.Seed+2), filepath.Join(dir, "router.snap"))
	if err != nil {
		return nil, fmt.Errorf("bench: router: %w", err)
	}
	out = append(out, pt)

	writes := int(float64(cfg.N) * cfg.WriteFrac)
	pt, err = persistUpdatable(keys, qs, writes, filepath.Join(dir, "updatable.snap"))
	if err != nil {
		return nil, fmt.Errorf("bench: updatable: %w", err)
	}
	out = append(out, pt)

	pt, err = persistConcurrent(keys, qs, writes, filepath.Join(dir, "concurrent.snap"))
	if err != nil {
		return nil, fmt.Errorf("bench: concurrent: %w", err)
	}
	out = append(out, pt)
	return out, nil
}

// probes mixes hits and near-misses.
func probes[K kv.Key](keys []K, n int, seed int64) []K {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]K, n)
	for i := range qs {
		if i%2 == 0 {
			qs[i] = keys[rng.Intn(len(keys))]
		} else {
			qs[i] = K(rng.Uint64()) % (keys[len(keys)-1] + 2)
		}
	}
	return qs
}

func persistRegistry(name string, keys, qs []uint64, path string) (PersistPoint, error) {
	start := time.Now()
	cold, err := index.Build(name, keys)
	if err != nil {
		return PersistPoint{}, err
	}
	coldMs := msSince(start)

	start = time.Now()
	if err := index.SaveFile[uint64](path, cold); err != nil {
		return PersistPoint{}, err
	}
	saveMs := msSince(start)

	start = time.Now()
	warm, err := index.LoadFile[uint64](path)
	if err != nil {
		return PersistPoint{}, err
	}
	loadMs := msSince(start)

	pathV2 := path + "2"
	if err := index.SaveFileV2[uint64](pathV2, cold); err != nil {
		return PersistPoint{}, err
	}
	var mapped index.Index[uint64]
	mapMs, err := bestOf(mapReps, func() error {
		var merr error
		var viaMap bool
		mapped, viaMap, merr = index.LoadFileMapped[uint64](pathV2)
		if merr == nil && !viaMap {
			return fmt.Errorf("v2 snapshot %s did not open mapped", pathV2)
		}
		return merr
	})
	if err != nil {
		return PersistPoint{}, err
	}

	for _, q := range qs {
		w := cold.Find(q)
		if g := warm.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("warm Find(%d) = %d, cold %d", q, g, w)
		}
		if g := mapped.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("mapped Find(%d) = %d, cold %d", q, g, w)
		}
	}
	return point(name, coldMs, saveMs, loadMs, mapMs, path, len(qs), 0)
}

// bestOf runs f reps times and returns the fastest wall-clock ms.
func bestOf(reps int, f func() error) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if ms := msSince(start); i == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

func persistRouter(keys, qs []uint64, path string) (PersistPoint, error) {
	start := time.Now()
	cold, err := router.New(keys, router.Config{})
	if err != nil {
		return PersistPoint{}, err
	}
	coldMs := msSince(start)

	start = time.Now()
	if err := index.SaveFile[uint64](path, cold); err != nil {
		return PersistPoint{}, err
	}
	saveMs := msSince(start)

	start = time.Now()
	warm, err := index.LoadFile[uint64](path)
	if err != nil {
		return PersistPoint{}, err
	}
	loadMs := msSince(start)

	pathV2 := path + "2"
	if err := index.SaveFileV2[uint64](pathV2, cold); err != nil {
		return PersistPoint{}, err
	}
	var mapped index.Index[uint64]
	mapMs, err := bestOf(mapReps, func() error {
		var merr error
		var viaMap bool
		mapped, viaMap, merr = index.LoadFileMapped[uint64](pathV2)
		if merr == nil && !viaMap {
			return fmt.Errorf("v2 snapshot %s did not open mapped", pathV2)
		}
		return merr
	})
	if err != nil {
		return PersistPoint{}, err
	}

	for _, q := range qs {
		w := cold.Find(q)
		if g := warm.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("warm Find(%d) = %d, cold %d", q, g, w)
		}
		if g := mapped.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("mapped Find(%d) = %d, cold %d", q, g, w)
		}
	}
	return point("router", coldMs, saveMs, loadMs, mapMs, path, len(qs), 0)
}

func persistUpdatable(keys, qs []uint64, writes int, path string) (PersistPoint, error) {
	start := time.Now()
	cold, err := updatable.New(keys, updatable.Config{})
	if err != nil {
		return PersistPoint{}, err
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < writes; i++ {
		if i%3 == 0 {
			cold.Delete(keys[rng.Intn(len(keys))])
		} else if err := cold.Insert(rng.Uint64() % (keys[len(keys)-1] + 2)); err != nil {
			return PersistPoint{}, err
		}
	}
	coldMs := msSince(start)

	start = time.Now()
	if err := updatable.SaveFile(path, cold); err != nil {
		return PersistPoint{}, err
	}
	saveMs := msSince(start)

	start = time.Now()
	warm, err := updatable.LoadFile[uint64](path)
	if err != nil {
		return PersistPoint{}, err
	}
	loadMs := msSince(start)

	pathV2 := path + "2"
	if err := updatable.SaveFileV2(pathV2, cold); err != nil {
		return PersistPoint{}, err
	}
	var mapped *updatable.Index[uint64]
	mapMs, err := bestOf(mapReps, func() error {
		var merr error
		var viaMap bool
		mapped, viaMap, merr = updatable.MapViewFile[uint64](pathV2)
		if merr == nil && !viaMap {
			return fmt.Errorf("v2 snapshot %s did not open mapped", pathV2)
		}
		return merr
	})
	if err != nil {
		return PersistPoint{}, err
	}

	for _, q := range qs {
		w := cold.Find(q)
		if g := warm.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("warm Find(%d) = %d, cold %d", q, g, w)
		}
		if g := mapped.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("mapped Find(%d) = %d, cold %d", q, g, w)
		}
	}
	return point("updatable", coldMs, saveMs, loadMs, mapMs, path, len(qs), 0)
}

func persistConcurrent(keys, qs []uint64, writes int, path string) (PersistPoint, error) {
	start := time.Now()
	cold, err := concurrent.New(keys, concurrent.Config{
		Policy: concurrent.CompactionPolicy{Kind: concurrent.Manual},
	})
	if err != nil {
		return PersistPoint{}, err
	}
	defer cold.Close()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < writes; i++ {
		if i%3 == 0 {
			cold.Delete(keys[rng.Intn(len(keys))])
		} else {
			cold.Insert(rng.Uint64() % (keys[len(keys)-1] + 2))
		}
	}
	coldMs := msSince(start)
	replayed := cold.Pending()

	start = time.Now()
	if err := concurrent.SaveFile(path, cold); err != nil {
		return PersistPoint{}, err
	}
	saveMs := msSince(start)

	start = time.Now()
	warm, err := concurrent.LoadFile[uint64](path)
	if err != nil {
		return PersistPoint{}, err
	}
	loadMs := msSince(start)
	defer warm.Close()

	pathV2 := path + "2"
	if err := concurrent.SaveFileV2(pathV2, cold); err != nil {
		return PersistPoint{}, err
	}
	var mapped *concurrent.Index[uint64]
	mapMs, err := bestOf(mapReps, func() error {
		if mapped != nil {
			mapped.Close()
		}
		var merr error
		var viaMap bool
		mapped, viaMap, merr = concurrent.MapFile[uint64](pathV2)
		if merr == nil && !viaMap {
			return fmt.Errorf("v2 snapshot %s did not open mapped", pathV2)
		}
		return merr
	})
	if err != nil {
		return PersistPoint{}, err
	}
	defer mapped.Close()

	for _, q := range qs {
		w := cold.Find(q)
		if g := warm.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("warm Find(%d) = %d, cold %d", q, g, w)
		}
		if g := mapped.Find(q); g != w {
			return PersistPoint{}, fmt.Errorf("mapped Find(%d) = %d, cold %d", q, g, w)
		}
	}
	return point("concurrent", coldMs, saveMs, loadMs, mapMs, path, len(qs), replayed)
}

func point(name string, coldMs, saveMs, loadMs, mapMs float64, path string, verified, warmWrites int) (PersistPoint, error) {
	st, err := os.Stat(path)
	if err != nil {
		return PersistPoint{}, err
	}
	return PersistPoint{
		Backend:    name,
		ColdMs:     coldMs,
		SaveMs:     saveMs,
		LoadMs:     loadMs,
		MapMs:      mapMs,
		FileMB:     float64(st.Size()) / (1 << 20),
		Speedup:    coldMs / loadMs,
		MapSpeedup: coldMs / mapMs,
		Verified:   verified,
		WarmWrites: warmWrites,
	}, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}

// PersistGrid renders the sweep through the shared emitter.
func PersistGrid(pts []PersistPoint) *Grid {
	g := NewGrid("backend", "cold_build_ms", "save_ms", "warm_load_ms", "map_load_ms", "file_mb", "warm_speedup", "map_speedup", "verified_probes", "replayed_writes")
	verbs := []string{"%s", "%.1f", "%.1f", "%.1f", "%.3f", "%.2f", "%.2f", "%.2f", "%d", "%d"}
	for _, p := range pts {
		g.Rowf(verbs, p.Backend, p.ColdMs, p.SaveMs, p.LoadMs, p.MapMs, p.FileMB, p.Speedup, p.MapSpeedup, p.Verified, p.WarmWrites)
	}
	return g
}
