package bench

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/concurrent"
)

func TestRunConcurrentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-workload measurement")
	}
	pts, err := RunConcurrent(ConcurrentConfig{
		N:        60_000,
		Duration: 120 * time.Millisecond,
		Seed:     5,
		Readers:  []int{1, 2},
		Policies: []concurrent.CompactionPolicy{
			{Kind: concurrent.DeltaCount, Count: 2048},
			{Kind: concurrent.Manual},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for _, p := range pts {
		if p.ReadsPerSec <= 0 {
			t.Errorf("%s/%s readers=%d: zero read throughput", p.Dataset, p.Policy, p.Readers)
		}
		if p.WritesPerSec <= 0 {
			t.Errorf("%s/%s readers=%d: zero write throughput", p.Dataset, p.Policy, p.Readers)
		}
		if p.Policy == "manual" && p.Rebuilds != 0 {
			t.Errorf("manual policy compacted %d times", p.Rebuilds)
		}
		// The acceptance bar: readers made progress during in-flight
		// compactions. On one CPU the compactor and readers time-share,
		// so the sample can legitimately be empty there.
		if p.Policy != "manual" && p.Rebuilds > 0 &&
			runtime.GOMAXPROCS(0) > 1 && p.ReadsDuringCompaction == 0 {
			t.Errorf("%s readers=%d: %d rebuilds but no reads completed during compaction",
				p.Policy, p.Readers, p.Rebuilds)
		}
	}
}
