package bench

import (
	"strings"
	"testing"
)

// TestRunRouterSmoke runs the hybrid-router sweep at reduced scale: every
// measured point is validated against reference ranks by Workload.Measure,
// so a passing run certifies router correctness end to end; the routing
// shape (≥ 2 distinct backends on a piecewise dataset) is the tentpole
// acceptance criterion.
func TestRunRouterSmoke(t *testing.T) {
	res, err := RunRouter(RouterConfig{N: 120_000, Queries: 6_000, Reps: 1, Shards: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct < 2 {
		t.Errorf("router picked %d distinct backends on the piecewise dataset, want >= 2", res.Distinct)
	}
	if len(res.Choices) != 12 {
		t.Errorf("choices = %d, want 12", len(res.Choices))
	}
	rns := res.RouterNs()
	name, best := res.BestHomogeneousNs()
	if rns <= 0 || best <= 0 {
		t.Fatalf("degenerate latencies: router %.1f, best %s %.1f", rns, name, best)
	}
	t.Logf("router %.1f ns vs best homogeneous %s %.1f ns (ratio %.2f)", rns, name, best, rns/best)
	csv := res.Grid().CSV()
	if !strings.HasPrefix(csv, "backend,lookup_ns,") || !strings.Contains(csv, "router,") {
		t.Errorf("grid malformed:\n%s", csv)
	}
	if ccsv := res.ChoicesGrid().CSV(); !strings.HasPrefix(ccsv, "shard,first_key,") {
		t.Errorf("choices grid malformed:\n%s", ccsv)
	}
}
