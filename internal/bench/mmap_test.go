package bench

import "testing"

// TestRunMmapSmoke runs the whole mmap experiment at small N: both
// backends restart three ways with probe-verified answers, the router
// first-touch pair is measured, and the budget sweep tiers the shard
// spans (RunMmap errors out on any verification failure).
func TestRunMmapSmoke(t *testing.T) {
	res, err := RunMmap(MmapConfig{N: 60_000, Queries: 2_000, Seed: 5, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loads) != 2 {
		t.Fatalf("got %d load points, want 2", len(res.Loads))
	}
	for _, p := range res.Loads {
		if p.ColdBuildMs <= 0 || p.HeapLoadMs <= 0 || p.MapLoadMs <= 0 || p.FileMBv2 <= 0 {
			t.Errorf("%s: implausible point %+v", p.Backend, p)
		}
	}
	if res.Touch.Shards == 0 || res.Touch.FirstPassNs <= 0 || res.Touch.SecondPassNs <= 0 {
		t.Errorf("implausible touch point %+v", res.Touch)
	}
	if len(res.Budget) != 4 {
		t.Fatalf("got %d budget rungs, want 4", len(res.Budget))
	}
	for _, b := range res.Budget {
		if b.ResidentSpans+b.ColdSpans != res.Touch.Shards {
			t.Errorf("budget %.2f: %d resident + %d cold != %d shards",
				b.BudgetFrac, b.ResidentSpans, b.ColdSpans, res.Touch.Shards)
		}
	}
	// A 10% budget must leave some shards cold; the full budget must
	// leave none.
	if res.Budget[0].ColdSpans == 0 {
		t.Error("10% budget left no shard cold")
	}
	if last := res.Budget[len(res.Budget)-1]; last.ColdSpans != 0 {
		t.Errorf("full budget left %d shards cold", last.ColdSpans)
	}
	if g := MmapLoadGrid(res.Loads); len(g.Rows) != len(res.Loads) {
		t.Error("load grid row count mismatch")
	}
	if g := MmapBudgetGrid(res.Budget); len(g.Rows) != len(res.Budget) {
		t.Error("budget grid row count mismatch")
	}
}
