package bench

import (
	"fmt"
	"strings"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Fig9Mode is one bar group of Fig. 9: a Shift-Table layer configuration.
type Fig9Mode struct {
	Label string
	// Build returns nil when the mode is "without Shift-Table".
	Config *core.Config
}

// Fig9Modes returns the paper's configurations: R-1 (full range pairs),
// S-1/S-10/S-100/S-1000 (midpoint layers with one entry per X records), and
// the bare model.
func Fig9Modes() []Fig9Mode {
	return []Fig9Mode{
		{Label: "R-1", Config: &core.Config{Mode: core.ModeRange}},
		{Label: "S-1", Config: &core.Config{Mode: core.ModeMidpoint}},
		{Label: "S-10", Config: &core.Config{Mode: core.ModeMidpoint, M: -10}},
		{Label: "S-100", Config: &core.Config{Mode: core.ModeMidpoint, M: -100}},
		{Label: "S-1000", Config: &core.Config{Mode: core.ModeMidpoint, M: -1000}},
		{Label: "none", Config: nil},
	}
}

// Fig9Cell is one (dataset, mode) measurement: latency and average error.
type Fig9Cell struct {
	LookupNs  float64
	AvgErr    float64
	SizeBytes int
}

// Fig9Result maps dataset → mode label → cell.
type Fig9Result struct {
	N     int
	Specs []dataset.Spec
	Modes []string
	Cells map[string]map[string]Fig9Cell
}

// RunFig9 reproduces Fig. 9: the effect of the Shift-Table layer size on
// lookup time (a) and prediction error (b), with the IM model hosting the
// layer as in §4.1.
func RunFig9(n, queries, reps int, seed int64) (*Fig9Result, error) {
	if n == 0 {
		n = 2_000_000
	}
	if queries == 0 {
		queries = 100_000
	}
	if reps == 0 {
		reps = 2
	}
	res := &Fig9Result{N: n, Specs: dataset.Fig9, Cells: map[string]map[string]Fig9Cell{}}
	for _, m := range Fig9Modes() {
		res.Modes = append(res.Modes, m.Label)
	}
	for _, spec := range res.Specs {
		keys64, err := dataset.Generate(spec.Name, spec.Bits, n, seed)
		if err != nil {
			return nil, err
		}
		var cells map[string]Fig9Cell
		if spec.Bits == 32 {
			cells, err = fig9Row(dataset.U32(keys64), queries, reps, seed)
		} else {
			cells, err = fig9Row(keys64, queries, reps, seed)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", spec, err)
		}
		res.Cells[spec.String()] = cells
	}
	return res, nil
}

func fig9Row[K interface{ ~uint32 | ~uint64 }](keys []K, queries, reps int, seed int64) (map[string]Fig9Cell, error) {
	w := NewWorkload(keys, queries, seed+1)
	model := cdfmodel.NewInterpolation(keys)
	out := make(map[string]Fig9Cell)
	for _, mode := range Fig9Modes() {
		var cell Fig9Cell
		if mode.Config == nil {
			ns, err := w.Measure(func(q K) int { return core.ModelFind(keys, model, q) }, reps)
			if err != nil {
				return nil, err
			}
			mean, _ := core.ModelError(keys, model)
			cell = Fig9Cell{LookupNs: ns, AvgErr: mean, SizeBytes: model.SizeBytes()}
		} else {
			cfg := *mode.Config
			if cfg.M < 0 { // encodes "one entry per X records"
				cfg.M = len(keys) / -cfg.M
				if cfg.M < 1 {
					cfg.M = 1
				}
			}
			tab, err := core.Build(keys, model, cfg)
			if err != nil {
				return nil, err
			}
			ns, err := w.Measure(tab.Find, reps)
			if err != nil {
				return nil, err
			}
			cell = Fig9Cell{LookupNs: ns, AvgErr: tab.MeasuredError(), SizeBytes: tab.SizeBytes()}
		}
		out[mode.Label] = cell
	}
	return out, nil
}

// Format renders the Fig. 9 result as two aligned tables (latency, error).
func (r *Fig9Result) Format() string {
	var b strings.Builder
	write := func(title string, get func(Fig9Cell) float64) {
		fmt.Fprintf(&b, "%s (N=%d)\n%-8s", title, r.N, "dataset")
		for _, m := range r.Modes {
			fmt.Fprintf(&b, "%10s", m)
		}
		b.WriteByte('\n')
		for _, spec := range r.Specs {
			fmt.Fprintf(&b, "%-8s", spec.String())
			for _, m := range r.Modes {
				fmt.Fprintf(&b, "%10.1f", get(r.Cells[spec.String()][m]))
			}
			b.WriteByte('\n')
		}
	}
	write("Fig. 9a reproduction: lookup time (ns) by Shift-Table layer size", func(c Fig9Cell) float64 { return c.LookupNs })
	write("Fig. 9b reproduction: avg error (records) by Shift-Table layer size", func(c Fig9Cell) float64 { return c.AvgErr })
	return b.String()
}
