package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kv"
)

// This file is the batched-throughput experiment: scalar Find vs the
// staged FindBatch pipeline vs the sharded FindBatchParallel, across batch
// sizes, datasets, and both layer modes (R and S). It extends the paper's
// latency evaluation with the serving-side question the ROADMAP asks:
// how many lookups per second does the index sustain when queries arrive
// in batches rather than one at a time?

// BatchConfig parameterises RunBatch.
type BatchConfig struct {
	// N is keys per dataset (0 = 2M).
	N int
	// Queries per measurement (0 = 1<<17).
	Queries int
	// Reps per measurement; best-of is reported (0 = 2).
	Reps int
	// Seed for datasets and workloads.
	Seed int64
	// BatchSizes to sweep (nil = 16, 64, 256, 1024, 4096).
	BatchSizes []int
	// Specs to run (nil = uden64, logn64, face64, osmc64).
	Specs []dataset.Spec
}

// BatchPoint is one (dataset, mode, batch size) measurement. Nanoseconds
// are per lookup; Mops are million lookups per second.
type BatchPoint struct {
	Dataset   string
	Mode      string
	BatchSize int

	ScalarNs   float64 // scalar Find baseline on the same workload
	BatchNs    float64 // FindBatch at this batch size
	ParallelNs float64 // FindBatchParallel at this batch size, GOMAXPROCS workers

	SpeedupBatch    float64 // ScalarNs / BatchNs
	SpeedupParallel float64 // ScalarNs / ParallelNs
}

// Mops converts a per-lookup latency to million lookups per second.
func Mops(nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return 1e3 / nsPerOp
}

// RunBatch measures the batched-vs-scalar throughput sweep.
func RunBatch(cfg BatchConfig) ([]BatchPoint, error) {
	if cfg.N == 0 {
		cfg.N = 2_000_000
	}
	if cfg.Queries == 0 {
		cfg.Queries = 1 << 17
	}
	if cfg.Reps == 0 {
		cfg.Reps = 2
	}
	if cfg.BatchSizes == nil {
		cfg.BatchSizes = []int{16, 64, 256, 1024, 4096}
	}
	if cfg.Specs == nil {
		cfg.Specs = []dataset.Spec{
			{Name: dataset.UDen, Bits: 64},
			{Name: dataset.LogN, Bits: 64},
			{Name: dataset.Face, Bits: 64},
			{Name: dataset.Osmc, Bits: 64},
		}
	}
	var out []BatchPoint
	for _, spec := range cfg.Specs {
		keys64, err := dataset.Generate(spec.Name, spec.Bits, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var pts []BatchPoint
		if spec.Bits == 32 {
			pts, err = batchRow(dataset.U32(keys64), spec.String(), cfg)
		} else {
			pts, err = batchRow(keys64, spec.String(), cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", spec, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

func batchRow[K kv.Key](keys []K, ds string, cfg BatchConfig) ([]BatchPoint, error) {
	w := NewWorkload(keys, cfg.Queries, cfg.Seed+1)
	model := cdfmodel.NewInterpolation(keys)
	var out []BatchPoint
	for _, mode := range []core.Mode{core.ModeRange, core.ModeMidpoint} {
		tab, err := core.Build(keys, model, core.Config{Mode: mode})
		if err != nil {
			return nil, err
		}
		scalarNs, err := w.Measure(tab.Find, cfg.Reps)
		if err != nil {
			return nil, err
		}
		for _, bs := range cfg.BatchSizes {
			batchNs, err := w.MeasureBatch(tab.FindBatch, bs, cfg.Reps)
			if err != nil {
				return nil, err
			}
			parNs, err := w.MeasureBatch(func(qs []K, res []int) []int {
				return tab.FindBatchParallel(qs, res, 0)
			}, bs, cfg.Reps)
			if err != nil {
				return nil, err
			}
			out = append(out, BatchPoint{
				Dataset:         ds,
				Mode:            mode.String(),
				BatchSize:       bs,
				ScalarNs:        scalarNs,
				BatchNs:         batchNs,
				ParallelNs:      parNs,
				SpeedupBatch:    scalarNs / batchNs,
				SpeedupParallel: scalarNs / parNs,
			})
		}
	}
	return out, nil
}

// MeasureBatch times a batched lower-bound function over the workload,
// feeding it the query stream in slices of batchSize, and returns
// nanoseconds per lookup. Every result is validated against the reference
// ranks first, so a benchmark can never silently measure a broken batch
// path.
func (w *Workload[K]) MeasureBatch(findBatch func(qs []K, out []int) []int, batchSize, reps int) (nsPerOp float64, err error) {
	if batchSize < 1 {
		return 0, fmt.Errorf("bench: invalid batch size %d", batchSize)
	}
	if reps < 1 {
		reps = 1
	}
	out := make([]int, batchSize)
	// Validation + warmup pass.
	for base := 0; base < len(w.Queries); base += batchSize {
		end := base + batchSize
		if end > len(w.Queries) {
			end = len(w.Queries)
		}
		res := findBatch(w.Queries[base:end], out[:end-base])
		for i, r := range res {
			if r != int(w.Expect[base+i]) {
				return 0, fmt.Errorf("bench: wrong batch result for query %v: got %d, want %d",
					w.Queries[base+i], r, w.Expect[base+i])
			}
		}
	}
	var sink int
	best := 1e300
	for r := 0; r < reps; r++ {
		start := time.Now()
		for base := 0; base < len(w.Queries); base += batchSize {
			end := base + batchSize
			if end > len(w.Queries) {
				end = len(w.Queries)
			}
			res := findBatch(w.Queries[base:end], out[:end-base])
			sink += res[len(res)-1]
		}
		elapsed := float64(time.Since(start).Nanoseconds())
		if perOp := elapsed / float64(len(w.Queries)); perOp < best {
			best = perOp
		}
	}
	if sink == -1 {
		panic("unreachable; defeats dead-code elimination")
	}
	return best, nil
}

// FormatBatch renders the throughput sweep as an aligned table.
func FormatBatch(pts []BatchPoint) string {
	var b strings.Builder
	b.WriteString("Batched query throughput: scalar Find vs FindBatch vs FindBatchParallel\n")
	b.WriteString("(ns per lookup; speedups are over the scalar path on the same workload)\n\n")
	fmt.Fprintf(&b, "%-8s %-4s %7s %9s %9s %9s %8s %8s %9s %9s\n",
		"dataset", "mode", "batch", "scalar", "batch", "parallel", "x-batch", "x-par", "Mops-b", "Mops-p")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8s %-4s %7d %9.1f %9.1f %9.1f %7.2fx %7.2fx %9.1f %9.1f\n",
			p.Dataset, p.Mode, p.BatchSize, p.ScalarNs, p.BatchNs, p.ParallelNs,
			p.SpeedupBatch, p.SpeedupParallel, Mops(p.BatchNs), Mops(p.ParallelNs))
	}
	return b.String()
}
