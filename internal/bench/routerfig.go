package bench

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/router"
)

// RouterConfig controls the hybrid-router evaluation (`figures -fig
// router`): the cost-model-routed index over a piecewise dataset versus
// every homogeneous candidate backend over the same keys.
type RouterConfig struct {
	N       int
	Queries int
	Reps    int
	Shards  int
	Seed    int64
	// Backends is the candidate slate, nil meaning the router default.
	Backends []string
}

func (c *RouterConfig) defaults() {
	if c.N == 0 {
		c.N = 2_000_000
	}
	if c.Queries == 0 {
		c.Queries = 100_000
	}
	if c.Reps == 0 {
		c.Reps = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// RouterPoint is one measured configuration: the router itself or one
// homogeneous backend.
type RouterPoint struct {
	Backend   string
	LookupNs  float64
	BatchNs   float64 // FindBatch over the whole workload; 0 when scalar-only
	SizeBytes int
	BuildMs   float64
	NAReason  string
}

// RouterResult is the full sweep plus the router's shard decisions.
type RouterResult struct {
	N       int
	Points  []RouterPoint
	Choices []router.Choice
	// Distinct is how many different backends the router selected.
	Distinct int
}

// RunRouter builds the hybrid router over a piecewise dataset (smooth +
// drifted + duplicate segments), measures it against each homogeneous
// candidate, and reports the per-shard routing decisions. The router's
// L(s) curve is measured on this machine first (§2.3), so the routing
// argmin uses real constants rather than the analytic stand-in.
func RunRouter(cfg RouterConfig) (*RouterResult, error) {
	cfg.defaults()
	keys := dataset.Piecewise(cfg.N, cfg.Seed)
	w := NewWorkload(keys, cfg.Queries, cfg.Seed+1)

	maxWin := len(keys) / 4
	if maxWin < 2 {
		maxWin = 2
	}
	l := FitLatencyFn(MeasureLatencyCurve(keys, maxWin, 2_000, cfg.Seed))

	res := &RouterResult{N: len(keys)}
	rcfg := router.Config{Shards: cfg.Shards, Backends: cfg.Backends, Latency: l, Seed: cfg.Seed}
	var r *router.Router[uint64]
	buildMs, err := MeasureBuild(func() error {
		var err error
		r, err = router.New(keys, rcfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Choices = r.Choices()
	res.Distinct = r.DistinctBackends()
	pt, err := measureRouterPoint("router", w, r, buildMs, cfg.Reps)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, pt)

	candidates := rcfg.Backends
	if candidates == nil {
		candidates = router.DefaultBackends()
	}
	for _, name := range candidates {
		be, err := index.Get[uint64](name)
		if err != nil {
			return nil, err
		}
		if reason := be.Applicable(keys); reason != "" {
			res.Points = append(res.Points, RouterPoint{Backend: name, NAReason: reason})
			continue
		}
		var ix index.Index[uint64]
		buildMs, err := MeasureBuild(func() error {
			var err error
			ix, err = be.Build(keys)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", name, err)
		}
		pt, err := measureRouterPoint(name, w, ix, buildMs, cfg.Reps)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// measureRouterPoint times scalar and batched lookups of one index over
// the validated workload.
func measureRouterPoint(name string, w *Workload[uint64], ix index.Index[uint64], buildMs float64, reps int) (RouterPoint, error) {
	ns, err := w.Measure(ix.Find, reps)
	if err != nil {
		return RouterPoint{}, fmt.Errorf("measuring %s: %w", name, err)
	}
	pt := RouterPoint{Backend: name, LookupNs: ns, SizeBytes: ix.SizeBytes(), BuildMs: buildMs}
	if bf, ok := ix.(index.BatchFinder[uint64]); ok {
		batchNs, err := w.MeasureBatch(bf.FindBatch, 4096, reps)
		if err != nil {
			return RouterPoint{}, fmt.Errorf("batch-measuring %s: %w", name, err)
		}
		pt.BatchNs = batchNs
	}
	return pt, nil
}

// BestHomogeneousNs returns the fastest non-router scalar latency.
func (r *RouterResult) BestHomogeneousNs() (string, float64) {
	bestName, best := "", 0.0
	for _, p := range r.Points {
		if p.Backend == "router" || p.NAReason != "" {
			continue
		}
		if best == 0 || p.LookupNs < best {
			bestName, best = p.Backend, p.LookupNs
		}
	}
	return bestName, best
}

// RouterNs returns the router's scalar latency.
func (r *RouterResult) RouterNs() float64 {
	for _, p := range r.Points {
		if p.Backend == "router" {
			return p.LookupNs
		}
	}
	return 0
}

// Grid lays the sweep out for the shared emitters.
func (r *RouterResult) Grid() *Grid {
	g := NewGrid("backend", "lookup_ns", "batch_ns", "size_bytes", "build_ms")
	for _, p := range r.Points {
		if p.NAReason != "" {
			g.Row(p.Backend, "NA", "NA", "NA", "NA")
			continue
		}
		g.Rowf([]string{"%s", "%.1f", "%.1f", "%d", "%.1f"},
			p.Backend, p.LookupNs, p.BatchNs, p.SizeBytes, p.BuildMs)
	}
	return g
}

// ChoicesGrid lays the routing table out for the shared emitters.
func (r *RouterResult) ChoicesGrid() *Grid {
	g := NewGrid("shard", "first_key", "len", "backend", "est_ns")
	for i, c := range r.Choices {
		g.Rowf([]string{"%d", "%d", "%d", "%s", "%.0f"},
			i, c.FirstKey, c.Len, c.Backend, c.EstNs)
	}
	return g
}
