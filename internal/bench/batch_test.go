package bench

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

// TestRunBatchSmall validates the throughput-sweep plumbing at reduced
// scale: every (dataset, mode, batch size) cell is present, validated
// against the reference ranks (MeasureBatch fails on any wrong result),
// and the formatter renders it.
func TestRunBatchSmall(t *testing.T) {
	pts, err := RunBatch(BatchConfig{
		N:          30_000,
		Queries:    4_096,
		Reps:       1,
		Seed:       3,
		BatchSizes: []int{16, 256},
		Specs: []dataset.Spec{
			{Name: dataset.UDen, Bits: 64},
			{Name: dataset.Face, Bits: 32},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(pts) != want { // datasets x modes x batch sizes
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		if p.BatchNs <= 0 || p.ScalarNs <= 0 || p.ParallelNs <= 0 {
			t.Fatalf("non-positive timing in %+v", p)
		}
		seen[p.Dataset+"/"+p.Mode] = true
	}
	for _, k := range []string{"uden64/R", "uden64/S", "face32/R", "face32/S"} {
		if !seen[k] {
			t.Fatalf("missing cell %s", k)
		}
	}
	out := FormatBatch(pts)
	if !strings.Contains(out, "uden64") || !strings.Contains(out, "batch") {
		t.Fatalf("formatter output missing expected content:\n%s", out)
	}
}

// TestMeasureBatchValidates ensures MeasureBatch rejects a broken batch
// implementation instead of timing it.
func TestMeasureBatchValidates(t *testing.T) {
	keys := dataset.MustGenerate(dataset.UDen, 64, 10_000, 1)
	w := NewWorkload(keys, 512, 2)
	_, err := w.MeasureBatch(func(qs []uint64, out []int) []int {
		for i := range qs {
			out[i] = 0 // wrong on purpose
		}
		return out[:len(qs)]
	}, 64, 1)
	if err == nil {
		t.Fatal("MeasureBatch accepted a broken batch function")
	}
}
