package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/kv"
)

// Workload is a prepared query batch over one dataset. Queries sample the
// indexed keys uniformly, as in SOSD and the paper's Table 2 (lookups of
// existing keys; §3.5 assumes the query distribution matches the data).
type Workload[K kv.Key] struct {
	Keys    []K
	Queries []K
	// Expect[i] is the reference lower-bound rank for Queries[i]: every
	// measured lookup is validated against it, so a benchmark can never
	// silently measure a broken index.
	Expect []int32
}

// NewWorkload samples nq queries from the keys.
func NewWorkload[K kv.Key](keys []K, nq int, seed int64) *Workload[K] {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload[K]{
		Keys:    keys,
		Queries: make([]K, nq),
		Expect:  make([]int32, nq),
	}
	for i := range w.Queries {
		q := keys[rng.Intn(len(keys))]
		w.Queries[i] = q
		w.Expect[i] = int32(kv.LowerBound(keys, q))
	}
	return w
}

// Measure times find over the workload and returns nanoseconds per lookup.
// Every result is validated against the reference; it returns an error on
// the first mismatch. Runs the batch `reps` times (first pass is warmup
// when reps > 1).
func (w *Workload[K]) Measure(find func(q K) int, reps int) (nsPerOp float64, err error) {
	if reps < 1 {
		reps = 1
	}
	// Validation + warmup pass.
	for i, q := range w.Queries {
		if got := find(q); got != int(w.Expect[i]) {
			return 0, fmt.Errorf("bench: wrong result for query %v: got %d, want %d", q, got, w.Expect[i])
		}
	}
	var sink int
	best := 1e300
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, q := range w.Queries {
			sink += find(q)
		}
		elapsed := float64(time.Since(start).Nanoseconds())
		if perOp := elapsed / float64(len(w.Queries)); perOp < best {
			best = perOp
		}
	}
	if sink == -1 {
		panic("unreachable; defeats dead-code elimination")
	}
	return best, nil
}

// MeasureBuild times a build function, returning milliseconds.
func MeasureBuild(build func() error) (ms float64, err error) {
	start := time.Now()
	if err := build(); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

// NewZipfWorkload samples queries from the keys with a Zipf distribution
// over positions (skew parameter s > 1; higher is more skewed). The paper's
// error estimate (Eq. 8) assumes queries match the data distribution; a
// skewed workload concentrates lookups on few partitions, which caching
// rewards — this workload quantifies that effect (see
// BenchmarkWorkloadSkew).
func NewZipfWorkload[K kv.Key](keys []K, nq int, s float64, seed int64) *Workload[K] {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(len(keys)-1))
	w := &Workload[K]{
		Keys:    keys,
		Queries: make([]K, nq),
		Expect:  make([]int32, nq),
	}
	// Scatter the Zipf ranks across the key space deterministically so the
	// hot set is not simply a prefix of the array.
	scatter := uint64(len(keys))/2 + 1
	for i := range w.Queries {
		pos := int(zipf.Uint64() * scatter % uint64(len(keys)))
		q := keys[pos]
		w.Queries[i] = q
		w.Expect[i] = int32(kv.LowerBound(keys, q))
	}
	return w
}
