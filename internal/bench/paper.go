package bench

import "fmt"

// This file encodes the paper's published numbers so the report generator
// (cmd/report) can put measured results side by side with them and check
// the shape claims mechanically.

// PaperNA marks a Table 2 cell the paper reports as N/A.
const PaperNA = -1

// PaperTable2 holds the paper's Table 2 (lookup nanoseconds on an i7-6700
// with 200M keys), keyed by dataset then method. Method names follow this
// repository's Methods(); PGM and RMI+ST are extensions with no paper
// column.
var PaperTable2 = map[string]map[string]float64{
	"logn32": {"ART": PaperNA, "FAST": 230, "RBS": 385, "B+tree": 375, "BS": 624, "TIP": 551, "IS": PaperNA, "IM": 1384, "IM+ST": 166, "RMI": 73.9, "RS": 83.9, "RS+ST": 143.5},
	"norm32": {"ART": 173, "FAST": 197, "RBS": 267, "B+tree": 390, "BS": 655, "TIP": 671, "IS": PaperNA, "IM": 1479, "IM+ST": 88.2, "RMI": 51.5, "RS": 60.3, "RS+ST": 96.4},
	"uden32": {"ART": 99.4, "FAST": 196, "RBS": 235, "B+tree": 389, "BS": 654, "TIP": 126, "IS": 32.3, "IM": 38.6, "IM+ST": 67.5, "RMI": 38.1, "RS": 47.8, "RS+ST": 72.3},
	"uspr32": {"ART": PaperNA, "FAST": 198, "RBS": 230, "B+tree": 390, "BS": 654, "TIP": 298, "IS": 321, "IM": 425, "IM+ST": 89.7, "RMI": 141, "RS": 166, "RS+ST": 153.5},
	"logn64": {"ART": 238, "FAST": PaperNA, "RBS": 622, "B+tree": 427, "BS": 674, "TIP": 377, "IS": PaperNA, "IM": 1075, "IM+ST": 376, "RMI": 132, "RS": 109, "RS+ST": 151.0},
	"norm64": {"ART": 214, "FAST": PaperNA, "RBS": 317, "B+tree": 427, "BS": 672, "TIP": 705, "IS": PaperNA, "IM": 1615, "IM+ST": 88.6, "RMI": 51.7, "RS": 61.8, "RS+ST": 93.2},
	"uden64": {"ART": 104, "FAST": PaperNA, "RBS": 255, "B+tree": 428, "BS": 670, "TIP": 142, "IS": 34.8, "IM": 40.4, "IM+ST": 67.4, "RMI": 39.8, "RS": 47.9, "RS+ST": 71.8},
	"uspr64": {"ART": 216, "FAST": PaperNA, "RBS": 244, "B+tree": 427, "BS": 673, "TIP": 329, "IS": 338, "IM": 472, "IM+ST": 92.8, "RMI": 145, "RS": 182, "RS+ST": 154.6},
	"amzn32": {"ART": PaperNA, "FAST": 208, "RBS": 243, "B+tree": 393, "BS": 658, "TIP": 569, "IS": 3228, "IM": 1524, "IM+ST": 99.5, "RMI": 185, "RS": 236, "RS+ST": 110.8},
	"face32": {"ART": 179, "FAST": 203, "RBS": 238, "B+tree": 388, "BS": 654, "TIP": 717, "IS": 792, "IM": 861, "IM+ST": 103, "RMI": 213, "RS": 310, "RS+ST": 142.8},
	"amzn64": {"ART": PaperNA, "FAST": PaperNA, "RBS": 284, "B+tree": 428, "BS": 676, "TIP": 578, "IS": 3510, "IM": 1575, "IM+ST": 105, "RMI": 189, "RS": 238, "RS+ST": 119.3},
	"face64": {"ART": 290, "FAST": PaperNA, "RBS": 257, "B+tree": 427, "BS": 671, "TIP": 925, "IS": 1257, "IM": 918, "IM+ST": 149, "RMI": 247, "RS": 344, "RS+ST": 204.1},
	"osmc64": {"ART": PaperNA, "FAST": PaperNA, "RBS": 410, "B+tree": 428, "BS": 675, "TIP": 4617, "IS": PaperNA, "IM": 1462, "IM+ST": 194, "RMI": 297, "RS": 339, "RS+ST": 177.2},
	"wiki64": {"ART": PaperNA, "FAST": PaperNA, "RBS": 271, "B+tree": 437, "BS": 686, "TIP": 767, "IS": 5867, "IM": 1687, "IM+ST": 94.2, "RMI": 172, "RS": 191, "RS+ST": 124.1},
}

// PaperRealWorld lists the datasets the paper's headline claim (abstract,
// §4.1: "outperforms the RMI learned index by 1.5X to 2X on all datasets")
// covers.
var PaperRealWorld = []string{"amzn32", "face32", "amzn64", "face64", "osmc64", "wiki64"}

// PaperSpeedupOverRMI returns the paper's IM+ST speedup over RMI for a
// real-world dataset (the 1.5–2× headline claim).
func PaperSpeedupOverRMI(ds string) float64 {
	row := PaperTable2[ds]
	if row == nil || row["IM+ST"] <= 0 || row["RMI"] <= 0 {
		return 0
	}
	return row["RMI"] / row["IM+ST"]
}

// ShapeCheck is one mechanically-verified qualitative claim.
type ShapeCheck struct {
	ID    string
	Claim string
	Paper string
	Ours  string
	Holds bool
}

// CheckTable2Shape evaluates the paper's qualitative Table 2 claims against
// a measured result.
func CheckTable2Shape(res *Table2Result) []ShapeCheck {
	var out []ShapeCheck
	cell := func(row Table2Row, m string) (float64, bool) {
		c, ok := row.Cells[m]
		if !ok || c.NA() {
			return 0, false
		}
		return c.Ns, true
	}
	for _, row := range res.Rows {
		ds := row.Spec.String()
		isReal := contains(PaperRealWorld, ds)
		st, okST := cell(row, "IM+ST")
		rmi, okRMI := cell(row, "RMI")
		im, okIM := cell(row, "IM")
		bs, okBS := cell(row, "BS")
		if isReal && okST && okRMI {
			out = append(out, ShapeCheck{
				ID:    "T2-rmi-" + ds,
				Claim: "IM+ST beats RMI on real-world data (abstract: 1.5-2x)",
				Paper: ratio(PaperSpeedupOverRMI(ds)),
				Ours:  ratio(rmi / st),
				Holds: st < rmi,
			})
		}
		if isReal && okST && okIM {
			out = append(out, ShapeCheck{
				ID:    "T2-im-" + ds,
				Claim: "the layer rescues the dummy model on real-world data",
				Paper: ratio(PaperTable2[ds]["IM"] / PaperTable2[ds]["IM+ST"]),
				Ours:  ratio(im / st),
				Holds: st < im,
			})
		}
		if isReal && okST && okBS {
			out = append(out, ShapeCheck{
				ID:    "T2-bs-" + ds,
				Claim: "IM+ST beats binary search on real-world data",
				Paper: ratio(PaperTable2[ds]["BS"] / PaperTable2[ds]["IM+ST"]),
				Ours:  ratio(bs / st),
				Holds: st < bs,
			})
		}
		if ds == "uden32" || ds == "uden64" {
			if okST && okIM {
				out = append(out, ShapeCheck{
					ID:    "T2-uden-" + ds,
					Claim: "on dense uniform data the bare model wins (layer correctly disabled, §4.1)",
					Paper: "IM 38.6/40.4 vs IM+ST 67.5/67.4",
					Ours:  fmtNs(im) + " vs " + fmtNs(st),
					Holds: im < st,
				})
			}
		}
	}
	return out
}

func ratio(v float64) string {
	if v <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", v)
}

func fmtNs(v float64) string { return fmt.Sprintf("%.1f ns", v) }
