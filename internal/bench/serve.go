package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
	"repro/internal/replica"
	"repro/internal/serve"
)

// This file is the serving-tier experiment (DESIGN.md §11): end-to-end
// HTTP lookup latency and throughput through a live replica, coalesced
// waves versus per-request dispatch, while the primary publishes new
// versions mid-run and the replica keeps syncing underneath the
// handler. Every response is verified against a scan-derived oracle for
// the exact version tag that produced it, so the numbers are only
// reported for bit-correct serving.

// ServeConfig parameterises RunServe.
type ServeConfig struct {
	// N is the base key count (0 = 500k).
	N int
	// Pool is the query pool size (0 = 2048).
	Pool int
	// Workers is the client concurrency per phase (0 = 16).
	Workers int
	// Rate is the open-loop arrival rate in QPS (0 = 1500).
	Rate float64
	// Duration is the length of each measured phase (0 = 2s).
	Duration time.Duration
	// PubEvery is the background publish cadence (0 = 300ms).
	PubEvery time.Duration
	// SyncEvery is the replica sync cadence (0 = 100ms).
	SyncEvery time.Duration
	// Seed for the dataset, writes, and query pool.
	Seed int64
	// Dir hosts the store and replica dirs ("" = fresh temp, removed).
	Dir string
}

// ServePoint is one measured phase: a (mode, loop) combination.
type ServePoint struct {
	Mode          string  `json:"mode"` // "coalesce" or "direct"
	Loop          string  `json:"loop"` // "closed" (throughput) or "open" (latency)
	Completed     uint64  `json:"completed"`
	Errors        uint64  `json:"errors"`
	Rejected      uint64  `json:"rejected"`
	Verified      uint64  `json:"verified"`
	Incorrect     uint64  `json:"incorrect"`
	Versions      int     `json:"versions_observed"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50us         int64   `json:"p50_us"`
	P99us         int64   `json:"p99_us"`
	P999us        int64   `json:"p999_us"`
	MaxUs         int64   `json:"max_us"`
	MeanWave      float64 `json:"mean_wave"` // 0 for direct mode
	MaxWave       int     `json:"max_wave"`
}

// ServeResult is the whole experiment, in the BENCH_serve.json shape the
// CI smoke and EXPERIMENTS.md reference.
type ServeResult struct {
	N          int          `json:"n"`
	Pool       int          `json:"pool"`
	Workers    int          `json:"workers"`
	RateQPS    float64      `json:"rate_qps"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Published  uint64       `json:"published_versions"`
	Points     []ServePoint `json:"points"`
	// CoalesceSpeedup is closed-loop coalesced throughput over closed-loop
	// direct throughput — the headline "does batching across connections
	// pay for itself" ratio.
	CoalesceSpeedup float64 `json:"coalesce_speedup"`
}

// RunServe stands up the full serving stack in-process — store,
// publisher, replica, hardened HTTP server on a loopback listener — and
// drives it with closed-loop (throughput) and open-loop (latency)
// clients in both dispatch modes while versions keep publishing.
func RunServe(cfg ServeConfig) (*ServeResult, error) {
	if cfg.N == 0 {
		cfg.N = 500_000
	}
	if cfg.Pool == 0 {
		cfg.Pool = 2048
	}
	if cfg.Workers == 0 {
		cfg.Workers = 16
	}
	if cfg.Rate == 0 {
		cfg.Rate = 1500
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.PubEvery == 0 {
		cfg.PubEvery = 300 * time.Millisecond
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 100 * time.Millisecond
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "serve-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	storeDir := dir + "/store"
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	keys, err := dataset.Generate(dataset.Face, 64, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	primary, err := concurrent.New(keys, concurrent.Config{
		Policy: concurrent.CompactionPolicy{Kind: concurrent.Manual},
	})
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	store := replica.DirStore{Dir: storeDir}
	pub, err := replica.NewPublisher(ctx, store, primary, replica.PublisherConfig{Spool: dir})
	if err != nil {
		return nil, err
	}

	top := keys[len(keys)-1] + 2
	pool := serve.QueryPool(cfg.Seed+1, cfg.Pool, top)

	// Version oracle: reference ranks recorded BEFORE each Publish, via
	// the scan path — the same discipline shiftrepl -oracle uses over the
	// store, held in-process here.
	var oracleMu sync.RWMutex
	oracles := make(map[uint64][]int)
	record := func() {
		oracleMu.Lock()
		oracles[pub.Version()+1] = serve.OracleRanks(primary.Published(), pool)
		oracleMu.Unlock()
	}
	lookup := func(v uint64) []int {
		oracleMu.RLock()
		defer oracleMu.RUnlock()
		return oracles[v]
	}

	record()
	if _, _, err := pub.Publish(ctx); err != nil {
		return nil, err
	}
	r, err := replica.NewReplica[uint64](store, dir+"/replica", replica.ReplicaConfig{})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := r.Sync(ctx); err != nil {
		return nil, err
	}

	// Background publisher: writes + oracle + publish on a cadence, with
	// a compaction (hence a full snapshot and a base swap on the replica)
	// every 4th version. Publishing is what makes the measurement honest:
	// the serving path is racing live installs the whole time.
	var published atomic.Uint64
	var bgErr atomic.Value
	var bg sync.WaitGroup
	bg.Add(2)
	go func() {
		defer bg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 3))
		writes := cfg.N / 200
		for i := 1; ; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(cfg.PubEvery):
			}
			for w := 0; w < writes; w++ {
				if w%4 == 0 {
					primary.Delete(keys[rng.Intn(len(keys))])
				} else {
					primary.Insert(rng.Uint64() % top)
				}
			}
			if i%4 == 0 {
				if err := primary.Compact(); err != nil {
					bgErr.Store(err)
					return
				}
			}
			record()
			if _, _, err := pub.Publish(ctx); err != nil {
				if ctx.Err() == nil {
					bgErr.Store(err)
				}
				return
			}
			published.Add(1)
		}
	}()
	go func() {
		defer bg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(cfg.SyncEvery):
			}
			if err := r.Sync(ctx); err != nil && ctx.Err() == nil {
				bgErr.Store(err)
				return
			}
		}
	}()

	res := &ServeResult{
		N: cfg.N, Pool: cfg.Pool, Workers: cfg.Workers, RateQPS: cfg.Rate,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	// Closed loop (the throughput probe) runs in order-balanced
	// repetitions (D/C, C/D, D/C, …) so background publish+compaction
	// stalls land on both modes evenly regardless of where they fall in
	// the cadence, then each mode's reps merge into one reported point.
	const reps = 4
	merged := map[string]*phaseRun{}
	for rep := 0; rep < reps; rep++ {
		order := []string{"direct", "coalesce"}
		if rep%2 == 1 {
			order = []string{"coalesce", "direct"}
		}
		for _, mode := range order {
			run, err := servePhase(ctx, r, pool, lookup, mode, "closed", cfg)
			if err != nil {
				return nil, err
			}
			if run.pt.Incorrect > 0 {
				return nil, fmt.Errorf("serve bench: %d incorrect responses in %s/closed", run.pt.Incorrect, mode)
			}
			if m := merged[mode]; m == nil {
				merged[mode] = run
			} else {
				m.merge(run)
			}
		}
	}
	for _, mode := range []string{"direct", "coalesce"} {
		res.Points = append(res.Points, *merged[mode].finish())
	}
	for _, mode := range []string{"direct", "coalesce"} {
		run, err := servePhase(ctx, r, pool, lookup, mode, "open", cfg)
		if err != nil {
			return nil, err
		}
		if run.pt.Incorrect > 0 {
			return nil, fmt.Errorf("serve bench: %d incorrect responses in %s/open", run.pt.Incorrect, mode)
		}
		res.Points = append(res.Points, *run.finish())
	}
	cancel()
	bg.Wait()
	if err, _ := bgErr.Load().(error); err != nil {
		return nil, fmt.Errorf("serve bench: background publish/sync: %w", err)
	}
	res.Published = published.Load()
	if d := merged["direct"].pt.ThroughputQPS; d > 0 {
		res.CoalesceSpeedup = merged["coalesce"].pt.ThroughputQPS / d
	}
	return res, nil
}

// phaseRun carries one phase's point plus the raw latencies and elapsed
// time needed to merge repetitions.
type phaseRun struct {
	pt      *ServePoint
	lat     []int64
	elapsed time.Duration
	reps    int // additional repetitions merged in
}

// merge folds another repetition of the same (mode, loop) into this one.
func (p *phaseRun) merge(o *phaseRun) {
	p.pt.Completed += o.pt.Completed
	p.pt.Errors += o.pt.Errors
	p.pt.Rejected += o.pt.Rejected
	p.pt.Verified += o.pt.Verified
	p.pt.Incorrect += o.pt.Incorrect
	if o.pt.Versions > p.pt.Versions {
		p.pt.Versions = o.pt.Versions
	}
	// MeanWave re-derives from summed totals via the stash fields.
	p.pt.MeanWave += o.pt.MeanWave // temporarily holds per-rep sums; finish() averages
	if o.pt.MaxWave > p.pt.MaxWave {
		p.pt.MaxWave = o.pt.MaxWave
	}
	p.lat = append(p.lat, o.lat...)
	p.elapsed += o.elapsed
	p.reps++
}

// finish computes the derived fields (throughput, percentiles) over the
// merged repetitions.
func (p *phaseRun) finish() *ServePoint {
	sort.Slice(p.lat, func(i, j int) bool { return p.lat[i] < p.lat[j] })
	p.pt.ThroughputQPS = float64(p.pt.Completed) / p.elapsed.Seconds()
	p.pt.P50us, p.pt.P99us, p.pt.P999us = pctl(p.lat, 0.50), pctl(p.lat, 0.99), pctl(p.lat, 0.999)
	if n := len(p.lat); n > 0 {
		p.pt.MaxUs = p.lat[n-1]
	}
	if p.reps > 0 {
		p.pt.MeanWave /= float64(p.reps + 1)
	}
	return p.pt
}

// servePhase runs one (mode, loop) combination against a fresh hardened
// server over the shared live replica.

// sleepCtx pauses for d or until ctx is cancelled, reporting whether the
// full pause elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func servePhase(ctx context.Context, r *replica.Replica[uint64], pool []uint64,
	lookup func(uint64) []int, mode, loop string, cfg ServeConfig) (*phaseRun, error) {

	coalesce := mode == "coalesce"
	var co *serve.Coalescer[uint64]
	if coalesce {
		co = serve.NewCoalescer(r.Index(), serve.CoalescerConfig{Queue: 4096})
		defer co.Close()
	}
	h := serve.NewHandler(r.Index(), co, serve.HandlerConfig{
		Coalesce: coalesce, MaxInflight: 4 * cfg.Workers,
	}, nil)
	srv := serve.NewHTTPServer("", h, serve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sctx, scancel := context.WithCancel(ctx)
	srvErr := make(chan error, 1)
	go func() { srvErr <- serve.RunListener(sctx, srv, ln, 5*time.Second, nil) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 2 * cfg.Workers},
	}

	pt := &ServePoint{Mode: mode, Loop: loop}
	var completed, errors, rejected, verified, incorrect atomic.Uint64
	versions := make(map[uint64]bool)
	var mu sync.Mutex
	var lat []int64

	fire := func(i uint64) bool {
		idx := int(i % uint64(len(pool)))
		resp, err := client.Get(fmt.Sprintf("%s/v1/find?key=%d", base, pool[idx]))
		if err != nil {
			errors.Add(1)
			return false
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected.Add(1)
			return false
		default:
			errors.Add(1)
			return false
		}
		var fr struct {
			Rank    int    `json:"rank"`
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			errors.Add(1)
			return false
		}
		completed.Add(1)
		want := lookup(fr.Version)
		mu.Lock()
		versions[fr.Version] = true
		mu.Unlock()
		if want == nil || fr.Rank != want[idx] {
			incorrect.Add(1)
		} else {
			verified.Add(1)
		}
		return true
	}
	record := func(us int64) {
		mu.Lock()
		lat = append(lat, us)
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	if loop == "open" {
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		total := int(float64(cfg.Duration) / float64(interval))
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < total; i += cfg.Workers {
					sched := start.Add(time.Duration(i) * interval)
					if d := time.Until(sched); d > 0 {
						if !sleepCtx(ctx, d) {
							return
						}
					}
					if fire(uint64(i)*2654435761 + uint64(w)) {
						// Latency from SCHEDULED time: queueing delay is
						// charged to the server (no coordinated omission).
						record(time.Since(sched).Microseconds())
					}
				}
			}(w)
		}
	} else {
		deadline := start.Add(cfg.Duration)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := uint64(w); time.Now().Before(deadline); i += uint64(cfg.Workers) {
					t0 := time.Now()
					if fire(i*2654435761 + uint64(w)) {
						record(time.Since(t0).Microseconds())
					}
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	scancel()
	if err := <-srvErr; err != nil {
		return nil, fmt.Errorf("serve bench: server (%s/%s): %w", mode, loop, err)
	}

	pt.Completed = completed.Load()
	pt.Errors = errors.Load()
	pt.Rejected = rejected.Load()
	pt.Verified = verified.Load()
	pt.Incorrect = incorrect.Load()
	pt.Versions = len(versions)
	if co != nil {
		st := co.Stats()
		if st.Waves > 0 {
			pt.MeanWave = float64(st.Batched) / float64(st.Waves)
		}
		pt.MaxWave = st.MaxWave
	}
	return &phaseRun{pt: pt, lat: lat, elapsed: elapsed}, nil
}

// pctl reads a percentile off a sorted latency slice.
func pctl(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Grid renders the per-phase table.
func (r *ServeResult) Grid() *Grid {
	g := NewGrid("mode", "loop", "throughput_qps", "p50_us", "p99_us", "p999_us", "completed", "verified", "rejected", "mean_wave")
	verbs := []string{"%s", "%s", "%.0f", "%d", "%d", "%d", "%d", "%d", "%d", "%.1f"}
	for _, p := range r.Points {
		g.Rowf(verbs, p.Mode, p.Loop, p.ThroughputQPS, p.P50us, p.P99us, p.P999us, p.Completed, p.Verified, p.Rejected, p.MeanWave)
	}
	return g
}

// WriteJSON emits the result in the BENCH_serve.json shape.
func (r *ServeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
