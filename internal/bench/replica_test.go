package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunReplicationSmoke runs the replication sweep at small N: every
// synced version is oracle-verified inside RunReplication, so a clean
// return plus plausible numbers is the assertion.
func TestRunReplicationSmoke(t *testing.T) {
	res, err := RunReplication(ReplicationConfig{
		N: 40_000, Rounds: 5, Queries: 500, Seed: 3, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 { // base + 5 rounds
		t.Fatalf("got %d points, want 6", len(res.Points))
	}
	if res.Points[0].Kind != "full" {
		t.Errorf("first publish was %q, want full", res.Points[0].Kind)
	}
	fulls, deltas := 0, 0
	for _, p := range res.Points {
		if p.Verified == 0 || p.SyncMs < 0 || p.ArtifactKB <= 0 {
			t.Errorf("implausible point %+v", p)
		}
		if p.Kind == "full" {
			fulls++
		} else {
			deltas++
		}
	}
	if fulls < 2 || deltas < 3 {
		t.Errorf("expected fulls and deltas in the mix, got %d/%d", fulls, deltas)
	}
	if res.DeltaKB <= 0 || res.FullKB <= res.DeltaKB {
		t.Errorf("deltas should be smaller than fulls: full %.1f KB, delta %.1f KB", res.FullKB, res.DeltaKB)
	}
	if res.WarmVersion != res.Points[len(res.Points)-1].Version {
		t.Errorf("warm restart at version %d, want %d", res.WarmVersion, res.Points[len(res.Points)-1].Version)
	}
	if g := res.Grid(); len(g.Rows) != len(res.Points) {
		t.Error("grid row count mismatch")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ReplicationResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_replica.json shape does not round-trip: %v", err)
	}
	if back.WarmVersion != res.WarmVersion || len(back.Points) != len(res.Points) {
		t.Error("JSON round trip changed content")
	}
}
