// Package bench is the harness that regenerates the paper's evaluation:
// Table 2 and Figures 2, 3, 6, 7, 8 and 9 (see DESIGN.md §3 for the
// experiment index). It builds every method over the SOSD-style datasets,
// measures lookup latency and build time, and replays instrumented access
// traces through the cache simulator for the miss-count figures.
package bench

import (
	"fmt"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/cdfmodel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fasttree"
	"repro/internal/kv"
	"repro/internal/pgm"
	"repro/internal/radixspline"
	"repro/internal/rbs"
	"repro/internal/rmi"
	"repro/internal/search"
)

// Built is a constructed method ready for measurement.
type Built[K kv.Key] struct {
	// Find returns the lower-bound rank of q in the indexed keys.
	Find func(q K) int
	// TraceFind replays Find through a touch callback for the cache
	// simulator; nil when the method has no instrumented twin.
	TraceFind func(q K, touch search.Touch) int
	// SizeBytes is the index footprint (excluding the data itself).
	SizeBytes int
	// Log2Err is the mean log2 of the last-mile search window where the
	// method has a meaningful notion of one (learned indexes); -1 otherwise.
	Log2Err float64
}

// Method is one column of Table 2.
type Method[K kv.Key] struct {
	Name string
	// Kind groups columns the way the paper's Table 2 does.
	Kind string // "algorithmic", "on-the-fly", "learned"
	// NA returns a non-empty reason when the method cannot run on the
	// dataset (mirroring the paper's N/A entries).
	NA func(keys []K) string
	// Build constructs the method over sorted keys.
	Build func(keys []K) (*Built[K], error)
}

// hasDuplicates reports whether the sorted key slice contains duplicates.
func hasDuplicates[K kv.Key](keys []K) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			return true
		}
	}
	return false
}

// Methods returns the Table 2 method set, in the paper's column order.
// isCapped is consulted by interpolation search (IS): the paper reports IS
// as N/A when it "takes too much time"; we run it with an iteration cap and
// report N/A when the cap fires on a calibration sample.
func Methods[K kv.Key]() []Method[K] {
	return []Method[K]{
		{
			Name: "ART",
			Kind: "algorithmic",
			NA: func(keys []K) string {
				if hasDuplicates(keys) {
					return "duplicate keys (unsupported by ART)"
				}
				return ""
			},
			Build: func(keys []K) (*Built[K], error) {
				tr, err := art.NewBulk(keys, nil)
				if err != nil {
					return nil, err
				}
				n := len(keys)
				return &Built[K]{
					Find: func(q K) int {
						_, v, ok := tr.LowerBound(q)
						if !ok {
							return n
						}
						return int(v)
					},
					TraceFind: func(q K, touch search.Touch) int {
						_, v, ok := tr.TraceLowerBound(q, touch)
						if !ok {
							return n
						}
						return int(v)
					},
					SizeBytes: tr.SizeBytes(),
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "FAST",
			Kind: "algorithmic",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				tr, err := fasttree.NewBlocked(keys)
				if err != nil {
					return nil, err
				}
				return &Built[K]{
					Find:      tr.Find,
					TraceFind: tr.TraceFind,
					SizeBytes: tr.SizeBytes(),
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "RBS",
			Kind: "algorithmic",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				idx, err := rbs.New(keys, 0)
				if err != nil {
					return nil, err
				}
				return &Built[K]{
					Find:      idx.Find,
					TraceFind: idx.TraceFind,
					SizeBytes: idx.SizeBytes(),
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "B+tree",
			Kind: "algorithmic",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				tr, err := btree.NewBulk(keys, nil, 0)
				if err != nil {
					return nil, err
				}
				n := len(keys)
				return &Built[K]{
					Find: func(q K) int {
						it := tr.LowerBound(q)
						if !it.Valid() {
							return n
						}
						return int(it.Value())
					},
					TraceFind: func(q K, touch search.Touch) int {
						v, ok := tr.TraceLowerBound(q, touch)
						if !ok {
							return n
						}
						return int(v)
					},
					SizeBytes: tr.SizeBytes(),
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "BS",
			Kind: "on-the-fly",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				return &Built[K]{
					Find:      func(q K) int { return search.Binary(keys, q) },
					TraceFind: func(q K, touch search.Touch) int { return search.BinaryTraced(keys, q, touch) },
					SizeBytes: 0,
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "TIP",
			Kind: "on-the-fly",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				return &Built[K]{
					Find:      func(q K) int { return search.TIP(keys, q) },
					SizeBytes: 0,
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "IS",
			Kind: "on-the-fly",
			NA: func(keys []K) string {
				// Calibrate on a sample: if interpolation search exceeds
				// its budget on skewed data, report it the way the paper
				// does ("takes too much time").
				capped := 0
				const budget = 256
				step := len(keys)/512 + 1
				for i := 0; i < len(keys); i += step {
					if _, ok := search.InterpolationCapped(keys, keys[i], budget); !ok {
						capped++
					}
				}
				if capped > 0 {
					return "takes too much time on this distribution"
				}
				return ""
			},
			Build: func(keys []K) (*Built[K], error) {
				return &Built[K]{
					Find:      func(q K) int { return search.Interpolation(keys, q) },
					SizeBytes: 0,
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "IM",
			Kind: "learned",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				model := cdfmodel.NewInterpolation(keys)
				return &Built[K]{
					Find: func(q K) int { return core.ModelFind(keys, model, q) },
					TraceFind: func(q K, touch search.Touch) int {
						return core.TraceModelFind(keys, model, q, touch)
					},
					SizeBytes: model.SizeBytes(),
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name:  "IM+ST",
			Kind:  "learned",
			NA:    func([]K) string { return "" },
			Build: buildShiftTable[K](func(keys []K) cdfmodel.Model[K] { return cdfmodel.NewInterpolation(keys) }),
		},
		{
			Name: "RMI",
			Kind: "learned",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				idx, err := rmi.New(keys, tuneRMI(keys))
				if err != nil {
					return nil, err
				}
				return &Built[K]{
					Find:      idx.Find,
					TraceFind: idx.TraceFind,
					SizeBytes: idx.SizeBytes(),
					Log2Err:   idx.Log2Error(),
				}, nil
			},
		},
		{
			Name: "RS",
			Kind: "learned",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				idx, err := radixspline.New(keys, radixspline.Config{MaxError: 32})
				if err != nil {
					return nil, err
				}
				return &Built[K]{
					Find:      idx.Find,
					TraceFind: idx.TraceFind,
					SizeBytes: idx.SizeBytes(),
					Log2Err:   -1,
				}, nil
			},
		},
		{
			Name: "RS+ST",
			Kind: "learned",
			NA:   func([]K) string { return "" },
			Build: buildShiftTable[K](func(keys []K) cdfmodel.Model[K] {
				idx, err := radixspline.New(keys, radixspline.Config{MaxError: 32})
				if err != nil {
					panic(err) // keys already validated sorted by the caller
				}
				return idx
			}),
		},
		{
			// Extension beyond the paper's Table 2: a Shift-Table hosted
			// by a (monotone, linear-root) RMI, exercising the layer on a
			// stronger model than IM.
			Name: "RMI+ST",
			Kind: "learned",
			NA:   func([]K) string { return "" },
			Build: buildShiftTable[K](func(keys []K) cdfmodel.Model[K] {
				idx, err := rmi.New(keys, rmi.Config{Leaves: len(keys)/4096 + 1})
				if err != nil {
					panic(err) // keys already validated sorted by the caller
				}
				return idx
			}),
		},
		{
			Name: "PGM",
			Kind: "learned",
			NA:   func([]K) string { return "" },
			Build: func(keys []K) (*Built[K], error) {
				idx, err := pgm.New(keys, pgm.Config{Epsilon: 32})
				if err != nil {
					return nil, err
				}
				return &Built[K]{
					Find:      idx.Find,
					SizeBytes: idx.SizeBytes(),
					Log2Err:   -1,
				}, nil
			},
		},
	}
}

// buildShiftTable wraps a model constructor into a Method builder producing
// model+Shift-Table (range mode, M=N — the paper's default configuration).
func buildShiftTable[K kv.Key](mk func(keys []K) cdfmodel.Model[K]) func(keys []K) (*Built[K], error) {
	return func(keys []K) (*Built[K], error) {
		model := mk(keys)
		tab, err := core.Build(keys, model, core.Config{Mode: core.ModeRange})
		if err != nil {
			return nil, err
		}
		stats := tab.ComputeStats()
		return &Built[K]{
			Find:      tab.Find,
			TraceFind: tab.TraceFind,
			SizeBytes: tab.SizeBytes() + model.SizeBytes(),
			Log2Err:   stats.MeanLog2Bounds,
		}, nil
	}
}

// tuneRMI grid-searches the leaf count the way SOSD hand-tunes per-dataset
// RMI architectures (DESIGN.md §2): it picks the configuration with the
// lowest estimated lookup cost (log2 error plus a model-size penalty once
// the parameters spill out of cache).
func tuneRMI[K kv.Key](keys []K) rmi.Config {
	n := len(keys)
	best := rmi.Config{Leaves: n/1024 + 1}
	bestCost := 1e300
	for _, leaves := range []int{n/4096 + 1, n/1024 + 1, n/256 + 1, n/64 + 1} {
		idx, err := rmi.New(keys, rmi.Config{Leaves: leaves})
		if err != nil {
			continue
		}
		cost := idx.Log2Error()
		if sz := idx.SizeBytes(); sz > 8<<20 {
			cost += float64(sz) / float64(8<<20) // cache-spill penalty
		}
		if cost < bestCost {
			bestCost = cost
			best = rmi.Config{Leaves: leaves}
		}
	}
	return best
}

// BuildMethod builds one named method; a convenience for the cmd tools.
func BuildMethod[K kv.Key](name string, keys []K) (*Built[K], error) {
	for _, m := range Methods[K]() {
		if m.Name == name {
			if reason := m.NA(keys); reason != "" {
				return nil, fmt.Errorf("bench: %s is N/A: %s", name, reason)
			}
			return m.Build(keys)
		}
	}
	return nil, fmt.Errorf("bench: unknown method %q", name)
}

// spec helper re-exported for table drivers.
var _ = dataset.Table2
