package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
	"repro/internal/kv"
	"repro/internal/replica"
)

// This file is the replication experiment (DESIGN.md §10): how fast does
// a published version become servable on a replica, how much smaller are
// generation deltas than full snapshots, and how fast does a crashed
// replica get back to serving from its local last-good state? Every
// measured sync is verified: a sample of queries is answered by the
// replica and checked against an oracle over the primary's published
// state before the round's numbers are reported.

// ReplicationConfig parameterises RunReplication.
type ReplicationConfig struct {
	// N is the base key count (0 = 1M).
	N int
	// Rounds is how many versions to publish after the base (0 = 8).
	Rounds int
	// Queries is the per-round verification sample (0 = 2000).
	Queries int
	// WriteFrac is the fraction of N written between versions (0 = 1%).
	WriteFrac float64
	// FullEvery forces a compaction (and hence a full snapshot) every
	// this many rounds (0 = 4).
	FullEvery int
	// Seed for the dataset, writes and probes.
	Seed int64
	// Dir hosts the store and replica dirs ("" = fresh temp, removed).
	Dir string
}

// ReplicationPoint is one published version as seen from the replica.
type ReplicationPoint struct {
	Version    uint64  `json:"version"`
	Kind       string  `json:"kind"` // "full" or "delta"
	PublishMs  float64 `json:"publish_ms"`
	ArtifactKB float64 `json:"artifact_kb"`
	SyncMs     float64 `json:"sync_ms"` // manifest discovery → verified swap
	Keys       int     `json:"keys"`
	Verified   int     `json:"verified_queries"`
}

// ReplicationResult is the whole experiment, in the BENCH_replica.json
// shape the CI smoke and EXPERIMENTS.md reference.
type ReplicationResult struct {
	N             int                `json:"n"`
	Rounds        int                `json:"rounds"`
	GoMaxProcs    int                `json:"gomaxprocs"`
	Points        []ReplicationPoint `json:"points"`
	FullKB        float64            `json:"full_kb"`         // mean full artifact size
	DeltaKB       float64            `json:"delta_kb"`        // mean delta artifact size
	ColdSyncMs    float64            `json:"cold_sync_ms"`    // fresh dir: full fetch + install
	WarmRestartMs float64            `json:"warm_restart_ms"` // crash + reopen from local state, no network
	WarmVersion   uint64             `json:"warm_version"`    // version served right after warm restart
}

// RunReplication publishes a stream of versions through a local store and
// measures the replica's time-to-fresh per version, then crash-restarts
// the replica and measures how fast the local last-good state is back.
func RunReplication(cfg ReplicationConfig) (*ReplicationResult, error) {
	if cfg.N == 0 {
		cfg.N = 1_000_000
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 8
	}
	if cfg.Queries == 0 {
		cfg.Queries = 2000
	}
	if cfg.WriteFrac == 0 {
		cfg.WriteFrac = 0.01
	}
	if cfg.FullEvery == 0 {
		cfg.FullEvery = 4
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "replica-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	storeDir, replicaDir := dir+"/store", dir+"/replica"
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return nil, err
	}

	ctx := context.Background()
	keys, err := dataset.Generate(dataset.Face, 64, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	primary, err := concurrent.New(keys, concurrent.Config{
		Policy: concurrent.CompactionPolicy{Kind: concurrent.Manual},
	})
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	store := replica.DirStore{Dir: storeDir}
	pub, err := replica.NewPublisher(ctx, store, primary, replica.PublisherConfig{Spool: dir})
	if err != nil {
		return nil, err
	}
	r, err := replica.NewReplica[uint64](store, replicaDir, replica.ReplicaConfig{})
	if err != nil {
		return nil, err
	}

	res := &ReplicationResult{N: cfg.N, Rounds: cfg.Rounds, GoMaxProcs: runtime.GOMAXPROCS(0)}
	qs := probes(keys, cfg.Queries, cfg.Seed+1)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	writes := int(float64(cfg.N) * cfg.WriteFrac)
	var fullKB, deltaKB []float64

	round := func(i int) (ReplicationPoint, error) {
		if i > 0 {
			for w := 0; w < writes; w++ {
				if w%4 == 0 {
					primary.Delete(keys[rng.Intn(len(keys))])
				} else {
					primary.Insert(rng.Uint64() % (keys[len(keys)-1] + 2))
				}
			}
			if i%cfg.FullEvery == 0 {
				if err := primary.Compact(); err != nil {
					return ReplicationPoint{}, err
				}
			}
		}
		st := primary.Published()
		want := oracleRanks(st, qs)

		start := time.Now()
		v, full, err := pub.Publish(ctx)
		if err != nil {
			return ReplicationPoint{}, err
		}
		publishMs := msSince(start)

		start = time.Now()
		if err := r.Sync(ctx); err != nil {
			return ReplicationPoint{}, err
		}
		syncMs := msSince(start)

		got, tag := r.Index().FindBatchTagged(qs, nil)
		if tag != v {
			return ReplicationPoint{}, fmt.Errorf("replica at version %d after syncing %d", tag, v)
		}
		for j := range qs {
			if got[j] != want[j] {
				return ReplicationPoint{}, fmt.Errorf("version %d: Find(%d) = %d, oracle %d", v, qs[j], got[j], want[j])
			}
		}

		m := pub.Manifest()
		e := m.Lookup(v)
		if e == nil {
			return ReplicationPoint{}, fmt.Errorf("published version %d missing from manifest", v)
		}
		kb := float64(e.Size) / 1024
		kind := "delta"
		if full {
			kind = "full"
			fullKB = append(fullKB, kb)
		} else {
			deltaKB = append(deltaKB, kb)
		}
		return ReplicationPoint{
			Version: v, Kind: kind, PublishMs: publishMs, ArtifactKB: kb,
			SyncMs: syncMs, Keys: st.Len(), Verified: len(qs),
		}, nil
	}

	for i := 0; i <= cfg.Rounds; i++ {
		pt, err := round(i)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	final := res.Points[len(res.Points)-1].Version
	finalWant := oracleRanks(primary.Published(), qs)

	// Cold restart: a brand-new replica dir has to fetch the latest full
	// (plus any deltas) over the wire.
	start := time.Now()
	cold, err := replica.NewReplica[uint64](store, dir+"/cold", replica.ReplicaConfig{})
	if err != nil {
		return nil, err
	}
	if err := cold.Sync(ctx); err != nil {
		return nil, err
	}
	res.ColdSyncMs = msSince(start)
	cold.Close()

	// Crash + warm restart: drop the replica without ceremony (a SIGKILL
	// leaves exactly this on disk) and reopen over the same dir. The
	// last-good state must be serving — verified — before any network.
	r.Close()
	start = time.Now()
	warm, err := replica.NewReplica[uint64](replica.RefuseStore{}, replicaDir, replica.ReplicaConfig{})
	if err != nil {
		return nil, err
	}
	res.WarmRestartMs = msSince(start)
	defer warm.Close()
	got, tag := warm.Index().FindBatchTagged(qs, nil)
	if tag != final {
		return nil, fmt.Errorf("warm restart served version %d, want %d", tag, final)
	}
	for j := range qs {
		if got[j] != finalWant[j] {
			return nil, fmt.Errorf("warm restart: Find(%d) = %d, oracle %d", qs[j], got[j], finalWant[j])
		}
	}
	res.WarmVersion = tag

	res.FullKB = mean(fullKB)
	res.DeltaKB = mean(deltaKB)
	return res, nil
}

// oracleRanks answers qs over the published state's live key set by
// brute force — the ground truth every replica answer is checked against.
func oracleRanks(st *concurrent.PublishedState[uint64], qs []uint64) []int {
	live := make([]uint64, 0, st.Len())
	st.Scan(0, ^uint64(0), func(k uint64) bool {
		live = append(live, k)
		return true
	})
	out := make([]int, len(qs))
	for i, q := range qs {
		out[i] = kv.LowerBound(live, q)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Grid renders the per-version table plus summary rows.
func (r *ReplicationResult) Grid() *Grid {
	g := NewGrid("version", "kind", "publish_ms", "artifact_kb", "sync_ms", "keys", "verified_queries")
	verbs := []string{"%d", "%s", "%.1f", "%.1f", "%.1f", "%d", "%d"}
	for _, p := range r.Points {
		g.Rowf(verbs, p.Version, p.Kind, p.PublishMs, p.ArtifactKB, p.SyncMs, p.Keys, p.Verified)
	}
	return g
}

// WriteJSON emits the result in the BENCH_replica.json shape.
func (r *ReplicationResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
