package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/concurrent"
	"repro/internal/dataset"
)

// This file is the mixed read/write throughput experiment over
// internal/concurrent: the serving-side question behind the ROADMAP's
// north star. The paper measures read-only lookup latency; a production
// index also has to answer how many lookups per second survive a write
// storm, and — the acceptance bar for the concurrent design — whether
// readers keep making progress while a compaction rebuilds the base
// Shift-Table off to the side.

// ConcurrentConfig parameterises RunConcurrent.
type ConcurrentConfig struct {
	// N is the initial key count (0 = 1M).
	N int
	// Duration per measurement cell (0 = 300ms).
	Duration time.Duration
	// Seed for dataset and workloads.
	Seed int64
	// Readers is the sweep of reader goroutine counts (nil = 1, 2, 4).
	// Every cell also runs one writer goroutine.
	Readers []int
	// Policies to sweep (nil = delta-fraction default, delta-count 8192,
	// manual i.e. no compaction).
	Policies []concurrent.CompactionPolicy
	// Spec is the dataset (zero value = face64).
	Spec dataset.Spec
}

// ConcurrentPoint is one (policy, readers) measurement cell.
type ConcurrentPoint struct {
	Dataset string
	Policy  string
	Readers int

	ReadsPerSec  float64 // scalar Find completions per second, all readers
	WritesPerSec float64 // insert/delete completions per second
	Rebuilds     int     // compactions completed inside the window
	// ReadsDuringCompaction counts reads that completed while a rebuild
	// was in flight — the "reader throughput does not drop to zero"
	// evidence. Expect 0 when Rebuilds is 0 (manual policy) and on a
	// single-CPU run, where the compactor and readers time-share.
	ReadsDuringCompaction int64
}

// RunConcurrent measures the mixed-workload sweep.
func RunConcurrent(cfg ConcurrentConfig) ([]ConcurrentPoint, error) {
	if cfg.N == 0 {
		cfg.N = 1_000_000
	}
	if cfg.Duration == 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	if cfg.Readers == nil {
		cfg.Readers = []int{1, 2, 4}
	}
	if cfg.Policies == nil {
		cfg.Policies = []concurrent.CompactionPolicy{
			{Kind: concurrent.DeltaFraction},
			{Kind: concurrent.DeltaCount, Count: 8192},
			{Kind: concurrent.Manual},
		}
	}
	if cfg.Spec == (dataset.Spec{}) {
		cfg.Spec = dataset.Spec{Name: dataset.Face, Bits: 64}
	}
	keys, err := dataset.Generate(cfg.Spec.Name, cfg.Spec.Bits, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []ConcurrentPoint
	for _, policy := range cfg.Policies {
		for _, readers := range cfg.Readers {
			pt, err := concurrentCell(keys, cfg, policy, readers)
			if err != nil {
				return nil, fmt.Errorf("policy %v, %d readers: %w", policy.Kind, readers, err)
			}
			pt.Dataset = cfg.Spec.String()
			out = append(out, pt)
		}
	}
	return out, nil
}

func concurrentCell(keys []uint64, cfg ConcurrentConfig, policy concurrent.CompactionPolicy, readers int) (ConcurrentPoint, error) {
	ix, err := concurrent.New(keys, concurrent.Config{Policy: policy})
	if err != nil {
		return ConcurrentPoint{}, err
	}
	defer ix.Close()

	var stop atomic.Bool
	var reads, writes, readsDuringCompaction atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var n, during int64
			for !stop.Load() {
				q := keys[rng.Intn(len(keys))]
				_ = ix.Find(q)
				n++
				if ix.Compacting() {
					during++
				}
			}
			reads.Add(n)
			readsDuringCompaction.Add(during)
		}(cfg.Seed + int64(r) + 1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 7919))
		domain := keys[len(keys)-1] + 2
		var inserted []uint64
		var n int64
		for !stop.Load() {
			if rng.Intn(4) != 0 || len(inserted) == 0 {
				k := rng.Uint64() % domain
				ix.Insert(k)
				inserted = append(inserted, k)
			} else {
				i := rng.Intn(len(inserted))
				ix.Delete(inserted[i])
				inserted[i] = inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
			}
			n++
		}
		writes.Add(n)
	}()

	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err := ix.Err(); err != nil {
		return ConcurrentPoint{}, err
	}
	return ConcurrentPoint{
		Policy:                policy.Kind.String(),
		Readers:               readers,
		ReadsPerSec:           float64(reads.Load()) / elapsed,
		WritesPerSec:          float64(writes.Load()) / elapsed,
		Rebuilds:              ix.Rebuilds(),
		ReadsDuringCompaction: readsDuringCompaction.Load(),
	}, nil
}
