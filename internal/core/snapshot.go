package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/snapshot"
)

// This file promotes the bare layer format (serialize.go) into full index
// snapshots (DESIGN.md §9): a Shift-Table or bare-model index persisted as
// one verified container — keys, model identity, and layer — so a restart
// warm-loads the index instead of rebuilding it from raw keys. The layer
// format stays exactly the serialize.go v1 bytes, embedded as one section;
// its key and model fingerprints double as the binding between sections.

// Snapshot container kinds written by this package.
const (
	// SnapshotKindTable is a complete Shift-Table index: keys, model
	// spec, layer.
	SnapshotKindTable = "shift-table"
	// SnapshotKindModelIndex is a bare-model index: keys and model spec.
	SnapshotKindModelIndex = "model-index"
)

// Section ids of the shift-table and model-index kinds.
const (
	secTableKeys  = 1
	secTableModel = 2
	secTableLayer = 3
)

// maxModelSpecLen bounds the model section; model parameter blobs are a
// few words (an ε, a leaf count), never bulk data.
const maxModelSpecLen = 1 << 16

// SnapshotKind implements the index.Persister capability.
func (t *Table[K]) SnapshotKind() string { return SnapshotKindTable }

// PersistSnapshot writes the complete index — keys, model spec, layer —
// as the shift-table section sequence. The caller owns the container
// (header and checksum); see index.Save.
func (t *Table[K]) PersistSnapshot(sw *snapshot.Writer) error {
	if err := snapshot.WriteKeySection(sw, secTableKeys, t.keys); err != nil {
		return err
	}
	return t.PersistModelAndLayer(sw, secTableModel, secTableLayer)
}

// PersistModelAndLayer writes the keyless part of a table snapshot — the
// model spec and the layer — under the given section ids. Containers
// that already carry the keys (the router persists each Shift-Table
// shard this way, attached to its slice of the router's one key section)
// embed tables through this instead of duplicating the key data.
func (t *Table[K]) PersistModelAndLayer(sw *snapshot.Writer, modelID, layerID uint32) error {
	spec, err := encodeModelSpec(t.model)
	if err != nil {
		return err
	}
	if err := sw.Bytes(modelID, spec); err != nil {
		return err
	}
	// V2 containers carry the mappable layer blob (fused drifts, aligned
	// counts); v1 keeps the split-array stream so old files stay
	// byte-stable. Either version of the blob loads through Load.
	if sw.Version() == snapshot.Version2 {
		lw, err := sw.SectionSized(layerID, t.layerSizeV2())
		if err != nil {
			return err
		}
		return t.writeLayerV2(lw)
	}
	lw, err := sw.SectionSized(layerID, t.layerSize())
	if err != nil {
		return err
	}
	_, err = t.WriteTo(lw)
	return err
}

// layerSize is the exact byte count WriteTo produces: the 64-byte header,
// the drift arrays at their recorded split widths, and the partition
// counts. The sized section write enforces the agreement.
func (t *Table[K]) layerSize() int64 {
	size := int64(8 * 8)
	m := int64(t.m)
	switch t.mode {
	case ModeRange:
		size += (8 + m*int64(t.loBits)) + (8 + m*int64(t.hiBits))
	default:
		size += 8 + m*int64(t.shift.width)
	}
	return size + 4*m
}

// LoadTableSnapshot reads a shift-table snapshot: keys, model spec
// (reconstructing the model and verifying its fingerprint), then the
// layer through the hardened Load, whose own fingerprints bind it to the
// keys and model just read. The caller owns checksum verification
// (snapshot.Reader.Close) and must discard the result if it fails.
func LoadTableSnapshot[K kv.Key](sr *snapshot.Reader) (*Table[K], error) {
	keys, err := loadSortedKeys[K](sr, secTableKeys)
	if err != nil {
		return nil, err
	}
	return LoadTableWithKeys(sr, keys, secTableModel, secTableLayer)
}

// LoadTableWithKeys reads the keyless model+layer section pair written by
// PersistModelAndLayer and attaches it to caller-supplied keys (which
// the caller must already have validated as sorted). The layer's key
// fingerprint still binds it to exactly these keys.
func LoadTableWithKeys[K kv.Key](sr *snapshot.Reader, keys []K, modelID, layerID uint32) (*Table[K], error) {
	model, err := loadModelSpecSection(sr, modelID, keys)
	if err != nil {
		return nil, err
	}
	ls, err := sr.Expect(layerID)
	if err != nil {
		return nil, err
	}
	return Load(ls, keys, model)
}

// SnapshotKind implements the index.Persister capability.
func (ix *ModelIndex[K]) SnapshotKind() string { return SnapshotKindModelIndex }

// PersistSnapshot writes the bare-model index: keys and model spec.
func (ix *ModelIndex[K]) PersistSnapshot(sw *snapshot.Writer) error {
	if err := snapshot.WriteKeySection(sw, secTableKeys, ix.keys); err != nil {
		return err
	}
	return ix.PersistModelSpec(sw, secTableModel)
}

// PersistModelSpec writes just the model spec section — the keyless form
// of a model-index snapshot (the router persists bare-model shards this
// way).
func (ix *ModelIndex[K]) PersistModelSpec(sw *snapshot.Writer, id uint32) error {
	spec, err := encodeModelSpec(ix.model)
	if err != nil {
		return err
	}
	return sw.Bytes(id, spec)
}

// LoadModelIndexSnapshot reads a model-index snapshot.
func LoadModelIndexSnapshot[K kv.Key](sr *snapshot.Reader) (*ModelIndex[K], error) {
	keys, err := loadSortedKeys[K](sr, secTableKeys)
	if err != nil {
		return nil, err
	}
	return LoadModelIndexWithKeys(sr, keys, secTableModel)
}

// LoadModelIndexWithKeys reads a model spec section and rebuilds the
// bare-model index over caller-supplied (already sorted) keys.
func LoadModelIndexWithKeys[K kv.Key](sr *snapshot.Reader, keys []K, modelID uint32) (*ModelIndex[K], error) {
	model, err := loadModelSpecSection(sr, modelID, keys)
	if err != nil {
		return nil, err
	}
	return NewModelIndex(keys, model)
}

// loadSortedKeys reads a key section and validates ordering.
func loadSortedKeys[K kv.Key](sr *snapshot.Reader, id uint32) ([]K, error) {
	ks, err := sr.Expect(id)
	if err != nil {
		return nil, err
	}
	keys, err := snapshot.ReadKeySection[K](ks, 0)
	if err != nil {
		return nil, err
	}
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("core: snapshot keys are not sorted")
	}
	return keys, nil
}

// loadModelSpecSection reads and decodes one model spec section.
func loadModelSpecSection[K kv.Key](sr *snapshot.Reader, id uint32, keys []K) (cdfmodel.Model[K], error) {
	ms, err := sr.Expect(id)
	if err != nil {
		return nil, err
	}
	spec, err := ms.Bytes(maxModelSpecLen)
	if err != nil {
		return nil, err
	}
	return decodeModelSpec(spec, keys)
}

// ModelParamser is the optional interface a model implements when its
// reconstruction needs parameters beyond the keys themselves (a radix
// spline's ε, an RMI's leaf count). Models without it — the cdfmodel
// families — are re-derived from the keys alone.
type ModelParamser interface {
	SnapshotParams() []byte
}

// encodeModelSpec renders a model's identity: family name, fingerprint,
// and the reconstruction parameters (empty when the keys suffice).
func encodeModelSpec[K kv.Key](m cdfmodel.Model[K]) ([]byte, error) {
	name := m.Name()
	if name == "" || len(name) > 255 {
		return nil, fmt.Errorf("core: model name %q not serializable", name)
	}
	var params []byte
	if p, ok := m.(ModelParamser); ok {
		params = p.SnapshotParams()
	}
	if len(params) > maxModelSpecLen/2 {
		return nil, fmt.Errorf("core: model %q parameter blob too large (%d bytes)", name, len(params))
	}
	out := make([]byte, 0, 4+len(name)+8+4+len(params))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint64(out, modelFingerprint(m))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(params)))
	out = append(out, params...)
	return out, nil
}

// decodeModelSpec reconstructs the model over the snapshot's keys and
// verifies the rebuilt model's fingerprint against the recorded one, so a
// reconstruction that drifted (changed defaults, wrong parameters) is
// rejected instead of silently mis-predicting.
func decodeModelSpec[K kv.Key](spec []byte, keys []K) (cdfmodel.Model[K], error) {
	if len(spec) < 4 {
		return nil, fmt.Errorf("core: model spec truncated")
	}
	nameLen := int(binary.LittleEndian.Uint32(spec))
	spec = spec[4:]
	if nameLen == 0 || nameLen > 255 || nameLen > len(spec) {
		return nil, fmt.Errorf("core: invalid model name length %d", nameLen)
	}
	name := string(spec[:nameLen])
	spec = spec[nameLen:]
	if len(spec) < 12 {
		return nil, fmt.Errorf("core: model spec for %q truncated", name)
	}
	fp := binary.LittleEndian.Uint64(spec)
	paramsLen := int(binary.LittleEndian.Uint32(spec[8:]))
	spec = spec[12:]
	if paramsLen != len(spec) {
		return nil, fmt.Errorf("core: model %q parameter length %d does not match the %d bytes present",
			name, paramsLen, len(spec))
	}
	model, err := buildModel(name, keys, spec)
	if err != nil {
		return nil, err
	}
	if got := modelFingerprint(model); got != fp {
		return nil, fmt.Errorf("core: reconstructed %q model does not match the persisted one (fingerprint %016x, want %016x)",
			name, got, fp)
	}
	return model, nil
}

// buildModel dispatches on the model family: the cdfmodel families are
// re-derived from the keys directly; anything else goes through the
// registered loaders (internal/index registers the RS and RMI families —
// loading a snapshot whose model lives outside cdfmodel requires linking
// the registry, which every front-end does).
func buildModel[K kv.Key](name string, keys []K, params []byte) (cdfmodel.Model[K], error) {
	switch name {
	case "IM", "Linear", "Cubic":
		if len(params) != 0 {
			return nil, fmt.Errorf("core: model %q takes no parameters, spec carries %d bytes", name, len(params))
		}
		switch name {
		case "IM":
			return cdfmodel.NewInterpolation(keys), nil
		case "Linear":
			return cdfmodel.NewLinear(keys), nil
		default:
			return cdfmodel.NewCubic(keys), nil
		}
	}
	if fn, ok := modelLoaders.Load(modelLoaderKey{name: name, width: kv.Width[K]()}); ok {
		return fn.(func([]K, []byte) (cdfmodel.Model[K], error))(keys, params)
	}
	return nil, fmt.Errorf("core: no loader registered for model family %q (link internal/index for RS/RMI)", name)
}

type modelLoaderKey struct {
	name  string
	width int
}

var modelLoaders sync.Map // modelLoaderKey -> func([]K, []byte) (cdfmodel.Model[K], error)

// RegisterModelLoader registers a reconstruction function for a model
// family outside cdfmodel, keyed by family name and key width. Called
// from package init functions (internal/index registers RS and RMI);
// later registrations for the same key replace earlier ones.
func RegisterModelLoader[K kv.Key](name string, fn func(keys []K, params []byte) (cdfmodel.Model[K], error)) {
	modelLoaders.Store(modelLoaderKey{name: name, width: kv.Width[K]()}, fn)
}
