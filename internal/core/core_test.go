package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
	"repro/internal/kv"
)

// chaosModel is deliberately non-monotone: it scrambles predictions with a
// multiplicative hash. It exercises the §3.8 fallback path (hint windows +
// global validation + exponential rescue).
type chaosModel struct{ n int }

func (m chaosModel) Predict(k uint64) int {
	if m.n == 0 {
		return 0
	}
	return int((k * 0x9E3779B97F4A7C15) % uint64(m.n))
}
func (m chaosModel) Monotone() bool { return false }
func (m chaosModel) SizeBytes() int { return 8 }
func (m chaosModel) Name() string   { return "chaos" }

// constModel predicts the same position for every key: the worst possible
// congestion case (§3.6: "a congestion of keys in a small sub-range").
type constModel struct{ pos, n int }

func (m constModel) Predict(uint64) int { return m.pos }
func (m constModel) Monotone() bool     { return true }
func (m constModel) SizeBytes() int     { return 8 }
func (m constModel) Name() string       { return "const" }

func buildConfigs(n int) []Config {
	return []Config{
		{Mode: ModeRange},                      // R-1, the paper's default
		{Mode: ModeRange, M: n/2 + 1},          // R with compression
		{Mode: ModeRange, M: n/10 + 1},         //
		{Mode: ModeRange, M: 7},                // extreme compression
		{Mode: ModeMidpoint},                   // S-1
		{Mode: ModeMidpoint, M: n/10 + 1},      // S-10
		{Mode: ModeMidpoint, M: 13},            //
		{Mode: ModeMidpoint, SampleStride: 16}, // §3.4 sampled build
	}
}

func checkAllQueries(t *testing.T, label string, keys []uint64, tab *Table[uint64], rng *rand.Rand) {
	t.Helper()
	n := len(keys)
	// Indexed keys.
	for i := 0; i < 400; i++ {
		q := keys[rng.Intn(n)]
		if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("%s: Find(indexed %d) = %d, want %d", label, q, got, want)
		}
	}
	// Arbitrary keys across and beyond the domain.
	maxKey := keys[n-1]
	for i := 0; i < 400; i++ {
		q := rng.Uint64()
		if i%3 == 0 && maxKey > 0 {
			q %= maxKey + 2 // concentrate around the populated range
		}
		if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("%s: Find(%d) = %d, want %d", label, q, got, want)
		}
	}
	// Boundary probes.
	for _, q := range []uint64{0, keys[0], keys[0] + 1, maxKey, maxKey + 1, ^uint64(0)} {
		if q < keys[0] && keys[0] == 0 {
			continue
		}
		if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("%s: Find(boundary %d) = %d, want %d", label, q, got, want)
		}
	}
}

func TestFindMatchesReferenceAcrossEverything(t *testing.T) {
	const n = 4000
	rng := rand.New(rand.NewSource(42))
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, n, 17)
		models := []cdfmodel.Model[uint64]{
			cdfmodel.NewInterpolation(keys),
			cdfmodel.NewLinear(keys),
			cdfmodel.NewCubic(keys),
			chaosModel{n},
			constModel{n / 2, n},
		}
		for _, model := range models {
			for _, cfg := range buildConfigs(n) {
				tab, err := Build(keys, model, cfg)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, model.Name(), err)
				}
				label := string(name) + "/" + model.Name() + "/" + tab.Mode().String()
				checkAllQueries(t, label, keys, tab, rng)
			}
		}
	}
}

func TestFindMatchesReference32Bit(t *testing.T) {
	keys64 := dataset.MustGenerate(dataset.Face, 32, 3000, 5)
	keys := dataset.U32(keys64)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		q := uint32(rng.Uint64())
		if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("32-bit Find(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestDuplicatesLowerBoundSemantics(t *testing.T) {
	// Heavy duplication: every key appears 1-20 times (§3.2).
	rng := rand.New(rand.NewSource(8))
	var keys []uint64
	k := uint64(0)
	for len(keys) < 2000 {
		k += uint64(1 + rng.Intn(50))
		run := 1 + rng.Intn(20)
		for j := 0; j < run; j++ {
			keys = append(keys, k)
		}
	}
	for _, cfg := range buildConfigs(len(keys)) {
		tab, err := Build(keys, cdfmodel.NewInterpolation(keys), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			q := uint64(rng.Intn(int(keys[len(keys)-1]) + 10))
			want := kv.LowerBound(keys, q)
			if got := tab.Find(q); got != want {
				t.Fatalf("cfg %v/%d: Find(dup %d) = %d, want %d", cfg.Mode, cfg.M, q, got, want)
			}
			// Lower bound of an indexed duplicate must be the first of its run.
			if pos, found := tab.Lookup(keys[rng.Intn(len(keys))]); found {
				if pos > 0 && keys[pos-1] == keys[pos] {
					t.Fatalf("Lookup returned non-first duplicate at %d", pos)
				}
			}
		}
	}
}

func TestEdgeCaseSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 7, 16, 100} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i * 37)
		}
		for _, cfg := range []Config{{Mode: ModeRange}, {Mode: ModeMidpoint}, {Mode: ModeRange, M: 1}, {Mode: ModeMidpoint, M: 1}} {
			tab, err := Build(keys, cdfmodel.NewInterpolation(keys), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for q := uint64(0); q < uint64(n*37+5); q++ {
				if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
					t.Fatalf("n=%d cfg=%v/%d: Find(%d) = %d, want %d", n, cfg.Mode, cfg.M, q, got, want)
				}
			}
			_ = rng
		}
	}
}

func TestEmptyKeys(t *testing.T) {
	tab, err := Build(nil, cdfmodel.NewInterpolation[uint64](nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Find(5); got != 0 {
		t.Errorf("empty Find = %d, want 0", got)
	}
	if tab.AvgError() != 0 || tab.MeasuredError() != 0 {
		t.Error("empty table should report zero error")
	}
}

func TestBuildErrors(t *testing.T) {
	keys := []uint64{1, 2, 3}
	if _, err := Build[uint64](keys, nil, Config{}); err == nil {
		t.Error("want error for nil model")
	}
	if _, err := Build([]uint64{3, 1, 2}, cdfmodel.NewInterpolation(keys), Config{}); err == nil {
		t.Error("want error for unsorted keys")
	}
	if _, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{M: -4}); err == nil {
		t.Error("want error for negative M")
	}
	if _, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{SampleStride: -1}); err == nil {
		t.Error("want error for negative stride")
	}
	if _, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: Mode(99)}); err == nil {
		t.Error("want error for unknown mode")
	}
}

func TestFindRange(t *testing.T) {
	keys := []uint64{10, 20, 20, 30, 40, 50}
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b        uint64
		first, last int
	}{
		{15, 35, 1, 4},         // {20,20,30}
		{20, 20, 1, 3},         // both duplicates
		{0, 9, 0, 0},           // before everything
		{51, 99, 6, 6},         // after everything
		{10, 50, 0, 6},         // everything
		{30, 10, 0, 0},         // inverted range
		{45, ^uint64(0), 5, 6}, // open-ended top
	}
	for _, c := range cases {
		first, last := tab.FindRange(c.a, c.b)
		if first != c.first || last != c.last {
			t.Errorf("FindRange(%d,%d) = [%d,%d), want [%d,%d)", c.a, c.b, first, last, c.first, c.last)
		}
	}
}

func TestModelFindAgainstReference(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Osmc, 64, 3000, 3)
	model := cdfmodel.NewInterpolation(keys)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		q := rng.Uint64()
		if got, want := ModelFind(keys, model, q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("ModelFind(%d) = %d, want %d", q, got, want)
		}
	}
	if got := ModelFind(nil, cdfmodel.NewInterpolation[uint64](nil), 9); got != 0 {
		t.Errorf("ModelFind on empty = %d, want 0", got)
	}
}

func TestShiftTableReducesError(t *testing.T) {
	// §3.6 / Fig. 6: on osmc with a plain linear model the correction layer
	// must reduce the error dramatically. The reduction factor grows with
	// scale (the paper reports 28M→129 at 200M keys; at this test's 200k
	// keys our osmc stand-in gives ~3200→~86); clustered spatial data is
	// the paper's congestion case (§3.6), so the factor here is the
	// smallest across datasets.
	keys := dataset.MustGenerate(dataset.Osmc, 64, 200000, 7)
	model := cdfmodel.NewLinear(keys)
	tab, err := Build(keys, model, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := ModelError(keys, model)
	after := tab.MeasuredError()
	if before < 100 {
		t.Fatalf("test premise broken: linear model error %.1f unexpectedly small on osmc", before)
	}
	if after*20 > before {
		t.Errorf("Shift-Table error %.2f not ≪ model error %.2f", after, before)
	}
	// Eq. 8's analytic estimate must also sit far below the model error.
	if est := tab.AvgError(); est*10 > before {
		t.Errorf("Eq. 8 estimate %.2f should be far below model error %.2f", est, before)
	}
}

func TestAvgErrorEq8Manually(t *testing.T) {
	// A constant model funnels all n keys into one partition: Eq. 8 gives
	// ē = n²/(2n) = n/2.
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i)
	}
	tab, err := Build(keys, constModel{50, 100}, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.AvgError(); got != 50 {
		t.Errorf("Eq. 8 for constant model = %.1f, want 50", got)
	}
}

func TestStats(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 5000, 3)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	s := tab.ComputeStats()
	if s.N != 5000 || s.M != 5000 || s.Mode != ModeRange {
		t.Errorf("stats identity fields wrong: %+v", s)
	}
	if s.MaxCount < 1 {
		t.Error("MaxCount must be at least 1 on non-empty data")
	}
	if s.EmptyParts <= 0 {
		t.Error("face data should leave some partitions empty under IM")
	}
	if s.MeanAbsDrift <= 0 {
		t.Error("IM must have non-zero drift on face data")
	}
	if s.SizeBytes <= 0 || s.EntryBits == 0 {
		t.Error("size accounting missing")
	}
	if s.AvgErrEq8 < 0 || s.MeanLog2Bounds < 0 {
		t.Error("error stats must be non-negative")
	}
}

func TestDriftSeriesShape(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Osmc, 64, 3000, 3)
	tab, err := Build(keys, cdfmodel.NewLinear(keys), Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	before, after := DriftSeries(tab)
	if len(before) != 3000 || len(after) != 3000 {
		t.Fatal("series length mismatch")
	}
	var sb, sa float64
	for i := range before {
		if before[i] < 0 || after[i] < 0 {
			t.Fatal("absolute errors must be non-negative")
		}
		sb += float64(before[i])
		sa += float64(after[i])
	}
	if sa >= sb {
		t.Errorf("corrected error sum %.0f not below model error sum %.0f", sa, sb)
	}
}

func TestEntryWidthSelection(t *testing.T) {
	// Tiny drifts pack into 8-bit entries; a constant model on a larger
	// array needs wider entries (§3.9).
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	tab, _ := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange})
	if got := tab.EntryBits(); got != 8 {
		t.Errorf("near-perfect model should pack 8-bit entries, got %d", got)
	}
	tab, _ = Build(keys, constModel{500, 1000}, Config{Mode: ModeRange})
	if got := tab.EntryBits(); got < 16 {
		t.Errorf("constant model drifts need ≥16-bit entries, got %d", got)
	}
	// Size accounting follows the width.
	if tab.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestSampledBuildStillCorrect(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 64, 10000, 5)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeMidpoint, SampleStride: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		q := rng.Uint64() % (keys[len(keys)-1] + 5)
		if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("sampled Find(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestWindowContainsAnswerForMonotoneModels(t *testing.T) {
	// The correctness guarantee behind range mode (§3.1, DESIGN.md §4):
	// for a monotone model the answer is always inside [lo, hi+1].
	keys := dataset.MustGenerate(dataset.Wiki, 64, 5000, 5)
	rng := rand.New(rand.NewSource(10))
	for _, m := range []int{0, 500, 13} {
		tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange, M: m})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			q := rng.Uint64() % (keys[len(keys)-1] + 10)
			lo, hi := tab.Window(q)
			want := kv.LowerBound(keys, q)
			if want < lo || want > hi+1 {
				t.Fatalf("M=%d: answer %d outside window [%d,%d+1] for q=%d", m, want, lo, hi, q)
			}
		}
	}
}

func TestMidpointShiftsHalveRangeFootprint(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 8000, 5)
	model := cdfmodel.NewInterpolation(keys)
	r, _ := Build(keys, model, Config{Mode: ModeRange})
	s, _ := Build(keys, model, Config{Mode: ModeMidpoint})
	if s.SizeBytes()*2 != r.SizeBytes() {
		t.Errorf("S-1 footprint %d should be half of R-1 %d (§3.4)", s.SizeBytes(), r.SizeBytes())
	}
}

func TestCompressionDegradesError(t *testing.T) {
	// Fig. 9b: shrinking the layer must not *improve* accuracy.
	keys := dataset.MustGenerate(dataset.Face, 64, 20000, 5)
	model := cdfmodel.NewInterpolation(keys)
	var prev float64 = -1
	for _, m := range []int{20000, 2000, 200, 20} {
		tab, err := Build(keys, model, Config{Mode: ModeMidpoint, M: m})
		if err != nil {
			t.Fatal(err)
		}
		e := tab.MeasuredError()
		if prev >= 0 && e < prev {
			t.Errorf("M=%d error %.2f below larger layer's %.2f", m, e, prev)
		}
		prev = e
	}
}

func TestSortQueriesAgainstStdlib(t *testing.T) {
	// Cross-validation sweep: random small arrays, every query in domain.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(100))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, cfg := range []Config{{Mode: ModeRange}, {Mode: ModeMidpoint}, {Mode: ModeRange, M: 3}} {
			tab, err := Build(keys, cdfmodel.NewInterpolation(keys), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for q := uint64(0); q <= 101; q++ {
				want := sort.Search(n, func(i int) bool { return keys[i] >= q })
				if got := tab.Find(q); got != want {
					t.Fatalf("trial %d cfg %v/%d: Find(%d) = %d, want %d (keys=%v)",
						trial, cfg.Mode, cfg.M, q, got, want, keys)
				}
			}
		}
	}
}
