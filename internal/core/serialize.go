package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/snapshot"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// This file implements layer persistence. A Shift-Table is cheap to rebuild
// (one pass, §3.3) but at the paper's 200M-key scale that pass still reads
// ~1.6 GB; persisting the layer makes index startup I/O-bound instead.
// The file stores only the correction layer — the keys live in the caller's
// clustered storage and the model is re-derived or stored by the caller —
// plus fingerprints of both so a stale layer cannot be attached silently.

const (
	layerMagic   = 0x53485442 // "SHTB"
	layerVersion = 1
	// layerVersion2 is the mappable layout (DESIGN.md §12): instead of the
	// v1 split lo/hi arrays it stores range-mode drifts exactly as the
	// query path holds them — the fused interleaved [lo₀,hi₀,lo₁,hi₁,…]
	// array at the common packed width — followed by 8-byte-aligned
	// partition counts, so a loader over a page-aligned v2 snapshot
	// section can view both in place with zero copies. Written only
	// inside v2 snapshot containers; Load reads both versions.
	layerVersion2 = 2
)

// Layer v2 body offsets, relative to the layer blob start. The 64-byte
// header is followed by one widths word (byte 0: the stored entry width;
// bytes 1–2, range mode only: the split lo/hi widths WriteTo would use),
// then the drift data, zero padding to an 8-byte boundary, and the
// int32 partition counts.
const layerV2DataOff = 8*8 + 8

// WriteTo serialises the layer (not the keys or the model) to w.
func (t *Table[K]) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	head := []uint64{
		layerMagic,
		layerVersion,
		uint64(t.mode),
		uint64(t.n),
		uint64(t.m),
		boolU64(t.monotone),
		keysFingerprint(t.keys),
		modelFingerprint(t.model),
	}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	// The on-disk format (version 1) stores range-mode lo/hi as two split
	// arrays, each at its own narrowest width; de-interleave the in-memory
	// fused layout back to that shape so files round-trip byte-identically
	// across the layout change (DESIGN.md §8). The de-interleave streams in
	// fixed-size chunks — at M = N = 200M keys a materialised split copy
	// would transiently double the layer footprint.
	switch t.mode {
	case ModeRange:
		if err := writePairsHalf(cw, &t.pairs, t.m, t.loBits, false); err != nil {
			return cw.n, err
		}
		if err := writePairsHalf(cw, &t.pairs, t.m, t.hiBits, true); err != nil {
			return cw.n, err
		}
	default:
		if err := writeDrifts(cw, &t.shift, t.m); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, t.count); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// layerSizeV2 is the exact byte size writeLayerV2 will produce, so the
// snapshot writer can reserve the section (SectionSized) and the mapped
// loader can cross-check geometry before viewing anything.
func (t *Table[K]) layerSizeV2() int64 {
	var data int64
	switch t.mode {
	case ModeRange:
		data = 2 * int64(t.m) * int64(t.pairs.width)
	default:
		data = int64(t.m) * int64(t.shift.width)
	}
	return layerV2DataOff + data + pad8(data) + 4*int64(t.m)
}

// pad8 returns the zero-padding after n bytes of drift data so the int32
// counts that follow start 8-byte aligned (the data begins at the
// 8-aligned layerV2DataOff, so alignment is preserved end to end).
func pad8(n int64) int64 { return (8 - n%8) % 8 }

// writeLayerV2 serialises the layer in the mappable v2 shape: the same
// 64-byte header as v1 (version field 2), one widths word, then the
// drift data exactly as the query path holds it — fused interleaved
// pairs for range mode, the packed shift array for midpoint — zero
// padding to an 8-byte boundary, and the partition counts. No per-array
// width prefixes: all widths live in the widths word so every payload
// offset is computable from the header alone.
func (t *Table[K]) writeLayerV2(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var width, lo, hi uint8
	var data int64
	switch t.mode {
	case ModeRange:
		if t.pairs.len() != t.m {
			return fmt.Errorf("core: drift pair length %d, want %d", t.pairs.len(), t.m)
		}
		width, lo, hi = t.pairs.width, t.loBits, t.hiBits
		data = 2 * int64(t.m) * int64(width)
	default:
		if t.shift.len() != t.m {
			return fmt.Errorf("core: drift array length %d, want %d", t.shift.len(), t.m)
		}
		width = t.shift.width
		data = int64(t.m) * int64(width)
	}
	head := []uint64{
		layerMagic,
		layerVersion2,
		uint64(t.mode),
		uint64(t.n),
		uint64(t.m),
		boolU64(t.monotone),
		keysFingerprint(t.keys),
		modelFingerprint(t.model),
		uint64(width) | uint64(lo)<<8 | uint64(hi)<<16,
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var err error
	switch t.mode {
	case ModeRange:
		switch {
		case t.pairs.w8 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.pairs.w8)
		case t.pairs.w16 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.pairs.w16)
		case t.pairs.w32 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.pairs.w32)
		case t.pairs.w64 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.pairs.w64)
		}
	default:
		switch {
		case t.shift.w8 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.shift.w8)
		case t.shift.w16 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.shift.w16)
		case t.shift.w32 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.shift.w32)
		case t.shift.w64 != nil:
			err = binary.Write(bw, binary.LittleEndian, t.shift.w64)
		}
	}
	if err != nil {
		return err
	}
	var zeros [8]byte
	if _, err := bw.Write(zeros[:pad8(data)]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.count); err != nil {
		return err
	}
	return bw.Flush()
}

// layerWidths unpacks and validates the v2 widths word against the mode
// and partition count. Returns the stored entry width plus the split
// lo/hi widths (range mode only) a future v1 WriteTo would use.
func layerWidths(word uint64, mode Mode, m int) (width, lo, hi uint8, err error) {
	if word>>24 != 0 {
		return 0, 0, 0, fmt.Errorf("core: layer widths word %#x has reserved bytes set", word)
	}
	width, lo, hi = uint8(word), uint8(word>>8), uint8(word>>16)
	okWidth := func(w uint8) bool { return w == 0 || w == 1 || w == 2 || w == 4 || w == 8 }
	if !okWidth(width) || !okWidth(lo) || !okWidth(hi) {
		return 0, 0, 0, fmt.Errorf("core: invalid layer entry widths %d/%d/%d", width, lo, hi)
	}
	if m == 0 {
		if width != 0 || lo != 0 || hi != 0 {
			return 0, 0, 0, fmt.Errorf("core: nonzero entry widths %d/%d/%d for an empty layer", width, lo, hi)
		}
		return 0, 0, 0, nil
	}
	if width == 0 {
		return 0, 0, 0, fmt.Errorf("core: entry width 0 for %d partitions", m)
	}
	if mode == ModeRange {
		// The fused array packs both halves at the wider of the two split
		// widths (fusePairs); anything else cannot round-trip to v1.
		want := lo
		if hi > want {
			want = hi
		}
		if lo == 0 || hi == 0 || width != want {
			return 0, 0, 0, fmt.Errorf("core: range-mode widths %d/%d/%d are inconsistent", width, lo, hi)
		}
	} else if lo != 0 || hi != 0 {
		return 0, 0, 0, fmt.Errorf("core: split widths %d/%d set for midpoint mode", lo, hi)
	}
	return width, lo, hi, nil
}

// loadBodyV2 reads the v2 body (widths word onward) from the stream.
// The mapped loader parses the same bytes in place; this path serves
// heap loads of v2 containers (fallback builds, shifttool without -mmap).
func (t *Table[K]) loadBodyV2(br io.Reader, avail int64) error {
	var word uint64
	if err := binary.Read(br, binary.LittleEndian, &word); err != nil {
		return fmt.Errorf("core: reading layer widths: %w", err)
	}
	if avail >= 0 {
		avail -= 8
	}
	width, lo, hi, err := layerWidths(word, t.mode, t.m)
	if err != nil {
		return err
	}
	var data int64
	switch t.mode {
	case ModeRange:
		t.pairs.width = width
		t.loBits, t.hiBits = lo, hi
		data = 2 * int64(t.m) * int64(width)
		if t.m > 0 {
			switch width {
			case 1:
				t.pairs.w8, err = readSliceChunked[int8](br, 2*t.m, 1, "fused drift entry", avail)
			case 2:
				t.pairs.w16, err = readSliceChunked[int16](br, 2*t.m, 2, "fused drift entry", avail)
			case 4:
				t.pairs.w32, err = readSliceChunked[int32](br, 2*t.m, 4, "fused drift entry", avail)
			default:
				t.pairs.w64, err = readSliceChunked[int64](br, 2*t.m, 8, "fused drift entry", avail)
			}
			if err != nil {
				return fmt.Errorf("core: fused drift array: %w", err)
			}
		}
	default:
		t.shift.width = width
		data = int64(t.m) * int64(width)
		if t.m > 0 {
			switch width {
			case 1:
				t.shift.w8, err = readSliceChunked[int8](br, t.m, 1, "drift entry", avail)
			case 2:
				t.shift.w16, err = readSliceChunked[int16](br, t.m, 2, "drift entry", avail)
			case 4:
				t.shift.w32, err = readSliceChunked[int32](br, t.m, 4, "drift entry", avail)
			default:
				t.shift.w64, err = readSliceChunked[int64](br, t.m, 8, "drift entry", avail)
			}
			if err != nil {
				return fmt.Errorf("core: drift array: %w", err)
			}
		}
	}
	if avail >= 0 {
		avail -= data
	}
	var padBuf [8]byte
	pad := pad8(data)
	//shift:allow-unbounded(pad8 maps any input to 0..7, so the slice is bounded by construction)
	if _, err := io.ReadFull(br, padBuf[:pad]); err != nil {
		return fmt.Errorf("core: reading layer padding: %w", err)
	}
	for _, b := range padBuf[:pad] {
		if b != 0 {
			return fmt.Errorf("core: nonzero layer padding")
		}
	}
	if avail >= 0 {
		avail -= pad
	}
	counts, err := readCounts(br, t.m, t.n, avail)
	if err != nil {
		return err
	}
	t.count = counts
	return nil
}

// maxLayerFactor bounds M relative to N in loaded layer files. Builds
// default to M = N and the paper's reduced configurations use M = N/X, so
// a header claiming a layer orders of magnitude larger than its key set
// is corrupt (or hostile), not a configuration this repository produces.
const maxLayerFactor = 64

// Load reads a layer previously written with WriteTo and attaches it to the
// given keys and model. The keys and model must be the ones the layer was
// built over; fingerprint mismatches are rejected.
//
// The input is untrusted: every header field is bounds-checked before it
// drives an allocation, array reads allocate incrementally (so a 64-byte
// hostile header cannot demand terabytes), and truncation at any point
// returns a wrapped, descriptive error — never a panic.
func Load[K kv.Key](r io.Reader, keys []K, model cdfmodel.Model[K]) (*Table[K], error) {
	// A reader that vouches for its length (a snapshot.Section over a
	// stat-sized file) lets the array reads allocate once instead of
	// growing chunk by chunk — the warm-restart hot path. avail tracks the
	// vouched-for bytes still unread; -1 means untrusted.
	avail := int64(-1)
	if ts, ok := r.(interface {
		Trusted() bool
		Remaining() int64
	}); ok && ts.Trusted() {
		avail = ts.Remaining()
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var head [8]uint64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("core: reading layer header: %w", err)
		}
	}
	if head[0] != layerMagic {
		return nil, fmt.Errorf("core: not a Shift-Table layer file")
	}
	if head[1] != layerVersion && head[1] != layerVersion2 {
		return nil, fmt.Errorf("core: unsupported layer version %d", head[1])
	}
	// Validate every remaining header field before using it: mode drives a
	// switch, n and m drive allocations, monotone drives the query path.
	if head[2] != uint64(ModeRange) && head[2] != uint64(ModeMidpoint) {
		return nil, fmt.Errorf("core: invalid mode %d in layer header", head[2])
	}
	if head[3] != uint64(len(keys)) {
		return nil, fmt.Errorf("core: layer built over %d keys, got %d", head[3], len(keys))
	}
	n := len(keys)
	if err := checkLayerM(head[4], n); err != nil {
		return nil, err
	}
	m := int(head[4])
	if head[5] > 1 {
		return nil, fmt.Errorf("core: invalid monotone flag %d in layer header", head[5])
	}
	if got := keysFingerprint(keys); got != head[6] {
		return nil, fmt.Errorf("core: key fingerprint mismatch (layer is stale or for other data)")
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if got := modelFingerprint(model); got != head[7] {
		return nil, fmt.Errorf("core: model mismatch (layer was built over %q-class model)", model.Name())
	}
	t := &Table[K]{
		keys:      keys,
		model:     model,
		mode:      Mode(head[2]),
		n:         n,
		m:         m,
		monotone:  head[5] != 0,
		scratch:   new(sync.Pool),
		buildPool: new(sync.Pool),
	}
	if avail >= 0 {
		avail -= 8 * 8 // header already consumed
	}
	if head[1] == layerVersion2 {
		if err := t.loadBodyV2(br, avail); err != nil {
			return nil, err
		}
		return t, nil
	}
	switch t.mode {
	case ModeRange:
		// Read the split arrays of the file format, then fuse them into
		// the interleaved query-path layout, keeping the split widths for
		// the next WriteTo.
		var lo, hi driftArray
		if err := readDrifts(br, &lo, t.m, avail); err != nil {
			return nil, fmt.Errorf("core: lo drift array: %w", err)
		}
		if avail >= 0 {
			avail -= 8 + int64(t.m)*int64(lo.width)
		}
		if err := readDrifts(br, &hi, t.m, avail); err != nil {
			return nil, fmt.Errorf("core: hi drift array: %w", err)
		}
		if avail >= 0 {
			avail -= 8 + int64(t.m)*int64(hi.width)
		}
		if t.m > 0 {
			t.pairs = fusePairs(&lo, &hi)
		}
		t.loBits, t.hiBits = lo.width, hi.width
	default: // ModeMidpoint; anything else was rejected above
		if err := readDrifts(br, &t.shift, t.m, avail); err != nil {
			return nil, fmt.Errorf("core: drift array: %w", err)
		}
		if avail >= 0 {
			avail -= 8 + int64(t.m)*int64(t.shift.width)
		}
	}
	counts, err := readCounts(br, t.m, n, avail)
	if err != nil {
		return nil, err
	}
	t.count = counts
	return t, nil
}

// checkLayerM validates the partition-count header field: non-negative
// when converted, zero exactly for an empty table, and sane relative to
// the key count so the drift-array reads that follow stay bounded by real
// input.
func checkLayerM(raw uint64, n int) error {
	if n == 0 {
		if raw != 0 {
			return fmt.Errorf("core: layer header claims %d partitions over 0 keys", raw)
		}
		return nil
	}
	if raw == 0 {
		return fmt.Errorf("core: layer header claims 0 partitions over %d keys", n)
	}
	limit := uint64(n) * maxLayerFactor
	if limit/maxLayerFactor != uint64(n) || limit > uint64(math.MaxInt32)*maxLayerFactor {
		limit = uint64(math.MaxInt32) * maxLayerFactor
	}
	if raw > limit {
		return fmt.Errorf("core: layer header claims %d partitions over %d keys (limit %d)", raw, n, limit)
	}
	return nil
}

// readCounts reads the per-partition cardinalities with incremental
// allocation and validates them: counts are non-negative and their sum
// never exceeds the key count (sampled builds record fewer).
func readCounts(r io.Reader, m, n int, avail int64) ([]int32, error) {
	counts, err := readSliceChunked[int32](r, m, 4, "partition count", avail)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var sum int64
	for k, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("core: negative cardinality %d for partition %d", c, k)
		}
		sum += int64(c)
		if sum > int64(n) {
			return nil, fmt.Errorf("core: partition cardinalities sum past the %d indexed keys", n)
		}
	}
	return counts, nil
}

// writePairsHalf streams one half of the fused pair array — lo entries
// (hiHalf false) or hi entries (hiHalf true) — in the split on-disk shape:
// the width header, then the values packed at bits, de-interleaved through
// a fixed-size chunk buffer. Byte-identical to writeDrifts over the
// materialised split array.
func writePairsHalf(w io.Writer, d *driftPairs, m int, width uint8, hiHalf bool) error {
	if d.len() != m {
		return fmt.Errorf("core: drift pair length %d, want %d", d.len(), m)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(width)*8); err != nil {
		return err
	}
	const chunk = 8192
	val := func(k int) int {
		lo, hi := d.pair(k)
		if hiHalf {
			return hi
		}
		return lo
	}
	switch width {
	case 1:
		buf := make([]int8, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int8(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	case 2:
		buf := make([]int16, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int16(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	case 4:
		buf := make([]int32, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int32(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	default:
		buf := make([]int64, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int64(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	}
}

// writeDrifts stores the entry width then the packed array.
func writeDrifts(w io.Writer, d *driftArray, m int) error {
	if d.len() != m {
		return fmt.Errorf("core: drift array length %d, want %d", d.len(), m)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(d.entryBits())); err != nil {
		return err
	}
	switch {
	case d.w8 != nil:
		return binary.Write(w, binary.LittleEndian, d.w8)
	case d.w16 != nil:
		return binary.Write(w, binary.LittleEndian, d.w16)
	case d.w32 != nil:
		return binary.Write(w, binary.LittleEndian, d.w32)
	default:
		return binary.Write(w, binary.LittleEndian, d.w64)
	}
}

// readDrifts reads one packed drift array: the width header, then m
// entries at that width. The width is validated before any allocation, a
// width/m combination the stream cannot back fails with a wrapped
// short-read error, and entries are allocated incrementally so the
// allocation never outruns the bytes actually read.
func readDrifts(r io.Reader, d *driftArray, m int, avail int64) error {
	var bits uint64
	if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
		return fmt.Errorf("reading drift width: %w", err)
	}
	if avail >= 0 {
		avail -= 8
	}
	switch bits {
	case 0:
		// An empty table packs to width 0; a populated layer never does.
		if m != 0 {
			return fmt.Errorf("invalid drift entry width 0 for %d partitions", m)
		}
		d.width = 0
		return nil
	case 8, 16, 32, 64:
		if m == 0 {
			return fmt.Errorf("drift entry width %d for an empty layer", bits)
		}
	default:
		return fmt.Errorf("invalid drift entry width %d", bits)
	}
	d.width = uint8(bits / 8)
	var err error
	switch bits {
	case 8:
		d.w8, err = readSliceChunked[int8](r, m, 1, "drift entry", avail)
	case 16:
		d.w16, err = readSliceChunked[int16](r, m, 2, "drift entry", avail)
	case 32:
		d.w32, err = readSliceChunked[int32](r, m, 4, "drift entry", avail)
	default:
		d.w64, err = readSliceChunked[int64](r, m, 8, "drift entry", avail)
	}
	if err != nil {
		d.width = 0
	}
	return err
}

// readSliceChunked reads m fixed-width values through the one shared
// chunked-read implementation (snapshot.ReadFixed): one-shot allocation
// when avail vouches the bytes are present, bounded incremental growth
// otherwise — the protection the old single make([]T, m) did not have.
func readSliceChunked[T int8 | int16 | int32 | int64](r io.Reader, m, elemSize int, what string, avail int64) ([]T, error) {
	return snapshot.ReadFixed[T](r, m, elemSize, what, avail)
}

// keysFingerprint hashes a structural sample of the keys (size, endpoints,
// and a strided sample) — cheap, order-sensitive, and strong enough to
// catch attaching a layer to the wrong dataset.
func keysFingerprint[K kv.Key](keys []K) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(len(keys)))
	if len(keys) == 0 {
		return h
	}
	stride := len(keys)/64 + 1
	for i := 0; i < len(keys); i += stride {
		mix(uint64(keys[i]))
	}
	mix(uint64(keys[len(keys)-1]))
	return h
}

// modelFingerprint identifies the model family and a probe of its
// predictions, so a layer built over IM cannot be attached to an RS model.
func modelFingerprint[K kv.Key](m cdfmodel.Model[K]) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range m.Name() {
		h ^= uint64(c)
		h *= 1099511628211
	}
	probe := ^K(0)
	for i := 0; i < 8; i++ {
		h ^= uint64(m.Predict(probe / K(i+1)))
		h *= 1099511628211
	}
	return h
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
