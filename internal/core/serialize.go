package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// This file implements layer persistence. A Shift-Table is cheap to rebuild
// (one pass, §3.3) but at the paper's 200M-key scale that pass still reads
// ~1.6 GB; persisting the layer makes index startup I/O-bound instead.
// The file stores only the correction layer — the keys live in the caller's
// clustered storage and the model is re-derived or stored by the caller —
// plus fingerprints of both so a stale layer cannot be attached silently.

const (
	layerMagic   = 0x53485442 // "SHTB"
	layerVersion = 1
)

// WriteTo serialises the layer (not the keys or the model) to w.
func (t *Table[K]) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	head := []uint64{
		layerMagic,
		layerVersion,
		uint64(t.mode),
		uint64(t.n),
		uint64(t.m),
		boolU64(t.monotone),
		keysFingerprint(t.keys),
		modelFingerprint(t.model),
	}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	// The on-disk format (version 1) stores range-mode lo/hi as two split
	// arrays, each at its own narrowest width; de-interleave the in-memory
	// fused layout back to that shape so files round-trip byte-identically
	// across the layout change (DESIGN.md §8). The de-interleave streams in
	// fixed-size chunks — at M = N = 200M keys a materialised split copy
	// would transiently double the layer footprint.
	switch t.mode {
	case ModeRange:
		if err := writePairsHalf(cw, &t.pairs, t.m, t.loBits, false); err != nil {
			return cw.n, err
		}
		if err := writePairsHalf(cw, &t.pairs, t.m, t.hiBits, true); err != nil {
			return cw.n, err
		}
	default:
		if err := writeDrifts(cw, &t.shift, t.m); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, t.count); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Load reads a layer previously written with WriteTo and attaches it to the
// given keys and model. The keys and model must be the ones the layer was
// built over; fingerprint mismatches are rejected.
func Load[K kv.Key](r io.Reader, keys []K, model cdfmodel.Model[K]) (*Table[K], error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var head [8]uint64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("core: reading layer header: %w", err)
		}
	}
	if head[0] != layerMagic {
		return nil, fmt.Errorf("core: not a Shift-Table layer file")
	}
	if head[1] != layerVersion {
		return nil, fmt.Errorf("core: unsupported layer version %d", head[1])
	}
	t := &Table[K]{
		keys:      keys,
		model:     model,
		mode:      Mode(head[2]),
		n:         int(head[3]),
		m:         int(head[4]),
		monotone:  head[5] != 0,
		scratch:   new(sync.Pool),
		buildPool: new(sync.Pool),
	}
	if t.n != len(keys) {
		return nil, fmt.Errorf("core: layer built over %d keys, got %d", t.n, len(keys))
	}
	if got := keysFingerprint(keys); got != head[6] {
		return nil, fmt.Errorf("core: key fingerprint mismatch (layer is stale or for other data)")
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if got := modelFingerprint(model); got != head[7] {
		return nil, fmt.Errorf("core: model mismatch (layer was built over %q-class model)", model.Name())
	}
	switch t.mode {
	case ModeRange:
		// Read the split arrays of the file format, then fuse them into
		// the interleaved query-path layout, keeping the split widths for
		// the next WriteTo.
		var lo, hi driftArray
		if err := readDrifts(br, &lo, t.m); err != nil {
			return nil, err
		}
		if err := readDrifts(br, &hi, t.m); err != nil {
			return nil, err
		}
		t.pairs = fusePairs(&lo, &hi)
		t.loBits, t.hiBits = lo.width, hi.width
	case ModeMidpoint:
		if err := readDrifts(br, &t.shift, t.m); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown mode %d in layer file", head[2])
	}
	t.count = make([]int32, t.m)
	if err := binary.Read(br, binary.LittleEndian, t.count); err != nil {
		return nil, fmt.Errorf("core: reading partition counts: %w", err)
	}
	return t, nil
}

// writePairsHalf streams one half of the fused pair array — lo entries
// (hiHalf false) or hi entries (hiHalf true) — in the split on-disk shape:
// the width header, then the values packed at bits, de-interleaved through
// a fixed-size chunk buffer. Byte-identical to writeDrifts over the
// materialised split array.
func writePairsHalf(w io.Writer, d *driftPairs, m int, width uint8, hiHalf bool) error {
	if d.len() != m {
		return fmt.Errorf("core: drift pair length %d, want %d", d.len(), m)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(width)*8); err != nil {
		return err
	}
	const chunk = 8192
	val := func(k int) int {
		lo, hi := d.pair(k)
		if hiHalf {
			return hi
		}
		return lo
	}
	switch width {
	case 1:
		buf := make([]int8, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int8(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	case 2:
		buf := make([]int16, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int16(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	case 4:
		buf := make([]int32, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int32(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	default:
		buf := make([]int64, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int64(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	}
}

// writeDrifts stores the entry width then the packed array.
func writeDrifts(w io.Writer, d *driftArray, m int) error {
	if d.len() != m {
		return fmt.Errorf("core: drift array length %d, want %d", d.len(), m)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(d.entryBits())); err != nil {
		return err
	}
	switch {
	case d.w8 != nil:
		return binary.Write(w, binary.LittleEndian, d.w8)
	case d.w16 != nil:
		return binary.Write(w, binary.LittleEndian, d.w16)
	case d.w32 != nil:
		return binary.Write(w, binary.LittleEndian, d.w32)
	default:
		return binary.Write(w, binary.LittleEndian, d.w64)
	}
}

func readDrifts(r io.Reader, d *driftArray, m int) error {
	var bits uint64
	if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
		return fmt.Errorf("core: reading drift width: %w", err)
	}
	d.width = uint8(bits / 8)
	switch bits {
	case 8:
		d.w8 = make([]int8, m)
		return binary.Read(r, binary.LittleEndian, d.w8)
	case 16:
		d.w16 = make([]int16, m)
		return binary.Read(r, binary.LittleEndian, d.w16)
	case 32:
		d.w32 = make([]int32, m)
		return binary.Read(r, binary.LittleEndian, d.w32)
	case 64:
		d.w64 = make([]int64, m)
		return binary.Read(r, binary.LittleEndian, d.w64)
	default:
		d.width = 0
		return fmt.Errorf("core: invalid drift entry width %d", bits)
	}
}

// keysFingerprint hashes a structural sample of the keys (size, endpoints,
// and a strided sample) — cheap, order-sensitive, and strong enough to
// catch attaching a layer to the wrong dataset.
func keysFingerprint[K kv.Key](keys []K) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(len(keys)))
	if len(keys) == 0 {
		return h
	}
	stride := len(keys)/64 + 1
	for i := 0; i < len(keys); i += stride {
		mix(uint64(keys[i]))
	}
	mix(uint64(keys[len(keys)-1]))
	return h
}

// modelFingerprint identifies the model family and a probe of its
// predictions, so a layer built over IM cannot be attached to an RS model.
func modelFingerprint[K kv.Key](m cdfmodel.Model[K]) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range m.Name() {
		h ^= uint64(c)
		h *= 1099511628211
	}
	probe := ^K(0)
	for i := 0; i < 8; i++ {
		h ^= uint64(m.Predict(probe / K(i+1)))
		h *= 1099511628211
	}
	return h
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
