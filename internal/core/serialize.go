package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/snapshot"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// This file implements layer persistence. A Shift-Table is cheap to rebuild
// (one pass, §3.3) but at the paper's 200M-key scale that pass still reads
// ~1.6 GB; persisting the layer makes index startup I/O-bound instead.
// The file stores only the correction layer — the keys live in the caller's
// clustered storage and the model is re-derived or stored by the caller —
// plus fingerprints of both so a stale layer cannot be attached silently.

const (
	layerMagic   = 0x53485442 // "SHTB"
	layerVersion = 1
)

// WriteTo serialises the layer (not the keys or the model) to w.
func (t *Table[K]) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	head := []uint64{
		layerMagic,
		layerVersion,
		uint64(t.mode),
		uint64(t.n),
		uint64(t.m),
		boolU64(t.monotone),
		keysFingerprint(t.keys),
		modelFingerprint(t.model),
	}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	// The on-disk format (version 1) stores range-mode lo/hi as two split
	// arrays, each at its own narrowest width; de-interleave the in-memory
	// fused layout back to that shape so files round-trip byte-identically
	// across the layout change (DESIGN.md §8). The de-interleave streams in
	// fixed-size chunks — at M = N = 200M keys a materialised split copy
	// would transiently double the layer footprint.
	switch t.mode {
	case ModeRange:
		if err := writePairsHalf(cw, &t.pairs, t.m, t.loBits, false); err != nil {
			return cw.n, err
		}
		if err := writePairsHalf(cw, &t.pairs, t.m, t.hiBits, true); err != nil {
			return cw.n, err
		}
	default:
		if err := writeDrifts(cw, &t.shift, t.m); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, t.count); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// maxLayerFactor bounds M relative to N in loaded layer files. Builds
// default to M = N and the paper's reduced configurations use M = N/X, so
// a header claiming a layer orders of magnitude larger than its key set
// is corrupt (or hostile), not a configuration this repository produces.
const maxLayerFactor = 64

// Load reads a layer previously written with WriteTo and attaches it to the
// given keys and model. The keys and model must be the ones the layer was
// built over; fingerprint mismatches are rejected.
//
// The input is untrusted: every header field is bounds-checked before it
// drives an allocation, array reads allocate incrementally (so a 64-byte
// hostile header cannot demand terabytes), and truncation at any point
// returns a wrapped, descriptive error — never a panic.
func Load[K kv.Key](r io.Reader, keys []K, model cdfmodel.Model[K]) (*Table[K], error) {
	// A reader that vouches for its length (a snapshot.Section over a
	// stat-sized file) lets the array reads allocate once instead of
	// growing chunk by chunk — the warm-restart hot path. avail tracks the
	// vouched-for bytes still unread; -1 means untrusted.
	avail := int64(-1)
	if ts, ok := r.(interface {
		Trusted() bool
		Remaining() int64
	}); ok && ts.Trusted() {
		avail = ts.Remaining()
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var head [8]uint64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("core: reading layer header: %w", err)
		}
	}
	if head[0] != layerMagic {
		return nil, fmt.Errorf("core: not a Shift-Table layer file")
	}
	if head[1] != layerVersion {
		return nil, fmt.Errorf("core: unsupported layer version %d", head[1])
	}
	// Validate every remaining header field before using it: mode drives a
	// switch, n and m drive allocations, monotone drives the query path.
	if head[2] != uint64(ModeRange) && head[2] != uint64(ModeMidpoint) {
		return nil, fmt.Errorf("core: invalid mode %d in layer header", head[2])
	}
	if head[3] != uint64(len(keys)) {
		return nil, fmt.Errorf("core: layer built over %d keys, got %d", head[3], len(keys))
	}
	n := len(keys)
	if err := checkLayerM(head[4], n); err != nil {
		return nil, err
	}
	m := int(head[4])
	if head[5] > 1 {
		return nil, fmt.Errorf("core: invalid monotone flag %d in layer header", head[5])
	}
	if got := keysFingerprint(keys); got != head[6] {
		return nil, fmt.Errorf("core: key fingerprint mismatch (layer is stale or for other data)")
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if got := modelFingerprint(model); got != head[7] {
		return nil, fmt.Errorf("core: model mismatch (layer was built over %q-class model)", model.Name())
	}
	t := &Table[K]{
		keys:      keys,
		model:     model,
		mode:      Mode(head[2]),
		n:         n,
		m:         m,
		monotone:  head[5] != 0,
		scratch:   new(sync.Pool),
		buildPool: new(sync.Pool),
	}
	if avail >= 0 {
		avail -= 8 * 8 // header already consumed
	}
	switch t.mode {
	case ModeRange:
		// Read the split arrays of the file format, then fuse them into
		// the interleaved query-path layout, keeping the split widths for
		// the next WriteTo.
		var lo, hi driftArray
		if err := readDrifts(br, &lo, t.m, avail); err != nil {
			return nil, fmt.Errorf("core: lo drift array: %w", err)
		}
		if avail >= 0 {
			avail -= 8 + int64(t.m)*int64(lo.width)
		}
		if err := readDrifts(br, &hi, t.m, avail); err != nil {
			return nil, fmt.Errorf("core: hi drift array: %w", err)
		}
		if avail >= 0 {
			avail -= 8 + int64(t.m)*int64(hi.width)
		}
		if t.m > 0 {
			t.pairs = fusePairs(&lo, &hi)
		}
		t.loBits, t.hiBits = lo.width, hi.width
	default: // ModeMidpoint; anything else was rejected above
		if err := readDrifts(br, &t.shift, t.m, avail); err != nil {
			return nil, fmt.Errorf("core: drift array: %w", err)
		}
		if avail >= 0 {
			avail -= 8 + int64(t.m)*int64(t.shift.width)
		}
	}
	counts, err := readCounts(br, t.m, n, avail)
	if err != nil {
		return nil, err
	}
	t.count = counts
	return t, nil
}

// checkLayerM validates the partition-count header field: non-negative
// when converted, zero exactly for an empty table, and sane relative to
// the key count so the drift-array reads that follow stay bounded by real
// input.
func checkLayerM(raw uint64, n int) error {
	if n == 0 {
		if raw != 0 {
			return fmt.Errorf("core: layer header claims %d partitions over 0 keys", raw)
		}
		return nil
	}
	if raw == 0 {
		return fmt.Errorf("core: layer header claims 0 partitions over %d keys", n)
	}
	limit := uint64(n) * maxLayerFactor
	if limit/maxLayerFactor != uint64(n) || limit > uint64(math.MaxInt32)*maxLayerFactor {
		limit = uint64(math.MaxInt32) * maxLayerFactor
	}
	if raw > limit {
		return fmt.Errorf("core: layer header claims %d partitions over %d keys (limit %d)", raw, n, limit)
	}
	return nil
}

// readCounts reads the per-partition cardinalities with incremental
// allocation and validates them: counts are non-negative and their sum
// never exceeds the key count (sampled builds record fewer).
func readCounts(r io.Reader, m, n int, avail int64) ([]int32, error) {
	counts, err := readSliceChunked[int32](r, m, 4, "partition count", avail)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var sum int64
	for k, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("core: negative cardinality %d for partition %d", c, k)
		}
		sum += int64(c)
		if sum > int64(n) {
			return nil, fmt.Errorf("core: partition cardinalities sum past the %d indexed keys", n)
		}
	}
	return counts, nil
}

// writePairsHalf streams one half of the fused pair array — lo entries
// (hiHalf false) or hi entries (hiHalf true) — in the split on-disk shape:
// the width header, then the values packed at bits, de-interleaved through
// a fixed-size chunk buffer. Byte-identical to writeDrifts over the
// materialised split array.
func writePairsHalf(w io.Writer, d *driftPairs, m int, width uint8, hiHalf bool) error {
	if d.len() != m {
		return fmt.Errorf("core: drift pair length %d, want %d", d.len(), m)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(width)*8); err != nil {
		return err
	}
	const chunk = 8192
	val := func(k int) int {
		lo, hi := d.pair(k)
		if hiHalf {
			return hi
		}
		return lo
	}
	switch width {
	case 1:
		buf := make([]int8, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int8(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	case 2:
		buf := make([]int16, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int16(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	case 4:
		buf := make([]int32, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int32(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	default:
		buf := make([]int64, 0, chunk)
		for k := 0; k < m; k++ {
			buf = append(buf, int64(val(k)))
			if len(buf) == chunk {
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		return binary.Write(w, binary.LittleEndian, buf)
	}
}

// writeDrifts stores the entry width then the packed array.
func writeDrifts(w io.Writer, d *driftArray, m int) error {
	if d.len() != m {
		return fmt.Errorf("core: drift array length %d, want %d", d.len(), m)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(d.entryBits())); err != nil {
		return err
	}
	switch {
	case d.w8 != nil:
		return binary.Write(w, binary.LittleEndian, d.w8)
	case d.w16 != nil:
		return binary.Write(w, binary.LittleEndian, d.w16)
	case d.w32 != nil:
		return binary.Write(w, binary.LittleEndian, d.w32)
	default:
		return binary.Write(w, binary.LittleEndian, d.w64)
	}
}

// readDrifts reads one packed drift array: the width header, then m
// entries at that width. The width is validated before any allocation, a
// width/m combination the stream cannot back fails with a wrapped
// short-read error, and entries are allocated incrementally so the
// allocation never outruns the bytes actually read.
func readDrifts(r io.Reader, d *driftArray, m int, avail int64) error {
	var bits uint64
	if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
		return fmt.Errorf("reading drift width: %w", err)
	}
	if avail >= 0 {
		avail -= 8
	}
	switch bits {
	case 0:
		// An empty table packs to width 0; a populated layer never does.
		if m != 0 {
			return fmt.Errorf("invalid drift entry width 0 for %d partitions", m)
		}
		d.width = 0
		return nil
	case 8, 16, 32, 64:
		if m == 0 {
			return fmt.Errorf("drift entry width %d for an empty layer", bits)
		}
	default:
		return fmt.Errorf("invalid drift entry width %d", bits)
	}
	d.width = uint8(bits / 8)
	var err error
	switch bits {
	case 8:
		d.w8, err = readSliceChunked[int8](r, m, 1, "drift entry", avail)
	case 16:
		d.w16, err = readSliceChunked[int16](r, m, 2, "drift entry", avail)
	case 32:
		d.w32, err = readSliceChunked[int32](r, m, 4, "drift entry", avail)
	default:
		d.w64, err = readSliceChunked[int64](r, m, 8, "drift entry", avail)
	}
	if err != nil {
		d.width = 0
	}
	return err
}

// readSliceChunked reads m fixed-width values through the one shared
// chunked-read implementation (snapshot.ReadFixed): one-shot allocation
// when avail vouches the bytes are present, bounded incremental growth
// otherwise — the protection the old single make([]T, m) did not have.
func readSliceChunked[T int8 | int16 | int32 | int64](r io.Reader, m, elemSize int, what string, avail int64) ([]T, error) {
	return snapshot.ReadFixed[T](r, m, elemSize, what, avail)
}

// keysFingerprint hashes a structural sample of the keys (size, endpoints,
// and a strided sample) — cheap, order-sensitive, and strong enough to
// catch attaching a layer to the wrong dataset.
func keysFingerprint[K kv.Key](keys []K) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(len(keys)))
	if len(keys) == 0 {
		return h
	}
	stride := len(keys)/64 + 1
	for i := 0; i < len(keys); i += stride {
		mix(uint64(keys[i]))
	}
	mix(uint64(keys[len(keys)-1]))
	return h
}

// modelFingerprint identifies the model family and a probe of its
// predictions, so a layer built over IM cannot be attached to an RS model.
func modelFingerprint[K kv.Key](m cdfmodel.Model[K]) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range m.Name() {
		h ^= uint64(c)
		h *= 1099511628211
	}
	probe := ^K(0)
	for i := 0; i < 8; i++ {
		h ^= uint64(m.Predict(probe / K(i+1)))
		h *= 1099511628211
	}
	return h
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
