package core

import (
	"bytes"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/snapshot"
)

// fuzzKeys deterministically expands the fuzz parameters into a sorted key
// slice. dup controls duplicate-run length (the paper's §3.2 duplicate
// handling), drift controls gap burstiness — high drift produces the
// clustered, heavy-tailed spacing that makes the IM model's error (and
// hence the Shift-Table's correction) adversarial.
func fuzzKeys(seed uint64, n int, dup, drift uint8) []uint64 {
	keys := make([]uint64, n)
	x := seed
	cur := seed % (1 << 20)
	run := 0
	for i := range keys {
		if run > 0 {
			run--
		} else {
			x = x*0x9E3779B97F4A7C15 + 1
			gap := (x >> 33) & (uint64(drift)<<8 | 0xF)
			if drift > 128 && x%97 == 0 {
				gap <<= 20 // rare huge jump: adversarial cluster boundary
			}
			cur += gap
			run = int(x>>56) % (int(dup)/8 + 1)
		}
		keys[i] = cur
	}
	return keys
}

// FuzzFindLookup drives core.Find, Lookup and the batch engine over fuzzed
// datasets and configurations, with kv.LowerBound as the rank oracle and
// batch ≡ scalar as the pipeline oracle.
func FuzzFindLookup(f *testing.F) {
	f.Add(uint64(7), uint16(500), uint8(0), uint8(3), uint8(0), uint64(12345))
	f.Add(uint64(3), uint16(800), uint8(255), uint8(1), uint8(1), uint64(99))      // duplicate-heavy
	f.Add(uint64(11), uint16(1000), uint8(8), uint8(255), uint8(2), uint64(1<<40)) // adversarially drifted
	f.Add(uint64(1), uint16(0), uint8(0), uint8(0), uint8(0), uint64(0))           // empty keys
	f.Add(uint64(5), uint16(64), uint8(32), uint8(200), uint8(7), uint64(1))       // sampled midpoint, reduced M

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, dup, drift, modeBits uint8, q uint64) {
		keys := fuzzKeys(seed, int(n)%2048, dup, drift)
		cfg := Config{}
		if modeBits&1 != 0 {
			cfg.Mode = ModeMidpoint
		}
		if modeBits&2 != 0 && len(keys) > 8 {
			cfg.M = len(keys) / 8
		}
		if modeBits&4 != 0 {
			cfg.SampleStride = 3 // ignored in range mode, lossy in midpoint
		}
		table, err := Build(keys, cdfmodel.NewInterpolation(keys), cfg)
		if err != nil {
			t.Fatalf("Build(%d keys, %+v): %v", len(keys), cfg, err)
		}

		// Probe q itself plus the structurally interesting neighbours.
		qs := []uint64{q, 0, ^uint64(0)}
		if len(keys) > 0 {
			mid := keys[len(keys)/2]
			qs = append(qs, keys[0], keys[len(keys)-1], mid, mid+1, mid-1,
				keys[len(keys)-1]+1, keys[0]-1)
		}
		x := seed
		for i := 0; i < 64; i++ {
			x = x*0xD1342543DE82EF95 + 29
			qs = append(qs, q+x%(1<<(x%40+1)))
		}
		for _, qq := range qs {
			want := kv.LowerBound(keys, qq)
			if got := table.Find(qq); got != want {
				t.Fatalf("Find(%d) = %d, want %d (n=%d cfg=%+v)", qq, got, want, len(keys), cfg)
			}
			pos, found := table.Lookup(qq)
			if pos != want || found != (want < len(keys) && keys[want] == qq) {
				t.Fatalf("Lookup(%d) = (%d,%v), want (%d,%v)", qq, pos, found,
					want, want < len(keys) && keys[want] == qq)
			}
		}
		// Batch ≡ scalar, through the staged pipeline.
		out := table.FindBatch(qs, nil)
		ranks, found := table.LookupBatch(qs, nil, nil)
		for i, qq := range qs {
			want := kv.LowerBound(keys, qq)
			if out[i] != want || ranks[i] != want {
				t.Fatalf("FindBatch[%d]=%d LookupBatch[%d]=%d for q=%d, want %d",
					i, out[i], i, ranks[i], qq, want)
			}
			if found[i] != (want < len(keys) && keys[want] == qq) {
				t.Fatalf("LookupBatch found[%d]=%v for q=%d, want %v",
					i, found[i], qq, !found[i])
			}
		}
	})
}

// FuzzLoad drives the two untrusted-input paths — the bare layer loader
// (core.Load) and the snapshot-container loader (LoadTableSnapshot) —
// over mutated and truncated byte corpora seeded from valid files. The
// property is absolute: any input either loads (and then answers queries
// identically to a freshly built table, when it loaded from an untampered
// prefix this cannot happen by luck) or returns an error. No panics, no
// unbounded allocation (readSliceChunked/Section.Bytes grow at most 1 MiB
// per read, so a hostile length dies on the short read behind it).
func FuzzLoad(f *testing.F) {
	keys := fuzzKeys(7, 700, 16, 40)
	model := cdfmodel.NewInterpolation(keys)

	// Seed with valid artifacts of both formats and both modes, plus
	// mutated and truncated variants so the fuzzer starts at the
	// interesting boundaries.
	for _, cfg := range []Config{{Mode: ModeRange}, {Mode: ModeMidpoint}, {Mode: ModeRange, M: 77}} {
		tab, err := Build(keys, model, cfg)
		if err != nil {
			f.Fatal(err)
		}
		var layer bytes.Buffer
		if _, err := tab.WriteTo(&layer); err != nil {
			f.Fatal(err)
		}
		f.Add(layer.Bytes())
		f.Add(layer.Bytes()[:layer.Len()/2])
		mut := append([]byte(nil), layer.Bytes()...)
		mut[35] ^= 0x81 // inside the m field
		f.Add(mut)

		var cont bytes.Buffer
		sw, err := snapshot.NewWriter(&cont, tab.SnapshotKind())
		if err != nil {
			f.Fatal(err)
		}
		if err := tab.PersistSnapshot(sw); err != nil {
			f.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(cont.Bytes())
		f.Add(cont.Bytes()[:2*cont.Len()/3])
		mut2 := append([]byte(nil), cont.Bytes()...)
		mut2[20] ^= 0x04
		f.Add(mut2)

		// The v2 (page-aligned, mappable) container: full, truncated
		// mid-section and mid-footer, and with a flipped byte in the first
		// page (header/padding territory) so the fuzzer starts at the
		// geometry validators.
		var cont2 bytes.Buffer
		sw2, err := snapshot.NewWriterV2(&cont2, tab.SnapshotKind())
		if err != nil {
			f.Fatal(err)
		}
		if err := tab.PersistSnapshot(sw2); err != nil {
			f.Fatal(err)
		}
		if err := sw2.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(cont2.Bytes())
		f.Add(cont2.Bytes()[:2*cont2.Len()/3])
		f.Add(cont2.Bytes()[:cont2.Len()-17])
		mut3 := append([]byte(nil), cont2.Bytes()...)
		mut3[40] ^= 0x10
		f.Add(mut3)
	}
	f.Add([]byte{})
	f.Add([]byte("STSNAP01"))
	f.Add([]byte("STSNAP02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Bare layer format against the real keys and model.
		if tab, err := Load(bytes.NewReader(data), keys, model); err == nil {
			// Whatever loaded claims to be a layer over these keys; probing
			// it must at least never step out of bounds.
			for _, q := range []uint64{0, keys[0], keys[len(keys)/2], keys[len(keys)-1], ^uint64(0)} {
				r := tab.Find(q)
				if r < 0 || r > tab.N() {
					t.Fatalf("loaded layer Find(%d) = %d out of [0, %d]", q, r, tab.N())
				}
			}
		}
		// Snapshot container: kind-checked, fingerprint-bound, checksummed.
		_ = snapshot.Load(bytes.NewReader(data), int64(len(data)), func(sr *snapshot.Reader) error {
			if sr.Kind() != SnapshotKindTable {
				return nil
			}
			tab, err := LoadTableSnapshot[uint64](sr)
			if err != nil {
				return err
			}
			for _, q := range []uint64{0, 1 << 30, ^uint64(0)} {
				r := tab.Find(q)
				if r < 0 || r > tab.N() {
					t.Fatalf("snapshot table Find(%d) = %d out of [0, %d]", q, r, tab.N())
				}
			}
			return nil
		})
		// And with unknown total size (the io.Reader path bounds
		// allocations by chunking alone).
		_ = snapshot.Load(bytes.NewReader(data), -1, func(sr *snapshot.Reader) error {
			if sr.Kind() != SnapshotKindTable {
				return nil
			}
			_, err := LoadTableSnapshot[uint64](sr)
			return err
		})
		// v2 mapped open: geometry validates eagerly, payload CRCs lazily.
		// Whatever survives the parse — even with VerifyAll unrun, the
		// trust level a hostile file meets — must be memory-safe to query:
		// mis-answers are allowed, faults and out-of-range ranks are not.
		if m, err := snapshot.OpenMappedBytes(data); err == nil && m.Kind() == SnapshotKindTable {
			verified := m.VerifyAll() == nil
			if tab, err := MapTableSnapshot[uint64](m); err == nil {
				for _, q := range []uint64{0, 1 << 30, ^uint64(0)} {
					r := tab.Find(q)
					if r < 0 || r > tab.N() {
						t.Fatalf("mapped table (verified=%v) Find(%d) = %d out of [0, %d]",
							verified, q, r, tab.N())
					}
				}
			}
		}
	})
}

// FuzzBuildLayout is the build-pipeline and fused-layout oracle: for a
// fuzzed corpus and configuration it checks (1) the arena-sharded parallel
// build is bit-identical to the serial build — widths, drifts, counts,
// cached stats; (2) the fused interleaved pair layout de-interleaves to
// exactly the split arrays the serialization format stores, and fusing
// them back reproduces the query layout; (3) a serialize/load round trip
// preserves the layer byte-for-byte and answers queries identically.
func FuzzBuildLayout(f *testing.F) {
	f.Add(uint64(7), uint16(5000), uint8(0), uint8(3), uint8(0), uint8(3))
	f.Add(uint64(3), uint16(6000), uint8(255), uint8(1), uint8(1), uint8(8))  // duplicate-heavy
	f.Add(uint64(11), uint16(7000), uint8(8), uint8(255), uint8(2), uint8(5)) // adversarially drifted
	f.Add(uint64(1), uint16(0), uint8(0), uint8(0), uint8(0), uint8(2))       // empty keys
	f.Add(uint64(9), uint16(4200), uint8(64), uint8(40), uint8(3), uint8(16)) // midpoint, reduced M

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, dup, drift, modeBits, workers uint8) {
		keys := fuzzKeys(seed, int(n)%8192, dup, drift)
		cfg := Config{}
		if modeBits&1 != 0 {
			cfg.Mode = ModeMidpoint
		}
		if modeBits&2 != 0 && len(keys) > 8 {
			cfg.M = len(keys) / 8
		}
		w := int(workers)%16 + 2
		model := cdfmodel.NewInterpolation(keys)
		serial, err := Build(keys, model, cfg)
		if err != nil {
			t.Fatalf("Build(%d keys, %+v): %v", len(keys), cfg, err)
		}
		par, err := BuildParallel(keys, model, cfg, w)
		if err != nil {
			t.Fatalf("BuildParallel(%d keys, %+v, %d): %v", len(keys), cfg, w, err)
		}
		if d := diffLayer(serial, par); d != "" {
			t.Fatalf("parallel(%d) differs from serial (n=%d cfg=%+v): %s", w, len(keys), cfg, d)
		}

		// Fused ≡ split at the layout level.
		if cfg.Mode == ModeRange && serial.n > 0 {
			lo, hi := serial.pairs.split(serial.loBits, serial.hiBits)
			for k := 0; k < serial.m; k++ {
				plo, phi := serial.pairs.pair(k)
				if lo.get(k) != plo || hi.get(k) != phi {
					t.Fatalf("split[%d] = <%d,%d>, fused <%d,%d>", k, lo.get(k), hi.get(k), plo, phi)
				}
			}
			refused := fusePairs(&lo, &hi)
			for k := 0; k < serial.m; k++ {
				alo, ahi := refused.pair(k)
				plo, phi := serial.pairs.pair(k)
				if alo != plo || ahi != phi {
					t.Fatalf("refuse[%d] = <%d,%d>, want <%d,%d>", k, alo, ahi, plo, phi)
				}
			}
		}

		// Serialize → load → serialize: byte-identical files, identical
		// answers (the split on-disk format survives the fused in-memory
		// layout).
		if serial.n > 0 {
			var buf1 bytes.Buffer
			if _, err := par.WriteTo(&buf1); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			loaded, err := Load(bytes.NewReader(buf1.Bytes()), keys, model)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			var buf2 bytes.Buffer
			if _, err := loaded.WriteTo(&buf2); err != nil {
				t.Fatalf("re-WriteTo: %v", err)
			}
			if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
				t.Fatal("serialize/load/serialize not byte-identical")
			}
			x := seed
			for i := 0; i < 32; i++ {
				x = x*0xD1342543DE82EF95 + 29
				q := x % (keys[len(keys)-1] + 3)
				want := kv.LowerBound(keys, q)
				if got := loaded.Find(q); got != want {
					t.Fatalf("loaded.Find(%d) = %d, want %d", q, got, want)
				}
				if got := par.Find(q); got != want {
					t.Fatalf("par.Find(%d) = %d, want %d", q, got, want)
				}
			}
		}
	})
}
