package core

import (
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// fuzzKeys deterministically expands the fuzz parameters into a sorted key
// slice. dup controls duplicate-run length (the paper's §3.2 duplicate
// handling), drift controls gap burstiness — high drift produces the
// clustered, heavy-tailed spacing that makes the IM model's error (and
// hence the Shift-Table's correction) adversarial.
func fuzzKeys(seed uint64, n int, dup, drift uint8) []uint64 {
	keys := make([]uint64, n)
	x := seed
	cur := seed % (1 << 20)
	run := 0
	for i := range keys {
		if run > 0 {
			run--
		} else {
			x = x*0x9E3779B97F4A7C15 + 1
			gap := (x >> 33) & (uint64(drift)<<8 | 0xF)
			if drift > 128 && x%97 == 0 {
				gap <<= 20 // rare huge jump: adversarial cluster boundary
			}
			cur += gap
			run = int(x>>56) % (int(dup)/8 + 1)
		}
		keys[i] = cur
	}
	return keys
}

// FuzzFindLookup drives core.Find, Lookup and the batch engine over fuzzed
// datasets and configurations, with kv.LowerBound as the rank oracle and
// batch ≡ scalar as the pipeline oracle.
func FuzzFindLookup(f *testing.F) {
	f.Add(uint64(7), uint16(500), uint8(0), uint8(3), uint8(0), uint64(12345))
	f.Add(uint64(3), uint16(800), uint8(255), uint8(1), uint8(1), uint64(99))      // duplicate-heavy
	f.Add(uint64(11), uint16(1000), uint8(8), uint8(255), uint8(2), uint64(1<<40)) // adversarially drifted
	f.Add(uint64(1), uint16(0), uint8(0), uint8(0), uint8(0), uint64(0))           // empty keys
	f.Add(uint64(5), uint16(64), uint8(32), uint8(200), uint8(7), uint64(1))       // sampled midpoint, reduced M

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, dup, drift, modeBits uint8, q uint64) {
		keys := fuzzKeys(seed, int(n)%2048, dup, drift)
		cfg := Config{}
		if modeBits&1 != 0 {
			cfg.Mode = ModeMidpoint
		}
		if modeBits&2 != 0 && len(keys) > 8 {
			cfg.M = len(keys) / 8
		}
		if modeBits&4 != 0 {
			cfg.SampleStride = 3 // ignored in range mode, lossy in midpoint
		}
		table, err := Build(keys, cdfmodel.NewInterpolation(keys), cfg)
		if err != nil {
			t.Fatalf("Build(%d keys, %+v): %v", len(keys), cfg, err)
		}

		// Probe q itself plus the structurally interesting neighbours.
		qs := []uint64{q, 0, ^uint64(0)}
		if len(keys) > 0 {
			mid := keys[len(keys)/2]
			qs = append(qs, keys[0], keys[len(keys)-1], mid, mid+1, mid-1,
				keys[len(keys)-1]+1, keys[0]-1)
		}
		x := seed
		for i := 0; i < 64; i++ {
			x = x*0xD1342543DE82EF95 + 29
			qs = append(qs, q+x%(1<<(x%40+1)))
		}
		for _, qq := range qs {
			want := kv.LowerBound(keys, qq)
			if got := table.Find(qq); got != want {
				t.Fatalf("Find(%d) = %d, want %d (n=%d cfg=%+v)", qq, got, want, len(keys), cfg)
			}
			pos, found := table.Lookup(qq)
			if pos != want || found != (want < len(keys) && keys[want] == qq) {
				t.Fatalf("Lookup(%d) = (%d,%v), want (%d,%v)", qq, pos, found,
					want, want < len(keys) && keys[want] == qq)
			}
		}
		// Batch ≡ scalar, through the staged pipeline.
		out := table.FindBatch(qs, nil)
		ranks, found := table.LookupBatch(qs, nil, nil)
		for i, qq := range qs {
			want := kv.LowerBound(keys, qq)
			if out[i] != want || ranks[i] != want {
				t.Fatalf("FindBatch[%d]=%d LookupBatch[%d]=%d for q=%d, want %d",
					i, out[i], i, ranks[i], qq, want)
			}
			if found[i] != (want < len(keys) && keys[want] == qq) {
				t.Fatalf("LookupBatch found[%d]=%v for q=%d, want %v",
					i, found[i], qq, !found[i])
			}
		}
	})
}
