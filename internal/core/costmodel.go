package core

// This file implements the paper's cost model (§3.7) and tuning rules
// (§3.9, §4.1): closed-form latency estimates for the index with and
// without the Shift-Table layer, parameterised by a hardware-dependent
// local-search latency function L(s) obtained from a micro-benchmark
// (internal/bench measures one; tests use analytic stand-ins).

// LatencyFn maps a local-search range of s records to its expected latency
// in nanoseconds over non-cached memory — the paper's L(s), measured by the
// §2.3 micro-benchmark (Fig. 2a). It is an alias, not a defined type, so
// backend packages can implement the index CostEstimator capability
// (internal/index) without importing core.
type LatencyFn = func(s int) float64

// CostEstimate is the output of the §3.7 cost model for one configuration.
type CostEstimate struct {
	ModelNs  float64 // Latency(Fθ): running the model itself
	LayerNs  float64 // the extra lookup into the Shift-Table array
	SearchNs float64 // expected local-search time
	TotalNs  float64
}

// EstimateWith evaluates Eq. 9: the expected lookup latency with the
// Shift-Table enabled,
//
//	Latency = Latency(Fθ) + layer + 1/N · Σ_k Ck·L(Ck),
//
// where the per-partition window Ck is what remains to search after
// correction. modelNs is the measured model execution latency and layerNs
// the cost of the one extra (non-cached) lookup into the mapping array
// (≈40 ns in the paper's setup, §4.1).
func (t *Table[K]) EstimateWith(modelNs, layerNs float64, l LatencyFn) CostEstimate {
	est := CostEstimate{ModelNs: modelNs, LayerNs: layerNs}
	if t.n > 0 {
		var acc float64
		for _, c := range t.count {
			if c > 0 {
				acc += float64(c) * l(int(c))
			}
		}
		est.SearchNs = acc / float64(t.n)
	}
	est.TotalNs = est.ModelNs + est.LayerNs + est.SearchNs
	return est
}

// EstimateWithout evaluates Eq. 10: the expected lookup latency of the bare
// model, estimable from the already-built layer without running a benchmark
// (§3.7): the model error for the keys of partition k is Δ̄k = Δk + Ck/2, so
//
//	Latency = Latency(Fθ) + 1/N · Σ_k Ck·L(|Δ̄k|).
func (t *Table[K]) EstimateWithout(modelNs float64, l LatencyFn) CostEstimate {
	est := CostEstimate{ModelNs: modelNs}
	if t.n > 0 {
		var acc float64
		for k, c := range t.count {
			if c == 0 {
				continue
			}
			var drift int
			if t.mode == ModeRange {
				dlo, _ := t.pairs.pair(k)
				drift = dlo + int(c)/2
			} else {
				drift = t.shift.get(k)
			}
			if drift < 0 {
				drift = -drift
			}
			if drift < 1 {
				drift = 1
			}
			acc += float64(c) * l(drift)
		}
		est.SearchNs = acc / float64(t.n)
	}
	est.TotalNs = est.ModelNs + est.SearchNs
	return est
}

// The default constants behind the capability-level EstimateNs: the §4.1
// setup charges ~40 ns for the one extra non-cached layer lookup and a few
// nanoseconds for executing a register-resident model. EstimateNs uses
// L(1) — one non-cached probe on this machine — for the layer lookup and
// this constant for the model.
const estimateModelNs = 5.0

// EstimateNs implements the index CostEstimator capability (§3.7
// generalised across backends): the Eq. 9 expectation with the layer
// lookup priced at L(1), one non-cached probe under the supplied latency
// curve.
func (t *Table[K]) EstimateNs(l LatencyFn) float64 {
	return t.EstimateWith(estimateModelNs, l(1), l).TotalNs
}

// Advice is the outcome of the paper's tuning procedure (§3.9, §4.1).
type Advice struct {
	UseShiftTable bool
	Reason        string
	ErrBefore     float64 // mean model error without correction
	ErrAfter      float64 // Eq. 8 estimate with correction
}

// The §4.1 thresholds: skip the layer when the model is already accurate to
// within ~a cache line, or when correction would not repay its ~50 ns lookup
// with at least a 10× error reduction.
const (
	adviseMinError       = 10.0
	adviseMinImprovement = 10.0
)

// Advise applies the paper's two tuning rules (§4.1): do not add the
// Shift-Table if (1) the error before adding it is below 10 records, or
// (2) adding it does not reduce the error by at least a factor of 10.
func Advise(errBefore, errAfter float64) Advice {
	a := Advice{ErrBefore: errBefore, ErrAfter: errAfter}
	switch {
	case errBefore < adviseMinError:
		a.Reason = "model error already below 10 records; correction lookup would not pay off"
	case errAfter > 0 && errBefore/errAfter < adviseMinImprovement:
		a.Reason = "correction reduces error by less than 10x; not worth the extra lookup"
	default:
		a.UseShiftTable = true
		a.Reason = "correction reduces error enough to repay its one extra memory lookup"
	}
	return a
}

// Advise runs the tuning procedure for this built table: it measures the
// model error over the indexed keys, compares it with the layer's Eq. 8
// estimate, and applies the §4.1 rules.
func (t *Table[K]) Advise() Advice {
	before, _ := ModelError(t.keys, t.model)
	return Advise(before, t.AvgError())
}
