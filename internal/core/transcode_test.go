package core

import (
	"bytes"

	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
	"repro/internal/snapshot"
)

// transcodeTables builds the table zoo the transcode properties are
// checked over: both modes, reduced M (wider per-partition drifts), and
// several datasets so the packed widths actually vary.
func transcodeTables(tb testing.TB) []*Table[uint64] {
	tb.Helper()
	var tabs []*Table[uint64]
	for _, name := range []dataset.Name{dataset.Face, dataset.Wiki, dataset.UDen} {
		keys := dataset.MustGenerate(name, 64, 20_000, 5)
		model := cdfmodel.NewInterpolation(keys)
		for _, cfg := range []Config{
			{Mode: ModeRange},
			{Mode: ModeMidpoint},
			{Mode: ModeRange, M: 777},
			{Mode: ModeMidpoint, M: 333},
		} {
			tab, err := Build(keys, model, cfg)
			if err != nil {
				tb.Fatal(err)
			}
			tabs = append(tabs, tab)
		}
	}
	return tabs
}

// layerBytes serialises one table's layer in the requested blob layout.
func layerBytes(tb testing.TB, tab *Table[uint64], v2 bool) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if v2 {
		if err := tab.writeLayerV2(&buf); err != nil {
			tb.Fatal(err)
		}
	} else {
		if _, err := tab.WriteTo(&buf); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestTranscodeLayerMatchesNativeWriters pins the core property: the
// transcoded blob is byte-identical to what the native writer of the
// target version produces, in both directions, and round trips are
// stable.
func TestTranscodeLayerMatchesNativeWriters(t *testing.T) {
	for i, tab := range transcodeTables(t) {
		v1 := layerBytes(t, tab, false)
		v2 := layerBytes(t, tab, true)

		up, err := TranscodeLayer(v1, true)
		if err != nil {
			t.Fatalf("table %d: v1→v2: %v", i, err)
		}
		if !bytes.Equal(up, v2) {
			t.Errorf("table %d: transcoded v2 blob differs from native writeLayerV2", i)
		}
		down, err := TranscodeLayer(v2, false)
		if err != nil {
			t.Fatalf("table %d: v2→v1: %v", i, err)
		}
		if !bytes.Equal(down, v1) {
			t.Errorf("table %d: transcoded v1 blob differs from native WriteTo", i)
		}
		// Same-version transcodes validate and pass through.
		if same, err := TranscodeLayer(v1, false); err != nil || !bytes.Equal(same, v1) {
			t.Errorf("table %d: v1→v1 pass-through: %v", i, err)
		}
		if same, err := TranscodeLayer(v2, true); err != nil || !bytes.Equal(same, v2) {
			t.Errorf("table %d: v2→v2 pass-through: %v", i, err)
		}
	}
}

// saveTableAt serialises a full shift-table container at the given
// container version.
func saveTableAt(tb testing.TB, tab *Table[uint64], version uint32) []byte {
	tb.Helper()
	var buf bytes.Buffer
	var sw *snapshot.Writer
	var err error
	if version == snapshot.Version2 {
		sw, err = snapshot.NewWriterV2(&buf, tab.SnapshotKind())
	} else {
		sw, err = snapshot.NewWriter(&buf, tab.SnapshotKind())
	}
	if err != nil {
		tb.Fatal(err)
	}
	if err := tab.PersistSnapshot(sw); err != nil {
		tb.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func transcodeContainer(tb testing.TB, src []byte, to uint32) []byte {
	tb.Helper()
	var out bytes.Buffer
	if err := snapshot.Transcode(bytes.NewReader(src), int64(len(src)), &out, to); err != nil {
		tb.Fatalf("transcode container to v%d: %v", to, err)
	}
	return out.Bytes()
}

func loadTableBytes(tb testing.TB, data []byte) *Table[uint64] {
	tb.Helper()
	sr, err := snapshot.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		tb.Fatal(err)
	}
	tab, err := LoadTableSnapshot[uint64](sr)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		tb.Fatal(err)
	}
	return tab
}

// TestTranscodeContainerRankIdentical is the end-to-end property the
// rolling upgrade rests on: a whole shift-table container transcoded
// v1→v2 (and back) answers every query with the identical rank, whether
// the transcoded copy is stream-loaded or mapped in place.
func TestTranscodeContainerRankIdentical(t *testing.T) {
	for i, tab := range transcodeTables(t) {
		v1 := saveTableAt(t, tab, snapshot.Version)
		native2 := saveTableAt(t, tab, snapshot.Version2)

		up := transcodeContainer(t, v1, snapshot.Version2)
		if !bytes.Equal(up, native2) {
			t.Errorf("table %d: transcoded container differs from a natively written v2 container", i)
		}
		if down := transcodeContainer(t, up, snapshot.Version); !bytes.Equal(down, v1) {
			t.Errorf("table %d: container round trip is not byte-stable", i)
		}

		streamed := loadTableBytes(t, up)
		m, err := snapshot.OpenMappedBytes(up)
		if err != nil {
			t.Fatalf("table %d: transcoded container is not mappable: %v", i, err)
		}
		if err := m.VerifyAll(); err != nil {
			t.Fatalf("table %d: transcoded section CRCs: %v", i, err)
		}
		mapped, err := MapTableSnapshot[uint64](m)
		if err != nil {
			t.Fatalf("table %d: mapping transcoded table: %v", i, err)
		}

		rng := rand.New(rand.NewSource(int64(i) + 9))
		hi := tab.keys[len(tab.keys)-1] + 3
		for q := 0; q < 2000; q++ {
			k := rng.Uint64() % hi
			want := tab.Find(k)
			if got := streamed.Find(k); got != want {
				t.Fatalf("table %d: streamed Find(%d) = %d, want %d", i, k, got, want)
			}
			if got := mapped.Find(k); got != want {
				t.Fatalf("table %d: mapped Find(%d) = %d, want %d", i, k, got, want)
			}
		}
	}
}

// TestTranscodeLayerRejectsCorruption walks single-byte corruption and
// truncation over real blobs: the transcoder may only ever error — no
// panics, and no silently re-encoded garbage that the strict validators
// would have caught.
func TestTranscodeLayerRejectsCorruption(t *testing.T) {
	tabs := transcodeTables(t)
	tab := tabs[0]
	for _, v2 := range []bool{false, true} {
		blob := layerBytes(t, tab, v2)
		for cut := 0; cut < len(blob); cut += 13 {
			if _, err := TranscodeLayer(blob[:cut], !v2); err == nil {
				t.Errorf("v2=%v: truncation at %d transcoded cleanly", v2, cut)
			}
		}
	}
}

func FuzzTranscodeLayer(f *testing.F) {
	keys := dataset.MustGenerate(dataset.Face, 64, 3_000, 5)
	model := cdfmodel.NewInterpolation(keys)
	for _, cfg := range []Config{{Mode: ModeRange}, {Mode: ModeMidpoint}, {Mode: ModeRange, M: 99}} {
		tab, err := Build(keys, model, cfg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(layerBytes(f, tab, false))
		f.Add(layerBytes(f, tab, true))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, toV2 := range []bool{false, true} {
			out, err := TranscodeLayer(data, toV2)
			if err != nil {
				continue
			}
			// Anything accepted must be stable under a second transcode in
			// the same direction and reversible back to itself.
			again, err := TranscodeLayer(out, toV2)
			if err != nil || !bytes.Equal(again, out) {
				t.Fatalf("toV2=%v: accepted output not idempotent: %v", toV2, err)
			}
			back, err := TranscodeLayer(out, !toV2)
			if err != nil {
				t.Fatalf("toV2=%v: accepted output failed the reverse transcode: %v", toV2, err)
			}
			roundTrip, err := TranscodeLayer(back, toV2)
			if err != nil || !bytes.Equal(roundTrip, out) {
				t.Fatalf("toV2=%v: round trip is not byte-stable: %v", toV2, err)
			}
		}
	})
}

// BenchmarkTranscodeContainer measures the section-by-section rewrite a
// replica performs when bridging a format-skewed artifact.
func BenchmarkTranscodeContainer(b *testing.B) {
	keys := dataset.MustGenerate(dataset.Face, 64, 200_000, 5)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange})
	if err != nil {
		b.Fatal(err)
	}
	src := saveTableAt(b, tab, snapshot.Version)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		out.Grow(len(src) * 2)
		if err := snapshot.Transcode(bytes.NewReader(src), int64(len(src)), &out, snapshot.Version2); err != nil {
			b.Fatal(err)
		}
	}
}
