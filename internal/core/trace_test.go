package core

import (
	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
)

func nop(uint64, int) {}

func TestTraceFindEqualsFind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 3000, 9)
		for _, cfg := range []Config{{Mode: ModeRange}, {Mode: ModeMidpoint}, {Mode: ModeRange, M: 100}} {
			for _, model := range []cdfmodel.Model[uint64]{cdfmodel.NewInterpolation(keys), chaosModel{len(keys)}} {
				tab, err := Build(keys, model, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 1000; i++ {
					q := rng.Uint64() % (keys[len(keys)-1] + 3)
					if got, want := tab.TraceFind(q, nop), tab.Find(q); got != want {
						t.Fatalf("%s %v: TraceFind(%d) = %d, Find = %d", name, cfg.Mode, q, got, want)
					}
				}
			}
		}
		model := cdfmodel.NewInterpolation(keys)
		for i := 0; i < 500; i++ {
			q := rng.Uint64() % (keys[len(keys)-1] + 3)
			if got, want := TraceModelFind(keys, model, q, nop), ModelFind(keys, model, q); got != want {
				t.Fatalf("TraceModelFind(%d) = %d, want %d", q, got, want)
			}
		}
	}
}

func TestTraceFindTouchesLayerOnce(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 2000, 9)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeMidpoint})
	if err != nil {
		t.Fatal(err)
	}
	layerTouches := 0
	tab.TraceFind(keys[1234], func(addr uint64, width int) {
		if width <= 2 { // the packed drift entries are narrow
			layerTouches++
		}
	})
	if layerTouches != 1 {
		t.Errorf("midpoint lookup should touch the layer exactly once, got %d", layerTouches)
	}
}
