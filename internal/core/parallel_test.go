package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
	"repro/internal/kv"
)

// buildCorpora64 are the key multisets the build pipeline is property-
// tested on: duplicate-heavy (shard cuts must respect §3.2 run starts),
// drifted and skewed real-world-like, dense uniform, empty, tiny. Sizes
// stay above parallelBuildMin so the sharded path actually runs.
func buildCorpora64() map[string][]uint64 {
	rng := rand.New(rand.NewSource(11))
	dupHeavy := make([]uint64, 0, 30_000)
	for v := uint64(100); len(dupHeavy) < 30_000; v += uint64(rng.Intn(50) + 1) {
		run := 1 + rng.Intn(200) // long duplicate runs
		for j := 0; j < run && len(dupHeavy) < 30_000; j++ {
			dupHeavy = append(dupHeavy, v)
		}
	}
	return map[string][]uint64{
		"empty":        nil,
		"tiny":         {1, 2, 3},
		"dup-heavy":    dupHeavy,
		"wiki-dups":    dataset.MustGenerate(dataset.Wiki, 64, 30_000, 5),
		"drifted-face": dataset.MustGenerate(dataset.Face, 64, 30_000, 5),
		"drifted-osmc": dataset.MustGenerate(dataset.Osmc, 64, 20_000, 6),
		"skewed-logn":  dataset.MustGenerate(dataset.LogN, 64, 30_000, 5),
		"uniform":      dataset.MustGenerate(dataset.UDen, 64, 30_000, 5),
	}
}

// diffLayer reports the first difference between two built tables —
// widths, fused drifts, counts, and cached stats must all be
// bit-identical — or "" when they match.
func diffLayer[K kv.Key](a, b *Table[K]) string {
	if a.m != b.m || a.n != b.n || a.mode != b.mode {
		return fmt.Sprintf("shape: m=%d/%d n=%d/%d mode=%v/%v", a.m, b.m, a.n, b.n, a.mode, b.mode)
	}
	switch a.mode {
	case ModeRange:
		if a.pairs.width != b.pairs.width || a.loBits != b.loBits || a.hiBits != b.hiBits {
			return fmt.Sprintf("widths: pair=%d/%d lo=%d/%d hi=%d/%d",
				a.pairs.width, b.pairs.width, a.loBits, b.loBits, a.hiBits, b.hiBits)
		}
	default:
		if a.shift.width != b.shift.width {
			return fmt.Sprintf("shift width: %d/%d", a.shift.width, b.shift.width)
		}
	}
	for k := 0; k < a.m; k++ {
		if a.count[k] != b.count[k] {
			return fmt.Sprintf("count[%d]: %d/%d", k, a.count[k], b.count[k])
		}
		switch a.mode {
		case ModeRange:
			alo, ahi := a.pairs.pair(k)
			blo, bhi := b.pairs.pair(k)
			if alo != blo || ahi != bhi {
				return fmt.Sprintf("pair[%d]: <%d,%d>/<%d,%d>", k, alo, ahi, blo, bhi)
			}
		default:
			if a.shift.get(k) != b.shift.get(k) {
				return fmt.Sprintf("shift[%d]: %d/%d", k, a.shift.get(k), b.shift.get(k))
			}
		}
	}
	if (a.stats == nil) != (b.stats == nil) {
		return fmt.Sprintf("stats cached: %v/%v", a.stats != nil, b.stats != nil)
	}
	if a.stats != nil && *a.stats != *b.stats {
		return fmt.Sprintf("stats: %+v / %+v", *a.stats, *b.stats)
	}
	return ""
}

// TestParallelBuildIdenticalToSerial checks bit-identical layers from the
// arena-sharded and serial builds across corpora, modes, layer sizes and
// worker counts — including the fused pair widths and the cached stats.
func TestParallelBuildIdenticalToSerial(t *testing.T) {
	for name, keys := range buildCorpora64() {
		model := cdfmodel.NewInterpolation(keys)
		for _, cfg := range []Config{
			{Mode: ModeRange},
			{Mode: ModeMidpoint},
			{Mode: ModeRange, M: 999},
			{Mode: ModeMidpoint, M: 37},
		} {
			if cfg.M > len(keys) && len(keys) > 0 {
				continue
			}
			serial, err := Build(keys, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 7, 16} {
				par, err := BuildParallel(keys, model, cfg, workers)
				if err != nil {
					t.Fatal(err)
				}
				if d := diffLayer(serial, par); d != "" {
					t.Fatalf("%s cfg=%v/%d workers=%d: parallel differs from serial: %s",
						name, cfg.Mode, cfg.M, workers, d)
				}
			}
		}
	}
}

// TestParallelBuild32Bit runs the bit-identity property over 32-bit keys
// (narrower key type, same pipeline).
func TestParallelBuild32Bit(t *testing.T) {
	for _, name := range []dataset.Name{dataset.LogN, dataset.Amzn, dataset.USpr} {
		keys := dataset.U32(dataset.MustGenerate(name, 32, 20_000, 9))
		model := cdfmodel.NewInterpolation(keys)
		for _, mode := range []Mode{ModeRange, ModeMidpoint} {
			serial, err := Build(keys, model, Config{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			par, err := BuildParallel(keys, model, Config{Mode: mode}, 5)
			if err != nil {
				t.Fatal(err)
			}
			if d := diffLayer(serial, par); d != "" {
				t.Fatalf("%s/%v: %s", name, mode, d)
			}
		}
	}
}

// TestParallelBuildNonMonotone pins the non-monotone path (§3.8): the
// prediction stage stays parallel, accumulation falls back to one
// goroutine, and the result is bit-identical to the serial build.
func TestParallelBuildNonMonotone(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Osmc, 64, 20_000, 4)
	model := cdfmodel.NewCubic(keys)
	if model.Monotone() {
		t.Fatal("cubic model should be non-monotone")
	}
	serial, err := Build(keys, model, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildParallel(keys, model, Config{Mode: ModeRange}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffLayer(serial, par); d != "" {
		t.Fatalf("non-monotone parallel differs: %s", d)
	}
}

// lyingModel declares Monotone but predicts in reverse order — the sharded
// accumulate would race on partitions if the pipeline trusted it.
type lyingModel struct {
	inner *cdfmodel.Interpolation[uint64]
	n     int
}

func (m *lyingModel) Predict(k uint64) int { return m.n - 1 - m.inner.Predict(k) }
func (m *lyingModel) Monotone() bool       { return true }
func (m *lyingModel) SizeBytes() int       { return m.inner.SizeBytes() }
func (m *lyingModel) Name() string         { return "lying" }

// TestParallelBuildDetectsNonMonotonePredictions: a model mis-declaring
// Monotone must degrade to the serial accumulate, not race — and still
// produce the serial build's exact table.
func TestParallelBuildDetectsNonMonotonePredictions(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 20_000, 8)
	model := &lyingModel{inner: cdfmodel.NewInterpolation(keys), n: len(keys)}
	serial, err := Build(keys, model, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildParallel(keys, model, Config{Mode: ModeRange}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffLayer(serial, par); d != "" {
		t.Fatalf("lying-monotone parallel differs: %s", d)
	}
}

// TestFusedSplitRoundTrip checks the fused layout against the split one:
// split() de-interleaves to the serialization arrays and fusePairs
// reassembles them, entry for entry, at every packed width combination the
// corpora produce.
func TestFusedSplitRoundTrip(t *testing.T) {
	for name, keys := range buildCorpora64() {
		tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange})
		if err != nil {
			t.Fatal(err)
		}
		if tab.n == 0 {
			continue
		}
		lo, hi := tab.pairs.split(tab.loBits, tab.hiBits)
		if lo.width != tab.loBits || hi.width != tab.hiBits {
			t.Fatalf("%s: split widths %d/%d, want %d/%d", name, lo.width, hi.width, tab.loBits, tab.hiBits)
		}
		for k := 0; k < tab.m; k++ {
			plo, phi := tab.pairs.pair(k)
			if lo.get(k) != plo || hi.get(k) != phi {
				t.Fatalf("%s: split[%d] = <%d,%d>, fused <%d,%d>", name, k, lo.get(k), hi.get(k), plo, phi)
			}
		}
		refused := fusePairs(&lo, &hi)
		if refused.width != tab.pairs.width {
			t.Fatalf("%s: refused width %d, want %d", name, refused.width, tab.pairs.width)
		}
		for k := 0; k < tab.m; k++ {
			alo, ahi := refused.pair(k)
			plo, phi := tab.pairs.pair(k)
			if alo != plo || ahi != phi {
				t.Fatalf("%s: refused[%d] = <%d,%d>, want <%d,%d>", name, k, alo, ahi, plo, phi)
			}
		}
	}
}

func TestParallelBuildFallbacks(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 10_000, 5)
	model := cdfmodel.NewInterpolation(keys)
	// Sampled midpoint builds take the serial path but must still work.
	tab, err := BuildParallel(keys, model, Config{Mode: ModeMidpoint, SampleStride: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		q := keys[rng.Intn(len(keys))]
		if tab.Find(q) != Build0(keys, model).Find(q) {
			t.Fatal("sampled parallel fallback broken")
		}
	}
	// Sampled builds skip the stats cache (pass 1 sees a subset of keys);
	// ComputeStats must fall back to the scan.
	if tab.stats != nil {
		t.Error("sampled build must not cache stats")
	}
	if got := tab.ComputeStats(); got.N != len(keys) {
		t.Errorf("fallback stats N = %d, want %d", got.N, len(keys))
	}
	// Errors still surface through the shared validation.
	if _, err := BuildParallel([]uint64{3, 1, 2}, model, Config{}, 4); err == nil {
		t.Error("unsorted keys must error")
	}
}

// Build0 is a test helper building with defaults, panicking on error.
func Build0(keys []uint64, model cdfmodel.Model[uint64]) *Table[uint64] {
	tab, err := Build(keys, model, Config{})
	if err != nil {
		panic(err)
	}
	return tab
}

func TestParallelBuildSmallInput(t *testing.T) {
	keys := []uint64{1, 2, 3}
	tab, err := BuildParallel(keys, cdfmodel.NewInterpolation(keys), Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for q := uint64(0); q < 5; q++ {
		want := 0
		for want < len(keys) && keys[want] < q {
			want++
		}
		if got := tab.Find(q); got != want {
			t.Fatalf("Find(%d) = %d, want %d", q, got, want)
		}
	}
}

// TestParallelBuildServesBatch pins the scratch-pool initialisation of the
// BuildParallel path: a parallel-built table must run the batched query
// engine (which draws from Table.scratch) without a nil pool.
func TestParallelBuildServesBatch(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 10_000, 3)
	model := cdfmodel.NewInterpolation(keys)
	table, err := BuildParallel(keys, model, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	qs := make([]uint64, 600)
	for i := range qs {
		qs[i] = keys[rng.Intn(len(keys))] + uint64(rng.Intn(3))
	}
	out := table.FindBatch(qs, nil)
	for i, q := range qs {
		if want := table.Find(q); out[i] != want {
			t.Fatalf("FindBatch[%d] = %d, want %d", i, out[i], want)
		}
	}
}

// TestBuildNextReusesPools: a rebuild chain must share one batch-scratch
// pool and one build-arena pool end to end, and every link must be
// bit-identical to a from-scratch build over the same keys.
func TestBuildNextReusesPools(t *testing.T) {
	keys := dataset.MustGenerate(dataset.LogN, 64, 20_000, 7)
	model := cdfmodel.NewInterpolation(keys)
	first, err := Build(keys, model, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	cur := first
	for gen := 0; gen < 4; gen++ {
		// Simulate compaction: grow the key set, rebuild from the
		// predecessor.
		grown := append(append([]uint64{}, cur.keys...), cur.keys[len(cur.keys)-1]+uint64(gen)+1)
		m := cdfmodel.NewInterpolation(grown)
		next, err := cur.BuildNext(grown, m, Config{Mode: ModeRange}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if next.scratch != first.scratch || next.buildPool != first.buildPool {
			t.Fatalf("gen %d: pools not adopted across BuildNext", gen)
		}
		fresh, err := Build(grown, m, Config{Mode: ModeRange})
		if err != nil {
			t.Fatal(err)
		}
		if d := diffLayer(fresh, next); d != "" {
			t.Fatalf("gen %d: BuildNext differs from fresh build: %s", gen, d)
		}
		cur = next
	}
	// A nil receiver degenerates to BuildParallel.
	var nilTab *Table[uint64]
	tab, err := nilTab.BuildNext(keys, model, Config{}, 2)
	if err != nil || tab == nil {
		t.Fatalf("nil BuildNext: %v", err)
	}
	if tab.Find(keys[10]) != Build0(keys, model).Find(keys[10]) {
		t.Fatal("nil BuildNext table broken")
	}
}

// TestBuildStatsCached: the build's one model sweep must leave ComputeStats
// and Log2Error O(1) and equal to the slow recomputation.
func TestBuildStatsCached(t *testing.T) {
	for _, mode := range []Mode{ModeRange, ModeMidpoint} {
		keys := dataset.MustGenerate(dataset.Osmc, 64, 20_000, 2)
		tab, err := BuildParallel(keys, cdfmodel.NewInterpolation(keys), Config{Mode: mode}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if tab.stats == nil {
			t.Fatal("built table must cache stats")
		}
		cached := tab.ComputeStats()
		tab.stats = nil // force the slow path
		slow := tab.ComputeStats()
		if cached != slow {
			t.Fatalf("mode %v: cached stats %+v != recomputed %+v", mode, cached, slow)
		}
		if l := tab.Log2Error(); l != slow.MeanLog2Bounds {
			t.Fatalf("mode %v: Log2Error %v != MeanLog2Bounds %v", mode, l, slow.MeanLog2Bounds)
		}
	}
}
