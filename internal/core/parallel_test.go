package core

import (
	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
)

// TestParallelBuildIdenticalToSerial checks bit-identical layers from the
// sharded and serial builds across datasets, modes, worker counts, and
// duplicate-heavy data (shard boundaries must respect run starts).
func TestParallelBuildIdenticalToSerial(t *testing.T) {
	for _, name := range []dataset.Name{dataset.Face, dataset.Wiki, dataset.LogN, dataset.UDen} {
		keys := dataset.MustGenerate(name, 64, 30_000, 5)
		model := cdfmodel.NewInterpolation(keys)
		for _, cfg := range []Config{
			{Mode: ModeRange},
			{Mode: ModeMidpoint},
			{Mode: ModeRange, M: 999},
			{Mode: ModeMidpoint, M: 37},
		} {
			serial, err := Build(keys, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 7, 16} {
				par, err := BuildParallel(keys, model, cfg, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !sameLayer(serial, par) {
					t.Fatalf("%s cfg=%v/%d workers=%d: parallel layer differs from serial",
						name, cfg.Mode, cfg.M, workers)
				}
			}
		}
	}
}

// sameLayer compares every drift entry and count of two tables.
func sameLayer(a, b *Table[uint64]) bool {
	if a.m != b.m || a.n != b.n || a.mode != b.mode {
		return false
	}
	for k := 0; k < a.m; k++ {
		if a.count[k] != b.count[k] {
			return false
		}
		switch a.mode {
		case ModeRange:
			if a.lo.get(k) != b.lo.get(k) || a.hi.get(k) != b.hi.get(k) {
				return false
			}
		default:
			if a.shift.get(k) != b.shift.get(k) {
				return false
			}
		}
	}
	return true
}

func TestParallelBuildFallbacks(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 10_000, 5)
	model := cdfmodel.NewInterpolation(keys)
	// Sampled midpoint builds take the serial path but must still work.
	tab, err := BuildParallel(keys, model, Config{Mode: ModeMidpoint, SampleStride: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		q := keys[rng.Intn(len(keys))]
		if tab.Find(q) != Build0(keys, model).Find(q) {
			t.Fatal("sampled parallel fallback broken")
		}
	}
	// Errors still surface through the serial path.
	if _, err := BuildParallel([]uint64{3, 1, 2}, model, Config{}, 4); err == nil {
		t.Error("unsorted keys must error through the fallback")
	}
}

// Build0 is a test helper building with defaults, panicking on error.
func Build0(keys []uint64, model cdfmodel.Model[uint64]) *Table[uint64] {
	tab, err := Build(keys, model, Config{})
	if err != nil {
		panic(err)
	}
	return tab
}

func TestParallelBuildSmallInput(t *testing.T) {
	keys := []uint64{1, 2, 3}
	tab, err := BuildParallel(keys, cdfmodel.NewInterpolation(keys), Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for q := uint64(0); q < 5; q++ {
		want := 0
		for want < len(keys) && keys[want] < q {
			want++
		}
		if got := tab.Find(q); got != want {
			t.Fatalf("Find(%d) = %d, want %d", q, got, want)
		}
	}
}

// TestParallelBuildServesBatch pins the scratch-pool initialisation of the
// BuildParallel path: a parallel-built table must run the batched query
// engine (which draws from Table.scratch) without a nil pool.
func TestParallelBuildServesBatch(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 10_000, 3)
	model := cdfmodel.NewInterpolation(keys)
	table, err := BuildParallel(keys, model, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	qs := make([]uint64, 600)
	for i := range qs {
		qs[i] = keys[rng.Intn(len(keys))] + uint64(rng.Intn(3))
	}
	out := table.FindBatch(qs, nil)
	for i, q := range qs {
		if want := table.Find(q); out[i] != want {
			t.Fatalf("FindBatch[%d] = %d, want %d", i, out[i], want)
		}
	}
}
