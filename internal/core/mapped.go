package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/mapped"
	"repro/internal/snapshot"
)

// This file is the zero-copy load path (DESIGN.md §12): a Table or
// ModelIndex opened over a mapped v2 container views the key section and
// the layer's drift/count arrays in place instead of copying them onto
// the heap. Opening is O(1) in the key count — header and geometry
// validation only — which is what turns warm restart from a scan of the
// file into a handful of page touches.
//
// Trust shift relative to the streaming loaders: the O(n) invariants the
// heap path checks eagerly (keys sorted, partition cardinalities summing
// under N) are NOT re-checked here, and payload CRCs verify lazily
// (snapshot.MappedSection.Verify / Mapped.VerifyAll). A mapped open
// therefore trusts the file to be a snapshot this repository wrote —
// appropriate for artifacts whose container CRC was verified at fetch or
// publish time (the replica spool) — while remaining memory-safe against
// arbitrary corruption: every slice is bounds-derived from validated
// geometry, so hostile bytes can mis-answer queries but cannot fault.
// Callers that need the eager guarantees use the streaming loaders,
// which read v2 containers too.

// attachRegion gives a mapped structure its own region reference and
// schedules the release for when the structure becomes unreachable.
func attachRegion[T any](owner *T, region *mapped.Region) {
	if region == nil {
		return
	}
	region.Retain()
	runtime.AddCleanup(owner, func(r *mapped.Region) { r.Release() }, region)
}

// Mapped reports whether the table serves from a mapped snapshot region.
func (t *Table[K]) Mapped() bool { return t.region != nil }

// MappedBytes returns the size of the backing mapped region (0 when the
// table is heap-resident).
func (t *Table[K]) MappedBytes() int64 {
	if t.region == nil {
		return 0
	}
	return int64(t.region.Len())
}

// Region returns the backing mapped region, nil for heap tables. The
// table's reference keeps it alive; callers that outlive the table must
// Retain their own.
func (t *Table[K]) Region() *mapped.Region { return t.region }

// Mapped reports whether the index serves from a mapped snapshot region.
func (ix *ModelIndex[K]) Mapped() bool { return ix.region != nil }

// MappedBytes returns the size of the backing mapped region (0 when
// heap-resident).
func (ix *ModelIndex[K]) MappedBytes() int64 {
	if ix.region == nil {
		return 0
	}
	return int64(ix.region.Len())
}

// Region returns the backing mapped region, nil for heap indexes.
func (ix *ModelIndex[K]) Region() *mapped.Region { return ix.region }

// MapTableSnapshot opens a shift-table container in place: keys viewed
// from the key section, drift pairs and counts viewed from the layer
// section, model rebuilt from its spec (O(1) for the parameter-free
// families). The returned table retains the region; the caller may Close
// the Mapped handle afterwards.
func MapTableSnapshot[K kv.Key](m *snapshot.Mapped) (*Table[K], error) {
	if m.Kind() != SnapshotKindTable {
		return nil, fmt.Errorf("core: container holds %q, want %q", m.Kind(), SnapshotKindTable)
	}
	m.Rewind()
	t, err := MapTableSections[K](m)
	if err != nil {
		return nil, err
	}
	if err := m.Done(); err != nil {
		return nil, err
	}
	return t, nil
}

// MapTableSections views the shift-table section triplet (keys, model,
// layer) from the container's current cursor — the embedded form other
// kinds persist through Table.PersistSnapshot (the updatable and
// concurrent containers carry one mid-stream).
func MapTableSections[K kv.Key](m *snapshot.Mapped) (*Table[K], error) {
	keys, err := mapKeys[K](m, secTableKeys)
	if err != nil {
		return nil, err
	}
	return MapTableWithKeys(m, keys, secTableModel, secTableLayer)
}

// MapTableWithKeys views the keyless model+layer section pair over
// caller-supplied keys (themselves typically a view of the container's
// key section — the router maps each shard this way against its slice of
// the shared key section).
func MapTableWithKeys[K kv.Key](m *snapshot.Mapped, keys []K, modelID, layerID uint32) (*Table[K], error) {
	model, err := mapModelSpec(m, modelID, keys)
	if err != nil {
		return nil, err
	}
	ls, err := m.Expect(layerID)
	if err != nil {
		return nil, err
	}
	t, err := viewLayerV2(ls.Data, keys, model)
	if err != nil {
		return nil, fmt.Errorf("core: layer section: %w", err)
	}
	attachRegion(t, m.Region())
	t.region = m.Region()
	return t, nil
}

// MapModelIndexSnapshot opens a model-index container in place.
func MapModelIndexSnapshot[K kv.Key](m *snapshot.Mapped) (*ModelIndex[K], error) {
	if m.Kind() != SnapshotKindModelIndex {
		return nil, fmt.Errorf("core: container holds %q, want %q", m.Kind(), SnapshotKindModelIndex)
	}
	m.Rewind()
	keys, err := mapKeys[K](m, secTableKeys)
	if err != nil {
		return nil, err
	}
	ix, err := MapModelIndexWithKeys(m, keys, secTableModel)
	if err != nil {
		return nil, err
	}
	if err := m.Done(); err != nil {
		return nil, err
	}
	return ix, nil
}

// MapModelIndexWithKeys rebuilds a bare-model index over viewed keys.
// The heap loader's full-sweep mean error (Eq. 10) is replaced by a
// strided-sample estimate so the open stays sublinear; the cost model
// consumes a statistic either way, not a guarantee.
func MapModelIndexWithKeys[K kv.Key](m *snapshot.Mapped, keys []K, modelID uint32) (*ModelIndex[K], error) {
	model, err := mapModelSpec(m, modelID, keys)
	if err != nil {
		return nil, err
	}
	ix := &ModelIndex[K]{keys: keys, model: model, meanErr: sampledModelError(keys, model)}
	attachRegion(ix, m.Region())
	ix.region = m.Region()
	return ix, nil
}

// mapKeys views one key section.
func mapKeys[K kv.Key](m *snapshot.Mapped, id uint32) ([]K, error) {
	ks, err := m.Expect(id)
	if err != nil {
		return nil, err
	}
	return snapshot.MapKeySection[K](ks)
}

// mapModelSpec decodes a model spec section (small — it is copied, not
// viewed) and rebuilds the model over the viewed keys.
func mapModelSpec[K kv.Key](m *snapshot.Mapped, id uint32, keys []K) (cdfmodel.Model[K], error) {
	ms, err := m.Expect(id)
	if err != nil {
		return nil, err
	}
	if int64(len(ms.Data)) > maxModelSpecLen {
		return nil, fmt.Errorf("core: model spec section %d bytes, cap is %d", len(ms.Data), maxModelSpecLen)
	}
	return decodeModelSpec(ms.Data, keys)
}

// viewLayerV2 builds a Table whose drift arrays and counts alias data,
// which must be a v2 layer blob (writeLayerV2). The header is validated
// exactly as the streaming Load validates it — including the key and
// model fingerprints that bind the layer to its data — and the blob's
// size must equal the geometry the header implies, byte for byte.
func viewLayerV2[K kv.Key](data []byte, keys []K, model cdfmodel.Model[K]) (*Table[K], error) {
	if len(data) < layerV2DataOff {
		return nil, fmt.Errorf("core: layer blob %d bytes, v2 header is %d", len(data), layerV2DataOff)
	}
	var head [9]uint64
	for i := range head {
		head[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	if head[0] != layerMagic {
		return nil, fmt.Errorf("core: not a Shift-Table layer blob")
	}
	if head[1] != layerVersion2 {
		return nil, fmt.Errorf("core: layer version %d is not mappable (v2 only)", head[1])
	}
	if head[2] != uint64(ModeRange) && head[2] != uint64(ModeMidpoint) {
		return nil, fmt.Errorf("core: invalid mode %d in layer header", head[2])
	}
	if head[3] != uint64(len(keys)) {
		return nil, fmt.Errorf("core: layer built over %d keys, got %d", head[3], len(keys))
	}
	n := len(keys)
	if err := checkLayerM(head[4], n); err != nil {
		return nil, err
	}
	m := int(head[4])
	if head[5] > 1 {
		return nil, fmt.Errorf("core: invalid monotone flag %d in layer header", head[5])
	}
	if got := keysFingerprint(keys); got != head[6] {
		return nil, fmt.Errorf("core: key fingerprint mismatch (layer is stale or for other data)")
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if got := modelFingerprint(model); got != head[7] {
		return nil, fmt.Errorf("core: model mismatch (layer was built over %q-class model)", model.Name())
	}
	mode := Mode(head[2])
	width, lo, hi, err := layerWidths(head[8], mode, m)
	if err != nil {
		return nil, err
	}
	var dataBytes int64
	if mode == ModeRange {
		dataBytes = 2 * int64(m) * int64(width)
	} else {
		dataBytes = int64(m) * int64(width)
	}
	pad := pad8(dataBytes)
	want := int64(layerV2DataOff) + dataBytes + pad + 4*int64(m)
	if int64(len(data)) != want {
		return nil, fmt.Errorf("core: layer blob is %d bytes, header geometry implies %d", len(data), want)
	}
	drift := data[layerV2DataOff : int64(layerV2DataOff)+dataBytes]
	for _, b := range data[int64(layerV2DataOff)+dataBytes : int64(layerV2DataOff)+dataBytes+pad] {
		if b != 0 {
			return nil, fmt.Errorf("core: nonzero layer padding")
		}
	}
	t := &Table[K]{
		keys:      keys,
		model:     model,
		mode:      mode,
		n:         n,
		m:         m,
		monotone:  head[5] != 0,
		scratch:   new(sync.Pool),
		buildPool: new(sync.Pool),
	}
	switch mode {
	case ModeRange:
		t.pairs.width = width
		t.loBits, t.hiBits = lo, hi
		if m > 0 {
			switch width {
			case 1:
				t.pairs.w8, err = mapped.View[int8](drift)
			case 2:
				t.pairs.w16, err = mapped.View[int16](drift)
			case 4:
				t.pairs.w32, err = mapped.View[int32](drift)
			default:
				t.pairs.w64, err = mapped.View[int64](drift)
			}
			if err != nil {
				return nil, fmt.Errorf("core: fused drift view: %w", err)
			}
		}
	default:
		t.shift.width = width
		if m > 0 {
			switch width {
			case 1:
				t.shift.w8, err = mapped.View[int8](drift)
			case 2:
				t.shift.w16, err = mapped.View[int16](drift)
			case 4:
				t.shift.w32, err = mapped.View[int32](drift)
			default:
				t.shift.w64, err = mapped.View[int64](drift)
			}
			if err != nil {
				return nil, fmt.Errorf("core: drift view: %w", err)
			}
		}
	}
	t.count, err = mapped.View[int32](data[int64(layerV2DataOff)+dataBytes+pad:])
	if err != nil {
		return nil, fmt.Errorf("core: count view: %w", err)
	}
	return t, nil
}

// sampledModelError estimates the model's mean absolute drift from a
// strided sample of at most sampleErrProbes keys — the O(1) stand-in for
// the heap loader's full ModelError sweep. Duplicate-run rank handling
// matches ModelError on the sampled positions' first occurrences only,
// which is the same approximation the §3.4 sampled builds accept.
const sampleErrProbes = 4096

func sampledModelError[K kv.Key](keys []K, model cdfmodel.Model[K]) float64 {
	if len(keys) == 0 {
		return 0
	}
	stride := len(keys)/sampleErrProbes + 1
	var sum float64
	var probes int
	for i := 0; i < len(keys); i += stride {
		d := i - model.Predict(keys[i])
		if d < 0 {
			d = -d
		}
		sum += float64(d)
		probes++
	}
	return sum / float64(probes)
}
