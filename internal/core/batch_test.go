package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// opaqueModel hides a model's concrete type so it does not satisfy
// BatchPredictor, exercising the generic fallback loop in PredictBatch.
type opaqueModel[K kv.Key] struct{ m cdfmodel.Model[K] }

func (o opaqueModel[K]) Predict(k K) int { return o.m.Predict(k) }
func (o opaqueModel[K]) Monotone() bool  { return o.m.Monotone() }
func (o opaqueModel[K]) SizeBytes() int  { return o.m.SizeBytes() }
func (o opaqueModel[K]) Name() string    { return o.m.Name() }

// batchCase is one (keys, model, config) configuration the batch engine
// must answer bit-identically to the scalar path on.
type batchCase struct {
	name  string
	keys  []uint64
	model func(keys []uint64) cdfmodel.Model[uint64]
	cfg   Config
}

func batchKeys(n int, seed int64, dupEvery int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	v := uint64(0)
	for i := range keys {
		if dupEvery > 0 && i%dupEvery != 0 {
			// duplicate the previous key
		} else {
			v += 1 + uint64(rng.Intn(1000))
		}
		keys[i] = v
	}
	return keys
}

func imModel(keys []uint64) cdfmodel.Model[uint64] { return cdfmodel.NewInterpolation(keys) }

func batchCases(t testing.TB) []batchCase {
	n := 20_000
	plain := batchKeys(n, 1, 0)
	dups := batchKeys(n, 2, 5) // duplicate-heavy: runs of 5
	return []batchCase{
		{"R/M=N/IM", plain, imModel, Config{Mode: ModeRange}},
		{"S/M=N/IM", plain, imModel, Config{Mode: ModeMidpoint}},
		{"R/M=N8/IM", plain, imModel, Config{Mode: ModeRange, M: n / 8}},
		{"S/M=N8/IM", plain, imModel, Config{Mode: ModeMidpoint, M: n / 8}},
		{"S/M=N8/sampled", plain, imModel, Config{Mode: ModeMidpoint, M: n / 8, SampleStride: 4}},
		{"R/dups/IM", dups, imModel, Config{Mode: ModeRange}},
		{"S/dups/IM", dups, imModel, Config{Mode: ModeMidpoint}},
		{"R/linear", plain, func(k []uint64) cdfmodel.Model[uint64] { return cdfmodel.NewLinear(k) }, Config{Mode: ModeRange}},
		// Cubic is non-monotone: exercises the validate-and-fallback lanes.
		{"R/cubic", plain, func(k []uint64) cdfmodel.Model[uint64] { return cdfmodel.NewCubic(k) }, Config{Mode: ModeRange}},
		{"S/cubic", plain, func(k []uint64) cdfmodel.Model[uint64] { return cdfmodel.NewCubic(k) }, Config{Mode: ModeMidpoint}},
		// Opaque model: no BatchPredictor, generic prediction fallback.
		{"R/opaque", plain, func(k []uint64) cdfmodel.Model[uint64] {
			return opaqueModel[uint64]{cdfmodel.NewInterpolation(k)}
		}, Config{Mode: ModeRange}},
	}
}

// batchQueries mixes hits, misses, and out-of-range probes (0, below-min,
// above-max, domain maximum).
func batchQueries(keys []uint64, nq int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]uint64, nq)
	for i := range qs {
		switch rng.Intn(8) {
		case 0:
			qs[i] = rng.Uint64() // arbitrary, usually a miss
		case 1:
			qs[i] = 0
		case 2:
			qs[i] = ^uint64(0)
		case 3:
			qs[i] = keys[len(keys)-1] + uint64(rng.Intn(100)) + 1
		default:
			qs[i] = keys[rng.Intn(len(keys))] + uint64(rng.Intn(3)) - 1
		}
	}
	return qs
}

func TestFindBatchMatchesScalar(t *testing.T) {
	for _, tc := range batchCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := Build(tc.keys, tc.model(tc.keys), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			qs := batchQueries(tc.keys, 10_000, 7)
			got := tab.FindBatch(qs, nil)
			for i, q := range qs {
				want := tab.Find(q)
				if got[i] != want {
					t.Fatalf("FindBatch[%d] (q=%d) = %d, scalar Find = %d", i, q, got[i], want)
				}
				if ref := kv.LowerBound(tc.keys, q); got[i] != ref {
					t.Fatalf("FindBatch[%d] (q=%d) = %d, kv.LowerBound = %d", i, q, got[i], ref)
				}
			}
		})
	}
}

func TestFindBatchParallelBitIdentical(t *testing.T) {
	for _, tc := range batchCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := Build(tc.keys, tc.model(tc.keys), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			qs := batchQueries(tc.keys, 30_000, 11)
			want := tab.FindBatch(qs, nil)
			for _, workers := range []int{0, 1, 2, 3, 7} {
				got := tab.FindBatchParallel(qs, nil, workers)
				for i := range qs {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: FindBatchParallel[%d] = %d, FindBatch = %d", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestLookupBatchMatchesScalar(t *testing.T) {
	for _, tc := range batchCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := Build(tc.keys, tc.model(tc.keys), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			qs := batchQueries(tc.keys, 5_000, 13)
			pos, found := tab.LookupBatch(qs, nil, nil)
			for i, q := range qs {
				wp, wf := tab.Lookup(q)
				if pos[i] != wp || found[i] != wf {
					t.Fatalf("LookupBatch[%d] (q=%d) = (%d,%v), scalar = (%d,%v)", i, q, pos[i], found[i], wp, wf)
				}
			}
		})
	}
}

func TestFindRangeBatchMatchesScalar(t *testing.T) {
	for _, tc := range batchCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := Build(tc.keys, tc.model(tc.keys), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			nq := 3_000
			as := make([]uint64, nq)
			bs := make([]uint64, nq)
			for i := range as {
				a := tc.keys[rng.Intn(len(tc.keys))]
				switch rng.Intn(6) {
				case 0: // inverted range
					as[i], bs[i] = a+10, a
				case 1: // range to the domain maximum
					as[i], bs[i] = a, ^uint64(0)
				default:
					as[i], bs[i] = a, a+uint64(rng.Intn(5000))
				}
			}
			firsts, lasts := tab.FindRangeBatch(as, bs, nil, nil)
			for i := range as {
				wf, wl := tab.FindRange(as[i], bs[i])
				if firsts[i] != wf || lasts[i] != wl {
					t.Fatalf("FindRangeBatch[%d] (%d,%d) = [%d,%d), scalar = [%d,%d)",
						i, as[i], bs[i], firsts[i], lasts[i], wf, wl)
				}
			}
		})
	}
}

func TestFindBatchEdgeCases(t *testing.T) {
	keys := batchKeys(1000, 3, 0)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	// Empty batch: no results, no panic, works with nil and non-nil out.
	if got := tab.FindBatch(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	if got := tab.FindBatch([]uint64{}, make([]int, 4)); len(got) != 0 {
		t.Fatalf("empty batch with out returned %d results", len(got))
	}
	// Output slice reuse: results land in the provided backing array.
	out := make([]int, 3)
	qs := []uint64{0, keys[500], ^uint64(0)}
	got := tab.FindBatch(qs, out)
	if &got[0] != &out[0] {
		t.Fatal("FindBatch did not reuse the provided output slice")
	}
	// Undersized out falls back to allocation.
	got = tab.FindBatch(qs, make([]int, 1))
	if len(got) != len(qs) {
		t.Fatalf("undersized out: got %d results, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		if want := tab.Find(q); got[i] != want {
			t.Fatalf("edge query %d: got %d want %d", q, got[i], want)
		}
	}

	// Empty table: every lower bound is 0.
	empty, err := Build(nil, cdfmodel.NewInterpolation([]uint64(nil)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := empty.FindBatch([]uint64{1, 2, 3}, nil)
	for i, r := range res {
		if r != 0 {
			t.Fatalf("empty table FindBatch[%d] = %d, want 0", i, r)
		}
	}
	pos, found := empty.LookupBatch([]uint64{9}, nil, nil)
	if pos[0] != 0 || found[0] {
		t.Fatalf("empty table LookupBatch = (%d,%v), want (0,false)", pos[0], found[0])
	}
}

// TestFindBatchAfterLoad ensures a deserialized layer (whose drift arrays
// are reconstructed by readDrifts, not packDrifts) answers batches
// identically — guarding the width cache across the serialize round-trip.
func TestFindBatchAfterLoad(t *testing.T) {
	keys := batchKeys(8_000, 5, 3)
	model := cdfmodel.NewInterpolation(keys)
	tab, err := Build(keys, model, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, keys, model)
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries(keys, 5_000, 23)
	want := tab.FindBatch(qs, nil)
	got := loaded.FindBatch(qs, nil)
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("loaded FindBatch[%d] = %d, built = %d", i, got[i], want[i])
		}
	}
}
