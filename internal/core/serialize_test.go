package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
	"repro/internal/kv"
)

func TestLayerRoundTrip(t *testing.T) {
	for _, name := range []dataset.Name{dataset.Face, dataset.Wiki, dataset.UDen} {
		keys := dataset.MustGenerate(name, 64, 20_000, 5)
		model := cdfmodel.NewInterpolation(keys)
		for _, cfg := range []Config{
			{Mode: ModeRange},
			{Mode: ModeMidpoint},
			{Mode: ModeRange, M: 777},
		} {
			orig, err := Build(keys, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			n, err := orig.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			loaded, err := Load(bytes.NewReader(buf.Bytes()), keys, model)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.M() != orig.M() || loaded.Mode() != orig.Mode() || loaded.N() != orig.N() {
				t.Fatal("round-trip metadata mismatch")
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 3000; i++ {
				q := rng.Uint64() % (keys[len(keys)-1] + 3)
				if got, want := loaded.Find(q), orig.Find(q); got != want {
					t.Fatalf("%s %v: loaded Find(%d) = %d, want %d", name, cfg.Mode, q, got, want)
				}
			}
			if loaded.AvgError() != orig.AvgError() {
				t.Error("partition counts not preserved")
			}
		}
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 10_000, 5)
	model := cdfmodel.NewInterpolation(keys)
	tab, err := Build(keys, model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong data.
	other := dataset.MustGenerate(dataset.Face, 64, 10_000, 6)
	if _, err := Load(bytes.NewReader(buf.Bytes()), other, cdfmodel.NewInterpolation(other)); err == nil {
		t.Error("Load must reject a layer built over different keys")
	}
	// Wrong length.
	if _, err := Load(bytes.NewReader(buf.Bytes()), keys[:500], model); err == nil {
		t.Error("Load must reject a key-count mismatch")
	}
	// Wrong model family.
	if _, err := Load(bytes.NewReader(buf.Bytes()), keys, cdfmodel.NewLinear(keys)); err == nil {
		t.Error("Load must reject a different model")
	}
	// Nil model.
	if _, err := Load[uint64](bytes.NewReader(buf.Bytes()), keys, nil); err == nil {
		t.Error("Load must reject a nil model")
	}
	// Corrupted magic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad), keys, model); err == nil {
		t.Error("Load must reject a corrupted header")
	}
	// Truncated stream.
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), keys, model); err == nil {
		t.Error("Load must reject a truncated stream")
	}
	// Empty stream.
	if _, err := Load(bytes.NewReader(nil), keys, model); err == nil {
		t.Error("Load must reject an empty stream")
	}
}

// TestLoadCorruptHeader mutates every header field of a valid layer file —
// magic, version, mode, n, m, monotone, both fingerprints — plus the drift
// width fields and the partition counts, and asserts each mutation is
// rejected with a descriptive error instead of a panic or a giant
// allocation. This is the regression suite for the hardened loader: the
// old code fed head[4] straight into make([]int32, m).
func TestLoadCorruptHeader(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 8_000, 5)
	model := cdfmodel.NewInterpolation(keys)
	for _, cfg := range []Config{{Mode: ModeRange}, {Mode: ModeMidpoint}} {
		tab, err := Build(keys, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		valid := buf.Bytes()

		mutate := func(name string, field int, val uint64) {
			bad := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(bad[field*8:], val)
			_, err := Load(bytes.NewReader(bad), keys, model)
			if err == nil {
				t.Errorf("%v/%s=%d: corrupt header accepted", cfg.Mode, name, val)
			} else if err.Error() == "" {
				t.Errorf("%v/%s: empty error message", cfg.Mode, name)
			}
		}
		mutate("magic", 0, 0xDEADBEEF)
		mutate("version", 1, 2)
		mutate("version", 1, ^uint64(0))
		mutate("mode", 2, 2)
		mutate("mode", 2, ^uint64(0))
		mutate("n", 3, uint64(len(keys)+1))
		mutate("n", 3, ^uint64(0))
		mutate("m", 4, 0)
		mutate("m", 4, uint64(len(keys))*maxLayerFactor+1) // beyond the sane-M bound
		mutate("m", 4, 1<<40)                              // would have been a 1 TiB counts allocation
		mutate("m", 4, ^uint64(0))                         // would have wrapped negative
		mutate("m", 4, uint64(tab.M()+1))                  // sane-looking but wrong: drift reads run past the stream
		mutate("monotone", 5, 2)
		mutate("keys-fingerprint", 6, binary.LittleEndian.Uint64(valid[6*8:])^1)
		mutate("model-fingerprint", 7, binary.LittleEndian.Uint64(valid[7*8:])^1)

		// Drift width field (first u64 after the 64-byte header): zero,
		// non-power-of-two, and absurd widths must all be rejected before
		// any entry allocation.
		for _, bits := range []uint64{0, 7, 12, 128, ^uint64(0)} {
			mutate("drift-width", 8, bits)
		}

		// Partition counts: a negative cardinality (high bit set) must be
		// rejected; counts live after the drift arrays, so locate them from
		// the end.
		bad := append([]byte(nil), valid...)
		countOff := len(bad) - 4*tab.M()
		bad[countOff+3] |= 0x80
		if _, err := Load(bytes.NewReader(bad), keys, model); err == nil {
			t.Errorf("%v: negative partition count accepted", cfg.Mode)
		}

		// Truncation at a stride of positions, including mid-header and
		// mid-array, must always error.
		for cut := 0; cut < len(valid); cut += 13 {
			if _, err := Load(bytes.NewReader(valid[:cut]), keys, model); err == nil {
				t.Errorf("%v: truncation to %d of %d bytes accepted", cfg.Mode, cut, len(valid))
			}
		}
	}
}

// TestLoadHostileHeaderBoundedAllocation: a 64-byte header claiming a
// gigantic layer over a stream that ends right after it must fail after
// at most one incremental chunk, not try to allocate the claimed size.
func TestLoadHostileHeaderBoundedAllocation(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 1_000_000, 5)
	model := cdfmodel.NewInterpolation(keys)
	head := make([]byte, 0, 80)
	for _, v := range []uint64{
		0x53485442, 1, uint64(ModeMidpoint), uint64(len(keys)),
		uint64(len(keys)) * 32, // m: sane relative to n, far beyond the 72 bytes that follow
		1, keysFingerprint(keys), modelFingerprint(model),
		64, // drift width: 64-bit entries ⇒ claimed array is 256 MiB
	} {
		head = binary.LittleEndian.AppendUint64(head, v)
	}
	before := allocatedBytes()
	if _, err := Load(bytes.NewReader(head), keys, model); err == nil {
		t.Fatal("hostile header accepted")
	}
	if grew := allocatedBytes() - before; grew > 16<<20 {
		t.Errorf("hostile header allocated %d MiB before failing", grew>>20)
	}
}

func allocatedBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

func TestFingerprintSensitivity(t *testing.T) {
	keys := dataset.MustGenerate(dataset.USpr, 64, 5_000, 5)
	fp := keysFingerprint(keys)
	mutated := append([]uint64(nil), keys...)
	mutated[len(mutated)-1]++
	if keysFingerprint(mutated) == fp {
		t.Error("fingerprint must change when the last key changes")
	}
	if keysFingerprint(keys[:4999]) == fp {
		t.Error("fingerprint must change with the length")
	}
	if keysFingerprint([]uint64{}) == fp {
		t.Error("empty fingerprint must differ")
	}
	_ = kv.LowerBound(keys, 0) // keep kv imported for the test's package shape
}
