package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
	"repro/internal/kv"
)

func TestLayerRoundTrip(t *testing.T) {
	for _, name := range []dataset.Name{dataset.Face, dataset.Wiki, dataset.UDen} {
		keys := dataset.MustGenerate(name, 64, 20_000, 5)
		model := cdfmodel.NewInterpolation(keys)
		for _, cfg := range []Config{
			{Mode: ModeRange},
			{Mode: ModeMidpoint},
			{Mode: ModeRange, M: 777},
		} {
			orig, err := Build(keys, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			n, err := orig.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			loaded, err := Load(bytes.NewReader(buf.Bytes()), keys, model)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.M() != orig.M() || loaded.Mode() != orig.Mode() || loaded.N() != orig.N() {
				t.Fatal("round-trip metadata mismatch")
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 3000; i++ {
				q := rng.Uint64() % (keys[len(keys)-1] + 3)
				if got, want := loaded.Find(q), orig.Find(q); got != want {
					t.Fatalf("%s %v: loaded Find(%d) = %d, want %d", name, cfg.Mode, q, got, want)
				}
			}
			if loaded.AvgError() != orig.AvgError() {
				t.Error("partition counts not preserved")
			}
		}
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 10_000, 5)
	model := cdfmodel.NewInterpolation(keys)
	tab, err := Build(keys, model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong data.
	other := dataset.MustGenerate(dataset.Face, 64, 10_000, 6)
	if _, err := Load(bytes.NewReader(buf.Bytes()), other, cdfmodel.NewInterpolation(other)); err == nil {
		t.Error("Load must reject a layer built over different keys")
	}
	// Wrong length.
	if _, err := Load(bytes.NewReader(buf.Bytes()), keys[:500], model); err == nil {
		t.Error("Load must reject a key-count mismatch")
	}
	// Wrong model family.
	if _, err := Load(bytes.NewReader(buf.Bytes()), keys, cdfmodel.NewLinear(keys)); err == nil {
		t.Error("Load must reject a different model")
	}
	// Nil model.
	if _, err := Load[uint64](bytes.NewReader(buf.Bytes()), keys, nil); err == nil {
		t.Error("Load must reject a nil model")
	}
	// Corrupted magic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad), keys, model); err == nil {
		t.Error("Load must reject a corrupted header")
	}
	// Truncated stream.
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), keys, model); err == nil {
		t.Error("Load must reject a truncated stream")
	}
	// Empty stream.
	if _, err := Load(bytes.NewReader(nil), keys, model); err == nil {
		t.Error("Load must reject an empty stream")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	keys := dataset.MustGenerate(dataset.USpr, 64, 5_000, 5)
	fp := keysFingerprint(keys)
	mutated := append([]uint64(nil), keys...)
	mutated[len(mutated)-1]++
	if keysFingerprint(mutated) == fp {
		t.Error("fingerprint must change when the last key changes")
	}
	if keysFingerprint(keys[:4999]) == fp {
		t.Error("fingerprint must change with the length")
	}
	if keysFingerprint([]uint64{}) == fp {
		t.Error("empty fingerprint must differ")
	}
	_ = kv.LowerBound(keys, 0) // keep kv imported for the test's package shape
}
