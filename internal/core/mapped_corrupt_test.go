package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/snapshot"
)

// These tests are the deterministic, exhaustive companions to FuzzLoad's
// v2 coverage: instead of hoping the fuzzer finds the interesting
// corruptions, they enumerate them — every single-byte flip, every
// truncation, plus the targeted mutations (nonzero padding, a mismatched
// section CRC hidden behind a recomputed TOC CRC, a misaligned payload
// offset) that each exercise one specific validator in the v2 parse.

const (
	v2FooterSize   = 32
	v2TocEntrySize = 24
)

var castagnoliTest = crc32.MakeTable(crc32.Castagnoli)

// v2TableContainer builds a small shift-table and returns its v2
// container bytes plus the keys it indexes.
func v2TableContainer(tb testing.TB) ([]byte, []uint64) {
	tb.Helper()
	keys := fuzzKeys(11, 300, 16, 40)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := snapshot.NewWriterV2(&buf, tab.SnapshotKind())
	if err != nil {
		tb.Fatal(err)
	}
	if err := tab.PersistSnapshot(sw); err != nil {
		tb.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), keys
}

// loadMappedStrict is the fully verifying mapped open: parse the
// geometry, check the kind, verify every section CRC, then view the
// table. This is the trust level warm restart runs at (the replica
// checks the whole file's CRC before an O(1) view).
func loadMappedStrict(data []byte) error {
	m, err := snapshot.OpenMappedBytes(data)
	if err != nil {
		return err
	}
	if m.Kind() != SnapshotKindTable {
		return fmt.Errorf("kind %q", m.Kind())
	}
	if err := m.VerifyAll(); err != nil {
		return err
	}
	_, err = MapTableSnapshot[uint64](m)
	return err
}

// loadStreaming is the eagerly verifying v1/v2 streaming load.
func loadStreaming(data []byte) error {
	return snapshot.Load(bytes.NewReader(data), int64(len(data)), func(sr *snapshot.Reader) error {
		_, err := LoadTableSnapshot[uint64](sr)
		return err
	})
}

// TestV2EveryByteFlip inverts each byte of a valid v2 container in turn.
// Every flip must be rejected by the verifying mapped open — except the
// footer's whole-container CRC word, which the mapped path does not
// consume (it validates structure plus per-section CRCs instead); flips
// there must still be caught by the streaming loader, which does.
func TestV2EveryByteFlip(t *testing.T) {
	data, _ := v2TableContainer(t)
	if err := loadMappedStrict(data); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
	contCRCOff := len(data) - 16 // foot[16:20] is the container CRC
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		if err := loadMappedStrict(mut); err == nil {
			if i < contCRCOff || i >= contCRCOff+4 {
				t.Fatalf("flip at offset %d/%d accepted by the mapped open", i, len(data))
			}
			if err := loadStreaming(mut); err == nil {
				t.Fatalf("container-CRC flip at offset %d accepted by the streaming load too", i)
			}
		}
	}
}

// TestV2EveryTruncation feeds every strict prefix of a valid container
// to both loaders; all must error (the footer anchors the parse, so no
// prefix can masquerade as complete).
func TestV2EveryTruncation(t *testing.T) {
	data, _ := v2TableContainer(t)
	for i := 0; i < len(data); i++ {
		if err := loadMappedStrict(data[:i]); err == nil {
			t.Fatalf("mapped open accepted a %d/%d-byte prefix", i, len(data))
		}
		if err := loadStreaming(data[:i]); err == nil {
			t.Fatalf("streaming load accepted a %d/%d-byte prefix", i, len(data))
		}
	}
}

// v2Footer decodes the pieces of the footer the mutation tests edit.
func v2Footer(data []byte) (tocOff uint64, tocCount uint32) {
	foot := data[len(data)-v2FooterSize:]
	return binary.LittleEndian.Uint64(foot[0:8]), binary.LittleEndian.Uint32(foot[8:12])
}

// restampTocCRC recomputes the stored TOC checksum after a TOC edit, so
// the mutation under test is reachable (otherwise the TOC CRC masks it).
func restampTocCRC(data []byte) {
	tocOff, _ := v2Footer(data)
	foot := data[len(data)-v2FooterSize:]
	crc := crc32.New(castagnoliTest)
	crc.Write(data[tocOff : len(data)-v2FooterSize])
	crc.Write(foot[0:12])
	binary.LittleEndian.PutUint32(foot[12:16], crc.Sum32())
}

// TestV2CorruptedPadding pokes a nonzero byte into the alignment padding
// before the first payload. No checksum covers padding — the zero-scan
// in the parse is the only line of defence, so it must hold.
func TestV2CorruptedPadding(t *testing.T) {
	data, _ := v2TableContainer(t)
	tocOff, _ := v2Footer(data)
	firstOff := binary.LittleEndian.Uint64(data[tocOff+8:])
	mut := append([]byte(nil), data...)
	mut[firstOff-1] = 0xA5 // last pad byte before the first page-aligned payload
	if err := loadMappedStrict(mut); err == nil {
		t.Fatal("nonzero padding accepted by the mapped open")
	}
}

// TestV2SectionCRCMismatch edits a section's TOC CRC and restamps the
// TOC checksum so the parse succeeds; VerifyAll must then reject the
// section (this is the exact lie a lazily-verifying reader must catch).
func TestV2SectionCRCMismatch(t *testing.T) {
	data, _ := v2TableContainer(t)
	tocOff, _ := v2Footer(data)
	mut := append([]byte(nil), data...)
	e := mut[tocOff:]
	binary.LittleEndian.PutUint32(e[4:8], binary.LittleEndian.Uint32(e[4:8])^0xDEADBEEF)
	restampTocCRC(mut)
	m, err := snapshot.OpenMappedBytes(mut)
	if err != nil {
		t.Fatalf("restamped container failed to parse: %v", err)
	}
	if err := m.VerifyAll(); err == nil {
		t.Fatal("mismatched section CRC passed VerifyAll")
	}
}

// TestV2MisalignedOffset moves a section's recorded payload offset off
// its page boundary (restamping the TOC checksum); the parse must reject
// the geometry — alignment is what makes the in-place views legal.
func TestV2MisalignedOffset(t *testing.T) {
	data, _ := v2TableContainer(t)
	tocOff, _ := v2Footer(data)
	mut := append([]byte(nil), data...)
	e := mut[tocOff:]
	binary.LittleEndian.PutUint64(e[8:16], binary.LittleEndian.Uint64(e[8:16])+8)
	restampTocCRC(mut)
	if _, err := snapshot.OpenMappedBytes(mut); err == nil {
		t.Fatal("misaligned payload offset accepted by the mapped open")
	}
}
