package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
	"repro/internal/kv"
	"repro/internal/snapshot"
)

// saveTable renders a table as a full snapshot container.
func saveTable[K kv.Key](t *testing.T, tab *Table[K]) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := snapshot.NewWriter(&buf, tab.SnapshotKind())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.PersistSnapshot(sw); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func loadTable[K kv.Key](raw []byte) (*Table[K], error) {
	var tab *Table[K]
	err := snapshot.Load(bytes.NewReader(raw), int64(len(raw)), func(sr *snapshot.Reader) error {
		var lerr error
		tab, lerr = LoadTableSnapshot[K](sr)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	return tab, nil
}

// TestTableSnapshotRoundTrip: a snapshot restores a table that answers
// every query identically — keys, model and layer all come from the file.
func TestTableSnapshotRoundTrip(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 30_000, 5)
	for _, mk := range []func() cdfmodel.Model[uint64]{
		func() cdfmodel.Model[uint64] { return cdfmodel.NewInterpolation(keys) },
		func() cdfmodel.Model[uint64] { return cdfmodel.NewLinear(keys) },
		func() cdfmodel.Model[uint64] { return cdfmodel.NewCubic(keys) },
	} {
		model := mk()
		for _, cfg := range []Config{
			{Mode: ModeRange},
			{Mode: ModeMidpoint},
			{Mode: ModeRange, M: 999},
		} {
			orig, err := Build(keys, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			raw := saveTable(t, orig)
			loaded, err := loadTable[uint64](raw)
			if err != nil {
				t.Fatalf("%s/%v: %v", model.Name(), cfg.Mode, err)
			}
			if loaded.N() != orig.N() || loaded.M() != orig.M() || loaded.Mode() != orig.Mode() {
				t.Fatal("metadata mismatch after snapshot round trip")
			}
			if loaded.Model().Name() != model.Name() {
				t.Fatalf("model %q restored as %q", model.Name(), loaded.Model().Name())
			}
			rng := rand.New(rand.NewSource(9))
			qs := make([]uint64, 2000)
			for i := range qs {
				qs[i] = rng.Uint64() % (keys[len(keys)-1] + 3)
			}
			for _, q := range qs {
				if got, want := loaded.Find(q), orig.Find(q); got != want {
					t.Fatalf("%s/%v: loaded Find(%d) = %d, want %d", model.Name(), cfg.Mode, q, got, want)
				}
			}
			// Batch path over the restored table too.
			want := orig.FindBatch(qs, nil)
			got := loaded.FindBatch(qs, nil)
			for i := range qs {
				if got[i] != want[i] {
					t.Fatalf("loaded FindBatch[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		}
	}
}

// TestSnapshotDetectsEveryByteFlip: the container checksum (or a
// structural check before it) must catch any single corrupted byte —
// including ones in the key data, which the bare layer format could never
// see.
func TestSnapshotDetectsEveryByteFlip(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 64, 600, 3)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{})
	if err != nil {
		t.Fatal(err)
	}
	raw := saveTable(t, tab)
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x20
		if _, err := loadTable[uint64](bad); err == nil {
			t.Fatalf("flipped byte %d of %d went undetected", i, len(raw))
		}
	}
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := loadTable[uint64](raw[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// TestModelIndexSnapshotRoundTrip covers the bare-model kind.
func TestModelIndexSnapshotRoundTrip(t *testing.T) {
	keys := dataset.MustGenerate(dataset.LogN, 64, 20_000, 7)
	orig, err := NewModelIndex(keys, cdfmodel.NewInterpolation(keys))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := snapshot.NewWriter(&buf, orig.SnapshotKind())
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.PersistSnapshot(sw); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var loaded *ModelIndex[uint64]
	err = snapshot.Load(bytes.NewReader(buf.Bytes()), int64(buf.Len()), func(sr *snapshot.Reader) error {
		var lerr error
		loaded, lerr = LoadModelIndexSnapshot[uint64](sr)
		return lerr
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		q := rng.Uint64() % (keys[len(keys)-1] + 3)
		if got, want := loaded.Find(q), orig.Find(q); got != want {
			t.Fatalf("loaded Find(%d) = %d, want %d", q, got, want)
		}
	}
	if loaded.MeanAbsError() != orig.MeanAbsError() {
		t.Error("mean model error not reproduced")
	}
}

// TestSnapshotEmptyTable: the n=0 table round-trips (the pre-snapshot
// loader rejected the width-0 drift arrays an empty table writes).
func TestSnapshotEmptyTable(t *testing.T) {
	for _, mode := range []Mode{ModeRange, ModeMidpoint} {
		tab, err := Build(nil, cdfmodel.NewInterpolation[uint64](nil), Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		// Bare layer format.
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()), nil, cdfmodel.NewInterpolation[uint64](nil))
		if err != nil {
			t.Fatalf("empty %v layer round trip: %v", mode, err)
		}
		if loaded.Find(42) != 0 {
			t.Error("empty table Find != 0")
		}
		// Full snapshot container.
		raw := saveTable(t, tab)
		if _, err := loadTable[uint64](raw); err != nil {
			t.Fatalf("empty %v snapshot round trip: %v", mode, err)
		}
	}
}

// TestSnapshotModelSpecValidation: a tampered model spec (wrong family,
// wrong fingerprint, bogus params) must be rejected even when the rest of
// the container is rewritten self-consistently.
func TestSnapshotModelSpecValidation(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 5_000, 5)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := encodeModelSpec[uint64](tab.Model())
	if err != nil {
		t.Fatal(err)
	}

	// Family name swapped: reconstruction builds a different family whose
	// fingerprint cannot match.
	bad := append([]byte(nil), spec...)
	copy(bad[4:], "XM")
	if _, err := decodeModelSpec(bad, keys); err == nil {
		t.Error("unknown family accepted")
	}
	lin := append([]byte(nil), spec...)
	binary.LittleEndian.PutUint32(lin, 6)
	lin = append(lin[:4], append([]byte("Linear"), lin[4+2:]...)...)
	if _, err := decodeModelSpec(lin, keys); err == nil {
		t.Error("swapped family with stale fingerprint accepted")
	}

	// Fingerprint flipped.
	fp := append([]byte(nil), spec...)
	fp[4+2] ^= 0xFF // first fingerprint byte (name "IM" is 2 bytes)
	if _, err := decodeModelSpec(fp, keys); err == nil {
		t.Error("wrong fingerprint accepted")
	}

	// Unsolicited params for a keys-only family.
	p := append([]byte(nil), spec...)
	p = append(p, 1, 2, 3, 4)
	binary.LittleEndian.PutUint32(p[4+2+8:], 4)
	if _, err := decodeModelSpec(p, keys); err == nil {
		t.Error("params for IM accepted")
	}

	// Truncations at every length.
	for cut := 0; cut < len(spec); cut++ {
		if _, err := decodeModelSpec(spec[:cut], keys); err == nil {
			t.Errorf("model spec truncated to %d bytes accepted", cut)
		}
	}
}

// TestSnapshotSaveLoadFile exercises the crash-safe file path end to end
// through a Table.
func TestSnapshotSaveLoadFile(t *testing.T) {
	keys := dataset.MustGenerate(dataset.UDen, 64, 10_000, 11)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table.snap")
	if err := snapshot.SaveFile(path, tab.SnapshotKind(), tab.PersistSnapshot); err != nil {
		t.Fatal(err)
	}
	var loaded *Table[uint64]
	err = snapshot.LoadFile(path, func(sr *snapshot.Reader) error {
		var lerr error
		loaded, lerr = LoadTableSnapshot[uint64](sr)
		return lerr
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 37 {
		if got, want := loaded.Find(keys[i]), kv.LowerBound(keys, keys[i]); got != want {
			t.Fatalf("loaded Find(%d) = %d, want %d", keys[i], got, want)
		}
	}
}
