package core

import (
	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/search"
)

// Find returns lower-bound semantics over the indexed keys: the smallest
// index i with keys[i] >= q, or N if no such key exists. It implements the
// paper's Alg. 1: model prediction, Shift-Table correction, then bounded
// local search (linear under the threshold, binary above; exponential when
// no bound is available).
//
//shift:lockfree
func (t *Table[K]) Find(q K) int {
	if t.n == 0 {
		return 0
	}
	pred := t.model.Predict(q)
	k := t.partitionOf(pred)
	switch t.mode {
	case ModeRange:
		// Fused layout: the <lo, hi> pair is adjacent in memory, so the
		// correction step costs one cache line, not two (DESIGN.md §8).
		dlo, dhi := t.pairs.pair(k)
		lo := pred + dlo
		hi := pred + dhi
		r := search.Window(t.keys, lo, hi, q)
		if t.monotone {
			return r
		}
		// Non-monotone model (§3.8): the window is only a hint. Validate
		// the result globally and fall back to exponential search from the
		// corrected position when the true answer lies outside the window.
		if t.valid(r, q) {
			return r
		}
		return search.Exponential(t.keys, (lo+hi)/2, q)
	default: // ModeMidpoint
		start := pred + t.shift.get(k)
		return search.Exponential(t.keys, start, q)
	}
}

// valid reports whether r satisfies global lower-bound semantics for q.
func (t *Table[K]) valid(r int, q K) bool {
	if r < 0 || r > t.n {
		return false
	}
	if r > 0 && t.keys[r-1] >= q {
		return false
	}
	if r < t.n && t.keys[r] < q {
		return false
	}
	return true
}

// Window returns the local-search window the layer derives for q: the
// corrected start position and inclusive end (range mode), or a degenerate
// [start, start] window (midpoint mode). Exposed for analysis tools and the
// cost model; Find is the query path.
func (t *Table[K]) Window(q K) (lo, hi int) {
	pred := t.model.Predict(q)
	k := t.partitionOf(pred)
	if t.mode == ModeRange {
		dlo, dhi := t.pairs.pair(k)
		return pred + dlo, pred + dhi
	}
	s := pred + t.shift.get(k)
	return s, s
}

// Lookup is a convenience wrapper pairing Find with an existence check:
// it reports the lower-bound position and whether the key at that position
// equals q.
func (t *Table[K]) Lookup(q K) (pos int, found bool) {
	pos = t.Find(q)
	return pos, pos < t.n && t.keys[pos] == q
}

// FindRange returns the half-open position range [first, last) of keys in
// the inclusive key range [a, b] — the paper's range query A ≤ key ≤ B,
// located via two lower-bound searches (§1: finding the first result, then
// the scan boundary).
func (t *Table[K]) FindRange(a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = t.Find(a)
	if b == maxOf[K]() {
		return first, t.n
	}
	last = t.Find(b + 1)
	return first, last
}

// maxOf returns the largest value of the key type.
func maxOf[K kv.Key]() K {
	var zero K
	return ^zero
}

// ModelFind performs a lookup with the model alone — no correction layer —
// using exponential search from the raw prediction. This is the paper's
// "model without Shift-Table" configuration (§3.9: the layer is optional and
// can be disabled with zero cost, falling back to exactly this path).
func ModelFind[K kv.Key](keys []K, model cdfmodel.Model[K], q K) int {
	if len(keys) == 0 {
		return 0
	}
	return search.Exponential(keys, model.Predict(q), q)
}
