package core

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// BuildParallel is Build with the data pass sharded across workers — the
// §3.3 optimisation ("in case that running the model is expensive, model
// executions can be parallelized for faster execution"). workers <= 0 uses
// GOMAXPROCS. The result is bit-identical to Build: shards split on
// duplicate-run boundaries so §3.2 first-occurrence semantics hold, and
// per-partition statistics merge associatively.
//
// Midpoint sampling (Config.SampleStride) depends on global key indices, so
// sampled builds fall back to the serial path.
func BuildParallel[K kv.Key](keys []K, model cdfmodel.Model[K], cfg Config, workers int) (*Table[K], error) {
	n := len(keys)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < 4096 || (cfg.Mode == ModeMidpoint && cfg.SampleStride > 1) {
		return Build(keys, model, cfg)
	}
	// Validate inputs exactly as Build does (cheap relative to the pass).
	if model == nil || !kv.IsSorted(keys) || cfg.SampleStride < 0 ||
		(cfg.Mode != ModeRange && cfg.Mode != ModeMidpoint) || cfg.M < 0 {
		return Build(keys, model, cfg) // serial path reports the error
	}
	m := cfg.M
	if m == 0 {
		m = n
	}
	t := &Table[K]{
		keys:     keys,
		model:    model,
		mode:     cfg.Mode,
		monotone: model.Monotone(),
		n:        n,
		m:        m,
		scratch:  new(sync.Pool),
	}

	// Shard boundaries aligned to duplicate-run starts.
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	for wk := 1; wk < workers; wk++ {
		at := n * wk / workers
		for at > 0 && at < n && keys[at] == keys[at-1] {
			at--
		}
		if at > bounds[len(bounds)-1] {
			bounds = append(bounds, at)
		}
	}
	bounds = append(bounds, n)

	type shardStats struct {
		minPos, endPos, sum []int64
		cnt                 []int32
	}
	shards := make([]shardStats, len(bounds)-1)
	var wg sync.WaitGroup
	for s := 0; s < len(bounds)-1; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := bounds[s], bounds[s+1]
			st := shardStats{
				minPos: make([]int64, m),
				endPos: make([]int64, m),
				sum:    make([]int64, m),
				cnt:    make([]int32, m),
			}
			for k := range st.minPos {
				st.minPos[k] = math.MaxInt64
				st.endPos[k] = math.MinInt64
			}
			firstOcc := lo // shard starts at a run boundary
			for i := lo; i < hi; i++ {
				if i > lo && keys[i] != keys[i-1] {
					firstOcc = i
				}
				pred := model.Predict(keys[i])
				k := t.partitionOf(pred)
				st.sum[k] += int64(firstOcc) - int64(pred)
				st.cnt[k]++
				if int64(firstOcc) < st.minPos[k] {
					st.minPos[k] = int64(firstOcc)
				}
				if int64(i) > st.endPos[k] {
					st.endPos[k] = int64(i)
				}
			}
			shards[s] = st
		}(s)
	}
	wg.Wait()

	// Merge shard statistics (all operations are associative).
	minPos := shards[0].minPos
	endPos := shards[0].endPos
	sumW := shards[0].sum
	cnt := shards[0].cnt
	for _, st := range shards[1:] {
		for k := 0; k < m; k++ {
			if st.minPos[k] < minPos[k] {
				minPos[k] = st.minPos[k]
			}
			if st.endPos[k] > endPos[k] {
				endPos[k] = st.endPos[k]
			}
			sumW[k] += st.sum[k]
			cnt[k] += st.cnt[k]
		}
	}

	// Pass 2 is identical to Build's (serial; O(M)).
	loW := make([]int64, m)
	hiW := make([]int64, m)
	nextFirst := int64(n)
	for k := m - 1; k >= 0; k-- {
		pmin, pmax := t.predRange(k)
		if cnt[k] > 0 {
			loW[k] = minPos[k] - pmax
			hiW[k] = endPos[k] - pmin
			nextFirst = minPos[k]
			continue
		}
		loW[k] = nextFirst - pmax
		hiW[k] = nextFirst - 1 - pmin
		sumW[k] = nextFirst - (pmin+pmax)/2
	}
	t.count = cnt
	switch cfg.Mode {
	case ModeRange:
		t.lo = packDrifts(loW)
		t.hi = packDrifts(hiW)
	default:
		mid := make([]int64, m)
		for k := range mid {
			if cnt[k] > 0 {
				mid[k] = roundHalfAway(float64(sumW[k]) / float64(cnt[k]))
			} else {
				mid[k] = sumW[k]
			}
		}
		t.shift = packDrifts(mid)
	}
	return t, nil
}
