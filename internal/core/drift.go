package core

// driftArray stores per-partition drift values at the narrowest integer
// width that fits, realising §3.9's observation that the entry width can
// follow the model's maximum error (16-bit entries when the error fits in
// ±2^15, and so on). Exactly one backing slice is non-nil; width caches
// which one, so lookups dispatch on a byte instead of probing slice headers
// for nil-ness on every query.
type driftArray struct {
	width uint8 // entry width in bytes (1, 2, 4, 8); 0 for an empty array
	w8    []int8
	w16   []int16
	w32   []int32
	w64   []int64
}

// driftWidth returns the narrowest entry width (in bytes) that holds every
// value whose absolute magnitude is at most maxAbs.
func driftWidth(maxAbs int64) uint8 {
	switch {
	case maxAbs <= 127:
		return 1
	case maxAbs <= 32767:
		return 2
	case maxAbs <= 1<<31-1:
		return 4
	default:
		return 8
	}
}

// maxAbs64 returns the largest absolute value in vals.
func maxAbs64(vals []int64) int64 {
	var m int64
	for _, v := range vals {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// packDrifts selects the narrowest width that holds every value.
func packDrifts(vals []int64) driftArray {
	return packDriftsWidth(vals, driftWidth(maxAbs64(vals)))
}

// packDriftsWidth packs vals at an explicit entry width (callers that
// tracked the magnitude during generation skip the extra reduction pass;
// serialization re-packs at the recorded width).
func packDriftsWidth(vals []int64, width uint8) driftArray {
	switch width {
	case 1:
		out := make([]int8, len(vals))
		for i, v := range vals {
			out[i] = int8(v)
		}
		return driftArray{width: 1, w8: out}
	case 2:
		out := make([]int16, len(vals))
		for i, v := range vals {
			out[i] = int16(v)
		}
		return driftArray{width: 2, w16: out}
	case 4:
		out := make([]int32, len(vals))
		for i, v := range vals {
			out[i] = int32(v)
		}
		return driftArray{width: 4, w32: out}
	default:
		out := make([]int64, len(vals))
		copy(out, vals)
		return driftArray{width: 8, w64: out}
	}
}

// get returns the drift for partition k.
func (d *driftArray) get(k int) int {
	switch d.width {
	case 1:
		return int(d.w8[k])
	case 2:
		return int(d.w16[k])
	case 4:
		return int(d.w32[k])
	default:
		return int(d.w64[k])
	}
}

// len returns the number of partitions.
func (d *driftArray) len() int {
	switch d.width {
	case 1:
		return len(d.w8)
	case 2:
		return len(d.w16)
	case 4:
		return len(d.w32)
	default:
		return len(d.w64)
	}
}

// sizeBytes returns the memory footprint of the backing slice.
func (d *driftArray) sizeBytes() int {
	return d.len() * d.entryBits() / 8
}

// entryBits returns the selected per-entry width in bits.
func (d *driftArray) entryBits() int {
	return int(d.width) * 8
}

// driftPairs is the fused cache-conscious layout for range mode: the
// per-partition <lo, hi> drift bounds interleaved as [lo₀,hi₀,lo₁,hi₁,…]
// at one packed width, so the correction step of a lookup touches a single
// cache line where the split lo/hi arrays of the serialized format touch
// two. Exactly one backing slice is non-nil, of length 2·M; width caches
// the dispatch byte exactly as driftArray does.
type driftPairs struct {
	width uint8 // entry width in bytes (1, 2, 4, 8); 0 for an empty array
	w8    []int8
	w16   []int16
	w32   []int32
	w64   []int64
}

// packPairs interleaves loW/hiW at the given common entry width (the max of
// the two split widths, so every value fits).
func packPairs(loW, hiW []int64, width uint8) driftPairs {
	m := len(loW)
	switch width {
	case 1:
		out := make([]int8, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = int8(loW[k]), int8(hiW[k])
		}
		return driftPairs{width: 1, w8: out}
	case 2:
		out := make([]int16, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = int16(loW[k]), int16(hiW[k])
		}
		return driftPairs{width: 2, w16: out}
	case 4:
		out := make([]int32, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = int32(loW[k]), int32(hiW[k])
		}
		return driftPairs{width: 4, w32: out}
	default:
		out := make([]int64, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = loW[k], hiW[k]
		}
		return driftPairs{width: 8, w64: out}
	}
}

// pair returns the <lo, hi> drift bounds for partition k — two adjacent
// loads from one cache line (entries are at most 8 bytes, so the 16-byte
// pair never spans more than it would split).
func (d *driftPairs) pair(k int) (lo, hi int) {
	switch d.width {
	case 1:
		return int(d.w8[2*k]), int(d.w8[2*k+1])
	case 2:
		return int(d.w16[2*k]), int(d.w16[2*k+1])
	case 4:
		return int(d.w32[2*k]), int(d.w32[2*k+1])
	default:
		return int(d.w64[2*k]), int(d.w64[2*k+1])
	}
}

// len returns the number of partitions (half the backing-slice length).
func (d *driftPairs) len() int {
	switch d.width {
	case 1:
		return len(d.w8) / 2
	case 2:
		return len(d.w16) / 2
	case 4:
		return len(d.w32) / 2
	default:
		return len(d.w64) / 2
	}
}

// sizeBytes returns the memory footprint of the backing slice.
func (d *driftPairs) sizeBytes() int {
	return 2 * d.len() * int(d.width)
}

// entryBits returns the selected per-entry width in bits.
func (d *driftPairs) entryBits() int {
	return int(d.width) * 8
}

// split de-interleaves the pairs back into independent lo/hi arrays at the
// given split widths — the serialization format (version 1) stores the two
// arrays separately, each at its own narrowest width.
func (d *driftPairs) split(loBits, hiBits uint8) (lo, hi driftArray) {
	m := d.len()
	loW := make([]int64, m)
	hiW := make([]int64, m)
	for k := 0; k < m; k++ {
		l, h := d.pair(k)
		loW[k], hiW[k] = int64(l), int64(h)
	}
	return packDriftsWidth(loW, loBits), packDriftsWidth(hiW, hiBits)
}

// fusePairs interleaves two split driftArrays (as read from a serialized
// layer) into the fused query-path layout at their common width, directly
// — no int64 staging, so Load's transient footprint is just the split
// arrays it read anyway.
func fusePairs(lo, hi *driftArray) driftPairs {
	m := lo.len()
	w := lo.width
	if hi.width > w {
		w = hi.width
	}
	switch w {
	case 1:
		out := make([]int8, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = int8(lo.get(k)), int8(hi.get(k))
		}
		return driftPairs{width: 1, w8: out}
	case 2:
		out := make([]int16, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = int16(lo.get(k)), int16(hi.get(k))
		}
		return driftPairs{width: 2, w16: out}
	case 4:
		out := make([]int32, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = int32(lo.get(k)), int32(hi.get(k))
		}
		return driftPairs{width: 4, w32: out}
	default:
		out := make([]int64, 2*m)
		for k := 0; k < m; k++ {
			out[2*k], out[2*k+1] = int64(lo.get(k)), int64(hi.get(k))
		}
		return driftPairs{width: 8, w64: out}
	}
}

// gatherAdd writes wlo[i] = pred[i] + lo[part(pred[i])] and wend[i] =
// pred[i] + hi[part(pred[i])] with the packed width dispatched once per
// call. The fused layout makes the two gathers one: each lane loads its
// <lo, hi> pair from adjacent entries on one line, halving the independent
// miss count of the split-layout gather.
func (d *driftPairs) gatherAdd(pred, wlo, wend []int, part func(int) int) {
	switch d.width {
	case 1:
		a := d.w8
		for i, p := range pred {
			k := part(p)
			wlo[i], wend[i] = p+int(a[2*k]), p+int(a[2*k+1])
		}
	case 2:
		a := d.w16
		for i, p := range pred {
			k := part(p)
			wlo[i], wend[i] = p+int(a[2*k]), p+int(a[2*k+1])
		}
	case 4:
		a := d.w32
		for i, p := range pred {
			k := part(p)
			wlo[i], wend[i] = p+int(a[2*k]), p+int(a[2*k+1])
		}
	default:
		a := d.w64
		for i, p := range pred {
			k := part(p)
			wlo[i], wend[i] = p+int(a[2*k]), p+int(a[2*k+1])
		}
	}
}
