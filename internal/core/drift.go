package core

// driftArray stores per-partition drift values at the narrowest integer
// width that fits, realising §3.9's observation that the entry width can
// follow the model's maximum error (16-bit entries when the error fits in
// ±2^15, and so on). Exactly one backing slice is non-nil; width caches
// which one, so lookups dispatch on a byte instead of probing slice headers
// for nil-ness on every query.
type driftArray struct {
	width uint8 // entry width in bytes (1, 2, 4, 8); 0 for an empty array
	w8    []int8
	w16   []int16
	w32   []int32
	w64   []int64
}

// packDrifts selects the narrowest width that holds every value.
func packDrifts(vals []int64) driftArray {
	var maxAbs int64
	for _, v := range vals {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	switch {
	case maxAbs <= 127:
		out := make([]int8, len(vals))
		for i, v := range vals {
			out[i] = int8(v)
		}
		return driftArray{width: 1, w8: out}
	case maxAbs <= 32767:
		out := make([]int16, len(vals))
		for i, v := range vals {
			out[i] = int16(v)
		}
		return driftArray{width: 2, w16: out}
	case maxAbs <= 1<<31-1:
		out := make([]int32, len(vals))
		for i, v := range vals {
			out[i] = int32(v)
		}
		return driftArray{width: 4, w32: out}
	default:
		out := make([]int64, len(vals))
		copy(out, vals)
		return driftArray{width: 8, w64: out}
	}
}

// get returns the drift for partition k.
func (d *driftArray) get(k int) int {
	switch d.width {
	case 1:
		return int(d.w8[k])
	case 2:
		return int(d.w16[k])
	case 4:
		return int(d.w32[k])
	default:
		return int(d.w64[k])
	}
}

// len returns the number of partitions.
func (d *driftArray) len() int {
	switch d.width {
	case 1:
		return len(d.w8)
	case 2:
		return len(d.w16)
	case 4:
		return len(d.w32)
	default:
		return len(d.w64)
	}
}

// sizeBytes returns the memory footprint of the backing slice.
func (d *driftArray) sizeBytes() int {
	return d.len() * d.entryBits() / 8
}

// entryBits returns the selected per-entry width in bits.
func (d *driftArray) entryBits() int {
	return int(d.width) * 8
}
