package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/snapshot"
)

// This file is the core side of container transcoding (DESIGN.md §13).
// The layer blob is the only payload this package owns whose encoding
// differs between container layouts — v1 stores range-mode drifts as two
// split arrays at their own widths, v2 stores the fused interleaved array
// plus a widths word — so rewriting a container across versions means
// rewriting the blob between those shapes. The transform is lossless by
// construction: the v2 widths word records the exact split widths a v1
// writer would use, so v1→v2→v1 and v2→v1→v2 reproduce the original blob
// byte for byte (the property the transcode tests pin down, and what
// makes format rollback trustworthy).
//
// The input is an untrusted artifact section: every header field is
// validated against the blob's own length before it drives an allocation
// or an offset, exactly as Load does, and a narrowing that would lose
// bits (a corrupt fused array claiming split widths it doesn't fit)
// fails instead of truncating.

func init() {
	snapshot.RegisterTranscodeSchema(SnapshotKindTable, map[uint32]snapshot.Role{
		secTableKeys:  snapshot.RoleKeys,
		secTableModel: snapshot.RoleOpaque,
		secTableLayer: snapshot.RoleLayer,
	})
	snapshot.RegisterTranscodeSchema(SnapshotKindModelIndex, map[uint32]snapshot.Role{
		secTableKeys:  snapshot.RoleKeys,
		secTableModel: snapshot.RoleOpaque,
	})
	snapshot.RegisterLayerTranscoder(TranscodeLayer)
}

// TranscodeLayer rewrites one serialized layer blob into the layout of
// the target container version (toV2 selects layerVersion2). A blob
// already in the target layout is validated and returned unchanged —
// never mutated — so repeated transcoding is idempotent.
func TranscodeLayer(src []byte, toV2 bool) ([]byte, error) {
	if len(src) < 8*8 {
		return nil, fmt.Errorf("core: layer blob truncated (%d bytes)", len(src))
	}
	var head [8]uint64
	for i := range head {
		head[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
	if head[0] != layerMagic {
		return nil, fmt.Errorf("core: not a Shift-Table layer blob")
	}
	if head[2] != uint64(ModeRange) && head[2] != uint64(ModeMidpoint) {
		return nil, fmt.Errorf("core: invalid mode %d in layer header", head[2])
	}
	mode := Mode(head[2])
	if head[5] > 1 {
		return nil, fmt.Errorf("core: invalid monotone flag %d in layer header", head[5])
	}
	n, mRaw := head[3], head[4]
	if (n == 0) != (mRaw == 0) {
		return nil, fmt.Errorf("core: layer header claims %d partitions over %d keys", mRaw, n)
	}
	// The counts alone need 4m bytes, so any genuine m is bounded by the
	// blob's own length — checked before the uint64→int conversion.
	if mRaw > uint64(len(src)/4) {
		return nil, fmt.Errorf("core: layer header claims %d partitions in a %d-byte blob", mRaw, len(src))
	}
	m := int(mRaw)
	switch head[1] {
	case layerVersion:
		p, err := parseLayerV1(src, mode, m, n)
		if err != nil {
			return nil, err
		}
		if !toV2 {
			return src, nil
		}
		return buildLayerV2(head, p), nil
	case layerVersion2:
		p, err := parseLayerV2(src, mode, m, n)
		if err != nil {
			return nil, err
		}
		if toV2 {
			return src, nil
		}
		return buildLayerV1(head, p)
	default:
		return nil, fmt.Errorf("core: unsupported layer version %d", head[1])
	}
}

// layerParts is a parsed layer body: raw drift bytes plus the widths that
// interpret them. For range mode, exactly one of (loArr, hiArr) / fused
// is populated depending on the source layout; counts is always the raw
// 4m-byte int32 array.
type layerParts struct {
	mode   Mode
	m      int
	width  uint8 // fused/midpoint entry width (max(lo, hi) for range)
	lo, hi uint8 // split widths, range mode only
	loArr  []byte
	hiArr  []byte
	fused  []byte
	arr    []byte // midpoint entries
	counts []byte
}

// parseLayerV1 validates and slices a v1 body: split drift arrays (each
// prefixed by a u64 width-in-bits word) or the midpoint array, then the
// counts, with the total required to match the blob length exactly.
func parseLayerV1(src []byte, mode Mode, m int, n uint64) (*layerParts, error) {
	p := &layerParts{mode: mode, m: m}
	off := int64(8 * 8)
	readArr := func(what string) ([]byte, uint8, error) {
		if int64(len(src)) < off+8 {
			return nil, 0, fmt.Errorf("core: layer blob truncated reading %s width", what)
		}
		bits := binary.LittleEndian.Uint64(src[off:])
		off += 8
		switch bits {
		case 0:
			if m != 0 {
				return nil, 0, fmt.Errorf("core: invalid %s entry width 0 for %d partitions", what, m)
			}
			return nil, 0, nil
		case 8, 16, 32, 64:
			if m == 0 {
				return nil, 0, fmt.Errorf("core: %s entry width %d for an empty layer", what, bits)
			}
		default:
			return nil, 0, fmt.Errorf("core: invalid %s entry width %d", what, bits)
		}
		w := uint8(bits / 8)
		size := int64(m) * int64(w)
		if int64(len(src)) < off+size {
			return nil, 0, fmt.Errorf("core: layer blob truncated reading %s entries", what)
		}
		arr := src[off : off+size]
		off += size
		return arr, w, nil
	}
	var err error
	switch mode {
	case ModeRange:
		if p.loArr, p.lo, err = readArr("lo drift"); err != nil {
			return nil, err
		}
		if p.hiArr, p.hi, err = readArr("hi drift"); err != nil {
			return nil, err
		}
		p.width = max(p.lo, p.hi)
	default:
		if p.arr, p.width, err = readArr("drift"); err != nil {
			return nil, err
		}
	}
	if p.counts, err = sliceLayerCounts(src, off, m, n); err != nil {
		return nil, err
	}
	return p, nil
}

// parseLayerV2 validates and slices a v2 body: the widths word, the
// fused (or midpoint) entries, zero padding to 8 bytes, then the counts,
// again with an exact total-length match.
func parseLayerV2(src []byte, mode Mode, m int, n uint64) (*layerParts, error) {
	if int64(len(src)) < layerV2DataOff {
		return nil, fmt.Errorf("core: v2 layer blob truncated (%d bytes)", len(src))
	}
	word := binary.LittleEndian.Uint64(src[8*8:])
	width, lo, hi, err := layerWidths(word, mode, m)
	if err != nil {
		return nil, err
	}
	p := &layerParts{mode: mode, m: m, width: width, lo: lo, hi: hi}
	entries := int64(m)
	if mode == ModeRange {
		entries = 2 * int64(m)
	}
	data := entries * int64(width)
	off := int64(layerV2DataOff)
	if int64(len(src)) < off+data {
		return nil, fmt.Errorf("core: v2 layer blob truncated reading drift entries")
	}
	if mode == ModeRange {
		p.fused = src[off : off+data]
	} else {
		p.arr = src[off : off+data]
	}
	off += data
	pad := pad8(data)
	if int64(len(src)) < off+pad {
		return nil, fmt.Errorf("core: v2 layer blob truncated reading padding")
	}
	for _, b := range src[off : off+pad] {
		if b != 0 {
			return nil, fmt.Errorf("core: nonzero layer padding")
		}
	}
	off += pad
	if p.counts, err = sliceLayerCounts(src, off, m, n); err != nil {
		return nil, err
	}
	return p, nil
}

// sliceLayerCounts takes the trailing 4m count bytes, requires them to
// end exactly at the blob's end, and applies the same non-negative /
// sum ≤ n validation the loaders do — garbage must not transcode.
func sliceLayerCounts(src []byte, off int64, m int, n uint64) ([]byte, error) {
	size := 4 * int64(m)
	if int64(len(src)) != off+size {
		return nil, fmt.Errorf("core: layer blob is %d bytes, counts end at %d", len(src), off+size)
	}
	counts := src[off:]
	var sum uint64
	for k := 0; k < m; k++ {
		c := int32(binary.LittleEndian.Uint32(counts[4*k:]))
		if c < 0 {
			return nil, fmt.Errorf("core: negative cardinality %d for partition %d", c, k)
		}
		sum += uint64(c)
		if sum > n {
			return nil, fmt.Errorf("core: partition cardinalities sum past the %d indexed keys", n)
		}
	}
	return counts, nil
}

// buildLayerV2 assembles the v2 blob from a parsed v1 body. Widening the
// split halves to the fused width is sign extension — always exact — and
// the widths word records the original split widths, so buildLayerV1 can
// reverse this losslessly.
func buildLayerV2(head [8]uint64, p *layerParts) []byte {
	entries := int64(p.m)
	if p.mode == ModeRange {
		entries = 2 * int64(p.m)
	}
	data := entries * int64(p.width)
	out := make([]byte, layerV2DataOff+data+pad8(data)+4*int64(p.m))
	head[1] = layerVersion2
	for i, v := range head {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	word := uint64(p.width)
	if p.mode == ModeRange {
		word |= uint64(p.lo)<<8 | uint64(p.hi)<<16
	}
	binary.LittleEndian.PutUint64(out[8*8:], word)
	body := out[layerV2DataOff:]
	if p.mode == ModeRange {
		for k := 0; k < p.m; k++ {
			putLayerEntry(body, 2*k, p.width, layerEntry(p.loArr, k, p.lo))
			putLayerEntry(body, 2*k+1, p.width, layerEntry(p.hiArr, k, p.hi))
		}
	} else {
		copy(body, p.arr)
	}
	copy(out[layerV2DataOff+data+pad8(data):], p.counts)
	return out
}

// buildLayerV1 assembles the v1 blob from a parsed v2 body, narrowing
// the fused entries back to their recorded split widths. A fused value
// that does not fit its split width means the widths word lied — the
// blob is corrupt, and the transcode fails rather than truncate.
func buildLayerV1(head [8]uint64, p *layerParts) ([]byte, error) {
	m64 := int64(p.m)
	var size int64 = 8*8 + 4*m64
	if p.mode == ModeRange {
		size += (8 + m64*int64(p.lo)) + (8 + m64*int64(p.hi))
	} else {
		size += 8 + m64*int64(p.width)
	}
	out := make([]byte, size)
	head[1] = layerVersion
	for i, v := range head {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	off := int64(8 * 8)
	if p.mode == ModeRange {
		for _, half := range []struct {
			w  uint8
			hi bool
		}{{p.lo, false}, {p.hi, true}} {
			binary.LittleEndian.PutUint64(out[off:], uint64(half.w)*8)
			off += 8
			arr := out[off:]
			for k := 0; k < p.m; k++ {
				idx := 2 * k
				if half.hi {
					idx++
				}
				v := layerEntry(p.fused, idx, p.width)
				if !putLayerEntry(arr, k, half.w, v) {
					return nil, fmt.Errorf("core: fused drift %d does not fit the recorded %d-byte split width", v, half.w)
				}
			}
			off += m64 * int64(half.w)
		}
	} else {
		binary.LittleEndian.PutUint64(out[off:], uint64(p.width)*8)
		off += 8
		copy(out[off:], p.arr)
		off += m64 * int64(p.width)
	}
	copy(out[off:], p.counts)
	return out, nil
}

// layerEntry reads entry k of a packed signed array at the given width,
// sign-extended to int64.
func layerEntry(b []byte, k int, width uint8) int64 {
	switch width {
	case 1:
		return int64(int8(b[k]))
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(b[2*k:])))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(b[4*k:])))
	default:
		return int64(binary.LittleEndian.Uint64(b[8*k:]))
	}
}

// putLayerEntry writes v as entry k of a packed signed array at the given
// width, reporting whether v fits that width.
func putLayerEntry(b []byte, k int, width uint8, v int64) bool {
	switch width {
	case 1:
		if v < math.MinInt8 || v > math.MaxInt8 {
			return false
		}
		b[k] = byte(int8(v))
	case 2:
		if v < math.MinInt16 || v > math.MaxInt16 {
			return false
		}
		binary.LittleEndian.PutUint16(b[2*k:], uint16(int16(v)))
	case 4:
		if v < math.MinInt32 || v > math.MaxInt32 {
			return false
		}
		binary.LittleEndian.PutUint32(b[4*k:], uint32(int32(v)))
	default:
		binary.LittleEndian.PutUint64(b[8*k:], uint64(v))
	}
	return true
}
