package core

import (
	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// AvgError returns the paper's analytic error estimate for the corrected
// index (§3.5, Eq. 8): assuming queries are uniformly sampled from the
// indexed keys, ē = 1/(2N) · Σ_k Ck². A prediction error only remains when
// the model maps multiple keys to the same partition.
func (t *Table[K]) AvgError() float64 {
	if t.n == 0 {
		return 0
	}
	var sum float64
	for _, c := range t.count {
		sum += float64(c) * float64(c)
	}
	return sum / (2 * float64(t.n))
}

// Stats summarises the partition structure of a built layer.
type Stats struct {
	N, M           int
	Mode           Mode
	EntryBits      int     // selected drift entry width (§3.9)
	SizeBytes      int     // layer footprint
	EmptyParts     int     // partitions backfilled with pseudo-values (§3.1)
	MaxCount       int     // largest partition cardinality (§3.6's congestion case)
	AvgErrEq8      float64 // Eq. 8 estimate
	MeanAbsDrift   float64 // model error before correction (mean |N·F−N·Fθ|)
	MaxAbsDrift    int     // worst model drift
	MeanLog2Bounds float64 // mean log2(window) — binary-search iterations for last-mile (§4.2)
}

// ComputeStats reports the summary. Built tables carry it from the build's
// one model sweep (build.go), so this is O(1) after Build/BuildParallel/
// BuildNext; tables without the cache (sampled midpoint builds, Load) scan
// the keys once. The cache is never populated lazily — a Table is immutable
// after build and shared by concurrent readers.
func (t *Table[K]) ComputeStats() Stats {
	if t.stats != nil {
		return *t.stats
	}
	s := Stats{
		N:         t.n,
		M:         t.m,
		Mode:      t.mode,
		EntryBits: t.EntryBits(),
		SizeBytes: t.SizeBytes(),
		AvgErrEq8: t.AvgError(),
	}
	for _, c := range t.count {
		if c == 0 {
			s.EmptyParts++
		}
		if int(c) > s.MaxCount {
			s.MaxCount = int(c)
		}
	}
	if t.n == 0 {
		return s
	}
	var driftSum int64
	firstOcc := 0
	for i, x := range t.keys {
		if i > 0 && x != t.keys[i-1] {
			firstOcc = i
		}
		pred := t.model.Predict(x)
		d := firstOcc - pred
		if d < 0 {
			d = -d
		}
		driftSum += int64(d)
		if d > s.MaxAbsDrift {
			s.MaxAbsDrift = d
		}
	}
	s.MeanAbsDrift = float64(driftSum) / float64(t.n)
	s.MeanLog2Bounds = t.meanLog2Bounds()
	return s
}

// Log2Error implements the index Log2Errer capability: the mean log2 of
// the last-mile search window, i.e. the expected binary-search iteration
// count after correction (§4.2). O(1) on built tables (the build caches
// its stats); O(M) otherwise — never a model sweep.
func (t *Table[K]) Log2Error() float64 {
	if t.stats != nil {
		return t.stats.MeanLog2Bounds
	}
	return t.meanLog2Bounds()
}

// ModelError measures a model's accuracy over its training keys without any
// correction layer: the mean and maximum absolute drift |N·F(x) − N·Fθ(x)|,
// with F using the paper's duplicate semantics (§3.2). This is the paper's
// "error before correction" used by the tuning rules (§4.1).
func ModelError[K kv.Key](keys []K, model cdfmodel.Model[K]) (mean float64, max int) {
	if len(keys) == 0 {
		return 0, 0
	}
	var sum float64
	firstOcc := 0
	for i, x := range keys {
		if i > 0 && x != keys[i-1] {
			firstOcc = i
		}
		d := firstOcc - model.Predict(x)
		if d < 0 {
			d = -d
		}
		sum += float64(d)
		if d > max {
			max = d
		}
	}
	return sum / float64(len(keys)), max
}

// MeasuredError empirically measures the mean absolute distance between the
// position the layer would start its local search at and the true position,
// over the indexed keys — the quantity plotted in Fig. 6 and Fig. 9b. For
// range mode the start point is the window midpoint (the paper's ranged
// estimate, §3.5); for midpoint mode it is the corrected guess itself.
func (t *Table[K]) MeasuredError() float64 {
	if t.n == 0 {
		return 0
	}
	var sum float64
	firstOcc := 0
	for i, x := range t.keys {
		if i > 0 && x != t.keys[i-1] {
			firstOcc = i
		}
		lo, hi := t.Window(x)
		start := (lo + hi) / 2
		d := firstOcc - start
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(t.n)
}

// DriftSeries returns, for every indexed key, the absolute model error
// before correction and after correction — the two series of Fig. 6b. The
// slices are indexed by key position.
func DriftSeries[K kv.Key](t *Table[K]) (before, after []int) {
	before = make([]int, t.n)
	after = make([]int, t.n)
	firstOcc := 0
	for i, x := range t.keys {
		if i > 0 && x != t.keys[i-1] {
			firstOcc = i
		}
		pred := t.model.Predict(x)
		b := firstOcc - pred
		if b < 0 {
			b = -b
		}
		before[i] = b
		lo, hi := t.Window(x)
		a := firstOcc - (lo+hi)/2
		if a < 0 {
			a = -a
		}
		after[i] = a
	}
	return before, after
}
