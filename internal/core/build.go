package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// This file is the build pipeline (DESIGN.md §8). Construction is the
// paper's Alg. 2 — one pass over the keys accumulating per-partition
// statistics, one backward pass over the layer deriving drift bounds and
// backfilling empty partitions (§3.1) — restructured so the expensive part
// scales with cores and the transient memory is reusable:
//
//  1. Model predictions are the dominant cost of pass 1 and are a pure map
//     over the keys, so parallel builds compute them into a pre-sized
//     prediction arena with one worker per key range.
//  2. Once predictions are fixed, the per-partition accumulation is
//     independent per partition. With a monotone model (§3.8) predictions
//     are non-decreasing over the sorted keys, so each partition's keys are
//     one contiguous range: shard the key range on partition starts and
//     every worker owns a disjoint span of partitions, writing min/end/sum
//     directly into the single shared accumulator arena — no per-worker
//     copies, no merge. (Non-monotone models keep the parallel prediction
//     stage and accumulate serially; duplicate runs never straddle shards
//     because equal keys share a prediction and hence a partition.)
//  3. Pass 2 derives the drift bounds in place over the same arena,
//     tracking the value magnitudes as it goes, so the packed entry width
//     (§3.9) needs no extra reduction pass; range mode packs straight into
//     the fused interleaved <lo, hi> layout the query paths dispatch on.
//
// The one model sweep also feeds the layer statistics: mean/max model
// drift fall out of pass 1 (as exact integer sums, so the parallel build
// is bit-identical to the serial one), the mean log2 window falls out of
// pass 2's per-partition widths, and the finished table carries the Stats
// so ComputeStats and Log2Error need no second sweep.
//
// Every entry point produces tables bit-identical to every other — widths,
// drifts, counts and stats — property-tested in parallel_test.go and
// fuzzed in fuzz_test.go.

// parallelBuildMin is the key count below which sharding is not worth the
// goroutine fan-out and builds stay serial.
const parallelBuildMin = 4096

// buildArena holds the transient arrays of one build: the prediction arena
// of stage 1 and the per-partition accumulators that pass 2 then rewrites
// in place into drift bounds. Arenas carry no results — everything
// retained by the finished table is freshly allocated at its packed width
// — so BuildNext can recycle them through Table.buildPool and steady-state
// compaction allocates only the packed product.
type buildArena struct {
	pred   []int32 // stage 1: per-key model predictions (parallel builds)
	minPos []int64 // pass 1: first run position per partition; pass 2: lo drift
	endPos []int64 // pass 1: last position per partition; pass 2: hi drift
	sum    []int64 // pass 1: Σ drift per partition (midpoint mode only)
}

// slices grows the arena to the build's sizes and returns the views.
func (a *buildArena) slices(n, m int, needPred, needSum bool) (pred []int32, minPos, endPos, sumW []int64) {
	if needPred {
		if cap(a.pred) < n {
			a.pred = make([]int32, n)
		}
		pred = a.pred[:n]
	}
	if cap(a.minPos) < m {
		a.minPos = make([]int64, m)
	}
	minPos = a.minPos[:m]
	if cap(a.endPos) < m {
		a.endPos = make([]int64, m)
	}
	endPos = a.endPos[:m]
	if needSum {
		if cap(a.sum) < m {
			a.sum = make([]int64, m)
		}
		sumW = a.sum[:m]
	}
	return
}

// Build constructs a Shift-Table over sorted keys corrected against the
// given model (Alg. 2 plus the empty-partition backfill of §3.1). Build is
// O(N · cost(Fθ) + M), a single pass over the data and a single backward
// pass over the layer (§3.3).
func Build[K kv.Key](keys []K, model cdfmodel.Model[K], cfg Config) (*Table[K], error) {
	return buildPipeline(keys, model, cfg, 1, nil)
}

// BuildParallel is Build with pass 1 sharded across workers — the §3.3
// optimisation ("in case that running the model is expensive, model
// executions can be parallelized for faster execution"), extended so the
// per-partition accumulation parallelises too (see the pipeline comment at
// the top of this file). workers <= 0 uses GOMAXPROCS. The result is
// bit-identical to Build.
//
// Midpoint sampling (Config.SampleStride) depends on global key indices,
// so sampled builds take the serial path.
func BuildParallel[K kv.Key](keys []K, model cdfmodel.Model[K], cfg Config, workers int) (*Table[K], error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return buildPipeline(keys, model, cfg, workers, nil)
}

// BuildNext builds a successor table — same pipeline as BuildParallel
// (workers <= 0 uses GOMAXPROCS) — drawing the build arena from prev's
// pool and handing both of prev's pools (batch scratches and build arenas)
// to the new table. Rebuild chains — compaction under internal/updatable
// and internal/concurrent — therefore re-allocate neither query scratch
// nor build scratch in steady state. A nil prev degenerates to
// BuildParallel.
func (prev *Table[K]) BuildNext(keys []K, model cdfmodel.Model[K], cfg Config, workers int) (*Table[K], error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var pool *sync.Pool
	if prev != nil {
		pool = prev.buildPool
	}
	t, err := buildPipeline(keys, model, cfg, workers, pool)
	if t != nil {
		t.AdoptScratch(prev)
	}
	return t, err
}

// buildPipeline is the shared implementation behind Build, BuildParallel
// and BuildNext. pool, when non-nil, supplies (and gets back) the build
// arena.
func buildPipeline[K kv.Key](keys []K, model cdfmodel.Model[K], cfg Config, workers int, pool *sync.Pool) (*Table[K], error) {
	n := len(keys)
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("core: keys are not sorted")
	}
	m := cfg.M
	if m == 0 {
		m = n
	}
	if m < 1 || n == 0 {
		if n == 0 {
			return &Table[K]{keys: keys, model: model, mode: cfg.Mode, monotone: model.Monotone(),
				scratch: new(sync.Pool), buildPool: new(sync.Pool)}, nil
		}
		return nil, fmt.Errorf("core: invalid layer size M=%d", cfg.M)
	}
	if cfg.SampleStride < 0 {
		return nil, fmt.Errorf("core: negative sample stride %d", cfg.SampleStride)
	}
	if cfg.Mode != ModeRange && cfg.Mode != ModeMidpoint {
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}

	t := &Table[K]{
		keys:      keys,
		model:     model,
		mode:      cfg.Mode,
		monotone:  model.Monotone(),
		n:         n,
		m:         m,
		scratch:   new(sync.Pool),
		buildPool: new(sync.Pool),
	}

	stride := 1
	if cfg.Mode == ModeMidpoint && cfg.SampleStride > 1 {
		stride = cfg.SampleStride
	}
	// Sampled builds depend on global key indices; the int32 prediction
	// arena bounds n (far beyond any in-memory dataset here).
	if stride > 1 || n < parallelBuildMin || n > math.MaxInt32 {
		workers = 1
	}

	var ar *buildArena
	if pool != nil {
		ar, _ = pool.Get().(*buildArena)
	}
	if ar == nil {
		ar = new(buildArena)
	}
	needSum := cfg.Mode == ModeMidpoint
	pred, minPos, endPos, sumW := ar.slices(n, m, workers > 1, needSum)
	cnt := make([]int32, m) // retained by the table; not arena-backed

	// Pass 1 (Alg. 2 lines 3–9): accumulate per-partition statistics. With
	// a monotone model the keys of one partition form a contiguous run of
	// positions [minPos, endPos]; the drift bounds derive from that run in
	// pass 2. driftSum/maxDrift are the §4.1 "error before correction"
	// statistics, accumulated as exact integers so every build schedule
	// sums to the same value.
	var driftSum, maxDrift int64
	if workers > 1 {
		driftSum, maxDrift = t.passOneParallel(pred, minPos, endPos, sumW, cnt, workers)
	} else {
		driftSum, maxDrift = t.passOneSerial(stride, minPos, endPos, sumW, cnt)
	}

	// Pass 2: derive per-partition drift bounds in place — minPos becomes
	// the lo drift, endPos the hi drift — and backfill empty partitions
	// with pseudo-values pointing at the first key of the next non-empty
	// partition (§3.1 — the paper's Alg. 2 pseudo-code reads from k−1,
	// contradicting the text; we implement the text, see DESIGN.md §4).
	//
	// For a query q in partition k, monotonicity gives: keys of partitions
	// < k are < q and keys of partitions > k are > q, so the answer lies in
	// [minPos[k], endPos[k]+1]. The query's own prediction p can be any
	// value in the partition's feasible range [pmin, pmax] (Eq. 5–6
	// generalised to M<N), so the stored relative bounds must cover the
	// absolute window from every such p:
	//
	//	lo[k] = minPos[k] − pmax,  hi[k] = endPos[k] − pmin.
	//
	// With M = N, pmin = pmax = k and these reduce exactly to the paper's
	// Δk = minPos−k and window length Ck (Alg. 2). Value magnitudes are
	// tracked as the bounds are produced, so packing needs no extra
	// reduction pass over the layer.
	loW, hiW := minPos, endPos
	var maxLo, maxHi int64
	nextFirst := int64(n) // first position of the nearest non-empty partition to the right
	for k := m - 1; k >= 0; k-- {
		pmin, pmax := t.predRange(k)
		if cnt[k] > 0 {
			first := minPos[k]
			loW[k] = first - pmax
			hiW[k] = endPos[k] - pmin
			nextFirst = first
		} else {
			// Empty partition: any query landing here resolves exactly to
			// position nextFirst; encode a window whose just-after slot is
			// nextFirst for every feasible prediction. cnt stays 0: these
			// are pseudo-entries (§3.1), not real keys.
			loW[k] = nextFirst - pmax
			hiW[k] = nextFirst - 1 - pmin
			if needSum {
				sumW[k] = nextFirst - (pmin+pmax)/2 // midpoint aim
			}
		}
		v := loW[k]
		if v < 0 {
			v = -v
		}
		if v > maxLo {
			maxLo = v
		}
		if v = hiW[k]; v < 0 {
			v = -v
		}
		if v > maxHi {
			maxHi = v
		}
	}

	t.count = cnt
	switch cfg.Mode {
	case ModeRange:
		// One interleaved array at the common width (the fused query
		// layout); the independent split widths are kept for the
		// serialization format and the §3.9 width report.
		wl, wh := driftWidth(maxLo), driftWidth(maxHi)
		w := wl
		if wh > w {
			w = wh
		}
		t.pairs = packPairs(loW, hiW, w)
		t.loBits, t.hiBits = wl, wh
	case ModeMidpoint:
		var maxMid int64
		for k := 0; k < m; k++ {
			v := sumW[k]
			if cnt[k] > 0 {
				// Rounded mean drift (Eq. 7). Round half away from zero:
				// the paper's Table 1 worked example yields Δ̄=−40 from a
				// mean of −40.2, i.e. not floor.
				v = roundHalfAway(float64(v) / float64(cnt[k]))
			}
			sumW[k] = v
			if v < 0 {
				v = -v
			}
			if v > maxMid {
				maxMid = v
			}
		}
		t.shift = packDriftsWidth(sumW, driftWidth(maxMid))
	}

	if stride == 1 {
		t.stats = t.buildStats(driftSum, maxDrift)
	}
	if pool != nil {
		pool.Put(ar)
	}
	return t, nil
}

// passOneSerial is the single-goroutine pass 1: one model sweep over the
// keys accumulating per-partition statistics and the drift stats.
func (t *Table[K]) passOneSerial(stride int, minPos, endPos, sumW []int64, cnt []int32) (driftSum, maxDrift int64) {
	for k := range minPos {
		minPos[k] = math.MaxInt64
		endPos[k] = math.MinInt64
	}
	for k := range sumW {
		sumW[k] = 0
	}
	keys := t.keys
	firstOcc := 0 // position of the first key in the current duplicate run (§3.2)
	for i := 0; i < t.n; i++ {
		if i > 0 && keys[i] != keys[i-1] {
			firstOcc = i
		}
		if stride > 1 && i%stride != 0 {
			continue
		}
		pred := t.model.Predict(keys[i])
		k := t.partitionOf(pred)
		d := int64(firstOcc) - int64(pred)
		if sumW != nil {
			sumW[k] += d
		}
		cnt[k]++
		if int64(firstOcc) < minPos[k] {
			minPos[k] = int64(firstOcc)
		}
		if int64(i) > endPos[k] {
			endPos[k] = int64(i)
		}
		if d < 0 {
			d = -d
		}
		driftSum += d
		if d > maxDrift {
			maxDrift = d
		}
	}
	return driftSum, maxDrift
}

// shardStat is one worker's drift-stat partial, padded so adjacent workers
// do not share a cache line while accumulating.
type shardStat struct {
	driftSum, maxDrift int64
	_                  [6]int64
}

// passOneParallel is the sharded pass 1. Stage A computes every prediction
// into the arena with one worker per key range. Stage B accumulates: with
// a verified-monotone prediction array each worker owns a disjoint span of
// partitions (shards cut on partition starts) and writes straight into the
// shared accumulators; otherwise accumulation falls back to one goroutine
// over the precomputed predictions — the model sweep, the expensive part,
// stays parallel either way.
func (t *Table[K]) passOneParallel(pred []int32, minPos, endPos, sumW []int64, cnt []int32, workers int) (driftSum, maxDrift int64) {
	n, keys := t.n, t.keys

	// Stage A: predict in parallel. Monotone models must produce
	// non-decreasing predictions over sorted keys; verify while writing
	// (cheap ALU against an in-register neighbour) so a model mis-declaring
	// Monotone degrades to the serial accumulate instead of racing.
	var nonMonotone atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			prev := int32(math.MinInt32)
			for i := lo; i < hi; i++ {
				p := int32(t.model.Predict(keys[i]))
				pred[i] = p
				if p < prev {
					nonMonotone.Store(true)
				}
				prev = p
			}
		}(lo, hi)
	}
	wg.Wait()
	ordered := t.monotone && !nonMonotone.Load()
	if ordered {
		// Seam check: stage A only verified within each worker's range.
		for w := 1; w < workers; w++ {
			if at := n * w / workers; at > 0 && at < n && pred[at] < pred[at-1] {
				ordered = false
				break
			}
		}
	}

	if !ordered {
		// Non-monotone model (§3.8): partitions are not contiguous key
		// ranges; accumulate on one goroutine over the precomputed
		// predictions (identical arithmetic to the serial pass).
		for k := range minPos {
			minPos[k] = math.MaxInt64
			endPos[k] = math.MinInt64
		}
		for k := range sumW {
			sumW[k] = 0
		}
		return t.accumulatePred(pred, 0, n, minPos, endPos, sumW, cnt)
	}

	// Stage B: shard boundaries advanced to partition starts. A partition
	// start implies a new key value (equal keys share a prediction), so
	// §3.2 first-occurrence tracking restarts cleanly at every boundary,
	// and since predictions are non-decreasing each worker's partition
	// span is disjoint from every other's — direct writes, no merge.
	bounds := make([]int, 1, workers+1)
	for w := 1; w < workers; w++ {
		at := n * w / workers
		for at > 0 && at < n && t.partitionOf(int(pred[at])) == t.partitionOf(int(pred[at-1])) {
			at++
		}
		if at > bounds[len(bounds)-1] && at < n {
			bounds = append(bounds, at)
		}
	}
	bounds = append(bounds, n)

	stats := make([]shardStat, len(bounds)-1)
	for s := 0; s < len(bounds)-1; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := bounds[s], bounds[s+1]
			// This worker's partition span; gaps between spans are
			// partitions no key maps to, left untouched (pass 2 reads
			// their accumulators only when cnt > 0).
			pLo := t.partitionOf(int(pred[lo]))
			pHi := t.partitionOf(int(pred[hi-1])) + 1
			for k := pLo; k < pHi; k++ {
				minPos[k] = math.MaxInt64
				endPos[k] = math.MinInt64
			}
			if sumW != nil {
				for k := pLo; k < pHi; k++ {
					sumW[k] = 0
				}
			}
			ds, md := t.accumulatePred(pred, lo, hi, minPos, endPos, sumW, cnt)
			stats[s] = shardStat{driftSum: ds, maxDrift: md}
		}(s)
	}
	wg.Wait()
	for _, st := range stats { // integer merge: associative, bit-identical
		driftSum += st.driftSum
		if st.maxDrift > maxDrift {
			maxDrift = st.maxDrift
		}
	}
	return driftSum, maxDrift
}

// accumulatePred is the pass 1 accumulation body over keys[lo:hi) with
// predictions read from the arena — shared by the stage B workers (each
// over its shard) and the non-monotone fallback (one call over the whole
// range). lo must be a §3.2 duplicate-run start; the caller has
// initialised the accumulators for every partition the range can touch.
// The arithmetic mirrors passOneSerial exactly (bit-identity depends on
// it); only the prediction source differs.
func (t *Table[K]) accumulatePred(pred []int32, lo, hi int, minPos, endPos, sumW []int64, cnt []int32) (driftSum, maxDrift int64) {
	keys := t.keys
	firstOcc := lo
	for i := lo; i < hi; i++ {
		if i > lo && keys[i] != keys[i-1] {
			firstOcc = i
		}
		p := int(pred[i])
		k := t.partitionOf(p)
		d := int64(firstOcc) - int64(p)
		if sumW != nil {
			sumW[k] += d
		}
		cnt[k]++
		if int64(firstOcc) < minPos[k] {
			minPos[k] = int64(firstOcc)
		}
		if int64(i) > endPos[k] {
			endPos[k] = int64(i)
		}
		if d < 0 {
			d = -d
		}
		driftSum += d
		if d > maxDrift {
			maxDrift = d
		}
	}
	return driftSum, maxDrift
}

// buildStats assembles the Stats summary from quantities the build already
// produced: the pass 1 drift totals and the pass 2 window widths. The mean
// log2 window is grouped by partition (each key of partition k searches a
// window of hi[k]−lo[k]+1 slots regardless of its own prediction), which is
// also how the slow path in stats.go computes it.
func (t *Table[K]) buildStats(driftSum, maxDrift int64) *Stats {
	s := Stats{
		N:         t.n,
		M:         t.m,
		Mode:      t.mode,
		EntryBits: t.EntryBits(),
		SizeBytes: t.SizeBytes(),
		AvgErrEq8: t.AvgError(),
	}
	for _, c := range t.count {
		if c == 0 {
			s.EmptyParts++
		}
		if int(c) > s.MaxCount {
			s.MaxCount = int(c)
		}
	}
	if t.n == 0 {
		return &s
	}
	s.MeanAbsDrift = float64(driftSum) / float64(t.n)
	s.MaxAbsDrift = int(maxDrift)
	s.MeanLog2Bounds = t.meanLog2Bounds()
	return &s
}

// meanLog2Bounds computes the expected binary-search iteration count after
// correction (§4.2) from the per-partition window widths — O(M), no model
// sweep. Midpoint windows are degenerate ([s, s], width 1), contributing 0.
func (t *Table[K]) meanLog2Bounds() float64 {
	if t.n == 0 || t.mode != ModeRange {
		return 0
	}
	var log2Sum float64
	for k := 0; k < t.m; k++ {
		if t.count[k] == 0 {
			continue
		}
		lo, hi := t.pairs.pair(k)
		w := hi - lo + 1
		if w < 1 {
			w = 1
		}
		log2Sum += float64(t.count[k]) * math.Log2(float64(w))
	}
	return log2Sum / float64(t.n)
}
