package core

import (
	"math"
	"testing"

	"repro/internal/cdfmodel"
	"repro/internal/dataset"
)

// analyticL is a stand-in latency function shaped like the paper's Fig. 2a
// measurement: a DRAM-latency floor plus a log term for binary local search.
func analyticL(s int) float64 {
	if s <= 1 {
		return 36 // the paper's measured LLC miss penalty
	}
	return 36 + 20*math.Log2(float64(s))
}

func TestEstimateWithAndWithout(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 64, 20000, 3)
	model := cdfmodel.NewInterpolation(keys)
	tab, err := Build(keys, model, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	const modelNs, layerNs = 10, 40
	with := tab.EstimateWith(modelNs, layerNs, analyticL)
	without := tab.EstimateWithout(modelNs, analyticL)

	if with.TotalNs != with.ModelNs+with.LayerNs+with.SearchNs {
		t.Error("EstimateWith total must be the sum of its parts")
	}
	if without.LayerNs != 0 {
		t.Error("EstimateWithout must not charge the layer lookup")
	}
	// On face data the dumb model's drift is huge; Eq. 9 vs Eq. 10 must
	// show the correction paying off decisively (the premise of Table 2).
	if with.TotalNs >= without.TotalNs {
		t.Errorf("cost model says Shift-Table does not pay off on face: with=%.0f without=%.0f",
			with.TotalNs, without.TotalNs)
	}
}

func TestEstimateOnPerfectModel(t *testing.T) {
	// uden + IM: near-zero error. Eq. 10 (model alone) must beat Eq. 9
	// (which charges the 40 ns layer lookup) — the paper's reason for
	// disabling the layer on uden (§4.1, Table 2).
	keys := dataset.MustGenerate(dataset.UDen, 64, 20000, 3)
	tab, err := Build(keys, cdfmodel.NewInterpolation(keys), Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	with := tab.EstimateWith(10, 40, analyticL)
	without := tab.EstimateWithout(10, analyticL)
	if without.TotalNs >= with.TotalNs {
		t.Errorf("on uden the bare model must win: with=%.0f without=%.0f", with.TotalNs, without.TotalNs)
	}
}

func TestEstimateEmptyTable(t *testing.T) {
	tab, err := Build(nil, cdfmodel.NewInterpolation[uint64](nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.EstimateWith(5, 40, analyticL); got.SearchNs != 0 || got.TotalNs != 45 {
		t.Errorf("empty EstimateWith = %+v", got)
	}
	if got := tab.EstimateWithout(5, analyticL); got.TotalNs != 5 {
		t.Errorf("empty EstimateWithout = %+v", got)
	}
}

func TestAdviseRules(t *testing.T) {
	cases := []struct {
		before, after float64
		want          bool
	}{
		{5, 0.1, false},    // rule 1: error already < 10
		{9.99, 0.1, false}, // rule 1 boundary
		{1000, 500, false}, // rule 2: < 10x improvement
		{1000, 101, false}, // rule 2 boundary (9.9x)
		{1000, 100, true},  // exactly 10x improvement
		{1000, 1, true},
		{1e7, 2, true}, // the face-like case
	}
	for _, c := range cases {
		a := Advise(c.before, c.after)
		if a.UseShiftTable != c.want {
			t.Errorf("Advise(%.2f, %.2f) = %v (%s), want %v", c.before, c.after, a.UseShiftTable, a.Reason, c.want)
		}
		if a.Reason == "" {
			t.Error("advice must carry a reason")
		}
	}
}

func TestAdviseTableEndToEnd(t *testing.T) {
	// face: dumb model, huge error, big reduction → enable (the headline
	// result of Table 2). uden: near-perfect model → disable.
	face := dataset.MustGenerate(dataset.Face, 64, 20000, 3)
	tab, _ := Build(face, cdfmodel.NewInterpolation(face), Config{Mode: ModeRange})
	if a := tab.Advise(); !a.UseShiftTable {
		t.Errorf("face advice should enable Shift-Table: %+v", a)
	}
	uden := dataset.MustGenerate(dataset.UDen, 64, 20000, 3)
	tab, _ = Build(uden, cdfmodel.NewInterpolation(uden), Config{Mode: ModeRange})
	if a := tab.Advise(); a.UseShiftTable {
		t.Errorf("uden advice should disable Shift-Table: %+v", a)
	}
}
