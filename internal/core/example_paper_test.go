package core

// This file pins the paper's two fully-worked examples:
//
//   - Fig. 5: a 100-key index in [0, 999] with the model Fθ(x) = x/1000
//     (prediction [x/10]) and a full-size (M = N) range-mode layer.
//   - Table 1: the same index with a compact M = 30 midpoint layer.
//
// The paper shows only a fragment of the key array; the dataset below is
// constructed to agree with every shown position: keys 0,1,2,3 at indexes
// 0-3, key 5 at index 4, keys 752,769,770,771,782,785,820,830 at indexes
// 34-41, and key 999 at index 99 (filler regions are chosen to keep the
// shown partitions' contents exact).

import (
	"testing"

	"repro/internal/kv"
)

// paperModel is the paper's worked-example model Fθ(x) = x/1000 over
// N = 100 records: prediction [N·Fθ(x)] = [x/10].
type paperModel struct{ n int }

func (m paperModel) Predict(k uint64) int {
	p := int(k / 10)
	if p >= m.n {
		p = m.n - 1
	}
	return p
}
func (m paperModel) Monotone() bool { return true }
func (m paperModel) SizeBytes() int { return 8 }
func (m paperModel) Name() string   { return "paper-x/1000" }

// paperKeys builds the 100-key dataset of Fig. 5 / Table 1.
func paperKeys() []uint64 {
	keys := make([]uint64, 100)
	// Indexes 0-4: the figure's leading records 0,1,2,3,5.
	copy(keys, []uint64{0, 1, 2, 3, 5})
	// Indexes 5-33: filler strictly between 5 and 752, spaced so that
	// partitions 1 ([10,19]) and 77 ([770,779]) keep the paper's contents.
	// 29 keys: 21, 42, 63, ... (step 21) reach 630 < 734.
	for i := 5; i < 34; i++ {
		keys[i] = uint64(21 * (i - 4))
	}
	// Indexes 34-41: the records shown in Table 1.
	copy(keys[34:], []uint64{752, 769, 770, 771, 782, 785, 820, 830})
	// Indexes 42-99: filler in (830, 999], ending exactly at 999. Start at
	// 840 so no filler key predicts into partition 24 (preds 80-83), whose
	// contents Table 1 fixes as {820, 830}.
	for i := 42; i < 100; i++ {
		keys[i] = uint64(840 + 2*(i-42))
	}
	keys[99] = 999
	return keys
}

func TestPaperFig5RangeLayer(t *testing.T) {
	keys := paperKeys()
	if !kv.IsSorted(keys) {
		t.Fatal("paper dataset must be sorted")
	}
	tab, err := Build(keys, paperModel{100}, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5: prediction for query 771 is k = 77 with correction
	// Δ77 = −41, C77 = 2, so local search covers indexes [36, 37].
	if lo, hi := tab.Window(771); lo != 36 || hi != 37 {
		t.Errorf("Window(771) = [%d,%d], want [36,37] (paper Fig. 5)", lo, hi)
	}
	if got := tab.Find(771); got != 37 {
		t.Errorf("Find(771) = %d, want 37", got)
	}
	if got := tab.Find(782); got != 38 {
		t.Errorf("Find(782) = %d, want 38", got)
	}
	// §3.1: queries 778 and 781 are non-indexed and straddle partition
	// boundaries; both must resolve to index 38 (the record 782).
	if got := tab.Find(778); got != 38 {
		t.Errorf("Find(778) = %d, want 38 (just-after-window case)", got)
	}
	if got := tab.Find(781); got != 38 {
		t.Errorf("Find(781) = %d, want 38", got)
	}
}

func TestPaperFig5EmptyPartition(t *testing.T) {
	keys := paperKeys()
	tab, err := Build(keys, paperModel{100}, Config{Mode: ModeRange})
	if err != nil {
		t.Fatal(err)
	}
	// §3.1: query 15 predicts partition 1, which is empty (no key lies in
	// [10, 19]); the result must be the first record of the next non-empty
	// partition — key 21 at index 1 of our filler (the paper's dataset
	// fragment differs here, but the semantics are identical).
	if got := tab.Find(15); got != kv.LowerBound(keys, 15) {
		t.Errorf("Find(15) = %d, want %d via empty-partition backfill", got, kv.LowerBound(keys, 15))
	}
	// Every query in the empty partition's key range resolves correctly.
	for q := uint64(10); q <= 19; q++ {
		if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
			t.Errorf("Find(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestPaperTable1CompactLayer(t *testing.T) {
	keys := paperKeys()
	tab, err := Build(keys, paperModel{100}, Config{Mode: ModeMidpoint, M: 30})
	if err != nil {
		t.Fatal(err)
	}
	if tab.M() != 30 {
		t.Fatalf("M = %d, want 30", tab.M())
	}
	// Table 1's partition mapping uses [0.03x] on raw keys; our layer
	// derives partitions from the quantised prediction ([pred·M/N], see
	// partitionOf), which assigns key 769 (pred 76) to partition 22 rather
	// than the paper's 23. Every other shown key agrees, and 769's
	// corrected prediction becomes exact (error 0) instead of the paper's
	// error 1.
	wantCorrected := map[uint64]int{
		752: 34, // paper: 34, error 0
		769: 35, // paper: 36, error 1 — see note above
		770: 37, // paper: 37
		771: 37, // paper: 37
		782: 38, // paper: 38
		785: 38, // paper: 38
		820: 40, // paper: 40
		830: 41, // paper: 41
	}
	for q, want := range wantCorrected {
		lo, _ := tab.Window(q)
		if lo != want {
			t.Errorf("corrected prediction for %d = %d, want %d (paper Table 1)", q, lo, want)
		}
	}
	// The midpoint shifts for the three shown partitions: Δ̄22 = −41,
	// Δ̄23 = −40, Δ̄24 = −42 (Table 1; partition 22's content differs by
	// the quantisation note above but its mean is unchanged at −41).
	for _, c := range []struct{ part, want int }{{22, -41}, {23, -40}, {24, -42}} {
		if got := tab.shift.get(c.part); got != c.want {
			t.Errorf("midpoint shift of partition %d = %d, want %d", c.part, got, c.want)
		}
	}
	// Regardless of the exact shifts, lookups are exact.
	for q := range wantCorrected {
		if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
			t.Errorf("Find(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestPaperFig5AllQueriesCorrect(t *testing.T) {
	keys := paperKeys()
	for _, cfg := range []Config{
		{Mode: ModeRange},
		{Mode: ModeRange, M: 30},
		{Mode: ModeMidpoint},
		{Mode: ModeMidpoint, M: 30},
	} {
		tab, err := Build(keys, paperModel{100}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for q := uint64(0); q <= 1005; q++ {
			if got, want := tab.Find(q), kv.LowerBound(keys, q); got != want {
				t.Fatalf("cfg %v/%d: Find(%d) = %d, want %d", cfg.Mode, cfg.M, q, got, want)
			}
		}
	}
}
