package core_test

import (
	"fmt"

	"repro/internal/cdfmodel"
	"repro/internal/core"
)

// ExampleBuild shows the paper's minimal configuration: the dummy IM model
// corrected by a full-size range-mode Shift-Table.
func ExampleBuild() {
	keys := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	table, err := core.Build(keys, cdfmodel.NewInterpolation(keys), core.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println(table.Find(7))  // indexed key
	fmt.Println(table.Find(8))  // lower bound of a non-indexed key
	fmt.Println(table.Find(99)) // past the end
	// Output:
	// 3
	// 4
	// 10
}

// ExampleTable_FindRange shows a range query A <= key <= B.
func ExampleTable_FindRange() {
	keys := []uint64{10, 20, 20, 30, 40, 50}
	table, _ := core.Build(keys, cdfmodel.NewInterpolation(keys), core.Config{})
	first, last := table.FindRange(15, 35)
	fmt.Println(keys[first:last])
	// Output:
	// [20 20 30]
}

// ExampleAdvise shows the §4.1 tuning rules.
func ExampleAdvise() {
	fmt.Println(core.Advise(5, 1).UseShiftTable)    // model already accurate
	fmt.Println(core.Advise(1000, 2).UseShiftTable) // big reduction: enable
	// Output:
	// false
	// true
}
