package core

import (
	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/search"
)

// TraceFind is the instrumented twin of Find: identical semantics, but it
// reports every memory access — the Shift-Table entry lookup and each key
// touched by the local search — through the touch callback. The memsim
// experiments feed these traces to the cache simulator to reproduce the
// paper's cache-miss measurements (Fig. 2b, Fig. 8). Model-parameter
// accesses are not traced here; the models are cache-resident by design
// (IM is two registers) and the caller accounts for larger models
// separately.
func (t *Table[K]) TraceFind(q K, touch search.Touch) int {
	if t.n == 0 {
		return 0
	}
	pred := t.model.Predict(q)
	k := t.partitionOf(pred)
	switch t.mode {
	case ModeRange:
		// One lookup into the mapping array (§3: "the correction can be
		// done using a single lookup into the array of pairs"). With the
		// fused layout the <lo, hi> entries really are adjacent: one touch
		// of 2·width bytes, one cache line — the split layout's second
		// array access (and its potential second miss) is gone.
		t.touchPair(k, touch)
		dlo, dhi := t.pairs.pair(k)
		lo := pred + dlo
		hi := pred + dhi
		r := search.WindowTraced(t.keys, lo, hi, q, touch)
		if t.monotone {
			return r
		}
		if t.valid(r, q) {
			return r
		}
		return search.ExponentialTraced(t.keys, (lo+hi)/2, q, touch)
	default:
		t.touchEntry(&t.shift, k, touch)
		start := pred + t.shift.get(k)
		return search.ExponentialTraced(t.keys, start, q, touch)
	}
}

// touchEntry reports the address of drift entry k at its packed width.
func (t *Table[K]) touchEntry(d *driftArray, k int, touch search.Touch) {
	switch d.width {
	case 1:
		touch(kv.Addr(d.w8, k), 1)
	case 2:
		touch(kv.Addr(d.w16, k), 2)
	case 4:
		touch(kv.Addr(d.w32, k), 4)
	case 8:
		touch(kv.Addr(d.w64, k), 8)
	}
}

// touchPair reports the fused <lo, hi> entry of partition k as one access
// of 2·width bytes (the pair is contiguous by construction).
func (t *Table[K]) touchPair(k int, touch search.Touch) {
	d := &t.pairs
	switch d.width {
	case 1:
		touch(kv.Addr(d.w8, 2*k), 2)
	case 2:
		touch(kv.Addr(d.w16, 2*k), 4)
	case 4:
		touch(kv.Addr(d.w32, 2*k), 8)
	case 8:
		touch(kv.Addr(d.w64, 2*k), 16)
	}
}

// TraceModelFind is the instrumented twin of ModelFind (model-only lookup,
// no correction layer).
func TraceModelFind[K kv.Key](keys []K, model cdfmodel.Model[K], q K, touch search.Touch) int {
	if len(keys) == 0 {
		return 0
	}
	return search.ExponentialTraced(keys, model.Predict(q), q, touch)
}
