package core

import (
	"runtime"
	"sync"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/search"
)

// This file is the batched query engine. The scalar Find pays, per query, a
// virtual Model.Predict call, a width dispatch into the drift arrays, and a
// fully serialized chain of dependent cache misses (layer entry, then each
// probe of the local search). Batching restructures the same work as a
// staged pipeline over a chunk of queries:
//
//  1. predict the whole chunk in one PredictBatch call (the interface
//     dispatch is hoisted to once per chunk and the model parameters stay
//     in registers across the loop);
//  2. gather the drift entries with one typed loop per packed width (the
//     width switch runs once per chunk, and the gather loads are
//     independent, so their misses overlap);
//  3. probe the key array in an interleaved order — every round issues one
//     independent load per unfinished lane before any comparison consumes
//     one — so the memory-level parallelism of the machine hides the
//     latency the scalar path pays serially.
//
// This is the group-prefetching scheme of the in-memory-index literature
// (SOSD-style batched harnesses; AMAC/group prefetch for hash and tree
// probes), expressed in portable Go: instead of prefetch intrinsics, the
// touch pass loads the target cache line into a scratch slot that the
// finishing pass then consumes.
//
// Every batch entry point returns results bit-identical to its scalar
// twin; the property tests in batch_test.go enforce this on every mode and
// configuration.

// batchChunk is the number of queries staged per pipeline pass. Chosen so
// the per-lane state (prediction, partition, window bounds, probe slot)
// fits comfortably in L1 while still giving the memory system far more
// independent misses than it can service concurrently.
const batchChunk = 256

// batchScratch is the per-chunk lane state (~13 KiB). It is pooled on the
// Table (Table.scratch) so steady-state batches allocate nothing; every
// slot is written before it is read within a chunk, so a recycled scratch
// needs no zeroing. Each concurrent FindBatch (e.g. the shards of
// FindBatchParallel) gets its own instance from the pool.
type batchScratch[K kv.Key] struct {
	pred  [batchChunk]int   // stage 1: model predictions
	wlo   [batchChunk]int   // stage 2/3: window start, then binary-search lo
	wend  [batchChunk]int   // stage 2/3: window end (half-open), then hi
	mid   [batchChunk]int   // stage 3: probe position per round
	probe [batchChunk]K     // stage 3: touched key per lane
	lanes [batchChunk]int32 // stage 3: unfinished-lane worklist
}

// ensureInts returns out if it can hold n results, a fresh slice otherwise.
func ensureInts(out []int, n int) []int {
	if cap(out) >= n {
		return out[:n]
	}
	return make([]int, n)
}

// FindBatch answers lower-bound queries for every element of qs, writing
// result i into out[i]. It returns the result slice (out when it has
// capacity, a fresh slice otherwise). Results are bit-identical to calling
// Find on each query; only the schedule differs — see the pipeline
// description at the top of this file.
//
//shift:lockfree
func (t *Table[K]) FindBatch(qs []K, out []int) []int {
	out = ensureInts(out, len(qs))
	if t.n == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	st, _ := t.scratch.Get().(*batchScratch[K])
	if st == nil {
		st = new(batchScratch[K])
	}
	for base := 0; base < len(qs); base += batchChunk {
		c := len(qs) - base
		if c > batchChunk {
			c = batchChunk
		}
		t.findChunk(qs[base:base+c], out[base:base+c], st)
	}
	t.scratch.Put(st)
	return out
}

// findChunk runs the staged pipeline over one chunk of at most batchChunk
// queries.
func (t *Table[K]) findChunk(qs []K, out []int, st *batchScratch[K]) {
	c := len(qs)
	pred := st.pred[:c]

	// Stage 1: predict the whole chunk (one interface dispatch).
	cdfmodel.PredictBatch(t.model, qs, pred)

	// Stage 2: partition ids overwrite nothing — they feed straight into
	// the drift gathers, which run as one typed loop per packed width.
	if t.mode == ModeRange {
		t.gatherWindows(pred, st.wlo[:c], st.wend[:c])
		t.probeWindows(qs, out, st)
		if !t.monotone {
			// Non-monotone model (§3.8): the window was only a hint.
			// Validate each result globally and fall back to exponential
			// search for the (rare) lanes whose true answer lies outside.
			for i, q := range qs {
				if !t.valid(out[i], q) {
					out[i] = search.Exponential(t.keys, out[i], q)
				}
			}
		}
		return
	}

	// Midpoint mode: gather the shifts, touch every start position so the
	// first line of each gallop is fetched with overlapping misses, then
	// finish each lane with the scalar exponential search.
	wlo := st.wlo[:c]
	t.gatherStarts(pred, wlo)
	keys := t.keys
	for i, s := range wlo {
		st.probe[i] = keys[kv.Clamp(s, 0, t.n-1)]
	}
	for i, q := range qs {
		out[i] = search.Exponential(keys, wlo[i], q)
	}
}

// gatherAdd writes out[i] = pred[i] + d[part(pred[i])] with the packed
// width dispatched once per call instead of once per query; the drift
// loads form an independent gather whose misses overlap. part maps a
// prediction to its partition (Table.partitionOf, passed in so the m==n
// fast path stays branch-free inside the loop).
func (d *driftArray) gatherAdd(pred, out []int, part func(int) int) {
	switch d.width {
	case 1:
		a := d.w8
		for i, p := range pred {
			out[i] = p + int(a[part(p)])
		}
	case 2:
		a := d.w16
		for i, p := range pred {
			out[i] = p + int(a[part(p)])
		}
	case 4:
		a := d.w32
		for i, p := range pred {
			out[i] = p + int(a[part(p)])
		}
	default:
		a := d.w64
		for i, p := range pred {
			out[i] = p + int(a[part(p)])
		}
	}
}

// partitioner returns the prediction-to-partition mapping as a closure
// for the gather loops: identity when M = N, the partitionOf scaling
// otherwise.
func (t *Table[K]) partitioner() func(int) int {
	if t.m == t.n {
		return func(p int) int { return p }
	}
	mm, nn := int64(t.m), int64(t.n)
	return func(p int) int { return int(int64(p) * mm / nn) }
}

// gatherWindows computes, per lane, the clamped local-search window
// [wlo, wend) exactly as search.Window derives it from the raw drift
// bounds. The fused pair layout makes this one gather instead of two: each
// lane's <lo, hi> entries are adjacent, so half the independent misses of
// the split-layout gather fetch both bounds.
func (t *Table[K]) gatherWindows(pred, wlo, wend []int) {
	t.pairs.gatherAdd(pred, wlo, wend, t.partitioner())
	// Clamp to search.Window's semantics: lo into [0, n], inclusive hi cut
	// at n-1, then one slot past the window (§3.1) capped at n.
	n := t.n
	for i := range wlo {
		lo := wlo[i]
		if lo < 0 {
			lo = 0
		} else if lo > n {
			lo = n
		}
		hi := wend[i]
		if hi >= n-1 {
			hi = n - 1
		}
		end := hi + 1
		if end > n {
			end = n
		}
		wlo[i] = lo
		wend[i] = end
	}
}

// gatherStarts computes, per lane, the midpoint-corrected start position
// pred + shift.
func (t *Table[K]) gatherStarts(pred, wlo []int) {
	t.shift.gatherAdd(pred, wlo, t.partitioner())
}

// probeWindows resolves every lane's window [wlo, wend) to its lower bound.
// Short windows (Alg. 1's linear regime) get a touch pass that loads the
// first key of every window with independent, overlapping misses, then a
// scalar finish on now-warm lines. Long windows run an interleaved binary
// search: each round issues one independent probe load per unfinished lane
// before any lane consumes its comparison.
func (t *Table[K]) probeWindows(qs []K, out []int, st *batchScratch[K]) {
	c := len(qs)
	keys := t.keys
	wlo, wend := st.wlo[:c], st.wend[:c]

	long := st.lanes[:0]
	for i := 0; i < c; i++ {
		if wend[i]-wlo[i] > search.WindowThreshold {
			long = append(long, int32(i))
		}
	}

	// Touch pass for the short windows (most lanes with M=N, where windows
	// are a handful of keys): one independent load per lane.
	for i := 0; i < c; i++ {
		if w := wend[i] - wlo[i]; w > 0 && w <= search.WindowThreshold {
			st.probe[i] = keys[wlo[i]]
		}
	}
	// Finish the short windows. The first comparison consumes the touched
	// key; the rest of the scan stays within the fetched line(s).
	for i := 0; i < c; i++ {
		lo, end := wlo[i], wend[i]
		if end-lo > search.WindowThreshold {
			continue
		}
		if lo < end && st.probe[i] < qs[i] {
			lo = search.LinearRange(keys, lo+1, end, qs[i])
		}
		out[i] = lo
	}

	// Interleaved binary search over the long windows. The worklist is
	// filtered in place each round (append lands at or before the read
	// position), so a lane's result must be emitted the moment it
	// converges — the original list is clobbered by the filtering.
	act := long
	for len(act) > 0 {
		for _, ix := range act {
			m := int(uint(wlo[ix]+wend[ix]) >> 1)
			st.mid[ix] = m
			st.probe[ix] = keys[m] // independent loads: misses overlap
		}
		next := act[:0]
		for _, ix := range act {
			if st.probe[ix] < qs[ix] {
				wlo[ix] = st.mid[ix] + 1
			} else {
				wend[ix] = st.mid[ix]
			}
			if wlo[ix] < wend[ix] {
				next = append(next, ix)
			} else {
				out[ix] = wlo[ix]
			}
		}
		act = next
	}
}

// LookupBatch pairs FindBatch with the existence check of Lookup: pos[i]
// is the lower-bound position of qs[i] and found[i] reports whether the key
// at that position equals qs[i]. Like FindBatch it reuses the supplied
// slices when they have capacity.
func (t *Table[K]) LookupBatch(qs []K, pos []int, found []bool) ([]int, []bool) {
	pos = t.FindBatch(qs, pos)
	if cap(found) >= len(qs) {
		found = found[:len(qs)]
	} else {
		found = make([]bool, len(qs))
	}
	for i, p := range pos {
		found[i] = p < t.n && t.keys[p] == qs[i]
	}
	return pos, found
}

// FindRangeBatch answers FindRange for every pair (as[i], bs[i]): the
// half-open position range [firsts[i], lasts[i]) of keys in the inclusive
// key range [as[i], bs[i]]. Both lower-bound passes run through FindBatch.
func (t *Table[K]) FindRangeBatch(as, bs []K, firsts, lasts []int) ([]int, []int) {
	if len(as) != len(bs) {
		panic("core: FindRangeBatch slice length mismatch")
	}
	firsts = t.FindBatch(as, firsts)
	lasts = ensureInts(lasts, len(bs))
	// Second pass queries b+1; the wrap at the domain maximum resolves to
	// last = n, exactly as FindRange does.
	max := maxOf[K]()
	qs := make([]K, len(bs))
	for i, b := range bs {
		qs[i] = b + 1 // wraps to 0 when b == max; overwritten below
	}
	lasts = t.FindBatch(qs, lasts)
	for i, b := range bs {
		switch {
		case b < as[i]:
			firsts[i], lasts[i] = 0, 0
		case b == max:
			lasts[i] = t.n
		}
	}
	return firsts, lasts
}

// FindBatchParallel shards a batch across workers (GOMAXPROCS when
// workers <= 0), mirroring BuildParallel on the query side: each worker
// runs the staged FindBatch pipeline over a contiguous shard, so the
// per-core memory-level parallelism of FindBatch multiplies across cores.
// Results are bit-identical to FindBatch (and therefore to scalar Find);
// the table is immutable, so shards share it without synchronisation.
func (t *Table[K]) FindBatchParallel(qs []K, out []int, workers int) []int {
	out = ensureInts(out, len(qs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if shards := (len(qs) + batchChunk - 1) / batchChunk; workers > shards {
		workers = shards
	}
	if workers <= 1 {
		return t.FindBatch(qs, out)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(qs) * w / workers
		hi := len(qs) * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			t.FindBatch(qs[lo:hi], out[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return out
}
