// Package core implements the paper's contribution: the Shift-Table layer
// (§3), an algorithmic correction layer that sits on top of a learned CDF
// model and eliminates its signed error (drift) at the cost of at most one
// extra memory lookup.
//
// A learned model predicts position [N·Fθ(x)] for a query x; the true
// position is N·F(x). The Shift-Table partitions keys by the model's output
// and stores, per partition, how far ahead the actual records are. Two modes
// are provided, matching the paper's evaluation (§3.4, Fig. 9):
//
//   - ModeRange ("R"): each partition stores the <Δ, C> pair of §3 — the
//     minimum drift and the window length — giving a guaranteed range for a
//     bounded local search (binary or linear, Alg. 1).
//   - ModeMidpoint ("S"): each partition stores a single midpoint shift Δ̄
//     (Eq. 7) — half the footprint, no guaranteed bounds, so local search
//     is exponential (§3.4).
//
// The layer size M defaults to N (one partition per key, the paper's
// recommended default, §3.9) and can be reduced (M = N/X, the paper's "S-X"
// configurations) to trade memory for accuracy (§3.4).
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
)

// Mode selects the Shift-Table flavour.
type Mode int

const (
	// ModeRange stores <Δ, C> pairs: guaranteed windows, bounded local
	// search (the paper's "R" configurations).
	ModeRange Mode = iota
	// ModeMidpoint stores single midpoint shifts Δ̄: half the memory, local
	// search is unbounded exponential (the paper's "S" configurations).
	ModeMidpoint
)

func (m Mode) String() string {
	switch m {
	case ModeRange:
		return "R"
	case ModeMidpoint:
		return "S"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls how a Shift-Table is built.
type Config struct {
	// Mode selects range pairs (R) or midpoint shifts (S). Default R.
	Mode Mode
	// M is the number of partitions. 0 means N, the paper's default
	// (§3.9): "using a mapping layer that has the same number of entries
	// as the keys ensures that the layer can exhibit its ultimate effect".
	M int
	// SampleStride, when > 1 in midpoint mode, builds the layer from every
	// SampleStride-th key instead of all keys (§3.4: "it is possible to
	// construct the map using a sample of the indexed keys, which comes at
	// the cost of accuracy"). Ignored in range mode, which needs exact
	// bounds.
	SampleStride int
}

// Table is a built Shift-Table layer over a sorted key slice and a learned
// CDF model. It is immutable after Build and safe for concurrent readers.
type Table[K kv.Key] struct {
	keys     []K
	model    cdfmodel.Model[K]
	mode     Mode
	monotone bool // model guarantees windows (§3.8)
	n        int
	m        int

	// Range mode: per-partition drift bounds. The window for a query with
	// prediction p in partition k is [p+lo[k], p+hi[k]] (Eq. 5–6: Δ=lo,
	// C=hi−lo). With M=N this degenerates to the paper's <Δk, Ck>.
	lo, hi driftArray

	// Midpoint mode: per-partition rounded mean drift Δ̄ (Eq. 7).
	shift driftArray

	// count[k] is the number of keys mapped to partition k (the paper's
	// Ck cardinality), kept for the error estimate (Eq. 8) and cost model
	// (Eq. 9–10). Stored at build time; not touched during lookups.
	count []int32

	// scratch pools *batchScratch[K] instances for the batched query
	// engine (batch.go); concurrent batches each draw their own. It is a
	// pointer so a rebuilt table can adopt its predecessor's warmed pool
	// (AdoptScratch): snapshot generations under internal/concurrent then
	// share one pool instead of re-allocating scratches after every
	// compaction.
	scratch *sync.Pool
}

// Build constructs a Shift-Table over sorted keys corrected against the
// given model (Alg. 2 plus the empty-partition backfill of §3.1). Build is
// O(N · cost(Fθ) + M), a single pass over the data and a single backward
// pass over the layer (§3.3).
func Build[K kv.Key](keys []K, model cdfmodel.Model[K], cfg Config) (*Table[K], error) {
	n := len(keys)
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("core: keys are not sorted")
	}
	m := cfg.M
	if m == 0 {
		m = n
	}
	if m < 1 || n == 0 {
		if n == 0 {
			return &Table[K]{keys: keys, model: model, mode: cfg.Mode, monotone: model.Monotone(), scratch: new(sync.Pool)}, nil
		}
		return nil, fmt.Errorf("core: invalid layer size M=%d", cfg.M)
	}
	if cfg.SampleStride < 0 {
		return nil, fmt.Errorf("core: negative sample stride %d", cfg.SampleStride)
	}
	if cfg.Mode != ModeRange && cfg.Mode != ModeMidpoint {
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}

	t := &Table[K]{
		keys:     keys,
		model:    model,
		mode:     cfg.Mode,
		monotone: model.Monotone(),
		n:        n,
		m:        m,
		scratch:  new(sync.Pool),
	}

	stride := 1
	if cfg.Mode == ModeMidpoint && cfg.SampleStride > 1 {
		stride = cfg.SampleStride
	}

	// Pass 1 (Alg. 2 lines 3–9): accumulate per-partition statistics. With
	// a monotone model the keys of one partition form a contiguous run of
	// positions [minPos, endPos]; the drift bounds derive from that run in
	// pass 2.
	minPos := make([]int64, m) // first position (of a duplicate run, §3.2) per partition
	endPos := make([]int64, m) // last position per partition
	sumW := make([]int64, m)   // Σ drift, for midpoint mode
	cnt := make([]int32, m)
	for k := range minPos {
		minPos[k] = math.MaxInt64
		endPos[k] = math.MinInt64
	}
	firstOcc := 0 // position of the first key in the current duplicate run (§3.2)
	for i := 0; i < n; i++ {
		if i > 0 && keys[i] != keys[i-1] {
			firstOcc = i
		}
		if stride > 1 && i%stride != 0 {
			continue
		}
		pred := t.model.Predict(keys[i])
		k := t.partitionOf(pred)
		sumW[k] += int64(firstOcc) - int64(pred)
		cnt[k]++
		if int64(firstOcc) < minPos[k] {
			minPos[k] = int64(firstOcc)
		}
		if int64(i) > endPos[k] {
			endPos[k] = int64(i)
		}
	}

	// Pass 2: derive per-partition drift bounds, and backfill empty
	// partitions with pseudo-values pointing at the first key of the next
	// non-empty partition (§3.1 — the paper's Alg. 2 pseudo-code reads
	// from k−1, contradicting the text; we implement the text, see
	// DESIGN.md §4).
	//
	// For a query q in partition k, monotonicity gives: keys of partitions
	// < k are < q and keys of partitions > k are > q, so the answer lies in
	// [minPos[k], endPos[k]+1]. The query's own prediction p can be any
	// value in the partition's feasible range [pmin, pmax] (Eq. 5–6
	// generalised to M<N), so the stored relative bounds must cover the
	// absolute window from every such p:
	//
	//	lo[k] = minPos[k] − pmax,  hi[k] = endPos[k] − pmin.
	//
	// With M = N, pmin = pmax = k and these reduce exactly to the paper's
	// Δk = minPos−k and window length Ck (Alg. 2).
	loW := make([]int64, m)
	hiW := make([]int64, m)
	nextFirst := int64(n) // first position of the nearest non-empty partition to the right
	for k := m - 1; k >= 0; k-- {
		pmin, pmax := t.predRange(k)
		if cnt[k] > 0 {
			loW[k] = minPos[k] - pmax
			hiW[k] = endPos[k] - pmin
			nextFirst = minPos[k]
			continue
		}
		// Empty partition: any query landing here resolves exactly to
		// position nextFirst; encode a window whose just-after slot is
		// nextFirst for every feasible prediction.
		loW[k] = nextFirst - pmax
		hiW[k] = nextFirst - 1 - pmin
		sumW[k] = nextFirst - (pmin+pmax)/2 // midpoint aim
		// cnt stays 0: these are pseudo-entries (§3.1), not real keys.
	}

	t.count = cnt
	switch cfg.Mode {
	case ModeRange:
		t.lo = packDrifts(loW)
		t.hi = packDrifts(hiW)
	case ModeMidpoint:
		mid := make([]int64, m)
		for k := range mid {
			if cnt[k] > 0 {
				// Rounded mean drift (Eq. 7). Round half away from zero:
				// the paper's Table 1 worked example yields Δ̄=−40 from a
				// mean of −40.2, i.e. not floor.
				mid[k] = roundHalfAway(float64(sumW[k]) / float64(cnt[k]))
			} else {
				mid[k] = sumW[k]
			}
		}
		t.shift = packDrifts(mid)
	}
	return t, nil
}

// partitionOf maps a model prediction p ∈ [0, N) to its partition
// [M·Fθ(x)] ∈ [0, M). The model interface exposes quantised predictions
// [N·Fθ(x)] rather than Fθ itself, so the partition is derived as
// [p·M/N]; build and query use the same mapping, which is all correctness
// requires.
func (t *Table[K]) partitionOf(pred int) int {
	if t.m == t.n {
		return pred
	}
	return int(int64(pred) * int64(t.m) / int64(t.n))
}

// predRange returns the inclusive range of predictions that map to
// partition k: the feasible positions a query landing in an empty partition
// can have been predicted at.
func (t *Table[K]) predRange(k int) (pmin, pmax int64) {
	if t.m == t.n {
		return int64(k), int64(k)
	}
	// partitionOf(p) == k  ⟺  k·n ≤ p·m < (k+1)·n.
	pmin = ceilDiv(int64(k)*int64(t.n), int64(t.m))
	pmax = ceilDiv(int64(k+1)*int64(t.n), int64(t.m)) - 1
	if pmax > int64(t.n-1) {
		pmax = int64(t.n - 1)
	}
	if pmin > pmax {
		pmin = pmax // degenerate partition no prediction maps to
	}
	return pmin, pmax
}

// N returns the number of indexed keys.
func (t *Table[K]) N() int { return t.n }

// Len returns the number of indexed keys (the index-contract spelling of N,
// see internal/index).
func (t *Table[K]) Len() int { return t.n }

// Name identifies the backend in benchmark output: the host model's name
// with the correction layer appended, e.g. "IM+ST".
func (t *Table[K]) Name() string { return t.model.Name() + "+ST" }

// M returns the number of layer partitions.
func (t *Table[K]) M() int { return t.m }

// Mode returns the layer flavour.
func (t *Table[K]) Mode() Mode { return t.mode }

// Model returns the underlying CDF model.
func (t *Table[K]) Model() cdfmodel.Model[K] { return t.model }

// Keys returns the indexed keys (shared, not copied).
func (t *Table[K]) Keys() []K { return t.keys }

// AdoptScratch makes t draw its batch scratches from prev's pool instead of
// its own, so a table rebuilt after a compaction keeps the warmed-up
// instances of its predecessor (scratches carry no table-specific state:
// every slot is written before it is read within a chunk). Call before t is
// visible to concurrent readers; a nil or zero-value prev is a no-op.
func (t *Table[K]) AdoptScratch(prev *Table[K]) {
	if prev != nil && prev.scratch != nil {
		t.scratch = prev.scratch
	}
}

// SizeBytes reports the footprint of the correction layer itself (the
// paper's Fig. 8 index-size axis counts the mapping array; the model size is
// reported separately by the model).
func (t *Table[K]) SizeBytes() int {
	switch t.mode {
	case ModeRange:
		return t.lo.sizeBytes() + t.hi.sizeBytes()
	default:
		return t.shift.sizeBytes()
	}
}

// EntryBits reports the per-entry width selected for the drift arrays
// (§3.9: "if the error is smaller than 2^16/2, then a 16-bit integer can be
// used").
func (t *Table[K]) EntryBits() int {
	var d driftArray
	if t.mode == ModeRange {
		d = t.lo
	} else {
		d = t.shift
	}
	return d.entryBits()
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

func roundHalfAway(v float64) int64 {
	if v >= 0 {
		return int64(v + 0.5)
	}
	return -int64(-v + 0.5)
}
