// Package core implements the paper's contribution: the Shift-Table layer
// (§3), an algorithmic correction layer that sits on top of a learned CDF
// model and eliminates its signed error (drift) at the cost of at most one
// extra memory lookup.
//
// A learned model predicts position [N·Fθ(x)] for a query x; the true
// position is N·F(x). The Shift-Table partitions keys by the model's output
// and stores, per partition, how far ahead the actual records are. Two modes
// are provided, matching the paper's evaluation (§3.4, Fig. 9):
//
//   - ModeRange ("R"): each partition stores the <Δ, C> pair of §3 — the
//     minimum drift and the window length — giving a guaranteed range for a
//     bounded local search (binary or linear, Alg. 1).
//   - ModeMidpoint ("S"): each partition stores a single midpoint shift Δ̄
//     (Eq. 7) — half the footprint, no guaranteed bounds, so local search
//     is exponential (§3.4).
//
// The layer size M defaults to N (one partition per key, the paper's
// recommended default, §3.9) and can be reduced (M = N/X, the paper's "S-X"
// configurations) to trade memory for accuracy (§3.4).
package core

import (
	"fmt"
	"sync"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/mapped"
)

// Mode selects the Shift-Table flavour.
type Mode int

const (
	// ModeRange stores <Δ, C> pairs: guaranteed windows, bounded local
	// search (the paper's "R" configurations).
	ModeRange Mode = iota
	// ModeMidpoint stores single midpoint shifts Δ̄: half the memory, local
	// search is unbounded exponential (the paper's "S" configurations).
	ModeMidpoint
)

func (m Mode) String() string {
	switch m {
	case ModeRange:
		return "R"
	case ModeMidpoint:
		return "S"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls how a Shift-Table is built.
type Config struct {
	// Mode selects range pairs (R) or midpoint shifts (S). Default R.
	Mode Mode
	// M is the number of partitions. 0 means N, the paper's default
	// (§3.9): "using a mapping layer that has the same number of entries
	// as the keys ensures that the layer can exhibit its ultimate effect".
	M int
	// SampleStride, when > 1 in midpoint mode, builds the layer from every
	// SampleStride-th key instead of all keys (§3.4: "it is possible to
	// construct the map using a sample of the indexed keys, which comes at
	// the cost of accuracy"). Ignored in range mode, which needs exact
	// bounds.
	SampleStride int
}

// Table is a built Shift-Table layer over a sorted key slice and a learned
// CDF model. It is immutable after Build and safe for concurrent readers.
type Table[K kv.Key] struct {
	keys  []K
	model cdfmodel.Model[K]
	mode  Mode
	n     int
	m     int

	// Range mode: per-partition drift bounds, stored fused — the <lo, hi>
	// pair of partition k interleaved at one packed width so a lookup's
	// correction step touches a single cache line (DESIGN.md §8). The
	// window for a query with prediction p in partition k is
	// [p+lo[k], p+hi[k]] (Eq. 5–6: Δ=lo, C=hi−lo). With M=N this
	// degenerates to the paper's <Δk, Ck>.
	pairs driftPairs
	// loBits/hiBits are the independent packed widths of the two halves —
	// the serialization format (and the paper's §3.9 width discussion)
	// stores lo and hi as separate arrays, each at its own narrowest width;
	// WriteTo de-interleaves back to that split layout. They share an
	// 8-byte slot with monotone (fieldalignment: grouping the three
	// 1-byte fields keeps Table at 336 bytes instead of 344).
	loBits, hiBits uint8
	monotone       bool // model guarantees windows (§3.8)

	// Midpoint mode: per-partition rounded mean drift Δ̄ (Eq. 7).
	shift driftArray

	// count[k] is the number of keys mapped to partition k (the paper's
	// Ck cardinality), kept for the error estimate (Eq. 8) and cost model
	// (Eq. 9–10). Stored at build time; not touched during lookups.
	count []int32

	// stats caches the build-time statistics summary (stats.go). The build
	// pipeline derives every Stats field from the one model sweep it
	// already does (DESIGN.md §8), so ComputeStats and Log2Error on a
	// freshly built table cost O(1) instead of a second sweep. nil on
	// tables whose build skipped it (sampled midpoint builds, Load).
	stats *Stats

	// scratch pools *batchScratch[K] instances for the batched query
	// engine (batch.go); concurrent batches each draw their own. It is a
	// pointer so a rebuilt table can adopt its predecessor's warmed pool
	// (AdoptScratch): snapshot generations under internal/concurrent then
	// share one pool instead of re-allocating scratches after every
	// compaction.
	scratch *sync.Pool

	// buildPool pools *buildArena instances (build.go) the same way:
	// BuildNext draws the rebuild's transient arrays (prediction arena and
	// per-partition accumulators) from the predecessor's pool, so
	// steady-state compaction reallocates neither query scratches nor
	// build scratch.
	buildPool *sync.Pool

	// region, when non-nil, is the mapped snapshot region whose pages
	// back keys, drift arrays, and counts (mapped.go in this package).
	// The table holds one reference, released by a runtime cleanup when
	// the table becomes unreachable — readers reach the bytes only
	// through a table they hold, so reachability implies the mapping is
	// live and a snapshot swap can never munmap under an in-flight query.
	region *mapped.Region
}

// partitionOf maps a model prediction p ∈ [0, N) to its partition
// [M·Fθ(x)] ∈ [0, M). The model interface exposes quantised predictions
// [N·Fθ(x)] rather than Fθ itself, so the partition is derived as
// [p·M/N]; build and query use the same mapping, which is all correctness
// requires.
func (t *Table[K]) partitionOf(pred int) int {
	if t.m == t.n {
		return pred
	}
	return int(int64(pred) * int64(t.m) / int64(t.n))
}

// predRange returns the inclusive range of predictions that map to
// partition k: the feasible positions a query landing in an empty partition
// can have been predicted at.
func (t *Table[K]) predRange(k int) (pmin, pmax int64) {
	if t.m == t.n {
		return int64(k), int64(k)
	}
	// partitionOf(p) == k  ⟺  k·n ≤ p·m < (k+1)·n.
	pmin = ceilDiv(int64(k)*int64(t.n), int64(t.m))
	pmax = ceilDiv(int64(k+1)*int64(t.n), int64(t.m)) - 1
	if pmax > int64(t.n-1) {
		pmax = int64(t.n - 1)
	}
	if pmin > pmax {
		pmin = pmax // degenerate partition no prediction maps to
	}
	return pmin, pmax
}

// N returns the number of indexed keys.
func (t *Table[K]) N() int { return t.n }

// Len returns the number of indexed keys (the index-contract spelling of N,
// see internal/index).
func (t *Table[K]) Len() int { return t.n }

// Name identifies the backend in benchmark output: the host model's name
// with the correction layer appended, e.g. "IM+ST".
func (t *Table[K]) Name() string { return t.model.Name() + "+ST" }

// M returns the number of layer partitions.
func (t *Table[K]) M() int { return t.m }

// Mode returns the layer flavour.
func (t *Table[K]) Mode() Mode { return t.mode }

// Model returns the underlying CDF model.
func (t *Table[K]) Model() cdfmodel.Model[K] { return t.model }

// ModelFingerprint returns the fingerprint of the table's CDF model — the
// same value the snapshot container embeds to refuse layer/model
// mismatches. Replication records it in the manifest so a replica can
// verify a fetched artifact carries the model family the primary
// published, before anything is served from it.
func (t *Table[K]) ModelFingerprint() uint64 { return modelFingerprint(t.model) }

// Keys returns the indexed keys (shared, not copied).
func (t *Table[K]) Keys() []K { return t.keys }

// AdoptScratch makes t draw its batch scratches and build arenas from
// prev's pools instead of its own, so a table rebuilt after a compaction
// keeps the warmed-up instances of its predecessor (neither carries
// table-specific state: every batch-scratch slot is written before it is
// read within a chunk, and build arenas are fully re-initialised per
// build). Call before t is visible to concurrent readers; a nil or
// zero-value prev is a no-op. BuildNext calls this itself.
func (t *Table[K]) AdoptScratch(prev *Table[K]) {
	if prev == nil {
		return
	}
	if prev.scratch != nil {
		t.scratch = prev.scratch
	}
	if prev.buildPool != nil {
		t.buildPool = prev.buildPool
	}
}

// SizeBytes reports the footprint of the correction layer itself (the
// paper's Fig. 8 index-size axis counts the mapping array; the model size is
// reported separately by the model). Range mode reports the fused
// interleaved array — the layout lookups actually touch — which equals the
// split footprint whenever lo and hi pack to the same width (the common
// case) and rounds the narrower half up to the common width otherwise.
func (t *Table[K]) SizeBytes() int {
	switch t.mode {
	case ModeRange:
		return t.pairs.sizeBytes()
	default:
		return t.shift.sizeBytes()
	}
}

// EntryBits reports the per-entry width selected for the drift arrays
// (§3.9: "if the error is smaller than 2^16/2, then a 16-bit integer can be
// used"). Range mode reports the fused pair width, max(lo, hi).
func (t *Table[K]) EntryBits() int {
	if t.mode == ModeRange {
		return t.pairs.entryBits()
	}
	return t.shift.entryBits()
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

func roundHalfAway(v float64) int64 {
	if v >= 0 {
		return int64(v + 0.5)
	}
	return -int64(-v + 0.5)
}
