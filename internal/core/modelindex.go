package core

import (
	"fmt"

	"repro/internal/cdfmodel"
	"repro/internal/kv"
	"repro/internal/mapped"
	"repro/internal/search"
)

// ModelIndex serves lookups with a bare CDF model and exponential local
// search from the raw prediction — the paper's "model without Shift-Table"
// configuration (§3.9) as a first-class index backend. It is what a
// Shift-Table-corrected index degrades to when the layer is disabled, and
// the natural winner on distributions the model already fits (the §4.1
// advisor's "error below 10 records" case).
type ModelIndex[K kv.Key] struct {
	keys    []K
	model   cdfmodel.Model[K]
	meanErr float64 // mean |drift| over the indexed keys, for Eq. 10

	// region backs keys when the index was opened over a mapped snapshot
	// (mapped.go); nil for heap-built indexes. Same lifetime protocol as
	// Table.region.
	region *mapped.Region
}

// NewModelIndex builds the bare-model index over sorted keys. It measures
// the model's mean absolute error once (one pass) so the §3.7 cost
// estimate needs no further scans.
func NewModelIndex[K kv.Key](keys []K, model cdfmodel.Model[K]) (*ModelIndex[K], error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("core: keys are not sorted")
	}
	mean, _ := ModelError(keys, model)
	return &ModelIndex[K]{keys: keys, model: model, meanErr: mean}, nil
}

// Find returns the lower-bound rank of q.
func (ix *ModelIndex[K]) Find(q K) int { return ModelFind(ix.keys, ix.model, q) }

// TraceFind replays Find through a touch callback for the cache simulator.
func (ix *ModelIndex[K]) TraceFind(q K, touch search.Touch) int {
	return TraceModelFind(ix.keys, ix.model, q, touch)
}

// FindRange returns the half-open position range of keys in [a, b].
func (ix *ModelIndex[K]) FindRange(a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = ix.Find(a)
	if b == kv.MaxKey[K]() {
		return first, len(ix.keys)
	}
	return first, ix.Find(b + 1)
}

// Len returns the number of indexed keys.
func (ix *ModelIndex[K]) Len() int { return len(ix.keys) }

// Name identifies the backend by its model family ("IM" for the paper's
// interpolation model).
func (ix *ModelIndex[K]) Name() string { return ix.model.Name() }

// SizeBytes is the model parameter footprint; the bare index keeps nothing
// else.
func (ix *ModelIndex[K]) SizeBytes() int { return ix.model.SizeBytes() }

// Model returns the underlying CDF model.
func (ix *ModelIndex[K]) Model() cdfmodel.Model[K] { return ix.model }

// MeanAbsError returns the model's mean absolute drift over the indexed
// keys, measured at build time.
func (ix *ModelIndex[K]) MeanAbsError() float64 { return ix.meanErr }

// EstimateNs implements the index CostEstimator capability with the Eq. 10
// shape: model execution plus a local search across the mean model error
// (the layer-less arm of the §3.7 comparison).
func (ix *ModelIndex[K]) EstimateNs(l LatencyFn) float64 {
	err := int(ix.meanErr)
	if err < 1 {
		err = 1
	}
	return estimateModelNs + l(err)
}
