package fasttree

import (
	"repro/internal/kv"
	"repro/internal/search"
)

// TraceFind is the instrumented twin of Eytzinger.Find.
func (e *Eytzinger[K]) TraceFind(q K, touch search.Touch) int {
	if e.n == 0 {
		return 0
	}
	w := kv.Width[K]()
	i := 1
	bestNode := 0
	for i <= e.n {
		touch(kv.Addr(e.tree, i), w)
		if e.tree[i] >= q {
			bestNode = i
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	if bestNode == 0 {
		return e.n
	}
	touch(kv.Addr(e.rank, bestNode), 4)
	return int(e.rank[bestNode])
}

// TraceFind is the instrumented twin of Blocked.Find. Whole-node scans
// touch each inspected slot; slots of one node share a cache line, so the
// simulator sees at most one line fill per node, which is the layout's
// point.
func (t *Blocked[K]) TraceFind(q K, touch search.Touch) int {
	if t.n == 0 {
		return 0
	}
	w := kv.Width[K]()
	best := t.n
	node := 0
	for node < t.nodes {
		base := node * t.b
		slot := 0
		for slot < t.b {
			touch(kv.Addr(t.blocks, base+slot), w)
			if t.blocks[base+slot] >= q {
				break
			}
			slot++
		}
		if slot < t.b && t.blocks[base+slot] >= q {
			touch(kv.Addr(t.rank, base+slot), 4)
			if r := int(t.rank[base+slot]); r < best {
				best = r
			}
		}
		node = node*(t.b+1) + slot + 1
	}
	return best
}
