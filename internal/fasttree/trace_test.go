package fasttree

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestTraceFindEqualsFind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nop := func(uint64, int) {}
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 3000, 9)
		ey, _ := NewEytzinger(keys)
		bl, _ := NewBlocked(keys)
		for i := 0; i < 1500; i++ {
			q := rng.Uint64() % (keys[len(keys)-1] + 3)
			if got, want := ey.TraceFind(q, nop), ey.Find(q); got != want {
				t.Fatalf("%s eytzinger: TraceFind(%d) = %d, Find = %d", name, q, got, want)
			}
			if got, want := bl.TraceFind(q, nop), bl.Find(q); got != want {
				t.Fatalf("%s blocked: TraceFind(%d) = %d, Find = %d", name, q, got, want)
			}
		}
	}
}
