package fasttree

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kv"
)

type finder interface {
	Find(q uint64) int
	SizeBytes() int
	Name() string
}

func TestFindMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range dataset.Names {
		keys := dataset.MustGenerate(name, 64, 3000, 11)
		ey, err := NewEytzinger(keys)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := NewBlocked(keys)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []finder{ey, bl} {
			for i := 0; i < 1500; i++ {
				var q uint64
				if i%2 == 0 {
					q = keys[rng.Intn(len(keys))]
				} else {
					q = rng.Uint64() % (keys[len(keys)-1] + 3)
				}
				if got, want := f.Find(q), kv.LowerBound(keys, q); got != want {
					t.Fatalf("%s %s: Find(%d) = %d, want %d", name, f.Name(), q, got, want)
				}
			}
			for _, q := range []uint64{0, keys[0], keys[len(keys)-1], keys[len(keys)-1] + 1, ^uint64(0)} {
				if got, want := f.Find(q), kv.LowerBound(keys, q); got != want {
					t.Fatalf("%s %s: boundary Find(%d) = %d, want %d", name, f.Name(), q, got, want)
				}
			}
		}
	}
}

func TestExhaustiveSmallSizes(t *testing.T) {
	for n := 0; n <= 40; n++ {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(3 * i)
		}
		ey, _ := NewEytzinger(keys)
		bl, _ := NewBlocked(keys)
		for q := uint64(0); q <= uint64(3*n+2); q++ {
			want := kv.LowerBound(keys, q)
			if got := ey.Find(q); got != want {
				t.Fatalf("eytzinger n=%d Find(%d) = %d, want %d", n, q, got, want)
			}
			if got := bl.Find(q); got != want {
				t.Fatalf("blocked n=%d Find(%d) = %d, want %d", n, q, got, want)
			}
		}
	}
}

func TestDuplicatesReturnFirst(t *testing.T) {
	keys := []uint64{5, 5, 5, 7, 7, 9, 9, 9, 9, 11}
	ey, _ := NewEytzinger(keys)
	bl, _ := NewBlocked(keys)
	for _, c := range []struct {
		q    uint64
		want int
	}{{5, 0}, {6, 3}, {7, 3}, {8, 5}, {9, 5}, {10, 9}, {11, 9}, {12, 10}} {
		if got := ey.Find(c.q); got != c.want {
			t.Errorf("eytzinger Find(%d) = %d, want %d", c.q, got, c.want)
		}
		if got := bl.Find(c.q); got != c.want {
			t.Errorf("blocked Find(%d) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestSentinelSafetyNearMaxKey(t *testing.T) {
	// Keys at the top of the domain collide with the blocked layout's
	// maxKey padding; lookups must still be exact.
	max := ^uint64(0)
	keys := []uint64{max - 3, max - 2, max - 1, max}
	bl, _ := NewBlocked(keys)
	ey, _ := NewEytzinger(keys)
	for i, k := range keys {
		if got := bl.Find(k); got != i {
			t.Errorf("blocked Find(max-%d) = %d, want %d", 3-i, got, i)
		}
		if got := ey.Find(k); got != i {
			t.Errorf("eytzinger Find(max-%d) = %d, want %d", 3-i, got, i)
		}
	}
}

func TestUnsortedRejected(t *testing.T) {
	if _, err := NewEytzinger([]uint64{2, 1}); err == nil {
		t.Error("eytzinger should reject unsorted keys")
	}
	if _, err := NewBlocked([]uint64{2, 1}); err == nil {
		t.Error("blocked should reject unsorted keys")
	}
}

func TestUint32Layouts(t *testing.T) {
	keys := dataset.U32(dataset.MustGenerate(dataset.Face, 32, 2500, 5))
	ey, _ := NewEytzinger(keys)
	bl, _ := NewBlocked(keys)
	if bl.b != 16 {
		t.Errorf("uint32 blocked node should hold 16 keys per line, got %d", bl.b)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1500; i++ {
		q := uint32(rng.Uint64())
		want := kv.LowerBound(keys, q)
		if got := ey.Find(q); got != want {
			t.Fatalf("uint32 eytzinger Find(%d) = %d, want %d", q, got, want)
		}
		if got := bl.Find(q); got != want {
			t.Fatalf("uint32 blocked Find(%d) = %d, want %d", q, got, want)
		}
	}
	if ey.SizeBytes() <= 0 || bl.SizeBytes() <= 0 {
		t.Error("size accounting broken")
	}
}
