// Package fasttree provides cache-optimized static search trees standing in
// for FAST (Kim et al. [20]), the paper's strongest algorithmic baseline.
//
// FAST is a read-only binary search tree whose elements are laid out to
// match the cache-line and SIMD geometry of the CPU. Portable Go has no
// SIMD, so this package implements the two layout ideas that give FAST its
// cache behaviour (the property the paper's comparisons rest on — §2.2:
// "FAST keeps more hot keys in the cache"):
//
//   - Eytzinger: the BFS layout of a complete binary tree in one array;
//     the top levels of the tree share a handful of cache lines, so the
//     first ~log(N)−3 comparisons are cache-resident.
//   - Blocked: an implicit static B-tree with one cache line per node
//     (16 uint32 or 8 uint64 keys), the line-blocking FAST applies.
//
// Both return lower-bound ranks in the original sorted array. See DESIGN.md
// §2 for the substitution note.
package fasttree

import (
	"fmt"

	"repro/internal/kv"
)

// Eytzinger is a BFS-ordered complete binary search tree.
type Eytzinger[K kv.Key] struct {
	tree []K // 1-based BFS order; tree[0] unused
	rank []int32
	n    int
}

// NewEytzinger builds the layout from sorted keys.
func NewEytzinger[K kv.Key](keys []K) (*Eytzinger[K], error) {
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("fasttree: keys are not sorted")
	}
	n := len(keys)
	e := &Eytzinger[K]{
		tree: make([]K, n+1),
		rank: make([]int32, n+1),
		n:    n,
	}
	i := 0
	e.fill(keys, &i, 1)
	return e, nil
}

// fill performs the in-order traversal of the implicit tree shape, writing
// sorted keys into BFS positions.
func (e *Eytzinger[K]) fill(keys []K, next *int, node int) {
	if node > e.n {
		return
	}
	e.fill(keys, next, 2*node)
	e.tree[node] = keys[*next]
	e.rank[node] = int32(*next)
	*next++
	e.fill(keys, next, 2*node+1)
}

// Find returns the smallest rank i with keys[i] >= q. The descent tracks
// the last node where it went left; only that node's rank is read, keeping
// the rank array out of the hot path.
func (e *Eytzinger[K]) Find(q K) int {
	if e.n == 0 {
		return 0
	}
	i := 1
	bestNode := 0
	for i <= e.n {
		if e.tree[i] >= q {
			bestNode = i
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	if bestNode == 0 {
		return e.n
	}
	return int(e.rank[bestNode])
}

// SizeBytes reports the layout footprint.
func (e *Eytzinger[K]) SizeBytes() int {
	return len(e.tree)*keyBytes[K]() + len(e.rank)*4
}

// Name identifies the index in benchmark output.
func (e *Eytzinger[K]) Name() string { return "FAST-eytzinger" }

// Blocked is an implicit static B-tree with cache-line-sized nodes: the
// line-blocked layout FAST uses. Node b holds B sorted keys; its children
// are nodes b*(B+1)+1 .. b*(B+1)+B+1 in BFS block order.
type Blocked[K kv.Key] struct {
	blocks []K // node-major; padded with maxKey sentinels
	rank   []int32
	b      int // keys per node (cache line / key size)
	nodes  int
	n      int
}

// NewBlocked builds the blocked layout from sorted keys. Keys per node is
// fixed at one 64-byte cache line worth of keys.
func NewBlocked[K kv.Key](keys []K) (*Blocked[K], error) {
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("fasttree: keys are not sorted")
	}
	n := len(keys)
	b := 64 / keyBytes[K]()
	nodes := (n + b - 1) / b
	if nodes == 0 {
		nodes = 1
	}
	t := &Blocked[K]{
		blocks: make([]K, nodes*b),
		rank:   make([]int32, nodes*b),
		b:      b,
		nodes:  nodes,
		n:      n,
	}
	var maxK K
	maxK = ^maxK
	for i := range t.blocks {
		t.blocks[i] = maxK
		t.rank[i] = int32(n)
	}
	next := 0
	t.fill(keys, &next, 0)
	return t, nil
}

// fill writes sorted keys into the implicit B-tree shape in order: for node
// b, child i precedes separator key i.
func (t *Blocked[K]) fill(keys []K, next *int, node int) {
	if node >= t.nodes || *next >= len(keys) {
		return
	}
	for slot := 0; slot < t.b; slot++ {
		t.fill(keys, next, node*(t.b+1)+slot+1)
		if *next >= len(keys) {
			return
		}
		t.blocks[node*t.b+slot] = keys[*next]
		t.rank[node*t.b+slot] = int32(*next)
		*next++
	}
	t.fill(keys, next, node*(t.b+1)+t.b+1)
}

// Find returns the smallest rank i with keys[i] >= q.
func (t *Blocked[K]) Find(q K) int {
	if t.n == 0 {
		return 0
	}
	best := t.n
	node := 0
	for node < t.nodes {
		base := node * t.b
		// Within-node lower bound: one cache line, branch-light scan.
		slot := 0
		for slot < t.b && t.blocks[base+slot] < q {
			slot++
		}
		if slot < t.b && t.blocks[base+slot] >= q {
			if r := int(t.rank[base+slot]); r < best {
				best = r
			}
		}
		node = node*(t.b+1) + slot + 1
	}
	return best
}

// SizeBytes reports the layout footprint.
func (t *Blocked[K]) SizeBytes() int {
	return len(t.blocks)*keyBytes[K]() + len(t.rank)*4
}

// Name identifies the index in benchmark output.
func (t *Blocked[K]) Name() string { return "FAST" }

// Len returns the number of indexed keys.
func (t *Blocked[K]) Len() int { return t.n }

// FindRange returns the half-open rank range of keys in the inclusive key
// range [a, b].
func (t *Blocked[K]) FindRange(a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = t.Find(a)
	if b == kv.MaxKey[K]() {
		return first, t.n
	}
	return first, t.Find(b + 1)
}

// EstimateNs implements the index CostEstimator capability (§3.7
// generalised): the descent visits one cache-line node per level of the
// implicit (B+1)-ary tree, each a non-cached probe priced at L(1).
func (t *Blocked[K]) EstimateNs(l func(s int) float64) float64 {
	if t.n == 0 {
		return 0
	}
	levels := 0.0
	for span := 1; span <= t.nodes; span *= t.b + 1 {
		levels++
	}
	return levels * l(1)
}

// keyBytes returns the byte width of the key type.
func keyBytes[K kv.Key]() int {
	var zero K
	switch any(zero).(type) {
	case uint32:
		return 4
	default:
		return 8
	}
}
