package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/kv"
)

// allAlgorithms enumerates every full-array lower-bound algorithm under a
// stable name for table-driven verification.
func allAlgorithms() map[string]func([]uint64, uint64) int {
	return map[string]func([]uint64, uint64) int{
		"Binary":        Binary[uint64],
		"Branchless":    Branchless[uint64],
		"Interpolation": Interpolation[uint64],
		"TIP":           TIP[uint64],
		"LinearFrom(0)": func(keys []uint64, q uint64) int { return LinearFrom(keys, 0, q) },
		"Exponential(0)": func(keys []uint64, q uint64) int {
			return Exponential(keys, 0, q)
		},
		"Exponential(mid)": func(keys []uint64, q uint64) int {
			return Exponential(keys, len(keys)/2, q)
		},
		"Exponential(end)": func(keys []uint64, q uint64) int {
			return Exponential(keys, len(keys)-1, q)
		},
	}
}

func refLB(keys []uint64, q uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= q })
}

func TestAllAlgorithmsSmallCases(t *testing.T) {
	cases := [][]uint64{
		{},
		{5},
		{5, 5, 5, 5},
		{1, 2, 3, 4, 5},
		{0, 10, 10, 10, 20, 30, 30, 40},
		{0, 1 << 60, 1<<60 + 1, 1 << 62},
	}
	for name, fn := range allAlgorithms() {
		for _, keys := range cases {
			maxQ := uint64(50)
			if len(keys) > 0 {
				maxQ = keys[len(keys)-1] + 2
			}
			for _, q := range []uint64{0, 1, 4, 5, 6, 9, 10, 11, 29, 30, 31, maxQ} {
				want := refLB(keys, q)
				if got := fn(keys, q); got != want {
					t.Errorf("%s(%v, %d) = %d, want %d", name, keys, q, got, want)
				}
			}
		}
	}
}

func TestAllAlgorithmsRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1000))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for name, fn := range allAlgorithms() {
			for probe := 0; probe < 50; probe++ {
				q := uint64(rng.Intn(1002))
				want := refLB(keys, q)
				if got := fn(keys, q); got != want {
					t.Fatalf("trial %d %s(q=%d) = %d, want %d (keys=%v)", trial, name, q, got, want, keys)
				}
			}
		}
	}
}

func TestAllAlgorithmsOnPaperDistributions(t *testing.T) {
	for _, spec := range []dataset.Spec{{Name: dataset.Face, Bits: 64}, {Name: dataset.LogN, Bits: 32}, {Name: dataset.Wiki, Bits: 64}} {
		keys := dataset.MustGenerate(spec.Name, spec.Bits, 5000, 11)
		rng := rand.New(rand.NewSource(5))
		for name, fn := range allAlgorithms() {
			for probe := 0; probe < 300; probe++ {
				var q uint64
				if probe%2 == 0 {
					q = keys[rng.Intn(len(keys))] // indexed key
				} else {
					q = rng.Uint64() % (keys[len(keys)-1] + 2) // arbitrary
				}
				want := refLB(keys, q)
				if got := fn(keys, q); got != want {
					t.Fatalf("%s on %s: q=%d got %d want %d", name, spec, q, got, want)
				}
			}
		}
	}
}

func TestBinaryRangeBounds(t *testing.T) {
	keys := []uint64{0, 10, 20, 30, 40, 50}
	if got := BinaryRange(keys, 2, 5, 25); got != 3 {
		t.Errorf("BinaryRange = %d, want 3", got)
	}
	// All keys in range below q: returns hi.
	if got := BinaryRange(keys, 1, 3, 99); got != 3 {
		t.Errorf("BinaryRange saturates at hi: got %d, want 3", got)
	}
	// Empty range: returns lo.
	if got := BinaryRange(keys, 4, 4, 0); got != 4 {
		t.Errorf("BinaryRange on empty range = %d, want 4", got)
	}
}

func TestLinearRange(t *testing.T) {
	keys := []uint64{0, 10, 20, 30}
	if got := LinearRange(keys, 1, 3, 15); got != 2 {
		t.Errorf("LinearRange = %d, want 2", got)
	}
	if got := LinearRange(keys, 1, 3, 99); got != 3 {
		t.Errorf("LinearRange saturates at hi: got %d, want 3", got)
	}
}

func TestLinearFromBothDirections(t *testing.T) {
	keys := []uint64{0, 10, 20, 30, 40}
	// Start right of target: must walk left.
	if got := LinearFrom(keys, 4, 15); got != 2 {
		t.Errorf("walk left: got %d, want 2", got)
	}
	// Start left of target: must walk right.
	if got := LinearFrom(keys, 0, 35); got != 4 {
		t.Errorf("walk right: got %d, want 4", got)
	}
	// Out-of-range starting positions are clamped.
	if got := LinearFrom(keys, -5, 15); got != 2 {
		t.Errorf("clamped low: got %d, want 2", got)
	}
	if got := LinearFrom(keys, 100, 15); got != 2 {
		t.Errorf("clamped high: got %d, want 2", got)
	}
	if got := LinearFrom(keys, 2, 99); got != 5 {
		t.Errorf("past end: got %d, want 5", got)
	}
}

func TestExponentialFromAnyStart(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	for start := -10; start < 1010; start += 7 {
		for _, q := range []uint64{0, 1, 500, 1500, 2997, 2998, 5000} {
			want := refLB(keys, q)
			if got := Exponential(keys, start, q); got != want {
				t.Fatalf("Exponential(start=%d, q=%d) = %d, want %d", start, q, got, want)
			}
		}
	}
}

func TestWindowPolicy(t *testing.T) {
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i * 2)
	}
	// The answer may be one slot right of the window (§3.1): lower bound of
	// 26 is index 13, just past the window [10, 12].
	if got := Window(keys, 10, 12, 26); got != 13 {
		t.Errorf("Window just-after case = %d, want 13", got)
	}
	// Small window → linear; large window → binary. Both must agree with ref.
	for lo := 0; lo < 90; lo += 13 {
		for width := 0; width < 40; width += 5 {
			hi := lo + width
			for q := uint64(2 * lo); q <= uint64(2*(hi+1)); q++ {
				want := refLB(keys, q)
				if want < lo || want > hi+1 {
					continue // outside the window's contract
				}
				if got := Window(keys, lo, hi, q); got != want {
					t.Fatalf("Window(lo=%d,hi=%d,q=%d) = %d, want %d", lo, hi, q, got, want)
				}
			}
		}
	}
}

func TestWindowClamping(t *testing.T) {
	keys := []uint64{10, 20, 30}
	if got := Window(keys, -5, 99, 25); got != 2 {
		t.Errorf("Window with out-of-range bounds = %d, want 2", got)
	}
	if got := Window(keys, 0, 99, 99); got != 3 {
		t.Errorf("Window past end = %d, want 3", got)
	}
	if got := Window(nil, 0, 0, uint64(5)); got != 0 {
		t.Errorf("Window on empty = %d, want 0", got)
	}
}

func TestInterpolationCapped(t *testing.T) {
	// Heavily skewed data forces many IS iterations; the cap must kick in
	// and still return the correct answer via the binary fallback.
	keys := dataset.MustGenerate(dataset.LogN, 64, 20000, 13)
	rng := rand.New(rand.NewSource(77))
	sawCap := false
	for i := 0; i < 500; i++ {
		q := keys[rng.Intn(len(keys))]
		got, ok := InterpolationCapped(keys, q, 4)
		if !ok {
			sawCap = true
		}
		if want := refLB(keys, q); got != want {
			t.Fatalf("capped IS q=%d: got %d want %d", q, got, want)
		}
	}
	if !sawCap {
		t.Error("expected at least one capped interpolation search on lognormal data")
	}
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(vals []uint32, q uint32) bool {
		keys := make([]uint64, len(vals))
		for i, v := range vals {
			keys[i] = uint64(v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		want := kv.LowerBound(keys, uint64(q))
		return Binary(keys, uint64(q)) == want &&
			Branchless(keys, uint64(q)) == want &&
			TIP(keys, uint64(q)) == want &&
			Interpolation(keys, uint64(q)) == want &&
			Exponential(keys, len(keys)/3, uint64(q)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUint32Keys(t *testing.T) {
	keys := []uint32{1, 5, 5, 9, 100}
	for _, q := range []uint32{0, 1, 5, 6, 100, 101} {
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= q })
		if got := Binary(keys, q); got != want {
			t.Errorf("Binary[uint32](%d) = %d, want %d", q, got, want)
		}
		if got := TIP(keys, q); got != want {
			t.Errorf("TIP[uint32](%d) = %d, want %d", q, got, want)
		}
	}
}
