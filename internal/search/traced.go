package search

import "repro/internal/kv"

// This file mirrors the search primitives with traced variants that report
// every key access through a touch callback. The memsim experiments (the
// paper's cache-miss measurements, Fig. 2b and Fig. 8) replay these traces
// through the cache simulator; tests assert traced and plain variants
// always return identical results.

// Touch receives one callback per memory access: the byte address and the
// access width.
type Touch func(addr uint64, width int)

// BinaryTraced mirrors Binary.
func BinaryTraced[K kv.Key](keys []K, q K, touch Touch) int {
	return BinaryRangeTraced(keys, 0, len(keys), q, touch)
}

// BinaryRangeTraced mirrors BinaryRange.
func BinaryRangeTraced[K kv.Key](keys []K, lo, hi int, q K, touch Touch) int {
	w := kv.Width[K]()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		touch(kv.Addr(keys, mid), w)
		if keys[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LinearRangeTraced mirrors LinearRange.
func LinearRangeTraced[K kv.Key](keys []K, lo, hi int, q K, touch Touch) int {
	w := kv.Width[K]()
	for lo < hi {
		touch(kv.Addr(keys, lo), w)
		if keys[lo] >= q {
			break
		}
		lo++
	}
	return lo
}

// LinearFromTraced mirrors LinearFrom.
func LinearFromTraced[K kv.Key](keys []K, pos int, q K, touch Touch) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	w := kv.Width[K]()
	pos = kv.Clamp(pos, 0, n-1)
	touch(kv.Addr(keys, pos), w)
	if keys[pos] < q {
		for pos < n {
			touch(kv.Addr(keys, pos), w)
			if keys[pos] >= q {
				break
			}
			pos++
		}
		return pos
	}
	for pos > 0 {
		touch(kv.Addr(keys, pos-1), w)
		if keys[pos-1] < q {
			break
		}
		pos--
	}
	return pos
}

// ExponentialTraced mirrors Exponential.
func ExponentialTraced[K kv.Key](keys []K, pos int, q K, touch Touch) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	w := kv.Width[K]()
	pos = kv.Clamp(pos, 0, n-1)
	touch(kv.Addr(keys, pos), w)
	if keys[pos] < q {
		bound := 1
		for pos+bound < n {
			touch(kv.Addr(keys, pos+bound), w)
			if keys[pos+bound] >= q {
				break
			}
			bound <<= 1
		}
		lo := pos + bound>>1 + 1
		hi := pos + bound
		if hi > n {
			hi = n
		}
		return BinaryRangeTraced(keys, lo, hi, q, touch)
	}
	bound := 1
	for pos-bound >= 0 {
		touch(kv.Addr(keys, pos-bound), w)
		if keys[pos-bound] < q {
			break
		}
		bound <<= 1
	}
	hi := pos - bound>>1
	lo := pos - bound + 1
	if lo < 0 {
		lo = 0
	}
	return BinaryRangeTraced(keys, lo, hi, q, touch)
}

// WindowTraced mirrors Window (the Alg. 1 local-search policy).
func WindowTraced[K kv.Key](keys []K, lo, hi int, q K, touch Touch) int {
	n := len(keys)
	lo = kv.Clamp(lo, 0, n)
	if hi >= n-1 {
		hi = n - 1
	}
	end := hi + 1
	if end > n {
		end = n
	}
	if end-lo <= WindowThreshold {
		return LinearRangeTraced(keys, lo, end, q, touch)
	}
	return BinaryRangeTraced(keys, lo, end, q, touch)
}
