package search

import (
	"math"

	"repro/internal/kv"
)

// This file adapts the package's on-the-fly lower-bound searches — which
// build no auxiliary structure at all — to the repository-wide index
// contract of internal/index (Find/Len/Name/SizeBytes plus optional
// capabilities). They are the "on-the-fly" columns of the paper's Table 2:
// binary search (BS), three-point interpolation (TIP), and classic
// interpolation search (IS), each serving queries straight off the shared
// sorted key slice.

// OnTheFly is the common state of the zero-build index views: a shared
// (not copied) sorted key slice.
type OnTheFly[K kv.Key] struct {
	keys []K
}

// Len returns the number of indexed keys.
func (o *OnTheFly[K]) Len() int { return len(o.keys) }

// SizeBytes is zero: on-the-fly methods keep no structure beyond the data.
func (o *OnTheFly[K]) SizeBytes() int { return 0 }

// findRange locates the half-open position range of the inclusive key
// range [a, b] with two lower-bound searches through find.
func (o *OnTheFly[K]) findRange(find func(K) int, a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = find(a)
	if b == kv.MaxKey[K]() {
		return first, len(o.keys)
	}
	return first, find(b + 1)
}

// BinarySearch is whole-array binary search (BS) as an index backend.
type BinarySearch[K kv.Key] struct{ OnTheFly[K] }

// NewBinarySearch returns a BS view over sorted keys.
func NewBinarySearch[K kv.Key](keys []K) *BinarySearch[K] {
	return &BinarySearch[K]{OnTheFly[K]{keys}}
}

// Find returns the lower-bound rank of q.
func (s *BinarySearch[K]) Find(q K) int { return Binary(s.keys, q) }

// Name identifies the backend in benchmark output.
func (s *BinarySearch[K]) Name() string { return "BS" }

// TraceFind replays Find through a touch callback for the cache simulator.
func (s *BinarySearch[K]) TraceFind(q K, touch Touch) int {
	return BinaryTraced(s.keys, q, touch)
}

// FindRange returns the half-open position range of keys in [a, b].
func (s *BinarySearch[K]) FindRange(a, b K) (first, last int) {
	return s.findRange(s.Find, a, b)
}

// EstimateNs implements the index CostEstimator capability: binary search
// over the whole array is exactly what the L(s) micro-benchmark measures
// at window size N (§2.3).
func (s *BinarySearch[K]) EstimateNs(l func(s int) float64) float64 {
	if len(s.keys) == 0 {
		return 0
	}
	return l(len(s.keys))
}

// TIPSearch is three-point interpolation search as an index backend.
type TIPSearch[K kv.Key] struct{ OnTheFly[K] }

// NewTIPSearch returns a TIP view over sorted keys.
func NewTIPSearch[K kv.Key](keys []K) *TIPSearch[K] {
	return &TIPSearch[K]{OnTheFly[K]{keys}}
}

// Find returns the lower-bound rank of q.
func (s *TIPSearch[K]) Find(q K) int { return TIP(s.keys, q) }

// Name identifies the backend in benchmark output.
func (s *TIPSearch[K]) Name() string { return "TIP" }

// FindRange returns the half-open position range of keys in [a, b].
func (s *TIPSearch[K]) FindRange(a, b K) (first, last int) {
	return s.findRange(s.Find, a, b)
}

// InterpolationSearch is classic interpolation search (IS) as an index
// backend. Its applicability check (the paper's "takes too much time"
// N/A policy) lives with the registry, which calibrates Capped on a
// sample before selecting it.
type InterpolationSearch[K kv.Key] struct{ OnTheFly[K] }

// NewInterpolationSearch returns an IS view over sorted keys.
func NewInterpolationSearch[K kv.Key](keys []K) *InterpolationSearch[K] {
	return &InterpolationSearch[K]{OnTheFly[K]{keys}}
}

// Find returns the lower-bound rank of q.
func (s *InterpolationSearch[K]) Find(q K) int { return Interpolation(s.keys, q) }

// Name identifies the backend in benchmark output.
func (s *InterpolationSearch[K]) Name() string { return "IS" }

// FindRange returns the half-open position range of keys in [a, b].
func (s *InterpolationSearch[K]) FindRange(a, b K) (first, last int) {
	return s.findRange(s.Find, a, b)
}

// Capped reports whether interpolation search answers q within maxIter
// probes; the registry's N/A calibration uses it.
func (s *InterpolationSearch[K]) Capped(q K, maxIter int) bool {
	_, ok := InterpolationCapped(s.keys, q, maxIter)
	return ok
}

// Log2N returns log2 of a count, the expected probe depth of binary
// search; shared by cost estimates in this package and the backends.
func Log2N(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}
