package search

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func nop(uint64, int) {}

func TestTracedVariantsMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := dataset.MustGenerate(dataset.Wiki, 64, 4000, 9)
	n := len(keys)
	for i := 0; i < 3000; i++ {
		q := rng.Uint64() % (keys[n-1] + 3)
		pos := rng.Intn(n)
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		if got, want := BinaryTraced(keys, q, nop), Binary(keys, q); got != want {
			t.Fatalf("BinaryTraced(%d) = %d, want %d", q, got, want)
		}
		if got, want := BinaryRangeTraced(keys, lo, hi, q, nop), BinaryRange(keys, lo, hi, q); got != want {
			t.Fatalf("BinaryRangeTraced(%d,[%d,%d)) = %d, want %d", q, lo, hi, got, want)
		}
		if got, want := LinearRangeTraced(keys, lo, hi, q, nop), LinearRange(keys, lo, hi, q); got != want {
			t.Fatalf("LinearRangeTraced mismatch")
		}
		if got, want := LinearFromTraced(keys, pos, q, nop), LinearFrom(keys, pos, q); got != want {
			t.Fatalf("LinearFromTraced(pos=%d, q=%d) = %d, want %d", pos, q, got, want)
		}
		if got, want := ExponentialTraced(keys, pos, q, nop), Exponential(keys, pos, q); got != want {
			t.Fatalf("ExponentialTraced(pos=%d, q=%d) = %d, want %d", pos, q, got, want)
		}
		wl := rng.Intn(40)
		if got, want := WindowTraced(keys, lo, lo+wl, q, nop), Window(keys, lo, lo+wl, q); got != want {
			t.Fatalf("WindowTraced mismatch")
		}
	}
}

func TestTracedTouchCounts(t *testing.T) {
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i)
	}
	count := 0
	BinaryTraced(keys, 700, func(uint64, int) { count++ })
	if count != 10 { // log2(1024)
		t.Errorf("binary over 1024 keys should touch 10 slots, got %d", count)
	}
	count = 0
	LinearRangeTraced(keys, 100, 200, 105, func(uint64, int) { count++ })
	if count != 6 {
		t.Errorf("linear scan 100→105 should touch 6 slots, got %d", count)
	}
}
