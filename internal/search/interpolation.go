package search

import "repro/internal/kv"

// Interpolation is classic interpolation search (Peterson [33]; the paper's
// "IS" baseline): each iteration probes the linearly interpolated position
// between the range endpoints. O(log log n) expected on uniform data but up
// to O(n) on skewed data, which is why the paper reports it as N/A (too
// slow) on the lognormal and osmc datasets.
func Interpolation[K kv.Key](keys []K, q K) int {
	pos, _ := InterpolationCapped(keys, q, 0)
	return pos
}

// InterpolationCapped is Interpolation with an iteration budget. A maxIter
// of 0 means unlimited. The boolean result reports whether the search
// finished within budget; when false, the caller should treat the algorithm
// as "N/A, takes too much time" the way the paper's Table 2 does (it still
// returns the correct position by falling back to binary search).
func InterpolationCapped[K kv.Key](keys []K, q K, maxIter int) (int, bool) {
	n := len(keys)
	if n == 0 {
		return 0, true
	}
	if q > keys[n-1] {
		return n, true
	}
	lo, hi := 0, n-1
	// Invariant: keys[hi] >= q and the answer is in [lo, hi].
	iters := 0
	for lo < hi {
		if q <= keys[lo] {
			return lo, true
		}
		if keys[lo] == keys[hi] {
			// Flat range with keys[hi] >= q: every slot equals keys[hi].
			return lo, true
		}
		if maxIter > 0 && iters >= maxIter {
			return BinaryRange(keys, lo, hi+1, q), false
		}
		iters++
		frac := float64(q-keys[lo]) / float64(keys[hi]-keys[lo])
		mid := lo + int(frac*float64(hi-lo))
		if mid >= hi {
			mid = hi - 1
		}
		if mid < lo {
			mid = lo
		}
		if keys[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, true
}

// TIP is three-point interpolation search (Van Sandt et al. [40]; the
// paper's "TIP" baseline). Instead of the linear interpolant of IS it fits
// an inverse quadratic through three bracketing samples, which tracks
// non-linear CDFs far better; probes that fall outside the bracket or make
// insufficient progress fall back to bisection, bounding the worst case at
// O(log n).
func TIP[K kv.Key](keys []K, q K) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	if q > keys[n-1] {
		return n
	}
	if q <= keys[0] {
		return 0
	}
	lo, hi := 0, n-1
	mid := int(uint(lo+hi) >> 1)
	// Invariant: keys[hi] >= q, keys[lo] < q, answer in (lo, hi].
	for hi-lo > 1 {
		var probe int
		if keys[lo] < keys[mid] && keys[mid] < keys[hi] && mid > lo && mid < hi {
			probe = inverseQuadratic(keys, lo, mid, hi, q)
		} else {
			probe = int(uint(lo+hi) >> 1)
		}
		// Keep the probe strictly inside the bracket so progress is
		// guaranteed; degenerate estimates become bisection steps.
		if probe <= lo || probe >= hi {
			probe = int(uint(lo+hi) >> 1)
		}
		if keys[probe] < q {
			lo = probe
		} else {
			hi = probe
		}
		mid = probe
		if mid <= lo || mid >= hi {
			mid = int(uint(lo+hi) >> 1)
		}
	}
	// keys[hi] >= q and keys[lo] < q: hi is the lower bound within this
	// bracket, but duplicates of keys[hi] may extend to the left of hi.
	return leftmostEqual(keys, hi, q)
}

// inverseQuadratic evaluates the Lagrange inverse-quadratic interpolant
// through (keys[a], a), (keys[b], b), (keys[c], c) at q, i.e. it estimates
// position as a function of key using three points.
func inverseQuadratic[K kv.Key](keys []K, a, b, c int, q K) int {
	fa, fb, fc := float64(keys[a]), float64(keys[b]), float64(keys[c])
	x := float64(q)
	den1 := (fa - fb) * (fa - fc)
	den2 := (fb - fa) * (fb - fc)
	den3 := (fc - fa) * (fc - fb)
	if den1 == 0 || den2 == 0 || den3 == 0 {
		return (a + c) / 2
	}
	est := float64(a)*(x-fb)*(x-fc)/den1 +
		float64(b)*(x-fa)*(x-fc)/den2 +
		float64(c)*(x-fa)*(x-fb)/den3
	if est != est { // NaN guard
		return (a + c) / 2
	}
	return int(est)
}

// leftmostEqual walks left from a known lower-bound candidate across a run
// of keys equal to keys[pos] >= q, returning true lower-bound semantics.
func leftmostEqual[K kv.Key](keys []K, pos int, q K) int {
	for pos > 0 && keys[pos-1] >= q {
		pos--
	}
	return pos
}
