// Package search implements the on-the-fly search algorithms the paper uses
// both as baselines (Table 2: BS, IS, TIP) and as the "last-mile" local
// search of a learned index (§2.1, Fig. 1a: linear, binary, exponential).
//
// Every function returns lower-bound semantics: the smallest index i in
// [0, len(keys)] with keys[i] >= q. All are property-tested against
// kv.LowerBound.
package search

import "repro/internal/kv"

// Binary is the classic branchy binary search over the whole array (the
// paper's "BS" baseline, STL-style lower_bound).
func Binary[K kv.Key](keys []K, q K) int {
	return BinaryRange(keys, 0, len(keys), q)
}

// BinaryRange is lower_bound restricted to the half-open index range
// [lo, hi). It returns a value in [lo, hi]: hi means no key in the range is
// >= q. It is the bounded local search used when a Shift-Table provides a
// guaranteed window (§3.8).
func BinaryRange[K kv.Key](keys []K, lo, hi int, q K) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Branchless is a branch-free lower_bound: each step halves the candidate
// range with a conditional add rather than a taken/not-taken branch, the
// standard trick for avoiding branch mispredictions on uniform queries.
func Branchless[K kv.Key](keys []K, q K) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	lo := 0
	for n > 1 {
		half := n >> 1
		if keys[lo+half-1] < q {
			lo += half
		}
		n -= half
	}
	if keys[lo] < q {
		lo++
	}
	return lo
}

// LinearFrom performs the paper's linear local search (Fig. 1a): starting
// from a predicted position it scans towards the true position, in either
// direction. pos is clamped into [0, len(keys)-1].
func LinearFrom[K kv.Key](keys []K, pos int, q K) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	pos = kv.Clamp(pos, 0, n-1)
	if keys[pos] < q {
		for pos < n && keys[pos] < q {
			pos++
		}
		return pos
	}
	for pos > 0 && keys[pos-1] >= q {
		pos--
	}
	return pos
}

// LinearRange scans the window [lo, hi) left to right and returns the first
// index with keys[i] >= q, or hi if none. It is the local search the paper
// selects when the Shift-Table window is below the linear-to-binary
// threshold (Alg. 1).
func LinearRange[K kv.Key](keys []K, lo, hi int, q K) int {
	for lo < hi && keys[lo] < q {
		lo++
	}
	return lo
}

// Exponential performs unbounded exponential (galloping) search from a
// predicted position (Bentley & Yao [3]; the paper's local search of choice
// when no guaranteed window is available, §3.8). pos is clamped into the
// array.
func Exponential[K kv.Key](keys []K, pos int, q K) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	pos = kv.Clamp(pos, 0, n-1)
	if keys[pos] < q {
		// Gallop right: widen until keys[pos+bound] >= q or the end.
		bound := 1
		for pos+bound < n && keys[pos+bound] < q {
			bound <<= 1
		}
		lo := pos + bound>>1 + 1
		hi := pos + bound
		if hi > n {
			hi = n
		}
		return BinaryRange(keys, lo, hi, q)
	}
	// Gallop left: widen until keys[pos-bound] < q or the start.
	bound := 1
	for pos-bound >= 0 && keys[pos-bound] >= q {
		bound <<= 1
	}
	hi := pos - bound>>1
	lo := pos - bound + 1
	if lo < 0 {
		lo = 0
	}
	return BinaryRange(keys, lo, hi, q)
}

// WindowThreshold is the linear-to-binary local search threshold from the
// paper's Alg. 1 (§3.8: "We do linear search if the range is smaller than a
// threshold (8 keys, in our experiments)").
const WindowThreshold = 8

// Window searches the inclusive window [lo, hi] with the paper's Alg. 1
// policy: linear search for short windows, binary otherwise. Like the other
// functions it returns lower-bound semantics over [lo, hi+1]; the caller
// guarantees the answer lies there (§3.1: the result is within the range or
// at the position just after it).
func Window[K kv.Key](keys []K, lo, hi int, q K) int {
	n := len(keys)
	lo = kv.Clamp(lo, 0, n)
	if hi >= n-1 {
		hi = n - 1
	}
	end := hi + 1 // may search one past the window (§3.1)
	if end > n {
		end = n
	}
	if end-lo <= WindowThreshold {
		return LinearRange(keys, lo, end, q)
	}
	return BinaryRange(keys, lo, end, q)
}
