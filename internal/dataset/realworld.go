package dataset

import (
	"math"
	"math/rand"
)

// This file holds the offline stand-ins for the paper's four real-world SOSD
// datasets. Each generator reproduces the structural property the paper
// identifies as decisive (§2.4): a macro CDF that closely matches a smooth
// distribution while the micro-level ("zoomed-in") CDF is jagged and
// unpredictable, so small cache-resident models cannot fit it accurately.

// genFace simulates Facebook user IDs: a near-uniform macro distribution
// produced by a heavy-tailed mixture of gaps — dense allocation runs, medium
// gaps, and rare huge gaps (deleted/reserved ID ranges). Matches the paper's
// observation that face closely tracks a uniform CDF yet is far harder to
// model than uden/uspr.
func genFace(rng *rand.Rand, n int, domain uint64) []uint64 {
	// Target mean gap leaves 10% headroom at the top of the domain. The
	// mixture below has mean ≈ 237.2·g, so scale the unit g accordingly.
	target := float64(domain) / float64(n+1) * 0.9
	g := target / 237.2
	if g < 1 {
		g = 1
	}
	gaps := make([]float64, n)
	for i := range gaps {
		r := rng.Float64()
		switch {
		case r < 0.80: // dense run: tiny gaps
			gaps[i] = 1 + rng.Float64()*(2*g-1)
		case r < 0.95: // medium gap
			gaps[i] = g * (16 + rng.Float64()*48)
		default: // huge gap: deleted / reserved range
			gaps[i] = g * (1024 + rng.Float64()*7168)
		}
	}
	return fromGaps(gaps, domain)
}

// genAmzn simulates Amazon sales-rank data: Pareto-distributed gaps (a few
// items dominate sales, ranks thin out down the tail) interleaved with
// plateaus of near-consecutive ranks (clusters of similar titles). The macro
// CDF is smooth power-law-ish; the micro CDF alternates between flats and
// jumps.
func genAmzn(rng *rand.Rand, n int, domain uint64) []uint64 {
	const alpha = 1.5 // Pareto shape; mean = alpha/(alpha-1)·xm = 3·xm
	target := float64(domain) / float64(n+1) * 0.9
	xm := target / 3
	if xm < 1 {
		xm = 1
	}
	gaps := make([]float64, 0, n)
	for len(gaps) < n {
		if rng.Float64() < 0.02 {
			// Best-seller cluster: a short run of almost-consecutive ranks.
			run := 2 + rng.Intn(49)
			for j := 0; j < run && len(gaps) < n; j++ {
				gaps = append(gaps, 1+rng.Float64()*3)
			}
			continue
		}
		gaps = append(gaps, pareto(rng, xm, alpha))
	}
	return fromGaps(gaps, domain)
}

// genOsmc simulates OpenStreetMap cell IDs: 2D locations drawn from a
// multi-scale Gaussian cluster mixture (cities within regions) and encoded
// as Morton (Z-order) cell IDs, giving the hierarchical clustered structure
// of spatial cell identifiers.
func genOsmc(rng *rand.Rand, n int, bits int) []uint64 {
	clusters := n / 2000
	if clusters < 4 {
		clusters = 4
	}
	type cluster struct {
		cx, cy, sigma float64
	}
	cs := make([]cluster, clusters)
	for i := range cs {
		cs[i] = cluster{
			cx: rng.Float64(),
			cy: rng.Float64(),
			// Multi-scale spread: lognormal sigma spanning villages to regions.
			sigma: math.Exp(rng.NormFloat64()*1.5 - 6),
		}
	}
	half := uint(bits / 2)
	maxCoord := (uint64(1) << half) - 1
	keys := make([]uint64, n)
	for i := range keys {
		c := cs[rng.Intn(clusters)]
		x := wrap01(c.cx + rng.NormFloat64()*c.sigma)
		y := wrap01(c.cy + rng.NormFloat64()*c.sigma)
		xi := uint64(x * float64(maxCoord))
		yi := uint64(y * float64(maxCoord))
		keys[i] = mortonInterleave(xi, yi, half)
	}
	return keys
}

// genWiki simulates Wikipedia edit timestamps: arrivals from a
// non-homogeneous Poisson process with diurnal and weekly cycles plus burst
// events, recorded at one-second granularity. Multiple edits in the same
// second yield duplicate keys, as in the real dataset (§3.2).
func genWiki(rng *rand.Rand, n int, domain uint64) []uint64 {
	const (
		day  = 86400.0
		week = 7 * day
	)
	base := uint64(1_100_000_000) // a 2004-ish epoch, as in the Wikipedia dump
	if base > domain/2 {
		base = domain / 2
	}
	keys := make([]uint64, 0, n)
	burstLeft := 0
	burstMult := 1.0
	for t := 0.0; len(keys) < n; t++ {
		if burstLeft > 0 {
			burstLeft--
		} else {
			burstMult = 1.0
			if rng.Float64() < 1.0/5000 {
				// A vandalism war or breaking-news burst.
				burstLeft = 60 + rng.Intn(540)
				burstMult = 20.0
			}
		}
		lambda := 1.0 *
			(1 + 0.5*math.Sin(2*math.Pi*t/day)) *
			(1 + 0.3*math.Sin(2*math.Pi*t/week)) *
			burstMult
		k := poisson(rng, lambda)
		ts := base + uint64(t)
		if ts > domain {
			ts = domain
		}
		for j := 0; j < k && len(keys) < n; j++ {
			keys = append(keys, ts)
		}
	}
	return keys
}

// fromGaps turns a slice of positive float gaps into strictly increasing
// keys, rescaling uniformly if the cumulative sum would overflow the domain.
// Rescaling preserves the relative gap structure — the micro-level variance
// the generators exist to produce.
func fromGaps(gaps []float64, domain uint64) []uint64 {
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	scale := 1.0
	if limit := 0.95 * float64(domain); sum > limit {
		scale = limit / sum
	}
	keys := make([]uint64, len(gaps))
	cur := 0.0
	var prev uint64
	for i, g := range gaps {
		cur += g * scale
		k := uint64(cur)
		if i > 0 && k <= prev {
			k = prev + 1
		}
		if k > domain {
			k = domain
		}
		keys[i] = k
		prev = k
	}
	return keys
}

// wrap01 reflects v into [0, 1).
func wrap01(v float64) float64 {
	v = math.Mod(v, 2)
	if v < 0 {
		v += 2
	}
	if v >= 1 {
		v = 2 - v
	}
	if v >= 1 { // v was exactly 1 after reflection
		v = math.Nextafter(1, 0)
	}
	return v
}
