package dataset

import (
	"math"
	"math/rand"
	"sort"
)

// Piecewise composes a key space out of qualitatively different segments —
// a smooth dense run (a linear CDF any interpolation model nails), a
// drift-heavy lognormal run (the §2.4 unpredictability a Shift-Table
// repays), and long duplicate runs (the congestion case of §3.6 where
// even a corrected window stays wide) — laid out in disjoint increasing
// key ranges. No homogeneous backend serves the whole array well; the
// range-partitioned hybrid router (internal/router) is built for exactly
// this shape and should pick a different backend per region.
//
// Generation is deterministic in seed; keys are sorted and 64-bit.
func Piecewise(n int, seed int64) []uint64 {
	if n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	third := n / 3
	keys := make([]uint64, 0, n)

	// Segment 1 — smooth: dense near-arithmetic keys with tiny jitter.
	// CDF is a clean line; a bare interpolation model has ~zero error.
	const smoothBase = uint64(1) << 20
	for i := 0; i < third; i++ {
		keys = append(keys, smoothBase+uint64(i)*64+uint64(rng.Intn(8)))
	}

	// Segment 2 — drifted: lognormal offsets produce a smooth macro CDF
	// with heavy local variance (cluster gaps), the regime where a model
	// alone drifts by thousands of records.
	driftBase := smoothBase + uint64(third)*64 + (uint64(1) << 30)
	seg := make([]uint64, third)
	for i := range seg {
		v := math.Exp(rng.NormFloat64()*2.0) * float64(uint64(1)<<28)
		if v < 0 {
			v = 0
		}
		if v > float64(uint64(1)<<40) {
			v = float64(uint64(1) << 40)
		}
		seg[i] = driftBase + uint64(v)
	}
	sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	keys = append(keys, seg...)

	// Segment 3 — duplicates: few distinct values in long runs (think
	// categorical columns or timestamp buckets).
	dupBase := driftBase + (uint64(1) << 41)
	v := dupBase
	for len(keys) < n {
		run := 64 + rng.Intn(192)
		if run > n-len(keys) {
			run = n - len(keys)
		}
		for j := 0; j < run; j++ {
			keys = append(keys, v)
		}
		v += 1 + uint64(rng.Intn(1<<16))
	}
	return keys
}
