package dataset

import (
	"math"
	"math/rand"
)

// genUDen generates dense uniform integers: consecutive keys from a random
// base. This mirrors the property SOSD's uden exhibits and the paper relies
// on (§2.4, Table 2): the CDF is an exact line, so a two-parameter linear
// model fits it with near-zero error and no correction layer is needed.
func genUDen(rng *rand.Rand, n int, domain uint64) []uint64 {
	headroom := domain - uint64(n)
	base := uint64(rng.Int63n(int64(min64(headroom, 1<<40)) + 1))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = base + uint64(i)
	}
	return keys
}

// genUSpr generates sparse uniform integers: n draws from the full key
// domain. Macro-uniform like uden, but the i.i.d. gaps give it the local
// variance that makes it "significantly harder" for a plain model (§3.6).
func genUSpr(rng *rand.Rand, n int, domain uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = randUint64n(rng, domain)
	}
	sortAndDistinct(keys, domain)
	return keys
}

// genNorm generates keys from a normal distribution centred in the domain.
// Tail samples clamp to the domain edges and would collide there; the
// paper's norm datasets are duplicate-free (ART runs on them in Table 2),
// so edge collisions are nudged apart.
func genNorm(rng *rand.Rand, n int, domain uint64) []uint64 {
	mean := float64(domain) / 2
	sd := float64(domain) / 8
	// Clamp tails with n of headroom below the domain ceiling, so the
	// distinctness nudge in sortAndDistinct can never saturate.
	ceil := domain - uint64(n)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = clampF(rng.NormFloat64()*sd+mean, ceil)
	}
	sortAndDistinct(keys, domain)
	return keys
}

// genLogN generates keys from the paper's lognormal(0, 2) distribution,
// scaled so the +4.5σ quantile maps to the top of the domain. The extreme
// skew concentrates most keys in a tiny prefix of the domain; with 32-bit
// quantisation this produces heavy duplication at the low end, which is why
// the paper marks ART as N/A on logn32 but not on logn64 — at 64 bits the
// quantisation is fine enough that keys stay distinct (enforced here, as
// the low tail would otherwise collapse onto 0).
func genLogN(rng *rand.Rand, n int, domain uint64, bits int) []uint64 {
	scale := float64(domain) / math.Exp(2*4.5)
	ceil := domain
	if bits == 64 {
		ceil -= uint64(n) // headroom for the distinctness nudge
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = clampF(math.Exp(2*rng.NormFloat64())*scale, ceil)
	}
	if bits == 64 {
		sortAndDistinct(keys, domain)
	}
	return keys
}

// sortAndDistinct sorts keys in place and nudges exact duplicates upward so
// the result is strictly increasing (except, at worst, saturated at the top
// of the domain). Used by generators whose real-world counterparts hold
// distinct keys.
func sortAndDistinct(keys []uint64, domain uint64) {
	insertionOrHeapSort(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			if keys[i-1] == domain {
				keys[i] = domain
			} else {
				keys[i] = keys[i-1] + 1
			}
		}
	}
}

// insertionOrHeapSort sorts the slice; generators call it before the final
// sort in Generate, so correctness (not speed) is all that matters here, but
// large datasets make an O(n log n) in-place sort worthwhile.
func insertionOrHeapSort(keys []uint64) {
	// Bottom-up heapsort: no allocation, O(n log n) worst case.
	n := len(keys)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(keys, i, n)
	}
	for end := n - 1; end > 0; end-- {
		keys[0], keys[end] = keys[end], keys[0]
		siftDown(keys, 0, end)
	}
}

func siftDown(keys []uint64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && keys[child+1] > keys[child] {
			child++
		}
		if keys[root] >= keys[child] {
			return
		}
		keys[root], keys[child] = keys[child], keys[root]
		root = child
	}
}

// clampF rounds a float sample into the key domain.
func clampF(v float64, domain uint64) uint64 {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if v >= float64(domain) {
		return domain
	}
	return uint64(v)
}

// randUint64n draws a uniform value in [0, bound] (inclusive).
func randUint64n(rng *rand.Rand, bound uint64) uint64 {
	if bound == math.MaxUint64 {
		return rng.Uint64()
	}
	return rng.Uint64() % (bound + 1)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
