package dataset

import (
	"math"
	"path/filepath"
	"testing"
)

const testN = 20000

func TestGenerateAllSortedAndInDomain(t *testing.T) {
	for _, name := range Names {
		for _, bits := range []int{32, 64} {
			t.Run(Spec{name, bits}.String(), func(t *testing.T) {
				keys, err := Generate(name, bits, testN, 42)
				if err != nil {
					t.Fatal(err)
				}
				if len(keys) != testN {
					t.Fatalf("got %d keys, want %d", len(keys), testN)
				}
				domain := DomainMax(bits)
				for i, k := range keys {
					if k > domain {
						t.Fatalf("key[%d]=%d exceeds %d-bit domain", i, k, bits)
					}
					if i > 0 && k < keys[i-1] {
						t.Fatalf("keys not sorted at %d: %d < %d", i, k, keys[i-1])
					}
				}
			})
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range Names {
		a := MustGenerate(name, 64, 5000, 7)
		b := MustGenerate(name, 64, 5000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %d", name, i)
			}
		}
		c := MustGenerate(name, 64, 5000, 8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same && name != UDen { // uden differs only in base; may rarely collide
			t.Errorf("%s: different seeds produced identical data", name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(UDen, 16, 10, 1); err == nil {
		t.Error("want error for unsupported bit width")
	}
	if _, err := Generate(Name("nope"), 64, 10, 1); err == nil {
		t.Error("want error for unknown distribution")
	}
	if _, err := Generate(UDen, 64, -1, 1); err == nil {
		t.Error("want error for negative size")
	}
	if keys, err := Generate(UDen, 64, 0, 1); err != nil || len(keys) != 0 {
		t.Error("zero-size generation should succeed with empty result")
	}
}

func TestUDenIsConsecutive(t *testing.T) {
	keys := MustGenerate(UDen, 64, 1000, 3)
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1]+1 {
			t.Fatalf("uden gap at %d: %d -> %d", i-1, keys[i-1], keys[i])
		}
	}
}

func TestUSprDistinct(t *testing.T) {
	keys := MustGenerate(USpr, 32, testN, 3)
	d, _ := DupStats(keys)
	if d != testN {
		t.Errorf("uspr32 has %d distinct of %d; want all distinct", d, testN)
	}
}

func TestWikiHasDuplicates(t *testing.T) {
	keys := MustGenerate(Wiki, 64, testN, 3)
	d, maxRun := DupStats(keys)
	if d == testN {
		t.Error("wiki should contain duplicate timestamps")
	}
	if maxRun < 2 {
		t.Error("wiki should contain duplicate runs")
	}
}

func TestLogN32HeavySkew(t *testing.T) {
	keys := MustGenerate(LogN, 32, testN, 3)
	// Most of a lognormal(0,2) sits far below the +4.5 sigma scale point:
	// the median key must be in the bottom few percent of the domain.
	median := keys[len(keys)/2]
	if float64(median) > 0.05*float64(DomainMax(32)) {
		t.Errorf("logn32 median %d too high for heavy skew", median)
	}
}

// localVariance computes the mean squared deviation of per-gap sizes from
// the running-window mean gap, normalised by the global mean gap: a scale-
// free measure of the micro-level jaggedness the paper discusses in §2.4.
func localVariance(keys []uint64) float64 {
	const w = 64
	if len(keys) < 2*w {
		return 0
	}
	gaps := make([]float64, len(keys)-1)
	var mean float64
	for i := range gaps {
		gaps[i] = float64(keys[i+1] - keys[i])
		mean += gaps[i]
	}
	mean /= float64(len(gaps))
	if mean == 0 {
		return 0
	}
	var acc float64
	var cnt int
	for i := w; i+w < len(gaps); i += w {
		var lm float64
		for j := i; j < i+w; j++ {
			lm += gaps[j]
		}
		lm /= w
		for j := i; j < i+w; j++ {
			d := (gaps[j] - lm) / mean
			acc += d * d
		}
		cnt += w
	}
	return acc / float64(cnt)
}

func TestRealWorldHasHigherLocalVarianceThanUDen(t *testing.T) {
	uden := localVariance(MustGenerate(UDen, 64, testN, 5))
	for _, name := range []Name{Face, Amzn, Osmc} {
		rv := localVariance(MustGenerate(name, 64, testN, 5))
		if rv <= uden {
			t.Errorf("%s local variance %.3f not above uden %.3f", name, rv, uden)
		}
	}
}

func TestFaceMacroUniform(t *testing.T) {
	// The face CDF must track a straight line at macro scale: the key at
	// every decile should be within 15%% of the linear interpolation between
	// min and max.
	keys := MustGenerate(Face, 64, testN, 9)
	lo, hi := float64(keys[0]), float64(keys[len(keys)-1])
	for d := 1; d < 10; d++ {
		got := float64(keys[len(keys)*d/10])
		want := lo + (hi-lo)*float64(d)/10
		if math.Abs(got-want) > 0.15*(hi-lo) {
			t.Errorf("face decile %d: key %.3g deviates from linear %.3g", d, got, want)
		}
	}
}

func TestU32RoundTrip(t *testing.T) {
	keys := MustGenerate(Face, 32, 1000, 3)
	u := U32(keys)
	for i := range keys {
		if uint64(u[i]) != keys[i] {
			t.Fatalf("U32 mismatch at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("U32 should panic on overflow")
		}
	}()
	U32([]uint64{math.MaxUint32 + 1})
}

func TestPayloadsDeterministic(t *testing.T) {
	a, b := Payloads(100), Payloads(100)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("payloads nondeterministic")
		}
		if seen[a[i]] {
			t.Fatal("payload collision in tiny range (splitmix64 should be injective)")
		}
		seen[a[i]] = true
	}
}

func TestDupStats(t *testing.T) {
	d, r := DupStats([]uint64{1, 1, 1, 2, 3, 3})
	if d != 3 || r != 3 {
		t.Errorf("DupStats = (%d,%d), want (3,3)", d, r)
	}
	d, r = DupStats(nil)
	if d != 0 || r != 0 {
		t.Errorf("DupStats(nil) = (%d,%d), want (0,0)", d, r)
	}
}

func TestMortonRoundTrip(t *testing.T) {
	for _, c := range []struct{ x, y uint64 }{{0, 0}, {1, 2}, {0xFFFF, 0x1234}, {1 << 31, 1}} {
		m := mortonInterleave(c.x, c.y, 32)
		x, y := mortonDeinterleave(m)
		if x != c.x || y != c.y {
			t.Errorf("morton(%d,%d) round-trip = (%d,%d)", c.x, c.y, x, y)
		}
	}
}

func TestMortonLocality(t *testing.T) {
	// Nearby cells in the same quadrant share high bits: a basic Z-order
	// property the osmc generator depends on.
	a := mortonInterleave(100, 200, 32)
	b := mortonInterleave(101, 200, 32)
	c := mortonInterleave(1<<30, 1<<30, 32)
	if a^b >= 1<<8 {
		t.Error("adjacent cells should differ only in low Morton bits")
	}
	if a^c < 1<<50 {
		t.Error("distant cells should differ in high Morton bits")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := newTestRNG()
	const lambda = 3.5
	var sum int
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-lambda) > 0.1 {
		t.Errorf("poisson mean %.3f, want ~%.1f", mean, lambda)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("poisson of non-positive lambda should be 0")
	}
}

func TestParetoProperties(t *testing.T) {
	rng := newTestRNG()
	for i := 0; i < 1000; i++ {
		v := pareto(rng, 2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("pareto sample %f below scale", v)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, bits := range []int{32, 64} {
		keys := MustGenerate(Face, bits, 1000, 3)
		path := filepath.Join(dir, Spec{Face, bits}.String()+".bin")
		if err := Save(path, keys, bits); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path, bits)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(keys) {
			t.Fatalf("round-trip length %d, want %d", len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("round-trip mismatch at %d", i)
			}
		}
	}
	if err := Save(filepath.Join(dir, "x.bin"), nil, 16); err == nil {
		t.Error("Save should reject width 16")
	}
	if _, err := Load(filepath.Join(dir, "missing.bin"), 64); err == nil {
		t.Error("Load should fail on missing file")
	}
}

func TestTable2SpecsComplete(t *testing.T) {
	if len(Table2) != 14 {
		t.Errorf("Table2 has %d specs, want 14", len(Table2))
	}
	if len(Fig9) != 8 {
		t.Errorf("Fig9 has %d specs, want 8", len(Fig9))
	}
	for _, s := range Table2 {
		if _, err := Generate(s.Name, s.Bits, 100, 1); err != nil {
			t.Errorf("Table2 spec %s cannot generate: %v", s, err)
		}
	}
}

func TestDuplicatePolicyMatchesPaperNAColumns(t *testing.T) {
	// Table 2 runs ART on norm32/64 and logn64 (duplicate-free) but marks
	// it N/A on logn32 (32-bit quantisation duplicates) and wiki64.
	for _, c := range []struct {
		spec     Spec
		wantDups bool
	}{
		{Spec{Norm, 32}, false},
		{Spec{Norm, 64}, false},
		{Spec{LogN, 64}, false},
		{Spec{LogN, 32}, true},
		{Spec{Wiki, 64}, true},
	} {
		keys := MustGenerate(c.spec.Name, c.spec.Bits, 100_000, 3)
		distinct, _ := DupStats(keys)
		gotDups := distinct != len(keys)
		if gotDups != c.wantDups {
			t.Errorf("%s: duplicates=%v, want %v (distinct %d of %d)",
				c.spec, gotDups, c.wantDups, distinct, len(keys))
		}
	}
}
