package dataset

import "math/rand"

// newTestRNG returns a deterministic RNG for statistical tests.
func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(12345)) }
