package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The on-disk format matches SOSD: a little-endian uint64 element count
// followed by the keys, each stored in the dataset's native width. This lets
// cmd tools persist generated datasets and reload them between runs, and
// would let a user drop in the original SOSD files where available.

// Save writes keys to path in SOSD binary format with the given key width.
func Save(path string, keys []uint64, bits int) (err error) {
	if bits != 32 && bits != 64 {
		return fmt.Errorf("dataset: unsupported key width %d", bits)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := binary.Write(w, binary.LittleEndian, uint64(len(keys))); err != nil {
		return err
	}
	var buf [8]byte
	for _, k := range keys {
		if bits == 32 {
			binary.LittleEndian.PutUint32(buf[:4], uint32(k))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		} else {
			binary.LittleEndian.PutUint64(buf[:8], k)
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// Load reads keys from a SOSD binary file with the given key width.
func Load(path string, bits int) ([]uint64, error) {
	if bits != 32 && bits != 64 {
		return nil, fmt.Errorf("dataset: unsupported key width %d", bits)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("dataset: reading count from %s: %w", path, err)
	}
	const maxReasonable = 1 << 33
	if count > maxReasonable {
		return nil, fmt.Errorf("dataset: implausible element count %d in %s", count, path)
	}
	keys := make([]uint64, count)
	var buf [8]byte
	width := bits / 8
	for i := range keys {
		if _, err := io.ReadFull(r, buf[:width]); err != nil {
			return nil, fmt.Errorf("dataset: reading key %d from %s: %w", i, path, err)
		}
		if bits == 32 {
			keys[i] = uint64(binary.LittleEndian.Uint32(buf[:4]))
		} else {
			keys[i] = binary.LittleEndian.Uint64(buf[:8])
		}
	}
	return keys, nil
}
