package dataset

import (
	"math"
	"math/rand"
)

// poisson draws from a Poisson distribution with mean lambda using Knuth's
// multiplication method, adequate for the small rates used by the wiki
// generator (lambda ≲ 40).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10_000 { // safety net against pathological lambda
			return k
		}
	}
}

// pareto draws from a Pareto distribution with scale xm and shape alpha via
// inverse-CDF sampling.
func pareto(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// mortonInterleave interleaves the low `half` bits of x and y into a Z-order
// (Morton) code: bit i of x lands at position 2i, bit i of y at 2i+1.
func mortonInterleave(x, y uint64, half uint) uint64 {
	return spreadBits(x, half) | spreadBits(y, half)<<1
}

// spreadBits spaces out the low `half` bits of v so consecutive bits land
// two positions apart (the classic Morton bit-spreading with magic masks).
func spreadBits(v uint64, half uint) uint64 {
	v &= (1 << half) - 1
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// mortonDeinterleave is the inverse of mortonInterleave; used by tests.
func mortonDeinterleave(m uint64) (x, y uint64) {
	return compactBits(m), compactBits(m >> 1)
}

func compactBits(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}
