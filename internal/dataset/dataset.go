// Package dataset generates the key distributions used by the paper's
// evaluation (§4): the four synthetic SOSD distributions (uden, uspr, norm,
// logn) and offline stand-ins for the four real-world SOSD datasets (face,
// amzn, osmc, wiki).
//
// The real-world datasets are not available offline, so this package
// synthesises distributions that reproduce the property the paper identifies
// as decisive for learned-index performance (§2.4): a smooth macro-level CDF
// with high micro-level unpredictability (local variance, spikes, clustered
// gaps). See DESIGN.md §2 for the substitution rationale.
//
// All generators are deterministic for a given seed, return sorted keys, and
// can target a 32- or 64-bit key domain.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Name identifies one of the paper's key distributions.
type Name string

// The eight distributions from the paper's evaluation (§4, Table 2).
const (
	UDen Name = "uden" // uniformly-generated dense integers
	USpr Name = "uspr" // uniformly-generated sparse integers
	Norm Name = "norm" // normal distribution
	LogN Name = "logn" // lognormal distribution (0, 2)
	Face Name = "face" // Facebook-user-ID-like (simulated; see DESIGN.md §2)
	Amzn Name = "amzn" // Amazon-sales-rank-like (simulated)
	Osmc Name = "osmc" // OpenStreetMap-cell-like (simulated)
	Wiki Name = "wiki" // Wikipedia-edit-timestamp-like (simulated, has duplicates)
)

// Spec names one benchmark dataset: a distribution at a key width.
type Spec struct {
	Name Name
	Bits int // 32 or 64
}

// String formats the spec the way the paper labels datasets, e.g. "face64".
func (s Spec) String() string { return fmt.Sprintf("%s%d", s.Name, s.Bits) }

// Synthetic reports whether the distribution is one of the paper's synthetic
// ones (as opposed to a real-world stand-in).
func (s Spec) Synthetic() bool {
	switch s.Name {
	case UDen, USpr, Norm, LogN:
		return true
	}
	return false
}

// Table2 lists the fourteen datasets of the paper's Table 2, in the paper's
// row order.
var Table2 = []Spec{
	{LogN, 32}, {Norm, 32}, {UDen, 32}, {USpr, 32},
	{LogN, 64}, {Norm, 64}, {UDen, 64}, {USpr, 64},
	{Amzn, 32}, {Face, 32}, {Amzn, 64}, {Face, 64},
	{Osmc, 64}, {Wiki, 64},
}

// Fig9 lists the eight datasets of the paper's Figure 9, in the paper's
// x-axis order.
var Fig9 = []Spec{
	{Amzn, 64}, {Face, 32}, {LogN, 32}, {Norm, 64},
	{Osmc, 64}, {UDen, 32}, {USpr, 32}, {Wiki, 64},
}

// Names lists every distribution.
var Names = []Name{UDen, USpr, Norm, LogN, Face, Amzn, Osmc, Wiki}

// Generate returns n sorted keys from the named distribution, all within the
// domain of the given key width (32 or 64 bits). Generation is deterministic
// in seed. Only Wiki and Amzn may contain duplicates by construction; the
// narrow-domain 32-bit variants of skewed distributions (logn32, norm32) can
// also contain duplicates due to quantisation, as in SOSD.
func Generate(name Name, bits, n int, seed int64) ([]uint64, error) {
	if bits != 32 && bits != 64 {
		return nil, fmt.Errorf("dataset: unsupported key width %d (want 32 or 64)", bits)
	}
	if n < 0 {
		return nil, fmt.Errorf("dataset: negative size %d", n)
	}
	if n == 0 {
		return []uint64{}, nil
	}
	domain := DomainMax(bits)
	rng := rand.New(rand.NewSource(seed ^ int64(len(name))<<32 ^ int64(bits)))
	var keys []uint64
	switch name {
	case UDen:
		keys = genUDen(rng, n, domain)
	case USpr:
		keys = genUSpr(rng, n, domain)
	case Norm:
		keys = genNorm(rng, n, domain)
	case LogN:
		keys = genLogN(rng, n, domain, bits)
	case Face:
		keys = genFace(rng, n, domain)
	case Amzn:
		keys = genAmzn(rng, n, domain)
	case Osmc:
		keys = genOsmc(rng, n, bits)
	case Wiki:
		keys = genWiki(rng, n, domain)
	default:
		return nil, fmt.Errorf("dataset: unknown distribution %q", name)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, nil
}

// MustGenerate is Generate, panicking on error. Intended for benchmarks and
// examples where the spec is a compile-time constant.
func MustGenerate(name Name, bits, n int, seed int64) []uint64 {
	keys, err := Generate(name, bits, n, seed)
	if err != nil {
		panic(err)
	}
	return keys
}

// DomainMax returns the largest representable key for the width.
func DomainMax(bits int) uint64 {
	if bits == 32 {
		return math.MaxUint32
	}
	return math.MaxUint64
}

// U32 narrows 64-bit keys known to fit in 32 bits. It panics if any key does
// not fit: the generators guarantee 32-bit specs stay within the domain, so a
// panic here indicates a bug, not bad input.
func U32(keys []uint64) []uint32 {
	out := make([]uint32, len(keys))
	for i, k := range keys {
		if k > math.MaxUint32 {
			panic(fmt.Sprintf("dataset: key %d exceeds 32-bit domain", k))
		}
		out[i] = uint32(k)
	}
	return out
}

// Payloads returns the per-record 64-bit payloads used by the benchmark: as
// in SOSD, payload i is a deterministic function of the position so that
// result checksums can be validated cheaply.
func Payloads(n int) []uint64 {
	p := make([]uint64, n)
	for i := range p {
		p[i] = splitmix64(uint64(i))
	}
	return p
}

// splitmix64 is the SplitMix64 finaliser; a cheap, high-quality mixing
// function used for payload generation and hashing throughout the package.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DupStats reports the number of distinct keys and the maximum run length of
// duplicates in a sorted key slice.
func DupStats(keys []uint64) (distinct, maxRun int) {
	if len(keys) == 0 {
		return 0, 0
	}
	distinct = 1
	run, maxRun := 1, 1
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			distinct++
			run = 1
		}
	}
	return distinct, maxRun
}
