package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The transcode tests use a synthetic kind: this package cannot import
// the real kind owners (they import it), and the container-level
// properties — byte-stable round trips, prefix rewrites, refusal on
// unknown schemas — are independent of any particular payload. The layer
// transform itself is covered where it lives, in internal/core.

const xcodeKind = "xcode-test"

func init() {
	RegisterTranscodeSchema(xcodeKind, map[uint32]Role{
		1: RoleKeys,
		2: RoleOpaque,
		3: RoleOpaque,
	})
}

// buildXcodeContainer writes a keys+opaque container in the given layout
// version and returns its bytes.
func buildXcodeContainer(t *testing.T, v2 bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var sw *Writer
	var err error
	if v2 {
		sw, err = NewWriterV2(&buf, xcodeKind)
	} else {
		sw, err = NewWriter(&buf, xcodeKind)
	}
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	if err := WriteKeySection(sw, 1, keys); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bytes(2, []byte("opaque payload, identical in both layouts")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bytes(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func transcodeBytes(t *testing.T, src []byte, to uint32) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := Transcode(bytes.NewReader(src), int64(len(src)), &out, to); err != nil {
		t.Fatalf("transcode to v%d: %v", to, err)
	}
	return out.Bytes()
}

// readXcode parses a container and returns its keys and opaque payload,
// verifying the checksum along the way.
func readXcode(t *testing.T, data []byte) ([]uint64, []byte) {
	t.Helper()
	sr, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	ks, err := sr.Expect(1)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := ReadKeySection[uint64](ks, 0)
	if err != nil {
		t.Fatal(err)
	}
	os_, err := sr.Expect(2)
	if err != nil {
		t.Fatal(err)
	}
	opaque, err := os_.Bytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Expect(3); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing section: %v", err)
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	return keys, opaque
}

func TestTranscodeRoundTripByteStable(t *testing.T) {
	v1 := buildXcodeContainer(t, false)
	v2 := buildXcodeContainer(t, true)

	up := transcodeBytes(t, v1, Version2)
	if !bytes.Equal(up, v2) {
		t.Errorf("v1→v2 transcode differs from a natively written v2 container")
	}
	down := transcodeBytes(t, up, Version)
	if !bytes.Equal(down, v1) {
		t.Errorf("v1→v2→v1 round trip is not byte-stable")
	}
	up2 := transcodeBytes(t, transcodeBytes(t, v2, Version), Version2)
	if !bytes.Equal(up2, v2) {
		t.Errorf("v2→v1→v2 round trip is not byte-stable")
	}
	// Rewriting to the source's own version is valid and stable too.
	if got := transcodeBytes(t, v1, Version); !bytes.Equal(got, v1) {
		t.Errorf("v1→v1 rewrite is not byte-stable")
	}
}

func TestTranscodeReadEquivalence(t *testing.T) {
	v1 := buildXcodeContainer(t, false)
	keys1, op1 := readXcode(t, v1)
	keys2, op2 := readXcode(t, transcodeBytes(t, v1, Version2))
	if len(keys1) != len(keys2) {
		t.Fatalf("key count changed: %d vs %d", len(keys1), len(keys2))
	}
	for i := range keys1 {
		if keys1[i] != keys2[i] {
			t.Fatalf("key %d changed: %d vs %d", i, keys1[i], keys2[i])
		}
	}
	if !bytes.Equal(op1, op2) {
		t.Errorf("opaque payload changed across transcode")
	}
}

func TestTranscodeRefusals(t *testing.T) {
	v1 := buildXcodeContainer(t, false)

	if err := Transcode(bytes.NewReader(v1), int64(len(v1)), io.Discard, 3); !errors.Is(err, ErrVersionUnsupported) {
		t.Errorf("transcode to v3: got %v, want ErrVersionUnsupported", err)
	}

	// A kind without a registered schema must refuse, not guess.
	var buf bytes.Buffer
	sw, err := NewWriter(&buf, "unregistered-kind")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Bytes(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	err = Transcode(bytes.NewReader(buf.Bytes()), int64(buf.Len()), io.Discard, Version2)
	if err == nil || !strings.Contains(err.Error(), "no transcode schema") {
		t.Errorf("unregistered kind: got %v", err)
	}

	// A section id outside the schema must refuse.
	buf.Reset()
	sw, err = NewWriter(&buf, xcodeKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Bytes(9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	err = Transcode(bytes.NewReader(buf.Bytes()), int64(buf.Len()), io.Discard, Version2)
	if err == nil || !strings.Contains(err.Error(), "no transcode role") {
		t.Errorf("unknown section id: got %v", err)
	}

	// A corrupt source checksum must fail the transcode even though every
	// section streamed through cleanly.
	bad := append([]byte(nil), v1...)
	bad[len(bad)-9] ^= 0x40 // flip a bit just before the trailing checksum
	err = Transcode(bytes.NewReader(bad), int64(len(bad)), io.Discard, Version2)
	if err == nil {
		t.Errorf("corrupt source transcoded cleanly")
	}

	// Truncations anywhere must error, never panic.
	for cut := 0; cut < len(v1); cut += 37 {
		err := Transcode(bytes.NewReader(v1[:cut]), int64(cut), io.Discard, Version2)
		if err == nil {
			t.Errorf("truncation at %d transcoded cleanly", cut)
		}
	}
}

func TestTranscodeKeyWidthValidation(t *testing.T) {
	v1 := buildXcodeContainer(t, false)
	// The key section starts after magic+version+kindLen+kind and the
	// 16-byte section header; corrupt its width prefix.
	off := 8 + 4 + 4 + len(xcodeKind) + 16
	bad := append([]byte(nil), v1...)
	binary.LittleEndian.PutUint32(bad[off:], 3)
	err := Transcode(bytes.NewReader(bad), int64(len(bad)), io.Discard, Version2)
	if err == nil || !strings.Contains(err.Error(), "key width") {
		t.Errorf("bad key width: got %v", err)
	}
}

func TestTranscodeFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.snap")
	v1 := buildXcodeContainer(t, false)
	if err := os.WriteFile(src, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst.snap")
	if err := TranscodeFile(src, dst, Version2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buildXcodeContainer(t, true)) {
		t.Errorf("TranscodeFile output differs from a native v2 container")
	}
	if v, err := SniffVersion(dst); err != nil || v != Version2 {
		t.Errorf("SniffVersion(dst) = %d, %v", v, err)
	}
	if v, err := SniffVersion(src); err != nil || v != Version {
		t.Errorf("SniffVersion(src) = %d, %v", v, err)
	}

	// In-place transcode: src and dst the same path.
	if err := TranscodeFile(src, src, Version2); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buildXcodeContainer(t, true)) {
		t.Errorf("in-place transcode output differs from a native v2 container")
	}

	// A failing transcode must not leave a destination behind.
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, v1[:len(v1)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "never.snap")
	if err := TranscodeFile(bad, out, Version2); err == nil {
		t.Fatal("truncated source transcoded cleanly")
	}
	if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failed transcode left %s behind", out)
	}
}

// FuzzTranscode feeds mutated containers through both transcode
// directions: any input may be rejected, none may panic, and anything
// accepted must round-trip byte-stably back to its own version.
func FuzzTranscode(f *testing.F) {
	var v1buf, v2buf bytes.Buffer
	for _, v2 := range []bool{false, true} {
		buf := &v1buf
		mk := NewWriter
		if v2 {
			buf, mk = &v2buf, NewWriterV2
		}
		sw, err := mk(buf, xcodeKind)
		if err != nil {
			f.Fatal(err)
		}
		if err := WriteKeySection(sw, 1, []uint64{1, 2, 3, 4}); err != nil {
			f.Fatal(err)
		}
		if err := sw.Bytes(2, []byte("seed")); err != nil {
			f.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(v1buf.Bytes())
	f.Add(v2buf.Bytes())
	f.Add([]byte("STSNAP01junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, to := range []uint32{Version, Version2} {
			var out bytes.Buffer
			if err := Transcode(bytes.NewReader(data), int64(len(data)), &out, to); err != nil {
				continue
			}
			src := out.Bytes()
			var back bytes.Buffer
			if err := Transcode(bytes.NewReader(src), int64(len(src)), &back, to); err != nil {
				t.Fatalf("accepted output failed to re-transcode to v%d: %v", to, err)
			}
			if !bytes.Equal(back.Bytes(), src) {
				t.Fatalf("re-transcode to v%d is not byte-stable", to)
			}
		}
	})
}
