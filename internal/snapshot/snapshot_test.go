package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildContainer writes a small three-section container and returns its
// bytes: a metadata section, a sized key-style section, and an empty one.
func buildContainer(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewWriter(&buf, "test-kind")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Bytes(1, []byte("hello metadata")); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 500)
	w, err := sw.SectionSized(2, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := sw.Bytes(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	raw := buildContainer(t)
	for _, total := range []int64{int64(len(raw)), -1} {
		sr, err := NewReader(bytes.NewReader(raw), total)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Kind() != "test-kind" {
			t.Fatalf("kind = %q", sr.Kind())
		}
		s1, err := sr.Expect(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s1.Bytes(0)
		if err != nil || string(b) != "hello metadata" {
			t.Fatalf("section 1 = %q, %v", b, err)
		}
		s2, err := sr.Expect(2)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Len != 1000 {
			t.Fatalf("section 2 len = %d", s2.Len)
		}
		got, err := io.ReadAll(s2)
		if err != nil || len(got) != 1000 {
			t.Fatalf("section 2 read: %d bytes, %v", len(got), err)
		}
		s3, err := sr.Expect(3)
		if err != nil || s3.Len != 0 {
			t.Fatal(err)
		}
		if err := sr.Close(); err != nil {
			t.Fatalf("Close (total=%d): %v", total, err)
		}
	}
}

// TestContainerRejectsEveryBitFlip is the core integrity property: any
// single corrupted byte anywhere in the container must surface as an
// error by the time Close returns — either a structural validation error
// or the trailing checksum.
func TestContainerRejectsEveryBitFlip(t *testing.T) {
	raw := buildContainer(t)
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		err := readAll(bad)
		if err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(raw))
		}
	}
}

// TestContainerRejectsEveryTruncation: cutting the container at any
// length must error, never hang or panic.
func TestContainerRejectsEveryTruncation(t *testing.T) {
	raw := buildContainer(t)
	for cut := 0; cut < len(raw); cut++ {
		if err := readAll(raw[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(raw))
		}
	}
}

// readAll parses a container the way a loader would: walks every section,
// drains payloads, verifies the checksum.
func readAll(raw []byte) error {
	sr, err := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return err
	}
	for {
		s, err := sr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if _, err := io.Copy(io.Discard, s); err != nil {
			return err
		}
	}
	return sr.Close()
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(io.Discard, ""); err == nil {
		t.Error("empty kind accepted")
	}
	if _, err := NewWriter(io.Discard, strings.Repeat("k", MaxKindLen+1)); err == nil {
		t.Error("oversized kind accepted")
	}
	var buf bytes.Buffer
	sw, _ := NewWriter(&buf, "k")
	if _, err := sw.SectionSized(0, 4); err == nil {
		t.Error("section id 0 accepted")
	}
	sw, _ = NewWriter(&buf, "k")
	w, _ := sw.SectionSized(5, 4)
	if _, err := w.Write([]byte("12345")); err == nil {
		t.Error("overflowing a sized section accepted")
	}
	sw, _ = NewWriter(&buf, "k")
	w, _ = sw.SectionSized(5, 4)
	if _, err := w.Write([]byte("12")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Error("closing a short sized section accepted")
	}
}

func TestReaderValidation(t *testing.T) {
	raw := buildContainer(t)

	// Wrong expected section id.
	sr, _ := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if _, err := sr.Expect(7); err == nil {
		t.Error("Expect(7) on section 1 accepted")
	}

	// Unread payload at Next.
	sr, _ = NewReader(bytes.NewReader(raw), int64(len(raw)))
	if _, err := sr.Expect(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil {
		t.Error("Next over an unread payload accepted")
	}

	// Close with sections remaining.
	sr, _ = NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err := sr.Close(); err == nil {
		t.Error("Close with unread sections accepted")
	}

	// Bytes cap.
	sr, _ = NewReader(bytes.NewReader(raw), int64(len(raw)))
	s, _ := sr.Expect(1)
	if _, err := s.Bytes(4); err == nil {
		t.Error("Bytes over cap accepted")
	}

	// A section length exceeding a known total must be rejected before
	// any payload read.
	sr, _ = NewReader(bytes.NewReader(raw), 40)
	if _, err := sr.Next(); err == nil {
		t.Error("section length beyond known total accepted")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.snap")
	err := SaveFile(path, "file-kind", func(sw *Writer) error {
		return sw.Bytes(1, []byte("payload"))
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	err = LoadFile(path, func(sr *Reader) error {
		if sr.Kind() != "file-kind" {
			t.Errorf("kind = %q", sr.Kind())
		}
		s, err := sr.Expect(1)
		if err != nil {
			return err
		}
		got, err = s.Bytes(0)
		return err
	})
	if err != nil || string(got) != "payload" {
		t.Fatalf("LoadFile: %q, %v", got, err)
	}
	if kind, err := ReadKindFile(path); err != nil || kind != "file-kind" {
		t.Fatalf("ReadKindFile: %q, %v", kind, err)
	}

	// A failing persist must leave no file behind (and not clobber an
	// existing snapshot).
	path2 := filepath.Join(dir, "broken.snap")
	err = SaveFile(path2, "file-kind", func(sw *Writer) error {
		return io.ErrClosedPipe
	})
	if err == nil {
		t.Fatal("SaveFile swallowed the persist error")
	}
	if _, serr := os.Stat(path2); !os.IsNotExist(serr) {
		t.Error("failed SaveFile left a file behind")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestKeySections(t *testing.T) {
	keys := []uint64{1, 5, 5, 9, 1 << 60}
	var buf bytes.Buffer
	sw, _ := NewWriter(&buf, "k")
	if err := WriteKeySection(sw, 1, keys); err != nil {
		t.Fatal(err)
	}
	if err := WriteKeySection(sw, 2, []uint64{}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	sr, _ := NewReader(bytes.NewReader(raw), int64(len(raw)))
	s, _ := sr.Expect(1)
	got, err := ReadKeySection[uint64](s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) || got[0] != 1 || got[4] != 1<<60 {
		t.Fatalf("keys round trip = %v", got)
	}
	s, _ = sr.Expect(2)
	empty, err := ReadKeySection[uint64](s, 0)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty keys round trip = %v, %v", empty, err)
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}

	// Width mismatch: reading a 64-bit section as 32-bit keys.
	sr, _ = NewReader(bytes.NewReader(raw), int64(len(raw)))
	s, _ = sr.Expect(1)
	if _, err := ReadKeySection[uint32](s, 0); err == nil {
		t.Error("width mismatch accepted")
	}

	// Count cap.
	sr, _ = NewReader(bytes.NewReader(raw), int64(len(raw)))
	s, _ = sr.Expect(1)
	if _, err := ReadKeySection[uint64](s, 2); err == nil {
		t.Error("key count beyond cap accepted")
	}
}

// TestVersionSkewTyped: a container claiming a future format version must
// fail with the typed ErrVersionUnsupported (found/supported versions in
// the message), not a generic parse error — replicas key their rolling-
// upgrade refusal off errors.Is.
func TestVersionSkewTyped(t *testing.T) {
	raw := buildContainer(t)
	future := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(future[8:], Version+1) // version field follows the 8-byte magic
	_, err := NewReader(bytes.NewReader(future), int64(len(future)))
	if err == nil {
		t.Fatal("future-version container accepted")
	}
	if !errors.Is(err, ErrVersionUnsupported) {
		t.Fatalf("future-version error is not ErrVersionUnsupported: %v", err)
	}
	for _, want := range []string{"version 2", "reads 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("version-skew message %q does not name %q", err, want)
		}
	}

	// A corrupt-but-current container must NOT match the sentinel: the
	// replication layer retries corruption but refuses skew permanently.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0xFF
	err = Load(bytes.NewReader(flipped), int64(len(flipped)), func(sr *Reader) error {
		for {
			s, err := sr.Next()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return err
			}
			if _, err := s.Bytes(0); err != nil {
				return err
			}
		}
	})
	if err == nil {
		t.Fatal("corrupt container accepted")
	}
	if errors.Is(err, ErrVersionUnsupported) {
		t.Fatalf("checksum corruption misreported as version skew: %v", err)
	}
}

// TestSaveFileCleansTempOnFailure: every failure path of SaveFile — persist
// error, persist panic, and a failed rename — must leave the directory
// clean. A stranded *.tmp looks like a candidate artifact to a naive store
// listing and is by construction torn.
func TestSaveFileCleansTempOnFailure(t *testing.T) {
	dirEntries := func(dir string) []string {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		return names
	}

	t.Run("persist error", func(t *testing.T) {
		dir := t.TempDir()
		err := SaveFile(filepath.Join(dir, "x.snap"), "k", func(sw *Writer) error {
			if err := sw.Bytes(1, []byte("partial")); err != nil {
				return err
			}
			return errors.New("boom")
		})
		if err == nil {
			t.Fatal("failing persist reported success")
		}
		if got := dirEntries(dir); len(got) != 0 {
			t.Fatalf("persist error stranded files: %v", got)
		}
	})

	t.Run("persist panic", func(t *testing.T) {
		dir := t.TempDir()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panic did not propagate")
				}
			}()
			_ = SaveFile(filepath.Join(dir, "x.snap"), "k", func(sw *Writer) error {
				panic("mid-persist crash")
			})
		}()
		if got := dirEntries(dir); len(got) != 0 {
			t.Fatalf("persist panic stranded files: %v", got)
		}
	})

	t.Run("rename failure", func(t *testing.T) {
		dir := t.TempDir()
		// Renaming a file over a non-empty directory fails after the temp
		// file was fully written and synced — the late error path.
		target := filepath.Join(dir, "x.snap")
		if err := os.MkdirAll(filepath.Join(target, "occupied"), 0o755); err != nil {
			t.Fatal(err)
		}
		err := SaveFile(target, "k", func(sw *Writer) error {
			return sw.Bytes(1, []byte("payload"))
		})
		if err == nil {
			t.Fatal("rename onto a directory reported success")
		}
		if got := dirEntries(dir); len(got) != 1 || got[0] != "x.snap" {
			t.Fatalf("rename failure stranded files: %v", got)
		}
	})

	t.Run("writer kind error", func(t *testing.T) {
		dir := t.TempDir()
		if err := SaveFile(filepath.Join(dir, "x.snap"), "", nil); err == nil {
			t.Fatal("empty kind accepted")
		}
		if got := dirEntries(dir); len(got) != 0 {
			t.Fatalf("header error stranded files: %v", got)
		}
	})
}
