// Package snapshot implements the container format behind index
// persistence (DESIGN.md §9): a versioned, checksummed, crash-safe file
// layout that every persistable backend writes its state into.
//
// The layer file of internal/core (serialize.go) persists one correction
// layer and trusts the caller to supply the matching keys and model. A
// serving deployment that must restart under traffic needs more: the whole
// index — keys, model identity, layer, and for the updatable stack the
// tombstones, delta buffer and pending write generations — in one artifact
// that can be verified before a single byte of it is trusted. This package
// provides the artifact; the backends provide the payloads.
//
// # Container layout (version 1)
//
//	magic    8 bytes  "STSNAP01"
//	version  u32      1
//	kindLen  u32      ≤ 64
//	kind     bytes    backend kind, e.g. "shift-table", "router"
//	section* —        id u32 (nonzero), reserved u32 (0), len u64, payload
//	end      16 bytes a zero section header (id 0, reserved 0, len 0)
//	checksum 8 bytes  CRC-32C of every preceding byte, zero-extended
//	                  (Castagnoli — hardware-accelerated on amd64/arm64,
//	                  so verification costs a fraction of the decode)
//
// All integers are little-endian. Sections are strictly ordered: each
// backend kind documents its sequence, loaders read it with Expect, and a
// version bump accompanies any layout change (version negotiation is
// strict equality in v1; the field exists so a future reader can accept a
// range). The trailing checksum covers everything from the magic through
// the end marker, so a loader that finishes Close knows the file it parsed
// is bit-identical to the file that was written.
//
// # Trust model
//
// Readers never trust a header field they have not bounded: the kind
// length, section lengths and payload sizes are validated against the
// remaining input where the total size is known, and all payload
// allocation is incremental (chunks of at most 1 MiB), so a hostile or
// truncated header fails with an error after a bounded allocation instead
// of asking the allocator for terabytes. Nothing parsed from a container
// should be used until Close has verified the checksum; the loaders in
// core/router/updatable/concurrent follow that rule.
//
// # Container layout (version 2)
//
// Version 2 (DESIGN.md §12) is the mappable layout: the same header and
// strictly-ordered section sequence, but each section's payload starts at
// a page-aligned (4 KiB) offset — the 16-byte section header is followed
// by zero padding up to the next page boundary — and the container ends
// with a table of contents recording, per section, its payload offset,
// length and CRC-32C, plus a fixed-size footer:
//
//	magic    8 bytes  "STSNAP02"
//	version  u32      2
//	kindLen  u32      ≤ 64
//	kind     bytes    backend kind
//	section* —        id u32, reserved u32, len u64,
//	                  zero padding to the next 4 KiB boundary, payload
//	end      16 bytes a zero section header
//	toc      n×24 B   id u32, crc u32 (CRC-32C of the payload),
//	                  payload offset u64, payload length u64
//	footer   32 bytes tocOff u64, tocCount u32,
//	                  tocCRC u32 (CRC-32C of toc ‖ tocOff ‖ tocCount),
//	                  contCRC u32 (CRC-32C of magic..tocCRC),
//	                  reserved u32 (0), endMagic "STSNEND2"
//
// The page alignment lets a loader view the bulk payloads (keys, fused
// drift pairs) in place over an mmap of the file; the per-section CRCs
// let it verify lazily — footer, TOC and structure eagerly in O(sections),
// payload checksums on demand — which is what makes a mapped warm start
// O(1) in key count (see Mapped in mapped.go). The streaming Reader reads
// both versions; v2 files written here start at file offset 0, which is
// what makes the recorded offsets page-aligned in the mapping.
//
// # Crash safety
//
// SaveFile writes to a temporary file in the target directory, syncs it,
// and renames it over the destination, so a crash mid-write leaves either
// the old snapshot or the new one — never a torn file. LoadFile verifies
// the checksum before its result is returned.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/kv"
)

// Version is the streaming container format version; Version2 is the
// page-aligned mappable layout. NewWriter writes v1, NewWriterV2 writes
// v2, and NewReader accepts both.
const (
	Version  = 1
	Version2 = 2
)

// ErrVersionUnsupported reports version skew: an artifact (snapshot
// container, replication manifest, or replica state file) declares a format
// version this build does not read. It is a distinct, typed condition
// because the replication layer treats it differently from corruption —
// a corrupt fetch is retried, but a future-version file written by a newer
// builder will never parse, so a replica must refuse it immediately, keep
// serving its last-good state, and report the skew. Wrapping errors always
// include the found and supported versions in their message; match with
// errors.Is.
var ErrVersionUnsupported = errors.New("format version unsupported")

// MaxKindLen bounds the kind string so a corrupt header cannot demand an
// unbounded name allocation.
const MaxKindLen = 64

// maxSmallSection bounds Section.Bytes reads unless the caller raises the
// cap explicitly: metadata sections are small by construction.
const maxSmallSection = 1 << 20

// readChunk is the incremental-allocation unit: payload slices grow by at
// most this many bytes per read, so a hostile length field cannot trigger
// an allocation larger than the input that backs it.
const readChunk = 1 << 20

var (
	magic    = [8]byte{'S', 'T', 'S', 'N', 'A', 'P', '0', '1'}
	magic2   = [8]byte{'S', 'T', 'S', 'N', 'A', 'P', '0', '2'}
	endMagic = [8]byte{'S', 'T', 'S', 'N', 'E', 'N', 'D', '2'}
)

// pageAlign is the v2 payload alignment: 4 KiB, the page size of every
// platform this repository targets, so a payload offset in the file is a
// page-aligned address in a mapping of it.
const (
	pageAlign    = 4096
	tocEntrySize = 24
	footerSize   = 32
)

// tocEntry is one v2 table-of-contents record.
type tocEntry struct {
	id  uint32
	crc uint32
	off uint64
	len uint64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Writer emits one container: header, sections in order, end marker and
// checksum. Create it with NewWriter, add sections with Bytes or
// SectionSized, and Close it; errors are sticky.
type Writer struct {
	dst   io.Writer
	w     io.Writer // dst teed into crc (and the offset counter)
	crc   hash.Hash32
	sized *sizedWriter // open sized section, if any
	err   error

	// v2 state: the layout version, the absolute offset written so far
	// (pad computation and TOC offsets), the per-section payload CRC, and
	// the table of contents accumulated for the footer.
	v2     bool
	off    int64
	secCRC hash.Hash32
	toc    []tocEntry
}

// NewWriter writes the v1 (streaming) container header for the given
// backend kind.
func NewWriter(dst io.Writer, kind string) (*Writer, error) {
	return newWriter(dst, kind, false)
}

// NewWriterV2 writes the v2 (page-aligned, mappable) container header.
// The container must start at offset 0 of its file — the recorded
// payload offsets are file offsets, and their page alignment is what the
// mapped loader relies on.
func NewWriterV2(dst io.Writer, kind string) (*Writer, error) {
	return newWriter(dst, kind, true)
}

func newWriter(dst io.Writer, kind string, v2 bool) (*Writer, error) {
	if kind == "" || len(kind) > MaxKindLen {
		return nil, fmt.Errorf("snapshot: invalid kind %q (must be 1..%d bytes)", kind, MaxKindLen)
	}
	sw := &Writer{dst: dst, crc: crc32.New(crcTable), v2: v2}
	sw.w = io.MultiWriter(dst, sw.crc, offCounter{&sw.off})
	m, ver := magic, uint32(Version)
	if v2 {
		m, ver = magic2, Version2
		sw.secCRC = crc32.New(crcTable)
	}
	if _, err := sw.w.Write(m[:]); err != nil {
		return nil, fmt.Errorf("snapshot: writing magic: %w", err)
	}
	if err := writeU32(sw.w, ver); err != nil {
		return nil, fmt.Errorf("snapshot: writing version: %w", err)
	}
	if err := writeU32(sw.w, uint32(len(kind))); err != nil {
		return nil, fmt.Errorf("snapshot: writing kind length: %w", err)
	}
	if _, err := io.WriteString(sw.w, kind); err != nil {
		return nil, fmt.Errorf("snapshot: writing kind: %w", err)
	}
	return sw, nil
}

// Version returns the layout version being written (1 or 2). Payload
// encoders branch on it where the two layouts differ (WriteKeySection,
// the core layer format).
func (sw *Writer) Version() uint32 {
	if sw.v2 {
		return Version2
	}
	return Version
}

// offCounter tracks the absolute container offset through the write tee.
type offCounter struct{ n *int64 }

func (o offCounter) Write(p []byte) (int, error) {
	*o.n += int64(len(p))
	return len(p), nil
}

// Bytes writes one complete section with the given payload. Intended for
// metadata sections; large payloads should stream through SectionSized.
func (sw *Writer) Bytes(id uint32, payload []byte) error {
	w, err := sw.SectionSized(id, int64(len(payload)))
	if err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return nil
}

// SectionSized starts a section whose payload length is known up front and
// returns the writer the payload streams into. The section is closed by
// the next SectionSized/Bytes/Close call, which fails if the payload was
// not exactly size bytes.
func (sw *Writer) SectionSized(id uint32, size int64) (io.Writer, error) {
	if sw.err != nil {
		return nil, sw.err
	}
	if id == 0 {
		return nil, sw.fail(fmt.Errorf("snapshot: section id 0 is reserved for the end marker"))
	}
	if size < 0 {
		return nil, sw.fail(fmt.Errorf("snapshot: negative section size %d", size))
	}
	if err := sw.closeSection(); err != nil {
		return nil, err
	}
	if err := sw.sectionHeader(id, uint64(size)); err != nil {
		return nil, sw.fail(err)
	}
	sw.sized = &sizedWriter{sw: sw, id: id, size: size, left: size, payloadOff: sw.off}
	if sw.v2 {
		sw.secCRC.Reset()
	}
	return sw.sized, nil
}

// Close finishes the container: closes any open section, writes the end
// marker and the checksum (v1) or the TOC and footer (v2). It does not
// close the underlying writer.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if err := sw.closeSection(); err != nil {
		return err
	}
	if err := sw.sectionHeader(0, 0); err != nil {
		return sw.fail(err)
	}
	if sw.v2 {
		return sw.closeV2()
	}
	sum := uint64(sw.crc.Sum32())
	// The checksum itself is written to the destination only — it is not
	// part of the checksummed range.
	if err := binary.Write(sw.dst, binary.LittleEndian, sum); err != nil {
		return sw.fail(fmt.Errorf("snapshot: writing checksum: %w", err))
	}
	sw.err = fmt.Errorf("snapshot: writer closed")
	return nil
}

// closeV2 writes the v2 tail: the TOC, then the footer. Everything up to
// and including tocCRC flows through the container CRC tee; contCRC,
// the reserved word and the end magic are outside the checksummed range.
func (sw *Writer) closeV2() error {
	tocOff := uint64(sw.off)
	buf := make([]byte, 0, len(sw.toc)*tocEntrySize+16)
	for _, e := range sw.toc {
		buf = binary.LittleEndian.AppendUint32(buf, e.id)
		buf = binary.LittleEndian.AppendUint32(buf, e.crc)
		buf = binary.LittleEndian.AppendUint64(buf, e.off)
		buf = binary.LittleEndian.AppendUint64(buf, e.len)
	}
	buf = binary.LittleEndian.AppendUint64(buf, tocOff)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sw.toc)))
	tocCRC := crc32.Checksum(buf, crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, tocCRC)
	if _, err := sw.w.Write(buf); err != nil {
		return sw.fail(fmt.Errorf("snapshot: writing table of contents: %w", err))
	}
	tail := make([]byte, 0, 16)
	tail = binary.LittleEndian.AppendUint32(tail, sw.crc.Sum32())
	tail = binary.LittleEndian.AppendUint32(tail, 0) // reserved
	tail = append(tail, endMagic[:]...)
	if _, err := sw.dst.Write(tail); err != nil {
		return sw.fail(fmt.Errorf("snapshot: writing footer: %w", err))
	}
	sw.err = fmt.Errorf("snapshot: writer closed")
	return nil
}

func (sw *Writer) sectionHeader(id uint32, size uint64) error {
	if err := writeU32(sw.w, id); err != nil {
		return fmt.Errorf("snapshot: writing section header: %w", err)
	}
	if err := writeU32(sw.w, 0); err != nil { // reserved
		return fmt.Errorf("snapshot: writing section header: %w", err)
	}
	if err := binary.Write(sw.w, binary.LittleEndian, size); err != nil {
		return fmt.Errorf("snapshot: writing section length: %w", err)
	}
	if sw.v2 && id != 0 {
		// Zero padding up to the next page boundary, so the payload that
		// follows is page-aligned in the file (and thus in a mapping).
		if pad := int(padTo(sw.off, pageAlign)); pad > 0 {
			if _, err := sw.w.Write(make([]byte, pad)); err != nil {
				return fmt.Errorf("snapshot: writing section padding: %w", err)
			}
		}
	}
	return nil
}

// padTo returns the number of padding bytes from off to the next
// multiple of align (0 when already aligned).
func padTo(off int64, align int64) int64 {
	if r := off % align; r != 0 {
		return align - r
	}
	return 0
}

func (sw *Writer) closeSection() error {
	if sw.sized == nil {
		return nil
	}
	s := sw.sized
	sw.sized = nil
	if s.left != 0 {
		return sw.fail(fmt.Errorf("snapshot: section %d short by %d bytes of its declared size", s.id, s.left))
	}
	if sw.v2 {
		sw.toc = append(sw.toc, tocEntry{
			id:  s.id,
			crc: sw.secCRC.Sum32(),
			off: uint64(s.payloadOff),
			len: uint64(s.size),
		})
	}
	return nil
}

func (sw *Writer) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// sizedWriter enforces a section's declared payload length.
type sizedWriter struct {
	sw         *Writer
	id         uint32
	size       int64
	left       int64
	payloadOff int64
}

func (s *sizedWriter) Write(p []byte) (int, error) {
	if s.sw.err != nil {
		return 0, s.sw.err
	}
	if s.sw.sized != s {
		return 0, fmt.Errorf("snapshot: write to closed section %d", s.id)
	}
	if int64(len(p)) > s.left {
		return 0, s.sw.fail(fmt.Errorf("snapshot: section %d overflows its declared size by %d bytes",
			s.id, int64(len(p))-s.left))
	}
	n, err := s.sw.w.Write(p)
	s.left -= int64(n)
	if s.sw.v2 {
		s.sw.secCRC.Write(p[:n])
	}
	if err != nil {
		return n, s.sw.fail(fmt.Errorf("snapshot: writing section %d: %w", s.id, err))
	}
	return n, nil
}

// Reader parses one container. Create it with NewReader, walk the
// sections with Expect (or Next), and Close it to verify the checksum.
// Nothing parsed should be trusted until Close returns nil.
type Reader struct {
	raw       io.Reader
	crc       hash.Hash32
	kind      string
	sized     bool  // the caller declared the input length
	remaining int64 // bytes left in the input when sized (may go negative)
	cur       *Section
	done      bool
	err       error

	// v2 state: the layout version, the absolute offset consumed so far
	// (pad verification), the per-section payload CRC, and the entries
	// walked so far — Close cross-checks them against the stored TOC.
	v2     bool
	off    int64
	secCRC hash.Hash32
	walked []tocEntry
}

// NewReader parses the container header. total is the input length in
// bytes when the caller knows it (a file size) and -1 otherwise; a known
// total lets the reader reject section lengths that exceed the input
// before reading them.
func NewReader(r io.Reader, total int64) (*Reader, error) {
	sr := &Reader{raw: r, crc: crc32.New(crcTable), sized: total >= 0, remaining: total}
	var m [8]byte
	if err := sr.readFull(m[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	switch m {
	case magic:
	case magic2:
		sr.v2 = true
		sr.secCRC = crc32.New(crcTable)
	default:
		return nil, fmt.Errorf("snapshot: not a snapshot container (bad magic)")
	}
	ver, err := sr.readU32()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading version: %w", err)
	}
	want := uint32(Version)
	if sr.v2 {
		want = Version2
	}
	if ver != want {
		return nil, fmt.Errorf("snapshot: container version %d under %q magic, this build reads %d and %d: %w",
			ver, m[:], Version, Version2, ErrVersionUnsupported)
	}
	kindLen, err := sr.readU32()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading kind length: %w", err)
	}
	if kindLen == 0 || kindLen > MaxKindLen {
		return nil, fmt.Errorf("snapshot: invalid kind length %d (must be 1..%d)", kindLen, MaxKindLen)
	}
	kind := make([]byte, kindLen)
	if err := sr.readFull(kind); err != nil {
		return nil, fmt.Errorf("snapshot: reading kind: %w", err)
	}
	sr.kind = string(kind)
	return sr, nil
}

// Kind returns the backend kind recorded in the header.
func (sr *Reader) Kind() string { return sr.kind }

// Version returns the layout version being read (1 or 2).
func (sr *Reader) Version() uint32 {
	if sr.v2 {
		return Version2
	}
	return Version
}

// Section is one length-prefixed payload. It implements io.Reader over
// exactly Len bytes.
type Section struct {
	ID         uint32
	Len        int64
	sr         *Reader
	off        int64 // bytes already read
	payloadOff int64 // absolute container offset of the payload (v2)
}

// V2 reports whether the section comes from a v2 container — payload
// encodings that differ between the layouts (key sections, the core
// layer blob) branch on it.
func (s *Section) V2() bool { return s.sr.v2 }

// Next returns the next section, draining any unread remainder of the
// current one first. At the end marker it returns (nil, io.EOF).
func (sr *Reader) Next() (*Section, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	if sr.done {
		return nil, io.EOF
	}
	if sr.cur != nil && sr.cur.off != sr.cur.Len {
		return nil, sr.fail(fmt.Errorf("snapshot: section %d has %d unread payload bytes",
			sr.cur.ID, sr.cur.Len-sr.cur.off))
	}
	if sr.v2 && sr.cur != nil {
		// The section just drained completely; bank its identity and
		// payload CRC for the TOC cross-check at Close.
		sr.walked = append(sr.walked, tocEntry{
			id:  sr.cur.ID,
			crc: sr.secCRC.Sum32(),
			off: uint64(sr.cur.payloadOff),
			len: uint64(sr.cur.Len),
		})
	}
	sr.cur = nil
	id, err := sr.readU32()
	if err != nil {
		return nil, sr.fail(fmt.Errorf("snapshot: reading section header: %w", err))
	}
	if _, err := sr.readU32(); err != nil { // reserved
		return nil, sr.fail(fmt.Errorf("snapshot: reading section header: %w", err))
	}
	var size uint64
	if err := sr.readU64(&size); err != nil {
		return nil, sr.fail(fmt.Errorf("snapshot: reading section length: %w", err))
	}
	if id == 0 {
		if size != 0 {
			return nil, sr.fail(fmt.Errorf("snapshot: end marker with nonzero length %d", size))
		}
		sr.done = true
		return nil, io.EOF
	}
	if size > 1<<62 {
		return nil, sr.fail(fmt.Errorf("snapshot: section %d length %d is not credible", id, size))
	}
	if sr.v2 {
		if err := sr.skipPadding(id); err != nil {
			return nil, err
		}
		sr.secCRC.Reset()
	}
	if sr.sized && int64(size) > sr.remaining {
		return nil, sr.fail(fmt.Errorf("snapshot: section %d length %d exceeds remaining input %d",
			id, size, sr.remaining))
	}
	sr.cur = &Section{ID: id, Len: int64(size), sr: sr, payloadOff: sr.off}
	return sr.cur, nil
}

// skipPadding consumes the v2 alignment padding between a section header
// and its payload, requiring every byte to be zero — nonzero padding is
// either corruption or data smuggled outside any section's CRC, and both
// are rejected.
func (sr *Reader) skipPadding(id uint32) error {
	pad := padTo(sr.off, pageAlign)
	if pad == 0 {
		return nil
	}
	buf := make([]byte, pad)
	if err := sr.readFull(buf); err != nil {
		return sr.fail(fmt.Errorf("snapshot: section %d padding truncated: %w", id, err))
	}
	for i, b := range buf {
		if b != 0 {
			return sr.fail(fmt.Errorf("snapshot: section %d has nonzero padding at byte %d", id, i))
		}
	}
	return nil
}

// Expect returns the next section and fails unless its id matches.
func (sr *Reader) Expect(id uint32) (*Section, error) {
	s, err := sr.Next()
	if errors.Is(err, io.EOF) {
		return nil, sr.fail(fmt.Errorf("snapshot: missing section %d (container ended)", id))
	}
	if err != nil {
		return nil, err
	}
	if s.ID != id {
		return nil, sr.fail(fmt.Errorf("snapshot: expected section %d, found %d", id, s.ID))
	}
	return s, nil
}

// Read implements io.Reader over the section payload.
func (s *Section) Read(p []byte) (int, error) {
	if s.sr.err != nil {
		return 0, s.sr.err
	}
	if s.off >= s.Len {
		return 0, io.EOF
	}
	if max := s.Len - s.off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := s.sr.read(p)
	s.off += int64(n)
	if s.sr.v2 && n > 0 {
		s.sr.secCRC.Write(p[:n])
	}
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return n, s.sr.fail(fmt.Errorf("snapshot: section %d truncated at byte %d of %d: %w",
			s.ID, s.off, s.Len, err))
	}
	return n, nil
}

// Remaining returns the number of unread payload bytes.
func (s *Section) Remaining() int64 { return s.Len - s.off }

// Trusted reports whether the section's length was validated against a
// caller-declared input size (NewReader with total ≥ 0). A trusted length
// may drive a one-shot allocation; an untrusted one must grow
// incrementally.
func (s *Section) Trusted() bool { return s.sr.sized }

// Bytes reads the whole payload, requiring Len ≤ max (max ≤ 0 applies the
// 1 MiB metadata default). Allocation is incremental, so a corrupt length
// cannot allocate more than the input that backs it plus one chunk.
func (s *Section) Bytes(max int64) ([]byte, error) {
	if max <= 0 {
		max = maxSmallSection
	}
	if s.Len > max {
		return nil, s.sr.fail(fmt.Errorf("snapshot: section %d length %d exceeds cap %d", s.ID, s.Len, max))
	}
	out := make([]byte, 0, min64(s.Len, readChunk))
	for int64(len(out)) < s.Len {
		c := min64(s.Len-int64(len(out)), readChunk)
		start := int64(len(out))
		out = append(out, make([]byte, c)...)
		if _, err := io.ReadFull(s, out[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close verifies the container: the current section must be fully read,
// the end marker must follow immediately, and the stored checksum must
// match the computed one. A loader that returns before Close reports nil
// must discard everything it parsed.
func (sr *Reader) Close() error {
	if sr.err != nil {
		return sr.err
	}
	if !sr.done {
		s, err := sr.Next()
		if err == nil {
			return sr.fail(fmt.Errorf("snapshot: unexpected trailing section %d", s.ID))
		}
		if !errors.Is(err, io.EOF) {
			return err
		}
	}
	if sr.v2 {
		return sr.closeV2()
	}
	want := uint64(sr.crc.Sum32())
	var stored uint64
	// The stored checksum is outside the checksummed range: read it from
	// the raw input, not through the hashing tee.
	if err := binary.Read(sr.raw, binary.LittleEndian, &stored); err != nil {
		return sr.fail(fmt.Errorf("snapshot: reading checksum: %w", err))
	}
	if stored != want {
		return sr.fail(fmt.Errorf("snapshot: checksum mismatch (stored %016x, computed %016x): corrupt or truncated container",
			stored, want))
	}
	sr.err = fmt.Errorf("snapshot: reader closed")
	return nil
}

// closeV2 verifies the v2 tail: the stored TOC must match the sections
// actually walked (ids, offsets, lengths and payload CRCs), the TOC CRC
// and container CRC must match, and the footer must be well-formed. The
// streaming path thus verifies strictly more than v1 did — every payload
// is covered twice, by its section CRC and by the container CRC.
func (sr *Reader) closeV2() error {
	tocStart := uint64(sr.off)
	buf := make([]byte, len(sr.walked)*tocEntrySize+12)
	if err := sr.readFull(buf); err != nil {
		return sr.fail(fmt.Errorf("snapshot: reading table of contents: %w", err))
	}
	for i, w := range sr.walked {
		e := buf[i*tocEntrySize:]
		stored := tocEntry{
			id:  binary.LittleEndian.Uint32(e),
			crc: binary.LittleEndian.Uint32(e[4:]),
			off: binary.LittleEndian.Uint64(e[8:]),
			len: binary.LittleEndian.Uint64(e[16:]),
		}
		if stored != w {
			return sr.fail(fmt.Errorf("snapshot: TOC entry %d (id %d, crc %08x, off %d, len %d) does not match the section walked (id %d, crc %08x, off %d, len %d)",
				i, stored.id, stored.crc, stored.off, stored.len, w.id, w.crc, w.off, w.len))
		}
	}
	foot := buf[len(sr.walked)*tocEntrySize:]
	if got := binary.LittleEndian.Uint64(foot); got != tocStart {
		return sr.fail(fmt.Errorf("snapshot: footer records TOC at %d, sections ended at %d", got, tocStart))
	}
	if got := binary.LittleEndian.Uint32(foot[8:]); got != uint32(len(sr.walked)) {
		return sr.fail(fmt.Errorf("snapshot: footer records %d sections, walked %d", got, len(sr.walked)))
	}
	wantTocCRC := crc32.Checksum(buf, crcTable)
	storedTocCRC, err := sr.readU32()
	if err != nil {
		return sr.fail(fmt.Errorf("snapshot: reading TOC checksum: %w", err))
	}
	if storedTocCRC != wantTocCRC {
		return sr.fail(fmt.Errorf("snapshot: TOC checksum mismatch (stored %08x, computed %08x)", storedTocCRC, wantTocCRC))
	}
	want := sr.crc.Sum32()
	var tail [16]byte
	if _, err := io.ReadFull(sr.raw, tail[:]); err != nil {
		return sr.fail(fmt.Errorf("snapshot: reading footer: %w", err))
	}
	if stored := binary.LittleEndian.Uint32(tail[:]); stored != want {
		return sr.fail(fmt.Errorf("snapshot: checksum mismatch (stored %08x, computed %08x): corrupt or truncated container",
			stored, want))
	}
	if reserved := binary.LittleEndian.Uint32(tail[4:]); reserved != 0 {
		return sr.fail(fmt.Errorf("snapshot: footer reserved word is %08x, want 0", reserved))
	}
	if !bytes.Equal(tail[8:], endMagic[:]) {
		return sr.fail(fmt.Errorf("snapshot: footer end magic %q, want %q", tail[8:], endMagic[:]))
	}
	sr.err = fmt.Errorf("snapshot: reader closed")
	return nil
}

// read pulls bytes through the hashing tee and the remaining-input budget.
func (sr *Reader) read(p []byte) (int, error) {
	n, err := sr.raw.Read(p)
	if n > 0 {
		sr.crc.Write(p[:n])
		sr.off += int64(n)
		if sr.sized {
			sr.remaining -= int64(n)
		}
	}
	return n, err
}

func (sr *Reader) readFull(p []byte) error {
	_, err := io.ReadFull(readerFunc(sr.read), p)
	return err
}

func (sr *Reader) readU32() (uint32, error) {
	var b [4]byte
	if err := sr.readFull(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (sr *Reader) readU64(v *uint64) error {
	var b [8]byte
	if err := sr.readFull(b[:]); err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint64(b[:])
	return nil
}

func (sr *Reader) fail(err error) error {
	if sr.err == nil {
		sr.err = err
	}
	return sr.err
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

// WriteKeySection writes a sorted key slice as one section: a u32 key
// width followed by the keys little-endian at that width, streamed in
// chunks so no full-size staging copy is made. In a v2 container the
// width prefix is followed by four zero bytes, so the key data sits at
// payload offset 8 — 8-byte aligned from the page-aligned payload start,
// which is what lets the mapped loader view it in place.
func WriteKeySection[K kv.Key](sw *Writer, id uint32, keys []K) error {
	width := kv.Width[K]()
	prefix := int64(4)
	if sw.v2 {
		prefix = 8
	}
	w, err := sw.SectionSized(id, prefix+int64(len(keys))*int64(width))
	if err != nil {
		return err
	}
	if err := writeU32(w, uint32(width)); err != nil {
		return err
	}
	if sw.v2 {
		if err := writeU32(w, 0); err != nil { // alignment pad
			return err
		}
	}
	const chunk = 64 << 10
	for off := 0; off < len(keys); off += chunk {
		end := off + chunk
		if end > len(keys) {
			end = len(keys)
		}
		if err := binary.Write(w, binary.LittleEndian, keys[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// ReadKeySection reads a key section written by WriteKeySection,
// validating the recorded width against K and the payload length against
// the width. Allocation is incremental; maxKeys ≤ 0 means no count cap
// beyond what the input itself bounds.
func ReadKeySection[K kv.Key](s *Section, maxKeys int64) ([]K, error) {
	width := int64(kv.Width[K]())
	prefix := int64(4)
	if s.V2() {
		prefix = 8
	}
	if s.Len < prefix {
		return nil, fmt.Errorf("snapshot: key section %d too short (%d bytes)", s.ID, s.Len)
	}
	var wb [8]byte
	if _, err := io.ReadFull(s, wb[:prefix]); err != nil {
		return nil, err
	}
	if got := int64(binary.LittleEndian.Uint32(wb[:])); got != width {
		return nil, fmt.Errorf("snapshot: key section %d has %d-byte keys, this index uses %d-byte keys", s.ID, got, width)
	}
	if s.V2() {
		if pad := binary.LittleEndian.Uint32(wb[4:8]); pad != 0 {
			return nil, fmt.Errorf("snapshot: key section %d has nonzero alignment pad %08x", s.ID, pad)
		}
	}
	body := s.Len - prefix
	if body%width != 0 {
		return nil, fmt.Errorf("snapshot: key section %d payload %d bytes is not a multiple of the %d-byte key width",
			s.ID, body, width)
	}
	n := int(body / width)
	if maxKeys > 0 && int64(n) > maxKeys {
		return nil, fmt.Errorf("snapshot: key section %d holds %d keys, cap is %d", s.ID, n, maxKeys)
	}
	avail := int64(-1)
	if s.Trusted() {
		avail = body
	}
	return ReadFixed[K](s, n, int(width), "key", avail)
}

// ReadFixed reads n little-endian values of elemSize bytes each, in
// chunks of at most 1 MiB through one reused buffer. avail is the number
// of input bytes a trusted source vouches are actually present (-1 when
// unknown): with a voucher covering the array the result is allocated
// once (the restart hot path — no chunk-growth copies); without one the
// slice grows chunk by chunk, so a lying length dies on the short read
// behind it after at most one chunk of over-allocation. This is the one
// shared implementation of that trust discipline — the key sections here
// and the drift/count arrays of internal/core both read through it.
func ReadFixed[T ~int8 | ~int16 | ~int32 | ~int64 | ~uint32 | ~uint64](r io.Reader, n, elemSize int, what string, avail int64) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("snapshot: negative %s count %d", what, n)
	}
	need := int64(n) * int64(elemSize)
	if avail >= 0 && need > avail {
		return nil, fmt.Errorf("snapshot: %ss need %d bytes, input holds %d", what, need, avail)
	}
	chunk := readChunk / elemSize
	var out []T
	if avail >= 0 {
		out = make([]T, 0, n)
	}
	buf := make([]byte, int(min64(int64(n), int64(chunk)))*elemSize)
	filled := 0
	for filled < n {
		c := n - filled
		if c > chunk {
			c = chunk
		}
		b := buf[:c*elemSize]
		if _, err := io.ReadFull(r, b); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("snapshot: reading %ss %d..%d of %d: %w", what, filled, filled+c-1, n, err)
		}
		if cap(out) >= filled+c {
			out = out[:filled+c]
		} else {
			out = append(out, make([]T, c)...)
		}
		dst := out[filled : filled+c]
		// Same-width conversions wrap, so the unsigned reads bit-copy into
		// signed targets exactly.
		switch elemSize {
		case 1:
			for i := range dst {
				dst[i] = T(b[i])
			}
		case 2:
			for i := range dst {
				dst[i] = T(binary.LittleEndian.Uint16(b[2*i:]))
			}
		case 4:
			for i := range dst {
				dst[i] = T(binary.LittleEndian.Uint32(b[4*i:]))
			}
		default:
			for i := range dst {
				dst[i] = T(binary.LittleEndian.Uint64(b[8*i:]))
			}
		}
		filled += c
	}
	return out, nil
}

// WriteFileAtomic publishes path crash-safely: write streams into a
// dot-prefixed temporary file in path's directory, which is fsynced,
// closed, and atomically renamed over path; the directory is then synced
// so the rename itself survives a crash (best effort — not every
// filesystem supports directory fsync). On any error the temporary file
// is removed and the previous file at path (if any) is untouched.
//
// This is the one atomic-publish implementation shared by snapshot
// containers (SaveFile) and the replica store (replica.DirStore.Put,
// which the warm-restart record also rides), so the temp/fsync/rename/
// dir-sync discipline cannot drift between the paths that all claim
// "crash-safe".
func WriteFileAtomic(path string, write func(*os.File) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmp := f.Name()
	// Cleanup keys off the committed flag, not the error value, so every
	// exit — error return, a panic inside write, a failed Sync or Rename
	// — removes the temp file. A stranded *.tmp in a snapshot directory is
	// not harmless litter: a store listing that treats directory entries as
	// candidate artifacts would pick it up, and it is by construction a
	// torn container.
	committed := false
	defer func() {
		if !committed {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("snapshot: syncing %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: publishing %s: %w", path, err)
	}
	committed = true
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// SaveFile writes a container crash-safely through WriteFileAtomic: on
// any error the temporary file is removed and the previous snapshot at
// path (if any) is untouched.
func SaveFile(path, kind string, persist func(*Writer) error) error {
	return saveFileVersion(path, kind, persist, false)
}

// SaveFileV2 is SaveFile in the v2 (page-aligned, mappable) layout.
func SaveFileV2(path, kind string, persist func(*Writer) error) error {
	return saveFileVersion(path, kind, persist, true)
}

// SaveFileAt writes the chosen layout version: Version2 for v2, anything
// else (conventionally Version) for the v1 streaming layout. Callers
// that thread a configured version through (the replica publisher) use
// this instead of branching themselves.
func SaveFileAt(path, kind string, version uint32, persist func(*Writer) error) error {
	return saveFileVersion(path, kind, persist, version == Version2)
}

func saveFileVersion(path, kind string, persist func(*Writer) error, v2 bool) error {
	return WriteFileAtomic(path, func(f *os.File) error {
		bw := bufio.NewWriterSize(f, 1<<20)
		sw, err := newWriter(bw, kind, v2)
		if err != nil {
			return err
		}
		if err := persist(sw); err != nil {
			return err
		}
		if err := sw.Close(); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("snapshot: flushing %s: %w", f.Name(), err)
		}
		return nil
	})
}

// LoadFile opens a container, hands the reader to load, and verifies the
// checksum afterwards. load's results must be discarded when LoadFile
// returns an error — the verification happens after parsing.
func LoadFile(path string, load func(*Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("snapshot: opening %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("snapshot: stat %s: %w", path, err)
	}
	sr, err := NewReader(bufio.NewReaderSize(f, 1<<20), st.Size())
	if err != nil {
		return fmt.Errorf("snapshot: %s: %w", path, err)
	}
	if err := load(sr); err != nil {
		return fmt.Errorf("snapshot: %s: %w", path, err)
	}
	if err := sr.Close(); err != nil {
		return fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return nil
}

// Load is LoadFile over an arbitrary reader: total is the input size in
// bytes, or -1 when unknown.
func Load(r io.Reader, total int64, load func(*Reader) error) error {
	sr, err := NewReader(r, total)
	if err != nil {
		return err
	}
	if err := load(sr); err != nil {
		return err
	}
	return sr.Close()
}

// ReadKindFile returns the backend kind recorded in a snapshot file
// without loading it (tooling: shifttool -load prints it on mismatch).
func ReadKindFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sr, err := NewReader(bufio.NewReader(f), -1)
	if err != nil {
		return "", fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return sr.Kind(), nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
