package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file implements container transcoding (DESIGN.md §13): rewriting a
// snapshot between the v1 streaming layout and the v2 mappable layout,
// section by section, with every CRC re-derived for the target layout.
// Transcoding is what turns format skew from a refusal into a bridge — a
// replica that fetches an artifact in the "wrong" format upgrades (or
// downgrades, for rollback) its local copy instead of failing sync, and a
// fleet can roll between formats one replica at a time with no flag day.
//
// Most section payloads are identical bytes in both layouts and copy
// verbatim. Exactly two payload encodings differ between the versions and
// need rewriting:
//
//   - key sections (WriteKeySection): a 4-byte width prefix in v1, an
//     8-byte width+pad prefix in v2 — handled generically here;
//   - the core layer blob: split lo/hi drift arrays in v1 vs the fused
//     interleaved array plus widths word in v2 — handled by a transcoder
//     internal/core registers (this package cannot import core).
//
// Which sections of a container are which is declared per backend kind
// through RegisterTranscodeSchema; a kind without a schema, or a section
// id outside its schema, refuses to transcode rather than guessing — an
// unknown section could be version-sensitive, and a silent copy would
// corrupt it undetectably (its CRC would be freshly computed over the
// wrong bytes).
//
// The whole source container is consumed and checksum-verified (Reader.
// Close) before Transcode reports success, so TranscodeFile never
// publishes a destination derived from a corrupt source. Round trips are
// byte-stable: v1→v2→v1 and v2→v1→v2 reproduce the original container
// bit for bit, which is what makes format rollback trustworthy.

// Role classifies one section id of a kind for transcoding.
type Role int

const (
	// RoleOpaque payloads are byte-identical in both layouts and copy
	// verbatim.
	RoleOpaque Role = iota
	// RoleKeys payloads use the WriteKeySection encoding, whose width
	// prefix is 4 bytes in v1 and 8 in v2.
	RoleKeys
	// RoleLayer payloads are core layer blobs, rewritten by the
	// transcoder internal/core registers.
	RoleLayer
)

var (
	schemaMu   sync.RWMutex
	schemas    = map[string]map[uint32]Role{}
	layerXcode func(payload []byte, toV2 bool) ([]byte, error)
)

// RegisterTranscodeSchema declares the section roles of one backend kind.
// Called from package init functions by the kind's owner (core, router,
// updatable, concurrent); later registrations replace earlier ones.
func RegisterTranscodeSchema(kind string, roles map[uint32]Role) {
	cp := make(map[uint32]Role, len(roles))
	for id, r := range roles {
		cp[id] = r
	}
	schemaMu.Lock()
	schemas[kind] = cp
	schemaMu.Unlock()
}

// RegisterLayerTranscoder installs the RoleLayer payload rewriter.
// internal/core registers its layer-blob transform here; transcoding a
// container with a layer section fails cleanly when nothing is registered
// (a binary that does not link core cannot understand the blob).
func RegisterLayerTranscoder(fn func(payload []byte, toV2 bool) ([]byte, error)) {
	schemaMu.Lock()
	layerXcode = fn
	schemaMu.Unlock()
}

func transcodeSchema(kind string) (map[uint32]Role, bool) {
	schemaMu.RLock()
	defer schemaMu.RUnlock()
	s, ok := schemas[kind]
	return s, ok
}

func layerTranscoder() func([]byte, bool) ([]byte, error) {
	schemaMu.RLock()
	defer schemaMu.RUnlock()
	return layerXcode
}

// maxTranscodeLayer bounds the in-memory staging of one layer blob during
// transcoding. Layer blobs are ~10 bytes per partition; this admits
// ~100M-partition layers while refusing a hostile length that would
// balloon the process.
const maxTranscodeLayer = 1 << 31

// Transcode reads one container from r (total = input size in bytes, or
// -1 when unknown) and rewrites it at toVersion into w. The source is
// fully verified — its container checksum must pass — before Transcode
// returns nil; on error the bytes already written to w must be discarded.
// Transcoding to the source's own version is a valid (rewriting) no-op.
func Transcode(r io.Reader, total int64, w io.Writer, toVersion uint32) error {
	if toVersion != Version && toVersion != Version2 {
		return fmt.Errorf("snapshot: cannot transcode to container version %d, this build writes %d and %d: %w",
			toVersion, Version, Version2, ErrVersionUnsupported)
	}
	sr, err := NewReader(r, total)
	if err != nil {
		return err
	}
	roles, ok := transcodeSchema(sr.Kind())
	if !ok {
		return fmt.Errorf("snapshot: no transcode schema registered for kind %q", sr.Kind())
	}
	sw, err := newWriter(w, sr.Kind(), toVersion == Version2)
	if err != nil {
		return err
	}
	for {
		s, err := sr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		role, ok := roles[s.ID]
		if !ok {
			return fmt.Errorf("snapshot: kind %q has no transcode role for section %d (version-sensitivity unknown)",
				sr.Kind(), s.ID)
		}
		switch role {
		case RoleOpaque:
			dst, err := sw.SectionSized(s.ID, s.Len)
			if err != nil {
				return err
			}
			if _, err := io.Copy(dst, s); err != nil {
				return err
			}
		case RoleKeys:
			if err := transcodeKeySection(sw, s); err != nil {
				return err
			}
		case RoleLayer:
			fn := layerTranscoder()
			if fn == nil {
				return fmt.Errorf("snapshot: no layer transcoder registered (link internal/core)")
			}
			payload, err := s.Bytes(maxTranscodeLayer)
			if err != nil {
				return err
			}
			out, err := fn(payload, toVersion == Version2)
			if err != nil {
				return fmt.Errorf("snapshot: transcoding layer section %d: %w", s.ID, err)
			}
			dst, err := sw.SectionSized(s.ID, int64(len(out)))
			if err != nil {
				return err
			}
			if _, err := dst.Write(out); err != nil {
				return err
			}
		default:
			return fmt.Errorf("snapshot: kind %q section %d has invalid role %d", sr.Kind(), s.ID, role)
		}
	}
	// Verify the source before finalising the destination: a corrupt
	// source must never yield a destination whose own checksums pass.
	if err := sr.Close(); err != nil {
		return err
	}
	return sw.Close()
}

// transcodeKeySection rewrites one WriteKeySection payload: the width
// prefix grows from 4 to 8 bytes (v1→v2) or shrinks back (v2→v1); the
// key bytes stream through unchanged.
func transcodeKeySection(sw *Writer, s *Section) error {
	srcPrefix := int64(4)
	if s.V2() {
		srcPrefix = 8
	}
	dstPrefix := int64(4)
	if sw.v2 {
		dstPrefix = 8
	}
	if s.Len < srcPrefix {
		return fmt.Errorf("snapshot: key section %d too short (%d bytes)", s.ID, s.Len)
	}
	var wb [8]byte
	if _, err := io.ReadFull(s, wb[:srcPrefix]); err != nil {
		return err
	}
	width := binary.LittleEndian.Uint32(wb[:4])
	switch width {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("snapshot: key section %d has invalid key width %d", s.ID, width)
	}
	if s.V2() {
		if pad := binary.LittleEndian.Uint32(wb[4:8]); pad != 0 {
			return fmt.Errorf("snapshot: key section %d has nonzero alignment pad %08x", s.ID, pad)
		}
	}
	body := s.Len - srcPrefix
	if body%int64(width) != 0 {
		return fmt.Errorf("snapshot: key section %d payload %d bytes is not a multiple of the %d-byte key width",
			s.ID, body, width)
	}
	dst, err := sw.SectionSized(s.ID, dstPrefix+body)
	if err != nil {
		return err
	}
	if err := writeU32(dst, width); err != nil {
		return err
	}
	if sw.v2 {
		if err := writeU32(dst, 0); err != nil {
			return err
		}
	}
	_, err = io.Copy(dst, s)
	return err
}

// TranscodeFile transcodes the container at src into dst at toVersion,
// crash-safely: the destination is staged, fsynced, and renamed into
// place only after the source verified end to end. src and dst may name
// the same path — the open source descriptor survives the rename.
func TranscodeFile(src, dst string, toVersion uint32) error {
	f, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("snapshot: opening %s: %w", src, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("snapshot: stat %s: %w", src, err)
	}
	return WriteFileAtomic(dst, func(out *os.File) error {
		bw := bufio.NewWriterSize(out, 1<<20)
		if err := Transcode(bufio.NewReaderSize(f, 1<<20), st.Size(), bw, toVersion); err != nil {
			return fmt.Errorf("snapshot: transcoding %s: %w", src, err)
		}
		return bw.Flush()
	})
}

// SniffVersion reads just enough of the file at path to report its
// container layout version (1 or 2). Tooling and the replica's format
// planner use it when a manifest does not record an artifact's format.
func SniffVersion(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [12]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("snapshot: %s: reading magic: %w", path, err)
	}
	ver := binary.LittleEndian.Uint32(head[8:])
	switch {
	case [8]byte(head[:8]) == magic && ver == Version:
		return Version, nil
	case [8]byte(head[:8]) == magic2 && ver == Version2:
		return Version2, nil
	case [8]byte(head[:8]) == magic || [8]byte(head[:8]) == magic2:
		return 0, fmt.Errorf("snapshot: %s: container version %d, this build reads %d and %d: %w",
			path, ver, Version, Version2, ErrVersionUnsupported)
	default:
		return 0, fmt.Errorf("snapshot: %s is not a snapshot container (bad magic)", path)
	}
}
