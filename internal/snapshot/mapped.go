package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"

	"repro/internal/kv"
	"repro/internal/mapped"
)

// This file is the zero-copy side of the v2 layout: Mapped parses a v2
// container over an mmap'd byte region without reading the payloads.
// Opening costs O(sections), not O(bytes) — the footer, TOC, headers and
// padding are validated eagerly; payload CRCs verify lazily through
// Verify/VerifyAll. Everything structural a hostile file could lie about
// (offsets, lengths, counts, alignment) is cross-checked against the walk
// the streaming reader would have performed, so a section handed to a
// loader is exactly the byte range its header, its TOC entry and the
// container geometry all agree on.
//
// Trust model: an unverified payload is memory-safe to parse (every
// slice is bounds-derived from validated geometry) but not yet known to
// be the written bytes. Callers choose the verification point: the
// replica maps artifacts whose whole-file CRC was verified at fetch time
// and calls VerifyAll before trusting a warm-restart file; shifttool
// verifies on demand.

// ErrNotMappable reports a container in the v1 streaming layout (or not
// a container at all): it carries no TOC and no alignment, so it cannot
// be viewed in place. Callers fall back to the heap loaders.
var ErrNotMappable = errors.New("snapshot: not a mappable (v2) container")

// MappedSection is one section of a mapped container. Data aliases the
// mapping: read-only, and it must not outlive the region.
type MappedSection struct {
	ID   uint32
	Off  int64 // payload offset in the container (page-aligned)
	Data []byte

	crc      uint32
	verified atomic.Bool
}

// Verify checks the section payload against its TOC CRC, memoized — a
// second Verify is free. The benign race (two goroutines hashing the
// same immutable bytes) converges on the same answer.
func (s *MappedSection) Verify() error {
	if s.verified.Load() {
		return nil
	}
	if got := crc32.Checksum(s.Data, crcTable); got != s.crc {
		return fmt.Errorf("snapshot: section %d (offset %d, %d bytes) checksum mismatch (stored %08x, computed %08x)",
			s.ID, s.Off, len(s.Data), s.crc, got)
	}
	s.verified.Store(true)
	return nil
}

// Mapped is a parsed v2 container over a byte region.
type Mapped struct {
	region *mapped.Region
	data   []byte
	kind   string
	secs   []MappedSection
	cursor int
}

// MapFile maps path and parses it as a v2 container. The returned Mapped
// owns one region reference; Close releases it. Loaders that build
// long-lived structures over the mapping take their own references
// (Region().Retain()) before the caller Closes.
func MapFile(path string) (*Mapped, error) {
	region, err := mapped.Map(path)
	if err != nil {
		return nil, err
	}
	m, err := parseMapped(region.Bytes())
	if err != nil {
		region.Release()
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	m.region = region
	return m, nil
}

// OpenMappedBytes parses a v2 container over caller-owned bytes (tests
// and fuzzing; no region, so Close is a no-op and Region returns nil).
func OpenMappedBytes(data []byte) (*Mapped, error) {
	return parseMapped(data)
}

// Kind returns the backend kind recorded in the header.
func (m *Mapped) Kind() string { return m.kind }

// Region returns the backing region (nil for OpenMappedBytes).
func (m *Mapped) Region() *mapped.Region { return m.region }

// Sections returns the number of sections.
func (m *Mapped) Sections() int { return len(m.secs) }

// Rewind resets the section cursor (loaders walk sections in order, like
// the streaming reader's Next/Expect).
func (m *Mapped) Rewind() { m.cursor = 0 }

// Next returns the next section; io.EOF past the last.
func (m *Mapped) Next() (*MappedSection, error) {
	if m.cursor >= len(m.secs) {
		return nil, io.EOF
	}
	s := &m.secs[m.cursor]
	m.cursor++
	return s, nil
}

// Expect returns the next section and fails unless its id matches.
func (m *Mapped) Expect(id uint32) (*MappedSection, error) {
	s, err := m.Next()
	if errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("snapshot: missing section %d (container ended)", id)
	}
	if err != nil {
		return nil, err
	}
	if s.ID != id {
		return nil, fmt.Errorf("snapshot: expected section %d, found %d", id, s.ID)
	}
	return s, nil
}

// Done fails if sections remain unconsumed — the mapped analogue of the
// streaming reader rejecting trailing sections.
func (m *Mapped) Done() error {
	if m.cursor < len(m.secs) {
		return fmt.Errorf("snapshot: %d unconsumed trailing sections (next id %d)",
			len(m.secs)-m.cursor, m.secs[m.cursor].ID)
	}
	return nil
}

// VerifyAll checks every section payload against its TOC CRC — one
// sequential hardware-CRC pass over the mapped bytes, the cheap
// whole-file integrity check warm restart runs before trusting a file
// that was not verified at fetch time.
func (m *Mapped) VerifyAll() error {
	for i := range m.secs {
		if err := m.secs[i].Verify(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the Mapped's own region reference. Structures that
// retained the region keep it alive; Close only ends this handle.
func (m *Mapped) Close() error {
	if m.region != nil {
		r := m.region
		m.region = nil
		r.Release()
	}
	return nil
}

// MapKeySection views a v2 key section's keys in place: the 8-byte
// prefix (width + alignment pad) is validated exactly as ReadKeySection
// does, then the body is reinterpreted with no copy. The payload starts
// page-aligned and the prefix is 8 bytes, so the key data is aligned for
// any key width; a fallback buffer that happens to be misaligned fails
// the View check and the caller falls back to the heap read.
func MapKeySection[K kv.Key](s *MappedSection) ([]K, error) {
	width := int64(kv.Width[K]())
	if int64(len(s.Data)) < 8 {
		return nil, fmt.Errorf("snapshot: key section %d too short (%d bytes)", s.ID, len(s.Data))
	}
	if got := int64(binary.LittleEndian.Uint32(s.Data)); got != width {
		return nil, fmt.Errorf("snapshot: key section %d has %d-byte keys, this index uses %d-byte keys", s.ID, got, width)
	}
	if pad := binary.LittleEndian.Uint32(s.Data[4:8]); pad != 0 {
		return nil, fmt.Errorf("snapshot: key section %d has nonzero alignment pad %08x", s.ID, pad)
	}
	body := s.Data[8:]
	if int64(len(body))%width != 0 {
		return nil, fmt.Errorf("snapshot: key section %d payload %d bytes is not a multiple of the %d-byte key width",
			s.ID, len(body), width)
	}
	return mapped.View[K](body)
}

// parseMapped validates the container geometry end to end. Every read is
// bounds-checked against len(data) before it happens, and every TOC
// claim is recomputed from the walk rather than believed.
func parseMapped(data []byte) (*Mapped, error) {
	const headFixed = 8 + 4 + 4
	if len(data) < headFixed+1+16+footerSize {
		return nil, fmt.Errorf("%w (only %d bytes)", ErrNotMappable, len(data))
	}
	if string(data[:8]) != string(magic2[:]) {
		if string(data[:8]) == string(magic[:]) {
			return nil, fmt.Errorf("%w (v1 streaming layout)", ErrNotMappable)
		}
		return nil, fmt.Errorf("%w (bad magic)", ErrNotMappable)
	}
	if ver := binary.LittleEndian.Uint32(data[8:]); ver != Version2 {
		return nil, fmt.Errorf("snapshot: container version %d under v2 magic, this build reads %d: %w",
			ver, Version2, ErrVersionUnsupported)
	}
	kindLen := binary.LittleEndian.Uint32(data[12:])
	if kindLen == 0 || kindLen > MaxKindLen {
		return nil, fmt.Errorf("snapshot: invalid kind length %d (must be 1..%d)", kindLen, MaxKindLen)
	}
	headEnd := int64(headFixed) + int64(kindLen)
	if headEnd+16+footerSize > int64(len(data)) {
		return nil, fmt.Errorf("snapshot: container too short for its %d-byte kind", kindLen)
	}
	kind := string(data[headFixed:headEnd])

	foot := data[len(data)-footerSize:]
	if string(foot[24:32]) != string(endMagic[:]) {
		return nil, fmt.Errorf("snapshot: footer end magic %q, want %q: truncated or not a v2 container", foot[24:32], endMagic[:])
	}
	if reserved := binary.LittleEndian.Uint32(foot[20:24]); reserved != 0 {
		return nil, fmt.Errorf("snapshot: footer reserved word is %08x, want 0", reserved)
	}
	tocOff := binary.LittleEndian.Uint64(foot[0:8])
	tocCount := binary.LittleEndian.Uint32(foot[8:12])
	storedTocCRC := binary.LittleEndian.Uint32(foot[12:16])
	// Each section costs at least a 16-byte header, so a count beyond
	// size/16 is structurally impossible — reject before any allocation.
	if uint64(tocCount) > uint64(len(data))/16 {
		return nil, fmt.Errorf("snapshot: TOC claims %d sections in a %d-byte container", tocCount, len(data))
	}
	tocBytes := uint64(tocCount) * tocEntrySize
	wantTocEnd := uint64(len(data) - footerSize)
	if tocOff > wantTocEnd || wantTocEnd-tocOff != tocBytes {
		return nil, fmt.Errorf("snapshot: TOC at offset %d with %d entries does not fill the %d bytes before the footer",
			tocOff, tocCount, wantTocEnd)
	}
	crc := crc32.New(crcTable)
	crc.Write(data[tocOff:wantTocEnd])
	crc.Write(foot[0:12])
	if got := crc.Sum32(); got != storedTocCRC {
		return nil, fmt.Errorf("snapshot: TOC checksum mismatch (stored %08x, computed %08x)", storedTocCRC, got)
	}

	// Walk the section chain exactly as the streaming reader would,
	// cross-checking each header and padding run against its TOC entry.
	m := &Mapped{data: data, kind: kind, secs: make([]MappedSection, 0, tocCount)}
	pos := headEnd
	for i := uint32(0); i < tocCount; i++ {
		e := data[tocOff+uint64(i)*tocEntrySize:]
		id := binary.LittleEndian.Uint32(e)
		secCRC := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if id == 0 {
			return nil, fmt.Errorf("snapshot: TOC entry %d has reserved id 0", i)
		}
		if pos+16 > int64(tocOff) {
			return nil, fmt.Errorf("snapshot: section %d header at %d overruns the TOC", i, pos)
		}
		h := data[pos:]
		if hid := binary.LittleEndian.Uint32(h); hid != id {
			return nil, fmt.Errorf("snapshot: section %d header id %d does not match TOC id %d", i, hid, id)
		}
		if r := binary.LittleEndian.Uint32(h[4:]); r != 0 {
			return nil, fmt.Errorf("snapshot: section %d header reserved word is %08x", i, r)
		}
		if hlen := binary.LittleEndian.Uint64(h[8:]); hlen != length {
			return nil, fmt.Errorf("snapshot: section %d header length %d does not match TOC length %d", i, hlen, length)
		}
		pos += 16
		wantOff := pos + padTo(pos, pageAlign)
		// Bound the aligned payload start before anything dereferences it:
		// at least the 16-byte end marker must fit between the payload and
		// the TOC, so wantOff ≤ tocOff-16 — which also bounds the zero-scan.
		if wantOff+16 > int64(tocOff) {
			return nil, fmt.Errorf("snapshot: section %d payload at %d overruns the TOC at %d", i, wantOff, tocOff)
		}
		if off != uint64(wantOff) {
			return nil, fmt.Errorf("snapshot: section %d payload offset %d is not the aligned %d", i, off, wantOff)
		}
		for ; pos < wantOff; pos++ {
			if data[pos] != 0 {
				return nil, fmt.Errorf("snapshot: section %d has nonzero padding at offset %d", i, pos)
			}
		}
		// length is hostile until bounded: it must fit between the payload
		// start and the end marker that precedes the TOC.
		if room := tocOff - 16 - off; length > room {
			return nil, fmt.Errorf("snapshot: section %d payload [%d, +%d) overruns the container", i, off, length)
		}
		pos = int64(off + length)
		m.secs = append(m.secs, MappedSection{
			ID:   id,
			Off:  int64(off),
			Data: data[off : off+length : off+length],
			crc:  secCRC,
		})
	}
	if pos+16 != int64(tocOff) {
		return nil, fmt.Errorf("snapshot: sections end at %d but the TOC starts at %d", pos+16, tocOff)
	}
	end := data[pos:]
	if id := binary.LittleEndian.Uint32(end); id != 0 {
		return nil, fmt.Errorf("snapshot: end marker has id %d, want 0", id)
	}
	if r := binary.LittleEndian.Uint32(end[4:]); r != 0 {
		return nil, fmt.Errorf("snapshot: end marker reserved word is %08x", r)
	}
	if l := binary.LittleEndian.Uint64(end[8:]); l != 0 {
		return nil, fmt.Errorf("snapshot: end marker with nonzero length %d", l)
	}
	return m, nil
}
