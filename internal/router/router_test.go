package router

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kv"
)

// mixedCorpora builds the heterogeneous key sets the router exists for,
// plus homogeneous and degenerate ones it must still be exact on.
func mixedCorpora() map[string][]uint64 {
	rng := rand.New(rand.NewSource(7))
	dups := make([]uint64, 0, 4000)
	v := uint64(500)
	for len(dups) < 4000 {
		run := 1 + rng.Intn(300)
		for j := 0; j < run && len(dups) < 4000; j++ {
			dups = append(dups, v)
		}
		v += uint64(1 + rng.Intn(1000))
	}
	return map[string][]uint64{
		"empty":     nil,
		"single":    {9},
		"tiny":      {1, 2, 3, 5, 8, 13},
		"piecewise": dataset.Piecewise(30_000, 11),
		"dup-runs":  dups,
		"osmc":      dataset.MustGenerate(dataset.Osmc, 64, 20_000, 5),
		"uden":      dataset.MustGenerate(dataset.UDen, 64, 20_000, 6),
		"wiki":      dataset.MustGenerate(dataset.Wiki, 64, 20_000, 8),
	}
}

// TestRouterConformance: Find and FindBatch are bit-identical to
// kv.LowerBound on every corpus, including queries outside every shard.
func TestRouterConformance(t *testing.T) {
	for name, keys := range mixedCorpora() {
		keys := keys
		t.Run(name, func(t *testing.T) {
			r, err := New(keys, Config{Shards: 8})
			if err != nil {
				t.Fatal(err)
			}
			if r.Len() != len(keys) {
				t.Fatalf("Len = %d, want %d", r.Len(), len(keys))
			}
			rng := rand.New(rand.NewSource(3))
			qs := make([]uint64, 0, 4000)
			for i := 0; i < 1500; i++ {
				if len(keys) > 0 {
					q := keys[rng.Intn(len(keys))]
					qs = append(qs, q, q+1, q-1)
				}
				qs = append(qs, rng.Uint64())
			}
			qs = append(qs, 0, ^uint64(0))
			want := make([]int, len(qs))
			for i, q := range qs {
				want[i] = kv.LowerBound(keys, q)
				if got := r.Find(q); got != want[i] {
					t.Fatalf("Find(%d) = %d, want %d", q, got, want[i])
				}
			}
			got := r.FindBatch(qs, nil)
			for i := range qs {
				if got[i] != want[i] {
					t.Fatalf("FindBatch[%d] (q=%d) = %d, want %d", i, qs[i], got[i], want[i])
				}
			}
			// Traced twin agrees and touches something on non-empty corpora.
			touches := 0
			for i, q := range qs[:100] {
				if got := r.TraceFind(q, func(uint64, int) { touches++ }); got != want[i] {
					t.Fatalf("TraceFind(%d) = %d, want %d", q, got, want[i])
				}
			}
			if len(keys) > 0 && touches == 0 {
				t.Error("TraceFind reported no accesses")
			}
			// Range queries across shard boundaries.
			for trial := 0; trial < 300; trial++ {
				a := rng.Uint64()
				b := a + uint64(rng.Intn(1<<30))
				first, last := r.FindRange(a, b)
				if wf := kv.LowerBound(keys, a); first != wf {
					t.Fatalf("FindRange first = %d, want %d", first, wf)
				}
				if wl := kv.LowerBound(keys, b+1); last != wl && b+1 != 0 {
					t.Fatalf("FindRange last = %d, want %d", last, wl)
				}
			}
		})
	}
}

// TestRouterLookup checks the existence pairing.
func TestRouterLookup(t *testing.T) {
	keys := dataset.Piecewise(10_000, 2)
	r, err := New(keys, Config{Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 97 {
		pos, found := r.Lookup(keys[i])
		if !found {
			t.Fatalf("Lookup(%d): not found", keys[i])
		}
		if keys[pos] != keys[i] || (pos > 0 && keys[pos-1] == keys[i]) {
			t.Fatalf("Lookup(%d) = %d: not the first occurrence", keys[i], pos)
		}
	}
}

// TestRouterPicksDistinctBackends: on the piecewise dataset the cost
// model must route different regions to different backends — that is the
// point of the hybrid.
func TestRouterPicksDistinctBackends(t *testing.T) {
	keys := dataset.Piecewise(60_000, 4)
	r, err := New(keys, Config{Shards: 12})
	if err != nil {
		t.Fatal(err)
	}
	if d := r.DistinctBackends(); d < 2 {
		t.Errorf("router picked %d distinct backends on a piecewise dataset, want >= 2\n%s",
			d, r.Describe())
	}
	// The smooth region should not pay for a correction layer: at least
	// one shard in the first (smooth) third must run a non-ST backend,
	// and at least one drift-heavy shard must run the Shift-Table.
	var sawBare, sawST bool
	for _, c := range r.Choices() {
		if c.Backend == "IM+ST" {
			sawST = true
		} else {
			sawBare = true
		}
	}
	if !sawBare || !sawST {
		t.Logf("choices:\n%s", r.Describe())
	}
}

// TestRouterDuplicateRunAlignment: a shard boundary through a duplicate
// run would break global lower-bound semantics; build over a corpus that
// is one giant run plus neighbours and verify exactness.
func TestRouterDuplicateRunAlignment(t *testing.T) {
	keys := make([]uint64, 0, 5000)
	for i := 0; i < 100; i++ {
		keys = append(keys, 10)
	}
	for i := 0; i < 4800; i++ {
		keys = append(keys, 1000) // one run spanning many equal-count cuts
	}
	keys = append(keys, 2000, 3000)
	r, err := New(keys, Config{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []uint64{0, 9, 10, 11, 999, 1000, 1001, 1999, 2000, 2500, 3000, 3001} {
		if got, want := r.Find(q), kv.LowerBound(keys, q); got != want {
			t.Fatalf("Find(%d) = %d, want %d\n%s", q, got, want, r.Describe())
		}
	}
}

// TestRouterCapabilities: the router satisfies the full index contract
// through the package-level helpers.
func TestRouterCapabilities(t *testing.T) {
	keys := dataset.Piecewise(8_000, 9)
	r, err := New(keys, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ix index.Index[uint64] = r
	if _, ok := ix.(index.Ranger[uint64]); !ok {
		t.Error("router does not implement Ranger")
	}
	if _, ok := ix.(index.BatchFinder[uint64]); !ok {
		t.Error("router does not implement BatchFinder")
	}
	if _, ok := ix.(index.Tracer[uint64]); !ok {
		t.Error("router does not implement Tracer")
	}
	ce, ok := ix.(index.CostEstimator)
	if !ok {
		t.Fatal("router does not implement CostEstimator")
	}
	if ns := ce.EstimateNs(DefaultLatency); ns <= 0 || ns > 1e9 {
		t.Errorf("EstimateNs = %v", ns)
	}
	if ix.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", ix.SizeBytes())
	}
}
