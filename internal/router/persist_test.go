package router

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/snapshot"
)

func saveRouter(t *testing.T, r *Router[uint64]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := index.Save[uint64](&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRouterSnapshotRoundTrip: the hybrid restores with the same routing
// decisions and bit-identical query results; Persister-capable shards
// load natively, the rest rebuild from the plan.
func TestRouterSnapshotRoundTrip(t *testing.T) {
	keys := dataset.Piecewise(60_000, 3)
	orig, err := New(keys, Config{Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	raw := saveRouter(t, orig)
	loadedIx, err := index.Load[uint64](bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok := loadedIx.(*Router[uint64])
	if !ok {
		t.Fatalf("router snapshot loaded as %T", loadedIx)
	}
	if loaded.Shards() != orig.Shards() || loaded.Len() != orig.Len() {
		t.Fatalf("restored %d shards/%d keys, want %d/%d",
			loaded.Shards(), loaded.Len(), orig.Shards(), orig.Len())
	}
	oc, lc := orig.Choices(), loaded.Choices()
	for i := range oc {
		if lc[i].Backend != oc[i].Backend || lc[i].Len != oc[i].Len || lc[i].FirstKey != oc[i].FirstKey {
			t.Fatalf("shard %d choice %+v restored as %+v", i, oc[i], lc[i])
		}
	}
	rng := rand.New(rand.NewSource(11))
	qs := make([]uint64, 8_000)
	for i := range qs {
		if i%2 == 0 {
			qs[i] = keys[rng.Intn(len(keys))]
		} else {
			qs[i] = rng.Uint64() % (keys[len(keys)-1] + 2)
		}
	}
	for _, q := range qs {
		if got, want := loaded.Find(q), orig.Find(q); got != want {
			t.Fatalf("loaded Find(%d) = %d, want %d", q, got, want)
		}
	}
	want := orig.FindBatch(qs, nil)
	got := loaded.FindBatch(qs, nil)
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("loaded FindBatch[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRouterSnapshotCorruption: byte flips anywhere — keys, plan, or a
// shard's model/layer sections — must be rejected, structurally or by
// the container checksum.
func TestRouterSnapshotCorruption(t *testing.T) {
	keys := dataset.Piecewise(4_000, 5)
	orig, err := New(keys, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := saveRouter(t, orig)
	for i := 0; i < len(raw); i += 7 {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x10
		if _, err := index.Load[uint64](bytes.NewReader(bad), int64(len(bad))); err == nil {
			t.Fatalf("flipped byte %d of %d went undetected", i, len(raw))
		}
	}
	for cut := 0; cut < len(raw); cut += 101 {
		if _, err := index.Load[uint64](bytes.NewReader(raw[:cut]), int64(cut)); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// TestRouterPlanOverflow: a crafted plan whose shard length is near 2^64
// must be rejected, not wrap the span check and panic on keys[lo:hi]
// (regression: the original check computed off+length in uint64 before
// bounding length, so 10+(2^64-5) wrapped to 5 and passed).
func TestRouterPlanOverflow(t *testing.T) {
	n := 100
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	evil := func(lens [][2]uint64) []byte {
		var buf bytes.Buffer
		sw, err := snapshot.NewWriter(&buf, SnapshotKind)
		if err != nil {
			t.Fatal(err)
		}
		if err := snapshot.WriteKeySection(sw, secRouterKeys, keys); err != nil {
			t.Fatal(err)
		}
		plan := binary.LittleEndian.AppendUint32(nil, uint32(len(lens)))
		for _, ol := range lens {
			off, length := ol[0], ol[1]
			if off < uint64(n) {
				plan = binary.LittleEndian.AppendUint64(plan, keys[off])
			} else {
				plan = binary.LittleEndian.AppendUint64(plan, 0)
			}
			plan = binary.LittleEndian.AppendUint64(plan, off)
			plan = binary.LittleEndian.AppendUint64(plan, length)
			plan = binary.LittleEndian.AppendUint64(plan, 0) // estNs
			plan = append(plan, 0, shardRebuild)
			plan = binary.LittleEndian.AppendUint32(plan, 2)
			plan = append(plan, "BS"...)
		}
		if err := sw.Bytes(secRouterPlan, plan); err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for name, lens := range map[string][][2]uint64{
		"wrapping-length":   {{0, 10}, {10, ^uint64(0) - 4}, {5, 95}},
		"max-length":        {{0, ^uint64(0)}},
		"length-beyond-n":   {{0, uint64(n) + 1}},
		"zero-length":       {{0, 0}, {0, 100}},
		"short-of-coverage": {{0, 50}},
	} {
		raw := evil(lens)
		ix, err := index.Load[uint64](bytes.NewReader(raw), int64(len(raw)))
		if err == nil {
			t.Errorf("%s: hostile plan accepted (loaded %s)", name, ix.Name())
		}
	}
}

// TestRouterSnapshotNoKeyDuplication: shards persist keylessly, so the
// file carries the keys exactly once — the snapshot stays within the raw
// key bytes plus layers and metadata, far under double.
func TestRouterSnapshotNoKeyDuplication(t *testing.T) {
	keys := dataset.Piecewise(40_000, 9)
	r, err := New(keys, Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	raw := saveRouter(t, r)
	keyBytes := 8 * len(keys)
	// Keys once (64 KB slack for plan, specs, layers at this N — layers
	// here are small; the point is the absence of a second key copy).
	if len(raw) > keyBytes+keyBytes/2 {
		t.Errorf("snapshot is %d bytes for %d bytes of keys: keys look duplicated", len(raw), keyBytes)
	}
}

// TestRouterSnapshotFile: SaveFile/LoadFile, empty router included.
func TestRouterSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	keys := dataset.Piecewise(20_000, 7)
	orig, err := New(keys, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "router.snap")
	if err := index.SaveFile[uint64](path, orig); err != nil {
		t.Fatal(err)
	}
	if kind, err := snapshot.ReadKindFile(path); err != nil || kind != SnapshotKind {
		t.Fatalf("kind = %q, %v", kind, err)
	}
	loaded, err := index.LoadFile[uint64](path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 97 {
		if got, want := loaded.Find(keys[i]), orig.Find(keys[i]); got != want {
			t.Fatalf("loaded Find(%d) = %d, want %d", keys[i], got, want)
		}
	}

	empty, err := New[uint64](nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, "empty.snap")
	if err := index.SaveFile[uint64](path2, empty); err != nil {
		t.Fatal(err)
	}
	le, err := index.LoadFile[uint64](path2)
	if err != nil {
		t.Fatal(err)
	}
	if le.Len() != 0 || le.Find(42) != 0 {
		t.Error("empty router round trip broken")
	}
}
