package router

import "repro/internal/snapshot"

// Transcode schema for the router kind (DESIGN.md §13): the shared key
// section and the per-shard layer sections are the only version-sensitive
// payloads; the partition plan and model specs are byte-identical in both
// container layouts.
func init() {
	snapshot.RegisterTranscodeSchema(SnapshotKind, map[uint32]snapshot.Role{
		secRouterKeys:       snapshot.RoleKeys,
		secRouterPlan:       snapshot.RoleOpaque,
		secRouterShardModel: snapshot.RoleOpaque,
		secRouterShardLayer: snapshot.RoleLayer,
	})
}
