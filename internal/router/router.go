// Package router implements a range-partitioned hybrid index on top of the
// unified backend abstraction (internal/index): the key space is split
// into contiguous shards, and for each shard the §3.7 cost model —
// generalised to the per-backend CostEstimator capability — picks the
// cheapest backend over a training sample. Heterogeneous key
// distributions (a smooth region here, a drift-heavy region there, long
// duplicate runs elsewhere) thus get a Shift-Table where correction pays
// for its extra lookup, a bare interpolation where it does not, and a
// B+tree where even corrected windows stay wide — per region, not per
// dataset.
//
// The router itself implements the full index contract: scalar Find,
// Ranger, BatchFinder (scatter to shards, reuse each shard's native batch
// pipeline, gather in input order), Tracer where every shard has a twin,
// and CostEstimator (the query-weighted mean of its shards).
package router

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/mapped"
	"repro/internal/memsim"
	"repro/internal/search"
)

// DefaultLatency is an analytic stand-in for the measured L(s) curve
// (§2.3): one non-cached probe plus one more miss per binary-search
// decade. Use bench.FitLatencyFn over a measured curve for
// machine-accurate routing; the analytic shape preserves the orderings
// the router's argmin needs.
func DefaultLatency(s int) float64 {
	return 60 + 14*search.Log2N(s)
}

// Config controls router construction.
type Config struct {
	// Shards is the number of key-space partitions. 0 derives one shard
	// per ~16k keys, clamped to [4, 64]: fine enough that shard cuts
	// track distribution changes (a coarse grid mixes regimes inside one
	// shard and flattens the routing advantage), small enough that the
	// routing array stays a few cache lines.
	Shards int
	// Backends names the candidate registry backends evaluated per shard.
	// nil means the default slate: IM (bare model), IM+ST (corrected),
	// B+tree, RS, BS.
	Backends []string
	// Latency is the L(s) curve parameterising the cost model; nil means
	// DefaultLatency.
	Latency func(s int) float64
	// TrainMax caps the per-shard training sample the candidates are
	// built on for cost evaluation (the winner is rebuilt on the full
	// shard when sampling engaged). 0 means 131072, which covers the
	// default shard size entirely — estimates are then exact-scale.
	// Sampling below the shard size trades build time for a known
	// approximation: backends whose cost grows with n (trees, binary
	// search) are underpriced by the log-factor between sample and
	// shard, while ε-bounded backends are not.
	TrainMax int
	// Seed drives training-query sampling for backends without a
	// CostEstimator (their cost is measured, not estimated).
	Seed int64
}

// DefaultBackends is the default candidate slate: a bare interpolation
// model (wins where the CDF is smooth), the Shift-Table-corrected model
// (wins where drift dominates), a B+tree (wins where even corrected
// windows stay wide, e.g. heavy duplicate congestion), a radix spline,
// and binary search as the always-applicable floor.
func DefaultBackends() []string {
	return []string{"IM", "IM+ST", "B+tree", "RS", "BS"}
}

func (c *Config) defaults() {
	if c.Backends == nil {
		c.Backends = DefaultBackends()
	}
	if c.Latency == nil {
		c.Latency = DefaultLatency
	}
	if c.TrainMax == 0 {
		c.TrainMax = 131072
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Choice records the routing decision for one shard.
type Choice struct {
	Backend  string  // winning backend name
	EstNs    float64 // its cost estimate on the training sample
	FirstKey uint64  // shard's first key
	Len      int     // keys in the shard
	Measured bool    // true when the cost was measured, not model-estimated
}

// Router is a built hybrid index over a sorted key slice.
type Router[K kv.Key] struct {
	keys    []K
	bounds  []K   // bounds[i] = first key of shard i (strictly increasing)
	offs    []int // offs[i] = global rank of shard i's first key
	shards  []index.Index[K]
	choices []Choice
	n       int

	// Mapped-snapshot state (mapped.go): the backing region, the
	// per-shard key spans (residency units), and the optional tiered
	// residency manager. All nil/empty for heap-built routers.
	region   *mapped.Region
	keySpans []mapped.Span
	res      *mapped.Residency
}

// New builds the router: shard the key space (never splitting a duplicate
// run), evaluate every candidate backend's §3.7 cost on a per-shard
// training sample, build the cheapest per shard. Shards build
// concurrently — candidate training, cost evaluation and the full-scale
// winner build are independent per shard — capped at GOMAXPROCS workers;
// each shard draws from its own deterministic rng stream (seeded from
// Config.Seed and the shard index), so the routing table is reproducible
// for a given seed regardless of scheduling. Backends priced by
// measurement rather than cost model see slightly noisier timings while
// neighbouring shards build; the default slate is fully cost-modelled.
func New[K kv.Key](keys []K, cfg Config) (*Router[K], error) {
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("router: keys are not sorted")
	}
	cfg.defaults()
	r := &Router[K]{keys: keys, n: len(keys)}
	if r.n == 0 {
		return r, nil
	}
	cuts := shardCuts(keys, cfg.Shards)
	nsh := len(cuts) - 1
	r.bounds = make([]K, nsh)
	r.offs = make([]int, nsh)
	r.shards = make([]index.Index[K], nsh)
	r.choices = make([]Choice, nsh)
	errs := make([]error, nsh)
	workers := runtime.GOMAXPROCS(0)
	if workers > nsh {
		workers = nsh
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < nsh; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			lo, hi := cuts[i], cuts[i+1]
			shard := keys[lo:hi]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9E3779B9))
			ix, choice, err := pickBackend(shard, &cfg, rng)
			if err != nil {
				errs[i] = fmt.Errorf("router: shard %d [%v, …): %w", i, shard[0], err)
				return
			}
			choice.FirstKey = uint64(shard[0])
			choice.Len = len(shard)
			r.bounds[i] = shard[0]
			r.offs[i] = lo
			r.shards[i] = ix
			r.choices[i] = choice
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return r, nil
}

// shardCuts returns the shard boundary positions [0, …, n]: equal-count
// targets snapped to duplicate-run starts so a run never straddles two
// shards (local lower bound + offset must equal the global lower bound).
func shardCuts[K kv.Key](keys []K, shards int) []int {
	n := len(keys)
	if shards == 0 {
		shards = n / 16384
		if shards < 4 {
			shards = 4
		}
		if shards > 64 {
			shards = 64
		}
	}
	if shards > n {
		shards = n
	}
	cuts := []int{0}
	for i := 1; i < shards; i++ {
		p := i * n / shards
		// Snap to the first occurrence of keys[p]; if that collapses into
		// the previous cut (one giant run), skip past the run instead.
		p2 := kv.LowerBound(keys, keys[p])
		if p2 <= cuts[len(cuts)-1] {
			p2 = kv.UpperBound(keys, keys[p])
		}
		if p2 <= cuts[len(cuts)-1] || p2 >= n {
			continue
		}
		cuts = append(cuts, p2)
	}
	return append(cuts, n)
}

// pickBackend evaluates the candidate slate on a training sample of the
// shard and builds the winner over the full shard keys.
func pickBackend[K kv.Key](shard []K, cfg *Config, rng *rand.Rand) (index.Index[K], Choice, error) {
	sample := shard
	if len(sample) > cfg.TrainMax {
		stride := (len(shard) + cfg.TrainMax - 1) / cfg.TrainMax
		sample = make([]K, 0, len(shard)/stride+1)
		for i := 0; i < len(shard); i += stride {
			sample = append(sample, shard[i])
		}
	}
	best := Choice{EstNs: 1e300}
	var bestIx index.Index[K]
	for _, name := range cfg.Backends {
		be, err := index.Get[K](name)
		if err != nil {
			return nil, Choice{}, err
		}
		if be.Applicable(shard) != "" {
			continue // N/A on the full shard (e.g. ART over duplicates)
		}
		trained, err := be.Build(sample)
		if err != nil {
			continue
		}
		ns, measured := estimateNs(trained, sample, cfg.Latency, rng)
		if ns < best.EstNs {
			best = Choice{Backend: name, EstNs: ns, Measured: measured}
			bestIx = trained
		}
	}
	if best.Backend == "" {
		return nil, Choice{}, fmt.Errorf("no applicable backend among %v", cfg.Backends)
	}
	// With no sampling the winner was already built over the full shard;
	// otherwise rebuild it at full scale.
	if len(sample) == len(shard) {
		return bestIx, best, nil
	}
	ix, err := index.Build[K](best.Backend, shard)
	if err != nil {
		return nil, Choice{}, err
	}
	return ix, best, nil
}

// estimateNs prices one trained candidate: through its CostEstimator
// capability when it has one (Eq. 9/10 generalised), by timing lookups on
// the training sample otherwise.
func estimateNs[K kv.Key](ix index.Index[K], sample []K, l func(s int) float64, rng *rand.Rand) (float64, bool) {
	if ce, ok := ix.(index.CostEstimator); ok {
		return ce.EstimateNs(l), false
	}
	probes := 512
	if probes > len(sample) {
		probes = len(sample)
	}
	if probes == 0 {
		return 0, true
	}
	qs := make([]K, probes)
	for i := range qs {
		qs[i] = sample[rng.Intn(len(sample))]
	}
	sink := 0
	start := time.Now()
	for _, q := range qs {
		sink += ix.Find(q)
	}
	if sink == -1 {
		panic("unreachable; defeats dead-code elimination")
	}
	return float64(time.Since(start).Nanoseconds()) / float64(probes), true
}

// routeOf returns the shard index serving q: the last shard whose first
// key is <= q (queries below every shard route to shard 0, whose local
// Find answers 0).
func (r *Router[K]) routeOf(q K) int {
	s := kv.UpperBound(r.bounds, q) - 1
	if s < 0 {
		s = 0
	}
	return s
}

// Find returns the global lower-bound rank of q. Shard boundaries never
// split duplicate runs, so the shard-local rank plus the shard's base
// offset is exactly the global rank.
func (r *Router[K]) Find(q K) int {
	if r.n == 0 {
		return 0
	}
	s := r.routeOf(q)
	if r.res != nil {
		r.res.Touch(s, 1)
	}
	return r.offs[s] + r.shards[s].Find(q)
}

// Lookup pairs Find with an existence check.
func (r *Router[K]) Lookup(q K) (pos int, found bool) {
	pos = r.Find(q)
	return pos, pos < r.n && r.keys[pos] == q
}

// FindRange returns the half-open rank range of keys in the inclusive key
// range [a, b]; the two bounding searches may land in different shards.
func (r *Router[K]) FindRange(a, b K) (first, last int) {
	if b < a {
		return 0, 0
	}
	first = r.Find(a)
	if b == kv.MaxKey[K]() {
		return first, r.n
	}
	return first, r.Find(b + 1)
}

// FindBatch answers a batch of lower-bound queries: scatter queries to
// their shards, reuse each shard's native batch pipeline (BatchFinder
// capability — the Shift-Table shards run their staged predict/gather/
// probe engine), and gather results in input order.
func (r *Router[K]) FindBatch(qs []K, out []int) []int {
	if cap(out) >= len(qs) {
		out = out[:len(qs)]
	} else {
		out = make([]int, len(qs))
	}
	if r.n == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	nsh := len(r.shards)
	// Counting scatter: route every query, bucket stably by shard.
	route := make([]int32, len(qs))
	count := make([]int32, nsh+1)
	for i, q := range qs {
		s := r.routeOf(q)
		route[i] = int32(s)
		count[s+1]++
	}
	for s := 0; s < nsh; s++ {
		count[s+1] += count[s]
	}
	scatterQ := make([]K, len(qs))
	scatterIdx := make([]int32, len(qs))
	fill := make([]int32, nsh)
	for i, q := range qs {
		s := route[i]
		at := count[s] + fill[s]
		scatterQ[at] = q
		scatterIdx[at] = int32(i)
		fill[s]++
	}
	res := make([]int, 0, 256)
	for s := 0; s < nsh; s++ {
		lo, hi := int(count[s]), int(count[s+1])
		if lo == hi {
			continue
		}
		if r.res != nil {
			r.res.Touch(s, int64(hi-lo))
		}
		res = index.FindBatch(r.shards[s], scatterQ[lo:hi], res)
		off := r.offs[s]
		for j, v := range res {
			out[scatterIdx[lo+j]] = off + v
		}
	}
	return out
}

// TraceFind is the instrumented twin of Find when the routed shard has
// one; shards without a twin charge only their routing probe.
func (r *Router[K]) TraceFind(q K, touch search.Touch) int {
	if r.n == 0 {
		return 0
	}
	s := r.routeOf(q)
	touch(kv.Addr(r.bounds, s), kv.Width[K]())
	if trace := index.TraceFindFn(r.shards[s]); trace != nil {
		return r.offs[s] + trace(q, touch)
	}
	return r.offs[s] + r.shards[s].Find(q)
}

// Len returns the number of indexed keys.
func (r *Router[K]) Len() int { return r.n }

// Name identifies the backend in benchmark output.
func (r *Router[K]) Name() string { return "router" }

// SizeBytes sums the shard footprints plus the routing arrays.
func (r *Router[K]) SizeBytes() int {
	total := len(r.bounds)*kv.Width[K]() + len(r.offs)*8
	for _, s := range r.shards {
		total += s.SizeBytes()
	}
	return total
}

// EstimateNs implements the CostEstimator capability for the router
// itself: the routing probe (in-cache for realistic shard counts, priced
// at one short search over the bounds array) plus the query-weighted mean
// of the shard estimates (assuming, as the paper's Eq. 9 does, that
// queries follow the data distribution).
func (r *Router[K]) EstimateNs(l func(s int) float64) float64 {
	if r.n == 0 {
		return 0
	}
	var acc float64
	for i, s := range r.shards {
		var ns float64
		if ce, ok := s.(index.CostEstimator); ok {
			ns = ce.EstimateNs(l)
		} else {
			ns = r.choices[i].EstNs
		}
		// Under a residency budget, queries into a cold shard pay page
		// faults the cache model does not see (DESIGN.md §12).
		if r.res != nil && !r.res.Resident(i) {
			ns += memsim.ColdQueryNs()
		}
		acc += ns * float64(s.Len())
	}
	return l(len(r.bounds))/4 + acc/float64(r.n)
}

// Shards returns the number of key-space partitions.
func (r *Router[K]) Shards() int { return len(r.shards) }

// Choices returns the per-shard routing decisions, in key order.
func (r *Router[K]) Choices() []Choice {
	out := make([]Choice, len(r.choices))
	copy(out, r.choices)
	return out
}

// DistinctBackends returns how many different backends the router chose.
func (r *Router[K]) DistinctBackends() int {
	seen := map[string]bool{}
	for _, c := range r.choices {
		seen[c.Backend] = true
	}
	return len(seen)
}

// Describe renders the routing table for reports and examples.
func (r *Router[K]) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router: %d keys in %d shards\n", r.n, len(r.shards))
	for i, c := range r.choices {
		src := "cost model"
		if c.Measured {
			src = "measured"
		}
		fmt.Fprintf(&b, "  shard %2d  first-key %-20d len %-8d -> %-7s (%.0f ns est, %s)\n",
			i, c.FirstKey, c.Len, c.Backend, c.EstNs, src)
	}
	return b.String()
}
