package router

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/snapshot"
)

// This file persists the hybrid router (DESIGN.md §9). The expensive part
// of building a router is not the winning backends — it is the per-shard
// candidate evaluation (five trained candidates per shard, cost-modelled
// or measured). The snapshot therefore stores the routing *plan* — shard
// cuts, chosen backend, estimate — plus, for shards whose backend can be
// persisted keylessly (a Shift-Table's model spec + layer, a bare model's
// spec), those sections attached by reference to the router's single key
// section; the remaining shards are rebuilt from their key slices at load
// time, which still skips the candidate search. Keys are never written
// twice, and restored shards share the router's key array exactly like
// cold-built ones.

// SnapshotKind identifies router snapshots.
const SnapshotKind = "router"

// Section ids of the router kind. Persisted shards contribute, in shard
// order, a model section and (for shift-table shards) a layer section.
const (
	secRouterKeys       = 1
	secRouterPlan       = 2
	secRouterShardModel = 3 // repeated
	secRouterShardLayer = 4 // repeated, shift-table shards only
)

// maxRouterShards bounds the shard count a plan may claim; real routers
// carry at most 64 shards (Config.Shards is clamped), so anything wildly
// larger is a corrupt header.
const maxRouterShards = 1 << 16

// Shard persistence modes recorded in the plan.
const (
	shardRebuild    = 0 // rebuild the backend over the shard's key slice
	shardTable      = 1 // model spec + layer sections follow
	shardModelIndex = 2 // model spec section follows
)

// SnapshotKind implements the index.Persister capability.
func (r *Router[K]) SnapshotKind() string { return SnapshotKind }

// PersistSnapshot writes the keys once, the routing plan, and the
// keyless sections of every natively-persistable shard.
func (r *Router[K]) PersistSnapshot(sw *snapshot.Writer) error {
	if err := snapshot.WriteKeySection(sw, secRouterKeys, r.keys); err != nil {
		return err
	}
	modes := make([]byte, len(r.shards))
	for i, sh := range r.shards {
		modes[i] = shardMode(sh)
	}
	plan := make([]byte, 0, 16+len(r.shards)*48)
	plan = binary.LittleEndian.AppendUint32(plan, uint32(len(r.shards)))
	for i, sh := range r.shards {
		c := r.choices[i]
		plan = binary.LittleEndian.AppendUint64(plan, uint64(r.bounds[i]))
		plan = binary.LittleEndian.AppendUint64(plan, uint64(r.offs[i]))
		plan = binary.LittleEndian.AppendUint64(plan, uint64(sh.Len()))
		plan = binary.LittleEndian.AppendUint64(plan, math.Float64bits(c.EstNs))
		plan = append(plan, boolByte(c.Measured), modes[i])
		plan = binary.LittleEndian.AppendUint32(plan, uint32(len(c.Backend)))
		plan = append(plan, c.Backend...)
	}
	if err := sw.Bytes(secRouterPlan, plan); err != nil {
		return err
	}
	for i, sh := range r.shards {
		var err error
		switch modes[i] {
		case shardTable:
			err = sh.(tablePersister).PersistModelAndLayer(sw, secRouterShardModel, secRouterShardLayer)
		case shardModelIndex:
			err = sh.(modelSpecPersister).PersistModelSpec(sw, secRouterShardModel)
		}
		if err != nil {
			return fmt.Errorf("router: persisting shard %d (%s): %w", i, r.choices[i].Backend, err)
		}
	}
	return nil
}

// tablePersister / modelSpecPersister are the keyless persistence shapes
// of core.Table and core.ModelIndex, matched structurally (the registry's
// IM+ST/RS+ST/RMI+ST shards promote core.Table's methods).
type tablePersister interface {
	PersistModelAndLayer(sw *snapshot.Writer, modelID, layerID uint32) error
}

type modelSpecPersister interface {
	PersistModelSpec(sw *snapshot.Writer, id uint32) error
}

// shardMode classifies how a shard persists: natively keyless where the
// backend supports it, rebuild-from-plan otherwise.
func shardMode[K kv.Key](sh index.Index[K]) byte {
	if _, ok := sh.(tablePersister); ok {
		return shardTable
	}
	if _, ok := sh.(modelSpecPersister); ok {
		return shardModelIndex
	}
	return shardRebuild
}

// planEntry is one decoded shard record of the plan section.
type planEntry struct {
	bound    uint64
	off      int
	length   int
	estNs    float64
	measured bool
	mode     byte
	backend  string
}

// loadSnapshot restores a router: keys, plan, then per shard either the
// keyless sections restored over the shard's slice of the keys, or a
// rebuild of the recorded backend.
func loadSnapshot[K kv.Key](sr *snapshot.Reader) (*Router[K], error) {
	ks, err := sr.Expect(secRouterKeys)
	if err != nil {
		return nil, err
	}
	keys, err := snapshot.ReadKeySection[K](ks, 0)
	if err != nil {
		return nil, err
	}
	if !kv.IsSorted(keys) {
		return nil, fmt.Errorf("router: snapshot keys are not sorted")
	}
	ps, err := sr.Expect(secRouterPlan)
	if err != nil {
		return nil, err
	}
	plan, err := ps.Bytes(0)
	if err != nil {
		return nil, err
	}
	entries, err := decodePlan(plan, len(keys))
	if err != nil {
		return nil, err
	}
	r := &Router[K]{keys: keys, n: len(keys)}
	if len(entries) == 0 {
		if r.n != 0 {
			return nil, fmt.Errorf("router: snapshot plan has no shards over %d keys", r.n)
		}
		return r, nil
	}
	nsh := len(entries)
	r.bounds = make([]K, nsh)
	r.offs = make([]int, nsh)
	r.shards = make([]index.Index[K], nsh)
	r.choices = make([]Choice, nsh)
	for i, e := range entries {
		lo, hi := e.off, e.off+e.length
		shardKeys := keys[lo:hi]
		if uint64(shardKeys[0]) != e.bound {
			return nil, fmt.Errorf("router: shard %d bound %d does not match key %d at rank %d",
				i, e.bound, shardKeys[0], lo)
		}
		// A cut inside a duplicate run would break the local-rank + offset
		// identity Find relies on (shardCuts never produces one).
		if lo > 0 && keys[lo-1] == shardKeys[0] {
			return nil, fmt.Errorf("router: shard %d cut at rank %d splits a duplicate run", i, lo)
		}
		var ix index.Index[K]
		var serr error
		switch e.mode {
		case shardTable:
			var tab *core.Table[K]
			tab, serr = core.LoadTableWithKeys(sr, shardKeys, secRouterShardModel, secRouterShardLayer)
			if serr == nil {
				ix = index.NewShiftIndex(tab)
			}
		case shardModelIndex:
			ix, serr = core.LoadModelIndexWithKeys(sr, shardKeys, secRouterShardModel)
		case shardRebuild:
			ix, serr = index.Build(e.backend, shardKeys)
		default:
			serr = fmt.Errorf("unknown shard persistence mode %d", e.mode)
		}
		if serr != nil {
			return nil, fmt.Errorf("router: restoring shard %d (%s): %w", i, e.backend, serr)
		}
		if ix.Len() != e.length {
			return nil, fmt.Errorf("router: shard %d restored with %d keys, plan records %d",
				i, ix.Len(), e.length)
		}
		r.bounds[i] = shardKeys[0]
		r.offs[i] = lo
		r.shards[i] = ix
		r.choices[i] = Choice{
			Backend:  e.backend,
			EstNs:    e.estNs,
			FirstKey: e.bound,
			Len:      e.length,
			Measured: e.measured,
		}
	}
	return r, nil
}

// decodePlan parses and cross-validates the plan section: shard count
// bounded, offsets contiguous from zero, lengths positive and summing to
// the key count. off and length are validated individually against n
// before any arithmetic that could wrap a hostile u64.
func decodePlan(plan []byte, n int) ([]planEntry, error) {
	if len(plan) < 4 {
		return nil, fmt.Errorf("router: plan section truncated")
	}
	count := int(binary.LittleEndian.Uint32(plan))
	plan = plan[4:]
	if count > maxRouterShards {
		return nil, fmt.Errorf("router: plan claims %d shards (limit %d)", count, maxRouterShards)
	}
	entries := make([]planEntry, 0, count)
	next := 0
	for i := 0; i < count; i++ {
		if len(plan) < 38 {
			return nil, fmt.Errorf("router: plan truncated at shard %d", i)
		}
		var e planEntry
		e.bound = binary.LittleEndian.Uint64(plan)
		off := binary.LittleEndian.Uint64(plan[8:])
		length := binary.LittleEndian.Uint64(plan[16:])
		e.estNs = math.Float64frombits(binary.LittleEndian.Uint64(plan[24:]))
		e.measured = plan[32] != 0
		e.mode = plan[33]
		nameLen := int(binary.LittleEndian.Uint32(plan[34:]))
		plan = plan[38:]
		if nameLen == 0 || nameLen > 255 || nameLen > len(plan) {
			return nil, fmt.Errorf("router: shard %d has invalid backend name length %d", i, nameLen)
		}
		e.backend = string(plan[:nameLen])
		plan = plan[nameLen:]
		if off != uint64(next) {
			return nil, fmt.Errorf("router: shard %d starts at rank %d, expected %d", i, off, next)
		}
		// Bound each field against n on its own before summing: a length
		// near 2^64 must not wrap off+length around the check.
		if length == 0 || length > uint64(n) || off+length > uint64(n) {
			return nil, fmt.Errorf("router: shard %d spans ranks [%d, %d) outside the %d keys",
				i, off, off+length, n)
		}
		e.off, e.length = int(off), int(length)
		next = e.off + e.length
		entries = append(entries, e)
	}
	if len(plan) != 0 {
		return nil, fmt.Errorf("router: %d trailing bytes after the plan entries", len(plan))
	}
	if next != n {
		return nil, fmt.Errorf("router: plan covers %d of %d keys", next, n)
	}
	return entries, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func init() {
	index.RegisterSnapshotLoader[uint64](SnapshotKind, func(sr *snapshot.Reader) (index.Index[uint64], error) {
		return loadSnapshot[uint64](sr)
	})
	index.RegisterSnapshotLoader[uint32](SnapshotKind, func(sr *snapshot.Reader) (index.Index[uint32], error) {
		return loadSnapshot[uint32](sr)
	})
}
