package router

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/mapped"
	"repro/internal/snapshot"
)

// This file is the router's zero-copy load path plus the tiered residency
// hook (DESIGN.md §12). A mapped router views the shared key section in
// place and restores each shard over its slice of that view: shift-table
// shards view their layer sections too, bare-model shards rebuild their
// (parameter-free) models, and rebuild-mode shards build on the heap as
// before — but even they index mapped key pages, so the big allocation
// (the keys) never happens. The router's shard boundaries then double as
// residency spans: SetResidency puts the per-shard key ranges under a
// byte budget, Find/FindBatch report per-shard heat, and EstimateNs
// prices queries into cold shards with the memsim fault model.

// mapSnapshot restores a router over a mapped container. The O(n)
// invariants the streaming loader checks eagerly (keys sorted) are
// trusted here — see the trust note in core's mapped loaders; the O(1)
// per-shard plan cross-checks (bound matches first key, no duplicate-run
// cuts, lengths consistent) are all kept.
func mapSnapshot[K kv.Key](m *snapshot.Mapped) (*Router[K], error) {
	if m.Kind() != SnapshotKind {
		return nil, fmt.Errorf("router: container holds %q, want %q", m.Kind(), SnapshotKind)
	}
	m.Rewind()
	ks, err := m.Expect(secRouterKeys)
	if err != nil {
		return nil, err
	}
	keys, err := snapshot.MapKeySection[K](ks)
	if err != nil {
		return nil, err
	}
	ps, err := m.Expect(secRouterPlan)
	if err != nil {
		return nil, err
	}
	entries, err := decodePlan(ps.Data, len(keys))
	if err != nil {
		return nil, err
	}
	r := &Router[K]{keys: keys, n: len(keys)}
	if len(entries) == 0 {
		if r.n != 0 {
			return nil, fmt.Errorf("router: snapshot plan has no shards over %d keys", r.n)
		}
		return r, nil
	}
	nsh := len(entries)
	r.bounds = make([]K, nsh)
	r.offs = make([]int, nsh)
	r.shards = make([]index.Index[K], nsh)
	r.choices = make([]Choice, nsh)
	r.keySpans = make([]mapped.Span, nsh)
	width := int64(kv.Width[K]())
	for i, e := range entries {
		lo, hi := e.off, e.off+e.length
		shardKeys := keys[lo:hi]
		if uint64(shardKeys[0]) != e.bound {
			return nil, fmt.Errorf("router: shard %d bound %d does not match key %d at rank %d",
				i, e.bound, shardKeys[0], lo)
		}
		if lo > 0 && keys[lo-1] == shardKeys[0] {
			return nil, fmt.Errorf("router: shard %d cut at rank %d splits a duplicate run", i, lo)
		}
		var ix index.Index[K]
		var serr error
		switch e.mode {
		case shardTable:
			var tab *core.Table[K]
			tab, serr = core.MapTableWithKeys(m, shardKeys, secRouterShardModel, secRouterShardLayer)
			if serr == nil {
				ix = index.NewShiftIndex(tab)
			}
		case shardModelIndex:
			ix, serr = core.MapModelIndexWithKeys(m, shardKeys, secRouterShardModel)
		case shardRebuild:
			ix, serr = index.Build(e.backend, shardKeys)
		default:
			serr = fmt.Errorf("unknown shard persistence mode %d", e.mode)
		}
		if serr != nil {
			return nil, fmt.Errorf("router: restoring shard %d (%s): %w", i, e.backend, serr)
		}
		if ix.Len() != e.length {
			return nil, fmt.Errorf("router: shard %d restored with %d keys, plan records %d",
				i, ix.Len(), e.length)
		}
		r.bounds[i] = shardKeys[0]
		r.offs[i] = lo
		r.shards[i] = ix
		r.choices[i] = Choice{
			Backend:  e.backend,
			EstNs:    e.estNs,
			FirstKey: e.bound,
			Len:      e.length,
			Measured: e.measured,
		}
		// The shard's residency span: its slice of the key section's
		// payload (8-byte prefix, then keys at the recorded width).
		r.keySpans[i] = mapped.Span{
			Off: ks.Off + 8 + int64(lo)*width,
			Len: int64(e.length) * width,
		}
	}
	if err := m.Done(); err != nil {
		return nil, err
	}
	if region := m.Region(); region != nil {
		region.Retain()
		runtime.AddCleanup(r, func(reg *mapped.Region) { reg.Release() }, region)
		r.region = region
	}
	return r, nil
}

// Mapped reports whether the router serves from a mapped snapshot region.
func (r *Router[K]) Mapped() bool { return r.region != nil }

// MappedBytes returns the backing region size (0 when heap-resident).
func (r *Router[K]) MappedBytes() int64 {
	if r.region == nil {
		return 0
	}
	return int64(r.region.Len())
}

// SetResidency installs a tiered residency manager over the router's
// per-shard key spans under a byte budget (≤ 0 = unlimited) and runs the
// first Plan, which — with no heat yet — admits the leading shards. The
// manager is consulted by Find/FindBatch (heat) and EstimateNs (cold
// pricing); call Residency().Plan() periodically to re-tier under
// observed traffic. Only mapped routers can tier.
func (r *Router[K]) SetResidency(budget int64) (*mapped.Residency, error) {
	if r.region == nil {
		return nil, fmt.Errorf("router: residency needs a mapped router")
	}
	res, err := mapped.NewResidency(r.region, r.keySpans, budget)
	if err != nil {
		return nil, err
	}
	res.Plan()
	r.res = res
	return res, nil
}

// Residency returns the installed residency manager, nil when untiered.
func (r *Router[K]) Residency() *mapped.Residency { return r.res }

func init() {
	index.RegisterMappedLoader[uint64](SnapshotKind, func(m *snapshot.Mapped) (index.Index[uint64], error) {
		return mapSnapshot[uint64](m)
	})
	index.RegisterMappedLoader[uint32](SnapshotKind, func(m *snapshot.Mapped) (index.Index[uint32], error) {
		return mapSnapshot[uint32](m)
	})
}
