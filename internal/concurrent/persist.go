package concurrent

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/kv"
	snap "repro/internal/snapshot"
	"repro/internal/updatable"
)

// This file persists the concurrent index (DESIGN.md §9). A snapshot of
// the serving index is exactly one of its published read snapshots: the
// frozen updatable.View (persisted through the updatable section
// sequence) plus the sealed write generations stacked on top. Because the
// published snapshot is immutable, persistence runs concurrently with
// reads, writes and compactions without any locks — it streams whatever
// state one atomic pointer load returned.
//
// Warm restart replays rather than reconstructs: Load rebuilds the base
// view, starts a live index (background compactor included), then pushes
// every persisted generation's writes through the public Insert/Delete
// path. Tombstones cancel by key value and only ever target occurrences
// at or below their own generation, so replaying generations oldest-first
// reproduces the persisted multiset exactly.

// SnapshotKind identifies concurrent-index snapshots.
const SnapshotKind = "concurrent"

// Section ids of the concurrent kind (the embedded view uses the
// updatable ids in between).
const (
	secConMeta = 20
	secConIns  = 21 // repeated, one per generation, oldest first
	secConDels = 22 // repeated, paired with secConIns
)

// maxSnapshotGens bounds the generation count a snapshot may claim. The
// compaction policy keeps live stacks to a handful of generations;
// anything beyond this is a corrupt header.
const maxSnapshotGens = 1 << 20

// SnapshotKind implements the persistence capability (same shape as
// index.Persister).
func (ix *Index[K]) SnapshotKind() string { return SnapshotKind }

// PersistSnapshot writes the current published snapshot: policy, view,
// and the pending write generations. Lock-free — concurrent writes land
// in successor snapshots and are simply not part of this one.
func (ix *Index[K]) PersistSnapshot(sw *snap.Writer) error {
	return ix.persistState(ix.snap.Load(), sw)
}

// persistState streams one immutable snapshot. Replication uses it to
// persist a *captured* published state (PublishedState.Persist) so the
// primary can keep writing while the artifact streams out; the bytes are
// deterministic for a given (policy, layer, state) triple, which is what
// the delta-equivalence tests assert.
func (ix *Index[K]) persistState(s *snapshot[K], sw *snap.Writer) error {
	meta := make([]byte, 0, 24)
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ix.policy.Kind))
	meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(ix.policy.Fraction))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(ix.policy.Count))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(s.gens)))
	if err := sw.Bytes(secConMeta, meta); err != nil {
		return err
	}
	if err := updatable.PersistView(sw, s.view, updatable.Config{Layer: ix.layerCfg()}); err != nil {
		return err
	}
	for _, g := range s.gens {
		if err := snap.WriteKeySection(sw, secConIns, g.ins); err != nil {
			return err
		}
		if err := snap.WriteKeySection(sw, secConDels, g.dels); err != nil {
			return err
		}
	}
	return nil
}

// loadSections restores the base and collects the generations to replay.
func loadSections[K kv.Key](sr *snap.Reader) (*updatable.Index[K], CompactionPolicy, []*generation[K], error) {
	var policy CompactionPolicy
	ms, err := sr.Expect(secConMeta)
	if err != nil {
		return nil, policy, nil, err
	}
	meta, err := ms.Bytes(0)
	if err != nil {
		return nil, policy, nil, err
	}
	if len(meta) != 24 {
		return nil, policy, nil, fmt.Errorf("concurrent: meta section is %d bytes, want 24", len(meta))
	}
	policy.Kind = PolicyKind(binary.LittleEndian.Uint32(meta))
	policy.Fraction = math.Float64frombits(binary.LittleEndian.Uint64(meta[4:]))
	count := binary.LittleEndian.Uint64(meta[12:])
	genCount := binary.LittleEndian.Uint32(meta[20:])
	if count > uint64(1<<62) {
		return nil, policy, nil, fmt.Errorf("concurrent: policy count %d is not credible", count)
	}
	policy.Count = int(count)
	if err := policy.validate(); err != nil {
		return nil, policy, nil, err
	}
	if genCount > maxSnapshotGens {
		return nil, policy, nil, fmt.Errorf("concurrent: snapshot claims %d generations (limit %d)",
			genCount, maxSnapshotGens)
	}

	base, err := updatable.LoadView[K](sr)
	if err != nil {
		return nil, policy, nil, err
	}

	gens, err := readGens[K](sr, genCount)
	if err != nil {
		return nil, policy, nil, err
	}
	return base, policy, gens, nil
}

// readGens reads genCount (ins, dels) section pairs — shared by the full
// snapshot loader and the shipped-delta loader (delta.go).
func readGens[K kv.Key](sr *snap.Reader, genCount uint32) ([]*generation[K], error) {
	gens := make([]*generation[K], 0, genCount)
	for i := uint32(0); i < genCount; i++ {
		is, err := sr.Expect(secConIns)
		if err != nil {
			return nil, err
		}
		ins, err := snap.ReadKeySection[K](is, 0)
		if err != nil {
			return nil, err
		}
		dls, err := sr.Expect(secConDels)
		if err != nil {
			return nil, err
		}
		dels, err := snap.ReadKeySection[K](dls, 0)
		if err != nil {
			return nil, err
		}
		if !kv.IsSorted(ins) || !kv.IsSorted(dels) {
			return nil, fmt.Errorf("concurrent: generation %d is not sorted", i)
		}
		gens = append(gens, &generation[K]{ins: ins, dels: dels})
	}
	return gens, nil
}

// Load restores a concurrent index from a snapshot container and
// warm-restarts it: the base view loads directly, the index goes live
// (background compactor running), and the persisted write generations
// replay through the public write path. total is the input size in bytes
// (-1 when unknown).
func Load[K kv.Key](r io.Reader, total int64) (*Index[K], error) {
	var (
		base   *updatable.Index[K]
		policy CompactionPolicy
		gens   []*generation[K]
	)
	err := snap.Load(r, total, func(sr *snap.Reader) error {
		if sr.Kind() != SnapshotKind {
			return fmt.Errorf("concurrent: snapshot kind %q, want %q", sr.Kind(), SnapshotKind)
		}
		var lerr error
		base, policy, gens, lerr = loadSections[K](sr)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	return assemble(base, policy, gens)
}

// LoadFile restores a concurrent index from a snapshot file.
func LoadFile[K kv.Key](path string) (*Index[K], error) {
	var (
		base   *updatable.Index[K]
		policy CompactionPolicy
		gens   []*generation[K]
	)
	err := snap.LoadFile(path, func(sr *snap.Reader) error {
		if sr.Kind() != SnapshotKind {
			return fmt.Errorf("concurrent: snapshot kind %q, want %q", sr.Kind(), SnapshotKind)
		}
		var lerr error
		base, policy, gens, lerr = loadSections[K](sr)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	return assemble(base, policy, gens)
}

// assemble goes live and replays the persisted delta — called only after
// the container checksum verified. The replay is the same one a
// compaction performs when it publishes a rebuilt base: the sealed
// generations carry over verbatim onto the restored view (they are
// already in the exact internal representation — sorted multisets whose
// tombstones cancel by key value), and a fresh empty write head goes on
// top. That makes warm restart O(pending) pointer work instead of
// re-executing every pending write one copy-on-write publication at a
// time.
//
//shift:swap(warm-restart install under ix.mu before the index escapes)
func assemble[K kv.Key](base *updatable.Index[K], policy CompactionPolicy, gens []*generation[K]) (*Index[K], error) {
	ix, err := Wrap(base, policy)
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		ix.mu.Lock()
		cur := ix.snap.Load()
		s := &snapshot[K]{
			view: cur.view,
			gens: append(append([]*generation[K]{}, gens...), &generation[K]{}),
		}
		if s.length() < 0 {
			ix.mu.Unlock()
			ix.Close()
			return nil, fmt.Errorf("concurrent: restored generations cancel more occurrences than exist (corrupt snapshot)")
		}
		ix.snap.Store(s)
		ix.mu.Unlock()
		ix.maybeWake(s)
	}
	return ix, nil
}

// Save writes the index's current published snapshot as one verified
// container.
func Save[K kv.Key](w io.Writer, ix *Index[K]) error {
	sw, err := snap.NewWriter(w, SnapshotKind)
	if err != nil {
		return err
	}
	if err := ix.PersistSnapshot(sw); err != nil {
		return err
	}
	return sw.Close()
}

// SaveFile writes the index's current published snapshot crash-safely to
// path.
func SaveFile[K kv.Key](path string, ix *Index[K]) error {
	return snap.SaveFile(path, SnapshotKind, ix.PersistSnapshot)
}
