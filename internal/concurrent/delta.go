package concurrent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/kv"
	snap "repro/internal/snapshot"
	"repro/internal/updatable"
)

// This file is the replication surface of the concurrent index
// (DESIGN.md §10). A primary captures one published snapshot as an
// immutable PublishedState and ships it two ways:
//
//   - a full artifact: the existing SnapshotKind container (view + write
//     generations), written off the serving path from the captured state;
//   - a delta artifact: the COMPLETE generation stack of the captured
//     state, bound to the full artifact it layers over by (base version,
//     base artifact CRC). A delta is a replacement, not a patch — the
//     replica swaps its whole generation stack, so deltas are idempotent
//     and any delta whose base matches can be applied directly, no
//     intermediate versions required.
//
// A replica loads a full artifact into a State (verified but not yet
// serving), then InstallState swaps it in behind the atomic snapshot
// pointer; later deltas go through InstallDelta, which refuses to apply
// over the wrong base (ErrStaleBase) instead of corrupting the multiset.
// Every installed snapshot carries the replicated version as its tag, so
// FindBatchTagged answers "which version served this query" atomically
// with the results.

// DeltaKind identifies shipped generation-stack delta containers.
const DeltaKind = "concurrent-delta"

// secDeltaMeta is the delta container's metadata section; the generation
// pairs reuse secConIns/secConDels.
const secDeltaMeta = 30

// ErrStaleBase reports a delta whose recorded base does not match the
// state it is being applied over. The caller falls back to fetching a
// full snapshot; nothing is installed.
var ErrStaleBase = errors.New("concurrent: delta base does not match installed state")

// PublishedState is an immutable capture of one published snapshot — the
// unit replication ships. It stays valid (and serveable for persistence
// and oracle scans) no matter how many writes, compactions, or installs
// the index performs afterwards.
type PublishedState[K kv.Key] struct {
	ix *Index[K]
	s  *snapshot[K]
}

// Published captures the current published snapshot.
func (ix *Index[K]) Published() *PublishedState[K] {
	return &PublishedState[K]{ix: ix, s: ix.snap.Load()}
}

// Len returns the captured state's live key count.
func (p *PublishedState[K]) Len() int { return p.s.length() }

// Pending returns the captured state's uncompacted write count.
func (p *PublishedState[K]) Pending() int { return p.s.pending() }

// Gens returns the captured generation-stack depth (observability).
func (p *PublishedState[K]) Gens() int { return len(p.s.gens) }

// ModelFingerprint returns the fingerprint of the captured base model —
// the value the replication manifest records and replicas re-verify.
func (p *PublishedState[K]) ModelFingerprint() uint64 { return p.s.view.ModelFingerprint() }

// SameView reports whether q shares p's base view (same frozen
// updatable.View, pointer identity). The publisher uses it to decide
// full vs delta: if the view is unchanged since the last full artifact,
// the write generations alone reproduce the state.
func (p *PublishedState[K]) SameView(q *PublishedState[K]) bool {
	return q != nil && p.s.view == q.s.view
}

// Scan walks the captured state's live keys in [a, b] in sorted order —
// the torture harness's oracle reads primary states through this.
func (p *PublishedState[K]) Scan(a, b K, fn func(k K) bool) { p.s.scan(a, b, fn) }

// Persist writes the captured state as the full-snapshot section
// sequence (same layout as PersistSnapshot, but of this capture rather
// than whatever is published at write time).
func (p *PublishedState[K]) Persist(sw *snap.Writer) error {
	return p.ix.persistState(p.s, sw)
}

// SaveStateFile writes a captured published state crash-safely to path
// as a full-snapshot container.
func SaveStateFile[K kv.Key](path string, p *PublishedState[K]) error {
	return snap.SaveFile(path, SnapshotKind, p.Persist)
}

// DeltaInfo binds a shipped delta to the full artifact it layers over.
type DeltaInfo struct {
	// Version is the replicated version this delta produces.
	Version uint64
	// Base is the replicated version of the full artifact whose view the
	// generations are relative to.
	Base uint64
	// BaseCRC is the CRC-32C of the base artifact file — a content
	// binding, so a republished base with the same version number cannot
	// silently change meaning under existing deltas.
	BaseCRC uint32
}

// PersistDelta writes the captured state's complete generation stack as
// the delta section sequence.
func (p *PublishedState[K]) PersistDelta(sw *snap.Writer, info DeltaInfo) error {
	meta := make([]byte, 0, 24)
	meta = binary.LittleEndian.AppendUint64(meta, info.Version)
	meta = binary.LittleEndian.AppendUint64(meta, info.Base)
	meta = binary.LittleEndian.AppendUint32(meta, info.BaseCRC)
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(p.s.gens)))
	if err := sw.Bytes(secDeltaMeta, meta); err != nil {
		return err
	}
	for _, g := range p.s.gens {
		if err := snap.WriteKeySection(sw, secConIns, g.ins); err != nil {
			return err
		}
		if err := snap.WriteKeySection(sw, secConDels, g.dels); err != nil {
			return err
		}
	}
	return nil
}

// SaveDeltaFile writes the captured state's generation stack crash-safely
// to path as a delta container.
func SaveDeltaFile[K kv.Key](path string, p *PublishedState[K], info DeltaInfo) error {
	return snap.SaveFile(path, DeltaKind, func(sw *snap.Writer) error {
		return p.PersistDelta(sw, info)
	})
}

// Delta is a loaded shipped delta: the base binding plus the complete
// generation stack at Info.Version.
type Delta[K kv.Key] struct {
	Info DeltaInfo
	gens []*generation[K]
}

// Pending returns the delta's total write-operation count (observability).
func (d *Delta[K]) Pending() int {
	n := 0
	for _, g := range d.gens {
		n += g.size()
	}
	return n
}

func loadDeltaSections[K kv.Key](sr *snap.Reader) (*Delta[K], error) {
	ms, err := sr.Expect(secDeltaMeta)
	if err != nil {
		return nil, err
	}
	meta, err := ms.Bytes(0)
	if err != nil {
		return nil, err
	}
	if len(meta) != 24 {
		return nil, fmt.Errorf("concurrent: delta meta section is %d bytes, want 24", len(meta))
	}
	d := &Delta[K]{Info: DeltaInfo{
		Version: binary.LittleEndian.Uint64(meta),
		Base:    binary.LittleEndian.Uint64(meta[8:]),
		BaseCRC: binary.LittleEndian.Uint32(meta[16:]),
	}}
	genCount := binary.LittleEndian.Uint32(meta[20:])
	if genCount > maxSnapshotGens {
		return nil, fmt.Errorf("concurrent: delta claims %d generations (limit %d)", genCount, maxSnapshotGens)
	}
	if d.Info.Version <= d.Info.Base {
		return nil, fmt.Errorf("concurrent: delta version %d does not follow its base %d", d.Info.Version, d.Info.Base)
	}
	d.gens, err = readGens[K](sr, genCount)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// LoadDelta reads a delta container; total is the input size in bytes
// (-1 when unknown). The container checksum verifies before the delta is
// returned.
func LoadDelta[K kv.Key](r io.Reader, total int64) (*Delta[K], error) {
	var d *Delta[K]
	err := snap.Load(r, total, func(sr *snap.Reader) error {
		if sr.Kind() != DeltaKind {
			return fmt.Errorf("concurrent: snapshot kind %q, want %q", sr.Kind(), DeltaKind)
		}
		var lerr error
		d, lerr = loadDeltaSections[K](sr)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// LoadDeltaFile reads a delta container from a file.
func LoadDeltaFile[K kv.Key](path string) (*Delta[K], error) {
	f, total, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDelta[K](f, total)
}

// openSized opens path for loading and reports its size (-1 when stat
// fails; the reader then bounds sections conservatively).
func openSized(path string) (*os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	total := int64(-1)
	if fi, err := f.Stat(); err == nil {
		total = fi.Size()
	}
	return f, total, nil
}

// State is a verified full snapshot not yet serving: the loaded base
// (with its layer configuration), the persisted policy, and the
// generation stack — everything InstallState needs, built entirely off
// the serving path.
type State[K kv.Key] struct {
	base   *updatable.Index[K]
	view   *updatable.View[K]
	policy CompactionPolicy
	gens   []*generation[K]
}

// Len returns the state's live key count.
func (st *State[K]) Len() int {
	s := snapshot[K]{view: st.view, gens: st.gens}
	return s.length()
}

// ModelFingerprint returns the fingerprint of the state's base model.
func (st *State[K]) ModelFingerprint() uint64 { return st.view.ModelFingerprint() }

// LenWith returns the live key count st would have with d's generation
// stack in place of its own — the replica verifies this against the
// manifest before InstallDelta, so a wrong-count delta is rejected
// without ever being served.
func (st *State[K]) LenWith(d *Delta[K]) int {
	s := snapshot[K]{view: st.view, gens: d.gens}
	return s.length()
}

// LoadState reads a full-snapshot container into a State; total is the
// input size in bytes (-1 when unknown).
func LoadState[K kv.Key](r io.Reader, total int64) (*State[K], error) {
	var st *State[K]
	err := snap.Load(r, total, func(sr *snap.Reader) error {
		if sr.Kind() != SnapshotKind {
			return fmt.Errorf("concurrent: snapshot kind %q, want %q", sr.Kind(), SnapshotKind)
		}
		base, policy, gens, lerr := loadSections[K](sr)
		if lerr != nil {
			return lerr
		}
		st = &State[K]{base: base, view: base.Freeze(), policy: policy, gens: gens}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st.Len() < 0 {
		return nil, fmt.Errorf("concurrent: state generations cancel more occurrences than exist (corrupt snapshot)")
	}
	return st, nil
}

// LoadStateFile reads a full-snapshot container file into a State.
func LoadStateFile[K kv.Key](path string) (*State[K], error) {
	f, total, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadState[K](f, total)
}

// InstallState swaps st in as the index's entire content: the base view,
// the generation stack verbatim, and tag as the snapshot's install tag.
// The index also adopts st's base-layer geometry, so later compactions
// rebuild with the primary's configuration rather than the replica's
// bootstrap default. Serialises with writers and compactions; readers
// see either the old state or the new one, never a mixture.
//
//shift:swap(replication install under compactMu+mu)
func (ix *Index[K]) InstallState(st *State[K], tag uint64) error {
	gens := st.gens
	if len(gens) == 0 {
		gens = []*generation[K]{{}}
	}
	next := &snapshot[K]{view: st.view, gens: gens, tag: tag}
	if next.length() < 0 {
		return fmt.Errorf("concurrent: state generations cancel more occurrences than exist (corrupt snapshot)")
	}
	layer := st.base.Config().Layer

	// Full writer+compactor lock: an in-flight compaction's publish phase
	// must not resurrect the replaced state, and the layer adoption must
	// be atomic with the swap from any later compaction's point of view.
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.layer.Store(&layer)
	ix.snap.Store(next)
	return nil
}

// InstallDelta applies a shipped delta over st, which must be the
// currently installed base state: the snapshot keeps st's view and
// replaces the whole generation stack with the delta's. If the published
// view is no longer st's (a compaction ran, or a different state was
// installed) it returns ErrStaleBase and installs nothing.
//
//shift:swap(replication delta install under compactMu+mu)
func (ix *Index[K]) InstallDelta(st *State[K], d *Delta[K], tag uint64) error {
	gens := d.gens
	if len(gens) == 0 {
		gens = []*generation[K]{{}}
	}
	next := &snapshot[K]{view: st.view, gens: gens, tag: tag}
	if next.length() < 0 {
		return fmt.Errorf("concurrent: delta generations cancel more occurrences than exist (corrupt delta)")
	}

	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.snap.Load().view != st.view {
		return ErrStaleBase
	}
	ix.snap.Store(next)
	return nil
}
