package concurrent

import (
	"repro/internal/index"
	"repro/internal/kv"
	snap "repro/internal/snapshot"
)

// The concurrent index registers its snapshot kind with the index
// registry (same router pattern as internal/router and
// internal/updatable), so a replicated artifact of kind "concurrent"
// loads through the generic index.Load/LoadFile dispatch. The restored
// index is live — background compactor running — so callers that care
// about goroutine hygiene should assert to *Index and Close it.

func init() {
	registerLoader[uint64]()
	registerLoader[uint32]()
}

func registerLoader[K kv.Key]() {
	index.RegisterSnapshotLoader[K](SnapshotKind, func(sr *snap.Reader) (index.Index[K], error) {
		base, policy, gens, err := loadSections[K](sr)
		if err != nil {
			return nil, err
		}
		return assemble(base, policy, gens)
	})
}
