// Package concurrent wraps the updatable Shift-Table index for goroutine-
// safe serving: lock-free snapshot reads, mutex-serialised writes, and
// asynchronous background compaction.
//
// The ROADMAP's north star is a system sitting behind a server, where the
// paper's central claim — model-corrected lookups stay fast under drift —
// only matters if reads keep flowing while corrections accumulate and the
// base table is rebuilt. The design here is the classic read/write
// decoupling (stable state vs pending updates):
//
//   - Reads (Find, Lookup, Scan, FindBatch, LookupBatch) load an immutable
//     snapshot through an atomic.Pointer and never block, never take a
//     lock, and never observe a torn state. A snapshot is a frozen
//     updatable.View plus immutable write generations (snapshot.go).
//   - Writes (Insert, Delete) serialise through a mutex, build a successor
//     snapshot with a fresh copy of the small write head, and publish it
//     with a single pointer store. Cost is O(pending) per write, bounded
//     by the compaction policy.
//   - A background compactor watches delta pressure (CompactionPolicy) and
//     rebuilds the base Shift-Table + CDF model off to the side: it seals
//     the write head, opens a fresh one for writes that land mid-rebuild,
//     merges the sealed state into a new base, and publishes the result
//     with one pointer swap — the fresh head survives the swap, which is
//     exactly the write replay.
//
// Old snapshots are reclaimed by the garbage collector once the last
// reader drops its reference; there is no epoch machinery to get wrong.
// See DESIGN.md §6 for the full lifecycle.
package concurrent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/updatable"
)

// Config parameterises New.
type Config struct {
	// Layer configures the base Shift-Table rebuilt at each compaction
	// (§3 defaults apply).
	Layer core.Config
	// Policy decides when the background compactor rebuilds the base.
	// The zero value is a delta-fraction policy with defaults.
	Policy CompactionPolicy
}

// Index is a goroutine-safe updatable Shift-Table index. Any number of
// readers may call the read methods concurrently with each other, with
// writers, and with an in-flight compaction.
type Index[K kv.Key] struct {
	policy CompactionPolicy
	// layer is the base Shift-Table geometry compaction rebuilds with. It
	// is behind an atomic pointer because replication replaces it:
	// InstallState adopts the incoming snapshot's configuration while
	// persistence and the compactor may be reading the old one lock-free.
	layer atomic.Pointer[core.Config]
	snap  atomic.Pointer[snapshot[K]]

	mu sync.Mutex // serialises writers and snapshot publication

	compactMu  sync.Mutex // at most one compaction at a time
	compacting atomic.Bool
	rebuilds   atomic.Int64

	wake chan struct{}
	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup

	errMu sync.Mutex
	err   error // first background compaction failure, if any
}

// New builds a concurrent index over sorted initial keys (which may be
// empty) and starts its background compactor. Call Close to stop it.
func New[K kv.Key](keys []K, cfg Config) (*Index[K], error) {
	base, err := updatable.New(keys, updatable.Config{Layer: cfg.Layer})
	if err != nil {
		return nil, err
	}
	return wrap(base, cfg)
}

// Wrap takes ownership of an existing single-threaded updatable.Index and
// serves it concurrently. The first snapshot shares the index's base
// table, Fenwick prefix sums and delta buffer without copying (Freeze);
// the caller must not write to ix afterwards through its own reference.
func Wrap[K kv.Key](ix *updatable.Index[K], policy CompactionPolicy) (*Index[K], error) {
	cfg := Config{Layer: ix.Config().Layer, Policy: policy}
	return wrap(ix, cfg)
}

//shift:swap(constructor: publishes the first snapshot before the index escapes)
func wrap[K kv.Key](base *updatable.Index[K], cfg Config) (*Index[K], error) {
	if err := cfg.Policy.validate(); err != nil {
		return nil, err
	}
	ix := &Index[K]{
		policy: cfg.Policy,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	layer := cfg.Layer
	ix.layer.Store(&layer)
	ix.snap.Store(&snapshot[K]{
		view: base.Freeze(),
		gens: []*generation[K]{{}},
	})
	ix.wg.Add(1)
	go ix.compactor()
	return ix, nil
}

// layerCfg returns the base-layer geometry current compactions rebuild
// with (replication may replace it; see InstallState).
func (ix *Index[K]) layerCfg() core.Config { return *ix.layer.Load() }

// Close stops the background compactor. Reads and writes remain valid
// after Close (writes simply stop triggering automatic compaction).
// Close is idempotent.
func (ix *Index[K]) Close() {
	ix.stop.Do(func() { close(ix.done) })
	ix.wg.Wait()
}

// Len returns the number of live keys.
func (ix *Index[K]) Len() int { return ix.snap.Load().length() }

// Name identifies the backend in benchmark output (index.Index contract).
func (ix *Index[K]) Name() string {
	return "concurrent(" + ix.snap.Load().view.Table().Name() + ")"
}

// SizeBytes reports the auxiliary footprint beyond the key data
// (index.Index contract): the view's footprint plus the pending write
// generations.
func (ix *Index[K]) SizeBytes() int {
	s := ix.snap.Load()
	n := s.view.SizeBytes()
	for _, g := range s.gens {
		n += g.size() * kv.Width[K]()
	}
	return n
}

// Pending returns the number of write operations not yet compacted into
// the base (observability; the compaction policies act on it).
func (ix *Index[K]) Pending() int { return ix.snap.Load().pending() }

// Rebuilds returns how many compactions have completed.
func (ix *Index[K]) Rebuilds() int { return int(ix.rebuilds.Load()) }

// Compacting reports whether a base rebuild is currently in flight.
func (ix *Index[K]) Compacting() bool { return ix.compacting.Load() }

// Err returns the first background compaction error, if any.
func (ix *Index[K]) Err() error {
	ix.errMu.Lock()
	defer ix.errMu.Unlock()
	return ix.err
}

// Find returns the logical lower-bound rank of q among live keys: the
// number of live keys < q. Lock-free; the whole query answers against one
// snapshot.
//
//shift:lockfree
func (ix *Index[K]) Find(q K) int {
	return ix.snap.Load().rank(q)
}

// Lookup reports whether q is a live key and its logical rank, both
// against one snapshot and with a single base-table probe.
//
//shift:lockfree
func (ix *Index[K]) Lookup(q K) (rank int, found bool) {
	rank, count := ix.snap.Load().lookup(q)
	return rank, count > 0
}

// FindBatch answers Find for every query in qs against one snapshot,
// writing result i into out[i] and returning the result slice (out when it
// has capacity). The base probes run through the staged
// core.Table.FindBatch pipeline of the frozen view; the generation
// corrections are applied per lane.
//
//shift:lockfree
func (ix *Index[K]) FindBatch(qs []K, out []int) []int {
	out, _ = ix.FindBatchTagged(qs, out)
	return out
}

// FindBatchTagged is FindBatch plus the snapshot's install tag: every
// result in the batch is answered by one snapshot, and the returned tag is
// that snapshot's (InstallState/InstallDelta set it to the replicated
// version). This lets a replica reader learn which published version
// answered the whole batch with no lock and no tag/results race.
//
//shift:lockfree
func (ix *Index[K]) FindBatchTagged(qs []K, out []int) ([]int, uint64) {
	s := ix.snap.Load()
	out = s.view.FindBatch(qs, out)
	for i, q := range qs {
		out[i] += s.genRank(q)
	}
	return out, s.tag
}

// Tag returns the install tag of the current published snapshot (zero if
// no replicated state was ever installed).
//
//shift:lockfree
func (ix *Index[K]) Tag() uint64 { return ix.snap.Load().tag }

// LookupBatch answers Lookup for every query in qs against one snapshot:
// one staged base-table batch probe per lane (View.LookupCountBatch), then
// the generation corrections. Like FindBatch it reuses the supplied slices
// when they have capacity.
//
//shift:lockfree
func (ix *Index[K]) LookupBatch(qs []K, ranks []int, found []bool) ([]int, []bool) {
	s := ix.snap.Load()
	var counts []int
	ranks, counts = s.view.LookupCountBatch(qs, ranks, nil)
	if cap(found) >= len(qs) {
		found = found[:len(qs)]
	} else {
		found = make([]bool, len(qs))
	}
	for i, q := range qs {
		c := counts[i]
		for _, g := range s.gens {
			ranks[i] += kv.LowerBound(g.ins, q) - kv.LowerBound(g.dels, q)
			c += countEq(g.ins, q) - countEq(g.dels, q)
		}
		found[i] = c > 0
	}
	return ranks, found
}

// Scan calls fn for every live key in [a, b] in sorted order, all from one
// snapshot; fn returning false stops the scan.
//
//shift:lockfree
func (ix *Index[K]) Scan(a, b K, fn func(k K) bool) {
	ix.snap.Load().scan(a, b, fn)
}

// Insert adds k (duplicates allowed) and publishes the successor
// snapshot. O(maxHeadLen) for the write-head copy.
//
//shift:swap(writer publication under ix.mu)
func (ix *Index[K]) Insert(k K) {
	ix.mu.Lock()
	s := ix.snap.Load()
	top := s.gens[len(s.gens)-1]
	var next *snapshot[K]
	if top.size() >= maxHeadLen {
		next = s.pushHead((&generation[K]{}).withInsert(k))
	} else {
		next = s.replaceTop(top.withInsert(k))
	}
	ix.snap.Store(next)
	ix.mu.Unlock()
	ix.maybeWake(next)
}

// Delete removes one live occurrence of k, reporting whether one existed.
// A pending insert in the write head is removed directly; anything older
// (sealed generation, view delta, base) gets a tombstone in the write
// head, cancelled by value at the next compaction.
//
//shift:swap(writer publication under ix.mu)
func (ix *Index[K]) Delete(k K) bool {
	ix.mu.Lock()
	s := ix.snap.Load()
	top := s.gens[len(s.gens)-1]
	var next *snapshot[K]
	if i := kv.LowerBound(top.ins, k); i < len(top.ins) && top.ins[i] == k {
		next = s.replaceTop(top.withoutIns(i))
	} else if s.count(k) > 0 {
		if top.size() >= maxHeadLen {
			next = s.pushHead((&generation[K]{}).withDelete(k))
		} else {
			next = s.replaceTop(top.withDelete(k))
		}
	} else {
		ix.mu.Unlock()
		return false
	}
	ix.snap.Store(next)
	ix.mu.Unlock()
	ix.maybeWake(next)
	return true
}

// maybeWake nudges the compactor when the policy says the published
// snapshot is due. Non-blocking: a pending nudge is enough.
func (ix *Index[K]) maybeWake(s *snapshot[K]) {
	if !ix.policy.due(s.pending(), s.length()) {
		return
	}
	select {
	case ix.wake <- struct{}{}:
	default:
	}
}

// maxOf returns the largest value of the key type.
func maxOf[K kv.Key]() K {
	var zero K
	return ^zero
}

// Stats summarises the index composition.
type Stats struct {
	Live       int
	Pending    int
	Rebuilds   int
	Compacting bool
}

// Stats returns the current composition (one snapshot load plus counters).
func (ix *Index[K]) Stats() Stats {
	s := ix.snap.Load()
	return Stats{
		Live:       s.length(),
		Pending:    s.pending(),
		Rebuilds:   int(ix.rebuilds.Load()),
		Compacting: ix.compacting.Load(),
	}
}

// String implements fmt.Stringer for log lines in the example and bench.
func (ix *Index[K]) String() string {
	st := ix.Stats()
	return fmt.Sprintf("concurrent.Index{live=%d pending=%d rebuilds=%d compacting=%v}",
		st.Live, st.Pending, st.Rebuilds, st.Compacting)
}
