package concurrent

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/kv"
	snap "repro/internal/snapshot"
	"repro/internal/updatable"
)

// This file is the concurrent index's zero-copy restart path: the base
// view's keys and layer are viewed from the mapped container (see
// updatable.MapViewSections), while the small mutable state — the
// tombstone array, the delta buffer, and the pending write generations —
// is materialised on the heap as usual. The dominant restart cost (key
// and layer copies, O(n·keywidth)) disappears; what remains is O(n/8)
// bitmap work plus O(pending) generation copies.

// Mapped reports whether the published snapshot's base table serves
// from a mapped region (the first compaction rebuilds onto the heap).
func (ix *Index[K]) Mapped() bool { return ix.snap.Load().view.Table().Mapped() }

// MappedBytes returns the size of the region backing the published base
// table, 0 when heap-resident.
func (ix *Index[K]) MappedBytes() int64 { return ix.snap.Load().view.Table().MappedBytes() }

// mapSections is loadSections over a mapped container: same meta parse
// and bounds, base viewed in place, generations copied to the heap.
func mapSections[K kv.Key](m *snap.Mapped) (*updatable.Index[K], CompactionPolicy, []*generation[K], error) {
	var policy CompactionPolicy
	ms, err := m.Expect(secConMeta)
	if err != nil {
		return nil, policy, nil, err
	}
	meta := ms.Data
	if len(meta) != 24 {
		return nil, policy, nil, fmt.Errorf("concurrent: meta section is %d bytes, want 24", len(meta))
	}
	policy.Kind = PolicyKind(binary.LittleEndian.Uint32(meta))
	policy.Fraction = math.Float64frombits(binary.LittleEndian.Uint64(meta[4:]))
	count := binary.LittleEndian.Uint64(meta[12:])
	genCount := binary.LittleEndian.Uint32(meta[20:])
	if count > uint64(1<<62) {
		return nil, policy, nil, fmt.Errorf("concurrent: policy count %d is not credible", count)
	}
	policy.Count = int(count)
	if err := policy.validate(); err != nil {
		return nil, policy, nil, err
	}
	if genCount > maxSnapshotGens {
		return nil, policy, nil, fmt.Errorf("concurrent: snapshot claims %d generations (limit %d)",
			genCount, maxSnapshotGens)
	}

	base, err := updatable.MapViewSections[K](m)
	if err != nil {
		return nil, policy, nil, err
	}

	gens := make([]*generation[K], 0, genCount)
	for i := uint32(0); i < genCount; i++ {
		ins, err := mapGenHalf[K](m, secConIns)
		if err != nil {
			return nil, policy, nil, err
		}
		dels, err := mapGenHalf[K](m, secConDels)
		if err != nil {
			return nil, policy, nil, err
		}
		if !kv.IsSorted(ins) || !kv.IsSorted(dels) {
			return nil, policy, nil, fmt.Errorf("concurrent: generation %d is not sorted", i)
		}
		gens = append(gens, &generation[K]{ins: ins, dels: dels})
	}
	return base, policy, gens, nil
}

// mapGenHalf reads one generation key section onto the heap (pending
// writes are small and their lifetime is decoupled from the mapping's).
func mapGenHalf[K kv.Key](m *snap.Mapped, id uint32) ([]K, error) {
	s, err := m.Expect(id)
	if err != nil {
		return nil, err
	}
	view, err := snap.MapKeySection[K](s)
	if err != nil {
		return nil, err
	}
	return append(make([]K, 0, len(view)), view...), nil
}

// MapIndex restores a concurrent index over a mapped v2 container and
// warm-restarts it exactly as Load does.
func MapIndex[K kv.Key](m *snap.Mapped) (*Index[K], error) {
	if m.Kind() != SnapshotKind {
		return nil, fmt.Errorf("concurrent: container holds %q, want %q", m.Kind(), SnapshotKind)
	}
	m.Rewind()
	base, policy, gens, err := mapSections[K](m)
	if err != nil {
		return nil, err
	}
	if err := m.Done(); err != nil {
		return nil, err
	}
	return assemble(base, policy, gens)
}

// MapFile restores a concurrent index by mapping path when possible,
// falling back to the verified streaming load otherwise. The returned
// flag reports which path served.
func MapFile[K kv.Key](path string) (*Index[K], bool, error) {
	m, err := snap.MapFile(path)
	if err == nil {
		defer m.Close()
		if ix, merr := MapIndex[K](m); merr == nil {
			return ix, true, nil
		}
	}
	ix, herr := LoadFile[K](path)
	if herr != nil {
		return nil, false, herr
	}
	return ix, false, nil
}

// MapState reads a full-snapshot container into a not-yet-serving State
// (the unit replicas install), viewing the base in place. The caller
// owns integrity: either the artifact's bytes were CRC-verified as they
// landed (the replica spool path) or Mapped.VerifyAll / an external
// content checksum ran first.
func MapState[K kv.Key](m *snap.Mapped) (*State[K], error) {
	if m.Kind() != SnapshotKind {
		return nil, fmt.Errorf("concurrent: container holds %q, want %q", m.Kind(), SnapshotKind)
	}
	m.Rewind()
	base, policy, gens, err := mapSections[K](m)
	if err != nil {
		return nil, err
	}
	if err := m.Done(); err != nil {
		return nil, err
	}
	st := &State[K]{base: base, view: base.Freeze(), policy: policy, gens: gens}
	if st.Len() < 0 {
		return nil, fmt.Errorf("concurrent: state generations cancel more occurrences than exist (corrupt snapshot)")
	}
	return st, nil
}

// MapStateFile reads a full-snapshot container file into a State by
// mapping when possible, falling back to the streaming load. The
// returned flag reports which path served.
func MapStateFile[K kv.Key](path string) (*State[K], bool, error) {
	m, err := snap.MapFile(path)
	if err == nil {
		defer m.Close()
		if st, merr := MapState[K](m); merr == nil {
			return st, true, nil
		}
	}
	st, herr := LoadStateFile[K](path)
	if herr != nil {
		return nil, false, herr
	}
	return st, false, nil
}

// Mapped reports whether the state's base table is a mapped view.
func (st *State[K]) Mapped() bool { return st.view.Table().Mapped() }

// SaveFileV2 writes the index's current published snapshot in the
// mappable v2 layout.
func SaveFileV2[K kv.Key](path string, ix *Index[K]) error {
	return snap.SaveFileAt(path, SnapshotKind, snap.Version2, ix.PersistSnapshot)
}

// SaveStateFileV2 writes a captured published state in the mappable v2
// layout — what the publisher stages so replicas can install full
// artifacts by mapping instead of parsing.
func SaveStateFileV2[K kv.Key](path string, p *PublishedState[K]) error {
	return snap.SaveFileAt(path, SnapshotKind, snap.Version2, p.Persist)
}
