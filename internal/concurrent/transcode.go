package concurrent

import snap "repro/internal/snapshot"

// Transcode schemas for the concurrent kinds (DESIGN.md §13). A full
// state container embeds the complete updatable sequence — which itself
// embeds shift-table ids 1..3 — plus this package's meta section and the
// repeated per-generation insert/delete key pairs. Deltas carry only the
// delta meta and generation pairs. Metas are fixed little-endian words,
// identical in both container layouts.
func init() {
	snap.RegisterTranscodeSchema(SnapshotKind, map[uint32]snap.Role{
		1:          snap.RoleKeys,   // embedded shift-table keys
		2:          snap.RoleOpaque, // embedded model spec
		3:          snap.RoleLayer,  // embedded layer blob
		10:         snap.RoleOpaque, // embedded updatable meta
		11:         snap.RoleOpaque, // embedded dead bitmap
		12:         snap.RoleKeys,   // embedded delta-key overlay
		secConMeta: snap.RoleOpaque,
		secConIns:  snap.RoleKeys,
		secConDels: snap.RoleKeys,
	})
	snap.RegisterTranscodeSchema(DeltaKind, map[uint32]snap.Role{
		secDeltaMeta: snap.RoleOpaque,
		secConIns:    snap.RoleKeys,
		secConDels:   snap.RoleKeys,
	})
}
