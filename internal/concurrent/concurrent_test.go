package concurrent

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kv"
	"repro/internal/updatable"
)

// reference is a naive sorted multiset used as the test oracle.
type reference struct{ keys []uint64 }

func (r *reference) insert(k uint64) {
	i := kv.UpperBound(r.keys, k)
	r.keys = append(r.keys, k)
	copy(r.keys[i+1:], r.keys[i:])
	r.keys[i] = k
}

func (r *reference) delete(k uint64) bool {
	i := kv.LowerBound(r.keys, k)
	if i >= len(r.keys) || r.keys[i] != k {
		return false
	}
	r.keys = append(r.keys[:i], r.keys[i+1:]...)
	return true
}

// TestSequentialMatchesReference drives a single-goroutine workload against
// the reference multiset while the background compactor races it for real:
// compaction must be semantically invisible, so every read matches the
// oracle no matter when the snapshot swap lands.
func TestSequentialMatchesReference(t *testing.T) {
	initial := dataset.MustGenerate(dataset.Face, 64, 3_000, 3)
	ix, err := New(initial, Config{Policy: CompactionPolicy{Kind: DeltaCount, Count: 128}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ref := &reference{keys: append([]uint64(nil), initial...)}
	domain := initial[len(initial)-1] + 1000
	rng := rand.New(rand.NewSource(11))

	for op := 0; op < 8_000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert (possibly duplicate)
			var k uint64
			if rng.Intn(3) == 0 && len(ref.keys) > 0 {
				k = ref.keys[rng.Intn(len(ref.keys))]
			} else {
				k = rng.Uint64() % domain
			}
			ix.Insert(k)
			ref.insert(k)
		case 4, 5, 6: // delete
			var k uint64
			if rng.Intn(2) == 0 && len(ref.keys) > 0 {
				k = ref.keys[rng.Intn(len(ref.keys))]
			} else {
				k = rng.Uint64() % domain
			}
			if got, want := ix.Delete(k), ref.delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
		default: // query
			q := rng.Uint64() % domain
			want := kv.LowerBound(ref.keys, q)
			if got := ix.Find(q); got != want {
				t.Fatalf("op %d: Find(%d) = %d, want %d", op, q, got, want)
			}
			wantFound := want < len(ref.keys) && ref.keys[want] == q
			if rank, found := ix.Lookup(q); found != wantFound || rank != want {
				t.Fatalf("op %d: Lookup(%d) = (%d,%v), want (%d,%v)", op, q, rank, found, want, wantFound)
			}
		}
		if ix.Len() != len(ref.keys) {
			t.Fatalf("op %d: Len = %d, want %d", op, ix.Len(), len(ref.keys))
		}
	}
	if err := ix.Err(); err != nil {
		t.Fatal(err)
	}
	// On a single CPU the compactor may only get scheduled once the write
	// loop yields; give it a moment before asserting it ran.
	deadline := time.Now().Add(5 * time.Second)
	for ix.Rebuilds() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ix.Rebuilds() == 0 {
		t.Error("expected at least one background compaction during the workload")
	}

	// Quiesce and verify the full live multiset survives one more rebuild.
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	ix.Scan(0, ^uint64(0), func(k uint64) bool { got = append(got, k); return true })
	if len(got) != len(ref.keys) {
		t.Fatalf("full scan returned %d keys, want %d", len(got), len(ref.keys))
	}
	for i := range got {
		if got[i] != ref.keys[i] {
			t.Fatalf("scan mismatch at %d: %d want %d", i, got[i], ref.keys[i])
		}
	}
	if p := ix.Pending(); p != 0 {
		t.Errorf("pending after quiescent compaction = %d, want 0", p)
	}
}

// TestBatchMatchesScalar checks FindBatch/LookupBatch against the scalar
// paths on a quiescent index (a storm-time batch uses one snapshot, so
// batch-vs-scalar equivalence is only defined when no writes interleave).
func TestBatchMatchesScalar(t *testing.T) {
	initial := dataset.MustGenerate(dataset.Osmc, 64, 4_000, 5)
	ix, err := New(initial, Config{Policy: CompactionPolicy{Kind: Manual}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rng := rand.New(rand.NewSource(9))
	domain := initial[len(initial)-1] + 500
	for i := 0; i < 2_000; i++ {
		if rng.Intn(3) == 0 {
			ix.Delete(rng.Uint64() % domain)
		} else {
			ix.Insert(rng.Uint64() % domain)
		}
	}
	qs := make([]uint64, 1500)
	for i := range qs {
		qs[i] = rng.Uint64() % (domain + 10)
	}
	ranks, found := ix.LookupBatch(qs, nil, nil)
	out := ix.FindBatch(qs, nil)
	for i, q := range qs {
		if want := ix.Find(q); out[i] != want || ranks[i] != want {
			t.Fatalf("batch rank for %d = (%d,%d), scalar %d", q, out[i], ranks[i], want)
		}
		if _, wantFound := ix.Lookup(q); found[i] != wantFound {
			t.Fatalf("batch found for %d = %v, scalar %v", q, found[i], wantFound)
		}
	}
}

// TestWrapSharesFrozenState wraps a single-threaded index that already has
// tombstones and a delta buffer; the first snapshot must serve that state
// without copying, and concurrent writes must layer on top of it.
func TestWrapSharesFrozenState(t *testing.T) {
	initial := dataset.MustGenerate(dataset.Wiki, 64, 2_000, 7)
	base, err := updatable.New(initial, updatable.Config{MaxDelta: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ref := &reference{keys: append([]uint64(nil), initial...)}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		k := initial[rng.Intn(len(initial))]
		if rng.Intn(2) == 0 {
			if err := base.Insert(k + 1); err != nil {
				t.Fatal(err)
			}
			ref.insert(k + 1)
		} else {
			if got, want := base.Delete(k), ref.delete(k); got != want {
				t.Fatalf("seed Delete(%d) = %v, want %v", k, got, want)
			}
		}
	}
	if base.Stats().Tombstones == 0 || base.DeltaLen() == 0 {
		t.Fatal("wrap precondition: want both tombstones and delta entries")
	}

	ix, err := Wrap(base, CompactionPolicy{Kind: Manual})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for q := uint64(0); q < 200; q++ {
		k := ref.keys[rng.Intn(len(ref.keys))] + q%3
		if got, want := ix.Find(k), kv.LowerBound(ref.keys, k); got != want {
			t.Fatalf("wrapped Find(%d) = %d, want %d", k, got, want)
		}
	}
	// Concurrent writes layer on the frozen state.
	ix.Insert(42)
	ref.insert(42)
	if got, want := ix.Len(), len(ref.keys); got != want {
		t.Fatalf("Len after wrap+insert = %d, want %d", got, want)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, want := ix.Find(43), kv.LowerBound(ref.keys, 43); got != want {
		t.Fatalf("post-compaction Find(43) = %d, want %d", got, want)
	}
}

func TestManualPolicyNeverAutoCompacts(t *testing.T) {
	ix, err := New([]uint64{1, 2, 3}, Config{Policy: CompactionPolicy{Kind: Manual}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < 3_000; i++ {
		ix.Insert(uint64(i))
	}
	time.Sleep(10 * time.Millisecond)
	if ix.Rebuilds() != 0 {
		t.Fatalf("manual policy auto-compacted %d times", ix.Rebuilds())
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if ix.Rebuilds() != 1 || ix.Pending() != 0 {
		t.Fatalf("manual Compact: rebuilds=%d pending=%d", ix.Rebuilds(), ix.Pending())
	}
}

func TestBackgroundCompactionFires(t *testing.T) {
	ix, err := New([]uint64{10, 20, 30}, Config{Policy: CompactionPolicy{Kind: DeltaCount, Count: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < 256; i++ {
		ix.Insert(uint64(i * 7))
	}
	deadline := time.Now().Add(5 * time.Second)
	for ix.Rebuilds() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ix.Rebuilds() == 0 {
		t.Fatal("background compactor never fired")
	}
	if err := ix.Err(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Len(); got != 259 {
		t.Fatalf("Len = %d, want 259", got)
	}
}

func TestPolicyDue(t *testing.T) {
	cases := []struct {
		p             CompactionPolicy
		pending, live int
		want          bool
	}{
		{CompactionPolicy{}, 1023, 100, false},                                  // default fraction, floor 1024
		{CompactionPolicy{}, 1024, 100, true},                                   // floor reached
		{CompactionPolicy{Fraction: 0.5}, 1024, 100_000, false},                 // below 50% of live... floor is 1024 but 0.5*100000=50000>1024
		{CompactionPolicy{Fraction: 0.5}, 50_000, 100_000, true},                // at 50%
		{CompactionPolicy{Kind: DeltaCount, Count: 10}, 9, 0, false},            // below count
		{CompactionPolicy{Kind: DeltaCount, Count: 10}, 10, 0, true},            // at count
		{CompactionPolicy{Kind: DeltaCount}, 4095, 0, false},                    // default count
		{CompactionPolicy{Kind: DeltaCount}, 4096, 0, true},                     // default count
		{CompactionPolicy{Kind: Manual}, 1 << 30, 1, false},                     // manual never
		{CompactionPolicy{Fraction: 1.0 / 64}, 2_000_000 / 64, 2_000_000, true}, // explicit default
		{CompactionPolicy{Fraction: 1.0 / 64}, 2_000_000/64 - 1, 2_000_000, false},
	}
	for i, c := range cases {
		if got := c.p.due(c.pending, c.live); got != c.want {
			t.Errorf("case %d: due(%d, %d) with %+v = %v, want %v", i, c.pending, c.live, c.p, got, c.want)
		}
	}
	if err := (CompactionPolicy{Kind: PolicyKind(9)}).validate(); err == nil {
		t.Error("want error for unknown policy kind")
	}
	if err := (CompactionPolicy{Fraction: -1}).validate(); err == nil {
		t.Error("want error for negative fraction")
	}
	if err := (CompactionPolicy{Count: -1}).validate(); err == nil {
		t.Error("want error for negative count")
	}
	if _, err := New[uint64](nil, Config{Policy: CompactionPolicy{Count: -1}}); err == nil {
		t.Error("New must reject an invalid policy")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix, err := New[uint64](nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if got := ix.Find(5); got != 0 {
		t.Errorf("empty Find = %d, want 0", got)
	}
	if _, found := ix.Lookup(5); found {
		t.Error("empty Lookup must not find")
	}
	if ix.Delete(5) {
		t.Error("Delete on empty must fail")
	}
	ix.Scan(0, ^uint64(0), func(uint64) bool { t.Fatal("empty scan must not visit"); return false })
	for i := 0; i < 20; i++ {
		ix.Insert(uint64(i * 3))
	}
	for q := uint64(0); q < 60; q++ {
		want := int((q + 2) / 3)
		if got := ix.Find(q); got != want {
			t.Fatalf("Find(%d) = %d, want %d", q, got, want)
		}
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 20 {
		t.Errorf("Len after compaction = %d, want 20", ix.Len())
	}
}

func TestScanContract(t *testing.T) {
	ix, err := New([]uint64{10, 20, 30, 40, 50}, Config{Policy: CompactionPolicy{Kind: Manual}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ix.Insert(25)
	ix.Insert(25)
	ix.Delete(30)
	ix.Delete(25)

	var got []uint64
	ix.Scan(10, 50, func(k uint64) bool { got = append(got, k); return true })
	want := []uint64{10, 20, 25, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	ix.Scan(0, ^uint64(0), func(uint64) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early-stop scan visited %d, want 2", count)
	}
	// Inverted range.
	ix.Scan(50, 10, func(uint64) bool { t.Fatal("inverted range must not visit"); return false })
}

// TestModeMidpointLayer runs the concurrent wrapper over an S-mode base.
func TestModeMidpointLayer(t *testing.T) {
	initial := dataset.MustGenerate(dataset.LogN, 64, 3_000, 5)
	ix, err := New(initial, Config{
		Layer:  core.Config{Mode: core.ModeMidpoint},
		Policy: CompactionPolicy{Kind: DeltaCount, Count: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ref := &reference{keys: append([]uint64(nil), initial...)}
	rng := rand.New(rand.NewSource(21))
	domain := initial[len(initial)-1] + 2
	for i := 0; i < 2_000; i++ {
		k := rng.Uint64() % domain
		ix.Insert(k)
		ref.insert(k)
		q := rng.Uint64() % domain
		if got, want := ix.Find(q), kv.LowerBound(ref.keys, q); got != want {
			t.Fatalf("midpoint Find(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	ix, err := New([]uint64{1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
	ix.Close()
	// Reads and writes stay valid after Close.
	ix.Insert(2)
	if got := ix.Len(); got != 2 {
		t.Fatalf("Len after Close = %d, want 2", got)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
}
