package concurrent

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kv"
)

// waitForRebuild blocks until the background compactor has run at least
// once (on one CPU it may only get scheduled after the write storm ends).
func waitForRebuild(t *testing.T, ix *Index[uint64]) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ix.Rebuilds() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ix.Rebuilds() == 0 {
		t.Error("storm never triggered a background compaction")
	}
}

// TestSnapshotConsistencyUnderWrites checks the acceptance invariant at
// package level: readers racing a writer and the compactor only ever
// observe fully-consistent snapshots. Each probe below is answered from a
// single snapshot, so its internal arithmetic must hold no matter how many
// publications happen mid-storm; and with an insert-only writer, ranks a
// single reader observes for a pinned query are monotone (atomic snapshot
// loads observe publications in order).
func TestSnapshotConsistencyUnderWrites(t *testing.T) {
	// Base: even keys 0..2N. The writer inserts odd keys; evens are
	// immortal sentinels.
	const n = 2_000
	initial := make([]uint64, n)
	for i := range initial {
		initial[i] = uint64(2 * i)
	}
	ix, err := New(initial, Config{Policy: CompactionPolicy{Kind: DeltaCount, Count: 128}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	writes := 20_000
	if testing.Short() {
		writes = 4_000
	}
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	var stop atomic.Bool
	errs := make(chan string, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pinned := uint64(2 * n) // above every even sentinel; writer inserts below and above
			lastPinnedRank := -1
			qs := make([]uint64, 64)
			out := make([]int, 64)
			for !stop.Load() {
				switch rng.Intn(4) {
				case 0:
					// Sorted batch from one snapshot: ranks non-decreasing.
					q := uint64(rng.Intn(4 * n))
					for i := range qs {
						qs[i] = q + uint64(i)
					}
					out = ix.FindBatch(qs, out)
					for i := 1; i < len(out); i++ {
						if out[i] < out[i-1] {
							errs <- "sorted FindBatch returned decreasing ranks"
							return
						}
					}
				case 1:
					// Sentinels are never deleted.
					s := uint64(2 * rng.Intn(n))
					if _, found := ix.Lookup(s); !found {
						errs <- "sentinel key vanished mid-storm"
						return
					}
				case 2:
					// Insert-only writer: pinned rank is monotone per reader.
					r := ix.Find(pinned)
					if r < lastPinnedRank {
						errs <- "pinned rank went backwards under an insert-only writer"
						return
					}
					lastPinnedRank = r
				default:
					// Scans come out sorted and in range.
					a := uint64(rng.Intn(2 * n))
					b := a + uint64(rng.Intn(200))
					prev, first := uint64(0), true
					bad := false
					ix.Scan(a, b, func(k uint64) bool {
						if k < a || k > b || (!first && k < prev) {
							bad = true
							return false
						}
						prev, first = k, false
						return true
					})
					if bad {
						errs <- "scan yielded out-of-range or unsorted keys"
						return
					}
				}
			}
		}(int64(r) * 977)
	}

	// Insert-only writer storm (keeps the monotone-rank invariant valid),
	// racing the background compactor the whole time.
	rng := rand.New(rand.NewSource(1))
	ref := append([]uint64(nil), initial...)
	for i := 0; i < writes; i++ {
		k := uint64(rng.Intn(4*n))<<1 + 1 // odd
		ix.Insert(k)
		j := kv.UpperBound(ref, k)
		ref = append(ref, 0)
		copy(ref[j+1:], ref[j:])
		ref[j] = k
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if err := ix.Err(); err != nil {
		t.Fatal(err)
	}
	waitForRebuild(t, ix)

	// Quiescent: the live multiset matches the single-writer reference.
	if got, want := ix.Len(), len(ref); got != want {
		t.Fatalf("Len after storm = %d, want %d", got, want)
	}
	i := 0
	ok := true
	ix.Scan(0, ^uint64(0), func(k uint64) bool {
		if i >= len(ref) || ref[i] != k {
			ok = false
			return false
		}
		i++
		return true
	})
	if !ok || i != len(ref) {
		t.Fatal("post-storm scan does not match the reference multiset")
	}
}
