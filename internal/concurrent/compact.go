package concurrent

import (
	"fmt"
	"slices"

	"repro/internal/kv"
	"repro/internal/updatable"
)

// PolicyKind selects how the background compactor decides a rebuild is
// due.
type PolicyKind int

const (
	// DeltaFraction compacts when pending writes exceed Fraction of the
	// live key count (with a floor so tiny indexes don't thrash). This is
	// the default: rebuild cost stays proportional to the work absorbed.
	DeltaFraction PolicyKind = iota
	// DeltaCount compacts when pending writes reach Count, independent of
	// index size: a bound on worst-case write amplification per op.
	DeltaCount
	// Manual never compacts in the background; only explicit Compact
	// calls rebuild the base.
	Manual
)

func (k PolicyKind) String() string {
	switch k {
	case DeltaFraction:
		return "delta-fraction"
	case DeltaCount:
		return "delta-count"
	case Manual:
		return "manual"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// CompactionPolicy decides when the background compactor runs. The zero
// value is DeltaFraction with defaults (1/64 of the live count, floor
// 1024 — matching the single-threaded updatable.Config.MaxDelta default).
type CompactionPolicy struct {
	Kind PolicyKind
	// Fraction applies to DeltaFraction: compact when pending >=
	// Fraction * live. 0 defaults to 1/64.
	Fraction float64
	// Count applies to DeltaCount: compact when pending >= Count. 0
	// defaults to 4096.
	Count int
}

func (p CompactionPolicy) validate() error {
	switch p.Kind {
	case DeltaFraction, DeltaCount, Manual:
	default:
		return fmt.Errorf("concurrent: unknown policy kind %v", p.Kind)
	}
	if p.Fraction < 0 {
		return fmt.Errorf("concurrent: negative policy fraction %v", p.Fraction)
	}
	if p.Count < 0 {
		return fmt.Errorf("concurrent: negative policy count %d", p.Count)
	}
	return nil
}

// due reports whether a snapshot with the given pending-write and live
// counts should be compacted.
func (p CompactionPolicy) due(pending, live int) bool {
	switch p.Kind {
	case Manual:
		return false
	case DeltaCount:
		count := p.Count
		if count == 0 {
			count = 4096
		}
		return pending >= count
	default: // DeltaFraction
		frac := p.Fraction
		if frac == 0 {
			frac = 1.0 / 64
		}
		threshold := int(frac * float64(live))
		if threshold < 1024 {
			threshold = 1024
		}
		return pending >= threshold
	}
}

// compactor is the background goroutine: it sleeps until a writer nudges
// it, then compacts as long as the policy says the current snapshot is
// due. A compaction error (out-of-memory-grade; the merge itself cannot
// produce invalid input) is recorded for Err and ends the current burst;
// the goroutine stays alive, so the next due write retries.
func (ix *Index[K]) compactor() {
	defer ix.wg.Done()
	for {
		select {
		case <-ix.done:
			return
		case <-ix.wake:
		}
		for {
			select {
			case <-ix.done:
				return
			default:
			}
			s := ix.snap.Load()
			if !ix.policy.due(s.pending(), s.length()) {
				break
			}
			if err := ix.Compact(); err != nil {
				ix.errMu.Lock()
				if ix.err == nil {
					ix.err = err
				}
				ix.errMu.Unlock()
				break
			}
		}
	}
}

// Compact rebuilds the base Shift-Table from the current snapshot while
// reads and writes keep flowing, then publishes the result with a single
// pointer swap. Safe to call manually under any policy; concurrent calls
// serialise. The three phases:
//
//  1. Seal (brief writer lock): the current write head is frozen and a
//     fresh empty head is pushed, so writes landing mid-rebuild stay
//     separate from the state being merged.
//  2. Rebuild (no locks): the sealed snapshot — view plus sealed
//     generations — is scanned into a fresh sorted key slice, and a new
//     updatable index (CDF model + Shift-Table + empty Fenwick) is built
//     over it. Readers meanwhile serve the published snapshot untouched.
//  3. Publish (brief writer lock): the rebuilt view replaces the sealed
//     state; the fresh head — every write that landed during the rebuild —
//     carries over verbatim onto the new base. That is the whole replay:
//     tombstones cancel by key value, so they mean the same thing over
//     the merged base as they did over the old one.
//
//shift:swap(compaction seal/recover/publish; every store under ix.mu)
func (ix *Index[K]) Compact() error {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()

	// Phase 1: seal.
	ix.mu.Lock()
	s0 := ix.snap.Load()
	sealed := &snapshot[K]{view: s0.view, gens: s0.gens, tag: s0.tag}
	opened := &snapshot[K]{
		view: s0.view,
		gens: append(append([]*generation[K]{}, s0.gens...), &generation[K]{}),
		tag:  s0.tag,
	}
	ix.snap.Store(opened)
	ix.mu.Unlock()

	ix.compacting.Store(true)
	defer ix.compacting.Store(false)

	// Phase 2: rebuild off to the side. The rebuild runs the parallel
	// build pipeline seeded with the sealed base table (DESIGN.md §8):
	// model predictions and per-partition accumulation shard across
	// cores, and the build arena plus the batch-scratch pool carry over
	// from the predecessor, so steady-state compaction allocates only the
	// merged keys and the packed layer itself.
	merged := make([]K, 0, sealed.length())
	sealed.scan(0, maxOf[K](), func(k K) bool {
		merged = append(merged, k)
		return true
	})
	rebuilt, err := updatable.NewFrom(merged, updatable.Config{Layer: ix.layerCfg()}, sealed.view.Table())
	if err != nil {
		// Flatten the generation stack so reads don't degrade while the
		// failure persists; the compactor goroutine survives errors, so
		// the next due write retries (and a manual Compact can too).
		ix.mu.Lock()
		//shift:allow-reload(error path re-reads the head under ix.mu to pick up writes that landed mid-rebuild)
		cur := ix.snap.Load()
		ix.snap.Store(&snapshot[K]{view: cur.view, gens: mergeGens(cur.gens), tag: cur.tag})
		ix.mu.Unlock()
		return err
	}
	view := rebuilt.Freeze()

	// Phase 3: publish.
	ix.mu.Lock()
	//shift:allow-reload(publish re-reads the head under ix.mu; the sealed prefix is immutable and the live suffix carries over)
	cur := ix.snap.Load()
	// Writers only ever replace the top generation or append a new head,
	// so cur.gens is the sealed prefix (untouched) plus everything that
	// landed mid-rebuild; the suffix survives onto the rebuilt base.
	live := cur.gens[len(sealed.gens):]
	ix.snap.Store(&snapshot[K]{view: view, gens: append([]*generation[K]{}, live...), tag: cur.tag})
	ix.mu.Unlock()
	ix.rebuilds.Add(1)
	return nil
}

// mergeGens flattens a generation stack into a single generation
// (error-path recovery only; the hot paths never call it).
func mergeGens[K kv.Key](gens []*generation[K]) []*generation[K] {
	if len(gens) == 1 {
		return []*generation[K]{gens[0]}
	}
	var ins, dels []K
	for _, g := range gens {
		ins = append(ins, g.ins...)
		dels = append(dels, g.dels...)
	}
	slices.Sort(ins)
	slices.Sort(dels)
	return []*generation[K]{{ins: ins, dels: dels}}
}
