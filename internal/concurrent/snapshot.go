package concurrent

import (
	"iter"

	"repro/internal/kv"
	"repro/internal/updatable"
)

// A snapshot is one immutable, fully-consistent state of the index: a
// frozen updatable.View (base Shift-Table + tombstone Fenwick + sealed
// delta buffer, shared without copying via updatable.Index.Freeze) plus a
// stack of write generations layered on top. Readers load the current
// snapshot with a single atomic pointer load and never see it change
// underneath them; writers and the compactor publish successors.
//
// The last generation is the write head; every write publishes a successor
// snapshot with a fresh copy of it. To keep that copy small the head is
// sealed once it reaches maxHeadLen and a new empty head is pushed, so a
// snapshot carries a short stack of sealed mini-generations that readers
// binary-search in turn. Compaction seals the whole stack, merges it into
// a rebuilt base, and publishes the result; the generations pushed while
// the rebuild ran carry over verbatim (that is the write replay).

// maxHeadLen bounds the write head: a write that finds the head at this
// size seals it and opens a fresh one. It caps the per-write copy at a few
// KiB; the read-side cost is one extra pair of binary searches per sealed
// mini-generation, which the compaction policy keeps bounded.
const maxHeadLen = 1024

// generation is an immutable batch of writes on top of a view: ins holds
// inserted keys, dels holds tombstones. Both are sorted multisets. A
// tombstone of value k cancels exactly one occurrence of k anywhere below
// it (base, view delta, or an earlier generation's ins) — deletion
// accounting is by key value, not position, so it survives the base
// rebuild unchanged.
type generation[K kv.Key] struct {
	ins  []K
	dels []K
}

// size is the number of pending write operations the generation carries.
func (g *generation[K]) size() int { return len(g.ins) + len(g.dels) }

// withInsert returns a copy with one occurrence of k added.
func (g *generation[K]) withInsert(k K) *generation[K] {
	i := kv.UpperBound(g.ins, k)
	ins := make([]K, len(g.ins)+1)
	copy(ins, g.ins[:i])
	ins[i] = k
	copy(ins[i+1:], g.ins[i:])
	return &generation[K]{ins: ins, dels: g.dels}
}

// withoutIns returns a copy with the pending insert at index i removed.
func (g *generation[K]) withoutIns(i int) *generation[K] {
	ins := make([]K, 0, len(g.ins)-1)
	ins = append(append(ins, g.ins[:i]...), g.ins[i+1:]...)
	return &generation[K]{ins: ins, dels: g.dels}
}

// withDelete returns a copy with a tombstone for one occurrence of k.
func (g *generation[K]) withDelete(k K) *generation[K] {
	i := kv.UpperBound(g.dels, k)
	dels := make([]K, len(g.dels)+1)
	copy(dels, g.dels[:i])
	dels[i] = k
	copy(dels[i+1:], g.dels[i:])
	return &generation[K]{ins: g.ins, dels: dels}
}

// countEq returns the number of occurrences of q in the sorted slice xs.
func countEq[K kv.Key](xs []K, q K) int {
	return kv.UpperBound(xs, q) - kv.LowerBound(xs, q)
}

type snapshot[K kv.Key] struct {
	view *updatable.View[K]
	gens []*generation[K] // oldest first; the last is the write head

	// tag is an opaque caller-supplied label carried by the snapshot and
	// every successor derived from it (writes, compactions). Replication
	// sets it to the installed version so a reader can learn, atomically
	// with its results, which published version answered the query
	// (FindBatchTagged). Zero when never installed.
	tag uint64
}

// replaceTop returns a successor snapshot with the write head swapped. The
// gens slice is copied — snapshots never share backing arrays whose
// elements differ.
func (s *snapshot[K]) replaceTop(g *generation[K]) *snapshot[K] {
	gens := append([]*generation[K]{}, s.gens...)
	gens[len(gens)-1] = g
	return &snapshot[K]{view: s.view, gens: gens, tag: s.tag}
}

// pushHead returns a successor snapshot with g appended as the new write
// head, sealing the previous one.
func (s *snapshot[K]) pushHead(g *generation[K]) *snapshot[K] {
	gens := append(append([]*generation[K]{}, s.gens...), g)
	return &snapshot[K]{view: s.view, gens: gens, tag: s.tag}
}

// pending is the number of write operations not yet merged into the base.
func (s *snapshot[K]) pending() int {
	n := 0
	for _, g := range s.gens {
		n += g.size()
	}
	return n
}

// length is the number of live keys.
func (s *snapshot[K]) length() int {
	n := s.view.Len()
	for _, g := range s.gens {
		n += len(g.ins) - len(g.dels)
	}
	return n
}

// genRank is the generations' correction to a view rank: inserted keys
// below q add one each, tombstoned occurrences below q remove one each.
func (s *snapshot[K]) genRank(q K) int {
	r := 0
	for _, g := range s.gens {
		r += kv.LowerBound(g.ins, q) - kv.LowerBound(g.dels, q)
	}
	return r
}

// rank is the logical lower-bound rank of q: the number of live keys < q.
func (s *snapshot[K]) rank(q K) int {
	return s.view.Find(q) + s.genRank(q)
}

// count is the number of live occurrences of q.
func (s *snapshot[K]) count(q K) int {
	n := s.view.Count(q)
	for _, g := range s.gens {
		n += countEq(g.ins, q) - countEq(g.dels, q)
	}
	return n
}

// lookup returns rank and live multiplicity with a single base-table
// probe (View.LookupCount) plus the generation corrections.
func (s *snapshot[K]) lookup(q K) (rank, count int) {
	rank, count = s.view.LookupCount(q)
	for _, g := range s.gens {
		rank += kv.LowerBound(g.ins, q) - kv.LowerBound(g.dels, q)
		count += countEq(g.ins, q) - countEq(g.dels, q)
	}
	return rank, count
}

// scan yields every live key in [a, b] in sorted order: the view's live
// run merged with the generations' inserts, with tombstones cancelling
// occurrences by value. fn returning false stops the scan.
func (s *snapshot[K]) scan(a, b K, fn func(k K) bool) {
	if b < a {
		return
	}
	// Pull-iterate the view's own merged scan so it can be interleaved
	// with the generation runs.
	next, stop := iter.Pull(func(yield func(K) bool) {
		s.view.Scan(a, b, yield)
	})
	defer stop()
	vk, vok := next()

	ip := make([]int, len(s.gens))
	dp := make([]int, len(s.gens))
	for g, gen := range s.gens {
		ip[g] = kv.LowerBound(gen.ins, a)
		dp[g] = kv.LowerBound(gen.dels, a)
	}
	for {
		// The next distinct value is the smallest head among the view run
		// and the insert runs. Every in-range tombstone matches one of
		// those heads (it cancels an occurrence that exists below it), so
		// tombstone runs only ever advance on an exact value match.
		var cur K
		have := false
		if vok {
			cur, have = vk, true
		}
		for g, gen := range s.gens {
			if ip[g] < len(gen.ins) && gen.ins[ip[g]] <= b {
				if !have || gen.ins[ip[g]] < cur {
					cur, have = gen.ins[ip[g]], true
				}
			}
		}
		if !have {
			return
		}
		n := 0
		for vok && vk == cur {
			n++
			vk, vok = next()
		}
		for g, gen := range s.gens {
			for ip[g] < len(gen.ins) && gen.ins[ip[g]] == cur {
				n++
				ip[g]++
			}
			for dp[g] < len(gen.dels) && gen.dels[dp[g]] == cur {
				n--
				dp[g]++
			}
		}
		for ; n > 0; n-- {
			if !fn(cur) {
				return
			}
		}
	}
}
