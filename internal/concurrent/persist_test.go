package concurrent

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// pending builds a concurrent index carrying un-compacted write
// generations (Manual policy so they stay pending).
func pending(t *testing.T, n int, seed int64) (*Index[uint64], []uint64) {
	t.Helper()
	keys := dataset.MustGenerate(dataset.Face, 64, n, seed)
	ix, err := New(keys, Config{Policy: CompactionPolicy{Kind: Manual}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2500; i++ { // > maxHeadLen: forces sealed generations
		ix.Insert(rng.Uint64() % (keys[len(keys)-1] + 2))
	}
	for i := 0; i < 600; i++ {
		ix.Delete(keys[rng.Intn(len(keys))])
	}
	return ix, keys
}

func collect(ix *Index[uint64]) []uint64 {
	var out []uint64
	ix.Scan(0, ^uint64(0), func(k uint64) bool { out = append(out, k); return true })
	return out
}

// TestConcurrentSnapshotRoundTrip: a warm restart reproduces the exact
// live multiset — base, tombstones, delta, and the pending generations
// replayed through the live write path — and the restored index keeps
// serving writes and compactions.
func TestConcurrentSnapshotRoundTrip(t *testing.T) {
	orig, keys := pending(t, 20_000, 5)
	defer orig.Close()
	if orig.Pending() == 0 {
		t.Fatal("no pending generations to persist")
	}

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load[uint64](bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	if got, want := loaded.Len(), orig.Len(); got != want {
		t.Fatalf("restored Len = %d, want %d", got, want)
	}
	want := collect(orig)
	got := collect(loaded)
	if len(got) != len(want) {
		t.Fatalf("restored scan %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5_000; i++ {
		q := rng.Uint64() % (keys[len(keys)-1] + 2)
		if gr, wr := loaded.Find(q), orig.Find(q); gr != wr {
			t.Fatalf("loaded Find(%d) = %d, want %d", q, gr, wr)
		}
		gr, gf := loaded.Lookup(q)
		wr, wf := orig.Lookup(q)
		if gr != wr || gf != wf {
			t.Fatalf("loaded Lookup(%d) = (%d,%v), want (%d,%v)", q, gr, gf, wr, wf)
		}
	}

	// Restored index is live: concurrent readers during a compaction.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				loaded.Find(keys[len(keys)/2])
			}
		}
	}()
	if err := loaded.Compact(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if loaded.Pending() != 0 {
		t.Errorf("pending %d after explicit compaction", loaded.Pending())
	}
	if got, want := loaded.Len(), len(want); got != want {
		t.Fatalf("post-compaction Len = %d, want %d", got, want)
	}
}

// TestConcurrentSnapshotWhileWriting: persistence races writers and a
// compaction without torn state — the snapshot is some consistent
// published state, and it must load cleanly.
func TestConcurrentSnapshotWhileWriting(t *testing.T) {
	orig, keys := pending(t, 10_000, 9)
	defer orig.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			orig.Insert(rng.Uint64())
			if i == 200 {
				go orig.Compact() //nolint:errcheck // racing on purpose
			}
		}
	}()
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := Save(&buf, orig); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load[uint64](bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("snapshot taken mid-write failed to load: %v", err)
		}
		if loaded.Len() < len(keys)-700 {
			t.Errorf("snapshot lost keys: Len %d", loaded.Len())
		}
		loaded.Close()
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentSnapshotFile: file round trip with the policy preserved.
func TestConcurrentSnapshotFile(t *testing.T) {
	keys := dataset.MustGenerate(dataset.UDen, 64, 8_000, 3)
	orig, err := New(keys, Config{Policy: CompactionPolicy{Kind: DeltaCount, Count: 12_345}})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	orig.Insert(42)
	path := filepath.Join(t.TempDir(), "con.snap")
	if err := SaveFile(path, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile[uint64](path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.policy.Kind != DeltaCount || loaded.policy.Count != 12_345 {
		t.Fatalf("policy not preserved: %+v", loaded.policy)
	}
	if got, want := loaded.Len(), orig.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	rank, found := loaded.Lookup(42)
	if !found {
		t.Error("replayed insert lost")
	}
	_ = rank
}

// TestConcurrentSnapshotCorruption: stride byte flips must be rejected.
func TestConcurrentSnapshotCorruption(t *testing.T) {
	orig, _ := pending(t, 2_000, 11)
	defer orig.Close()
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 0; i < len(raw); i += 5 {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x02
		ix, err := Load[uint64](bytes.NewReader(bad), int64(len(bad)))
		if err == nil {
			ix.Close()
			t.Fatalf("flipped byte %d of %d went undetected", i, len(raw))
		}
	}
}
