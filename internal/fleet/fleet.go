// Package fleet is the front tier of a replica fleet: one Pool
// health-checks N shiftserver backends, routes queries around draining
// or dead ones (retrying transparently, so a client never sees a
// mid-upgrade backend), and drives the rolling-upgrade state machine —
// drain one backend, upgrade it, wait for readiness, verify its answers,
// readmit it, move on; roll back and halt on any verification failure
// (DESIGN.md §13).
//
// The pool is deliberately dumb about formats: backends bridge snapshot
// version skew themselves (internal/replica), so the fleet only needs
// the /healthz ready/starting/draining protocol and the /admin drain
// lever the serve handler exposes.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxProxyBody bounds how much of a request body the pool buffers for
// retry (matches the serve handler's own batch body cap).
const maxProxyBody = 1 << 24

// PoolConfig parameterises NewPool. The zero value gets the documented
// defaults.
type PoolConfig struct {
	// Probe is the health-check interval per backend (default 100ms).
	Probe time.Duration
	// FailAfter is how many consecutive probe failures mark a backend
	// unhealthy (default 2; the first success readmits immediately).
	FailAfter int
	// Timeout bounds each probe and each per-backend proxy attempt
	// (default 2s).
	Timeout time.Duration
	// Client overrides the HTTP client (default: a fresh one with the
	// configured timeout).
	Client *http.Client
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Probe <= 0 {
		c.Probe = 100 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	return c
}

// backend is the pool's view of one replica server.
type backend struct {
	url     string
	healthy atomic.Bool
	admin   atomic.Bool  // held out of rotation by the roller
	state   atomic.Value // string: last probe verdict
	version atomic.Uint64
	fails   int // consecutive probe failures; probe goroutine only
}

// BackendStatus is one backend's row in the pool's status report.
type BackendStatus struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"` // admin-held by the roller
	State    string `json:"state"`    // ready | starting | draining | unreachable
	Version  uint64 `json:"version"`  // last version the probe saw
}

// Pool fronts N backends. It is an http.Handler: /v1/* proxies to an
// eligible backend with transparent failover, /healthz reports fleet
// health (200 iff at least one backend is eligible), /statusz the
// per-backend detail.
type Pool struct {
	cfg    PoolConfig
	client *http.Client
	bes    []*backend
	next   atomic.Uint64

	proxied  atomic.Uint64 // requests answered
	retries  atomic.Uint64 // failover hops taken
	failures atomic.Uint64 // requests no backend could answer

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPool builds a pool over the backend base URLs and starts its
// health probes. Close stops them.
func NewPool(urls []string, cfg PoolConfig) (*Pool, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("fleet: no backends")
	}
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	p := &Pool{cfg: cfg, client: client, stop: make(chan struct{})}
	for _, u := range urls {
		u = strings.TrimRight(u, "/")
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("fleet: backend %q is not an http(s) URL", u)
		}
		be := &backend{url: u}
		be.state.Store("unprobed")
		p.bes = append(p.bes, be)
	}
	p.wg.Add(1)
	go p.probeLoop()
	return p, nil
}

// Close stops the health probes (in-flight proxied requests finish on
// their own).
func (p *Pool) Close() {
	close(p.stop)
	p.wg.Wait()
}

// Backends returns the per-backend status rows, in configuration order.
func (p *Pool) Backends() []BackendStatus {
	out := make([]BackendStatus, len(p.bes))
	for i, be := range p.bes {
		out[i] = BackendStatus{
			URL:      be.url,
			Healthy:  be.healthy.Load(),
			Draining: be.admin.Load(),
			State:    be.state.Load().(string),
			Version:  be.version.Load(),
		}
	}
	return out
}

// Version is the fleet-wide serving version: the minimum version among
// eligible backends (0 when none is eligible). Every eligible backend
// serves at least this version, so a client keying verification off it
// — shiftload's /statusz preflight — is never ahead of the fleet.
func (p *Pool) Version() uint64 {
	var v uint64
	for _, be := range p.bes {
		if be.eligible() {
			if bv := be.version.Load(); v == 0 || bv < v {
				v = bv
			}
		}
	}
	return v
}

// Proxied, Retries, Failures report the routing counters.
func (p *Pool) Proxied() uint64  { return p.proxied.Load() }
func (p *Pool) Retries() uint64  { return p.retries.Load() }
func (p *Pool) Failures() uint64 { return p.failures.Load() }

// eligible reports whether a backend may receive traffic.
func (be *backend) eligible() bool { return be.healthy.Load() && !be.admin.Load() }

func (p *Pool) eligibleCount() int {
	n := 0
	for _, be := range p.bes {
		if be.eligible() {
			n++
		}
	}
	return n
}

// probeLoop drives one health-check round per interval across all
// backends (concurrently — a hung backend must not starve the others'
// probes).
func (p *Pool) probeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Probe)
	defer t.Stop()
	p.probeAll() // first verdicts immediately, not one interval late
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *Pool) probeAll() {
	var wg sync.WaitGroup
	for _, be := range p.bes {
		wg.Add(1)
		go func(be *backend) {
			defer wg.Done()
			p.probe(be)
		}(be)
	}
	wg.Wait()
}

// healthzBody mirrors the serve handler's /healthz answer.
type healthzBody struct {
	Status  string `json:"status"`
	Version uint64 `json:"version"`
}

func (p *Pool) probe(be *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	state, version := "unreachable", uint64(0)
	req, err := http.NewRequestWithContext(ctx, "GET", be.url+"/healthz", nil)
	if err == nil {
		if res, rerr := p.client.Do(req); rerr == nil {
			var body healthzBody
			if jerr := json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&body); jerr == nil && body.Status != "" {
				state, version = body.Status, body.Version
			}
			res.Body.Close()
		}
	}
	be.state.Store(state)
	be.version.Store(version)
	if state == "ready" {
		be.fails = 0
		be.healthy.Store(true)
		return
	}
	be.fails++
	if be.fails >= p.cfg.FailAfter {
		be.healthy.Store(false)
	}
}

func (p *Pool) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/v1/"):
		p.proxy(w, r)
	case r.URL.Path == "/healthz" && r.Method == "GET":
		p.handleHealthz(w)
	case r.URL.Path == "/statusz" && r.Method == "GET":
		writeJSON(w, http.StatusOK, map[string]any{
			"backends": p.Backends(),
			"eligible": p.eligibleCount(),
			"version":  p.Version(),
			"proxied":  p.Proxied(),
			"retries":  p.Retries(),
			"failures": p.Failures(),
		})
	default:
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such route"})
	}
}

func (p *Pool) handleHealthz(w http.ResponseWriter) {
	if n := p.eligibleCount(); n > 0 {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "eligible": n})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "eligible": 0})
}

// proxy relays one data request, failing over across backends: a
// transport error or a 503 (draining/starting backend) moves to the
// next eligible backend; any other answer — including 4xx, which would
// fail identically everywhere — is relayed as-is. The request body is
// buffered so every attempt replays the same bytes.
func (p *Pool) proxy(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
		if err != nil || len(b) > maxProxyBody {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "request body too large to proxy"})
			return
		}
		body = b
	}
	// One rotation over the fleet starting at the round-robin cursor.
	// Ineligible backends are skipped up front, but an eligible-looking
	// backend that fails mid-request still burns its attempt and the
	// rotation continues — that in-flight failover is what makes a
	// mid-upgrade kill invisible to clients.
	start := p.next.Add(1)
	var lastErr string
	for i := 0; i < len(p.bes); i++ {
		be := p.bes[(start+uint64(i))%uint64(len(p.bes))]
		if !be.eligible() {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), p.cfg.Timeout)
		res, err := p.attempt(ctx, be, r, body)
		if err != nil {
			cancel()
			lastErr = err.Error()
			p.retries.Add(1)
			continue
		}
		if res.StatusCode == http.StatusServiceUnavailable {
			// The backend began draining between our eligibility check
			// and its admission gate. Not an answer — try the next one.
			io.Copy(io.Discard, io.LimitReader(res.Body, 1<<16))
			res.Body.Close()
			cancel()
			lastErr = "backend draining"
			p.retries.Add(1)
			continue
		}
		err = relay(w, res)
		res.Body.Close()
		cancel()
		if err != nil {
			// Headers are already written; the client connection is torn.
			// Nothing more the fleet can do for this request.
			return
		}
		p.proxied.Add(1)
		return
	}
	p.failures.Add(1)
	msg := "no eligible backend"
	if lastErr != "" {
		msg = "all backends failed: " + lastErr
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": msg})
}

func (p *Pool) attempt(ctx context.Context, be *backend, r *http.Request, body []byte) (*http.Response, error) {
	u := be.url + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return p.client.Do(req)
}

// relay copies one backend response to the client.
func relay(w http.ResponseWriter, res *http.Response) error {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := res.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(res.StatusCode)
	_, err := io.Copy(w, io.LimitReader(res.Body, maxProxyBody))
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
